// Esoteric-Pull single-lattice engine (Lehmann 2022; Montessori et al.'s
// thread-safe in-place streaming family).
//
// Like the AA pattern, Esoteric Pull streams in place over ONE distribution
// lattice (Q elements per node — half of ST's footprint), but it does so
// with a *paired-direction* addressing trick instead of AA's two kernel
// flavours: every step pulls one half-set of populations from the upwind
// neighbours and pushes the other half in place, and the roles of the two
// half-sets swap with the step parity. Concretely, with the plus half-set
// H = { i : i < opposite(i) } (one direction per antiparallel pair):
//
//   gather   f_i(x, t) lives in slot (even ? opposite(i) : i) of
//            - node x itself for i in H and for the rest population,
//            - the upwind neighbour x - c_i for i not in H;
//   scatter  f*_i(x, t) goes to slot (even ? i : opposite(i)) of
//            - the downwind neighbour x + c_i for i in H,
//            - node x itself for i not in H and for the rest population.
//
// The two maps are consistent (what a step scatters is exactly what the
// next step gathers one node downwind) and in each parity every lattice
// word has a unique reader == writer thread, so the update is race-free in
// place — the same invariant the static analyzer re-proves for AA, here
// from the ep contract (analysis::ep_contract). Unlike AA, EVERY step is a
// full stream+collide: the stored state at time t is the post-collision
// image f*(., t) (as in ST pull), distributed across the esoteric
// addressing, so moments_at/impose work at any parity.
//
// Boundary links (face walls, open faces, solid neighbours — anything
// resolve_stream does not map to an interior target) are routed through a
// small side array, the *rim*: two words [value, density] per blocked link,
// written by the node's own scatter and read back by its own gather next
// step. The value is the storage-narrowed post-collision population and the
// density is the node's post-collision density (for the moving-wall
// bounce-back correction, applied at read time) — exactly the words ST's
// pull gather reads from the node's own cell, so EP stays bit-identical to
// ST at walls, moving walls and open faces in both storage precisions. The
// in-lattice words those links would have used become permanently dead
// (never read, never written). On wall-free periodic domains the rim is
// empty and state_bytes() is exactly Q * elem_bytes * N.
//
// `ST` is the storage-precision policy (element type of the single
// lattice); compute stays real_t with conversion at the register boundary.
//
// Sparse geometries (Geometry::sparse()): the lattice is tile-compressed
// exactly like StEngine's pair (tile_kernels.hpp); both parities cross tile
// borders, so every sparse launch loads the full neighbour-slot stash.
// Sparse always runs the scalar kernel bodies (ExecMode::kLanes falls back;
// bit-identical by construction).
#pragma once

#include <unordered_map>

#include "core/collision.hpp"
#include "engines/engine.hpp"
#include "engines/tile_kernels.hpp"
#include "gpusim/global_array.hpp"
#include "gpusim/profiler.hpp"

namespace mlbm {

template <class L, class ST = real_t>
class EpEngine final : public Engine<L> {
 public:
  using StorageT = ST;

  /// `exec` selects the scalar or lane-batched kernel body. Lane batching is
  /// safe because every lattice word has a unique reader == writer node, so
  /// only each node's own gather-before-scatter order matters — which panels
  /// preserve. Open (inlet/outlet) faces are supported: the dropped-link
  /// placeholder lives in the rim, and the workload hooks re-impose the face
  /// nodes after the step exactly as they do for ST.
  EpEngine(Geometry geo, real_t tau,
           CollisionScheme scheme = CollisionScheme::kBGK,
           int threads_per_block = 256, ExecMode exec = default_exec_mode());

  [[nodiscard]] const char* pattern_name() const override { return "EP"; }
  void initialize(const typename Engine<L>::InitFn& init) override;
  [[nodiscard]] Moments<L> moments_at(int x, int y, int z) const override;
  void impose(int x, int y, int z, const Moments<L>& m) override;
  [[nodiscard]] std::size_t state_bytes() const override;
  [[nodiscard]] StoragePrecision storage_precision() const override {
    return precision_of_v<ST>;
  }

  [[nodiscard]] gpusim::Profiler* profiler() override { return &prof_; }
  [[nodiscard]] const gpusim::Profiler* profiler() const override {
    return &prof_;
  }
  [[nodiscard]] int threads_per_block() const { return threads_per_block_; }
  [[nodiscard]] ExecMode exec_mode() const { return exec_; }

  /// Declared kernel accesses of the two parities. The analyzer re-proves
  /// the esoteric invariant from the declaration alone: in each parity the
  /// gather and scatter that share a lattice slot also share an offset.
  [[nodiscard]] analysis::EngineContract access_contract() const override {
    return analysis::ep_contract(analysis::make_lattice_desc<L>(), sizeof(ST));
  }

  /// Binds the sanitizer to the profiler, the single in-place lattice and
  /// the boundary rim. Both arrays rewrite every live word every step
  /// (reader thread == writer thread per word), so both opt into the
  /// sliding-window freshness check; the dead words behind blocked links are
  /// never read, so they never trip it.
  void set_sanitizer(gpusim::SanitizerHook* san) override {
    prof_.set_sanitizer_hook(san);
    f_.set_sanitizer(san, "f", /*sliding_window=*/true);
    rim_.set_sanitizer(san, "rim", /*sliding_window=*/true);
    if (sparse_) tdev_.set_sanitizer(san);
  }

  void set_unique_read_tracking(bool on) override {
    f_.set_unique_read_tracking(on);
    rim_.set_unique_read_tracking(on);
  }
  void clear_unique_reads() override {
    f_.clear_unique_reads();
    rim_.clear_unique_reads();
  }
  [[nodiscard]] std::uint64_t unique_read_bytes() const override {
    return f_.unique_read_bytes() + rim_.unique_read_bytes();
  }

  /// Soft-error surface: the in-place lattice plus the boundary rim.
  [[nodiscard]] std::uint64_t fault_sites() const override {
    return f_.size() + rim_.size();
  }
  void inject_storage_bitflip(std::uint64_t site, unsigned bit) override {
    site %= fault_sites();
    if (site < f_.size()) {
      f_.flip_bit(static_cast<std::size_t>(site), bit);
    } else {
      rim_.flip_bit(static_cast<std::size_t>(site - f_.size()), bit);
    }
  }

  /// Raw snapshot surface: lattice words then rim words. The tag carries the
  /// step parity — the esoteric slot mapping differs between even and odd
  /// states, so a blob only restores into an engine re-timed to the same
  /// parity, which restore_state guarantees by calling set_time() first.
  [[nodiscard]] std::string raw_state_tag() const override {
    const Box& b = this->geo_.box;
    std::string tag = std::string(pattern_name()) +
                      (this->t_ % 2 == 1 ? "|odd|" : "|even|") +
                      std::to_string(b.nx) + "x" + std::to_string(b.ny) + "x" +
                      std::to_string(b.nz);
    if (sparse_) {
      tag += "|sparse:" + std::to_string(this->geo_.hash());
    }
    return tag;
  }
  void serialize_raw_state(std::vector<real_t>& out) const override {
    out.reserve(out.size() + f_.size() + rim_.size());
    for (std::size_t i = 0; i < f_.size(); ++i) {
      out.push_back(static_cast<real_t>(f_.raw(static_cast<index_t>(i))));
    }
    for (std::size_t i = 0; i < rim_.size(); ++i) {
      out.push_back(rim_.raw(static_cast<index_t>(i)));
    }
  }
  void restore_raw_state(const std::vector<real_t>& in) override {
    if (in.size() != f_.size() + rim_.size()) {
      throw ConfigError("EpEngine: raw snapshot does not match state size");
    }
    for (std::size_t i = 0; i < f_.size(); ++i) {
      f_.raw(static_cast<index_t>(i)) = static_cast<ST>(in[i]);
    }
    for (std::size_t i = 0; i < rim_.size(); ++i) {
      rim_.raw(static_cast<index_t>(i)) = in[f_.size() + i];
    }
  }

  /// Both parities touch planes x-1..x+1 from source x (the pulled half
  /// reaches upwind, the pushed half downwind), so split steps extend the
  /// frontier by one source plane; disjoint source ranges touch disjoint
  /// words (unique reader == writer per word), so the launches commute.
  [[nodiscard]] bool supports_frontier_split() const override { return true; }

 protected:
  void do_step() override;
  void do_step_split(const FrontierSpec& fs,
                     const typename Engine<L>::FrontierDoneFn& on_frontier)
      override;

 private:
  [[nodiscard]] index_t soa(int i, index_t elem) const {
    return static_cast<index_t>(i) * elems_ + elem;
  }
  [[nodiscard]] index_t element(int x, int y, int z) const {
    return sparse_ ? this->geo_.tiles().element(x, y, z)
                   : this->geo_.box.idx(x, y, z);
  }
  /// True when the NEXT step runs the even-parity slot mapping (the state
  /// in memory was written by the opposite parity's scatter map).
  [[nodiscard]] bool even_phase() const { return this->t_ % 2 == 0; }
  /// Rim word index of the [value, density] pair for blocked link
  /// (element, direction); the link must exist (built at construction from
  /// the same resolve_stream predicate the kernels branch on).
  [[nodiscard]] index_t rim_base(index_t elem, int dir) const {
    return rim_index_.find(static_cast<std::uint64_t>(elem) *
                           static_cast<std::uint64_t>(L::Q) +
                           static_cast<std::uint64_t>(dir))
               ->second *
           2;
  }

  void build_rim_index();
  void ensure_records();
  /// One launch covering source nodes in planes [rx0, rx1); the full range
  /// is bit-identical to the monolithic step (see StEngine).
  void step_range(bool even, int rx0, int rx1, gpusim::KernelRecord& rec);
  /// Sparse launches over tile-list entries [begin, begin + count): one
  /// thread per tile, 64 locals swept inside. `masks` is null for the
  /// all-fluid list. Scalar-only.
  void step_tiles(bool even, const gpusim::GlobalArray<std::int32_t>& list,
                  const gpusim::GlobalArray<std::uint64_t>* masks, int begin,
                  int count, gpusim::KernelRecord& rec);
  void step_sparse(int fl, int fr, bool frontier_only,
                   const typename Engine<L>::FrontierDoneFn& on_frontier);

  CollisionScheme scheme_;
  int threads_per_block_;
  ExecMode exec_;
  gpusim::Profiler prof_;
  gpusim::GlobalArray<ST> f_;
  /// Boundary rim: [value, density] per blocked link, real_t words holding
  /// already-narrowed values (see file comment). Empty on wall-free
  /// periodic domains.
  gpusim::GlobalArray<real_t> rim_;
  /// (element * Q + direction) -> rim link slot, host-built at construction.
  std::unordered_map<std::uint64_t, index_t> rim_index_;
  /// Elements per direction: box cells (dense) or tile slots * 64 (sparse).
  index_t elems_ = 0;
  bool sparse_ = false;
  TileIndexDev tdev_;
  gpusim::KernelRecord* krec_even_ = nullptr;
  gpusim::KernelRecord* krec_odd_ = nullptr;
  gpusim::KernelRecord* krec_even_frontier_ = nullptr;
  gpusim::KernelRecord* krec_odd_frontier_ = nullptr;
  gpusim::KernelRecord* krec_even_mixed_ = nullptr;
  gpusim::KernelRecord* krec_odd_mixed_ = nullptr;
  gpusim::KernelRecord* krec_even_mixed_frontier_ = nullptr;
  gpusim::KernelRecord* krec_odd_mixed_frontier_ = nullptr;
};

extern template class EpEngine<D2Q9, double>;
extern template class EpEngine<D3Q19, double>;
extern template class EpEngine<D3Q27, double>;
extern template class EpEngine<D3Q15, double>;
extern template class EpEngine<D2Q9, float>;
extern template class EpEngine<D3Q19, float>;
extern template class EpEngine<D3Q27, float>;
extern template class EpEngine<D3Q15, float>;

}  // namespace mlbm
