#include "analysis/static/traffic.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace mlbm::analysis {

namespace {

/// Distinct (array, component) pairs read by the descriptor set: each pair
/// touches every node once per step, so this times N is the unique-address
/// read footprint.
std::uint64_t distinct_read_comps(const std::vector<AccessDesc>& acc) {
  std::set<std::pair<int, int>> seen;
  for (const auto& a : acc) {
    if (a.write) continue;
    for (int c : a.comps) seen.emplace(a.array, c);
  }
  return seen.size();
}

void add_node_accesses(const std::vector<AccessDesc>& acc, std::uint64_t n,
                       std::uint64_t e, StepTraffic& out) {
  for (const auto& a : acc) {
    const auto comps = static_cast<std::uint64_t>(a.comps.size());
    const std::uint64_t bytes = n * comps * e;
    const std::uint64_t txns = n * (a.span ? 1 : comps);
    if (a.write) {
      out.bytes_written += bytes;
      out.writes += txns;
    } else {
      out.bytes_read += bytes;
      out.reads += txns;
    }
  }
}

}  // namespace

StepTraffic derive_step_traffic(const EngineContract& c, int nx, int ny,
                                int nz, long long t) {
  StepTraffic out;
  const auto e = static_cast<std::uint64_t>(c.elem_bytes);
  const auto n = static_cast<std::uint64_t>(nx) *
                 static_cast<std::uint64_t>(ny) *
                 static_cast<std::uint64_t>(nz);
  if (!c.node_kernels.empty()) {
    const auto phase = static_cast<std::size_t>(
        t % static_cast<long long>(c.steps_per_cycle));
    const NodeKernelContract& nk = c.node_kernels.at(phase);
    add_node_accesses(nk.accesses, n, e, out);
    out.unique_read_bytes = n * distinct_read_comps(nk.accesses) * e;
  }
  for (const auto& rk : c.ring_kernels) {
    // The sweep kernel's per-step loads: every level, every owned layer,
    // one src_load per source position of the tile cross-section PLUS its
    // declared halo — so per x-tile of width cax the row is cax + 2h wide,
    // and summing the clamped, possibly ragged tile decomposition gives
    // extent + 2h * ntiles per cross axis. Writes are one dst_store per
    // owned node. Halo loads re-read neighbour columns' elements, which is
    // exactly why unique (ideal-L2) bytes stay at one read per element.
    const int ncx0 = nx;
    const int ncx1 = c.lattice.dim == 2 ? 1 : ny;
    const int S = c.lattice.dim == 2 ? ny : nz;
    const int tx = std::min(rk.tile_x, ncx0);
    const int ty = c.lattice.dim == 2 ? 1 : std::min(rk.tile_y, ncx1);
    const int nc0 = (ncx0 + tx - 1) / tx;
    const int nc1 = (ncx1 + ty - 1) / ty;
    const int h = rk.cross_halo;
    const auto positions =
        static_cast<std::uint64_t>(S) *
        static_cast<std::uint64_t>(ncx0 + 2 * h * nc0) *
        (c.lattice.dim == 2
             ? std::uint64_t{1}
             : static_cast<std::uint64_t>(ncx1 + 2 * h * nc1));
    const auto rd_comps = static_cast<std::uint64_t>(rk.src_load.comps.size());
    out.bytes_read += positions * rd_comps * e;
    out.reads += positions * (rk.src_load.span ? 1 : rd_comps);
    const auto wr_comps =
        static_cast<std::uint64_t>(rk.dst_store.comps.size());
    out.bytes_written += n * wr_comps * e;
    out.writes += n * (rk.dst_store.span ? 1 : wr_comps);
    out.unique_read_bytes += n * rd_comps * e;
  }
  return out;
}

double derived_bytes_per_flup(const EngineContract& c) {
  if (c.empty()) return 0.0;
  const auto e = static_cast<double>(c.elem_bytes);
  double per_cycle = 0.0;
  int phases = 0;
  for (const auto& nk : c.node_kernels) {
    std::uint64_t writes = 0;
    for (const auto& a : nk.accesses) {
      if (a.write) writes += a.comps.size();
    }
    per_cycle +=
        (static_cast<double>(distinct_read_comps(nk.accesses)) +
         static_cast<double>(writes)) *
        e;
    ++phases;
  }
  for (const auto& rk : c.ring_kernels) {
    per_cycle += (static_cast<double>(rk.src_load.comps.size()) +
                  static_cast<double>(rk.dst_store.comps.size())) *
                 e;
    ++phases;
  }
  if (phases != c.steps_per_cycle) {
    throw ConfigError(
        "derived_bytes_per_flup: kernel phases do not cover the cycle");
  }
  return per_cycle / static_cast<double>(c.steps_per_cycle);
}

}  // namespace mlbm::analysis
