// Global-memory traffic accounting: verifies the bytes-per-fluid-lattice-
// update numbers of Table 2 against the instrumented engines, including the
// MR pattern's halo overhead.
#include <gtest/gtest.h>

#include "engines/mr_engine.hpp"
#include "engines/st_engine.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

Geometry periodic_geo(int nx, int ny, int nz) {
  Geometry geo(Box{nx, ny, nz});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return geo;
}

template <class L, class E>
gpusim::TrafficSnapshot traffic_of_steps(E& eng, int steps) {
  eng.initialize(
      [](int, int, int) { return equilibrium_moments<L>(1.0, {}); });
  eng.step();  // warm-up excluded from measurement
  const auto before = eng.profiler()->total_traffic();
  eng.run(steps);
  return eng.profiler()->total_traffic() - before;
}

TEST(Table2Traffic, StD2Q9Is2QDoublesPerNode) {
  StEngine<D2Q9> e(periodic_geo(16, 12, 1), 0.8);
  const int steps = 3;
  const auto t = traffic_of_steps<D2Q9>(e, steps);
  const auto nodes = static_cast<std::uint64_t>(16 * 12) * steps;
  EXPECT_EQ(t.bytes_read, nodes * 9 * sizeof(real_t));
  EXPECT_EQ(t.bytes_written, nodes * 9 * sizeof(real_t));
}

TEST(Table2Traffic, StD3Q19Is2QDoublesPerNode) {
  StEngine<D3Q19> e(periodic_geo(8, 6, 5), 0.8);
  const int steps = 2;
  const auto t = traffic_of_steps<D3Q19>(e, steps);
  const auto nodes = static_cast<std::uint64_t>(8 * 6 * 5) * steps;
  EXPECT_EQ(t.bytes_read, nodes * 19 * sizeof(real_t));
  EXPECT_EQ(t.bytes_written, nodes * 19 * sizeof(real_t));
}

TEST(Table2Traffic, MrD2Q9WritesAreExactlyMDoublesPerNode) {
  MrEngine<D2Q9> e(periodic_geo(16, 12, 1), 0.8, Regularization::kProjective,
                   {8, 1, 2});
  const int steps = 3;
  const auto t = traffic_of_steps<D2Q9>(e, steps);
  const auto nodes = static_cast<std::uint64_t>(16 * 12) * steps;
  EXPECT_EQ(t.bytes_written, nodes * 6 * sizeof(real_t));
  // Reads: M per node plus the x-halo (2 extra columns per 8-wide tile).
  const double halo = (8.0 + 2.0) / 8.0;
  EXPECT_EQ(t.bytes_read,
            static_cast<std::uint64_t>(nodes * 6 * sizeof(real_t) * halo));
}

TEST(Table2Traffic, MrD3Q19HaloFactorMatchesTileGeometry) {
  MrEngine<D3Q19> e(periodic_geo(8, 8, 5), 0.8, Regularization::kProjective,
                    {4, 4, 1});
  const int steps = 2;
  const auto t = traffic_of_steps<D3Q19>(e, steps);
  const auto nodes = static_cast<std::uint64_t>(8 * 8 * 5) * steps;
  EXPECT_EQ(t.bytes_written, nodes * 10 * sizeof(real_t));
  const double halo = (6.0 * 6.0) / (4.0 * 4.0);  // (tx+2)(ty+2)/(tx ty)
  EXPECT_EQ(t.bytes_read,
            static_cast<std::uint64_t>(nodes * 10 * sizeof(real_t) * halo));
}

TEST(Table2Traffic, MrRecursiveHasSameTrafficAsProjective) {
  // "Because the differences between MR-P and MR-R are limited to in-cache
  // behaviour, their B/F requirements are identical" (Section 4.1).
  MrEngine<D2Q9> p(periodic_geo(16, 12, 1), 0.8, Regularization::kProjective,
                   {8, 1, 2});
  MrEngine<D2Q9> r(periodic_geo(16, 12, 1), 0.8, Regularization::kRecursive,
                   {8, 1, 2});
  const auto tp = traffic_of_steps<D2Q9>(p, 2);
  const auto tr = traffic_of_steps<D2Q9>(r, 2);
  EXPECT_EQ(tp.bytes_read, tr.bytes_read);
  EXPECT_EQ(tp.bytes_written, tr.bytes_written);
}

TEST(Table2Traffic, CircularShiftMovesSameBytesAsPingPong) {
  MrEngine<D2Q9> a(periodic_geo(16, 12, 1), 0.8, Regularization::kProjective,
                   {8, 1, 1, MomentStorage::kPingPong});
  MrEngine<D2Q9> b(periodic_geo(16, 12, 1), 0.8, Regularization::kProjective,
                   {8, 1, 1, MomentStorage::kCircularShift});
  const auto ta = traffic_of_steps<D2Q9>(a, 2);
  const auto tb = traffic_of_steps<D2Q9>(b, 2);
  EXPECT_EQ(ta.bytes_read, tb.bytes_read);
  EXPECT_EQ(ta.bytes_written, tb.bytes_written);
}

TEST(Table2Traffic, RatioMatchesPaper) {
  // D2Q9: 144 vs 96 B/F -> ST/MR = 1.5; D3Q19: 304 vs 160 -> 1.9.
  EXPECT_DOUBLE_EQ(2.0 * 9 * 8 / (2.0 * 6 * 8), 1.5);
  EXPECT_DOUBLE_EQ(2.0 * 19 * 8 / (2.0 * 10 * 8), 1.9);
}

TEST(DramModel, UniqueReadsEqualNominalBpfForMr) {
  // The halo overhead is purely re-reads: with an ideal cache in front of
  // DRAM, each node's M moments are fetched exactly once per step.
  MrEngine<D3Q19> e(periodic_geo(8, 8, 5), 0.8, Regularization::kProjective,
                    {4, 4, 1});
  e.initialize(
      [](int, int, int) { return equilibrium_moments<D3Q19>(1.0, {}); });
  e.set_unique_read_tracking(true);
  e.step();
  e.clear_unique_reads();
  e.step();
  const auto cells = static_cast<std::uint64_t>(8 * 8 * 5);
  EXPECT_EQ(e.unique_read_bytes(), cells * 10 * sizeof(real_t));
}

TEST(DramModel, UniqueReadsEqualNominalBpfForSt) {
  StEngine<D2Q9> e(periodic_geo(16, 12, 1), 0.8);
  e.initialize(
      [](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
  e.set_unique_read_tracking(true);
  e.step();
  e.clear_unique_reads();
  e.step();
  const auto cells = static_cast<std::uint64_t>(16 * 12);
  EXPECT_EQ(e.unique_read_bytes(), cells * 9 * sizeof(real_t));
}

TEST(DramModel, TrackingCanBeClearedAndDisabled) {
  gpusim::TrafficCounter c;
  gpusim::GlobalArray<double> a(16, &c);
  EXPECT_EQ(a.unique_read_bytes(), 0u);  // disabled by default
  a.set_unique_read_tracking(true);
  (void)a.load(3);
  (void)a.load(3);
  (void)a.load(5);
  EXPECT_EQ(a.unique_read_count(), 2u);
  EXPECT_EQ(a.unique_read_bytes(), 2 * sizeof(double));
  a.clear_unique_reads();
  EXPECT_EQ(a.unique_read_count(), 0u);
  (void)a.load(1);
  EXPECT_EQ(a.unique_read_count(), 1u);
  a.set_unique_read_tracking(false);
  (void)a.load(2);
  EXPECT_EQ(a.unique_read_count(), 0u);
}

TEST(Profiler, MrKernelRecordsGeometryAndSyncs) {
  MrEngine<D2Q9> e(periodic_geo(16, 12, 1), 0.8, Regularization::kProjective,
                   {8, 1, 2});
  e.initialize(
      [](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
  e.step();
  const auto records = e.profiler()->all_records();
  ASSERT_EQ(records.size(), 1u);
  const auto& r = records[0];
  EXPECT_EQ(r.name, "mr_p_D2Q9");
  EXPECT_EQ(r.grid.x, 2);  // 16 / tile_x(8)
  EXPECT_EQ(r.block.x, 10);  // tile_x + 2 halo threads
  // Ring of (tile_s + 2) layers plus, on a periodic sweep axis, the three
  // wrap stash buffers of one layer each.
  EXPECT_EQ(r.shared_bytes_per_block,
            (8u * (2 + 2) * 9 + 3u * 8 * 9) * sizeof(real_t));
  EXPECT_GT(r.syncs, 0u);
}

TEST(Profiler, TrafficCanBeDisabledForLongRuns) {
  MrEngine<D2Q9> e(periodic_geo(16, 12, 1), 0.8, Regularization::kProjective);
  e.initialize(
      [](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
  e.profiler()->counter().set_enabled(false);
  e.run(2);
  EXPECT_EQ(e.profiler()->total_traffic().bytes_total(), 0u);
}

}  // namespace
}  // namespace mlbm
