// AA-pattern single-lattice engine (Bailey et al. 2009).
//
// The paper's related work motivates reducing LBM's memory footprint on
// GPUs; before the moment representation, the standard answer was in-place
// streaming: the AA pattern keeps ONE distribution lattice (Q elements per
// node — half of ST) by alternating two kernel flavours:
//
//   even step   read slot i of x, collide, write f*_i into slot opposite(i)
//               of x (pure node-local swap; no neighbour traffic);
//   odd step    gather f_i(x,t+1) = f*_i(x - c_i, t) from slot opposite(i)
//               of the upwind neighbour, collide, scatter f*_i(t+1) into
//               slot i of the downwind neighbour x + c_i — performing two
//               half-streams so that the next even step again reads plainly.
//
// Per-update global traffic is identical to ST (2Q elements), so the AA
// pattern is the paper's natural memory-footprint baseline: it matches MR's
// *bandwidth* profile story but not its traffic reduction. Included for the
// memory table and ablations.
//
// Storage parity: after an odd step (and at initialization) memory holds the
// plain pre-collision state; after an even step it holds the node-local
// swapped post-collision state. moments_at/impose translate both parities to
// the shared pre-collision moment convention, so boundary passes and tests
// work unchanged — including mid-cycle.
//
// `ST` is the storage-precision policy (element type of the single lattice);
// compute stays real_t with conversion at the register boundary.
//
// Sparse geometries (Geometry::sparse()): the single lattice is
// tile-compressed exactly like StEngine's pair (tile_kernels.hpp) and each
// even/odd step issues one launch over the all-fluid tile list and one over
// the occupancy-masked mixed tiles, so the profiler attributes traffic per
// tile class. The even step is node-local and loads only the tile's own slot
// (one int32 per tile); the odd step loads the full neighbour-slot stash.
// Sparse always runs the scalar kernel bodies (ExecMode::kLanes falls back;
// bit-identical by construction). Dense geometries take the pre-existing
// path bit-identically, fields and traffic counters.
#pragma once

#include "core/collision.hpp"
#include "engines/engine.hpp"
#include "engines/tile_kernels.hpp"
#include "gpusim/global_array.hpp"
#include "gpusim/profiler.hpp"

namespace mlbm {

template <class L, class ST = real_t>
class AaEngine final : public Engine<L> {
 public:
  using StorageT = ST;

  /// `exec` selects the scalar or lane-batched kernel body. Lane batching is
  /// safe for the in-place odd step because every lattice word has a unique
  /// reader == writer node, so only each node's own gather-before-scatter
  /// order matters — which panels preserve.
  ///
  /// `allow_open_faces` relaxes the no-open-faces validation for slab
  /// decomposition: an interface face is kOpen, its ghost band absorbs the
  /// locally-wrong open-link updates, and the per-step moment exchange
  /// (ghost depth 2 — see MultiDomainEngine) re-imposes the band before the
  /// corruption reaches owned planes. Physical inlet/outlet faces remain
  /// unsupported.
  AaEngine(Geometry geo, real_t tau,
           CollisionScheme scheme = CollisionScheme::kBGK,
           int threads_per_block = 256, ExecMode exec = default_exec_mode(),
           bool allow_open_faces = false);

  [[nodiscard]] const char* pattern_name() const override { return "ST-AA"; }
  void initialize(const typename Engine<L>::InitFn& init) override;
  [[nodiscard]] Moments<L> moments_at(int x, int y, int z) const override;
  void impose(int x, int y, int z, const Moments<L>& m) override;
  [[nodiscard]] std::size_t state_bytes() const override;
  [[nodiscard]] StoragePrecision storage_precision() const override {
    return precision_of_v<ST>;
  }

  [[nodiscard]] gpusim::Profiler* profiler() override { return &prof_; }
  [[nodiscard]] const gpusim::Profiler* profiler() const override {
    return &prof_;
  }
  [[nodiscard]] int threads_per_block() const { return threads_per_block_; }
  [[nodiscard]] ExecMode exec_mode() const { return exec_; }

  /// Declared kernel accesses of the two in-place flavours. The analyzer
  /// re-proves Bailey's invariant from the declaration alone: every gather
  /// and scatter that share a lattice word also share a thread.
  [[nodiscard]] analysis::EngineContract access_contract() const override {
    return analysis::aa_contract(analysis::make_lattice_desc<L>(), sizeof(ST),
                                 batched_io_);
  }

  /// Validation hook: scalar per-population I/O instead of batched spans on
  /// the even (node-local) step. Bytes identical; transactions differ by Q.
  void set_batched_io(bool on) { batched_io_ = on; }
  [[nodiscard]] bool batched_io() const { return batched_io_; }

  /// Binds the sanitizer to the profiler and the single in-place lattice.
  /// The AA pattern rewrites every slot every step (reader thread == writer
  /// thread per element), so the lattice satisfies the sliding-window
  /// freshness contract and opts into the staleness check.
  void set_sanitizer(gpusim::SanitizerHook* san) override {
    prof_.set_sanitizer_hook(san);
    f_.set_sanitizer(san, "f", /*sliding_window=*/true);
    if (sparse_) tdev_.set_sanitizer(san);
  }

  void set_unique_read_tracking(bool on) override {
    f_.set_unique_read_tracking(on);
  }
  void clear_unique_reads() override { f_.clear_unique_reads(); }
  [[nodiscard]] std::uint64_t unique_read_bytes() const override {
    return f_.unique_read_bytes();
  }

  /// Soft-error surface: the single in-place lattice.
  [[nodiscard]] std::uint64_t fault_sites() const override {
    return f_.size();
  }
  void inject_storage_bitflip(std::uint64_t site, unsigned bit) override {
    f_.flip_bit(static_cast<std::size_t>(site % f_.size()), bit);
  }

  /// Raw snapshot surface: the single in-place lattice. The tag carries the
  /// storage parity — a blob captured in the swapped (post-even-step)
  /// representation only restores into an engine re-timed to that phase,
  /// which restore_state guarantees by calling set_time() first.
  [[nodiscard]] std::string raw_state_tag() const override {
    const Box& b = this->geo_.box;
    std::string tag = std::string(pattern_name()) +
                      (swapped_phase() ? "|swapped|" : "|plain|") +
                      std::to_string(b.nx) + "x" + std::to_string(b.ny) + "x" +
                      std::to_string(b.nz);
    if (sparse_) {
      // Compressed-element order depends on the flag field; restores must
      // come from the identical geometry.
      tag += "|sparse:" + std::to_string(this->geo_.hash());
    }
    return tag;
  }
  void serialize_raw_state(std::vector<real_t>& out) const override {
    out.reserve(out.size() + f_.size());
    for (std::size_t i = 0; i < f_.size(); ++i) {
      out.push_back(static_cast<real_t>(f_.raw(static_cast<index_t>(i))));
    }
  }
  void restore_raw_state(const std::vector<real_t>& in) override {
    if (in.size() != f_.size()) {
      throw ConfigError("AaEngine: raw snapshot does not match lattice size");
    }
    for (std::size_t i = 0; i < in.size(); ++i) {
      f_.raw(static_cast<index_t>(i)) = static_cast<ST>(in[i]);
    }
  }

  /// Even steps are node-local (ext 0); odd steps partition by source node
  /// with a one-plane extension (every lattice word has a unique
  /// reader == writer node, so plane-range launches touch disjoint words).
  [[nodiscard]] bool supports_frontier_split() const override { return true; }

 protected:
  void do_step() override;
  void do_step_split(const FrontierSpec& fs,
                     const typename Engine<L>::FrontierDoneFn& on_frontier)
      override;

 private:
  [[nodiscard]] index_t soa(int i, index_t elem) const {
    return static_cast<index_t>(i) * elems_ + elem;
  }
  /// Element index of node (x, y, z) in the lattice: the box cell when
  /// dense, the tile-compressed slot*64+local when sparse (-1 for nodes in
  /// unallocated all-solid tiles).
  [[nodiscard]] index_t element(int x, int y, int z) const {
    return sparse_ ? this->geo_.tiles().element(x, y, z)
                   : this->geo_.box.idx(x, y, z);
  }
  /// True when memory currently holds the even-step (swapped post-collision)
  /// representation.
  [[nodiscard]] bool swapped_phase() const { return this->t_ % 2 == 1; }

  void ensure_records();
  /// One launch covering nodes in planes [rx0, rx1); the full range is
  /// bit-identical to the monolithic step (see StEngine).
  void step_even(int rx0, int rx1, gpusim::KernelRecord& rec);
  void step_odd(int rx0, int rx1, gpusim::KernelRecord& rec);
  /// Sparse launches over tile-list entries [begin, begin + count): one
  /// thread per tile, 64 locals swept inside. `masks` is null for the
  /// all-fluid list. Scalar-only.
  void step_even_tiles(const gpusim::GlobalArray<std::int32_t>& list,
                       const gpusim::GlobalArray<std::uint64_t>* masks,
                       int begin, int count, gpusim::KernelRecord& rec);
  void step_odd_tiles(const gpusim::GlobalArray<std::int32_t>& list,
                      const gpusim::GlobalArray<std::uint64_t>* masks,
                      int begin, int count, gpusim::KernelRecord& rec);
  void step_sparse(int fl, int fr, bool frontier_only,
                   const typename Engine<L>::FrontierDoneFn& on_frontier);

  CollisionScheme scheme_;
  int threads_per_block_;
  ExecMode exec_;
  gpusim::Profiler prof_;
  gpusim::GlobalArray<ST> f_;
  bool batched_io_ = true;
  /// Elements per direction: box cells (dense) or tile slots * 64 (sparse).
  index_t elems_ = 0;
  bool sparse_ = false;
  TileIndexDev tdev_;
  /// Cached kernel records (even/odd flavours, plus frontier variants for
  /// split steps) — no string lookup per step. Sparse steps reuse the
  /// even/odd records for the all-fluid tile launch and record the masked
  /// mixed-tile launch separately (per-tile-class traffic attribution).
  gpusim::KernelRecord* krec_even_ = nullptr;
  gpusim::KernelRecord* krec_odd_ = nullptr;
  gpusim::KernelRecord* krec_even_frontier_ = nullptr;
  gpusim::KernelRecord* krec_odd_frontier_ = nullptr;
  gpusim::KernelRecord* krec_even_mixed_ = nullptr;
  gpusim::KernelRecord* krec_odd_mixed_ = nullptr;
  gpusim::KernelRecord* krec_even_mixed_frontier_ = nullptr;
  gpusim::KernelRecord* krec_odd_mixed_frontier_ = nullptr;
};

extern template class AaEngine<D2Q9, double>;
extern template class AaEngine<D3Q19, double>;
extern template class AaEngine<D3Q27, double>;
extern template class AaEngine<D3Q15, double>;
extern template class AaEngine<D2Q9, float>;
extern template class AaEngine<D3Q19, float>;
extern template class AaEngine<D3Q27, float>;
extern template class AaEngine<D3Q15, float>;

}  // namespace mlbm
