# Empty dependencies file for pattern_comparison.
# This may be replaced when dependencies are built.
