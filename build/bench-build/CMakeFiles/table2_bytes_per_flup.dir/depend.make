# Empty dependencies file for table2_bytes_per_flup.
# This may be replaced when dependencies are built.
