// Lid-driven cavity at moderate Reynolds number: a closed-box benchmark with
// a moving wall, run with the MR-R engine (recursive regularization improves
// stability at higher Re). Prints the centreline velocity profile and writes
// VTK output for visualization.
//
//   ./examples/lid_driven_cavity [--n 48] [--re 100] [--ulid 0.1]
//                                [--steps 8000] [--pattern mr-r|mr-p|st|ep]
//                                [--precision fp64|fp32]
//                                [--vtk cavity.vtk] [--sanitize]
//
// --sanitize runs the engine under the mlbm-sanitizer (docs/sanitizer.md)
// and exits nonzero if any hazard is reported.
#include <cmath>
#include <cstdio>

#include "analysis/sanitizer/sanitizer.hpp"
#include "engines/factory.hpp"
#include "io/vtk_writer.hpp"
#include "util/cli.hpp"
#include "workloads/cavity.hpp"

int main(int argc, char** argv) {
  using namespace mlbm;
  const Cli cli(argc, argv);
  cli.reject_unknown({"n", "pattern", "precision", "re", "sanitize", "steps", "ulid", "vtk"});
  const int n = cli.get_int("n", 48, 1);
  const real_t re = cli.get_double("re", 100);
  const real_t ulid = cli.get_double("ulid", 0.1);
  const int steps = cli.get_int("steps", 8000, 1);
  const auto prec = parse_precision(cli.get("precision", "fp64"));
  if (!prec) {
    std::fprintf(stderr, "error: --precision must be fp64 or fp32\n");
    return 1;
  }

  // Choose tau from the requested Reynolds number: nu = ulid * n / Re.
  const real_t nu = ulid * n / re;
  const real_t tau = nu / D2Q9::cs2 + real_t(0.5);
  std::printf(
      "lid_driven_cavity: %dx%d, Re=%.0f, u_lid=%.2f -> tau=%.4f, storage "
      "%s\n",
      n, n, re, ulid, tau, to_string(*prec));

  const auto cav = LidDrivenCavity<D2Q9>::create(n, ulid);
  const std::string pattern = cli.get("pattern", "mr-r");
  std::unique_ptr<Engine<D2Q9>> eng_ptr;
  if (pattern == "mr-r" || pattern == "mr-p") {
    eng_ptr = make_mr_engine<D2Q9>(*prec, cav.geo, tau,
                                   pattern == "mr-r"
                                       ? Regularization::kRecursive
                                       : Regularization::kProjective,
                                   MrConfig{16, 1, 4});
  } else if (pattern == "st") {
    eng_ptr = make_st_engine<D2Q9>(*prec, cav.geo, tau);
  } else if (pattern == "ep") {
    eng_ptr = make_ep_engine<D2Q9>(*prec, cav.geo, tau);
  } else {
    std::fprintf(stderr, "error: --pattern must be mr-r, mr-p, st or ep\n");
    return 1;
  }
  Engine<D2Q9>& eng = *eng_ptr;
  analysis::Sanitizer san;
  if (cli.has("sanitize")) eng.set_sanitizer(&san);
  cav.attach(eng);
  eng.profiler()->counter().set_enabled(false);

  const real_t mass0 = LidDrivenCavity<D2Q9>::total_mass(eng);
  eng.run(steps);
  const real_t mass1 = LidDrivenCavity<D2Q9>::total_mass(eng);

  // Vertical centreline u_x profile (the classic Ghia et al. diagnostic).
  std::printf("\n%6s %12s\n", "y/n", "u_x/u_lid");
  real_t u_min = 0;
  int y_min = 0;
  for (int y = 0; y < n; ++y) {
    const auto m = eng.moments_at(n / 2, y, 0);
    if (m.u[0] < u_min) {
      u_min = m.u[0];
      y_min = y;
    }
    if (y % std::max(1, n / 12) == 0) {
      std::printf("%6.3f %12.4f\n", (y + 0.5) / n, m.u[0] / ulid);
    }
  }
  std::printf("\nreturn-flow minimum u_x/u_lid = %.3f at y/n = %.2f "
              "(Ghia Re=100: about -0.21 at 0.46)\n",
              u_min / ulid, (y_min + 0.5) / n);
  std::printf("mass drift over %d steps: %.2e (bounceback conserves mass)\n",
              steps, std::abs(mass1 - mass0) / mass0);

  if (cli.has("vtk")) {
    write_vtk(eng, cli.get("vtk", "cavity.vtk"));
    std::printf("wrote %s\n", cli.get("vtk", "cavity.vtk").c_str());
  }
  if (cli.has("sanitize")) {
    std::printf("%s", san.report().to_string().c_str());
    if (!san.report().clean()) {
      std::fprintf(stderr, "sanitizer: %llu hazard(s) reported\n",
                   static_cast<unsigned long long>(san.report().total()));
      return 2;
    }
  }
  return 0;
}
