// Instrumented device-global memory.
//
// GlobalArray<T> models a GPU global-memory allocation. Kernel code must use
// `load`/`store`, which are counted by the attached TrafficCounter exactly as
// a profiler reports DRAM traffic for a cache-unfriendly working set (LBM's
// state does not fit in L2 at the paper's problem sizes, so every kernel
// access is a DRAM access — the basis of Table 2's byte counts).
//
// Host-side (uncounted) access goes through `raw`/`host_data`, mirroring
// cudaMemcpy-style initialization that the paper would not count either.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/traffic.hpp"
#include "util/types.hpp"

namespace mlbm::gpusim {

template <typename T>
class GlobalArray {
 public:
  GlobalArray() = default;

  GlobalArray(std::size_t n, TrafficCounter* counter)
      : data_(n), counter_(counter) {}

  void allocate(std::size_t n, TrafficCounter* counter) {
    data_.assign(n, T{});
    counter_ = counter;
    read_touched_.clear();
  }

  /// Device load: counted.
  [[nodiscard]] T load(index_t i) const {
    assert(i >= 0 && static_cast<std::size_t>(i) < data_.size());
    counter_->add_read(sizeof(T));
    if (!read_touched_.empty()) {
      std::atomic_ref<std::uint8_t>(
          read_touched_[static_cast<std::size_t>(i)])
          .store(1, std::memory_order_relaxed);
    }
    return data_[static_cast<std::size_t>(i)];
  }

  /// Device store: counted.
  void store(index_t i, T v) {
    assert(i >= 0 && static_cast<std::size_t>(i) < data_.size());
    counter_->add_write(sizeof(T));
    data_[static_cast<std::size_t>(i)] = v;
  }

  /// Host access: NOT counted (initialization, result inspection).
  [[nodiscard]] T& raw(index_t i) {
    assert(i >= 0 && static_cast<std::size_t>(i) < data_.size());
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const T& raw(index_t i) const {
    assert(i >= 0 && static_cast<std::size_t>(i) < data_.size());
    return data_[static_cast<std::size_t>(i)];
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t size_bytes() const {
    return data_.size() * sizeof(T);
  }
  [[nodiscard]] bool allocated() const { return !data_.empty(); }

  void swap(GlobalArray& other) {
    data_.swap(other.data_);
    std::swap(counter_, other.counter_);
    read_touched_.swap(other.read_touched_);
  }

  /// Unique-address read tracking: models an ideal cache in front of DRAM.
  /// While enabled, `unique_read_count` reports how many *distinct* elements
  /// were loaded since the last clear — the traffic a profiler attributes to
  /// DRAM when re-reads (e.g. the MR column halos) hit in L2.
  void set_unique_read_tracking(bool on) {
    if (on) {
      read_touched_.assign(data_.size(), 0);
    } else {
      read_touched_.clear();
    }
  }
  void clear_unique_reads() {
    if (!read_touched_.empty()) {
      read_touched_.assign(read_touched_.size(), 0);
    }
  }
  [[nodiscard]] std::uint64_t unique_read_count() const {
    std::uint64_t n = 0;
    for (auto b : read_touched_) n += b;
    return n;
  }
  [[nodiscard]] std::uint64_t unique_read_bytes() const {
    return unique_read_count() * sizeof(T);
  }

 private:
  std::vector<T> data_;
  TrafficCounter* counter_ = nullptr;
  mutable std::vector<std::uint8_t> read_touched_;
};

}  // namespace mlbm::gpusim
