#include "engines/mr_engine.hpp"

#include "util/error.hpp"

#include <cassert>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "core/collision.hpp"
#include "core/lanes.hpp"
#include "gpusim/launch.hpp"

namespace mlbm {

namespace {

/// Velocity component along the sweep axis (y in 2D, z in 3D).
template <class L>
constexpr int c_sweep(int i) {
  return L::c[static_cast<std::size_t>(i)][L::D == 2 ? 1 : 2];
}

}  // namespace

template <class L, class ST>
MrEngine<L, ST>::MrEngine(Geometry geo, real_t tau, Regularization scheme,
                      MrConfig config, ExecMode exec)
    : Engine<L>(std::move(geo), tau),
      scheme_(scheme),
      config_(config),
      exec_(exec) {
  if (config_.tile_x < 1 || config_.tile_y < 1 || config_.tile_s < 1) {
    throw ConfigError("MrEngine: tile extents must be positive");
  }
  const Box& b = this->geo_.box;
  if constexpr (L::D == 2) {
    if (b.nz != 1) throw ConfigError("MrEngine<2D>: nz must be 1");
  }
  const auto ncx0 = static_cast<std::size_t>(b.nx);
  const auto ncx1 = static_cast<std::size_t>(L::D == 2 ? 1 : b.ny);
  sparse_ = this->geo_.sparse();
  if (sparse_) {
    // Column compression: a cross-section column whose every sweep layer is
    // solid allocates no moment storage. Ids are assigned in row-major cross
    // order, so an all-fluid (forced-sparse) geometry gets the identity map
    // and the dense addressing bit-for-bit.
    const int S = sweep_extent();
    colmap_.allocate(ncx0 * ncx1, &prof_.counter());
    index_t next = 0;
    for (std::size_t c1 = 0; c1 < ncx1; ++c1) {
      for (std::size_t c0 = 0; c0 < ncx0; ++c0) {
        bool any_fluid = false;
        for (int s = 0; s < S && !any_fluid; ++s) {
          const int x = static_cast<int>(c0);
          const int y = L::D == 2 ? s : static_cast<int>(c1);
          const int z = L::D == 2 ? 0 : s;
          any_fluid = !this->geo_.solid(x, y, z);
        }
        colmap_.raw(static_cast<index_t>(c1 * ncx0 + c0)) =
            any_fluid ? static_cast<std::int32_t>(next++)
                      : std::int32_t{-1};
      }
    }
    ncols_ = next;
  } else {
    ncols_ = static_cast<index_t>(ncx0 * ncx1);
  }
  const auto s_layers =
      static_cast<std::size_t>(config_.storage == MomentStorage::kPingPong
                                   ? sweep_extent()
                                   : sweep_extent() + 2);
  const std::size_t n =
      static_cast<std::size_t>(M) * static_cast<std::size_t>(ncols_) *
      s_layers;
  mom_[0].allocate(n, &prof_.counter());
  if (config_.storage == MomentStorage::kPingPong) {
    mom_[1].allocate(n, &prof_.counter());
  }
}

template <class L, class ST>
int MrEngine<L, ST>::sweep_extent() const {
  return L::D == 2 ? this->geo_.box.ny : this->geo_.box.nz;
}

template <class L, class ST>
int MrEngine<L, ST>::phys_layer(int s, long long t) const {
  if (config_.storage == MomentStorage::kPingPong) return s;
  const long long r = sweep_extent() + 2;
  const long long p = (static_cast<long long>(s) - 2 * t) % r;
  return static_cast<int>(p < 0 ? p + r : p);
}

template <class L, class ST>
index_t MrEngine<L, ST>::col_of(int cx0, int cx1) const {
  const index_t ncx0 = this->geo_.box.nx;
  const index_t flat = static_cast<index_t>(cx1) * ncx0 + cx0;
  if (!sparse_) return flat;
  return static_cast<index_t>(std::as_const(colmap_).raw(flat));
}

template <class L, class ST>
index_t MrEngine<L, ST>::midx(int m, int cx0, int cx1, int sp) const {
  const index_t layers = config_.storage == MomentStorage::kPingPong
                             ? sweep_extent()
                             : sweep_extent() + 2;
  return (static_cast<index_t>(m) * layers + sp) * ncols_ +
         col_of(cx0, cx1);
}

template <class L, class ST>
Moments<L> MrEngine<L, ST>::read_moments_raw(int cx0, int cx1, int s,
                                         long long t) const {
  const int sp = phys_layer(s, t);
  const auto& buf = mom_[cur_];
  Moments<L> m;
  m.rho = static_cast<real_t>(buf.raw(midx(0, cx0, cx1, sp)));
  for (int a = 0; a < L::D; ++a) {
    m.u[static_cast<std::size_t>(a)] =
        static_cast<real_t>(buf.raw(midx(1 + a, cx0, cx1, sp)));
  }
  for (int p = 0; p < NP; ++p) {
    m.pi[static_cast<std::size_t>(p)] =
        static_cast<real_t>(buf.raw(midx(1 + L::D + p, cx0, cx1, sp)));
  }
  return m;
}

template <class L, class ST>
void MrEngine<L, ST>::write_moments_raw(int cx0, int cx1, int s, long long t,
                                    const Moments<L>& m) {
  const int sp = phys_layer(s, t);
  auto& buf = mom_[cur_];
  buf.raw(midx(0, cx0, cx1, sp)) = static_cast<ST>(m.rho);
  for (int a = 0; a < L::D; ++a) {
    buf.raw(midx(1 + a, cx0, cx1, sp)) =
        static_cast<ST>(m.u[static_cast<std::size_t>(a)]);
  }
  for (int p = 0; p < NP; ++p) {
    buf.raw(midx(1 + L::D + p, cx0, cx1, sp)) =
        static_cast<ST>(m.pi[static_cast<std::size_t>(p)]);
  }
}

template <class L, class ST>
void MrEngine<L, ST>::initialize(const typename Engine<L>::InitFn& init) {
  const Box& b = this->geo_.box;
  const bool solids = this->geo_.has_solids();
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        if (solids && this->geo_.solid(x, y, z)) continue;
        impose(x, y, z, init(x, y, z));
      }
    }
  }
}

template <class L, class ST>
Moments<L> MrEngine<L, ST>::moments_at(int x, int y, int z) const {
  if (this->geo_.has_solids() && this->geo_.solid(x, y, z)) {
    return solid_moments<L>();
  }
  if constexpr (L::D == 2) {
    return read_moments_raw(x, 0, y, this->t_);
  } else {
    return read_moments_raw(x, y, z, this->t_);
  }
}

template <class L, class ST>
void MrEngine<L, ST>::impose(int x, int y, int z, const Moments<L>& m) {
  if (this->geo_.has_solids() && this->geo_.solid(x, y, z)) return;
  if constexpr (L::D == 2) {
    write_moments_raw(x, 0, y, this->t_, m);
  } else {
    write_moments_raw(x, y, z, this->t_, m);
  }
}

template <class L, class ST>
std::size_t MrEngine<L, ST>::state_bytes() const {
  // kPingPong: two full moment lattices. kCircularShift: only mom_[0]
  // exists, sized S+2 sweep layers (M per node plus two layers — the
  // paper's footprint claim); the never-allocated mom_[1] is not touched.
  std::size_t n = mom_[0].size_bytes();
  if (mom_[1].allocated()) n += mom_[1].size_bytes();
  if (sparse_) n += colmap_.size_bytes();
  return n;
}

template <class L, class ST>
int MrEngine<L, ST>::threads_per_block() const {
  if constexpr (L::D == 2) {
    return (config_.tile_x + 2) * config_.tile_s;
  } else {
    return (config_.tile_x + 2) * (config_.tile_y + 2) * config_.tile_s;
  }
}

template <class L, class ST>
std::size_t MrEngine<L, ST>::shared_bytes_per_block() const {
  const std::size_t cross =
      static_cast<std::size_t>(config_.tile_x) *
      static_cast<std::size_t>(L::D == 2 ? 1 : config_.tile_y);
  return cross * static_cast<std::size_t>(config_.tile_s + 2) *
         static_cast<std::size_t>(L::Q) * sizeof(real_t);
}

template <class L, class ST>
int MrEngine<L, ST>::tiles_x() const {
  const int ncx0 = this->geo_.box.nx;
  const int tx = std::min(config_.tile_x, ncx0);
  return (ncx0 + tx - 1) / tx;
}

template <class L, class ST>
void MrEngine<L, ST>::ensure_records() {
  if (krec_ == nullptr) {
    const std::string base =
        std::string(scheme_ == Regularization::kProjective ? "mr_p_"
                                                           : "mr_r_") +
        L::name();
    krec_ = &prof_.record(base);
    krec_->contract = "mr.sweep";
  }
}

// Registered separately from ensure_records() so engines that never take a
// split step keep a single kernel record (the profiler reports registered
// kernels even before their first launch).
template <class L, class ST>
void MrEngine<L, ST>::ensure_frontier_record() {
  if (krec_frontier_ == nullptr) {
    krec_frontier_ = &prof_.record(std::string(krec_->name) + "_frontier");
    krec_frontier_->contract = "mr.sweep";
  }
}

template <class L, class ST>
void MrEngine<L, ST>::do_step() {
  ensure_records();
  step_tiles(0, tiles_x(), *krec_);
  if (config_.storage == MomentStorage::kPingPong) cur_ = 1 - cur_;
}

template <class L, class ST>
void MrEngine<L, ST>::do_step_split(
    const FrontierSpec& fs,
    const typename Engine<L>::FrontierDoneFn& on_frontier) {
  ensure_records();
  const bool ping_pong = config_.storage == MomentStorage::kPingPong;
  const int ncx0 = this->geo_.box.nx;
  const int tx = std::min(config_.tile_x, ncx0);
  const int nc0 = tiles_x();
  // Finalizing planes [0, left) needs every tile that owns one of them:
  // phase B writes a node's moments only from its own column, so whole
  // tiles are the split granule. No ext — columns read the ping-pong read
  // side only, which this step never writes.
  const int lt = fs.left > 0 ? (fs.left + tx - 1) / tx : 0;
  const int rt = fs.right > 0 ? (fs.right + tx - 1) / tx : 0;
  if (!ping_pong || fs.empty() || lt + rt >= nc0) {
    step_tiles(0, nc0, *krec_);
    if (on_frontier) on_frontier();
  } else {
    ensure_frontier_record();
    gpusim::LaunchGroup group(prof_);
    if (lt > 0) step_tiles(0, lt, *krec_frontier_);
    if (rt > 0) step_tiles(nc0 - rt, rt, *krec_frontier_);
    if (on_frontier) on_frontier();
    step_tiles(lt, nc0 - lt - rt, *krec_);
  }
  if (ping_pong) cur_ = 1 - cur_;
}

template <class L, class ST>
void MrEngine<L, ST>::step_tiles(int c0_begin, int c0_count,
                                 gpusim::KernelRecord& rec) {
  const Box& b = this->geo_.box;
  const Geometry& geo = this->geo_;
  const real_t tau = this->tau_;
  const real_t inv_cs2 = real_t(1) / L::cs2;
  const real_t relax = real_t(1) - real_t(1) / tau;
  const long long tt = this->t_;
  const Regularization scheme = scheme_;
  const bool ping_pong = config_.storage == MomentStorage::kPingPong;

  const int ncx0 = b.nx;
  const int ncx1 = (L::D == 2) ? 1 : b.ny;
  const int S = sweep_extent();
  const int tx = std::min(config_.tile_x, ncx0);
  const int ty = (L::D == 2) ? 1 : std::min(config_.tile_y, ncx1);
  const int ts = std::min(config_.tile_s, S);
  const int nc1 = (ncx1 + ty - 1) / ty;
  const int ntiles = (S + ts - 1) / ts;
  const int ring_w = ts + 2;

  const bool sweep_periodic = geo.bc.periodic(kSweepAxis);
  const bool cx0_periodic = geo.bc.periodic(0);
  const bool cx1_periodic = (L::D == 3) && geo.bc.periodic(1);
  if (sweep_periodic && S < ts + 3) {
    throw ConfigError(
        "MrEngine: periodic sweep axis requires extent >= tile_s + 3");
  }
  const bool sparse = sparse_;
  const bool solids = geo.has_solids();
  const gpusim::GlobalArray<std::int32_t>& colmap = colmap_;
  /// Solid flag of cross-section position (cx0, cx1) at sweep layer s.
  const auto is_solid = [&](int cx0, int cx1, int s) {
    if constexpr (L::D == 2) {
      return geo.solid(cx0, s, 0);
    } else {
      return geo.solid(cx0, cx1, s);
    }
  };

  const gpusim::GlobalArray<ST>& rbuf = mom_[ping_pong ? cur_ : 0];
  gpusim::GlobalArray<ST>& wbuf = mom_[ping_pong ? 1 - cur_ : 0];

  // Sanitizer plumbing. The phase bodies are generic lambdas over a
  // bool_constant `sanc`, dispatched once at the launch site — the
  // un-instrumented instantiation contains no shared-access reporting at
  // all (`if constexpr`), so attaching the hook costs the null path
  // nothing. The kernel reports its shared-ring accesses itself because
  // the ring is a raw span (the conceptual GPU thread ids are the kernel's
  // to define: phase A's source-halo threads and phase B's per-node writer
  // threads get disjoint id ranges).
  gpusim::SanitizerHook* const sanh = prof_.sanitizer_hook();
  constexpr int kPhaseBTid = 1 << 20;
  auto note_shared = [&](gpusim::BlockCtx& blk, const real_t* addr, int tid,
                         bool write) {
    sanh->shared_access(blk.linear_block(), addr, tid, write, blk.epoch());
  };

  // Seeded-mutation offsets (sanitizer kill-rate tests): a broken ring shift
  // or shortened write-behind distance is one slot offset on the circular
  // write layer. 0 in normal operation.
  const int wmut = ping_pong ? 0
                             : (2 - mutation_.write_behind) +
                                   mutation_.ring_shift_bias;
  const bool skip_phase_sync = mutation_.skip_phase_sync;
  const bool shrink_halo = mutation_.shrink_cross_halo;
  // Element stride between consecutive moment components of one node
  // (midx(m+1,...) - midx(m,...)); the per-node moment vector is one
  // batched span of M elements at this stride. `ncols` is the full
  // cross-section when dense, so the dense addresses are unchanged.
  const index_t ncols = ncols_;
  const index_t layers_n = static_cast<index_t>(ping_pong ? S : S + 2);
  const index_t mstride = layers_n * ncols;
  /// Flat element of moment `m` of the node with compressed column id `col`
  /// at physical layer `sp` — the kernel-side midx, taking the column id
  /// from the block's counted stash instead of the host map.
  const auto gaddr = [&](int m, index_t col, int sp) {
    return (static_cast<index_t>(m) * layers_n + sp) * ncols + col;
  };
  const bool batched = batched_io_;
  // Lane-batched kernel bodies are selected per phase invocation (a
  // per-level branch — negligible against the per-node work it gates).
  const bool lanes = exec_ == ExecMode::kLanes;

  struct ColState {
    int x0, x1, y0, y1;  // cross-section ranges of the column
    // Per-column invariants, hoisted out of the per-call addressing helpers:
    // cross-section extents, node count and the ring's per-slot element
    // stride depend only on the column, not on the node being addressed.
    int cax = 0;                  // x1 - x0
    int cay = 0;                  // y1 - y0
    std::size_t cross = 0;        // cax * cay
    std::size_t slot_stride = 0;  // cross * Q
    std::span<real_t> ring;
    std::span<real_t> stash_lo;  // populations streamed to layer -1 == S-1
    std::span<real_t> stash_hi;  // populations streamed to layer S == 0
    std::span<real_t> snap0;     // layer-0 ring snapshot (periodic sweep)
    int next_write = 0;          // first layer not yet written back
    // Sparse only: column ids of the tile's cross section plus halo, loaded
    // (counted) from the column map once per step; -1 for all-solid columns
    // and positions beyond a non-periodic face.
    std::vector<std::int32_t> cmap;
  };

  // Stashed column id of halo position (hx, hy); valid for
  // hx in [x0-1, x1] and (3D) hy in [y0-1, y1].
  auto cmap_at = [&](ColState& st, int hx, int hy) -> std::int32_t {
    const int row = (L::D == 3) ? hy - (st.y0 - 1) : 0;
    return st.cmap[static_cast<std::size_t>(row) *
                       static_cast<std::size_t>(st.cax + 2) +
                   static_cast<std::size_t>(hx - st.x0 + 1)];
  };

  auto make_state = [&](gpusim::BlockCtx& blk) {
    ColState st;
    // Tile-range launches (frontier split) offset the block's x-tile index;
    // the full range (c0_begin 0) is the monolithic grid.
    st.x0 = (blk.block_idx().x + c0_begin) * tx;
    st.x1 = std::min(ncx0, st.x0 + tx);
    st.y0 = blk.block_idx().y * ty;
    st.y1 = std::min(ncx1, st.y0 + ty);
    st.cax = st.x1 - st.x0;
    st.cay = st.y1 - st.y0;
    st.cross = static_cast<std::size_t>(st.cax) *
               static_cast<std::size_t>(st.cay);
    st.slot_stride = st.cross * static_cast<std::size_t>(L::Q);
    st.ring = blk.alloc_shared<real_t>(static_cast<std::size_t>(ring_w) *
                                       st.cross * L::Q);
    if (sweep_periodic) {
      st.stash_lo = blk.alloc_shared<real_t>(st.cross * L::Q);
      st.stash_hi = blk.alloc_shared<real_t>(st.cross * L::Q);
      st.snap0 = blk.alloc_shared<real_t>(st.cross * L::Q);
    }
    if (sparse) {
      // Load the tile's (cross + halo) column-map entries once per step —
      // the MR analogue of the ST/AA neighbour-slot stash, and like it part
      // of the measured byte budget.
      const int w = st.cax + 2;
      const int hy_lo = (L::D == 3) ? st.y0 - 1 : 0;
      const int hy_hi = (L::D == 3) ? st.y1 : 0;
      st.cmap.assign(
          static_cast<std::size_t>(w) *
              static_cast<std::size_t>(hy_hi - hy_lo + 1),
          -1);
      for (int hy = hy_lo; hy <= hy_hi; ++hy) {
        int py = hy;
        if (L::D == 3 && (hy < 0 || hy >= ncx1)) {
          if (!cx1_periodic) continue;
          py = Box::wrap(hy, ncx1);
        }
        for (int hx = st.x0 - 1; hx <= st.x1; ++hx) {
          int px = hx;
          if (hx < 0 || hx >= ncx0) {
            if (!cx0_periodic) continue;
            px = Box::wrap(hx, ncx0);
          }
          st.cmap[static_cast<std::size_t>(hy - hy_lo) *
                      static_cast<std::size_t>(w) +
                  static_cast<std::size_t>(hx - st.x0 + 1)] =
              colmap.load(static_cast<index_t>(py) * ncx0 + px);
        }
      }
    }
    return st;
  };

  // Ring addressing: slot (s+1) mod (tile_s + 2) holds layer s while the
  // sliding window covers it. The hot phase-A/phase-B loops below hoist the
  // modulo and the node arithmetic out of the per-population loop; these
  // helpers serve the cold (periodic-edge) paths.
  auto slot_base = [&](ColState& st, int s) -> std::size_t {
    return static_cast<std::size_t>((s + 1) % ring_w) * st.slot_stride;
  };
  // Cross-section node index of (cx0, cx1) inside the column.
  auto cross_of = [&](ColState& st, int cx0, int cx1) -> std::size_t {
    return static_cast<std::size_t>(cx1 - st.y0) *
               static_cast<std::size_t>(st.cax) +
           static_cast<std::size_t>(cx0 - st.x0);
  };
  auto ring_at = [&](ColState& st, int s, int cx0, int cx1,
                     int i) -> real_t& {
    return st.ring[slot_base(st, s) + cross_of(st, cx0, cx1) * L::Q +
                   static_cast<std::size_t>(i)];
  };
  auto stash_at = [&](std::span<real_t> stash, ColState& st, int cx0, int cx1,
                      int i) -> real_t& {
    return stash[cross_of(st, cx0, cx1) * L::Q + static_cast<std::size_t>(i)];
  };

  // Streams the Q reconstructed populations `fv` of one phase-A source node
  // into the shared ring (Algorithm 2, lines 29-33). Shared verbatim by the
  // scalar and lane node drivers — the scatter is per-node either way, so
  // both modes issue identical shared-memory writes.
  auto scatter_source = [&](auto sanc, gpusim::BlockCtx& blk, ColState& st,
                            const std::size_t (&dst_base)[3], int s, int hx,
                            int hy, long long cross_src, int tid_a,
                            real_t rho, const real_t (&fv)[L::Q]) MLBM_ALWAYS_INLINE {
    constexpr bool kSan = decltype(sanc)::value;
    for (int i = 0; i < L::Q; ++i) {
      const real_t f = fv[i];
      const auto& c = L::c[static_cast<std::size_t>(i)];
      const int ld0 = hx + c[0];
      const int ld1 = (L::D == 3) ? hy + c[1] : 0;
      const int lds = s + c_sweep<L>(i);

      bool bounce = false;
      bool dropped = false;
      real_t cu_wall = 0;
      auto check_axis = [&](int axis, int coord, int extent, bool periodic) {
        if (periodic || (coord >= 0 && coord < extent)) return;
        const FaceSpec& face =
            geo.bc.face[static_cast<std::size_t>(axis)][coord < 0 ? 0 : 1];
        if (face.type == FaceBC::kWall) {
          bounce = true;
          for (int bb = 0; bb < 3; ++bb) {
            cu_wall += static_cast<real_t>(c[bb]) *
                       face.u_wall[static_cast<std::size_t>(bb)];
          }
        } else if (face.type == FaceBC::kOpen) {
          dropped = true;
        }
      };
      check_axis(0, ld0, ncx0, cx0_periodic);
      if (L::D == 3) check_axis(1, ld1, ncx1, cx1_periodic);
      check_axis(kSweepAxis, lds, S, sweep_periodic);

      if (solids && !dropped && !bounce) {
        // Static obstacle: a population streaming into a solid node returns
        // to its source exactly like a zero-velocity wall face.
        const int wx = (ld0 < 0 || ld0 >= ncx0) ? Box::wrap(ld0, ncx0) : ld0;
        const int wy = (L::D == 3 && (ld1 < 0 || ld1 >= ncx1))
                           ? Box::wrap(ld1, ncx1)
                           : ld1;
        const int ws = (lds < 0 || lds >= S) ? Box::wrap(lds, S) : lds;
        if (is_solid(wx, wy, ws)) bounce = true;
      }
      if (dropped) continue;
      if (bounce) {
        // Half-way bounceback: the population returns to its source
        // node; halo sources belong to the neighbouring column.
        if (hx >= st.x0 && hx < st.x1 && hy >= st.y0 && hy < st.y1) {
          const int j = L::opposite(i);
          const std::size_t e =
              static_cast<std::size_t>(cross_src) * L::Q +
              static_cast<std::size_t>(j);
          // On a periodic sweep axis, phase B reads the edge layers'
          // wrap-crossing populations from the stashes, not the ring
          // (those ring words are recycled before the final flush). A
          // bounce off a solid node across the wrap — or off a cross-axis
          // wall corner — produces exactly such a population: its only
          // other producer would be the node beyond the wrap, which is the
          // very solid/absent node the bounce stands in for.
          real_t* dst;
          if (sweep_periodic && s == 0 && c_sweep<L>(j) > 0) {
            dst = &st.stash_hi[e];
          } else if (sweep_periodic && s == S - 1 && c_sweep<L>(j) < 0) {
            dst = &st.stash_lo[e];
          } else {
            dst = &st.ring[dst_base[1] + e];
          }
          *dst = f - real_t(2) * L::w[static_cast<std::size_t>(i)] * rho *
                         cu_wall * inv_cs2;
          if constexpr (kSan) note_shared(blk, dst, tid_a, true);
        }
        continue;
      }
      // Interior stream: only destinations inside this column are ours;
      // populations crossing into other columns are produced by those
      // columns' halo threads.
      if (ld0 < st.x0 || ld0 >= st.x1 || ld1 < st.y0 || ld1 >= st.y1) {
        continue;
      }
      const std::size_t cross_dst = static_cast<std::size_t>(
          cross_src + ((L::D == 3) ? c[1] * st.cax : 0) + c[0]);
      const std::size_t elem = cross_dst * L::Q + static_cast<std::size_t>(i);
      real_t* dst;
      if (lds >= 0 && lds < S) {
        dst = &st.ring[dst_base[c_sweep<L>(i) + 1] + elem];
      } else if (lds == -1) {
        dst = &st.stash_lo[elem];  // wraps to S-1
      } else {
        assert(lds == S);
        dst = &st.stash_hi[elem];  // wraps to 0
      }
      *dst = f;
      if constexpr (kSan) note_shared(blk, dst, tid_a, true);
    }
  };

  // A population whose source lies beyond an OPEN face has no producer:
  // the reverse population is dropped by scatter_source instead of bounced,
  // and there is no halo node to stream from, so its shared word stays
  // unwritten — phase B would read it uninitialized (a genuine hazard on
  // real hardware; the host arena zero-fills, so writing zeros here is
  // bit-identical). True iff any non-periodic axis the source position
  // crosses carries an open face, mirroring scatter_source's drop rule
  // (drop wins over bounce at open/wall corners).
  auto is_open_hole = [&](int hx, int hy, int s, int i) {
    const auto& c = L::c[static_cast<std::size_t>(L::opposite(i))];
    bool open = false;
    auto probe = [&](int axis, int coord, int extent, bool periodic) {
      if (periodic || (coord >= 0 && coord < extent)) return;
      if (geo.bc.face[static_cast<std::size_t>(axis)][coord < 0 ? 0 : 1]
              .type == FaceBC::kOpen) {
        open = true;
      }
    };
    probe(0, hx + c[0], ncx0, cx0_periodic);
    if (L::D == 3) probe(1, hy + c[1], ncx1, cx1_periodic);
    probe(kSweepAxis, s + c_sweep<L>(L::opposite(i)), S, sweep_periodic);
    return open;
  };
  // Zero-fills layer `s`'s orphaned words in the slot (or stash) phase B
  // will read them from. Cold path: called only for columns touching an
  // open face; the filled words have no other writer, so ordering against
  // the rest of phase A is free.
  auto fill_open_holes = [&](auto sanc, gpusim::BlockCtx& blk, ColState& st,
                             int s) {
    constexpr bool kSan = decltype(sanc)::value;
    for (int hy = st.y0; hy < st.y1; ++hy) {
      for (int hx = st.x0; hx < st.x1; ++hx) {
        const std::size_t node = cross_of(st, hx, hy);
        for (int i = 0; i < L::Q; ++i) {
          if (!is_open_hole(hx, hy, s, i)) continue;
          const std::size_t e =
              node * L::Q + static_cast<std::size_t>(i);
          real_t* dst;
          if (sweep_periodic && s == S - 1 && c_sweep<L>(i) < 0) {
            dst = &st.stash_lo[e];
          } else if (sweep_periodic && s == 0 && c_sweep<L>(i) > 0) {
            dst = &st.stash_hi[e];
          } else {
            dst = &st.ring[slot_base(st, s) + e];
          }
          *dst = real_t(0);
          if constexpr (kSan) {
            note_shared(blk, dst, kPhaseBTid + static_cast<int>(node), true);
          }
        }
      }
    }
  };

  // ---- Phase A: read + collide + reconstruct + stream into shared memory.
  // Generic over the sanitizer flag AND the regularization scheme: the
  // runtime enum is hoisted to a template argument at the launch site, so
  // the per-node reconstruction (and its per-population loop) carries no
  // scheme branch at all.
  auto phase_a = [&](auto sanc, auto regc, gpusim::BlockCtx& blk,
                     ColState& st, int k) {
    constexpr Regularization kReg = decltype(regc)::value;
    const int s_begin = k * ts;
    const int s_end = std::min(S, s_begin + ts);
    const int hy_lo = (L::D == 3) ? st.y0 - 1 : 0;
    const int hy_hi = (L::D == 3) ? st.y1 : 0;
    // Open-face adjacency of this column: only such columns can hold
    // orphaned words (sweep-axis holes exist only on the first and last
    // layer).
    const bool col_open =
        (!cx0_periodic &&
         ((st.x0 == 0 && geo.bc.face[0][0].type == FaceBC::kOpen) ||
          (st.x1 == ncx0 && geo.bc.face[0][1].type == FaceBC::kOpen))) ||
        (L::D == 3 && !cx1_periodic &&
         ((st.y0 == 0 && geo.bc.face[1][0].type == FaceBC::kOpen) ||
          (st.y1 == ncx1 && geo.bc.face[1][1].type == FaceBC::kOpen)));
    const bool sweep_open =
        !sweep_periodic &&
        (geo.bc.face[kSweepAxis][0].type == FaceBC::kOpen ||
         geo.bc.face[kSweepAxis][1].type == FaceBC::kOpen);

    for (int s = s_begin; s < s_end; ++s) {
      const int sp = phys_layer(s, tt);
      // Ring bases of the three possible destination layers s-1, s, s+1
      // (indexed by c_sweep + 1) — one modulo per layer instead of one per
      // population.
      const std::size_t dst_base[3] = {slot_base(st, s - 1), slot_base(st, s),
                                       slot_base(st, s + 1)};
      if (col_open || (sweep_open && (s == 0 || s == S - 1))) {
        fill_open_holes(sanc, blk, st, s);
      }
      for (int hy = hy_lo; hy <= hy_hi; ++hy) {
        int py = hy;
        if (L::D == 3 && (hy < 0 || hy >= ncx1)) {
          if (!cx1_periodic) continue;  // no node beyond a wall/open face
          py = Box::wrap(hy, ncx1);
        }
        const int hx_lo = st.x0 - (shrink_halo ? 0 : 1);
        const int hx_hi = st.x1 - (shrink_halo ? 1 : 0);
        if (lanes) {
          // Lane-batched source row: compact the valid (possibly wrapped)
          // sources into panels of kLaneWidth, run the moment collide and
          // reconstruction lane-major, then scatter per lane. Loads and
          // scatters are the scalar path's, panel-interleaved.
          int hx = hx_lo;
          while (hx <= hx_hi) {
            int n = 0;
            int lane_hx[kLaneWidth];
            index_t lane_col[kLaneWidth];
            for (; hx <= hx_hi && n < kLaneWidth; ++hx) {
              int px = hx;
              if (hx < 0 || hx >= ncx0) {
                if (!cx0_periodic) continue;
                px = Box::wrap(hx, ncx0);
              }
              if (sparse) {
                const std::int32_t cm = cmap_at(st, hx, hy);
                if (cm < 0) continue;  // unallocated all-solid column
                if (solids && is_solid(px, py, s)) continue;
                lane_col[n] = cm;
              } else {
                lane_col[n] = static_cast<index_t>(py) * ncx0 + px;
              }
              lane_hx[n] = hx;
              ++n;
            }
            if (n == 0) break;
            real_t rho_l[kLaneWidth];
            real_t u_l[L::D][kLaneWidth];
            real_t pim_l[NP][kLaneWidth];
            for (int ln = 0; ln < n; ++ln) {
              real_t mom[M];
              if (batched) {
                rbuf.template load_span_as<real_t>(
                    gaddr(0, lane_col[ln], sp), mstride, M, mom);
              } else {
                for (int m = 0; m < M; ++m) {
                  mom[m] = rbuf.template load_as<real_t>(
                      gaddr(m, lane_col[ln], sp));
                }
              }
              rho_l[ln] = mom[0];
              for (int a = 0; a < L::D; ++a) u_l[a][ln] = mom[1 + a];
              for (int p = 0; p < NP; ++p) pim_l[p][ln] = mom[1 + L::D + p];
            }
            real_t pineq_l[NP][kLaneWidth];
            for (int p = 0; p < NP; ++p) {
              const auto [pa, pb] = Moments<L>::pair(p);
              MLBM_SIMD
              for (int ln = 0; ln < n; ++ln) {
                pineq_l[p][ln] =
                    relax *
                    (pim_l[p][ln] - rho_l[ln] * u_l[pa][ln] * u_l[pb][ln]);
              }
            }
            const ReconstructorLanes<L, kReg, kLaneWidth> recon(n, rho_l, u_l,
                                                                pineq_l);
            real_t panel[L::Q][kLaneWidth];
            for (int i = 0; i < L::Q; ++i) recon.eval(i, panel[i]);
            for (int ln = 0; ln < n; ++ln) {
              const int lhx = lane_hx[ln];
              const int tid_a =
                  ((s - s_begin) * (hy_hi - hy_lo + 1) + (hy - hy_lo)) *
                      (st.cax + 2) +
                  (lhx - st.x0 + 1);
              const long long cross_src =
                  static_cast<long long>(hy - st.y0) * st.cax +
                  (lhx - st.x0);
              real_t fv[L::Q];
              for (int i = 0; i < L::Q; ++i) fv[i] = panel[i][ln];
              scatter_source(sanc, blk, st, dst_base, s, lhx, hy, cross_src,
                             tid_a, rho_l[ln], fv);
            }
          }
          continue;
        }
        for (int hx = hx_lo; hx <= hx_hi; ++hx) {
          int px = hx;
          if (hx < 0 || hx >= ncx0) {
            if (!cx0_periodic) continue;
            px = Box::wrap(hx, ncx0);
          }
          index_t col;
          if (sparse) {
            const std::int32_t cm = cmap_at(st, hx, hy);
            if (cm < 0) continue;  // unallocated all-solid column
            if (solids && is_solid(px, py, s)) continue;
            col = cm;
          } else {
            col = static_cast<index_t>(py) * ncx0 + px;
          }
          // Conceptual GPU thread id of this phase-A source thread (unique
          // per (hx, hy, s) within the block); racecheck attribution only.
          const int tid_a =
              ((s - s_begin) * (hy_hi - hy_lo + 1) + (hy - hy_lo)) *
                  (st.cax + 2) +
              (hx - st.x0 + 1);
          // Signed cross-section index of the source node; halo sources sit
          // outside [0, cross), but every use below is offset to an
          // in-column destination first.
          const long long cross_src =
              static_cast<long long>(hy - st.y0) * st.cax + (hx - st.x0);

          // Read the node's M moments from global memory (Algorithm 2,
          // lines 15-23) — one batched span transaction — and collide in
          // moment space (Eq. 10).
          real_t mom[M];
          if (batched) {
            rbuf.template load_span_as<real_t>(gaddr(0, col, sp), mstride, M,
                                               mom);
          } else {
            for (int m = 0; m < M; ++m) {
              mom[m] = rbuf.template load_as<real_t>(gaddr(m, col, sp));
            }
          }
          const real_t rho = mom[0];
          real_t u[L::D];
          for (int a = 0; a < L::D; ++a) {
            u[a] = mom[1 + a];
          }
          real_t pineq_star[NP];
          for (int p = 0; p < NP; ++p) {
            const auto [pa, pb] = Moments<L>::pair(p);
            const real_t full = mom[1 + L::D + p];
            pineq_star[p] = relax * (full - rho * u[pa] * u[pb]);
          }
          const Reconstructor<L, kReg> recon(rho, u, pineq_star);

          // Map to distribution space (Eq. 11 / Eq. 14) and stream into the
          // shared ring.
          real_t fv[L::Q];
          for (int i = 0; i < L::Q; ++i) fv[i] = recon(i);
          scatter_source(sanc, blk, st, dst_base, s, hx, hy, cross_src,
                         tid_a, rho, fv);
        }
      }
    }
  };

  // ---- Phase B: project completed layers back to moments and write them.
  // `get` is a template parameter of the generic lambda: each per-direction
  // getter instantiates its own write-back loop (no std::function on the
  // per-node path), and the node's M moments leave as one batched span.
  // Getters receive the flat cross-section node index (base of the node's Q
  // populations is node * Q) so the hot plain-ring case is a contiguous copy.
  auto write_layer_from = [&](ColState& st, int s, auto&& get) {
    int sp = phys_layer(s, tt + 1);
    // Seeded mutation: bias the circular write layer. Every biased slot
    // assignment leaves (at least) one logical plane per step either stale
    // or never written — exactly what the sanitizer's freshness shadow
    // proves the correct shift never does.
    if (wmut != 0) sp = (((sp + wmut) % (S + 2)) + (S + 2)) % (S + 2);
    if (lanes) {
      // Lane-batched re-projection: gather each panel's populations through
      // the same getter (identical shared reads, identical order), reduce
      // the moments lane-major, then store per lane with the same batched
      // span calls — bit-identical values and traffic.
      for (std::size_t p0 = 0; p0 < st.cross; p0 += kLaneWidth) {
        const int n =
            static_cast<int>(std::min<std::size_t>(kLaneWidth, st.cross - p0));
        real_t fl[L::Q][kLaneWidth];
        bool live[kLaneWidth];
        index_t col_l[kLaneWidth];
        for (int ln = 0; ln < n; ++ln) {
          const std::size_t node = p0 + static_cast<std::size_t>(ln);
          const int cx = st.x0 + static_cast<int>(
                                     node % static_cast<std::size_t>(st.cax));
          const int cy = st.y0 + static_cast<int>(
                                     node / static_cast<std::size_t>(st.cax));
          live[ln] = true;
          if (sparse) {
            const std::int32_t cm = cmap_at(st, cx, cy);
            if (cm < 0 || (solids && is_solid(cx, cy, s))) {
              // Solid node: its ring words were never written. Feed zeros
              // through the panel (the result is discarded) instead of
              // reading them.
              live[ln] = false;
              for (int i = 0; i < L::Q; ++i) fl[i][ln] = 0;
              continue;
            }
            col_l[ln] = cm;
          } else {
            col_l[ln] = static_cast<index_t>(cy) * ncx0 + cx;
          }
          for (int i = 0; i < L::Q; ++i) fl[i][ln] = get(node, i);
        }
        real_t rho_l[kLaneWidth];
        real_t u_l[L::D][kLaneWidth];
        real_t pi_l[NP][kLaneWidth];
        compute_moments_lanes<L, kLaneWidth>(fl, n, rho_l, u_l, pi_l);
        for (int ln = 0; ln < n; ++ln) {
          if (!live[ln]) continue;
          real_t vals[M];
          vals[0] = rho_l[ln];
          for (int a = 0; a < L::D; ++a) vals[1 + a] = u_l[a][ln];
          for (int p = 0; p < NP; ++p) vals[1 + L::D + p] = pi_l[p][ln];
          if (batched) {
            wbuf.template store_span_as<real_t>(gaddr(0, col_l[ln], sp),
                                                mstride, M, vals);
          } else {
            for (int mm = 0; mm < M; ++mm) {
              wbuf.template store_as<real_t>(gaddr(mm, col_l[ln], sp),
                                             vals[mm]);
            }
          }
        }
      }
      return;
    }
    std::size_t node = 0;
    for (int cy = st.y0; cy < st.y1; ++cy) {
      for (int cx = st.x0; cx < st.x1; ++cx, ++node) {
        index_t col;
        if (sparse) {
          const std::int32_t cm = cmap_at(st, cx, cy);
          // Solid node: never streamed into, nothing to write back.
          if (cm < 0 || (solids && is_solid(cx, cy, s))) continue;
          col = cm;
        } else {
          col = static_cast<index_t>(cy) * ncx0 + cx;
        }
        real_t f[L::Q];
        for (int i = 0; i < L::Q; ++i) f[i] = get(node, i);
        const Moments<L> m = compute_moments<L>(f);
        real_t vals[M];
        vals[0] = m.rho;
        for (int a = 0; a < L::D; ++a) {
          vals[1 + a] = m.u[static_cast<std::size_t>(a)];
        }
        for (int p = 0; p < NP; ++p) {
          vals[1 + L::D + p] = m.pi[static_cast<std::size_t>(p)];
        }
        if (batched) {
          wbuf.template store_span_as<real_t>(gaddr(0, col, sp), mstride, M,
                                              vals);
        } else {
          for (int mm = 0; mm < M; ++mm) {
            wbuf.template store_as<real_t>(gaddr(mm, col, sp), vals[mm]);
          }
        }
      }
    }
  };

  auto phase_b = [&](auto sanc, gpusim::BlockCtx& blk, ColState& st, int k) {
    constexpr bool kSan = decltype(sanc)::value;
    // Phase-B threads are one-per-node write-back threads; give them a tid
    // range disjoint from phase A's source threads.
    auto note_b = [&](const real_t* addr, std::size_t node, bool write) {
      note_shared(blk, addr, kPhaseBTid + static_cast<int>(node), write);
    };
    // Layers complete after phase A of level k: all s <= (k+1) ts - 2 (their
    // last contribution streams down from source layer s+1). The final level
    // (k == ntiles) flushes the remainder, for which the top layer's missing
    // contribution came from bounceback (wall) or the level-0 stash
    // (periodic).
    const int limit =
        (k < ntiles) ? std::min((k + 1) * ts - 2, S - 2) : S - 1;
    for (; st.next_write <= limit; ++st.next_write) {
      const int s = st.next_write;
      if (sweep_periodic && s == 0) {
        // Layer 0 still lacks the upward-streaming populations from layer
        // S-1 (processed only at the last level); snapshot its ring slot
        // before the window recycles it and write it at the end.
        for (int cy = st.y0; cy < st.y1; ++cy) {
          for (int cx = st.x0; cx < st.x1; ++cx) {
            // Solid layer-0 node: its slot-0 words were never written and
            // the final flush skips it; nothing to snapshot.
            if (sparse && (cmap_at(st, cx, cy) < 0 ||
                           (solids && is_solid(cx, cy, 0)))) {
              continue;
            }
            const std::size_t node = cross_of(st, cx, cy);
            for (int i = 0; i < L::Q; ++i) {
              // Upward-streaming populations of layer 0 arrive from layer
              // S-1 via stash_hi, not the ring: their slot-0 words are never
              // written, and the final flush never reads their snap0 copies.
              // Skipping them avoids copying uninitialized shared words.
              if (c_sweep<L>(i) > 0) continue;
              real_t& src = ring_at(st, 0, cx, cy, i);
              real_t& dst = stash_at(st.snap0, st, cx, cy, i);
              dst = src;
              if constexpr (kSan) {
                note_b(&src, node, false);
                note_b(&dst, node, true);
              }
            }
          }
        }
        continue;
      }
      if (sweep_periodic && s == S - 1) {
        const std::size_t base = slot_base(st, s);
        write_layer_from(st, s, [&](std::size_t node, int i) {
          const std::size_t e = node * L::Q + static_cast<std::size_t>(i);
          const real_t* src =
              c_sweep<L>(i) < 0 ? &st.stash_lo[e] : &st.ring[base + e];
          if constexpr (kSan) note_b(src, node, false);
          return *src;
        });
        continue;
      }
      const std::size_t base = slot_base(st, s);
      write_layer_from(st, s, [&](std::size_t node, int i) {
        const real_t* src =
            &st.ring[base + node * L::Q + static_cast<std::size_t>(i)];
        if constexpr (kSan) note_b(src, node, false);
        return *src;
      });
    }
    if (k == ntiles && sweep_periodic) {
      write_layer_from(st, 0, [&](std::size_t node, int i) {
        const std::size_t e = node * L::Q + static_cast<std::size_t>(i);
        const real_t* src =
            c_sweep<L>(i) > 0 ? &st.stash_hi[e] : &st.snap0[e];
        if constexpr (kSan) note_b(src, node, false);
        return *src;
      });
    }
  };

  // Levels alternate phase A and phase B with a global barrier in between,
  // so a column's write-back can never overtake a neighbour's halo reads
  // (the circular-shift slot reuse analysis in the header relies on this).
  const gpusim::Dim3 grid{c0_count, nc1, 1};
  const gpusim::Dim3 block =
      (L::D == 2) ? gpusim::Dim3{tx + 2, ts, 1}
                  : gpusim::Dim3{tx + 2, ty + 2, ts};

  auto run = [&](auto sanc, auto regc) {
    gpusim::launch_level_synced(
        prof_, rec, grid, block, 2 * (ntiles + 1), make_state,
        [&, sanc, regc](gpusim::BlockCtx& blk, ColState& st, int level) {
          const int k = level / 2;
          if (level % 2 == 0) {
            if (k < ntiles) phase_a(sanc, regc, blk, st, k);
            // Seeded mutation: run phase B inside phase A's barrier epoch
            // (models a deleted __syncthreads) — phase B's slot reads then
            // race phase A's same-epoch writes.
            if (skip_phase_sync) phase_b(sanc, blk, st, k);
          } else if (!skip_phase_sync) {
            blk.sync();
            phase_b(sanc, blk, st, k);
          }
        });
  };
  // Hoist both runtime flags (sanitizer presence, regularization scheme) to
  // template arguments of the level body: 4 instantiations, zero per-node
  // branches.
  dispatch_regularization(scheme, [&](auto regc) {
    if (sanh != nullptr) {
      run(std::true_type{}, regc);
    } else {
      run(std::false_type{}, regc);
    }
  });
}

template class MrEngine<D2Q9, double>;
template class MrEngine<D3Q19, double>;
template class MrEngine<D3Q27, double>;
template class MrEngine<D3Q15, double>;
template class MrEngine<D2Q9, float>;
template class MrEngine<D3Q19, float>;
template class MrEngine<D3Q27, float>;
template class MrEngine<D3Q15, float>;

}  // namespace mlbm
