# Empty dependencies file for arithmetic_intensity.
# This may be replaced when dependencies are built.
