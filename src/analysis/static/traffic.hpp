// Traffic derivation from access contracts: closed-form bytes/FLUP and
// exact per-step byte/transaction counts, computed WITHOUT running a kernel.
//
// Two levels of prediction, matching the three-way agreement gate:
//
//  * derived_bytes_per_flup — the paper's Table 2 figure (DRAM bytes per
//    fluid lattice update with halo re-reads served by L2): distinct
//    components read plus components written per node, per cycle step,
//    times the storage width. Cross-checked against perfmodel's
//    bytes_per_flup / aa_bytes_per_flup (prediction == prediction).
//  * derive_step_traffic — the exact counter deltas one step of a dense,
//    fully periodic box must produce, transaction-exact including the MR
//    halo re-reads and ragged edge tiles. Cross-checked against the
//    measured TrafficCounter/unique-read deltas (prediction == measurement,
//    to the byte and the transaction).
#pragma once

#include <cstdint>

#include "analysis/static/contract.hpp"

namespace mlbm::analysis {

/// Field names mirror gpusim::TrafficSnapshot (reads/writes count
/// transactions); unique_read_bytes mirrors the ideal-L2 unique-address
/// model of Engine::unique_read_bytes.
struct StepTraffic {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t unique_read_bytes = 0;
};

/// Exact traffic of step index `t` (AA parity) on a dense, fully periodic
/// nx x ny x nz box. Valid only for such probes: walls, open faces, solids
/// and sparse storage change the counts (by design — they are measured, not
/// asserted, elsewhere).
StepTraffic derive_step_traffic(const EngineContract& c, int nx, int ny,
                                int nz, long long t);

/// Closed-form DRAM bytes per fluid lattice update (Table 2 figure),
/// averaged over one kernel cycle: 2 Q elem_bytes for the distribution
/// representations, 2 M elem_bytes for the moment representation.
double derived_bytes_per_flup(const EngineContract& c);

}  // namespace mlbm::analysis
