// Multi-device domain decomposition: partitioning, ghost exchange, and
// exact agreement between decomposed and monolithic runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "multidev/multi_domain.hpp"
#include "workloads/channel.hpp"

namespace mlbm {
namespace {

TEST(Slabs, PartitionCoversDomainWithoutOverlap) {
  const auto slabs = make_slabs(17, 4);  // uneven split: 5,4,4,4
  ASSERT_EQ(slabs.size(), 4u);
  EXPECT_EQ(slabs[0].x_begin, 0);
  EXPECT_EQ(slabs.back().x_end, 17);
  int widths = 0;
  for (std::size_t d = 0; d < slabs.size(); ++d) {
    EXPECT_GT(slabs[d].x_end, slabs[d].x_begin);
    widths += slabs[d].x_end - slabs[d].x_begin;
    if (d > 0) {
      EXPECT_EQ(slabs[d].x_begin, slabs[d - 1].x_end);
    }
  }
  EXPECT_EQ(widths, 17);
  EXPECT_FALSE(slabs.front().has_left);
  EXPECT_TRUE(slabs.front().has_right);
  EXPECT_TRUE(slabs.back().has_left);
  EXPECT_FALSE(slabs.back().has_right);
  // Local extents include ghosts.
  EXPECT_EQ(slabs[0].local_nx(), 5 + 1);
  EXPECT_EQ(slabs[1].local_nx(), 4 + 2);
  EXPECT_EQ(slabs[0].local_x(0), 0);
  EXPECT_EQ(slabs[1].local_x(slabs[1].x_begin), 1);
}

TEST(Slabs, Validation) {
  EXPECT_THROW(make_slabs(8, 0), std::invalid_argument);
  EXPECT_THROW(make_slabs(8, 9), std::invalid_argument);
  EXPECT_NO_THROW(make_slabs(8, 8));
}

TEST(Slabs, GeometryMarksInterfacesOpen) {
  const auto ch = Channel<D2Q9>::create(16, 8, 1, 0.8, 0.05);
  const auto slabs = make_slabs(16, 2);
  const Geometry left = slab_geometry(ch.geo, slabs[0]);
  const Geometry right = slab_geometry(ch.geo, slabs[1]);
  EXPECT_EQ(left.bc.face[0][0].type, FaceBC::kOpen);   // global inlet face
  EXPECT_EQ(left.bc.face[0][1].type, FaceBC::kOpen);   // interface
  EXPECT_EQ(right.bc.face[0][1].type, FaceBC::kOpen);  // global outlet face
  EXPECT_EQ(left.bc.face[1][0].type, FaceBC::kWall);
  // Node kinds carried over: inlet markers live on the left slab only.
  EXPECT_EQ(left.at(0, 3, 0), NodeKind::kInlet);
  EXPECT_EQ(right.at(right.box.nx - 1, 3, 0), NodeKind::kOutlet);
}

template <class L>
double max_diff(const Engine<L>& mono, const MultiDomainEngine<L>& multi) {
  const Box& b = mono.geometry().box;
  double worst = 0;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const auto ma = mono.moments_at(x, y, z);
        const auto mb = multi.moments_at(x, y, z);
        worst = std::max(worst, std::abs(static_cast<double>(ma.rho - mb.rho)));
        for (int c = 0; c < L::D; ++c) {
          worst = std::max(worst, std::abs(static_cast<double>(
                                      ma.u[static_cast<std::size_t>(c)] -
                                      mb.u[static_cast<std::size_t>(c)])));
        }
      }
    }
  }
  return worst;
}

class MultiDevEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MultiDevEquivalence, DecomposedMrMatchesMonolithicExactly2D) {
  const int ndev = GetParam();
  const real_t tau = 0.8;
  const auto ch = Channel<D2Q9>::create(24, 14, 1, tau, 0.05);

  MrEngine<D2Q9> mono(ch.geo, tau, Regularization::kProjective, {8, 1, 2});
  ch.attach(mono);

  MultiDomainEngine<D2Q9> multi(
      ch.geo, tau, ndev, [&](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
        return std::make_unique<MrEngine<D2Q9>>(
            std::move(g), tau, Regularization::kProjective, MrConfig{8, 1, 2});
      });
  ch.attach(multi);

  for (int s = 0; s < 20; ++s) {
    mono.step();
    multi.step();
  }
  EXPECT_LT(max_diff(mono, multi), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SlabCounts, MultiDevEquivalence,
                         ::testing::Values(1, 2, 3, 4));

TEST(MultiDev, DecomposedRecursiveMatches3D) {
  const real_t tau = 0.85;
  const auto ch = Channel<D3Q19>::create(16, 8, 6, tau, 0.04);

  MrEngine<D3Q19> mono(ch.geo, tau, Regularization::kRecursive, {4, 4, 1});
  ch.attach(mono);
  MultiDomainEngine<D3Q19> multi(
      ch.geo, tau, 3, [&](Geometry g, int) -> std::unique_ptr<Engine<D3Q19>> {
        return std::make_unique<MrEngine<D3Q19>>(
            std::move(g), tau, Regularization::kRecursive, MrConfig{4, 4, 1});
      });
  ch.attach(multi);
  for (int s = 0; s < 10; ++s) {
    mono.step();
    multi.step();
  }
  EXPECT_LT(max_diff(mono, multi), 1e-12);
}

TEST(MultiDev, HeterogeneousSlabEnginesAgreeWithReference) {
  // One slab runs MR-P, the other projective ST: the moment exchange makes
  // the decomposition representation-agnostic.
  const real_t tau = 0.8;
  const auto ch = Channel<D2Q9>::create(20, 12, 1, tau, 0.04);

  ReferenceEngine<D2Q9> mono(ch.geo, tau, CollisionScheme::kProjective);
  ch.attach(mono);
  MultiDomainEngine<D2Q9> multi(
      ch.geo, tau, 2, [&](Geometry g, int d) -> std::unique_ptr<Engine<D2Q9>> {
        if (d == 0) {
          return std::make_unique<MrEngine<D2Q9>>(
              std::move(g), tau, Regularization::kProjective, MrConfig{8, 1, 2});
        }
        return std::make_unique<StEngine<D2Q9>>(std::move(g), tau,
                                                CollisionScheme::kProjective);
      });
  ch.attach(multi);
  for (int s = 0; s < 15; ++s) {
    mono.step();
    multi.step();
  }
  EXPECT_LT(max_diff(mono, multi), 1e-12);
}

TEST(MultiDev, BgkMomentExchangeIsApproximateButClose) {
  // Plain BGK carries higher-order non-equilibrium the M-value exchange
  // projects away; the decomposed run deviates at O(Ma^3) but stays close.
  const real_t tau = 0.8;
  const auto ch = Channel<D2Q9>::create(20, 12, 1, tau, 0.04);
  StEngine<D2Q9> mono(ch.geo, tau);
  ch.attach(mono);
  MultiDomainEngine<D2Q9> multi(
      ch.geo, tau, 2, [&](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
        return std::make_unique<StEngine<D2Q9>>(std::move(g), tau);
      });
  ch.attach(multi);
  for (int s = 0; s < 15; ++s) {
    mono.step();
    multi.step();
  }
  const double diff = max_diff(mono, multi);
  EXPECT_LT(diff, 2e-4);   // close (0.1% of u_max)...
  EXPECT_GT(diff, 1e-10);  // ...but not exact: the projection is real.
}

TEST(MultiDev, ExchangeAccounting) {
  const real_t tau = 0.8;
  const auto ch = Channel<D3Q19>::create(12, 6, 5, tau, 0.03);
  MultiDomainEngine<D3Q19> multi(
      ch.geo, tau, 3, [&](Geometry g, int) -> std::unique_ptr<Engine<D3Q19>> {
        return std::make_unique<MrEngine<D3Q19>>(
            std::move(g), tau, Regularization::kProjective, MrConfig{4, 4, 1});
      });
  ch.attach(multi);
  // 2 interfaces x 2 directions x (6*5) face nodes x 10 moments.
  EXPECT_EQ(multi.exchanged_values_per_step(), 2ull * 2 * 30 * 10);
  multi.run(4);
  EXPECT_EQ(multi.exchanged_values_total(), 4ull * 2 * 2 * 30 * 10);
  EXPECT_EQ(multi.devices(), 3);
  // Aggregate footprint is the sum over slabs (ghost planes add O(surface)).
  EXPECT_GT(multi.state_bytes(),
            2u * 10 * sizeof(real_t) * 12 * 6 * 5);
}

TEST(MultiDev, RejectsPeriodicDecompositionAxis) {
  Geometry geo(Box{16, 8, 1});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kWall);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  EXPECT_THROW(MultiDomainEngine<D2Q9>(
                   geo, 0.8, 2,
                   [](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
                     return std::make_unique<StEngine<D2Q9>>(std::move(g), 0.8);
                   }),
               std::invalid_argument);
}

}  // namespace
}  // namespace mlbm
