// Multi-device scaling: measured lockstep-vs-overlap ghost exchange plus the
// analytic scaling projection (context: the paper's group runs LBM across
// whole machines — refs [9], [11]).
//
// Three layers, cross-validated:
//
//   1. Functional: a decomposed run reproduces the monolithic one, and the
//      overlapped schedule reproduces the lockstep schedule BIT-identically
//      (fields and per-slab traffic counters) — overlap reorders the modeled
//      timeline, not the dataflow. Violations exit nonzero.
//   2. Measured weak/strong scaling over 2–16 slabs (D3Q19, MR-P): each
//      decomposition steps under both ExchangeMode::kLockstep and kOverlap
//      with the stream/event timeline model installed, and the per-slab
//      CommStats report how much of the exchange the interior compute hides.
//      The perfmodel's predict_overlap_slab must agree with the profiler's
//      exposed fraction within 15 points, and at 4+ slabs (weak scaling)
//      the overlap must hide >= 60% of the lockstep-exposed exchange time —
//      both gated, so this binary doubles as the ctest smoke check.
//   3. The analytic strong-scaling efficiency projection at paper scale
//      (256^3 on V100s over NVLink2 / PCIe3), unchanged output for the
//      committed CSV history.
//
// The moment exchange moves M values per face node; a distribution-
// representation code must move its boundary populations (Q values in the
// general case) — another place the compressed representation pays off.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "engines/mr_engine.hpp"
#include "multidev/multi_domain.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/overlap.hpp"
#include "perfmodel/report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/channel.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    ++g_failures;
    std::printf("FAIL: %s\n", what.c_str());
  }
}

struct ScaleRow {
  std::string scaling;  // "weak" | "strong"
  int ndev = 0;
  int nx = 0, ny = 0, nz = 0, steps = 0;
  std::string mode;
  double seconds = 0;        ///< host wall clock of the run
  double comm_s = 0;         ///< modeled exchange time per step (all slabs)
  double exposed_frac = 0;   ///< profiler: exposed / comm
  double hidden_frac = 0;    ///< profiler: hidden / comm
  double model_exposed_frac = 0;  ///< perfmodel prediction (overlap rows)
  double step_s = 0;         ///< modeled per-step wall clock, max over slabs
  double model_speedup = 0;  ///< perfmodel lockstep/overlap (overlap rows)
};

template <class L>
std::uint64_t field_mismatches(const Engine<L>& a, const Engine<L>& b,
                               const Box& box) {
  std::uint64_t bad = 0;
  for (int z = 0; z < box.nz; ++z) {
    for (int y = 0; y < box.ny; ++y) {
      for (int x = 0; x < box.nx; ++x) {
        const auto ma = a.moments_at(x, y, z);
        const auto mb = b.moments_at(x, y, z);
        bool same = ma.rho == mb.rho;
        for (int i = 0; i < L::D; ++i) {
          same = same && ma.u[static_cast<std::size_t>(i)] ==
                             mb.u[static_cast<std::size_t>(i)];
        }
        for (int p = 0; p < Moments<L>::NP; ++p) {
          same = same && ma.pi[static_cast<std::size_t>(p)] ==
                             mb.pi[static_cast<std::size_t>(p)];
        }
        if (!same) ++bad;
      }
    }
  }
  return bad;
}

/// Builds a channel decomposition with MR-P slabs, steps it in `mode` with
/// the timeline model installed, and reports the communication attribution.
std::unique_ptr<MultiDomainEngine<D3Q19>> run_mode(
    const Channel<D3Q19>& ch, int ndev, ExchangeMode mode,
    const gpusim::LinkSpec& link, int steps, ScaleRow& row) {
  const real_t tau = ch.tau;
  // tile_x = 2 keeps the frontier launch at exactly 2 planes per interface
  // side (the split is tile-granular), so even the thinnest strong-scaling
  // slabs retain a real interior launch and the perfmodel's plane-based
  // frontier/interior partition matches the engine's exactly.
  const MrConfig cfg{2, 8, 1};
  auto multi = std::make_unique<MultiDomainEngine<D3Q19>>(
      ch.geo, tau, ndev,
      [&](Geometry g, int) -> std::unique_ptr<Engine<D3Q19>> {
        return std::make_unique<MrEngine<D3Q19>>(
            std::move(g), tau, Regularization::kProjective, cfg);
      });
  multi->set_exchange_mode(mode);
  multi->set_timeline_model(gpusim::DeviceSpec::v100(), link);
  ch.attach(*multi);
  Timer t;
  multi->run(steps);
  row.mode = to_string(mode);
  row.seconds = t.elapsed_s();

  const gpusim::CommStats total = multi->comm_stats();
  row.comm_s = total.steps > 0
                   ? total.comm_s / static_cast<double>(total.steps)
                   : 0.0;
  row.exposed_frac = total.exposed_fraction();
  row.hidden_frac = total.comm_s > 0 ? total.hidden_s / total.comm_s : 0.0;
  // Modeled per-step wall clock: the slowest slab's compute plus whatever
  // communication it could not hide.
  double step_s = 0;
  for (int d = 0; d < multi->devices(); ++d) {
    const gpusim::CommStats& cs =
        multi->device_engine(d).profiler()->comm_stats();
    if (cs.steps == 0) continue;
    step_s = std::max(step_s, (cs.compute_s + cs.exposed_s) /
                                  static_cast<double>(cs.steps));
  }
  row.step_s = step_s;
  return multi;
}

/// Aggregate perfmodel prediction across the decomposition's slabs: edge
/// slabs have one incoming link, interior slabs two.
perf::OverlapPrediction model_aggregate(const MultiDomainEngine<D3Q19>& multi,
                                        const gpusim::LinkSpec& link,
                                        double bytes_per_cell) {
  const Box& b = multi.geometry().box;
  const auto dev = gpusim::DeviceSpec::v100();
  perf::OverlapPrediction agg;
  double overlap_wall = 0;
  double lockstep_wall = 0;
  for (int d = 0; d < multi.devices(); ++d) {
    const SlabInfo& s = multi.slab(d);
    const int sides = (s.has_left ? 1 : 0) + (s.has_right ? 1 : 0);
    const auto p = perf::predict_overlap_slab(
        dev, link, bytes_per_cell, s.x_end - s.x_begin, b.ny, b.nz,
        s.ghost_depth, sides, D3Q19::M, sizeof(real_t));
    agg.comm_s += p.comm_s;
    agg.exposed_s += p.exposed_s;
    agg.hidden_s += p.hidden_s;
    overlap_wall = std::max(overlap_wall, p.overlap_step_s);
    lockstep_wall = std::max(lockstep_wall, p.lockstep_step_s);
  }
  agg.overlap_step_s = overlap_wall;
  agg.lockstep_step_s = lockstep_wall;
  return agg;
}

bool write_json(const std::string& path, const std::vector<ScaleRow>& rows) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"benchmark\": \"multidev_scaling\",\n"
       "  \"lattice\": \"D3Q19\", \"pattern\": \"MR-P\",\n"
       "  \"link\": \"PCIe3\", \"device\": \"V100\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    f << "    {\"scaling\": \"" << r.scaling << "\", \"ndev\": " << r.ndev
      << ", \"nx\": " << r.nx << ", \"ny\": " << r.ny << ", \"nz\": " << r.nz
      << ", \"steps\": " << r.steps << ", \"mode\": \"" << r.mode
      << "\", \"seconds\": " << r.seconds << ", \"comm_s\": " << r.comm_s
      << ", \"exposed_frac\": " << r.exposed_frac
      << ", \"hidden_frac\": " << r.hidden_frac
      << ", \"model_exposed_frac\": " << r.model_exposed_frac
      << ", \"step_s\": " << r.step_s
      << ", \"model_speedup\": " << r.model_speedup << "}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return f.good();
}

// ---- Section 3: the analytic projection at paper scale (unchanged). ----

struct Link {
  const char* name;
  double gbs;
};

double efficiency(const gpusim::DeviceSpec& dev, Pattern p,
                  const perf::LatticeInfo& lat,
                  const perf::KernelCharacteristics& kc, long long n, int k,
                  double link_gbs, double values_per_face_node) {
  const long long cells = n * n * n;
  const long long cells_k = (cells + k - 1) / k;
  const auto sat = perf::estimate_saturated(dev, p, lat, kc);
  // Per-device compute time per step (utilization of the slab's blocks).
  const long long blocks =
      bench::blocks_for(p, 3, n, n, n, kc) / std::max(1, k);
  const double util =
      perf::size_utilization(dev, std::max<long long>(blocks, 1),
                             sat.blocks_per_sm);
  const double t_compute =
      static_cast<double>(cells_k) / (sat.mflups * 1e6 * std::max(util, 1e-3));
  // Ghost exchange: two faces per interior slab, n*n face nodes each.
  const double bytes =
      (k > 1 ? 2.0 : 0.0) * n * n * values_per_face_node * sizeof(real_t);
  const double t_comm = bytes / (link_gbs * 1e9);
  const double t1 = static_cast<double>(cells) / (sat.mflups * 1e6);
  return t1 / (k * (t_compute + t_comm));
}

void analytic_projection() {
  const auto v100 = gpusim::DeviceSpec::v100();
  const auto lat = perf::lattice_info<D3Q19>();
  const long long n = 256;
  const Link links[] = {{"NVLink2", 50.0}, {"PCIe3", 12.0}};

  CsvWriter csv(perf::results_dir() + "/multidev_scaling.csv",
                {"pattern", "link", "devices", "efficiency"});
  for (const Link& link : links) {
    std::printf("-- %s (%.0f GB/s per direction) --\n", link.name, link.gbs);
    AsciiTable t({"devices", "MR-P eff. (M=10/face)", "ST eff. (Q=19/face)"});
    for (int k = 1; k <= 16; k *= 2) {
      const auto kc_mr = bench::characteristics<D3Q19>(Pattern::kMRP);
      const auto kc_st = bench::characteristics<D3Q19>(Pattern::kST);
      const double e_mr =
          efficiency(v100, Pattern::kMRP, lat, kc_mr, n, k, link.gbs, 10);
      const double e_st =
          efficiency(v100, Pattern::kST, lat, kc_st, n, k, link.gbs, 19);
      t.row({std::to_string(k), AsciiTable::num(100 * e_mr, 1) + "%",
             AsciiTable::num(100 * e_st, 1) + "%"});
      csv.row({"MR-P", link.name, std::to_string(k), CsvWriter::num(e_mr)});
      csv.row({"ST", link.name, std::to_string(k), CsvWriter::num(e_st)});
    }
    t.print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  cli.reject_unknown({"ncross", "out", "smoke", "steps", "strong-nx", "weak-width"});
  const bool smoke = cli.has("smoke");
  const std::string out = cli.get("out", "BENCH_multidev.json");
  // Weak scaling: fixed owned width per slab. Strong scaling: fixed global
  // extent. Sizes keep the interior launch wide enough to hide a PCIe3-class
  // transfer (the perfmodel's crossover sits below these widths).
  const int weak_w = cli.get_int("weak-width", smoke ? 10 : 16, 1);
  const int strong_nx = cli.get_int("strong-nx", smoke ? 32 : 64, 1);
  const int ncross = cli.get_int("ncross", smoke ? 12 : 24, 1);
  const int steps = cli.get_int("steps", smoke ? 4 : 10, 1);
  const int max_ndev = smoke ? 4 : 16;
  const real_t tau = 0.8;
  const auto link = gpusim::LinkSpec::pcie3();  // the harder link to hide

  perf::print_banner("Scaling",
                     "Multi-device lockstep vs overlapped ghost exchange");

  // ---- Section 1: functional + bit-identity gates. ----
  {
    const int fx = 16, fy = 8, fz = 6;
    const auto ch = Channel<D3Q19>::create(fx, fy, fz, tau, 0.04);
    MrEngine<D3Q19> mono(ch.geo, tau, Regularization::kProjective, {4, 4, 1});
    ch.attach(mono);
    mono.run(6);

    auto make = [&](ExchangeMode m) {
      auto e = std::make_unique<MultiDomainEngine<D3Q19>>(
          ch.geo, tau, 4,
          [&](Geometry g, int) -> std::unique_ptr<Engine<D3Q19>> {
            return std::make_unique<MrEngine<D3Q19>>(
                std::move(g), tau, Regularization::kProjective,
                MrConfig{4, 4, 1});
          });
      e->set_exchange_mode(m);
      ch.attach(*e);
      e->run(6);
      return e;
    };
    const auto lock = make(ExchangeMode::kLockstep);
    const auto over = make(ExchangeMode::kOverlap);

    double worst = 0;
    for (int z = 0; z < fz; ++z) {
      for (int y = 0; y < fy; ++y) {
        for (int x = 0; x < fx; ++x) {
          worst = std::max(worst, std::abs(static_cast<double>(
                                      mono.moments_at(x, y, z).u[0] -
                                      lock->moments_at(x, y, z).u[0])));
        }
      }
    }
    std::printf("functional check: |mono - 4-slab| = %.2e (exact to fp)\n",
                worst);
    check(worst < 1e-12, "decomposed run must reproduce the monolithic one");

    const std::uint64_t bad = field_mismatches(*lock, *over, ch.geo.box);
    std::printf("overlap vs lockstep: %llu mismatched nodes (must be 0)\n",
                static_cast<unsigned long long>(bad));
    check(bad == 0, "overlapped schedule must be bit-identical to lockstep");
    for (int d = 0; d < lock->devices(); ++d) {
      const auto tl = lock->device_engine(d).profiler()->total_traffic();
      const auto to = over->device_engine(d).profiler()->total_traffic();
      check(tl.bytes_read == to.bytes_read &&
                tl.bytes_written == to.bytes_written,
            "slab " + std::to_string(d) +
                ": overlap must not change traffic totals");
    }
    std::printf("measured exchange: %llu values/step (= ifaces x 2 dirs x "
                "face nodes x M=%d)\n\n",
                static_cast<unsigned long long>(
                    lock->exchanged_values_per_step()),
                D3Q19::M);
  }

  // Per-cell kernel traffic for the perfmodel, measured on a small
  // instrumented monolithic run (the access pattern is size-independent).
  double bytes_per_cell = 0;
  {
    MrEngine<D3Q19> probe(bench::periodic_geo(16, 16, 8), tau,
                          Regularization::kProjective,
                          bench::default_mr_config(3));
    const auto t = bench::measure_traffic<D3Q19>(probe);
    bytes_per_cell = t.read_bytes_per_node + t.write_bytes_per_node;
  }

  // ---- Section 2: measured weak/strong scaling, both exchange modes. ----
  std::vector<ScaleRow> rows;
  for (const bool weak : {true, false}) {
    std::printf("-- measured %s scaling (D3Q19 MR-P, %s, V100 model) --\n",
                weak ? "weak" : "strong", link.name.c_str());
    AsciiTable t({"slabs", "grid", "mode", "step(model)", "comm/step",
                  "exposed", "hidden", "model exp.", "speedup(model)"});
    for (int ndev = 2; ndev <= max_ndev; ndev *= 2) {
      const int nx = weak ? weak_w * ndev : strong_nx;
      const auto ch = Channel<D3Q19>::create(nx, ncross, ncross, tau, 0.04);
      ScaleRow base;
      base.scaling = weak ? "weak" : "strong";
      base.ndev = ndev;
      base.nx = nx;
      base.ny = ncross;
      base.nz = ncross;
      base.steps = steps;

      ScaleRow rl = base;
      auto ml = run_mode(ch, ndev, ExchangeMode::kLockstep, link, steps, rl);
      ScaleRow ro = base;
      auto mo = run_mode(ch, ndev, ExchangeMode::kOverlap, link, steps, ro);

      const auto pred = model_aggregate(*mo, link, bytes_per_cell);
      ro.model_exposed_frac = pred.exposed_fraction();
      ro.model_speedup = pred.overlap_step_s > 0
                             ? pred.lockstep_step_s / pred.overlap_step_s
                             : 0.0;
      rl.model_exposed_frac = 1.0;  // lockstep exposes everything

      check(field_mismatches(*ml, *mo, ch.geo.box) == 0,
            base.scaling + " " + std::to_string(ndev) +
                " slabs: overlap fields must match lockstep");
      check(std::abs(ro.exposed_frac - ro.model_exposed_frac) <= 0.15,
            base.scaling + " " + std::to_string(ndev) +
                " slabs: perfmodel exposed fraction within 15 points of "
                "profiler");
      if (weak && ndev >= 4) {
        check(ro.hidden_frac >= 0.60,
              "weak scaling " + std::to_string(ndev) +
                  " slabs: overlap must hide >= 60% of the exchange");
      }

      for (const ScaleRow& r : {rl, ro}) {
        t.row({std::to_string(r.ndev),
               std::to_string(r.nx) + "x" + std::to_string(r.ny) + "x" +
                   std::to_string(r.nz),
               r.mode, AsciiTable::num(r.step_s * 1e6, 2) + " us",
               AsciiTable::num(r.comm_s * 1e6, 2) + " us",
               AsciiTable::num(100 * r.exposed_frac, 1) + "%",
               AsciiTable::num(100 * r.hidden_frac, 1) + "%",
               AsciiTable::num(100 * r.model_exposed_frac, 1) + "%",
               r.mode == "overlap" ? AsciiTable::num(r.model_speedup, 3)
                                   : "-"});
        rows.push_back(r);
      }
    }
    t.print();
    std::printf("\n");
  }

  // ---- Section 3: analytic projection at paper scale. ----
  if (!smoke) {
    analytic_projection();
    std::printf(
        "\nthe moment exchange ships M=10 doubles per face node vs the\n"
        "distribution representation's Q=19, so MR loses less efficiency per\n"
        "interface — and its exchange is exact for regularized collisions.\n");
  }

  if (!write_json(out, rows)) {
    std::fprintf(stderr, "error: could not write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  if (g_failures > 0) {
    std::printf("%d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("all checks passed\n");
  return 0;
}
