// Ablation: push vs pull ordering of the ST pattern (Section 3.1).
//
// "Introduced by [Wellein et al.], the pull configuration is considered the
// fastest GPU implementation of the standard distribution representation."
// Both orderings move the same bytes (verified on the instrumented
// engines); the difference is *which* side of the transfer is irregular:
// pull gathers (misaligned loads, stores coalesced), push scatters
// (misaligned stores, loads coalesced). Misaligned stores cost more than
// misaligned loads on both architectures — modelled here as a store-side
// bandwidth penalty on the push kernel.
#include <cstdio>

#include "common.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/roofline.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

/// Write-side efficiency of scatter (push) relative to gather (pull):
/// misaligned stores serialize partial cache-line updates. Calibrated to
/// the ~10-20% pull advantage reported by Wellein et al. and successors.
constexpr double kPushStorePenalty = 0.88;

template <class L>
void compare(CsvWriter& csv) {
  Geometry geo = bench::periodic_geo(L::D == 2 ? 32 : 12,
                                     L::D == 2 ? 24 : 10, L::D == 2 ? 1 : 8);
  StEngine<L> pull(geo, 0.8, CollisionScheme::kBGK, 256, StreamMode::kPull);
  StEngine<L> push(geo, 0.8, CollisionScheme::kBGK, 256, StreamMode::kPush);
  const auto t_pull = bench::measure_traffic<L>(pull);
  const auto t_push = bench::measure_traffic<L>(push);

  const auto lat = perf::lattice_info<L>();
  const auto kc = bench::st_characteristics<L>();

  std::printf("\n-- %s --\n", L::name());
  AsciiTable t({"config", "irregular side", "B/node measured", "V100 MFLUPS",
                "MI100 MFLUPS"});
  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();
  const double pull_v = perf::estimate_saturated(v100, Pattern::kST, lat, kc).mflups;
  const double pull_m = perf::estimate_saturated(mi100, Pattern::kST, lat, kc).mflups;
  const double push_v = pull_v * kPushStorePenalty;
  const double push_m = pull_m * kPushStorePenalty;

  t.row({"pull (paper ST)", "loads (gather)",
         AsciiTable::num(t_pull.read_bytes_per_node +
                             t_pull.write_bytes_per_node, 0),
         AsciiTable::num(pull_v, 0), AsciiTable::num(pull_m, 0)});
  t.row({"push", "stores (scatter)",
         AsciiTable::num(t_push.read_bytes_per_node +
                             t_push.write_bytes_per_node, 0),
         AsciiTable::num(push_v, 0), AsciiTable::num(push_m, 0)});
  t.print();

  csv.row({L::name(), "pull", CsvWriter::num(pull_v), CsvWriter::num(pull_m)});
  csv.row({L::name(), "push", CsvWriter::num(push_v), CsvWriter::num(push_m)});
}

}  // namespace

int main() {
  perf::print_banner("Ablation", "ST push vs pull configuration");
  CsvWriter csv(perf::results_dir() + "/ablation_push_pull.csv",
                {"lattice", "config", "v100_mflups", "mi100_mflups"});
  compare<D2Q9>(csv);
  compare<D3Q19>(csv);
  std::printf(
      "\nboth configurations move identical bytes; pull wins by keeping the\n"
      "store stream coalesced, which is why the paper benchmarks ST as pull.\n");
  return 0;
}
