// Moment-representation engine (Algorithm 2 of the paper).
//
// Global memory holds only the M = 1 + D + D(D+1)/2 moments {rho, u, Pi} per
// node — the regularized schemes make this a lossless representation of the
// simulation state. Each timestep, per column of the domain (one thread
// block on a real GPU):
//
//   phase A  read the moments of the current tile plus a one-node-wide halo
//            in the non-axial (cross) directions, collide in moment space
//            (Eq. 10), map to distribution space with the projective (MR-P,
//            Eq. 11) or recursive (MR-R, Eq. 14) reconstruction, and scatter
//            the post-collision populations into a shared-memory ring that
//            covers the tile plus two extra layers along the sweep axis;
//
//   phase B  once a tile's layers have received every streamed population
//            (one level later), re-project them to moments (Eqs. 1-3) and
//            write those M values back to global memory.
//
// The sweep walks the column bottom-to-top (sliding window). Columns run
// concurrently; the simulator's level-synchronized launcher bounds the
// inter-column skew that a real GPU bounds with the circular array shift
// (see DESIGN.md §3).
//
// Two global storage policies are provided:
//  * kPingPong      — two moment lattices, read t / write t+1 (2M per node;
//                     matches the memory footprints the paper reports);
//  * kCircularShift — a single moment lattice with S+2 layers along the
//                     sweep axis; layer s of timestep t lives at physical
//                     layer (s - 2t) mod (S+2), so the write of layer s at
//                     t+1 lands exactly in the slot vacated by layer s+2 of
//                     timestep t (Dethier-style constant-time shifting;
//                     M per node plus two layers).
// Both move 2M storage elements of global traffic per fluid lattice update
// (Table 2).
//
// `ST` is the storage-precision policy: the element type of the *global*
// moment lattices. The shared-memory ring stays in the compute precision
// (real_t) — on a real GPU the ring lives on-chip where capacity, not
// DRAM bandwidth, is the constraint, and keeping it wide means the only
// rounding an FP32 run adds is at the global load/store boundary.
//
// Sparse geometries (Geometry::sparse()): the moment lattice is
// column-compressed — the natural granule of the MR sweep is the
// cross-section column (a (x[, y]) stack of sweep layers), so columns whose
// every layer is solid allocate no moment storage and a counted int32 column
// map supplies the compressed column id (-1 for the unallocated ones). Each
// block loads the map entries of its tile plus cross halo once per step
// (make_state), the same stash discipline as the ST/AA tile kernels. Phase A
// skips solid source nodes and bounces populations streamed into solid
// destinations back into the source's ring word (half-way bounceback,
// exactly the wall-face path); phase B skips solid nodes, so their ring
// words and moment slots are never touched. Mixed columns keep per-node
// solid flags in registers (on hardware they ride in the column map's spare
// bits). Dense geometries never touch the map and keep the flat addressing
// bit-identically, fields and traffic counters.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/regularization.hpp"
#include "engines/engine.hpp"
#include "gpusim/global_array.hpp"
#include "gpusim/profiler.hpp"

namespace mlbm {

enum class MomentStorage {
  kPingPong,
  kCircularShift,
};

inline const char* to_string(MomentStorage s) {
  return s == MomentStorage::kPingPong ? "ping-pong" : "circular-shift";
}

struct MrConfig {
  int tile_x = 32;  ///< tile extent along x (cross axis 0)
  int tile_y = 8;   ///< tile extent along y (cross axis 1; 3D only)
  int tile_s = 1;   ///< tile thickness along the sweep axis (paper: 1 in 3D)
  MomentStorage storage = MomentStorage::kPingPong;
};

template <class L, class ST = real_t>
class MrEngine final : public Engine<L> {
 public:
  using StorageT = ST;

  /// `exec` selects the scalar or lane-batched kernel body: lane mode runs
  /// phase A's moment collide + reconstruction and phase B's re-projection
  /// over SoA panels of kLaneWidth nodes (bit-identical; same traffic).
  MrEngine(Geometry geo, real_t tau, Regularization scheme,
           MrConfig config = {}, ExecMode exec = default_exec_mode());

  [[nodiscard]] const char* pattern_name() const override {
    return scheme_ == Regularization::kProjective ? "MR-P" : "MR-R";
  }
  void initialize(const typename Engine<L>::InitFn& init) override;
  [[nodiscard]] Moments<L> moments_at(int x, int y, int z) const override;
  void impose(int x, int y, int z, const Moments<L>& m) override;
  [[nodiscard]] std::size_t state_bytes() const override;
  [[nodiscard]] StoragePrecision storage_precision() const override {
    return precision_of_v<ST>;
  }

  [[nodiscard]] gpusim::Profiler* profiler() override { return &prof_; }
  [[nodiscard]] const gpusim::Profiler* profiler() const override {
    return &prof_;
  }

  [[nodiscard]] Regularization scheme() const { return scheme_; }
  [[nodiscard]] const MrConfig& config() const { return config_; }
  [[nodiscard]] ExecMode exec_mode() const { return exec_; }

  /// Declared sweep-kernel discipline: tile geometry, cross halo, shared
  /// ring capacity and the circular-shift write-behind/shift parameters.
  /// Reflects any installed FaultMutation, so a mutated engine declares the
  /// (broken) discipline it actually executes and the static analyzer must
  /// flag it — the same kill-rate contract the dynamic sanitizer satisfies.
  [[nodiscard]] analysis::EngineContract access_contract() const override {
    return analysis::mr_contract(
        analysis::make_lattice_desc<L>(), sizeof(ST),
        scheme_ == Regularization::kProjective,
        config_.storage == MomentStorage::kCircularShift, config_.tile_x,
        config_.tile_y, config_.tile_s, batched_io_, mutation_.write_behind,
        mutation_.ring_shift_bias, !mutation_.skip_phase_sync,
        mutation_.shrink_cross_halo ? 0 : 1);
  }

  /// Binds the sanitizer to the profiler and the moment lattice(s). Both
  /// storage policies satisfy the sliding-window freshness contract — a
  /// ping-pong read side was fully written by the previous step, and with
  /// the circular shift every slot phase A reads at step t was written as a
  /// t-layer by step t-1's phase B — so the lattices opt into the staleness
  /// check (which is exactly what catches a broken ring shift). Kernel-side
  /// shared-ring accesses are reported from do_step when a sanitizer is
  /// bound to the block context.
  void set_sanitizer(gpusim::SanitizerHook* san) override {
    prof_.set_sanitizer_hook(san);
    mom_[0].set_sanitizer(san, "mom0", /*sliding_window=*/true);
    if (mom_[1].allocated()) {
      mom_[1].set_sanitizer(san, "mom1", /*sliding_window=*/true);
    }
    if (sparse_) {
      // Read-only index data, written at construction: replay the host
      // writes so initcheck accepts them (see TileIndexDev::set_sanitizer).
      colmap_.set_sanitizer(san, "mr_colmap", /*sliding_window=*/false);
      if (san != nullptr) {
        for (std::size_t i = 0; i < colmap_.size(); ++i) {
          const auto v = std::as_const(colmap_).raw(static_cast<index_t>(i));
          colmap_.raw(static_cast<index_t>(i)) = v;
        }
      }
    }
  }

  /// Seeded fault mutations for sanitizer kill-rate tests. These deliberately
  /// corrupt the kernel's addressing/barrier discipline; the sanitizer must
  /// flag every one of them (tests/test_sanitizer.cpp). Not for normal use.
  struct FaultMutation {
    /// Added to the physical write layer (circular shift only): an
    /// off-by-one ring shift leaves one logical plane un-refreshed per step.
    int ring_shift_bias = 0;
    /// Write-behind distance (paper value 2): writing only 1 behind targets
    /// slots the window has not yet vacated.
    int write_behind = 2;
    /// Run phase B inside phase A's barrier epoch (models deleting the
    /// __syncthreads between collide/stream and write-back).
    bool skip_phase_sync = false;
    /// Drop the one-node cross halo from phase A's source loop (models a
    /// shrunken halo: edge ring words are never streamed into).
    bool shrink_cross_halo = false;
  };
  void set_fault_mutation_for_test(const FaultMutation& m) { mutation_ = m; }

  void set_unique_read_tracking(bool on) override {
    mom_[0].set_unique_read_tracking(on);
    if (mom_[1].allocated()) mom_[1].set_unique_read_tracking(on);
  }
  void clear_unique_reads() override {
    mom_[0].clear_unique_reads();
    if (mom_[1].allocated()) mom_[1].clear_unique_reads();
  }
  [[nodiscard]] std::uint64_t unique_read_bytes() const override {
    return mom_[0].unique_read_bytes() +
           (mom_[1].allocated() ? mom_[1].unique_read_bytes() : 0);
  }

  /// Soft-error surface: the global moment lattice(s) — the only
  /// device-resident state of the MR pattern.
  [[nodiscard]] std::uint64_t fault_sites() const override {
    return mom_[0].size() + (mom_[1].allocated() ? mom_[1].size() : 0);
  }
  void inject_storage_bitflip(std::uint64_t site, unsigned bit) override {
    const std::uint64_t n0 = mom_[0].size();
    const std::uint64_t s = site % fault_sites();
    if (s < n0) {
      mom_[0].flip_bit(static_cast<std::size_t>(s), bit);
    } else {
      mom_[1].flip_bit(static_cast<std::size_t>(s - n0), bit);
    }
  }

  /// Validation hook: scalar per-component moment I/O instead of batched
  /// spans. Bytes identical; transactions differ by the batch width M.
  void set_batched_io(bool on) { batched_io_ = on; }
  [[nodiscard]] bool batched_io() const { return batched_io_; }

  /// Thread-block geometry of the column kernel: (tile_x + 2) x tile_s in 2D,
  /// (tile_x + 2) x (tile_y + 2) x tile_s in 3D (halo threads included).
  [[nodiscard]] int threads_per_block() const;
  /// Shared-memory ring size per block: cross-section x (tile_s + 2) x Q.
  [[nodiscard]] std::size_t shared_bytes_per_block() const;

  /// Ping-pong columns are independent (the read lattice is read-only, the
  /// write lattice is tile-disjoint), so the step splits exactly into
  /// x-tile-range launches. The circular shift relies on the launch-wide
  /// level barrier to bound inter-column skew — separate launches would
  /// break the slot-reuse analysis — so it keeps the whole-step-as-frontier
  /// fallback.
  [[nodiscard]] bool supports_frontier_split() const override {
    return config_.storage == MomentStorage::kPingPong;
  }

 protected:
  void do_step() override;
  void do_step_split(const FrontierSpec& fs,
                     const typename Engine<L>::FrontierDoneFn& on_frontier)
      override;

 private:
  static constexpr int kSweepAxis = (L::D == 2) ? 1 : 2;
  static constexpr int NP = Moments<L>::NP;
  static constexpr int M = L::M;

  /// Sweep-axis extent and ring capacity (circular shift).
  [[nodiscard]] int sweep_extent() const;
  /// Physical sweep layer of logical layer `s` at timestep `t`.
  [[nodiscard]] int phys_layer(int s, long long t) const;
  /// Compressed column id of cross-section position (cx0, cx1): the flat
  /// cross index when dense, the column-map entry when sparse (-1 for
  /// unallocated all-solid columns). Host-side (uncounted).
  [[nodiscard]] index_t col_of(int cx0, int cx1) const;
  /// Flat index of moment `m` of node (cx0, cx1, s) with physical layer `sp`.
  [[nodiscard]] index_t midx(int m, int cx0, int cx1, int sp) const;

  [[nodiscard]] Moments<L> read_moments_raw(int cx0, int cx1, int s,
                                            long long t) const;
  void write_moments_raw(int cx0, int cx1, int s, long long t,
                         const Moments<L>& m);

  void ensure_records();
  void ensure_frontier_record();
  /// Number of column tiles along cross axis 0 (x).
  [[nodiscard]] int tiles_x() const;
  /// One level-synced launch covering column tiles [c0_begin,
  /// c0_begin + c0_count) along x; the full range is the monolithic step.
  /// Does not flip the ping-pong side.
  void step_tiles(int c0_begin, int c0_count, gpusim::KernelRecord& rec);

  Regularization scheme_;
  MrConfig config_;
  ExecMode exec_;
  gpusim::Profiler prof_;
  /// kPingPong: both allocated, cur_ is the read side. kCircularShift: only
  /// mom_[0] is allocated (with S+2 sweep layers).
  gpusim::GlobalArray<ST> mom_[2];
  int cur_ = 0;
  bool batched_io_ = true;
  /// Column compression (sparse only): number of allocated cross-section
  /// columns and the counted cross -> column map. Dense: ncols_ is the full
  /// cross-section and colmap_ stays unallocated.
  index_t ncols_ = 0;
  bool sparse_ = false;
  gpusim::GlobalArray<std::int32_t> colmap_;
  FaultMutation mutation_{};
  /// Cached kernel records (scheme and lattice are fixed per engine, plus a
  /// frontier variant for split steps) — no string lookup per step.
  gpusim::KernelRecord* krec_ = nullptr;
  gpusim::KernelRecord* krec_frontier_ = nullptr;
};

extern template class MrEngine<D2Q9, double>;
extern template class MrEngine<D3Q19, double>;
extern template class MrEngine<D3Q27, double>;
extern template class MrEngine<D3Q15, double>;
extern template class MrEngine<D2Q9, float>;
extern template class MrEngine<D3Q19, float>;
extern template class MrEngine<D3Q27, float>;
extern template class MrEngine<D3Q15, float>;

}  // namespace mlbm
