// Boundary conditions and workload builders.
#include <gtest/gtest.h>

#include <cmath>

#include "bc/boundary.hpp"
#include "engines/reference_engine.hpp"
#include "workloads/analytic.hpp"
#include "workloads/cavity.hpp"
#include "workloads/channel.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

// ------------------------------------------------------------ analytic refs

TEST(Analytic, PoiseuilleIsSymmetricWithUnitPeak) {
  const int n = 17;  // odd: the centre node sits exactly at the peak
  EXPECT_NEAR(analytic::poiseuille(n, n / 2), 1.0, 1e-12);
  for (int y = 0; y < n; ++y) {
    EXPECT_NEAR(analytic::poiseuille(n, y), analytic::poiseuille(n, n - 1 - y),
                1e-14);
    EXPECT_GT(analytic::poiseuille(n, y), 0.0);
    EXPECT_LE(analytic::poiseuille(n, y), 1.0);
  }
  // Half-way wall: extrapolating half a node outward hits zero.
  EXPECT_NEAR(analytic::poiseuille(10, 0), 4 * 0.05 * 0.95, 1e-12);
}

TEST(Analytic, CouetteIsLinear) {
  EXPECT_NEAR(analytic::couette(10, 0), 0.05, 1e-14);
  EXPECT_NEAR(analytic::couette(10, 9), 0.95, 1e-14);
  const real_t d1 = analytic::couette(10, 5) - analytic::couette(10, 4);
  const real_t d2 = analytic::couette(10, 8) - analytic::couette(10, 7);
  EXPECT_NEAR(d1, d2, 1e-14);
}

TEST(Analytic, DuctProfilePeaksAtCentre) {
  const int ny = 15, nz = 15;
  const real_t centre = analytic::duct(ny, nz, ny / 2, nz / 2);
  EXPECT_NEAR(centre, 1.0, 1e-6);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      const real_t v = analytic::duct(ny, nz, y, z);
      EXPECT_LE(v, 1.0 + 1e-9);
      EXPECT_GE(v, -1e-6);
      // Four-fold symmetry.
      EXPECT_NEAR(v, analytic::duct(ny, nz, ny - 1 - y, z), 1e-9);
      EXPECT_NEAR(v, analytic::duct(ny, nz, y, nz - 1 - z), 1e-9);
    }
  }
  // Corners are the slowest region.
  EXPECT_LT(analytic::duct(ny, nz, 0, 0), 0.2);
}

TEST(Analytic, WideDuctApproachesPoiseuille) {
  // As the aspect ratio grows, the mid-plane duct profile tends to the
  // plane-Poiseuille parabola.
  const int ny = 11, nz = 121;
  for (int y = 0; y < ny; ++y) {
    EXPECT_NEAR(analytic::duct(ny, nz, y, nz / 2),
                analytic::poiseuille(ny, y), 0.02);
  }
}

TEST(Analytic, TaylorGreenDecayIsExponential) {
  const real_t f1 = analytic::taylor_green_decay(32, 0.1, 10);
  const real_t f2 = analytic::taylor_green_decay(32, 0.1, 20);
  EXPECT_NEAR(f2, f1 * f1, 1e-12);
  EXPECT_NEAR(analytic::taylor_green_decay(32, 0.1, 0), 1.0, 1e-15);
}

// ----------------------------------------------------------------- channel

TEST(ChannelSetup, GeometryAndNodeKinds) {
  const auto ch = Channel<D2Q9>::create(16, 8, 1, 0.8, 0.05);
  EXPECT_EQ(ch.geo.bc.face[0][0].type, FaceBC::kOpen);
  EXPECT_EQ(ch.geo.bc.face[1][0].type, FaceBC::kWall);
  EXPECT_EQ(ch.geo.count(NodeKind::kInlet), 8);
  EXPECT_EQ(ch.geo.count(NodeKind::kOutlet), 8);
  EXPECT_EQ(ch.geo.at(0, 3, 0), NodeKind::kInlet);
  EXPECT_EQ(ch.geo.at(15, 3, 0), NodeKind::kOutlet);
  EXPECT_EQ(ch.geo.at(5, 0, 0), NodeKind::kWall);
  EXPECT_EQ(ch.geo.at(5, 3, 0), NodeKind::kFluid);
}

TEST(ChannelSetup, LaminarInletProfileIsParabolic) {
  const auto ch = Channel<D2Q9>::create(16, 10, 1, 0.8, 0.06);
  for (int y = 0; y < 10; ++y) {
    EXPECT_NEAR(ch.inlet_ux(y, 0), 0.06 * analytic::poiseuille(10, y), 1e-14);
  }
}

TEST(ChannelSetup, UniformProfileIsPlug) {
  const auto ch =
      Channel<D2Q9>::create(16, 10, 1, 0.8, 0.06, InletProfile::kUniform);
  for (int y = 0; y < 10; ++y) {
    EXPECT_NEAR(ch.inlet_ux(y, 0), 0.06, 1e-14);
  }
}

TEST(ChannelSetup, Validation) {
  EXPECT_THROW(Channel<D2Q9>::create(16, 8, 4, 0.8, 0.05),
               std::invalid_argument);
  EXPECT_THROW(Channel<D3Q19>::create(16, 8, 1, 0.8, 0.05),
               std::invalid_argument);
}

// ------------------------------------------------------------------ BC pass

TEST(InletOutletBC, Validation) {
  Box box{16, 8, 1};
  EXPECT_THROW(InletOutletBC<D2Q9>(box, {}), std::invalid_argument);
  Box tiny{3, 8, 1};
  std::vector<std::array<real_t, 3>> prof(8, {0.01, 0, 0});
  EXPECT_THROW(InletOutletBC<D2Q9>(tiny, prof), std::invalid_argument);
}

TEST(InletOutletBC, ImposesPrescribedVelocityAndExtrapolatedDensity) {
  const auto ch = Channel<D2Q9>::create(16, 8, 1, 0.8, 0.05);
  ReferenceEngine<D2Q9> e(ch.geo, 0.8, CollisionScheme::kBGK);
  ch.attach(e);
  e.run(5);
  for (int y = 0; y < 8; ++y) {
    const auto m = e.moments_at(0, y, 0);
    EXPECT_NEAR(m.u[0], ch.inlet_ux(y, 0), 1e-12);
    EXPECT_NEAR(m.u[1], 0.0, 1e-12);
    EXPECT_NEAR(m.rho, e.moments_at(1, y, 0).rho, 1e-12);
  }
}

TEST(InletOutletBC, OutletDensityIsPrescribed) {
  const auto ch = Channel<D2Q9>::create(16, 8, 1, 0.8, 0.05);
  ReferenceEngine<D2Q9> e(ch.geo, 0.8, CollisionScheme::kBGK);
  ch.attach(e);
  e.run(5);
  for (int y = 0; y < 8; ++y) {
    EXPECT_NEAR(e.moments_at(15, y, 0).rho, 1.0, 1e-12);
    // Zero-gradient velocity.
    EXPECT_NEAR(e.moments_at(15, y, 0).u[0], e.moments_at(14, y, 0).u[0],
                1e-12);
  }
}

TEST(InletOutletBC, FdStrainRateReconstructsShearPineq) {
  // Impose a pure shear u_x = a * y everywhere; the inlet pass must rebuild
  // Pi^neq_xy = -2 rho cs2 tau S_xy with S_xy = a/2.
  const real_t a = 1e-3, tau = 0.8;
  Geometry geo(Box{8, 8, 1});
  geo.bc.set_axis(0, FaceBC::kOpen);
  geo.bc.set_axis(1, FaceBC::kWall);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  std::vector<std::array<real_t, 3>> prof(8);
  for (int y = 0; y < 8; ++y) prof[static_cast<std::size_t>(y)] = {a * y, 0, 0};
  for (int y = 0; y < 8; ++y) geo.set(0, y, 0, NodeKind::kInlet);

  ReferenceEngine<D2Q9> e(geo, tau, CollisionScheme::kBGK);
  e.initialize([a](int, int y, int) {
    return equilibrium_moments<D2Q9>(1.0, {a * y, 0});
  });
  InletOutletBC<D2Q9> bc(geo.box, prof);
  bc.apply(e);

  const int y = 4;
  const auto m = e.moments_at(0, y, 0);
  const real_t pineq_xy = m.pi[1] - m.rho * m.u[0] * m.u[1];
  EXPECT_NEAR(pineq_xy, -2 * m.rho * D2Q9::cs2 * tau * (a / 2), 1e-9);
}

// --------------------------------------------------------------- workloads

TEST(TaylorGreenSetup, InitialStateIsConsistent) {
  const auto tg = TaylorGreen<D2Q9>::create(16, 0.03);
  ReferenceEngine<D2Q9> e(tg.geo, 0.8, CollisionScheme::kBGK);
  tg.attach(e);
  real_t rho_sum = 0;
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      rho_sum += e.moments_at(x, y, 0).rho;
    }
  }
  EXPECT_NEAR(rho_sum / (16 * 16), 1.0, 1e-10);  // mean density 1
  EXPECT_GT(TaylorGreen<D2Q9>::kinetic_energy(e), 0.0);
  const auto v = tg.velocity(3, 5, 0.1, 0.0);
  const auto m = e.moments_at(3, 5, 0);
  EXPECT_NEAR(m.u[0], v[0], 1e-12);
  EXPECT_NEAR(m.u[1], v[1], 1e-12);
}

TEST(CavitySetup, LidFaceCarriesWallVelocity) {
  const auto cav2 = LidDrivenCavity<D2Q9>::create(8, 0.1);
  EXPECT_EQ(cav2.geo.bc.face[1][1].u_wall[0], 0.1);
  EXPECT_EQ(cav2.geo.bc.face[1][0].u_wall[0], 0.0);
  EXPECT_EQ(cav2.geo.bc.face[0][0].type, FaceBC::kWall);

  const auto cav3 = LidDrivenCavity<D3Q19>::create(8, 0.1);
  EXPECT_EQ(cav3.geo.bc.face[2][1].u_wall[0], 0.1);
  EXPECT_EQ(cav3.geo.bc.face[2][0].u_wall[0], 0.0);
}

TEST(GeometryBasics, BoxIndexingAndCounts) {
  Box b{4, 3, 2};
  EXPECT_EQ(b.cells(), 24);
  EXPECT_EQ(b.idx(0, 0, 0), 0);
  EXPECT_EQ(b.idx(3, 2, 1), 23);
  EXPECT_EQ(b.idx(1, 2, 0), 9);
  EXPECT_TRUE(b.inside(3, 2, 1));
  EXPECT_FALSE(b.inside(4, 0, 0));
  EXPECT_EQ(Box::wrap(-1, 5), 4);
  EXPECT_EQ(Box::wrap(5, 5), 0);
  EXPECT_EQ(Box::wrap(3, 5), 3);
  EXPECT_EQ(b.extent(0), 4);
  EXPECT_EQ(b.extent(2), 2);
}

}  // namespace
}  // namespace mlbm
