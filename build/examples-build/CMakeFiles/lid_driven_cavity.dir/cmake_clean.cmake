file(REMOVE_RECURSE
  "../examples/lid_driven_cavity"
  "../examples/lid_driven_cavity.pdb"
  "CMakeFiles/lid_driven_cavity.dir/lid_driven_cavity.cpp.o"
  "CMakeFiles/lid_driven_cavity.dir/lid_driven_cavity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lid_driven_cavity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
