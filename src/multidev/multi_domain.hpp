// Multi-device domain decomposition (slab partitioning with ghost exchange).
//
// The paper's group runs LBM across many GPUs (refs [9], [11]: multi-GPU and
// petascale LBM solvers); a production release of the moment representation
// must therefore compose with domain decomposition. This module splits a
// channel-type domain into slabs along x, runs one engine per slab (each
// standing in for one GPU, with its own profiler), and exchanges one-node
// ghost planes between neighbours after every step — exactly the
// halo-exchange cycle of a distributed LBM code:
//
//   step all slabs  ->  exchange interface planes  ->  apply global BCs.
//
// The exchange moves the *moment* state {rho, u, Pi}, which every engine can
// produce and accept exactly; this mirrors the moment representation's
// communication advantage (M values per face node instead of the
// distribution representation's Q) and keeps the decomposition
// representation-agnostic: a decomposed MR run reproduces the monolithic
// run to round-off (tested), for any mix of engines per slab.
//
// Communication volume is metered per step so the scaling bench can combine
// it with per-link bandwidth models (NVLink / PCIe) into parallel-efficiency
// estimates.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "engines/engine.hpp"
#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/timeline.hpp"
#include "util/types.hpp"

namespace mlbm {

/// How the per-step ghost exchange is scheduled.
///
///  * kLockstep  — step every slab to completion, then exchange. All
///                 modeled communication time is exposed.
///  * kOverlap   — split every slab's step into frontier and interior
///                 launches (Engine::step_split); the interface planes are
///                 captured into double-buffered staging as soon as the
///                 frontier completes, so the modeled transfers run
///                 concurrently with the interior compute and only the
///                 residual (arrival after interior completion) is exposed.
/// Both modes produce bit-identical fields and traffic totals — overlap
/// reorders the modeled schedule, not the dataflow.
enum class ExchangeMode {
  kLockstep,
  kOverlap,
};

inline const char* to_string(ExchangeMode m) {
  return m == ExchangeMode::kLockstep ? "lockstep" : "overlap";
}

/// One slab of the decomposition: global x-range [x_begin, x_end) plus
/// `ghost_depth` ghost planes on each interior side.
struct SlabInfo {
  int x_begin = 0;      ///< first owned global x
  int x_end = 0;        ///< one past the last owned global x
  bool has_left = false;   ///< ghost band at local x in [0, ghost_depth)
  bool has_right = false;  ///< ghost band ending at local x = local_nx - 1
  /// Ghost band width per interior side. Depth 1 suffices for the one-node
  /// stencils (ST, MR, reference); the AA pattern's in-place odd step lets a
  /// ghost node's corrupted scatter reach one plane inward, so AA slabs need
  /// depth 2 — the outer ghost plane absorbs the corruption and the per-step
  /// exchange re-imposes both planes before it propagates into owned nodes.
  int ghost_depth = 1;
  /// Local extent including ghost planes.
  [[nodiscard]] int local_nx() const {
    return x_end - x_begin +
           ((has_left ? 1 : 0) + (has_right ? 1 : 0)) * ghost_depth;
  }
  /// Local x of global coordinate gx.
  [[nodiscard]] int local_x(int gx) const {
    return gx - x_begin + (has_left ? ghost_depth : 0);
  }
};

/// Splits `nx` columns into `ndev` contiguous slabs (remainder spread over
/// the first slabs) and computes ghost plane placement. Throws
/// mlbm::ConfigError for degenerate decompositions: ndev < 1, ndev > nx
/// (zero-width slabs), ghost_depth < 1, or slabs narrower than the ghost
/// depth (an exchange would have to read a neighbour's ghost band).
std::vector<SlabInfo> make_slabs(int nx, int ndev, int ghost_depth = 1);

/// Builds the local geometry of one slab from the global geometry: interior
/// interfaces become kOpen faces (their planes are ghost nodes rebuilt by
/// the exchange), outer faces keep the global behaviour.
Geometry slab_geometry(const Geometry& global, const SlabInfo& slab);

/// Implements the full Engine<L> interface on the global coordinate system,
/// so workloads, boundary passes, checkpoints and tests compose with a
/// decomposed run exactly as with a monolithic engine.
///
/// Exactness note: the ghost exchange carries {rho, u, Pi}, which describes
/// the regularized schemes' state losslessly — a decomposed MR-P/MR-R (or
/// projective-ST) run is bit-comparable to the monolithic one. For plain
/// BGK, whose populations carry higher-order non-equilibrium content beyond
/// Pi, the moment exchange is a (tiny, O(Ma^3)) projection at the interface
/// — the distribution representation would need all Q values per face node
/// to be exact. This asymmetry is itself a selling point of the moment
/// representation for multi-GPU runs.
template <class L>
class MultiDomainEngine final : public Engine<L> {
 public:
  using EngineFactory =
      std::function<std::unique_ptr<Engine<L>>(Geometry, int /*slab*/)>;

  /// Decomposes `global` into `ndev` slabs (each with `ghost_depth` ghost
  /// planes per interior side) and creates one engine per slab.
  MultiDomainEngine(Geometry global, real_t tau, int ndev,
                    const EngineFactory& factory, int ghost_depth = 1);

  [[nodiscard]] const char* pattern_name() const override { return "MULTI"; }
  void initialize(const typename Engine<L>::InitFn& init) override;
  [[nodiscard]] Moments<L> moments_at(int gx, int y, int z) const override;
  /// Writes to the owning slab and to any neighbour ghost copy of the plane.
  void impose(int gx, int y, int z, const Moments<L>& m) override;
  [[nodiscard]] std::size_t state_bytes() const override;
  /// Storage precision of the slab engines (the factory builds them
  /// uniformly; mixed-precision decompositions report the first slab).
  /// state_bytes() needs no adjustment: it sums the slab engines, which
  /// already size themselves by their own storage type.
  [[nodiscard]] StoragePrecision storage_precision() const override {
    if (engines_.empty()) {
      throw ConfigError(
          "MultiDomainEngine: no slab engines (moved-from or degenerate "
          "decomposition)");
    }
    return engines_.front()->storage_precision();
  }

  /// One sanitizer observes every slab engine ("device"). The per-array
  /// launch-touch counters in the sanitizer keep the slabs' interleaved
  /// launches independent, and the ghost exchange's host-side impose()
  /// writes re-stamp every ghost plane fresh each step — so a decomposed
  /// run is hazard-free exactly when its slabs are, and a *skipped*
  /// exchange surfaces as stale ghost reads.
  void set_sanitizer(gpusim::SanitizerHook* san) override {
    for (auto& e : engines_) e->set_sanitizer(san);
  }

  /// Seeded fault mutation: drop the ghost exchange after each step. The
  /// slab kernels still *write* their ghost nodes (open-face placeholder
  /// values), so this is the one seeded fault that memory-shadow checks
  /// cannot see — exactly as compute-sanitizer cannot see a dropped MPI
  /// message on a device-computed halo. The sanitizer tests use it to pin
  /// that boundary: the run stays hazard-clean while the physics diverges
  /// from the monolithic reference (the receive-buffer initcheck tests
  /// cover the detectable variant of this fault). Not for normal use.
  void set_skip_exchange_for_test(bool skip) { skip_exchange_ = skip; }

  /// Soft-error surface: the union of the slab engines' fault sites, routed
  /// by global site index (slab order).
  [[nodiscard]] std::uint64_t fault_sites() const override;
  void inject_storage_bitflip(std::uint64_t site, unsigned bit) override;

  [[nodiscard]] int devices() const { return static_cast<int>(slabs_.size()); }
  [[nodiscard]] int ghost_depth() const { return ghost_depth_; }
  [[nodiscard]] const SlabInfo& slab(int d) const {
    return slabs_[static_cast<std::size_t>(d)];
  }

  /// Exchange scheduling (see ExchangeMode). Switchable between steps; the
  /// fields and traffic counters are identical either way.
  void set_exchange_mode(ExchangeMode m) { mode_ = m; }
  [[nodiscard]] ExchangeMode exchange_mode() const { return mode_; }

  /// Installs the performance model used to attribute communication time:
  /// kernel durations derive from the device spec's bandwidth and the
  /// launches' measured bytes, transfer durations from the link's latency
  /// and bandwidth. Without a model, stepping is unchanged and the per-slab
  /// CommStats stay zero.
  void set_timeline_model(const gpusim::DeviceSpec& dev,
                          const gpusim::LinkSpec& link) {
    dev_spec_ = dev;
    link_spec_ = link;
    have_model_ = true;
  }
  [[nodiscard]] bool has_timeline_model() const { return have_model_; }

  /// Aggregated exposed/hidden communication attribution across the slab
  /// profilers (zero until set_timeline_model). Per-device numbers live in
  /// device_engine(d).profiler()->comm_stats().
  [[nodiscard]] gpusim::CommStats comm_stats() const;

  /// The stream/event schedule of the most recent overlapped step (empty
  /// before the first overlap step or in lockstep mode).
  [[nodiscard]] const gpusim::Timeline& last_step_timeline() const {
    return last_tl_;
  }

  /// Modeled bytes crossing one interface in one direction per step.
  [[nodiscard]] std::uint64_t ghost_bytes_per_direction() const {
    const Box& b = this->geo_.box;
    return static_cast<std::uint64_t>(ghost_depth_) *
           static_cast<std::uint64_t>(b.ny) * static_cast<std::uint64_t>(b.nz) *
           static_cast<std::uint64_t>(L::M) * sizeof(real_t);
  }
  [[nodiscard]] Engine<L>& device_engine(int d) {
    return *engines_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] const Engine<L>& device_engine(int d) const {
    return *engines_[static_cast<std::size_t>(d)];
  }

  /// Moment values exchanged across all interfaces in one step (both
  /// directions). The exchange crosses the link in the *compute* precision
  /// (values pass through Moments<L>, i.e. real_t), so modelled link bytes
  /// are this x sizeof(real_t) regardless of the slabs' storage precision —
  /// only device-resident state shrinks under FP32 storage.
  [[nodiscard]] std::uint64_t exchanged_values_per_step() const;
  /// Total values exchanged since construction.
  [[nodiscard]] std::uint64_t exchanged_values_total() const {
    return exchanged_total_;
  }
  /// Restores the exchange-volume counter to a checkpointed value (rollback
  /// support: a replayed window must re-count, not double-count).
  void set_exchanged_total(std::uint64_t v) { exchanged_total_ = v; }

  /// Raw snapshot surface: the concatenation of the slab engines' raw states
  /// (each length-prefixed), ghost planes included — so a rollback erases
  /// in-flight halo corruption along with everything else. Non-empty only
  /// when every slab engine supports raw serialization.
  [[nodiscard]] std::string raw_state_tag() const override;
  void serialize_raw_state(std::vector<real_t>& out) const override;
  void restore_raw_state(const std::vector<real_t>& in) override;
  /// Slab engines step in lockstep with the global clock, so re-timing the
  /// decomposition re-times every slab.
  void set_time(int t) override;

 protected:
  /// One global timestep. Lockstep: step every slab, then exchange ghost
  /// planes. Overlap: split-step every slab (capturing interface planes into
  /// parity-indexed staging), then apply the staged ghosts — same dataflow,
  /// with the modeled transfers scheduled against the interior compute.
  /// (The base class then runs the global post-step boundary pass.)
  void do_step() override;

 private:
  [[nodiscard]] int owner_of(int gx) const;
  void exchange();
  void step_lockstep();
  void step_overlapped();
  /// Copies slab d's owned interface planes into the staging buffer for
  /// step parity `par`.
  void capture_interface_planes(int d, int par);
  /// Imposes the staged interface planes into the neighbouring ghost bands.
  void apply_staged_ghosts(int par);
  /// Builds the per-step stream/event schedule from the measured frontier /
  /// interior bytes and accumulates exposed/hidden attribution into the
  /// slab profilers.
  void account_overlap(const std::vector<std::uint64_t>& frontier_bytes,
                       const std::vector<std::uint64_t>& interior_bytes);

  std::vector<SlabInfo> slabs_;
  std::vector<std::unique_ptr<Engine<L>>> engines_;
  std::uint64_t exchanged_total_ = 0;
  bool skip_exchange_ = false;
  int ghost_depth_ = 1;
  ExchangeMode mode_ = ExchangeMode::kLockstep;
  bool have_model_ = false;
  gpusim::DeviceSpec dev_spec_{};
  gpusim::LinkSpec link_spec_{};
  gpusim::Timeline last_tl_;
  /// Double-buffered interface staging, indexed by step parity: the capture
  /// of step t never overwrites the buffer a (modeled) in-flight transfer of
  /// step t-1 would still be reading. Layout per buffer:
  /// ((interface * 2 + dir) * depth + k) * ny * nz + z * ny + y, where dir 0
  /// carries left-slab planes rightward and dir 1 right-slab planes leftward,
  /// and k walks the depth planes in ascending global x.
  std::vector<Moments<L>> stage_[2];
};

extern template class MultiDomainEngine<D2Q9>;
extern template class MultiDomainEngine<D3Q19>;
extern template class MultiDomainEngine<D3Q27>;
extern template class MultiDomainEngine<D3Q15>;

}  // namespace mlbm
