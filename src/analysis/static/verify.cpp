#include "analysis/static/verify.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>

#include "analysis/static/analyzer.hpp"
#include "analysis/static/traffic.hpp"
#include "engines/factory.hpp"
#include "perfmodel/roofline.hpp"

namespace mlbm::analysis {

namespace {

/// Dense fully periodic probe box: every contract formula is exact here.
/// Extents are deliberately not multiples of the MR tile sizes, so the
/// ragged-tile halo terms of the derivation are exercised, and the 2D sweep
/// extent (ny) and 3D one (nz) satisfy the circular-shift minimum.
Geometry probe_geometry(int dim) {
  return Geometry(dim == 2 ? Box{40, 24, 1} : Box{16, 12, 10});
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

/// Per-step exact comparison of one measured counter against the derived
/// value; any mismatch is a verify failure, to the byte / transaction.
void expect_eq(std::uint64_t got, std::uint64_t want, const char* what,
               int step, CaseResult& cr) {
  if (got != want) {
    cr.failures.push_back(std::string("traffic: step ") +
                          std::to_string(step) + " " + what + " measured " +
                          fmt_u64(got) + " != derived " + fmt_u64(want));
  }
}

/// Everything checked about one constructed engine probe. `model_bpf` is
/// perfmodel's independent Table 2 prediction for this configuration (the
/// third corner of the agreement gate).
template <class L>
void run_probe(Engine<L>& eng, const std::string& config, double model_bpf,
               const VerifyOptions& opt, VerifyReport& rep) {
  CaseResult cr;
  cr.config = config;

  EngineContract contract = eng.access_contract();
  if (!opt.mutate.empty()) {
    const auto names = applicable_mutations(contract);
    if (std::find(names.begin(), names.end(), opt.mutate) != names.end()) {
      apply_mutation(contract, opt.mutate);
    }
  }

  // Gate 1: static cleanliness for all domain sizes.
  const AnalysisReport ar = analyze(contract);
  for (const auto& f : ar.findings) {
    cr.failures.push_back("static: " + to_string(f));
  }

  // Gate 2a: per-step counter deltas, exact. Mutated contracts are derived
  // from too (a span overrun changes the predicted counts, so demonstration
  // mode shows the traffic gate failing as well as the static one).
  const Box& b = eng.geometry().box;
  eng.initialize([](int, int, int) {
    return equilibrium_moments<L>(real_t(1), {});
  });
  eng.set_unique_read_tracking(true);
  const auto n = static_cast<std::uint64_t>(b.cells());
  double measured_cycle_bpf = 0.0;
  for (int s = 0; s < opt.steps; ++s) {
    eng.clear_unique_reads();
    const auto before = eng.profiler()->total_traffic();
    eng.step();
    const auto delta = eng.profiler()->total_traffic() - before;
    const StepTraffic want =
        derive_step_traffic(contract, b.nx, b.ny, b.nz, s);
    expect_eq(delta.bytes_read, want.bytes_read, "bytes_read", s, cr);
    expect_eq(delta.bytes_written, want.bytes_written, "bytes_written", s, cr);
    expect_eq(delta.reads, want.reads, "read txns", s, cr);
    expect_eq(delta.writes, want.writes, "write txns", s, cr);
    expect_eq(eng.unique_read_bytes(), want.unique_read_bytes,
              "unique read bytes", s, cr);
    // Ideal-L2 bytes per update of this step: unique reads + all writes.
    if (s < contract.steps_per_cycle) {
      measured_cycle_bpf +=
          static_cast<double>(eng.unique_read_bytes() + delta.bytes_written) /
          static_cast<double>(n);
    }
  }

  // Gate 2b: closed-form bytes/FLUP — contract == perfmodel == measurement,
  // exactly (every term is an integer multiple of the storage width).
  const double derived_bpf = derived_bytes_per_flup(contract);
  measured_cycle_bpf /= static_cast<double>(contract.steps_per_cycle);
  if (derived_bpf != model_bpf) {
    cr.failures.push_back(
        "bytes/FLUP: contract derives " + std::to_string(derived_bpf) +
        " but perfmodel predicts " + std::to_string(model_bpf));
  }
  if (derived_bpf != measured_cycle_bpf) {
    cr.failures.push_back(
        "bytes/FLUP: contract derives " + std::to_string(derived_bpf) +
        " but the probe measured " + std::to_string(measured_cycle_bpf));
  }

  // Gate 3: every registered kernel record must name a declared contract
  // and be listed under it.
  std::set<std::string> tags;
  for (const auto& nk : contract.node_kernels) tags.insert(nk.tag);
  for (const auto& rk : contract.ring_kernels) tags.insert(rk.tag);
  const auto covered = [&](const std::string& tag, const std::string& name) {
    for (const auto& nk : contract.node_kernels) {
      if (nk.tag == tag &&
          std::find(nk.kernels.begin(), nk.kernels.end(), name) !=
              nk.kernels.end()) {
        return true;
      }
    }
    for (const auto& rk : contract.ring_kernels) {
      if (rk.tag == tag &&
          std::find(rk.kernels.begin(), rk.kernels.end(), name) !=
              rk.kernels.end()) {
        return true;
      }
    }
    return false;
  };
  for (const auto& rec : eng.profiler()->all_records()) {
    if (rec.contract.empty()) {
      cr.failures.push_back("coverage: kernel '" + rec.name +
                            "' registered without a contract tag");
    } else if (tags.find(rec.contract) == tags.end()) {
      cr.failures.push_back("coverage: kernel '" + rec.name +
                            "' tagged '" + rec.contract +
                            "' which the engine contract does not declare");
    } else if (!covered(rec.contract, rec.name)) {
      cr.failures.push_back("coverage: kernel '" + rec.name +
                            "' is not listed under contract '" +
                            rec.contract + "'");
    }
  }

  // Gate 4: the kill matrix — every applicable seeded mutation must trip
  // the analyzer. (Built from the engine's pristine contract, independent
  // of demonstration mode.)
  for (const auto& name : applicable_mutations(eng.access_contract())) {
    EngineContract mutated = eng.access_contract();
    apply_mutation(mutated, name);
    const AnalysisReport mar = analyze(mutated);
    MutationResult mr;
    mr.config = config;
    mr.mutation = name;
    mr.killed = !mar.clean();
    if (mr.killed) mr.first_finding = mar.findings.front().check;
    rep.mutations.push_back(std::move(mr));
  }

  rep.cases.push_back(std::move(cr));
}

constexpr real_t kTau = real_t(0.6);

template <class L>
void run_lattice(const VerifyOptions& opt, VerifyReport& rep) {
  const auto lat = perf::lattice_info<L>();
  for (const StoragePrecision prec :
       {StoragePrecision::kFP64, StoragePrecision::kFP32}) {
    const double e = perf::elem_bytes_of(prec);
    const std::string suffix =
        std::string(" ") + L::name() + " " + to_string(prec);
    {
      auto eng = make_st_engine<L>(prec, probe_geometry(L::D), kTau);
      run_probe(*eng, "ST" + suffix,
                perf::bytes_per_flup(perf::Pattern::kST, lat, e), opt, rep);
    }
    {
      auto eng = make_st_engine<L>(prec, probe_geometry(L::D), kTau,
                                   CollisionScheme::kBGK, 256,
                                   StreamMode::kPush);
      run_probe(*eng, "ST-push" + suffix,
                perf::bytes_per_flup(perf::Pattern::kST, lat, e), opt, rep);
    }
    {
      auto eng = make_aa_engine<L>(prec, probe_geometry(L::D), kTau);
      run_probe(*eng, "AA" + suffix, perf::aa_bytes_per_flup(lat, e), opt,
                rep);
    }
    {
      auto eng = make_ep_engine<L>(prec, probe_geometry(L::D), kTau);
      run_probe(*eng, "EP" + suffix, perf::ep_bytes_per_flup(lat, e), opt,
                rep);
    }
    {
      auto eng = make_mr_engine<L>(prec, probe_geometry(L::D), kTau,
                                   Regularization::kProjective);
      run_probe(*eng, "MR-P" + suffix,
                perf::bytes_per_flup(perf::Pattern::kMRP, lat, e), opt, rep);
    }
    {
      MrConfig cfg;
      cfg.storage = MomentStorage::kCircularShift;
      auto eng = make_mr_engine<L>(prec, probe_geometry(L::D), kTau,
                                   Regularization::kProjective, cfg);
      run_probe(*eng, "MR-P/circ" + suffix,
                perf::bytes_per_flup(perf::Pattern::kMRP, lat, e), opt, rep);
    }
    {
      auto eng = make_mr_engine<L>(prec, probe_geometry(L::D), kTau,
                                   Regularization::kRecursive);
      run_probe(*eng, "MR-R" + suffix,
                perf::bytes_per_flup(perf::Pattern::kMRR, lat, e), opt, rep);
    }
  }
}

}  // namespace

std::vector<std::string> all_mutation_names() {
  // Union over the matrix = union over one engine of each family; build the
  // contracts directly so listing does not construct engines.
  std::set<std::string> names;
  const auto lat = make_lattice_desc<D2Q9>();
  for (const auto& c :
       {st_contract(lat, 8, false), aa_contract(lat, 8), ep_contract(lat, 8),
        mr_contract(lat, 8, true, /*single_buffer=*/true, 32, 8, 1)}) {
    for (const auto& n : applicable_mutations(c)) names.insert(n);
  }
  return {names.begin(), names.end()};
}

VerifyReport run_verify_matrix(const VerifyOptions& opt) {
  VerifyReport rep;
  run_lattice<D2Q9>(opt, rep);
  run_lattice<D3Q19>(opt, rep);
  run_lattice<D3Q15>(opt, rep);
  run_lattice<D3Q27>(opt, rep);
  return rep;
}

std::string to_string(const VerifyReport& rep) {
  std::ostringstream os;
  int failed = 0;
  for (const auto& c : rep.cases) {
    if (c.ok()) continue;
    ++failed;
    os << "FAIL " << c.config << "\n";
    for (const auto& f : c.failures) os << "  " << f << "\n";
  }
  for (const auto& m : rep.mutations) {
    if (!m.killed) {
      os << "SURVIVED " << m.config << " mutation '" << m.mutation << "'\n";
    }
  }
  os << rep.cases.size() << " configurations, " << failed << " failed; "
     << rep.mutations.size() << " seeded mutations, "
     << rep.mutations_killed() << " killed\n";
  return os.str();
}

}  // namespace mlbm::analysis
