# Empty compiler generated dependencies file for speedup_summary.
# This may be replaced when dependencies are built.
