// AA-pattern single-lattice engine: in-place streaming correctness,
// equivalence with the reference trajectory, footprint and traffic.
#include <gtest/gtest.h>

#include <cmath>

#include "engines/aa_engine.hpp"
#include "engines/reference_engine.hpp"
#include "workloads/cavity.hpp"
#include "workloads/channel.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

Geometry periodic_geo(int nx, int ny, int nz) {
  Geometry geo(Box{nx, ny, nz});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return geo;
}

template <class L>
double max_u_diff(const Engine<L>& a, const Engine<L>& b) {
  const Box& box = a.geometry().box;
  double worst = 0;
  for (int z = 0; z < box.nz; ++z) {
    for (int y = 0; y < box.ny; ++y) {
      for (int x = 0; x < box.nx; ++x) {
        const auto ma = a.moments_at(x, y, z);
        const auto mb = b.moments_at(x, y, z);
        worst = std::max(worst, std::abs(static_cast<double>(ma.rho - mb.rho)));
        for (int c = 0; c < L::D; ++c) {
          worst = std::max(worst, std::abs(static_cast<double>(
                                      ma.u[static_cast<std::size_t>(c)] -
                                      mb.u[static_cast<std::size_t>(c)])));
        }
      }
    }
  }
  return worst;
}

TEST(AaEngine2D, MatchesReferenceOnPeriodicFlowAtEvenSteps) {
  const real_t tau = 0.8;
  const auto tg = TaylorGreen<D2Q9>::create(16, 0.03);
  ReferenceEngine<D2Q9> ref(tg.geo, tau, CollisionScheme::kBGK);
  AaEngine<D2Q9> aa(tg.geo, tau);
  tg.attach(ref);
  tg.attach(aa);
  for (int pair = 0; pair < 10; ++pair) {
    ref.step();
    ref.step();
    aa.step();
    aa.step();
    ASSERT_LT(max_u_diff(ref, aa), 1e-12) << "after " << aa.time();
  }
}

TEST(AaEngine2D, MatchesReferenceOnCavityMovingWall) {
  const real_t tau = 0.7;
  const auto cav = LidDrivenCavity<D2Q9>::create(14, 0.06);
  ReferenceEngine<D2Q9> ref(cav.geo, tau, CollisionScheme::kBGK);
  AaEngine<D2Q9> aa(cav.geo, tau);
  cav.attach(ref);
  cav.attach(aa);
  for (int pair = 0; pair < 12; ++pair) {
    ref.run(2);
    aa.run(2);
  }
  EXPECT_LT(max_u_diff(ref, aa), 1e-12);
}

TEST(AaEngine3D, MatchesReferenceD3Q19) {
  const real_t tau = 0.9;
  const auto cav = LidDrivenCavity<D3Q19>::create(8, 0.05);
  ReferenceEngine<D3Q19> ref(cav.geo, tau, CollisionScheme::kBGK);
  AaEngine<D3Q19> aa(cav.geo, tau);
  cav.attach(ref);
  cav.attach(aa);
  ref.run(10);
  aa.run(10);
  EXPECT_LT(max_u_diff(ref, aa), 1e-12);
}

TEST(AaEngine2D, RegularizedCollisionAlsoMatches) {
  const real_t tau = 0.8;
  const auto tg = TaylorGreen<D2Q9>::create(16, 0.03);
  ReferenceEngine<D2Q9> ref(tg.geo, tau, CollisionScheme::kProjective);
  AaEngine<D2Q9> aa(tg.geo, tau, CollisionScheme::kProjective);
  tg.attach(ref);
  tg.attach(aa);
  ref.run(8);
  aa.run(8);
  EXPECT_LT(max_u_diff(ref, aa), 1e-12);
}

TEST(AaEngine, HalvesTheStFootprint) {
  const auto geo = periodic_geo(12, 10, 1);
  AaEngine<D2Q9> aa(geo, 0.8);
  EXPECT_EQ(aa.state_bytes(),
            static_cast<std::size_t>(12 * 10) * 9 * sizeof(real_t));
}

TEST(AaEngine, TrafficPerUpdateMatchesSt) {
  // Table 2 story: the AA pattern halves memory but NOT traffic — the MR
  // pattern's 2M B/F remains the only traffic reduction.
  AaEngine<D2Q9> aa(periodic_geo(16, 12, 1), 0.8);
  aa.initialize(
      [](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
  aa.run(2);  // one full even+odd cycle, warm
  const auto before = aa.profiler()->total_traffic();
  aa.run(2);
  const auto t = aa.profiler()->total_traffic() - before;
  const auto nodes = static_cast<std::uint64_t>(16 * 12) * 2;
  EXPECT_EQ(t.bytes_read, nodes * 9 * sizeof(real_t));
  EXPECT_EQ(t.bytes_written, nodes * 9 * sizeof(real_t));
}

TEST(AaEngine, StateRoundTripInBothPhases) {
  const auto geo = periodic_geo(8, 8, 1);
  AaEngine<D2Q9> aa(geo, 0.8);
  aa.initialize([](int x, int y, int) {
    return equilibrium_moments<D2Q9>(1.0 + 0.01 * x,
                                     {0.01 * y, -0.005 * x});
  });
  // Plain phase round trip.
  Moments<D2Q9> m = equilibrium_moments<D2Q9>(1.02, {0.03, -0.01});
  m.pi[1] += 1e-4;
  aa.impose(3, 4, 0, m);
  auto got = aa.moments_at(3, 4, 0);
  EXPECT_NEAR(got.rho, m.rho, 1e-14);
  EXPECT_NEAR(got.u[0], m.u[0], 1e-14);
  EXPECT_NEAR(got.pi[1], m.pi[1], 1e-13);

  // Swapped phase (after an odd number of steps) round trip.
  aa.step();
  aa.impose(3, 4, 0, m);
  got = aa.moments_at(3, 4, 0);
  EXPECT_NEAR(got.rho, m.rho, 1e-14);
  EXPECT_NEAR(got.u[0], m.u[0], 1e-13);
  EXPECT_NEAR(got.pi[1], m.pi[1], 1e-13);
}

TEST(AaEngine, RejectsOpenFaces) {
  const auto ch = Channel<D2Q9>::create(16, 8, 1, 0.8, 0.05);
  EXPECT_THROW(AaEngine<D2Q9>(ch.geo, 0.8), std::invalid_argument);
}

TEST(AaEngine, MassConservedOverManySteps) {
  const auto cav = LidDrivenCavity<D2Q9>::create(12, 0.08);
  AaEngine<D2Q9> aa(cav.geo, 0.7);
  cav.attach(aa);
  const real_t m0 = LidDrivenCavity<D2Q9>::total_mass(aa);
  aa.run(100);
  EXPECT_NEAR(LidDrivenCavity<D2Q9>::total_mass(aa), m0, 1e-9);
}

}  // namespace
}  // namespace mlbm
