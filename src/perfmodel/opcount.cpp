#include "perfmodel/opcount.hpp"

#include "core/equilibrium.hpp"
#include "core/hermite.hpp"
#include "core/moments.hpp"
#include "core/regularization.hpp"

namespace mlbm::perf {

thread_local std::uint64_t Counted::ops = 0;

namespace {

using mlbm::hermite::h1;
using mlbm::hermite::h2;

/// One ST node update (Algorithm 1): macroscopic moments + BGK collision.
template <class L>
std::uint64_t count_st_node() {
  Counted f[L::Q];
  for (int i = 0; i < L::Q; ++i) f[i] = 0.01 * (i + 1);
  const Counted inv_tau = 1.0 / 0.8;

  Counted::reset();
  Counted rho{};
  Counted u[L::D] = {};
  for (int i = 0; i < L::Q; ++i) {
    rho += f[i];
    for (int a = 0; a < L::D; ++a) {
      const real_t c = h1<L>(i, a);
      if (c != real_t(0)) u[a] += Counted(c) * f[i];
    }
  }
  for (int a = 0; a < L::D; ++a) u[a] /= rho;
  for (int i = 0; i < L::Q; ++i) {
    const Counted feq = mlbm::equilibrium<L, Counted>(i, rho, u);
    f[i] += inv_tau * (feq - f[i]);
  }
  return Counted::ops;
}

/// One MR node update (Algorithm 2): moment-space collision, regularized
/// reconstruction of all Q populations, and the phase-B re-projection of the
/// streamed populations back to M moments.
///
/// The replay mirrors an *optimized* kernel, not the generic library loops:
/// the Hermite moments a2/a3/a4 are hoisted out of the per-direction loop
/// (they do not depend on i), the per-direction sums skip terms whose
/// compile-time Hermite coefficient is zero, and the w_i / cs^2n constants
/// fold into one multiplier — exactly what an unrolled GPU kernel does.
template <class L>
std::uint64_t count_mr_node(Regularization reg) {
  constexpr int NP = mlbm::Moments<L>::NP;
  using T3 = mlbm::SymTriples<L::D>;
  using T4 = mlbm::SymQuads<L::D>;

  Counted rho = 1.01;
  Counted u[L::D];
  for (int a = 0; a < L::D; ++a) u[a] = 0.01 * (a + 1);
  Counted pi[NP];
  for (int p = 0; p < NP; ++p) pi[p] = 0.001 * (p + 1);
  const Counted relax = 1.0 - 1.0 / 0.8;

  Counted::reset();
  // Collision in moment space (Eq. 10) and full second moment a2.
  Counted a2[NP];
  for (int p = 0; p < NP; ++p) {
    const auto [a, b] = mlbm::Moments<L>::pair(p);
    const Counted eq = rho * u[a] * u[b];
    a2[p] = eq + relax * (pi[p] - eq);
  }
  // Higher-order moments for the recursive scheme, hoisted per node.
  Counted a3[T3::N];
  Counted a4[T4::N];
  if (reg == Regularization::kRecursive) {
    Counted pineq[NP];
    for (int p = 0; p < NP; ++p) {
      const auto [a, b] = mlbm::Moments<L>::pair(p);
      pineq[p] = a2[p] - rho * u[a] * u[b];
    }
    for (int t = 0; t < T3::N; ++t) {
      const int a = T3::idx[static_cast<std::size_t>(t)][0];
      const int b = T3::idx[static_cast<std::size_t>(t)][1];
      const int g = T3::idx[static_cast<std::size_t>(t)][2];
      a3[t] = rho * u[a] * u[b] * u[g] +
              mlbm::a3_neq<L, Counted>(u, pineq, a, b, g);
    }
    for (int q = 0; q < T4::N; ++q) {
      const int a = T4::idx[static_cast<std::size_t>(q)][0];
      const int b = T4::idx[static_cast<std::size_t>(q)][1];
      const int g = T4::idx[static_cast<std::size_t>(q)][2];
      const int d = T4::idx[static_cast<std::size_t>(q)][3];
      a4[q] = rho * u[a] * u[b] * u[g] * u[d] +
              mlbm::a4_neq<L, Counted>(u, pineq, a, b, g, d);
    }
  }

  // Per-direction reconstruction: dot products against compile-time Hermite
  // coefficients; zero coefficients disappear from an unrolled kernel.
  Counted f[L::Q];
  for (int i = 0; i < L::Q; ++i) {
    Counted acc = rho;
    for (int a = 0; a < L::D; ++a) {
      if (h1<L>(i, a) != real_t(0)) acc += Counted(3.0 * h1<L>(i, a)) * (rho * u[a]);
    }
    for (int p = 0; p < NP; ++p) {
      const auto [pa, pb] = mlbm::Moments<L>::pair(p);
      const real_t c = h2<L>(i, pa, pb) *
                       static_cast<real_t>(mlbm::SymPairs<L::D>::mult[static_cast<std::size_t>(p)]);
      if (c != real_t(0)) acc += Counted(c) * a2[p];
    }
    if (reg == Regularization::kRecursive) {
      for (int t = 0; t < T3::N; ++t) {
        const real_t c = mlbm::hermite::h3<L>(i, T3::idx[static_cast<std::size_t>(t)][0],
                                              T3::idx[static_cast<std::size_t>(t)][1],
                                              T3::idx[static_cast<std::size_t>(t)][2]) *
                         static_cast<real_t>(T3::mult[static_cast<std::size_t>(t)]);
        if (c != real_t(0)) acc += Counted(c) * a3[t];
      }
      for (int q = 0; q < T4::N; ++q) {
        const real_t c = mlbm::hermite::h4<L>(i, T4::idx[static_cast<std::size_t>(q)][0],
                                              T4::idx[static_cast<std::size_t>(q)][1],
                                              T4::idx[static_cast<std::size_t>(q)][2],
                                              T4::idx[static_cast<std::size_t>(q)][3]) *
                         static_cast<real_t>(T4::mult[static_cast<std::size_t>(q)]);
        if (c != real_t(0)) acc += Counted(c) * a4[q];
      }
    }
    f[i] = Counted(L::w[static_cast<std::size_t>(i)]) * acc;
  }

  // Phase B: re-projection to moments (Eqs. 1-3).
  Counted orho{};
  Counted ou[L::D] = {};
  Counted opi[NP] = {};
  for (int i = 0; i < L::Q; ++i) {
    orho += f[i];
    for (int a = 0; a < L::D; ++a) {
      const real_t c = h1<L>(i, a);
      if (c != real_t(0)) ou[a] += Counted(c) * f[i];
    }
    for (int p = 0; p < NP; ++p) {
      const auto [a, b] = mlbm::Moments<L>::pair(p);
      const real_t c = h2<L>(i, a, b);
      if (c != real_t(0)) opi[p] += Counted(c) * f[i];
    }
  }
  for (int a = 0; a < L::D; ++a) ou[a] /= orho;
  return Counted::ops;
}

}  // namespace

template <class L>
double flops_per_flup(Pattern p) {
  switch (p) {
    case Pattern::kST:
      return static_cast<double>(count_st_node<L>());
    case Pattern::kMRP:
      return static_cast<double>(count_mr_node<L>(Regularization::kProjective));
    case Pattern::kMRR:
      return static_cast<double>(count_mr_node<L>(Regularization::kRecursive));
  }
  return 0;
}

template double flops_per_flup<mlbm::D2Q9>(Pattern);
template double flops_per_flup<mlbm::D3Q19>(Pattern);
template double flops_per_flup<mlbm::D3Q27>(Pattern);
template double flops_per_flup<mlbm::D3Q15>(Pattern);

}  // namespace mlbm::perf
