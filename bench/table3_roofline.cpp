// Table 3: estimated optimal MFLUPS from the roofline model (Eq. 15) for
// each propagation pattern on the V100 and MI100.
#include <cstdio>

#include "core/lattice.hpp"
#include "gpusim/device.hpp"
#include "perfmodel/pattern.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/roofline.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

int main() {
  perf::print_banner("Table 3", "Roofline MFLUPS estimates (Eq. 15)");

  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();
  const auto d2q9 = perf::lattice_info<D2Q9>();
  const auto d3q19 = perf::lattice_info<D3Q19>();

  // Paper's Table 3 values, row-major [model][device x lattice].
  const double paper[2][4] = {{6250, 2960, 8533, 4042},
                              {9375, 5625, 12800, 7680}};

  AsciiTable t({"Model", "V100 D2Q9", "V100 D3Q19", "MI100 D2Q9",
                "MI100 D3Q19"});
  CsvWriter csv(perf::results_dir() + "/table3_roofline.csv",
                {"model", "device", "lattice", "roofline_mflups",
                 "paper_mflups", "deviation_pct"});

  const Pattern models[2] = {Pattern::kST, Pattern::kMRP};
  const char* names[2] = {"ST", "MR"};
  for (int m = 0; m < 2; ++m) {
    const double vals[4] = {
        perf::roofline_mflups(v100, perf::bytes_per_flup(models[m], d2q9)),
        perf::roofline_mflups(v100, perf::bytes_per_flup(models[m], d3q19)),
        perf::roofline_mflups(mi100, perf::bytes_per_flup(models[m], d2q9)),
        perf::roofline_mflups(mi100, perf::bytes_per_flup(models[m], d3q19)),
    };
    t.row({names[m], AsciiTable::num(vals[0], 0), AsciiTable::num(vals[1], 0),
           AsciiTable::num(vals[2], 0), AsciiTable::num(vals[3], 0)});
    const char* dev[4] = {"V100", "V100", "MI100", "MI100"};
    const char* lat[4] = {"D2Q9", "D3Q19", "D2Q9", "D3Q19"};
    for (int c = 0; c < 4; ++c) {
      csv.row({names[m], dev[c], lat[c], CsvWriter::num(vals[c]),
               CsvWriter::num(paper[m][c]),
               CsvWriter::num(perf::deviation_pct(vals[c], paper[m][c]))});
    }
  }
  t.print();

  std::printf("\npaper: ST 6250/2960/8533/4042, MR 9375/5625/12800/7680\n");
  return 0;
}
