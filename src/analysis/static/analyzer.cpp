#include "analysis/static/analyzer.hpp"

#include <algorithm>
#include <cstdlib>

namespace mlbm::analysis {

namespace {

std::string off_str(const std::array<int, 3>& o) {
  // Built by append: GCC 12 -O3 mis-diagnoses the `literal + to_string(...)`
  // chain with a spurious -Wrestrict in the inlined string internals.
  std::string s = "(";
  s += std::to_string(o[0]);
  s += ',';
  s += std::to_string(o[1]);
  s += ',';
  s += std::to_string(o[2]);
  s += ')';
  return s;
}

bool shares_component(const AccessDesc& a, const AccessDesc& b) {
  for (int c : a.comps) {
    if (std::find(b.comps.begin(), b.comps.end(), c) != b.comps.end()) {
      return true;
    }
  }
  return false;
}

/// node-race: for every (write, other) descriptor pair on the same array
/// with a common component, equal offsets mean the same thread touches the
/// word (ordered in program order: reads before writes); different offsets
/// mean two threads p and p + (A.off - W.off) collide on it. The offset
/// difference is realizable on every domain larger than the offsets
/// themselves (and on any extent at all under periodic wrap), so a nonzero
/// difference is a hazard for all domain sizes, not a corner case.
void check_node_races(const EngineContract& ec, const NodeKernelContract& nk,
                      AnalysisReport& rep) {
  const auto& acc = nk.accesses;
  for (std::size_t wi = 0; wi < acc.size(); ++wi) {
    if (!acc[wi].write) continue;
    for (std::size_t ai = 0; ai < acc.size(); ++ai) {
      if (ai == wi) continue;
      if (acc[ai].array != acc[wi].array) continue;
      if (acc[ai].write && ai < wi) continue;  // pair already reported
      if (!shares_component(acc[wi], acc[ai])) continue;
      if (acc[wi].off == acc[ai].off) continue;  // same thread, ordered
      rep.findings.push_back(
          {"node-race", nk.tag,
           "array '" + ec.arrays[static_cast<std::size_t>(acc[wi].array)]
                           .name +
               "': write at offset " + off_str(acc[wi].off) + " and " +
               (acc[ai].write ? "write" : "read") + " at offset " +
               off_str(acc[ai].off) +
               " share a component — nodes p and p+delta touch one word"});
    }
  }
}

void check_span_bounds(const EngineContract& ec, const std::string& tag,
                       const AccessDesc& a, AnalysisReport& rep) {
  const int nc = ec.arrays[static_cast<std::size_t>(a.array)].comps;
  for (int c : a.comps) {
    if (c < 0 || c >= nc) {
      rep.findings.push_back(
          {"span-bounds", tag,
           "component " + std::to_string(c) + " outside array '" +
               ec.arrays[static_cast<std::size_t>(a.array)].name + "' (" +
               std::to_string(nc) + " components): the span's " +
               (c < 0 ? "negative-stride endpoint underflows element 0"
                      : "top endpoint overruns the allocation") +
               " on every domain"});
    }
  }
  if (a.span && a.comps.size() > 1) {
    const int step = a.comps[1] - a.comps[0];
    bool affine = (step == 1 || step == -1);
    for (std::size_t i = 1; affine && i < a.comps.size(); ++i) {
      affine = (a.comps[i] - a.comps[i - 1]) == step;
    }
    if (!affine) {
      rep.findings.push_back(
          {"span-bounds", tag,
           "span components are not a unit-stride progression — not "
           "expressible as one strided transaction"});
    }
  }
}

// ---- ring-kernel checks ---------------------------------------------------

int sweep_reach(const LatticeDesc& lat) {
  int r = 0;
  for (int i = 0; i < lat.q; ++i) r = std::max(r, std::abs(lat.c_sweep(i)));
  return r;
}

int cross_reach(const LatticeDesc& lat, int axis) {
  int r = 0;
  for (int i = 0; i < lat.q; ++i) {
    r = std::max(r, std::abs(lat.c[static_cast<std::size_t>(i)][axis]));
  }
  return r;
}

/// Symbolic schedule simulation of the circular-shift storage policy over a
/// sweep of extents S. Physical layer of logical layer s at step t is
/// (s - shift*t) mod (S + layers_extra); the level schedule is the engine's:
/// level k's phase A consumes sources [k*ts, (k+1)*ts), its phase B writes
/// destinations up to min((k+1)*ts - 2, S - 2) (final level: S - 1). A
/// mutated discipline only moves the physical write slot (wmut); the
/// simulator tags each slot with (step, layer) and flags a write landing on
/// an unconsumed source (clobber) and a read finding the wrong tag (stale).
/// Two steps are simulated: the first plants mis-slotted writes, the second's
/// reads expose them. The sweep over S covers a full ring period past the
/// minimum legal extent, which decides the modular condition exhaustively —
/// residues of (wmut - shift) mod (S + layers_extra) repeat beyond it.
void simulate_circular_shift(const RingKernelContract& rk,
                             AnalysisReport& rep) {
  const int ts = rk.tile_s;
  const int wmut = rk.write_phase_offset();
  const int shift = rk.shift_per_step;
  const int s_min = std::max(rk.min_sweep_extent_periodic, ts + 3);
  // One full ring period past the minimum legal extent (plus slack): the
  // biased-slot congruence is periodic in S + layers_extra, so this finite
  // sweep decides the for-all-S claim.
  const int s_max = s_min + std::max(16, s_min + rk.layers_extra);
  for (int S = s_min; S <= s_max; ++S) {
    const int period = S + rk.layers_extra;
    const int ntiles = (S + ts - 1) / ts;
    // tag[p] = {step, layer} whose data physical layer p holds; layer -1
    // marks the two never-initialized gap slots.
    std::vector<std::array<int, 2>> tag(static_cast<std::size_t>(period),
                                        {-1, -1});
    const auto phys = [&](int s, int t) {
      const int p = (s - shift * t) % period;
      return p < 0 ? p + period : p;
    };
    for (int s = 0; s < S; ++s) tag[static_cast<std::size_t>(phys(s, 0))] = {0, s};

    for (int t = 0; t < 2; ++t) {
      std::vector<bool> consumed(static_cast<std::size_t>(S), false);
      int next_write = 0;
      for (int k = 0; k <= ntiles; ++k) {
        // Phase A of level k: read sources [k ts, (k+1) ts).
        const int a_end = std::min(S, (k + 1) * ts);
        for (int s = k * ts; s < a_end; ++s) {
          const auto& tg = tag[static_cast<std::size_t>(phys(s, t))];
          if (tg[0] != t || tg[1] != s) {
            rep.findings.push_back(
                {"ring-stale", rk.tag,
                 "S=" + std::to_string(S) + " t=" + std::to_string(t) +
                     ": phase A of layer " + std::to_string(s) +
                     " reads physical layer " + std::to_string(phys(s, t)) +
                     " which holds " +
                     (tg[1] < 0 ? std::string("no data")
                                : "layer " + std::to_string(tg[1]) +
                                      " of step " + std::to_string(tg[0])) +
                     " (write-layer bias " + std::to_string(wmut) + ")"});
            return;  // one witness per contract is enough
          }
          consumed[static_cast<std::size_t>(s)] = true;
        }
        // Phase B of level k: write destinations up to the canonical limit.
        const int limit =
            (k < ntiles) ? std::min((k + 1) * ts - 2, S - 2) : S - 1;
        for (; next_write <= limit; ++next_write) {
          const int s = next_write;
          const int w = (((phys(s, t + 1) + wmut) % period) + period) % period;
          const auto& tg = tag[static_cast<std::size_t>(w)];
          if (tg[0] == t && tg[1] >= 0 &&
              !consumed[static_cast<std::size_t>(tg[1])]) {
            rep.findings.push_back(
                {"ring-clobber", rk.tag,
                 "S=" + std::to_string(S) + " t=" + std::to_string(t) +
                     ": write-back of layer " + std::to_string(s) +
                     " lands on physical layer " + std::to_string(w) +
                     " still holding UNREAD source layer " +
                     std::to_string(tg[1]) + " (write-layer bias " +
                     std::to_string(wmut) + ")"});
            return;
          }
          tag[static_cast<std::size_t>(w)] = {t + 1, s};
        }
      }
    }
  }
}

void check_ring(const EngineContract& ec, const RingKernelContract& rk,
                AnalysisReport& rep) {
  const LatticeDesc& lat = ec.lattice;
  const int sreach = sweep_reach(lat);

  // ring-halo: every cross axis the block does not own in full must be
  // covered by the declared source halo, or boundary ring words have no
  // producer (they are read by phase B regardless).
  for (int axis = 0; axis < (lat.dim == 2 ? 1 : 2); ++axis) {
    const int need = cross_reach(lat, axis);
    if (rk.cross_halo < need) {
      rep.findings.push_back(
          {"ring-halo", rk.tag,
           "declared cross halo " + std::to_string(rk.cross_halo) +
               " < lattice cross reach " + std::to_string(need) +
               " on axis " + std::to_string(axis) +
               ": tile-edge ring words are never streamed into"});
    }
  }

  // ring-dead-read: layer s receives its last contribution from source
  // s + sweep_reach, so the write-back must trail the newest processed
  // source by at least 1 + sweep_reach layers.
  if (rk.write_behind < 1 + sreach) {
    rep.findings.push_back(
        {"ring-dead-read", rk.tag,
         "write-behind " + std::to_string(rk.write_behind) + " < 1 + sweep "
             "reach " + std::to_string(sreach) +
             ": a layer is re-projected before the downward-streaming "
             "contribution from the next source layer is written"});
  }

  // ring-capacity: during one level, live layers span the window
  // [front - tile_s - sweep_reach, front + sweep_reach]; the slot map
  // layer -> (s+1) mod ring_slots must be injective over it.
  if (rk.ring_slots_extra < 2 * sreach) {
    const int slots = rk.tile_s + rk.ring_slots_extra;
    rep.findings.push_back(
        {"ring-capacity", rk.tag,
         std::to_string(slots) + " shared ring slots < tile_s + " +
             std::to_string(2 * sreach) +
             ": the top destination layer of a level recycles the slot of "
             "a layer phase B has not yet consumed"});
  }

  // ring-barrier: phase B of level k reads layer (k+1)ts-2, whose final
  // contribution phase A of the SAME level streams down from source
  // (k+1)ts-1 — different threads, so without an intervening barrier the
  // read races the write on every domain with S >= 2.
  if (!rk.barrier_between_phases) {
    rep.findings.push_back(
        {"ring-barrier", rk.tag,
         "phase B runs inside phase A's barrier epoch: its read of the "
         "level's top completed layer races the same-epoch ring write from "
         "the source one layer above"});
  }

  if (rk.single_buffer) simulate_circular_shift(rk, rep);

  check_span_bounds(ec, rk.tag, rk.src_load, rep);
  check_span_bounds(ec, rk.tag, rk.dst_store, rep);
}

}  // namespace

int required_ghost_depth(const EngineContract& c) {
  int need = 0;
  for (const auto& nk : c.node_kernels) {
    int rd = 0;
    int wr = 0;
    for (const auto& a : nk.accesses) {
      (a.write ? wr : rd) = std::max(a.write ? wr : rd, std::abs(a.off[0]));
    }
    need = std::max(need, rd + wr);
  }
  for ([[maybe_unused]] const auto& rk : c.ring_kernels) {
    // Phase A reads the cross halo of neighbouring columns; writes stay
    // inside the owned tile.
    need = std::max(need, cross_reach(c.lattice, 0));
  }
  return need;
}

AnalysisReport analyze(const EngineContract& c) {
  AnalysisReport rep;
  rep.checks_run = {"node-race",      "span-bounds",  "ghost-depth",
                    "ring-halo",      "ring-dead-read", "ring-capacity",
                    "ring-barrier",   "ring-clobber", "ring-stale"};
  for (const auto& nk : c.node_kernels) {
    check_node_races(c, nk, rep);
    for (const auto& a : nk.accesses) check_span_bounds(c, nk.tag, a, rep);
  }
  for (const auto& rk : c.ring_kernels) check_ring(c, rk, rep);
  if (!c.empty()) {
    const int need = required_ghost_depth(c);
    if (c.ghost_depth_declared < need) {
      rep.findings.push_back(
          {"ghost-depth", "",
           "declared exchange depth " +
               std::to_string(c.ghost_depth_declared) +
               " < required " + std::to_string(need) +
               " (max over cycle kernels of x read reach + x write reach): "
               "a frontier split finalizes planes the neighbour still "
               "corrupts"});
    }
  }
  return rep;
}

std::string to_string(const Finding& f) {
  std::string s = f.check;
  if (!f.kernel.empty()) s += " [" + f.kernel + "]";
  return s + ": " + f.detail;
}

}  // namespace mlbm::analysis
