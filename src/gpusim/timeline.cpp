#include "gpusim/timeline.hpp"

#include <algorithm>

namespace mlbm::gpusim {

LinkSpec LinkSpec::nvlink2() {
  // V100 SXM2 pairs: 2 NVLink2 bricks x 25 GB/s/dir nominal; ~50 GB/s
  // sustained per direction measured by p2pBandwidthLatencyTest-class
  // microbenchmarks, ~2 us end-to-end message latency.
  return {"nvlink2", 2e-6, 50.0};
}

LinkSpec LinkSpec::pcie3() {
  // PCIe3 x16 host-staged peer path: 15.75 GB/s theoretical, ~12 GB/s
  // effective with pinned staging buffers; ~6 us latency including the
  // host-side hop.
  return {"pcie3", 6e-6, 12.0};
}

double kernel_duration_s(const DeviceSpec& dev, std::uint64_t bytes) {
  const double bw = dev.bandwidth_gbs * 1e9 * dev.stream_efficiency;
  return kTimelineLaunchOverheadSeconds +
         (bw > 0 ? static_cast<double>(bytes) / bw : 0.0);
}

Event Timeline::enqueue(int stream, double duration_s,
                        const std::vector<Event>& deps, std::string label) {
  const auto s = static_cast<std::size_t>(stream);
  double start = stream_tail_[s];
  for (const Event& e : deps) {
    start = std::max(start, complete_time(e));
  }
  Op op;
  op.stream = stream;
  op.start = start;
  op.duration = duration_s;
  op.end = start + duration_s;
  op.label = std::move(label);
  stream_tail_[s] = op.end;
  ops_.push_back(std::move(op));
  return Event{static_cast<int>(ops_.size()) - 1};
}

double Timeline::horizon() const {
  double h = 0;
  for (double t : stream_tail_) h = std::max(h, t);
  return h;
}

}  // namespace mlbm::gpusim
