// Per-kernel statistics collection: the simulator's nvvp / rocprof.
//
// Each engine owns a Profiler; all its GlobalArrays share the profiler's
// TrafficCounter. `launch` (see launch.hpp) records per-kernel aggregates:
// number of launches, thread/block geometry, shared memory per block,
// barrier counts and the DRAM traffic attributable to the kernel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gpusim/dim3.hpp"
#include "gpusim/sanitizer_hook.hpp"
#include "gpusim/traffic.hpp"

namespace mlbm::gpusim {

struct KernelRecord {
  std::string name;
  Dim3 grid{};
  Dim3 block{};
  std::size_t shared_bytes_per_block = 0;
  std::uint64_t launches = 0;
  std::uint64_t syncs = 0;  ///< total barriers across all blocks and launches
  TrafficSnapshot traffic;
};

/// Consulted by `launch` at the entry of every kernel launch, before any
/// block runs or any counter moves. Throwing (TransientLaunchError) models a
/// failed launch return code: the kernel never executed, state and traffic
/// are untouched, the caller may retry. The resilience layer's FaultInjector
/// is the production implementation.
class LaunchFaultHook {
 public:
  virtual ~LaunchFaultHook() = default;
  virtual void on_launch(const KernelRecord& rec) = 0;
};

/// Full profiler state — counter totals plus every kernel record — captured
/// at a checkpoint and restored on rollback, so a replayed window leaves the
/// profiler bit-identical to a run that never faulted.
struct ProfilerState {
  TrafficSnapshot counter;
  std::map<std::string, KernelRecord> records;
};

class Profiler {
 public:
  TrafficCounter& counter() { return counter_; }
  const TrafficCounter& counter() const { return counter_; }

  /// Finds or creates the record for `name`. References are stable for the
  /// profiler's lifetime (node-based map), so engines cache the returned
  /// reference once and skip the string lookup on every subsequent launch.
  KernelRecord& record(const std::string& name) {
    KernelRecord& r = records_[name];
    if (r.name.empty()) r.name = name;
    return r;
  }

  [[nodiscard]] std::vector<KernelRecord> all_records() const {
    std::vector<KernelRecord> out;
    out.reserve(records_.size());
    for (const auto& [_, r] : records_) out.push_back(r);
    return out;
  }

  [[nodiscard]] TrafficSnapshot total_traffic() const {
    return counter_.snapshot();
  }

  void reset() {
    counter_.reset();
    records_.clear();  // invalidates references cached via record()
  }

  /// Captures counter + per-kernel records for a checkpoint.
  [[nodiscard]] ProfilerState state() const {
    return {counter_.snapshot(), records_};
  }

  /// Restores a captured state WITHOUT invalidating references cached via
  /// record(): existing map nodes are overwritten in place (records created
  /// after the capture reset to zero), missing ones are re-inserted —
  /// std::map never moves surviving nodes on insert.
  void restore(const ProfilerState& s) {
    counter_.restore(s.counter);
    for (auto& [name, rec] : records_) {
      const auto it = s.records.find(name);
      if (it != s.records.end()) {
        rec = it->second;
      } else {
        rec = KernelRecord{};
        rec.name = name;
      }
    }
    for (const auto& [name, rec] : s.records) {
      records_.emplace(name, rec);  // no-op for names already present
    }
  }

  /// Installs (or clears, with nullptr) the launch fault hook consulted at
  /// the start of every launch through this profiler.
  void set_launch_fault_hook(LaunchFaultHook* hook) { fault_hook_ = hook; }
  [[nodiscard]] LaunchFaultHook* launch_fault_hook() const {
    return fault_hook_;
  }

  /// Installs (or clears, with nullptr) the sanitizer hook notified by every
  /// launch through this profiler (see sanitizer_hook.hpp). Engines install
  /// it here AND on their GlobalArrays; the launchers only consult this
  /// pointer, so an uninstrumented launch pays one branch.
  void set_sanitizer_hook(SanitizerHook* hook) { sanitizer_hook_ = hook; }
  [[nodiscard]] SanitizerHook* sanitizer_hook() const {
    return sanitizer_hook_;
  }

 private:
  TrafficCounter counter_;
  std::map<std::string, KernelRecord> records_;
  LaunchFaultHook* fault_hook_ = nullptr;
  SanitizerHook* sanitizer_hook_ = nullptr;
};

}  // namespace mlbm::gpusim
