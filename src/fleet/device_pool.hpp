// The fleet's device inventory: per-device specs, health, and modeled load.
//
// Placement is perfmodel-driven: a job's per-step cost on a device comes from
// `perf::estimate_saturated` with the pattern's measured kernel
// characteristics, so the scheduler packs jobs by *modeled finish time*
// rather than round-robin — the paper's bandwidth/footprint model doing
// double duty as an admission and placement oracle. Admission is the memory
// footprint check: a job whose engine state does not fit in a device's free
// DRAM is never placed there.
//
// Health (alive / straggling / launch-failure burst) is mutated by the
// FleetFaultPlan; the pool itself is deterministic and clock-free.
#pragma once

#include <cstddef>
#include <vector>

#include "fleet/job.hpp"
#include "gpusim/device.hpp"

namespace mlbm::fleet {

struct FleetDevice {
  int id = -1;
  gpusim::DeviceSpec spec;

  // --- health, driven by FleetFaultPlan ---
  bool alive = true;
  /// Multiplier on modeled step time (> 1 while straggling).
  double slowdown = 1.0;
  long straggle_until_tick = -1;
  /// Per-launch transient failure probability while a burst window is open.
  double launch_fail_rate = 0.0;
  long burst_until_tick = -1;

  // --- modeled load ---
  std::size_t resident_bytes = 0;  ///< engine state of jobs placed here
  double busy_s = 0;               ///< modeled seconds of enqueued work
  /// Projected nominal compute of resident jobs not yet enqueued. Placement
  /// adds finish-time cost from busy_s + reserved_s so a burst of placements
  /// in one tick spreads over the pool instead of stampeding the device that
  /// happens to be idle first (busy_s only grows when quanta execute).
  double reserved_s = 0;

  // --- counters for the report ---
  int jobs_completed = 0;
  int jobs_migrated_in = 0;
  int jobs_migrated_out = 0;

  [[nodiscard]] std::size_t capacity_bytes() const {
    return static_cast<std::size_t>(spec.memory_gb * 1e9);
  }
  [[nodiscard]] std::size_t free_bytes() const {
    const std::size_t cap = capacity_bytes();
    return cap > resident_bytes ? cap - resident_bytes : 0;
  }
};

class DevicePool {
 public:
  /// Returns the new device's id (dense, starting at 0).
  int add_device(gpusim::DeviceSpec spec);

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] int alive_count() const;
  [[nodiscard]] FleetDevice& device(int id);
  [[nodiscard]] const FleetDevice& device(int id) const;
  [[nodiscard]] const std::vector<FleetDevice>& devices() const {
    return devices_;
  }
  [[nodiscard]] std::vector<FleetDevice>& devices() { return devices_; }

  /// Saturated-model throughput of a job pattern on a device (MFLUPS),
  /// ignoring health — the nominal planning number.
  [[nodiscard]] double predicted_mflups(int id, perf::Pattern pattern,
                                        StoragePrecision prec) const;

  /// Nominal modeled seconds per timestep of `cells` nodes on a device
  /// (no slowdown applied; the scheduler folds health in).
  [[nodiscard]] double step_seconds(int id, const JobSpec& spec,
                                    long long cells) const;

  [[nodiscard]] bool admits(int id, std::size_t bytes) const;

  /// True if `bytes` fits on at least one device of the pool, alive or dead —
  /// false means the job is structurally unservable (FleetError::kAdmission).
  [[nodiscard]] bool fits_anywhere(std::size_t bytes) const;

  /// Picks the alive, admitting device with the earliest modeled finish time
  /// for the job's remaining steps (busy backlog + placement reservations +
  /// steps x step x slowdown);
  /// ties break toward the lower id for determinism. `exclude` skips one
  /// device (the one a job migrates away from). Returns -1 if no device
  /// qualifies.
  [[nodiscard]] int place(const JobSpec& spec, long long cells,
                          std::size_t bytes, int remaining_steps,
                          int exclude = -1) const;

 private:
  std::vector<FleetDevice> devices_;
};

}  // namespace mlbm::fleet
