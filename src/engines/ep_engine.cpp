#include "engines/ep_engine.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <string>

#include "core/lanes.hpp"
#include "core/regularization.hpp"
#include "engines/streaming.hpp"
#include "gpusim/launch.hpp"

namespace mlbm {

template <class L, class ST>
EpEngine<L, ST>::EpEngine(Geometry geo, real_t tau, CollisionScheme scheme,
                          int threads_per_block, ExecMode exec)
    : Engine<L>(std::move(geo), tau),
      scheme_(scheme),
      threads_per_block_(threads_per_block),
      exec_(exec) {
  sparse_ = this->geo_.sparse();
  if (sparse_) {
    const TileMap& tm = this->geo_.tiles();
    tdev_.build(tm, &prof_.counter());
    elems_ = tm.elements();
  } else {
    elems_ = this->geo_.box.cells();
  }
  const auto n =
      static_cast<std::size_t>(elems_) * static_cast<std::size_t>(L::Q);
  f_.allocate(n, &prof_.counter());
  build_rim_index();
}

template <class L, class ST>
void EpEngine<L, ST>::build_rim_index() {
  // One [value, density] pair per blocked link, in deterministic node-major
  // direction-minor order (so raw snapshots are reproducible). The predicate
  // is exactly the branch the kernels take: resolve_stream not interior.
  const Box& b = this->geo_.box;
  const bool solids = this->geo_.has_solids();
  index_t links = 0;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        if (solids && this->geo_.solid(x, y, z)) continue;
        const index_t elem = element(x, y, z);
        if (elem < 0) continue;
        for (int i = 0; i < L::Q; ++i) {
          const StreamTarget t = resolve_stream<L>(this->geo_, x, y, z, i);
          if (t.kind == StreamTarget::Kind::kInterior) continue;
          rim_index_.emplace(static_cast<std::uint64_t>(elem) *
                                 static_cast<std::uint64_t>(L::Q) +
                                 static_cast<std::uint64_t>(i),
                             links++);
        }
      }
    }
  }
  rim_.allocate(static_cast<std::size_t>(links) * 2, &prof_.counter());
}

template <class L, class ST>
void EpEngine<L, ST>::initialize(const typename Engine<L>::InitFn& init) {
  // Unlike AA, the esoteric state is a full stream+collide image at every
  // parity, so initialization (and impose) works at any timestep.
  const Box& b = this->geo_.box;
  const bool solids = this->geo_.has_solids();
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        if (solids && this->geo_.solid(x, y, z)) continue;
        impose(x, y, z, init(x, y, z));
      }
    }
  }
}

template <class L, class ST>
Moments<L> EpEngine<L, ST>::moments_at(int x, int y, int z) const {
  if (this->geo_.has_solids() && this->geo_.solid(x, y, z)) {
    return solid_moments<L>();
  }
  // The state in memory is the post-collision image f*(., t_) laid out by
  // the PREVIOUS parity's scatter map: f*_i of this node sits in slot
  // (even_phase() ? opposite(i) : i) of the downwind neighbour for i in the
  // plus half-set, of the node itself otherwise — and in the rim for
  // blocked links. Collect it and translate to the shared pre-collision
  // moment convention exactly like ST pull.
  const Box& b = this->geo_.box;
  const index_t cell = element(x, y, z);
  const bool even = even_phase();
  real_t f[L::Q];
  for (int i = 0; i < L::Q; ++i) {
    const int j = L::opposite(i);
    const StreamTarget t = resolve_stream<L>(this->geo_, x, y, z, i);
    if (t.kind == StreamTarget::Kind::kInterior) {
      const index_t tc = i < j ? element(t.x, t.y, t.z) : cell;
      f[i] = static_cast<real_t>(f_.raw(soa(even ? j : i, tc)));
    } else {
      f[i] = rim_.raw(rim_base(cell, i));
    }
  }
  (void)b;
  Moments<L> m = compute_moments<L>(f);
  const real_t factor = real_t(1) - real_t(1) / this->tau_;
  if (factor != real_t(0)) {
    for (int p = 0; p < Moments<L>::NP; ++p) {
      const auto [a, bb] = Moments<L>::pair(p);
      const real_t eq = m.rho * m.u[static_cast<std::size_t>(a)] *
                        m.u[static_cast<std::size_t>(bb)];
      m.pi[static_cast<std::size_t>(p)] =
          eq + (m.pi[static_cast<std::size_t>(p)] - eq) / factor;
    }
  }
  return m;
}

template <class L, class ST>
void EpEngine<L, ST>::impose(int x, int y, int z, const Moments<L>& m) {
  if (this->geo_.has_solids() && this->geo_.solid(x, y, z)) return;
  const index_t cell = element(x, y, z);
  const bool even = even_phase();
  // Store the post-collision image of the imposed pre-collision state (the
  // exact ST pull recipe, so the next gather streams bit-identical values),
  // scattered over the previous parity's write map.
  const real_t factor = real_t(1) - real_t(1) / this->tau_;
  real_t pineq[Moments<L>::NP];
  for (int p = 0; p < Moments<L>::NP; ++p) {
    pineq[p] = factor * m.pi_neq(p);
  }
  real_t f[L::Q];
  // One scheme branch per node, not per population.
  if (scheme_ == CollisionScheme::kRecursive) {
    for (int i = 0; i < L::Q; ++i) {
      f[i] = reconstruct_recursive<L>(i, m.rho, m.u.data(), pineq);
    }
  } else {
    for (int i = 0; i < L::Q; ++i) {
      f[i] = reconstruct_projective<L>(i, m.rho, m.u.data(), pineq);
    }
  }
  real_t rho_post = 0;
  bool have_rho = false;
  for (int i = 0; i < L::Q; ++i) {
    const int j = L::opposite(i);
    const StreamTarget t = resolve_stream<L>(this->geo_, x, y, z, i);
    if (t.kind == StreamTarget::Kind::kInterior) {
      const index_t tc = i < j ? element(t.x, t.y, t.z) : cell;
      f_.raw(soa(even ? j : i, tc)) = static_cast<ST>(f[i]);
    } else {
      if (!have_rho) {
        // The narrowed density the moving-wall correction will read next
        // step — the sum ST's gather would form from the node's own
        // storage-narrowed populations.
        for (int k = 0; k < L::Q; ++k) {
          rho_post += static_cast<real_t>(static_cast<ST>(f[k]));
        }
        have_rho = true;
      }
      const index_t rb = rim_base(cell, i);
      rim_.raw(rb) = static_cast<real_t>(static_cast<ST>(f[i]));
      rim_.raw(rb + 1) = rho_post;
    }
  }
}

template <class L, class ST>
std::size_t EpEngine<L, ST>::state_bytes() const {
  return f_.size_bytes() + rim_.size_bytes() + (sparse_ ? tdev_.bytes() : 0);
}

template <class L, class ST>
void EpEngine<L, ST>::ensure_records() {
  if (krec_even_ == nullptr) {
    if (sparse_) {
      const std::string base = std::string("ep_sparse_") + L::name();
      krec_even_ = &prof_.record(base + "_even_fluid");
      krec_odd_ = &prof_.record(base + "_odd_fluid");
      krec_even_frontier_ = &prof_.record(base + "_even_fluid_frontier");
      krec_odd_frontier_ = &prof_.record(base + "_odd_fluid_frontier");
      krec_even_mixed_ = &prof_.record(base + "_even_mixed");
      krec_odd_mixed_ = &prof_.record(base + "_odd_mixed");
      krec_even_mixed_frontier_ =
          &prof_.record(base + "_even_mixed_frontier");
      krec_odd_mixed_frontier_ = &prof_.record(base + "_odd_mixed_frontier");
      krec_even_->contract = krec_even_frontier_->contract =
          krec_even_mixed_->contract = krec_even_mixed_frontier_->contract =
              "ep.even";
      krec_odd_->contract = krec_odd_frontier_->contract =
          krec_odd_mixed_->contract = krec_odd_mixed_frontier_->contract =
              "ep.odd";
      return;
    }
    krec_even_ = &prof_.record(std::string("ep_even_") + L::name());
    krec_odd_ = &prof_.record(std::string("ep_odd_") + L::name());
    krec_even_frontier_ =
        &prof_.record(std::string("ep_even_") + L::name() + "_frontier");
    krec_odd_frontier_ =
        &prof_.record(std::string("ep_odd_") + L::name() + "_frontier");
    krec_even_->contract = krec_even_frontier_->contract = "ep.even";
    krec_odd_->contract = krec_odd_frontier_->contract = "ep.odd";
  }
}

template <class L, class ST>
void EpEngine<L, ST>::do_step() {
  ensure_records();
  if (sparse_) {
    step_sparse(0, 0, /*frontier_only=*/false, nullptr);
    return;
  }
  const bool even = even_phase();
  step_range(even, 0, this->geo_.box.nx, even ? *krec_even_ : *krec_odd_);
}

template <class L, class ST>
void EpEngine<L, ST>::step_sparse(
    int fl, int fr, bool frontier_only,
    const typename Engine<L>::FrontierDoneFn& on_frontier) {
  const bool even = even_phase();
  const auto run = [&](const gpusim::GlobalArray<std::int32_t>& list,
                       const gpusim::GlobalArray<std::uint64_t>* masks,
                       int begin, int count, gpusim::KernelRecord& rec) {
    step_tiles(even, list, masks, begin, count, rec);
  };
  gpusim::KernelRecord& rfl = even ? *krec_even_ : *krec_odd_;
  gpusim::KernelRecord& rflf =
      even ? *krec_even_frontier_ : *krec_odd_frontier_;
  gpusim::KernelRecord& rmx = even ? *krec_even_mixed_ : *krec_odd_mixed_;
  gpusim::KernelRecord& rmxf =
      even ? *krec_even_mixed_frontier_ : *krec_odd_mixed_frontier_;
  // The fluid and mixed launches of one step share a freshness window.
  gpusim::LaunchGroup group(prof_);
  if (fl <= 0 && fr <= 0) {
    // Monolithic step (or degenerate split: everything is frontier).
    run(tdev_.fluid, nullptr, 0, tdev_.n_fluid_tiles, rfl);
    run(tdev_.mixed, &tdev_.mask, 0, tdev_.n_mixed_tiles, rmx);
    if (frontier_only && on_frontier) on_frontier();
    return;
  }
  const TileGridInfo& g = tdev_.grid;
  const int nx = this->geo_.box.nx;
  const TileRange rf = partition_tiles(tdev_.fluid, tdev_.n_fluid_tiles,
                                       g.tdx, g.ntx, nx, fl, fr);
  const TileRange rm = partition_tiles(tdev_.mixed, tdev_.n_mixed_tiles,
                                       g.tdx, g.ntx, nx, fl, fr);
  if (rf.degenerate() || rm.degenerate()) {
    run(tdev_.fluid, nullptr, 0, tdev_.n_fluid_tiles, rfl);
    run(tdev_.mixed, &tdev_.mask, 0, tdev_.n_mixed_tiles, rmx);
    if (on_frontier) on_frontier();
    return;
  }
  // Every lattice word has a unique reader == writer node, so completing
  // the frontier tiles finalizes every frontier plane (the one-plane source
  // extension is already folded into fl/fr by the caller; tiles over-cover
  // the planes).
  run(tdev_.fluid, nullptr, 0, rf.left, rflf);
  run(tdev_.fluid, nullptr, rf.right, rf.n - rf.right, rflf);
  run(tdev_.mixed, &tdev_.mask, 0, rm.left, rmxf);
  run(tdev_.mixed, &tdev_.mask, rm.right, rm.n - rm.right, rmxf);
  if (on_frontier) on_frontier();
  run(tdev_.fluid, nullptr, rf.left, rf.right - rf.left, rfl);
  run(tdev_.mixed, &tdev_.mask, rm.left, rm.right - rm.left, rmx);
}

template <class L, class ST>
void EpEngine<L, ST>::do_step_split(
    const FrontierSpec& fs,
    const typename Engine<L>::FrontierDoneFn& on_frontier) {
  const Box& b = this->geo_.box;
  ensure_records();
  const bool even = even_phase();
  // Both parities reach planes x-1..x+1 from source x, so finalizing
  // [0, left) needs sources [0, left] (ext 1); disjoint source ranges touch
  // disjoint words (unique reader == writer per word), so the launches
  // commute.
  const int ext = 1;
  const int fl = fs.left > 0 ? fs.left + ext : 0;
  const int fr = fs.right > 0 ? fs.right + ext : 0;
  if (sparse_) {
    // Same plane contract; the tile partition over-covers the planes.
    if (fs.empty() || fl + fr >= b.nx) {
      step_sparse(0, 0, /*frontier_only=*/true, on_frontier);
    } else {
      step_sparse(fl, fr, /*frontier_only=*/false, on_frontier);
    }
    return;
  }
  gpusim::KernelRecord& rec = even ? *krec_even_ : *krec_odd_;
  gpusim::KernelRecord& frec =
      even ? *krec_even_frontier_ : *krec_odd_frontier_;
  if (fs.empty() || fl + fr >= b.nx) {
    step_range(even, 0, b.nx, rec);
    if (on_frontier) on_frontier();
  } else {
    gpusim::LaunchGroup group(prof_);
    if (fl > 0) step_range(even, 0, fl, frec);
    if (fr > 0) step_range(even, b.nx - fr, b.nx, frec);
    if (on_frontier) on_frontier();
    step_range(even, fl, b.nx - fr, rec);
  }
}

template <class L, class ST>
void EpEngine<L, ST>::step_range(bool even, int rx0, int rx1,
                                 gpusim::KernelRecord& rec) {
  const Box& b = this->geo_.box;
  const Geometry& geo = this->geo_;
  const bool solids = geo.has_solids();
  const real_t tau = this->tau_;
  const real_t inv_cs2 = real_t(1) / L::cs2;
  const CollisionScheme scheme = scheme_;
  gpusim::GlobalArray<ST>& f = f_;
  gpusim::GlobalArray<real_t>& rim = rim_;

  const auto nxr = static_cast<index_t>(rx1 - rx0);
  const index_t rcells = nxr * b.ny * b.nz;

  const int tpb = threads_per_block_;
  const auto nblocks =
      static_cast<int>((rcells + tpb - 1) / static_cast<index_t>(tpb));

  // Gather f_i(x, t) from slot (even ? opposite(i) : i) of the node itself
  // (plus half-set and rest) or the upwind neighbour (minus half-set);
  // blocked links read the rim, applying the moving-wall correction at read
  // time from the rim density — ST pull's exact arithmetic.
  const auto gather = [&](index_t cell, int x, int y, int z,
                          real_t (&fl)[L::Q]) MLBM_ALWAYS_INLINE {
    for (int i = 0; i < L::Q; ++i) {
      const int j = L::opposite(i);
      const StreamTarget t = resolve_stream<L>(geo, x, y, z, j);
      if (t.kind == StreamTarget::Kind::kInterior) {
        const index_t tc = j < i ? b.idx(t.x, t.y, t.z) : cell;
        fl[i] = f.template load_as<real_t>(soa(even ? j : i, tc));
      } else {
        const index_t rb = rim_base(cell, j);
        real_t v = rim.template load_as<real_t>(rb);
        if (t.kind == StreamTarget::Kind::kBounce && t.cu_wall != real_t(0)) {
          v -= real_t(2) * L::w[static_cast<std::size_t>(i)] *
               rim.template load_as<real_t>(rb + 1) * t.cu_wall * inv_cs2;
        }
        fl[i] = v;
      }
    }
  };
  // Scatter f*_i(x, t) into slot (even ? i : opposite(i)) of the downwind
  // neighbour (plus half-set) or the node itself; blocked links park the
  // storage-narrowed value plus the narrowed post-collision density in the
  // rim for next step's bounce/open gather.
  const auto scatter = [&](index_t cell, int x, int y, int z,
                           const real_t (&fl)[L::Q]) MLBM_ALWAYS_INLINE {
    real_t rho_post = 0;
    bool have_rho = false;
    for (int i = 0; i < L::Q; ++i) {
      const int j = L::opposite(i);
      const StreamTarget t = resolve_stream<L>(geo, x, y, z, i);
      if (t.kind == StreamTarget::Kind::kInterior) {
        const index_t tc = i < j ? b.idx(t.x, t.y, t.z) : cell;
        f.template store_as<real_t>(soa(even ? i : j, tc), fl[i]);
      } else {
        if (!have_rho) {
          for (int k = 0; k < L::Q; ++k) {
            rho_post += static_cast<real_t>(static_cast<ST>(fl[k]));
          }
          have_rho = true;
        }
        const index_t rb = rim_base(cell, i);
        rim.template store_as<real_t>(
            rb, static_cast<real_t>(static_cast<ST>(fl[i])));
        rim.template store_as<real_t>(rb + 1, rho_post);
      }
    }
  };

  if (exec_ != ExecMode::kLanes) {
    // Flat scalar body with the collision scheme dispatched once per launch
    // (see st_engine.cpp for the rationale).
    dispatch_collision(scheme, [&](auto sc) {
      gpusim::launch(
          prof_, rec, gpusim::Dim3{nblocks, 1, 1}, gpusim::Dim3{tpb, 1, 1},
          [&](gpusim::BlockCtx& blk) {
            blk.for_each_thread([&](const gpusim::Dim3& tid) {
              const index_t r =
                  static_cast<index_t>(blk.block_idx().x) * tpb + tid.x;
              if (r >= rcells) return;
              const int x = rx0 + static_cast<int>(r % nxr);
              const int y = static_cast<int>((r / nxr) % b.ny);
              const int z =
                  static_cast<int>(r / (nxr * static_cast<index_t>(b.ny)));
              // Solid nodes must not run: their scatter would rewrite live
              // words of fluid neighbours (unlike ST, whose dense kernel
              // writes only the node's own span).
              if (solids && geo.solid(x, y, z)) return;
              const index_t cell = b.idx(x, y, z);
              real_t fl[L::Q];
              gather(cell, x, y, z, fl);
              collide<L, decltype(sc)::value>(fl, tau);
              scatter(cell, x, y, z, fl);
            });
          });
    });
    return;
  }
  // Panel reordering of the in-place update is exact: every lattice word
  // has a unique reader == writer node, so only each node's own
  // gather-before-scatter order matters, which the panel preserves.
  gpusim::launch(
      prof_, rec, gpusim::Dim3{nblocks, 1, 1}, gpusim::Dim3{tpb, 1, 1},
      [&](gpusim::BlockCtx& blk) {
        const index_t start = static_cast<index_t>(blk.block_idx().x) * tpb;
        const index_t end = std::min(start + tpb, rcells);
        for (index_t p0 = start; p0 < end; p0 += kLaneWidth) {
          const int n =
              static_cast<int>(std::min<index_t>(kLaneWidth, end - p0));
          real_t panel[L::Q][kLaneWidth];
          index_t cellv[kLaneWidth];
          bool live[kLaneWidth];
          for (int ln = 0; ln < n; ++ln) {
            const index_t rr = p0 + ln;
            const int x = rx0 + static_cast<int>(rr % nxr);
            const int y = static_cast<int>((rr / nxr) % b.ny);
            const int z =
                static_cast<int>(rr / (nxr * static_cast<index_t>(b.ny)));
            live[ln] = !(solids && geo.solid(x, y, z));
            cellv[ln] = live[ln] ? b.idx(x, y, z) : index_t(0);
            // Dead lanes carry rest-state populations through the collide
            // (rho 1, u 0 — keeps the panel finite); their result is never
            // scattered.
            real_t fl[L::Q];
            for (int i = 0; i < L::Q; ++i) {
              fl[i] = L::w[static_cast<std::size_t>(i)];
            }
            if (live[ln]) gather(cellv[ln], x, y, z, fl);
            for (int i = 0; i < L::Q; ++i) panel[i][ln] = fl[i];
          }
          collide_lanes<L, kLaneWidth>(scheme, panel, n, tau);
          for (int ln = 0; ln < n; ++ln) {
            if (!live[ln]) continue;
            const index_t rr = p0 + ln;
            const int x = rx0 + static_cast<int>(rr % nxr);
            const int y = static_cast<int>((rr / nxr) % b.ny);
            const int z =
                static_cast<int>(rr / (nxr * static_cast<index_t>(b.ny)));
            real_t fl[L::Q];
            for (int i = 0; i < L::Q; ++i) fl[i] = panel[i][ln];
            scatter(cellv[ln], x, y, z, fl);
          }
        }
      });
}

template <class L, class ST>
void EpEngine<L, ST>::step_tiles(bool even,
                                 const gpusim::GlobalArray<std::int32_t>& list,
                                 const gpusim::GlobalArray<std::uint64_t>* masks,
                                 int begin, int count,
                                 gpusim::KernelRecord& rec) {
  if (count <= 0) return;
  const Geometry& geo = this->geo_;
  const TileGridInfo g = tdev_.grid;
  const bool is3d = geo.box.nz > 1;
  const real_t tau = this->tau_;
  const real_t inv_cs2 = real_t(1) / L::cs2;
  const CollisionScheme scheme = scheme_;
  gpusim::GlobalArray<ST>& f = f_;
  gpusim::GlobalArray<real_t>& rim = rim_;
  const int tpb = threads_per_block_;
  const int nblocks = (count + tpb - 1) / tpb;

  // One thread per tile; both parities cross tile borders (pulled half
  // upwind, pushed half downwind), so the full neighbour-slot stash is
  // loaded. The occupancy mask keeps solid locals from running — mandatory
  // here, since an in-place scatter from a solid node would rewrite live
  // fluid words.
  dispatch_collision(scheme, [&](auto sc) {
    gpusim::launch(
        prof_, rec, gpusim::Dim3{nblocks, 1, 1}, gpusim::Dim3{tpb, 1, 1},
        [&](gpusim::BlockCtx& blk) {
          blk.for_each_thread([&](const gpusim::Dim3& tid) {
            const index_t r =
                static_cast<index_t>(blk.block_idx().x) * tpb + tid.x;
            if (r >= static_cast<index_t>(count)) return;
            const std::int32_t tile =
                list.load(static_cast<index_t>(begin) + r);
            const std::uint64_t occ =
                masks != nullptr ? masks->load(static_cast<index_t>(begin) + r)
                                 : ~std::uint64_t{0};
            const int tx = tile % g.ntx;
            const int ty = (tile / g.ntx) % g.nty;
            const int tz = tile / (g.ntx * g.nty);
            std::int32_t stash[27];
            load_tile_stash(tdev_.slots, g, tx, ty, tz, is3d, stash);
            const index_t own_base =
                static_cast<index_t>(stash[13]) * TileMap::kSlots;
            for (int local = 0; local < TileMap::kSlots; ++local) {
              if (!(occ >> local & 1ull)) continue;
              const int x = tx * g.tdx + local % g.tdx;
              const int y = ty * g.tdy + (local / g.tdx) % g.tdy;
              const int z = tz * g.tdz + local / (g.tdx * g.tdy);
              const index_t elem = own_base + local;
              real_t fl[L::Q];
              for (int i = 0; i < L::Q; ++i) {
                const int j = L::opposite(i);
                const StreamTarget t = resolve_stream<L>(geo, x, y, z, j);
                if (t.kind == StreamTarget::Kind::kInterior) {
                  const index_t tc =
                      j < i ? stash_elem(stash, g, tx, ty, tz, t.x, t.y, t.z)
                            : elem;
                  fl[i] = f.template load_as<real_t>(soa(even ? j : i, tc));
                } else {
                  const index_t rb = rim_base(elem, j);
                  real_t v = rim.template load_as<real_t>(rb);
                  if (t.kind == StreamTarget::Kind::kBounce &&
                      t.cu_wall != real_t(0)) {
                    v -= real_t(2) * L::w[static_cast<std::size_t>(i)] *
                         rim.template load_as<real_t>(rb + 1) * t.cu_wall *
                         inv_cs2;
                  }
                  fl[i] = v;
                }
              }
              collide<L, decltype(sc)::value>(fl, tau);
              real_t rho_post = 0;
              bool have_rho = false;
              for (int i = 0; i < L::Q; ++i) {
                const int j = L::opposite(i);
                const StreamTarget t = resolve_stream<L>(geo, x, y, z, i);
                if (t.kind == StreamTarget::Kind::kInterior) {
                  const index_t tc =
                      i < j ? stash_elem(stash, g, tx, ty, tz, t.x, t.y, t.z)
                            : elem;
                  f.template store_as<real_t>(soa(even ? i : j, tc), fl[i]);
                } else {
                  if (!have_rho) {
                    for (int k = 0; k < L::Q; ++k) {
                      rho_post += static_cast<real_t>(static_cast<ST>(fl[k]));
                    }
                    have_rho = true;
                  }
                  const index_t rb = rim_base(elem, i);
                  rim.template store_as<real_t>(
                      rb, static_cast<real_t>(static_cast<ST>(fl[i])));
                  rim.template store_as<real_t>(rb + 1, rho_post);
                }
              }
            }
          });
        });
  });
}

template class EpEngine<D2Q9, double>;
template class EpEngine<D3Q19, double>;
template class EpEngine<D3Q27, double>;
template class EpEngine<D3Q15, double>;
template class EpEngine<D2Q9, float>;
template class EpEngine<D3Q19, float>;
template class EpEngine<D3Q27, float>;
template class EpEngine<D3Q15, float>;

}  // namespace mlbm
