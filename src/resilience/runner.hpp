// ResilientRunner: checkpoint / rollback / retry around any Engine<L>.
//
// The runner advances an engine step by step while defending the run against
// the fault classes FaultInjector models (and their real-world counterparts):
//
//   * periodic in-memory checkpoints (a small ring of StateSnapshots), with
//     an optional on-disk mirror in checkpoint v2 format;
//   * a StabilitySentinel consulted on its own cadence and before every
//     checkpoint (a checkpoint is only "good" if the sentinel passed it);
//   * on a transient failure — an injected/real launch fault surfacing as a
//     transient mlbm::Error, or a sentinel trip — roll back to the newest
//     good checkpoint and retry the window, with bounded exponential backoff;
//   * when a window keeps failing, fall back to older ring entries, and as a
//     last resort rebuild the engine through a caller-provided fallback
//     factory (the intended use: degrade FP32 storage to FP64 via the
//     StoragePrecision factories) and continue from the last good snapshot;
//   * if all of that is exhausted, raise UnrecoverableError.
//
// Because retried windows draw *fresh* fault randomness (see FaultInjector)
// while the physics replay is deterministic, a faulted run converges to the
// exact trajectory of an unfaulted one — moments and traffic totals
// bit-identical — which the rollback-determinism tests pin.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engines/engine.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/sentinel.hpp"
#include "resilience/snapshot.hpp"
#include "util/error.hpp"

namespace mlbm::resilience {

struct RunnerConfig {
  /// Steps between in-memory checkpoints (also the retry-window length).
  int checkpoint_interval = 128;
  /// Good checkpoints kept in memory (newest first); older entries are the
  /// fallback when a window keeps failing from the newest one.
  int ring_capacity = 2;
  /// Retries of one window from one checkpoint before falling back.
  int max_retries_per_window = 3;
  /// Exponential backoff between retries: min(base * 2^(attempt-1), max).
  int backoff_base_ms = 10;
  int backoff_max_ms = 1000;
  /// Actually sleep during backoff. Off by default: tests and benches only
  /// need the schedule recorded; production monitors would enable it.
  bool sleep_on_backoff = false;
  /// Hard cap on total rollbacks per run() — bounds the worst case under a
  /// pathological fault rate.
  int max_total_rollbacks = 1000;
  SentinelConfig sentinel;
  /// Optional on-disk mirror (checkpoint v2): written every `disk_every`-th
  /// in-memory checkpoint when non-empty and disk_every > 0.
  std::string disk_path;
  int disk_every = 0;
};

enum class RecoveryAction { kRollback, kRingFallback, kDegrade };

inline const char* to_string(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::kRollback: return "rollback";
    case RecoveryAction::kRingFallback: return "ring-fallback";
    case RecoveryAction::kDegrade: return "degrade";
  }
  return "unknown";
}

struct RecoveryEvent {
  int step = 0;           ///< runner step the failure surfaced at
  int restored_step = 0;  ///< checkpoint step execution resumed from
  int attempt = 0;        ///< retry attempt number within the window
  int backoff_ms = 0;     ///< backoff assessed before the retry
  RecoveryAction action = RecoveryAction::kRollback;
  std::string cause;
};

struct RunReport {
  int steps = 0;             ///< steps completed (the requested count)
  int rollbacks = 0;         ///< total recoveries (all actions)
  int launch_failures = 0;   ///< transient errors caught from step()
  int sentinel_trips = 0;    ///< unhealthy sentinel reports
  int ring_fallbacks = 0;    ///< recoveries that dropped to an older entry
  int checkpoints = 0;       ///< good checkpoints taken (excl. the initial)
  bool degraded = false;     ///< fallback factory was engaged
  std::uint64_t total_backoff_ms = 0;
  std::vector<RecoveryEvent> events;

  /// Canonical one-line-per-recovery rendering (seed-reproducibility checks
  /// compare these across runs).
  [[nodiscard]] std::string describe() const;
};

template <class L>
class ResilientRunner {
 public:
  /// Builds a replacement engine for the degrade path (same geometry/tau;
  /// typically FP64 storage where the primary stored FP32).
  using FallbackFactory = std::function<std::unique_ptr<Engine<L>>()>;

  explicit ResilientRunner(std::unique_ptr<Engine<L>> eng,
                           RunnerConfig cfg = {});

  [[nodiscard]] Engine<L>& engine() { return *eng_; }
  [[nodiscard]] const Engine<L>& engine() const { return *eng_; }
  [[nodiscard]] const RunnerConfig& config() const { return cfg_; }
  [[nodiscard]] const StabilitySentinel<L>& sentinel() const {
    return sentinel_;
  }

  /// Attaches a fault injector (not owned; may be null to detach). The
  /// runner installs its launch hook on the engine and drives its per-step
  /// streams.
  void set_fault_injector(FaultInjector* inj);

  void set_fallback_factory(FallbackFactory f) { fallback_ = std::move(f); }

  /// Advances `steps` steps with checkpoint/rollback protection. Throws
  /// UnrecoverableError when recovery is exhausted; non-transient errors
  /// propagate unchanged.
  RunReport run(int steps);

  ~ResilientRunner();

 private:
  [[nodiscard]] int backoff_ms(int attempt) const;
  /// Rolls back to the best available checkpoint; escalates to ring
  /// fallback / engine degrade as attempts accumulate. Returns the step to
  /// resume from and records the event.
  int recover(RunReport& rep, int failed_step, int& attempt,
              const std::string& cause);

  std::unique_ptr<Engine<L>> eng_;
  RunnerConfig cfg_;
  StabilitySentinel<L> sentinel_;
  FaultInjector* injector_ = nullptr;
  FallbackFactory fallback_;
  /// Good checkpoints, oldest first; back() is the newest.
  std::vector<StateSnapshot<L>> ring_;
  bool degraded_ = false;
};

extern template class ResilientRunner<D2Q9>;
extern template class ResilientRunner<D3Q19>;
extern template class ResilientRunner<D3Q27>;
extern template class ResilientRunner<D3Q15>;

}  // namespace mlbm::resilience
