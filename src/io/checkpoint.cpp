#include "io/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mlbm {

namespace {

// Format v1 ("MLBMCP01"): header {D, Q, nx, ny, nz}, values always real_t.
// Format v2 ("MLBMCP02"): header {D, Q, nx, ny, nz, precision}, values in
// the declared storage precision (0 = fp64, 1 = fp32). A v2/fp64 file is
// byte-compatible with v1 apart from the header; v1 files remain loadable.
// Format v3 ("MLBMCP03"): the v2 header grows a flags-present tag, followed
// by the geometry hash (FNV-1a over extents, face BCs and the flag field)
// and — when the geometry has solids — one NodeKind byte per node. The hash
// and flags are VALIDATED on load: restoring onto a different geometry fails
// loudly (Kind::kGeometry) instead of silently imposing moments through a
// mismatched tile map. The node-value payload still covers every node (solid
// nodes carry their rest-state moments) so payload offsets stay
// geometry-independent.
constexpr std::uint64_t kMagicV1 = 0x4d4c424d43503031ULL;  // "MLBMCP01"
constexpr std::uint64_t kMagicV2 = 0x4d4c424d43503032ULL;  // "MLBMCP02"
constexpr std::uint64_t kMagicV3 = 0x4d4c424d43503033ULL;  // "MLBMCP03"

/// Values per node: rho + u + Pi.
template <class L>
constexpr int node_values() {
  return 1 + L::D + Moments<L>::NP;
}

template <class L>
void pack_node(const Moments<L>& m, real_t* v) {
  v[0] = m.rho;
  for (int a = 0; a < L::D; ++a) v[1 + a] = m.u[static_cast<std::size_t>(a)];
  for (int p = 0; p < Moments<L>::NP; ++p) {
    v[1 + L::D + p] = m.pi[static_cast<std::size_t>(p)];
  }
}

template <class L>
Moments<L> unpack_node(const real_t* v) {
  Moments<L> m;
  m.rho = v[0];
  for (int a = 0; a < L::D; ++a) m.u[static_cast<std::size_t>(a)] = v[1 + a];
  for (int p = 0; p < Moments<L>::NP; ++p) {
    m.pi[static_cast<std::size_t>(p)] = v[1 + L::D + p];
  }
  return m;
}

}  // namespace

template <class L>
void save_checkpoint(const Engine<L>& eng, const std::string& path) {
  // Atomic write: stream into `path + ".tmp"`, flush and close, then rename
  // over the destination. A crash (or an injected fault) mid-write can only
  // ever leave a stale `.tmp` orphan behind — the destination is either the
  // previous complete checkpoint or the new complete one, never a torn file.
  // The rename is atomic on POSIX when source and destination share a
  // filesystem, which they do by construction (same directory).
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw CheckpointError(CheckpointError::Kind::kOpen,
                          "save_checkpoint: cannot open " + tmp);
  }

  const Geometry& geo = eng.geometry();
  const Box& b = geo.box;
  const StoragePrecision prec = eng.storage_precision();
  const std::int32_t flags_present = geo.has_solids() ? 1 : 0;
  const std::int32_t header[7] = {
      L::D,
      L::Q,
      b.nx,
      b.ny,
      b.nz,
      prec == StoragePrecision::kFP32 ? std::int32_t{1} : std::int32_t{0},
      flags_present};
  const std::uint64_t geo_hash = geo.hash();
  out.write(reinterpret_cast<const char*>(&kMagicV3), sizeof(kMagicV3));
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(&geo_hash), sizeof(geo_hash));
  if (flags_present != 0) {
    static_assert(sizeof(NodeKind) == 1, "flag field is one byte per node");
    out.write(reinterpret_cast<const char*>(geo.kind.data()),
              static_cast<std::streamsize>(geo.kind.size()));
  }

  // Values are written in the engine's *storage* precision: what the device
  // held is what lands on disk, so restoring an FP32 run loses nothing
  // beyond what storage already rounded — and an MR fp32 round-trip is
  // bit-exact (moments are the stored representation).
  constexpr int NV = node_values<L>();
  real_t v[NV];
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        pack_node<L>(eng.moments_at(x, y, z), v);
        if (prec == StoragePrecision::kFP32) {
          float vf[NV];
          for (int k = 0; k < NV; ++k) vf[k] = static_cast<float>(v[k]);
          out.write(reinterpret_cast<const char*>(vf), sizeof(vf));
        } else {
          out.write(reinterpret_cast<const char*>(v), sizeof(v));
        }
      }
    }
  }
  out.flush();
  if (!out) {
    std::remove(tmp.c_str());
    throw CheckpointError(CheckpointError::Kind::kWrite,
                          "save_checkpoint: write failed: " + tmp);
  }
  out.close();
  if (out.fail()) {
    std::remove(tmp.c_str());
    throw CheckpointError(CheckpointError::Kind::kWrite,
                          "save_checkpoint: close failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw CheckpointError(
        CheckpointError::Kind::kWrite,
        "save_checkpoint: cannot rename " + tmp + " over " + path + ": " +
            ec.message());
  }
}

template <class L>
void load_checkpoint(Engine<L>& eng, const std::string& path) {
  // Hardened load: the file is fully read and validated — magic, header
  // completeness, extents, precision tag, exact payload size — BEFORE the
  // first impose(), so a malformed file raises a typed CheckpointError and
  // leaves the target engine bit-for-bit untouched (no half-restored state).
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError(CheckpointError::Kind::kOpen,
                          "load_checkpoint: cannot open " + path);
  }

  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(magic))) {
    throw CheckpointError(
        CheckpointError::Kind::kTruncated,
        "load_checkpoint: file ends inside the magic: " + path);
  }
  if (magic != kMagicV1 && magic != kMagicV2 && magic != kMagicV3) {
    throw CheckpointError(CheckpointError::Kind::kBadMagic,
                          "load_checkpoint: not a checkpoint file: " + path);
  }

  std::int32_t header[7] = {};
  const int header_ints = magic == kMagicV1 ? 5 : magic == kMagicV2 ? 6 : 7;
  const std::streamsize header_bytes =
      static_cast<std::streamsize>(sizeof(std::int32_t) * header_ints);
  in.read(reinterpret_cast<char*>(header), header_bytes);
  if (in.gcount() != header_bytes) {
    throw CheckpointError(
        CheckpointError::Kind::kTruncated,
        "load_checkpoint: file ends inside the header: " + path);
  }

  std::uint64_t file_hash = 0;
  if (magic == kMagicV3) {
    in.read(reinterpret_cast<char*>(&file_hash), sizeof(file_hash));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(file_hash))) {
      throw CheckpointError(
          CheckpointError::Kind::kTruncated,
          "load_checkpoint: file ends inside the geometry hash: " + path);
    }
  }

  StoragePrecision file_prec = StoragePrecision::kFP64;
  if (magic != kMagicV1) {
    if (header[5] == 1) {
      file_prec = StoragePrecision::kFP32;
    } else if (header[5] != 0) {
      throw CheckpointError(
          CheckpointError::Kind::kPrecision,
          "load_checkpoint: precision tag " + std::to_string(header[5]) +
              " out of range in " + path);
    }
  }

  const Box& b = eng.geometry().box;
  if (header[2] < 1 || header[3] < 1 || header[4] < 1) {
    throw CheckpointError(
        CheckpointError::Kind::kExtents,
        "load_checkpoint: non-positive extents in header of " + path);
  }
  if (header[0] != L::D || header[2] != b.nx || header[3] != b.ny ||
      header[4] != b.nz) {
    throw CheckpointError(
        CheckpointError::Kind::kExtents,
        "load_checkpoint: checkpoint is D" + std::to_string(header[0]) + " " +
            std::to_string(header[2]) + "x" + std::to_string(header[3]) + "x" +
            std::to_string(header[4]) + ", engine is D" + std::to_string(L::D) +
            " " + std::to_string(b.nx) + "x" + std::to_string(b.ny) + "x" +
            std::to_string(b.nz) + ": " + path);
  }

  if (magic == kMagicV3) {
    const Geometry& geo = eng.geometry();
    if (header[6] != 0 && header[6] != 1) {
      throw CheckpointError(
          CheckpointError::Kind::kGeometry,
          "load_checkpoint: flags tag " + std::to_string(header[6]) +
              " out of range in " + path);
    }
    if (file_hash != geo.hash()) {
      throw CheckpointError(
          CheckpointError::Kind::kGeometry,
          "load_checkpoint: geometry hash mismatch (file was saved from a "
          "different flag field or boundary setup): " +
              path);
    }
    if (header[6] == 1) {
      std::vector<std::uint8_t> flags(geo.kind.size());
      in.read(reinterpret_cast<char*>(flags.data()),
              static_cast<std::streamsize>(flags.size()));
      if (in.gcount() != static_cast<std::streamsize>(flags.size())) {
        throw CheckpointError(
            CheckpointError::Kind::kTruncated,
            "load_checkpoint: file ends inside the flag field: " + path);
      }
      for (std::size_t i = 0; i < flags.size(); ++i) {
        if (flags[i] != static_cast<std::uint8_t>(geo.kind[i])) {
          throw CheckpointError(
              CheckpointError::Kind::kGeometry,
              "load_checkpoint: node flag mismatch at linear index " +
                  std::to_string(i) + ": " + path);
        }
      }
    } else if (geo.has_solids()) {
      throw CheckpointError(
          CheckpointError::Kind::kGeometry,
          "load_checkpoint: file has no flag field but the engine geometry "
          "has solids: " +
              path);
    }
  }

  constexpr int NV = node_values<L>();
  const std::size_t elem =
      file_prec == StoragePrecision::kFP32 ? sizeof(float) : sizeof(real_t);
  const std::size_t payload_bytes =
      static_cast<std::size_t>(b.cells()) * static_cast<std::size_t>(NV) *
      elem;
  std::vector<char> payload(payload_bytes);
  in.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (in.gcount() != static_cast<std::streamsize>(payload_bytes)) {
    throw CheckpointError(
        CheckpointError::Kind::kTruncated,
        "load_checkpoint: payload is " + std::to_string(in.gcount()) + " of " +
            std::to_string(payload_bytes) + " bytes: " + path);
  }
  if (in.peek() != std::ifstream::traits_type::eof()) {
    throw CheckpointError(
        CheckpointError::Kind::kTrailing,
        "load_checkpoint: trailing bytes after the payload: " + path);
  }

  // Values convert to the compute type on read; the target engine may use
  // either storage precision (portability across patterns extends to
  // precision: an fp32 file restores into an fp64 engine and vice versa).
  real_t v[NV];
  const char* p = payload.data();
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        if (file_prec == StoragePrecision::kFP32) {
          float vf[NV];
          std::memcpy(vf, p, sizeof(vf));
          for (int k = 0; k < NV; ++k) v[k] = static_cast<real_t>(vf[k]);
          p += sizeof(vf);
        } else {
          std::memcpy(v, p, sizeof(v));
          p += sizeof(v);
        }
        eng.impose(x, y, z, unpack_node<L>(v));
      }
    }
  }
}

template void save_checkpoint<D2Q9>(const Engine<D2Q9>&, const std::string&);
template void save_checkpoint<D3Q19>(const Engine<D3Q19>&, const std::string&);
template void save_checkpoint<D3Q27>(const Engine<D3Q27>&, const std::string&);
template void save_checkpoint<D3Q15>(const Engine<D3Q15>&, const std::string&);
template void load_checkpoint<D2Q9>(Engine<D2Q9>&, const std::string&);
template void load_checkpoint<D3Q19>(Engine<D3Q19>&, const std::string&);
template void load_checkpoint<D3Q27>(Engine<D3Q27>&, const std::string&);
template void load_checkpoint<D3Q15>(Engine<D3Q15>&, const std::string&);

}  // namespace mlbm
