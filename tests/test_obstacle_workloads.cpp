// Obstacle boundary condition (momentum exchange) and the two obstacle
// workloads: porous plug and the Schaefer-Turek cylinder wake, including the
// Cd acceptance gate against the 2D-1 reference value at Re = 20.
#include <gtest/gtest.h>

#include <cmath>

#include "bc/obstacle.hpp"
#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "geometry/shapes.hpp"
#include "workloads/cylinder_wake.hpp"
#include "workloads/porous_plug.hpp"

namespace mlbm {
namespace {

constexpr real_t kTau = 0.8;

// ------------------------------------------------------------ ObstacleBC

TEST(ObstacleBC, SingleSolidNodeLinkCount2D) {
  Box b{16, 16, 1};
  Geometry geo(b);
  geo.set_solid(8, 8);
  const ObstacleBC<D2Q9> bc(geo);
  // Every non-rest direction of every fluid neighbour points into the
  // solid exactly once: Q - 1 links.
  EXPECT_EQ(bc.link_count(), 8u);
}

TEST(ObstacleBC, SingleSolidNodeLinkCount3D) {
  Box b{10, 10, 10};
  Geometry geo(b);
  geo.set_solid(5, 5, 5);
  const ObstacleBC<D3Q19> bc(geo);
  EXPECT_EQ(bc.link_count(), 18u);
}

TEST(ObstacleBC, AdjacentSolidsShareNoLinks) {
  Box b{16, 16, 1};
  Geometry geo(b);
  geo.set_solid(8, 8);
  geo.set_solid(9, 8);  // the pair's internal links are solid->solid
  const ObstacleBC<D2Q9> bc(geo);
  // 2 * 8 minus the two link pairs between the nodes (straight plus the
  // two diagonals each side contribute: straight 1, diagonals 2 per node).
  EXPECT_LT(bc.link_count(), 16u);
  EXPECT_GT(bc.link_count(), 8u);
}

TEST(ObstacleBC, FluidAtRestExertsNoForce) {
  Box b{20, 20, 1};
  Geometry geo(b);
  shapes::add_cylinder(geo, 10, 10, 3.0);
  StEngine<D2Q9> eng(geo, kTau);
  eng.initialize(
      [](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
  eng.run(4);
  const ObstacleBC<D2Q9> bc(geo, {10, 10, 0});
  const ObstacleLoad load = bc.evaluate(eng);
  EXPECT_NEAR(load.force[0], 0.0, 1e-12);
  EXPECT_NEAR(load.force[1], 0.0, 1e-12);
  EXPECT_NEAR(load.torque[2], 0.0, 1e-12);
}

TEST(ObstacleBC, UniformFlowProducesDragAlongFlow) {
  Box b{32, 24, 1};
  Geometry geo(b);
  geo.bc.set_axis(1, FaceBC::kWall);
  shapes::add_cylinder(geo, 12, 11.5, 3.0);
  StEngine<D2Q9> eng(geo, kTau);
  eng.initialize([](int, int, int) {
    return equilibrium_moments<D2Q9>(1.0, {0.05, 0});
  });
  eng.run(20);
  const ObstacleBC<D2Q9> bc(geo, {12, 11.5, 0});
  const ObstacleLoad load = bc.evaluate(eng);
  EXPECT_GT(load.force[0], 0.0);  // drag pushes the obstacle downstream
  EXPECT_LT(std::abs(load.force[1]), load.force[0]);
}

TEST(ObstacleBC, LoadAgreesAcrossEngines) {
  Box b{24, 20, 1};
  Geometry geo(b);
  geo.bc.set_axis(1, FaceBC::kWall);
  shapes::add_cylinder(geo, 10, 9.5, 2.5);
  const auto init = [](int, int y, int) {
    return equilibrium_moments<D2Q9>(
        1.0, {real_t(0.04) * std::sin(real_t(0.2) * y + 1), 0});
  };
  StEngine<D2Q9> st(geo, kTau);
  ReferenceEngine<D2Q9> ref(geo, kTau, CollisionScheme::kBGK);
  st.initialize(init);
  ref.initialize(init);
  for (int s = 0; s < 10; ++s) {
    st.step();
    ref.step();
  }
  const ObstacleBC<D2Q9> bc(geo, {10, 9.5, 0});
  const ObstacleLoad a = bc.evaluate(st);
  const ObstacleLoad c = bc.evaluate(ref);
  EXPECT_NEAR(a.force[0], c.force[0], 1e-12);
  EXPECT_NEAR(a.force[1], c.force[1], 1e-12);
  EXPECT_NEAR(a.torque[2], c.torque[2], 1e-12);
}

// ----------------------------------------------------------- porous plug

TEST(PorousPlug, KeepsMarginsClearAndReportsFluidFraction) {
  const auto pp =
      PorousPlug<D2Q9>::create(48, 24, 1, kTau, 0.02, 0.3, /*seed=*/11);
  EXPECT_GT(pp.geo.solid_count(), 0);
  // The inlet/outlet margins stay unobstructed.
  for (int x : {0, 1, 2, 3, 44, 45, 46, 47}) {
    for (int y = 1; y < 23; ++y) {
      EXPECT_FALSE(pp.geo.solid(x, y)) << "margin column " << x;
    }
  }
  EXPECT_GT(pp.fluid_fraction, 0.5);
  EXPECT_LT(pp.fluid_fraction, 0.95);
}

TEST(PorousPlug, DevelopsPositiveSuperficialVelocity) {
  const auto pp =
      PorousPlug<D2Q9>::create(48, 24, 1, kTau, 0.02, 0.25, /*seed=*/5);
  StEngine<D2Q9> eng(pp.geo, pp.tau);
  pp.attach(eng);
  eng.run(300);
  const real_t us = pp.superficial_velocity(eng);
  EXPECT_GT(us, 0.0);
  // The plug throttles the flux below the open-channel inflow.
  EXPECT_LT(us, real_t(0.02) * real_t(1.2));
}

TEST(PorousPlug, HigherSolidFractionLowersFlux) {
  const auto loose =
      PorousPlug<D2Q9>::create(48, 24, 1, kTau, 0.02, 0.1, /*seed=*/5);
  const auto tight =
      PorousPlug<D2Q9>::create(48, 24, 1, kTau, 0.02, 0.4, /*seed=*/5);
  StEngine<D2Q9> el(loose.geo, loose.tau);
  StEngine<D2Q9> et(tight.geo, tight.tau);
  loose.attach(el);
  tight.attach(et);
  el.run(300);
  et.run(300);
  EXPECT_GT(loose.superficial_velocity(el), tight.superficial_velocity(et));
}

TEST(PorousPlug, Builds3DAndRuns) {
  const auto pp =
      PorousPlug<D3Q19>::create(24, 12, 12, kTau, 0.02, 0.2, /*seed=*/3);
  StEngine<D3Q19> eng(pp.geo, pp.tau);
  pp.attach(eng);
  eng.run(40);
  EXPECT_GT(pp.superficial_velocity(eng), 0.0);
}

// --------------------------------------------------------- cylinder wake

TEST(CylinderWake, GeometryFollowsSchaeferTurekProportions) {
  const auto cw = CylinderWake<D2Q9>::create(10, 0.05, 20.0);
  EXPECT_EQ(cw.geo.box.nx, 220);
  EXPECT_EQ(cw.geo.box.ny, 41);
  // tau from Re: nu = u D / Re.
  EXPECT_NEAR(cw.tau, 3.0 * (0.05 * 10 / 20.0) + 0.5, 1e-12);
  EXPECT_GT(cw.geo.solid_count(), 60);   // ~ pi r^2 = 78 nodes
  EXPECT_LT(cw.geo.solid_count(), 95);
  EXPECT_GT(cw.obstacle->link_count(), 0u);
}

TEST(CylinderWake, RejectsDegenerateParameters) {
  EXPECT_THROW(CylinderWake<D2Q9>::create(2, 0.05, 20.0), ConfigError);
  EXPECT_THROW(CylinderWake<D2Q9>::create(10, 0.05, -1.0), ConfigError);
}

// Acceptance gate: steady-state drag within 10% of the Schaefer-Turek 2D-1
// reference Cd = 5.5795 at Re = 20. D = 12 nodes resolves the staircase
// cylinder to ~5% (finer D converges further but costs wall clock).
TEST(CylinderWake, DragCoefficientMatchesSchaeferTurekRe20) {
  const auto cw = CylinderWake<D2Q9>::create(12, 0.05, 20.0);
  StEngine<D2Q9> eng(cw.geo, cw.tau);
  cw.attach(eng);
  eng.run(6000);
  const double cd = cw.drag_coefficient(eng);
  const double cl = cw.lift_coefficient(eng);
  EXPECT_NEAR(cd, 5.5795, 0.10 * 5.5795);
  // Lift is two orders of magnitude below drag in the steady regime.
  EXPECT_LT(std::abs(cl), 0.25);
  // Steady at Re = 20: drag has nearly settled (< 1% drift over 200 steps;
  // the staircase solution keeps creeping toward the reference value).
  eng.run(200);
  EXPECT_NEAR(cw.drag_coefficient(eng), cd, 0.01 * cd);
}

}  // namespace
}  // namespace mlbm
