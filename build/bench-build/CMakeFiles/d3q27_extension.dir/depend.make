# Empty dependencies file for d3q27_extension.
# This may be replaced when dependencies are built.
