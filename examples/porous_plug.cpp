// Pressure-driven flow through a random porous plug: the sparse path's
// stress workload. Sweeping --solid dials the fluid fraction the
// tile-compressed engines see; the superficial velocity the flow settles to
// is the Darcy flux a permeability estimate reads.
//
//   ./examples/porous_plug [--nx 96] [--ny 32] [--nz 1] [--tau 0.8]
//                          [--uin 0.02] [--solid 0.3] [--seed 11]
//                          [--steps 3000] [--pattern st|ep|mr-p|mr-r]
//                          [--precision fp64|fp32] [--lattice d2q9|d3q19]
//                          [--vtk plug.vtk] [--sanitize]
//
// --sanitize runs the engine under the mlbm-sanitizer (docs/sanitizer.md)
// and exits nonzero if any hazard is reported.
#include <cmath>
#include <cstdio>

#include "analysis/sanitizer/sanitizer.hpp"
#include "engines/factory.hpp"
#include "io/vtk_writer.hpp"
#include "util/cli.hpp"
#include "workloads/porous_plug.hpp"

namespace {

using namespace mlbm;

template <class L>
int run(const Cli& cli) {
  const int nx = cli.get_int("nx", 96, 16);
  const int ny = cli.get_int("ny", 32, 4);
  const int nz = cli.get_int("nz", L::D == 2 ? 1 : 16, 1);
  const real_t tau = cli.get_double("tau", 0.8);
  const real_t uin = cli.get_double("uin", 0.02);
  const double solid = cli.get_double("solid", 0.3);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11, 0));
  const int steps = cli.get_int("steps", 3000, 1);
  const auto prec = parse_precision(cli.get("precision", "fp64"));
  if (!prec) {
    std::fprintf(stderr, "error: --precision must be fp64 or fp32\n");
    return 1;
  }

  const auto plug = PorousPlug<L>::create(nx, ny, nz, tau, uin, solid, seed);
  std::printf(
      "porous_plug: %s %dx%dx%d, tau=%.3f, u_in=%.3f, solid fraction %.2f "
      "(fluid fraction seen: %.3f), storage %s\n",
      L::name(), nx, ny, nz, tau, uin, solid, plug.fluid_fraction,
      to_string(*prec));

  const std::string pattern = cli.get("pattern", "mr-p");
  std::unique_ptr<Engine<L>> eng_ptr;
  if (pattern == "mr-r" || pattern == "mr-p") {
    eng_ptr = make_mr_engine<L>(*prec, plug.geo, tau,
                                pattern == "mr-r" ? Regularization::kRecursive
                                                  : Regularization::kProjective,
                                L::D == 2 ? MrConfig{16, 1, 4}
                                          : MrConfig{8, 8, 1});
  } else if (pattern == "st") {
    eng_ptr = make_st_engine<L>(*prec, plug.geo, tau);
  } else if (pattern == "ep") {
    eng_ptr = make_ep_engine<L>(*prec, plug.geo, tau);
  } else {
    std::fprintf(stderr, "error: --pattern must be mr-r, mr-p, st or ep\n");
    return 1;
  }
  Engine<L>& eng = *eng_ptr;
  analysis::Sanitizer san;
  if (cli.has("sanitize")) eng.set_sanitizer(&san);
  plug.attach(eng);
  eng.profiler()->counter().set_enabled(false);

  // Run in chunks; the superficial velocity settling flat signals the flow
  // has found its way through the matrix.
  const int chunks = 6;
  std::printf("\n%8s %14s %12s\n", "step", "u_superficial", "u_s/u_in");
  for (int c = 0; c < chunks; ++c) {
    eng.run(steps / chunks);
    const real_t us = plug.superficial_velocity(eng);
    std::printf("%8d %14.6f %12.4f\n", eng.time(), us, us / uin);
  }
  const real_t us = plug.superficial_velocity(eng);
  std::printf("\nDarcy flux u_s = %.6f (%.1f%% of the open-channel inflow); "
              "flow resistance u_in/u_s = %.2f\n",
              us, 100 * us / uin, uin / us);
  std::printf("footprint: %.2f MiB simulation state (%s)\n",
              eng.state_bytes() / 1048576.0, eng.pattern_name());

  if (cli.has("vtk")) {
    write_vtk(eng, cli.get("vtk", "plug.vtk"));
    std::printf("wrote %s\n", cli.get("vtk", "plug.vtk").c_str());
  }
  if (cli.has("sanitize")) {
    std::printf("%s", san.report().to_string().c_str());
    if (!san.report().clean()) {
      std::fprintf(stderr, "sanitizer: %llu hazard(s) reported\n",
                   static_cast<unsigned long long>(san.report().total()));
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const mlbm::Cli cli(argc, argv);
  cli.reject_unknown({"lattice", "nx", "ny", "nz", "pattern", "precision",
                      "sanitize", "seed", "solid", "steps", "tau", "uin",
                      "vtk"});
  const std::string lattice = cli.get("lattice", "d2q9");
  if (lattice == "d2q9") return run<mlbm::D2Q9>(cli);
  if (lattice == "d3q19") return run<mlbm::D3Q19>(cli);
  std::fprintf(stderr, "error: --lattice must be d2q9 or d3q19\n");
  return 1;
}
