// Cartesian lattice geometry: extents, linear indexing and node kinds.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace mlbm {

/// Kind of a lattice node. The engines use this to apply boundary conditions;
/// the classification is produced by the workload setups (channel, cavity...).
enum class NodeKind : std::uint8_t {
  kFluid = 0,
  kWall,    ///< fluid node adjacent to a half-way bounceback wall (handled via
            ///< out-of-domain link reflection; kept for diagnostics)
  kInlet,   ///< finite-difference velocity inlet (Latt et al. 2008)
  kOutlet,  ///< finite-difference outlet (prescribed density, extrapolated u)
  kSolid,   ///< obstacle node: carries no state; fluid populations streaming
            ///< into it bounce back half-way (geometry/geometry.hpp)
};

/// Axis-aligned box of lattice nodes. `nz == 1` for 2D domains; all indexing
/// code is shared between 2D and 3D.
struct Box {
  int nx = 1;
  int ny = 1;
  int nz = 1;

  [[nodiscard]] int extent(int axis) const {
    return axis == 0 ? nx : (axis == 1 ? ny : nz);
  }

  [[nodiscard]] index_t cells() const {
    return static_cast<index_t>(nx) * ny * nz;
  }

  [[nodiscard]] index_t idx(int x, int y, int z = 0) const {
    assert(x >= 0 && x < nx && y >= 0 && y < ny && z >= 0 && z < nz);
    return (static_cast<index_t>(z) * ny + y) * nx + x;
  }

  [[nodiscard]] bool inside(int x, int y, int z = 0) const {
    return x >= 0 && x < nx && y >= 0 && y < ny && z >= 0 && z < nz;
  }

  /// Wraps `v` into [0, n) for periodic axes. Callers must check
  /// `inside`/periodicity themselves for non-periodic axes.
  static int wrap(int v, int n) {
    if (v < 0) return v + n;
    if (v >= n) return v - n;
    return v;
  }
};

/// Behaviour of one face of the domain box.
enum class FaceBC : std::uint8_t {
  kPeriodic,  ///< wraps to the opposite face
  kWall,      ///< half-way bounceback, optionally moving (u_wall)
  kOpen,      ///< inlet/outlet plane, state overwritten by a BC pass
};

struct FaceSpec {
  FaceBC type = FaceBC::kPeriodic;
  /// Wall velocity for moving-wall bounceback (lid-driven cavity).
  std::array<real_t, 3> u_wall = {0, 0, 0};
};

/// Boundary behaviour of all six faces, indexed [axis][0=low, 1=high].
struct DomainBC {
  std::array<std::array<FaceSpec, 2>, 3> face{};

  [[nodiscard]] bool periodic(int axis) const {
    return face[static_cast<std::size_t>(axis)][0].type == FaceBC::kPeriodic;
  }
  void set_axis(int axis, FaceBC type) {
    face[static_cast<std::size_t>(axis)][0].type = type;
    face[static_cast<std::size_t>(axis)][1].type = type;
  }
};

}  // namespace mlbm
