#include "workloads/analytic.hpp"

#include <cmath>

namespace mlbm::analytic {

namespace {
constexpr real_t kPi = 3.14159265358979323846;
}

real_t poiseuille(int n, int y) {
  // Walls at -1/2 and n-1/2, width H = n. Normalized coordinate in (0,1).
  const real_t yt = (static_cast<real_t>(y) + real_t(0.5)) / n;
  return real_t(4) * yt * (real_t(1) - yt);
}

real_t couette(int n, int y) {
  return (static_cast<real_t>(y) + real_t(0.5)) / n;
}

real_t duct(int ny, int nz, int y, int z, int terms) {
  // Laminar flow in a rectangular duct [-a,a] x [-b,b]:
  //   u(y,z) ~ sum_{n odd} (-1)^((n-1)/2) / n^3
  //            [1 - cosh(n pi z / 2a) / cosh(n pi b / 2a)] cos(n pi y / 2a).
  // Half-way walls: a = ny/2, b = nz/2, node centres offset by 1/2.
  const real_t a = static_cast<real_t>(ny) / 2;
  const real_t b = static_cast<real_t>(nz) / 2;
  const real_t yy = static_cast<real_t>(y) + real_t(0.5) - a;
  const real_t zz = static_cast<real_t>(z) + real_t(0.5) - b;

  auto series = [&](real_t ycoord, real_t zcoord) {
    real_t s = 0;
    real_t sign = 1;
    for (int k = 1; k <= terms; k += 2) {
      const real_t kpa = static_cast<real_t>(k) * kPi / (real_t(2) * a);
      s += sign / (static_cast<real_t>(k) * k * k) *
           (real_t(1) - std::cosh(kpa * zcoord) / std::cosh(kpa * b)) *
           std::cos(kpa * ycoord);
      sign = -sign;
    }
    return s;
  };

  const real_t centre = series(0, 0);
  return centre != 0 ? series(yy, zz) / centre : real_t(0);
}

real_t taylor_green_decay(int n, real_t nu, real_t t) {
  const real_t k = real_t(2) * kPi / n;
  return std::exp(-real_t(2) * nu * k * k * t);
}

}  // namespace mlbm::analytic
