// Momentum-exchange force/torque on solid obstacles.
//
// Half-way bounceback off kSolid nodes happens inside the engines'
// streaming (resolve_stream / the MR scatter). What the workloads need on
// top is the hydrodynamic load on the obstacle: drag, lift, torque. The
// momentum-exchange method (Ladd 1994) accumulates, over every fluid->solid
// link (x, i), the momentum the bounce transfers to the wall in one step:
//
//   dP = ( f~_i(x) + f~_ib(x) ) c_i  =  2 f~_i(x) c_i      (static wall)
//
// where f~ is the post-collision population and ib the opposite direction.
// Engines store *pre*-collision moment state and expose it through
// moments_at, so the evaluation reconstructs the post-collision population
// projectively: Pi^neq is relaxed by (1 - 1/tau) and f~ rebuilt with the
// Hermite-truncated reconstruction — exact for MR-P/REF-P state and a
// same-order surrogate for the other schemes (the force is itself only
// accurate to that order). Because it talks through the moment interface,
// one implementation serves ST, AA, MR and reference engines, dense or
// sparse.
//
// Torque uses the link midpoint x + c_i/2 (where the half-way wall sits)
// relative to a caller-supplied reference point.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "engines/engine.hpp"

namespace mlbm {

/// One evaluation of the obstacle load, in lattice units (momentum
/// transferred per timestep = force).
struct ObstacleLoad {
  std::array<real_t, 3> force{};
  std::array<real_t, 3> torque{};
};

template <class L>
class ObstacleBC {
 public:
  /// Enumerates the fluid->solid links of `geo` once (periodic wraps
  /// included; links through wall/open faces are domain BCs, not obstacle
  /// links). `ref` is the torque reference point in node coordinates.
  explicit ObstacleBC(const Geometry& geo,
                      std::array<real_t, 3> ref = {0, 0, 0});

  /// Momentum-exchange sum over all links against the engine's current
  /// state. The engine must share the geometry the links were built from.
  [[nodiscard]] ObstacleLoad evaluate(const Engine<L>& eng) const;

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

 private:
  struct Link {
    int x, y, z;     ///< fluid node
    std::uint8_t i;  ///< direction pointing into the solid
  };
  std::vector<Link> links_;
  std::array<real_t, 3> ref_;
};

extern template class ObstacleBC<D2Q9>;
extern template class ObstacleBC<D3Q19>;
extern template class ObstacleBC<D3Q27>;
extern template class ObstacleBC<D3Q15>;

}  // namespace mlbm
