// Fleet scheduler: perfmodel-driven placement, the watchdog/degradation
// ladder, checkpoint-based migration off dead devices, and the two contracts
// the chaos bench gates on — a migrated or fault-ridden job finishes with
// fields bit-identical to an undisturbed run, and a same-seed replay
// reproduces the identical FleetReport.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/device_pool.hpp"
#include "fleet/error.hpp"
#include "fleet/fault_plan.hpp"
#include "fleet/job.hpp"
#include "fleet/report.hpp"
#include "fleet/scheduler.hpp"
#include "gpusim/device.hpp"
#include "util/error.hpp"

namespace mlbm::fleet {
namespace {

JobSpec small_job(Workload w = Workload::kTaylorGreen, int n = 16,
                  int steps = 64) {
  JobSpec spec;
  spec.workload = w;
  spec.n = n;
  spec.steps = steps;
  return spec;
}

/// The undisturbed trajectory: same factories, no runner, no scheduler.
JobFields reference_fields(const JobSpec& spec) {
  auto eng = make_job_engine(spec);
  eng->run(spec.steps);
  return job_fields(*eng);
}

DevicePool two_v100s() {
  DevicePool pool;
  pool.add_device(gpusim::DeviceSpec::v100());
  pool.add_device(gpusim::DeviceSpec::v100());
  return pool;
}

const JobOutcome& outcome(const FleetReport& rep, int job_id) {
  return rep.jobs.at(static_cast<std::size_t>(job_id));
}

// ---- DevicePool: admission + modeled-finish-time placement ----

TEST(DevicePool, PlacesByModeledFinishTimeWithIdTieBreak) {
  DevicePool pool = two_v100s();
  const JobSpec spec = small_job();
  const long long cells = 16 * 16;
  const std::size_t bytes = 1 << 20;

  // Equal load: tie breaks toward the lower id.
  EXPECT_EQ(pool.place(spec, cells, bytes, spec.steps), 0);

  // Backlog on device 0 pushes the job to device 1.
  pool.device(0).busy_s = 1e6;
  EXPECT_EQ(pool.place(spec, cells, bytes, spec.steps), 1);

  // A dead device never wins, however idle.
  pool.device(1).alive = false;
  EXPECT_EQ(pool.place(spec, cells, bytes, spec.steps), 0);

  // `exclude` skips the migration source even if it is the only candidate.
  EXPECT_EQ(pool.place(spec, cells, bytes, spec.steps, /*exclude=*/0), -1);
}

TEST(DevicePool, AdmissionIsTheFootprintCheck) {
  DevicePool pool = two_v100s();
  const std::size_t cap = pool.device(0).capacity_bytes();
  EXPECT_TRUE(pool.admits(0, cap / 2));
  EXPECT_FALSE(pool.admits(0, cap + 1));
  EXPECT_TRUE(pool.fits_anywhere(cap));
  EXPECT_FALSE(pool.fits_anywhere(cap + 1));

  // Resident jobs shrink free DRAM and block further placement.
  pool.device(0).resident_bytes = cap;
  pool.device(1).resident_bytes = cap;
  const JobSpec spec = small_job();
  EXPECT_EQ(pool.place(spec, 256, 1 << 20, spec.steps), -1);
}

TEST(DevicePool, PredictsThroughputFromThePerfModel) {
  DevicePool pool;
  pool.add_device(gpusim::DeviceSpec::v100());
  for (perf::Pattern p :
       {perf::Pattern::kST, perf::Pattern::kMRP, perf::Pattern::kMRR}) {
    const double mflups =
        pool.predicted_mflups(0, p, StoragePrecision::kFP64);
    EXPECT_GT(mflups, 0) << "pattern " << static_cast<int>(p);
    JobSpec spec = small_job();
    spec.pattern = p;
    const double s = pool.step_seconds(0, spec, 16 * 16);
    EXPECT_GT(s, 0);
  }
}

// ---- Fault plan: windows, determinism ----

TEST(FleetFaultPlan, StragglerWindowOpensAndExpires) {
  FleetFaultConfig fc;
  fc.scripted.push_back({/*tick=*/1, FleetFaultKind::kStragglerBegin,
                         /*device=*/0, /*factor=*/4.0, /*duration_ticks=*/2});
  FleetFaultPlan plan(fc);
  DevicePool pool = two_v100s();

  EXPECT_TRUE(plan.begin_tick(0, pool).empty());
  EXPECT_DOUBLE_EQ(pool.device(0).slowdown, 1.0);
  plan.begin_tick(1, pool);
  EXPECT_DOUBLE_EQ(pool.device(0).slowdown, 4.0);
  plan.begin_tick(2, pool);
  EXPECT_DOUBLE_EQ(pool.device(0).slowdown, 4.0);  // window still open
  plan.begin_tick(3, pool);
  EXPECT_DOUBLE_EQ(pool.device(0).slowdown, 1.0);  // expired
  EXPECT_DOUBLE_EQ(pool.device(1).slowdown, 1.0);

  bool saw_begin = false;
  bool saw_end = false;
  for (const FleetFaultEvent& e : plan.events()) {
    saw_begin = saw_begin || e.kind == FleetFaultKind::kStragglerBegin;
    saw_end = saw_end || e.kind == FleetFaultKind::kStragglerEnd;
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

TEST(FleetFaultPlan, RateDrivenLossesSpareTheLastAliveDevice) {
  FleetFaultConfig fc;
  fc.seed = 3;
  fc.device_loss_rate = 1.0;  // every draw fires
  fc.max_device_losses = 8;   // higher than the pool size
  FleetFaultPlan plan(fc);
  DevicePool pool = two_v100s();
  for (long t = 0; t < 16; ++t) plan.begin_tick(t, pool);
  EXPECT_EQ(pool.alive_count(), 1);  // never zero
}

TEST(FleetFaultPlan, SameSeedSameTrace) {
  FleetFaultConfig fc;
  fc.seed = 11;
  fc.device_loss_rate = 0.05;
  fc.straggler_rate = 0.2;
  fc.launch_burst_rate = 0.2;
  fc.link_fault_rate = 0.1;
  std::string traces[2];
  for (std::string& trace : traces) {
    FleetFaultPlan plan(fc);
    DevicePool pool = two_v100s();
    for (long t = 0; t < 32; ++t) plan.begin_tick(t, pool);
    trace = plan.trace_string();
  }
  EXPECT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[0], traces[1]);
}

// ---- Scheduler: clean drain ----

TEST(FleetScheduler, FaultFreeFleetMatchesBareEngines) {
  FleetConfig cfg;
  cfg.quantum_steps = 16;
  FleetScheduler sched(two_v100s(), cfg);
  const std::vector<JobSpec> specs = {
      small_job(Workload::kTaylorGreen, 16, 48),
      small_job(Workload::kCavity, 16, 48),
      small_job(Workload::kCylinder, 12, 40),
  };
  for (const JobSpec& s : specs) sched.submit(s);
  const FleetReport rep = sched.run();

  ASSERT_EQ(rep.jobs.size(), specs.size());
  EXPECT_EQ(rep.completed, static_cast<int>(specs.size()));
  EXPECT_EQ(rep.parked, 0);
  EXPECT_GT(rep.makespan_s, 0);
  EXPECT_GT(rep.jobs_per_hour, 0);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const JobOutcome& out = rep.jobs[i];
    EXPECT_EQ(out.status, JobStatus::kCompleted);
    EXPECT_EQ(out.retries, 0);
    EXPECT_EQ(out.migrations, 0);
    // The scheduler's quantum slicing must not perturb the trajectory.
    EXPECT_EQ(out.fields, reference_fields(specs[i])) << "job " << i;
  }
}

TEST(FleetScheduler, UnservableJobParksWithAdmissionError) {
  gpusim::DeviceSpec tiny = gpusim::DeviceSpec::v100();
  tiny.memory_gb = 1e-6;  // ~1 kB: no D2Q9 engine fits
  DevicePool pool;
  pool.add_device(tiny);
  FleetScheduler sched(std::move(pool));
  sched.submit(small_job());
  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.parked, 1);
  EXPECT_EQ(outcome(rep, 0).status, JobStatus::kParked);
  EXPECT_EQ(outcome(rep, 0).parked_kind, FleetError::Kind::kAdmission);
}

TEST(FleetScheduler, AllDevicesDeadParksWithNoDevice) {
  FleetFaultConfig fc;
  fc.scripted.push_back({0, FleetFaultKind::kDeviceLoss, 0, 0, 1});
  fc.scripted.push_back({0, FleetFaultKind::kDeviceLoss, 1, 0, 1});
  FleetFaultPlan plan(fc);
  FleetScheduler sched(two_v100s());
  sched.set_fault_plan(&plan);
  sched.submit(small_job());
  const FleetReport rep = sched.run();
  EXPECT_EQ(outcome(rep, 0).status, JobStatus::kParked);
  EXPECT_EQ(outcome(rep, 0).parked_kind, FleetError::Kind::kNoDevice);
}

// ---- Watchdog: a pathological straggler trips the deadline ----

TEST(FleetScheduler, WatchdogDeadlineTripMigratesAndStillMatches) {
  FleetFaultConfig fc;
  // Device 0 goes 100x slow AFTER the job lands there (placement is
  // finish-time-aware and would simply avoid a device already straggling):
  // the tick-1 quantum's modeled time exceeds deadline_factor (8) x nominal,
  // tripping the watchdog.
  fc.scripted.push_back({1, FleetFaultKind::kStragglerBegin, 0, 100.0, 1000});
  FleetFaultPlan plan(fc);

  FleetConfig cfg;
  cfg.quantum_steps = 32;
  FleetScheduler sched(two_v100s(), cfg);
  sched.set_fault_plan(&plan);
  const JobSpec spec = small_job(Workload::kTaylorGreen, 16, 96);
  sched.submit(spec);
  const FleetReport rep = sched.run();

  const JobOutcome& out = outcome(rep, 0);
  EXPECT_EQ(out.status, JobStatus::kCompleted);
  EXPECT_EQ(out.retries, 1);
  EXPECT_EQ(out.migrations, 1);
  EXPECT_EQ(out.device, 1);  // finished on the healthy device
  ASSERT_FALSE(rep.ladder.empty());
  EXPECT_EQ(rep.ladder[0].action, LadderAction::kMigrate);
  EXPECT_EQ(rep.ladder[0].cause, "deadline");
  EXPECT_EQ(rep.ladder[0].from_device, 0);
  EXPECT_EQ(rep.ladder[0].to_device, 1);
  EXPECT_GT(out.backoff_ms, 0);  // fleet backoff was charged

  // The deadline is a *time* policy: the trajectory is untouched.
  EXPECT_EQ(out.fields, reference_fields(spec));
}

// ---- Migration: device loss, bit-identical restore ----

TEST(FleetScheduler, DeviceLossMigrationIsBitIdentical) {
  FleetFaultConfig fc;
  fc.scripted.push_back({/*tick=*/2, FleetFaultKind::kDeviceLoss,
                         /*device=*/0, 0, 1});
  FleetFaultPlan plan(fc);

  FleetConfig cfg;
  cfg.quantum_steps = 16;  // ticks 0..1 run 32 of 64 steps, then the loss
  FleetScheduler sched(two_v100s(), cfg);
  sched.set_fault_plan(&plan);
  const JobSpec spec = small_job(Workload::kTaylorGreen, 16, 64);
  sched.submit(spec);
  const FleetReport rep = sched.run();

  const JobOutcome& out = outcome(rep, 0);
  EXPECT_EQ(out.status, JobStatus::kCompleted);
  EXPECT_EQ(out.migrations, 1);
  EXPECT_EQ(out.device, 1);
  ASSERT_FALSE(rep.ladder.empty());
  EXPECT_EQ(rep.ladder[0].action, LadderAction::kMigrate);
  EXPECT_EQ(rep.ladder[0].cause, "device-loss");

  // Checkpoint restore into a factory-rebuilt engine is the raw-state path:
  // the migrated run's final fields are bit-identical to never migrating.
  EXPECT_EQ(out.fields, reference_fields(spec));

  ASSERT_EQ(rep.devices.size(), 2u);
  EXPECT_FALSE(rep.devices[0].alive);
  EXPECT_EQ(rep.devices[0].jobs_migrated_out, 1);
  EXPECT_EQ(rep.devices[1].jobs_migrated_in, 1);
}

// ---- Degradation ladder: ordering, then budget exhaustion ----

TEST(FleetScheduler, LadderWalksMigrateThenShrinkThenPark) {
  FleetFaultConfig fc;
  // Both devices straggle 100x forever: migration cannot help, shrinking
  // cannot help, so the ladder must be walked to the end in order.
  fc.scripted.push_back({0, FleetFaultKind::kStragglerBegin, 0, 100.0, 10000});
  fc.scripted.push_back({0, FleetFaultKind::kStragglerBegin, 1, 100.0, 10000});
  FleetFaultPlan plan(fc);

  FleetConfig cfg;
  cfg.quantum_steps = 8;
  cfg.min_quantum_steps = 2;
  cfg.retry_budget = 10;  // big enough that the ladder, not the budget, ends it
  FleetScheduler sched(two_v100s(), cfg);
  sched.set_fault_plan(&plan);
  sched.submit(small_job(Workload::kTaylorGreen, 16, 512));
  const FleetReport rep = sched.run();

  const JobOutcome& out = outcome(rep, 0);
  EXPECT_EQ(out.status, JobStatus::kParked);
  EXPECT_EQ(out.parked_kind, FleetError::Kind::kLadder);

  std::vector<LadderAction> actions;
  for (const LadderEvent& e : rep.ladder) actions.push_back(e.action);
  const std::vector<LadderAction> expected = {
      LadderAction::kMigrate,        // re-place first
      LadderAction::kShrinkQuantum,  // 8 -> 4
      LadderAction::kShrinkQuantum,  // 4 -> 2 (the floor)
      LadderAction::kPark,           // out of options
  };
  EXPECT_EQ(actions, expected);
  EXPECT_EQ(rep.ladder.back().quantum, cfg.min_quantum_steps);
}

TEST(FleetScheduler, RetryBudgetExhaustionParksWithTypedError) {
  FleetFaultConfig fc;
  fc.scripted.push_back({0, FleetFaultKind::kStragglerBegin, 0, 100.0, 10000});
  fc.scripted.push_back({0, FleetFaultKind::kStragglerBegin, 1, 100.0, 10000});
  FleetFaultPlan plan(fc);

  FleetConfig cfg;
  cfg.quantum_steps = 8;
  cfg.min_quantum_steps = 2;
  cfg.retry_budget = 2;  // smaller than the ladder: the budget ends it first
  FleetScheduler sched(two_v100s(), cfg);
  sched.set_fault_plan(&plan);
  sched.submit(small_job(Workload::kTaylorGreen, 16, 512));
  const FleetReport rep = sched.run();

  const JobOutcome& out = outcome(rep, 0);
  EXPECT_EQ(out.status, JobStatus::kParked);
  EXPECT_EQ(out.parked_kind, FleetError::Kind::kRetryBudget);
  EXPECT_EQ(out.retries, cfg.retry_budget + 1);  // the trip that broke the bank
  ASSERT_FALSE(rep.ladder.empty());
  EXPECT_EQ(rep.ladder.back().action, LadderAction::kPark);
}

// ---- Chaos: job-level faults + device-level faults, seed reproducibility ----

TEST(FleetScheduler, ChaosRunIsSeedReproducibleAndBitIdentical) {
  const std::vector<JobSpec> specs = {
      small_job(Workload::kTaylorGreen, 16, 48),
      small_job(Workload::kCavity, 16, 48),
  };

  FleetFaultConfig device_faults;
  device_faults.seed = 17;
  device_faults.straggler_rate = 0.1;   // 4x: under the deadline factor
  device_faults.launch_burst_rate = 0.1;
  device_faults.link_fault_rate = 0.05;

  FleetConfig cfg;
  cfg.quantum_steps = 16;
  cfg.job_faults.seed = 29;
  cfg.job_faults.bitflip_rate = 0.05;
  cfg.job_faults.bitflip_bit = 62;  // detectable regime
  cfg.job_faults.launch_fail_rate = 0.02;

  auto chaos_run = [&]() {
    FleetFaultPlan plan(device_faults);
    FleetScheduler sched(two_v100s(), cfg);
    sched.set_fault_plan(&plan);
    for (const JobSpec& s : specs) sched.submit(s);
    return sched.run();
  };

  const FleetReport a = chaos_run();
  const FleetReport b = chaos_run();

  // Same seed, same chaos, byte-equal report.
  EXPECT_EQ(a.describe(), b.describe());

  // Every fault was absorbed: zero lost jobs, and every job's physics is
  // bit-identical to a run that saw no fault at all.
  EXPECT_EQ(a.completed, static_cast<int>(specs.size()));
  EXPECT_EQ(a.parked, 0);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].fields, reference_fields(specs[i])) << "job " << i;
  }
  // The chaos actually happened (otherwise this test gates nothing).
  int disturbances = 0;
  for (const JobOutcome& out : a.jobs) {
    disturbances += out.rollbacks + out.launch_failures;
  }
  EXPECT_GT(disturbances, 0);
}

TEST(FleetReport, JsonAndDescribeRenderEveryJob) {
  FleetScheduler sched(two_v100s());
  sched.submit(small_job(Workload::kTaylorGreen, 16, 32));
  sched.submit(small_job(Workload::kCylinder, 12, 32));
  const FleetReport rep = sched.run();
  const std::string text = rep.describe();
  const std::string json = rep.json();
  for (const JobOutcome& out : rep.jobs) {
    EXPECT_NE(text.find(out.spec.name()), std::string::npos);
    EXPECT_NE(json.find(out.spec.name()), std::string::npos);
  }
  EXPECT_NE(json.find("\"jobs\""), std::string::npos);
  EXPECT_NE(json.find("\"devices\""), std::string::npos);
  EXPECT_NE(json.find("\"moment_hash\""), std::string::npos);
}

TEST(FleetScheduler, RejectsInvalidConfiguration) {
  EXPECT_THROW(FleetScheduler(DevicePool{}), ConfigError);
  FleetConfig bad;
  bad.quantum_steps = 0;
  EXPECT_THROW(FleetScheduler(two_v100s(), bad), ConfigError);
  bad = {};
  bad.min_quantum_steps = 64;  // above quantum_steps
  EXPECT_THROW(FleetScheduler(two_v100s(), bad), ConfigError);
  bad = {};
  bad.deadline_factor = 1.0;
  EXPECT_THROW(FleetScheduler(two_v100s(), bad), ConfigError);

  FleetScheduler sched(two_v100s());
  sched.submit(small_job(Workload::kTaylorGreen, 16, 8));
  (void)sched.run();
  EXPECT_THROW(sched.submit(small_job()), ConfigError);
  EXPECT_THROW(sched.run(), ConfigError);
}

}  // namespace
}  // namespace mlbm::fleet
