// Cross-engine equivalence: the moment-representation engines must reproduce
// the distribution-representation reference trajectories to round-off. This
// is the paper's central claim — the moment representation is a *lossless*
// compression of the regularized simulation state — turned into a test.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "workloads/cavity.hpp"
#include "workloads/channel.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

template <class L>
double max_moment_diff(const Engine<L>& a, const Engine<L>& b) {
  const Box& box = a.geometry().box;
  double worst = 0;
  for (int z = 0; z < box.nz; ++z) {
    for (int y = 0; y < box.ny; ++y) {
      for (int x = 0; x < box.nx; ++x) {
        const Moments<L> ma = a.moments_at(x, y, z);
        const Moments<L> mb = b.moments_at(x, y, z);
        worst = std::max(worst, std::abs(ma.rho - mb.rho));
        for (int c = 0; c < L::D; ++c) {
          worst = std::max(worst, std::abs(ma.u[static_cast<std::size_t>(c)] -
                                           mb.u[static_cast<std::size_t>(c)]));
        }
        for (int p = 0; p < Moments<L>::NP; ++p) {
          worst = std::max(worst,
                           std::abs(ma.pi[static_cast<std::size_t>(p)] -
                                    mb.pi[static_cast<std::size_t>(p)]));
        }
      }
    }
  }
  return worst;
}

// ---------------------------------------------------------------- channel 2D

struct Channel2DParam {
  Regularization reg;
  MomentStorage storage;
  MrConfig cfg;
  const char* label;
};

class Channel2DEquivalence
    : public ::testing::TestWithParam<Channel2DParam> {};

TEST_P(Channel2DEquivalence, MrMatchesReference) {
  const auto& param = GetParam();
  const real_t tau = 0.8;
  const auto ch = Channel<D2Q9>::create(24, 18, 1, tau, 0.05);

  ReferenceEngine<D2Q9> ref(ch.geo, tau,
                            param.reg == Regularization::kProjective
                                ? CollisionScheme::kProjective
                                : CollisionScheme::kRecursive);
  MrConfig cfg = param.cfg;
  cfg.storage = param.storage;
  MrEngine<D2Q9> mr(ch.geo, tau, param.reg, cfg);

  ch.attach(ref);
  ch.attach(mr);
  for (int s = 0; s < 25; ++s) {
    ref.step();
    mr.step();
  }
  EXPECT_LT(max_moment_diff(ref, mr), 1e-12) << param.label;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, Channel2DEquivalence,
    ::testing::Values(
        Channel2DParam{Regularization::kProjective, MomentStorage::kPingPong,
                       {8, 1, 1}, "P/pingpong/8x1"},
        Channel2DParam{Regularization::kProjective, MomentStorage::kPingPong,
                       {32, 1, 4}, "P/pingpong/32x4"},
        Channel2DParam{Regularization::kProjective, MomentStorage::kPingPong,
                       {5, 1, 3}, "P/pingpong/ragged"},
        Channel2DParam{Regularization::kProjective,
                       MomentStorage::kCircularShift,
                       {8, 1, 1}, "P/circshift/8x1"},
        Channel2DParam{Regularization::kProjective,
                       MomentStorage::kCircularShift,
                       {16, 1, 2}, "P/circshift/16x2"},
        Channel2DParam{Regularization::kRecursive, MomentStorage::kPingPong,
                       {8, 1, 2}, "R/pingpong/8x2"},
        Channel2DParam{Regularization::kRecursive,
                       MomentStorage::kCircularShift,
                       {8, 1, 1}, "R/circshift/8x1"}),
    [](const auto& pinfo) {
      std::string s = pinfo.param.label;
      for (auto& c : s) {
        if (c == '/' || c == 'x') c = '_';
      }
      return s;
    });

TEST(Equivalence2D, StMatchesReferenceBgkOnChannel) {
  const real_t tau = 0.9;
  const auto ch = Channel<D2Q9>::create(24, 16, 1, tau, 0.04);
  ReferenceEngine<D2Q9> ref(ch.geo, tau, CollisionScheme::kBGK);
  StEngine<D2Q9> st(ch.geo, tau, CollisionScheme::kBGK, 64);
  ch.attach(ref);
  ch.attach(st);
  for (int s = 0; s < 25; ++s) {
    ref.step();
    st.step();
  }
  EXPECT_LT(max_moment_diff(ref, st), 1e-12);
}

TEST(Equivalence2D, StMatchesReferenceProjective) {
  const real_t tau = 0.7;
  const auto ch = Channel<D2Q9>::create(20, 12, 1, tau, 0.03);
  ReferenceEngine<D2Q9> ref(ch.geo, tau, CollisionScheme::kProjective);
  StEngine<D2Q9> st(ch.geo, tau, CollisionScheme::kProjective, 32);
  ch.attach(ref);
  ch.attach(st);
  for (int s = 0; s < 20; ++s) {
    ref.step();
    st.step();
  }
  EXPECT_LT(max_moment_diff(ref, st), 1e-12);
}

// ---------------------------------------------------------------- channel 3D

struct Channel3DParam {
  Regularization reg;
  MomentStorage storage;
  MrConfig cfg;
};

class Channel3DEquivalence
    : public ::testing::TestWithParam<Channel3DParam> {};

TEST_P(Channel3DEquivalence, MrMatchesReferenceD3Q19) {
  const auto& param = GetParam();
  const real_t tau = 0.85;
  const auto ch = Channel<D3Q19>::create(14, 10, 8, tau, 0.04);

  ReferenceEngine<D3Q19> ref(ch.geo, tau,
                             param.reg == Regularization::kProjective
                                 ? CollisionScheme::kProjective
                                 : CollisionScheme::kRecursive);
  MrConfig cfg = param.cfg;
  cfg.storage = param.storage;
  MrEngine<D3Q19> mr(ch.geo, tau, param.reg, cfg);

  ch.attach(ref);
  ch.attach(mr);
  for (int s = 0; s < 12; ++s) {
    ref.step();
    mr.step();
  }
  EXPECT_LT(max_moment_diff(ref, mr), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, Channel3DEquivalence,
    ::testing::Values(
        Channel3DParam{Regularization::kProjective, MomentStorage::kPingPong,
                       {8, 4, 1}},
        Channel3DParam{Regularization::kProjective, MomentStorage::kPingPong,
                       {5, 3, 2}},
        Channel3DParam{Regularization::kProjective,
                       MomentStorage::kCircularShift, {8, 4, 1}},
        Channel3DParam{Regularization::kRecursive, MomentStorage::kPingPong,
                       {8, 4, 1}},
        Channel3DParam{Regularization::kRecursive,
                       MomentStorage::kCircularShift, {4, 4, 2}}));

TEST(Equivalence3D, StMatchesReferenceBgkOnChannel) {
  const real_t tau = 0.8;
  const auto ch = Channel<D3Q19>::create(12, 8, 6, tau, 0.03);
  ReferenceEngine<D3Q19> ref(ch.geo, tau, CollisionScheme::kBGK);
  StEngine<D3Q19> st(ch.geo, tau, CollisionScheme::kBGK, 128);
  ch.attach(ref);
  ch.attach(st);
  for (int s = 0; s < 12; ++s) {
    ref.step();
    st.step();
  }
  EXPECT_LT(max_moment_diff(ref, st), 1e-12);
}

// --------------------------------------------------- periodic (Taylor-Green)

template <class L>
void run_tg_equivalence(Regularization reg, MomentStorage storage,
                        MrConfig cfg, int steps) {
  const real_t tau = 0.8;
  const auto tg = TaylorGreen<L>::create(16, 0.03, L::D == 2 ? 1 : 8);
  ReferenceEngine<L> ref(tg.geo, tau,
                         reg == Regularization::kProjective
                             ? CollisionScheme::kProjective
                             : CollisionScheme::kRecursive);
  cfg.storage = storage;
  MrEngine<L> mr(tg.geo, tau, reg, cfg);
  tg.attach(ref);
  tg.attach(mr);
  for (int s = 0; s < steps; ++s) {
    ref.step();
    mr.step();
  }
  EXPECT_LT(max_moment_diff(ref, mr), 1e-12);
}

TEST(EquivalencePeriodic, TaylorGreen2DPingPong) {
  run_tg_equivalence<D2Q9>(Regularization::kProjective,
                           MomentStorage::kPingPong, {8, 1, 1}, 20);
}

TEST(EquivalencePeriodic, TaylorGreen2DCircularShift) {
  run_tg_equivalence<D2Q9>(Regularization::kProjective,
                           MomentStorage::kCircularShift, {8, 1, 2}, 20);
}

TEST(EquivalencePeriodic, TaylorGreen2DRecursive) {
  run_tg_equivalence<D2Q9>(Regularization::kRecursive,
                           MomentStorage::kPingPong, {4, 1, 3}, 15);
}

TEST(EquivalencePeriodic, TaylorGreen3DD3Q19) {
  run_tg_equivalence<D3Q19>(Regularization::kProjective,
                            MomentStorage::kPingPong, {8, 8, 1}, 8);
}

TEST(EquivalencePeriodic, TaylorGreen3DD3Q19CircularShift) {
  run_tg_equivalence<D3Q19>(Regularization::kProjective,
                            MomentStorage::kCircularShift, {8, 4, 1}, 8);
}

TEST(EquivalencePeriodic, TaylorGreen3DD3Q27Recursive) {
  run_tg_equivalence<D3Q27>(Regularization::kRecursive,
                            MomentStorage::kPingPong, {8, 8, 1}, 5);
}

// ----------------------------------------------------------- moving-wall BB

TEST(EquivalenceCavity, MrMatchesReference2D) {
  const real_t tau = 0.9;
  const auto cav = LidDrivenCavity<D2Q9>::create(16, 0.05);
  ReferenceEngine<D2Q9> ref(cav.geo, tau, CollisionScheme::kProjective);
  MrEngine<D2Q9> mr(cav.geo, tau, Regularization::kProjective, {8, 1, 2});
  cav.attach(ref);
  cav.attach(mr);
  for (int s = 0; s < 20; ++s) {
    ref.step();
    mr.step();
  }
  EXPECT_LT(max_moment_diff(ref, mr), 1e-12);
}

TEST(EquivalenceCavity, StMatchesReference2D) {
  const real_t tau = 0.9;
  const auto cav = LidDrivenCavity<D2Q9>::create(16, 0.05);
  ReferenceEngine<D2Q9> ref(cav.geo, tau, CollisionScheme::kBGK);
  StEngine<D2Q9> st(cav.geo, tau, CollisionScheme::kBGK);
  cav.attach(ref);
  cav.attach(st);
  for (int s = 0; s < 20; ++s) {
    ref.step();
    st.step();
  }
  EXPECT_LT(max_moment_diff(ref, st), 1e-12);
}

TEST(EquivalenceCavity, MrMatchesReference3D) {
  const real_t tau = 0.9;
  const auto cav = LidDrivenCavity<D3Q19>::create(10, 0.05);
  ReferenceEngine<D3Q19> ref(cav.geo, tau, CollisionScheme::kProjective);
  MrEngine<D3Q19> mr(cav.geo, tau, Regularization::kProjective, {4, 4, 1});
  cav.attach(ref);
  cav.attach(mr);
  for (int s = 0; s < 10; ++s) {
    ref.step();
    mr.step();
  }
  EXPECT_LT(max_moment_diff(ref, mr), 1e-12);
}

// ----------------------------------------------------------- push vs pull

TEST(PushPull, StPushMatchesReferenceOnChannel) {
  const real_t tau = 0.8;
  const auto ch = Channel<D2Q9>::create(20, 14, 1, tau, 0.04);
  ReferenceEngine<D2Q9> ref(ch.geo, tau, CollisionScheme::kBGK);
  StEngine<D2Q9> push(ch.geo, tau, CollisionScheme::kBGK, 64,
                      StreamMode::kPush);
  ch.attach(ref);
  ch.attach(push);
  for (int s = 0; s < 20; ++s) {
    ref.step();
    push.step();
  }
  EXPECT_LT(max_moment_diff(ref, push), 1e-12);
}

TEST(PushPull, PushAndPullProduceTheSameTrajectory) {
  const real_t tau = 0.7;
  const auto cav = LidDrivenCavity<D2Q9>::create(14, 0.06);
  StEngine<D2Q9> pull(cav.geo, tau, CollisionScheme::kBGK, 64,
                      StreamMode::kPull);
  StEngine<D2Q9> push(cav.geo, tau, CollisionScheme::kBGK, 64,
                      StreamMode::kPush);
  cav.attach(pull);
  cav.attach(push);
  for (int s = 0; s < 20; ++s) {
    pull.step();
    push.step();
  }
  EXPECT_LT(max_moment_diff(pull, push), 1e-12);
}

TEST(PushPull, PushMatchesReference3D) {
  const real_t tau = 0.9;
  const auto ch = Channel<D3Q19>::create(12, 8, 6, tau, 0.03);
  ReferenceEngine<D3Q19> ref(ch.geo, tau, CollisionScheme::kBGK);
  StEngine<D3Q19> push(ch.geo, tau, CollisionScheme::kBGK, 128,
                       StreamMode::kPush);
  ch.attach(ref);
  ch.attach(push);
  for (int s = 0; s < 10; ++s) {
    ref.step();
    push.step();
  }
  EXPECT_LT(max_moment_diff(ref, push), 1e-12);
}

// ------------------------------------------------ storage-policy equivalence

TEST(StoragePolicies, PingPongAndCircularShiftAgreeBitwiseOnChannel) {
  const real_t tau = 0.75;
  const auto ch = Channel<D2Q9>::create(20, 14, 1, tau, 0.05);
  MrEngine<D2Q9> a(ch.geo, tau, Regularization::kProjective,
                   {8, 1, 2, MomentStorage::kPingPong});
  MrEngine<D2Q9> b(ch.geo, tau, Regularization::kProjective,
                   {8, 1, 2, MomentStorage::kCircularShift});
  ch.attach(a);
  ch.attach(b);
  for (int s = 0; s < 30; ++s) {
    a.step();
    b.step();
  }
  EXPECT_EQ(max_moment_diff(a, b), 0.0);  // identical arithmetic order
}

TEST(TileConfigs, ResultsIndependentOfTileGeometry3D) {
  const real_t tau = 0.8;
  const auto ch = Channel<D3Q19>::create(12, 9, 7, tau, 0.03);
  MrEngine<D3Q19> a(ch.geo, tau, Regularization::kProjective, {4, 3, 1});
  MrEngine<D3Q19> b(ch.geo, tau, Regularization::kProjective, {9, 9, 3});
  ch.attach(a);
  ch.attach(b);
  for (int s = 0; s < 10; ++s) {
    a.step();
    b.step();
  }
  EXPECT_LT(max_moment_diff(a, b), 1e-12);
}

}  // namespace
}  // namespace mlbm
