// Section 4.2 kernel-analysis claim: "The arithmetic intensity of MR-R is
// almost 60% higher than MR-P for the NVIDIA V100." This harness measures
// FLOPs per fluid lattice update by replaying each kernel's arithmetic with
// the op-counting scalar, divides by the DRAM bytes of Table 2, and reports
// arithmetic intensity (FLOP/byte) per pattern and lattice, plus the MR-R /
// MR-P ratio the paper quotes.
#include <cstdio>

#include "core/lattice.hpp"
#include "perfmodel/opcount.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/roofline.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

template <class L>
void add_rows(AsciiTable& t, CsvWriter& csv) {
  const auto lat = perf::lattice_info<L>();
  double ai_mrp = 0, ai_mrr = 0;
  for (const Pattern p : {Pattern::kST, Pattern::kMRP, Pattern::kMRR}) {
    const double flops = perf::flops_per_flup<L>(p);
    const double bytes = perf::bytes_per_flup(p, lat);
    const double ai = flops / bytes;
    if (p == Pattern::kMRP) ai_mrp = ai;
    if (p == Pattern::kMRR) ai_mrr = ai;
    t.row({lat.name, perf::to_string(p), AsciiTable::num(flops, 0),
           AsciiTable::num(bytes, 0), AsciiTable::num(ai, 2)});
    csv.row({lat.name, perf::to_string(p), CsvWriter::num(flops),
             CsvWriter::num(bytes), CsvWriter::num(ai)});
  }
  std::printf("%s: MR-R arithmetic intensity is %.0f%% higher than MR-P "
              "(paper, D2Q9 on V100: \"almost 60%%\")\n",
              lat.name, 100.0 * (ai_mrr / ai_mrp - 1.0));
}

}  // namespace

int main() {
  perf::print_banner("Analysis", "Arithmetic intensity per pattern");
  AsciiTable t({"Lattice", "Pattern", "FLOPs/FLUP", "DRAM B/FLUP",
                "AI (FLOP/B)"});
  CsvWriter csv(perf::results_dir() + "/arithmetic_intensity.csv",
                {"lattice", "pattern", "flops", "bytes", "ai"});
  add_rows<D2Q9>(t, csv);
  add_rows<D3Q19>(t, csv);
  add_rows<D3Q15>(t, csv);
  add_rows<D3Q27>(t, csv);
  t.print();
  std::printf(
      "\nThe op-counting replay assumes a fully unrolled kernel (zero\n"
      "Hermite coefficients elided, a3/a4 hoisted). Our MR-R/MR-P ratio is\n"
      "higher than the paper's profiler-derived 60%% because profilers count\n"
      "retired instructions (including address math the replay omits), which\n"
      "dilutes the FLOP-only ratio.\n");
  return 0;
}
