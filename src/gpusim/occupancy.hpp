// Occupancy calculator.
//
// The paper's MR implementation notes that "optimal performance is achieved
// with two or more thread blocks per SM, so the targeted tile size and shared
// memory usage per column must be adjusted to account for this". This module
// reproduces the standard CUDA/HIP occupancy computation from the DeviceSpec
// limits so engines can validate their launch configuration and the
// performance model can derive an occupancy factor.
#pragma once

#include "gpusim/device.hpp"
#include "gpusim/dim3.hpp"

namespace mlbm::gpusim {

struct Occupancy {
  int blocks_per_sm = 0;       ///< concurrently resident blocks per SM/CU
  int limit_by_shared = 0;     ///< block residency limit from shared memory
  int limit_by_threads = 0;    ///< block residency limit from thread count
  int limit_by_blocks = 0;     ///< hardware max resident blocks
  double occupancy = 0;        ///< resident threads / max threads per SM
  bool valid = false;          ///< launch fits hardware limits at all
};

/// Computes block residency and occupancy for a launch of `threads_per_block`
/// threads using `shared_bytes_per_block` bytes of shared memory.
Occupancy compute_occupancy(const DeviceSpec& dev, int threads_per_block,
                            std::size_t shared_bytes_per_block);

/// Convenience overload for a Dim3 block shape.
Occupancy compute_occupancy(const DeviceSpec& dev, const Dim3& block,
                            std::size_t shared_bytes_per_block);

}  // namespace mlbm::gpusim
