#include "fleet/job.hpp"

#include <cstring>
#include <sstream>

#include "core/regularization.hpp"
#include "engines/factory.hpp"
#include "util/error.hpp"
#include "workloads/cavity.hpp"
#include "workloads/cylinder_wake.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm::fleet {

std::string JobSpec::name() const {
  std::ostringstream os;
  os << "job" << id << ":" << to_string(workload) << "-"
     << perf::to_string(pattern) << "-" << to_string(precision) << "-n" << n;
  return os.str();
}

namespace {

std::unique_ptr<Engine<D2Q9>> build_engine(const JobSpec& spec, Geometry geo,
                                           real_t tau) {
  if (spec.pattern == perf::Pattern::kST) {
    return make_st_engine<D2Q9>(spec.precision, std::move(geo), tau);
  }
  const Regularization reg = spec.pattern == perf::Pattern::kMRP
                                 ? Regularization::kProjective
                                 : Regularization::kRecursive;
  // Small-domain sweep jobs: a modest tile keeps the MR sweep's working set
  // matched to the job size instead of the production default.
  MrConfig config;
  config.tile_x = 8;
  return make_mr_engine<D2Q9>(spec.precision, std::move(geo), tau, reg, config);
}

}  // namespace

std::unique_ptr<Engine<D2Q9>> make_job_engine(const JobSpec& spec) {
  if (spec.n < 4) {
    throw ConfigError("fleet job " + std::to_string(spec.id) +
                      ": n must be >= 4");
  }
  if (spec.steps <= 0) {
    throw ConfigError("fleet job " + std::to_string(spec.id) +
                      ": steps must be positive");
  }
  switch (spec.workload) {
    case Workload::kTaylorGreen: {
      const auto tg =
          TaylorGreen<D2Q9>::create(spec.n, static_cast<real_t>(spec.amplitude));
      auto eng = build_engine(spec, tg.geo, static_cast<real_t>(spec.tau));
      tg.attach(*eng);
      return eng;
    }
    case Workload::kCavity: {
      const auto cav = LidDrivenCavity<D2Q9>::create(
          spec.n, static_cast<real_t>(spec.amplitude));
      auto eng = build_engine(spec, cav.geo, static_cast<real_t>(spec.tau));
      cav.attach(*eng);
      return eng;
    }
    case Workload::kCylinder: {
      const auto wake = CylinderWake<D2Q9>::create(
          spec.n, static_cast<real_t>(spec.amplitude),
          static_cast<real_t>(spec.re));
      // The wake prescribes its own tau from the Reynolds number; the
      // boundary pass it registers captures its state by shared_ptr, so the
      // engine stays valid after `wake` goes out of scope.
      auto eng = build_engine(spec, wake.geo, wake.tau);
      wake.attach(*eng);
      return eng;
    }
  }
  throw ConfigError("fleet job " + std::to_string(spec.id) +
                    ": unknown workload");
}

JobFields job_fields(const Engine<D2Q9>& eng) {
  JobFields out;
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  const Box& b = eng.geometry().box;
  for (int y = 0; y < b.ny; ++y) {
    for (int x = 0; x < b.nx; ++x) {
      const auto m = eng.moments_at(x, y, 0);
      mix(m.rho);
      mix(m.u[0]);
      mix(m.u[1]);
      mix(m.pi[0]);
      mix(m.pi[1]);
      mix(m.pi[2]);
      out.mass += m.rho;
      out.kinetic_energy +=
          0.5 * m.rho * (m.u[0] * m.u[0] + m.u[1] * m.u[1]);
    }
  }
  out.moment_hash = h;
  return out;
}

}  // namespace mlbm::fleet
