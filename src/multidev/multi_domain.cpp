#include "multidev/multi_domain.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "gpusim/traffic.hpp"
#include "util/error.hpp"

namespace mlbm {

std::vector<SlabInfo> make_slabs(int nx, int ndev, int ghost_depth) {
  if (ndev < 1 || ndev > nx) {
    throw ConfigError("make_slabs: need 1 <= ndev <= nx, got ndev=" +
                      std::to_string(ndev) + " nx=" + std::to_string(nx));
  }
  if (ghost_depth < 1) {
    throw ConfigError("make_slabs: ghost_depth must be >= 1, got " +
                      std::to_string(ghost_depth));
  }
  const int base = nx / ndev;
  if (ndev > 1 && base < ghost_depth) {
    // The exchange reads `ghost_depth` owned planes per interface side; a
    // narrower slab would have to forward a neighbour's ghost data.
    throw ConfigError("make_slabs: slab width " + std::to_string(base) +
                      " is narrower than ghost depth " +
                      std::to_string(ghost_depth));
  }
  std::vector<SlabInfo> slabs(static_cast<std::size_t>(ndev));
  const int rem = nx % ndev;
  int x = 0;
  for (int d = 0; d < ndev; ++d) {
    SlabInfo& s = slabs[static_cast<std::size_t>(d)];
    s.x_begin = x;
    s.x_end = x + base + (d < rem ? 1 : 0);
    s.has_left = d > 0;
    s.has_right = d < ndev - 1;
    s.ghost_depth = ghost_depth;
    x = s.x_end;
  }
  return slabs;
}

Geometry slab_geometry(const Geometry& global, const SlabInfo& slab) {
  Box local = global.box;
  local.nx = slab.local_nx();
  Geometry geo(local);
  geo.bc = global.bc;
  // Interior interfaces drop outgoing populations; their planes are ghost
  // nodes rebuilt by the exchange after every step.
  if (slab.has_left) geo.bc.face[0][0].type = FaceBC::kOpen;
  if (slab.has_right) geo.bc.face[0][1].type = FaceBC::kOpen;

  // Copy node kinds for the owned range plus ghost planes (ghost kinds are
  // irrelevant to the update but keep diagnostics meaningful).
  const int g0 = slab.x_begin - (slab.has_left ? slab.ghost_depth : 0);
  for (int z = 0; z < local.nz; ++z) {
    for (int y = 0; y < local.ny; ++y) {
      for (int lx = 0; lx < local.nx; ++lx) {
        const int gx = g0 + lx;
        geo.set(lx, y, z, global.at(gx, y, z));
      }
    }
  }
  return geo;
}

template <class L>
MultiDomainEngine<L>::MultiDomainEngine(Geometry global, real_t tau, int ndev,
                                        const EngineFactory& factory,
                                        int ghost_depth)
    : Engine<L>(std::move(global), tau),
      slabs_(make_slabs(this->geo_.box.nx, ndev, ghost_depth)),
      ghost_depth_(ghost_depth) {
  // Degenerate decompositions must fail loudly here, not as UB on
  // engines_.front() (or worse, inside a slab engine) later: make_slabs
  // already enforces 1 <= ndev <= nx, this validates what it produced and
  // the cross extents the slabs share.
  const Box& gb = this->geo_.box;
  if (gb.nx < 1 || gb.ny < 1 || gb.nz < 1) {
    throw ConfigError("MultiDomainEngine: empty global box " +
                      std::to_string(gb.nx) + "x" + std::to_string(gb.ny) +
                      "x" + std::to_string(gb.nz));
  }
  if (slabs_.empty()) {
    throw ConfigError("MultiDomainEngine: decomposition produced no slabs");
  }
  for (const SlabInfo& s : slabs_) {
    if (s.x_end <= s.x_begin) {
      throw ConfigError("MultiDomainEngine: empty slab [" +
                        std::to_string(s.x_begin) + ", " +
                        std::to_string(s.x_end) + ")");
    }
  }
  if (ndev > 1 && this->geo_.bc.periodic(0)) {
    throw ConfigError(
        "MultiDomainEngine: a periodic decomposition axis is not supported; "
        "decompose channel-type (open/wall x) domains");
  }
  if (!factory) {
    throw ConfigError("MultiDomainEngine: engine factory must not be null");
  }
  engines_.reserve(slabs_.size());
  for (int d = 0; d < static_cast<int>(slabs_.size()); ++d) {
    engines_.push_back(
        factory(slab_geometry(this->geo_, slabs_[static_cast<std::size_t>(d)]), d));
    if (engines_.back() == nullptr) {
      throw ConfigError("MultiDomainEngine: factory returned null for slab " +
                        std::to_string(d));
    }
    if (std::abs(engines_.back()->tau() - tau) > real_t(1e-12)) {
      throw ConfigError(
          "MultiDomainEngine: slab engine tau differs from global tau");
    }
  }
}

template <class L>
int MultiDomainEngine<L>::owner_of(int gx) const {
  for (int d = 0; d < devices(); ++d) {
    const SlabInfo& s = slabs_[static_cast<std::size_t>(d)];
    if (gx >= s.x_begin && gx < s.x_end) return d;
  }
  throw OutOfRangeError("MultiDomainEngine: x=" + std::to_string(gx) +
                        " outside [0, " + std::to_string(this->geo_.box.nx) +
                        ")");
}

template <class L>
std::uint64_t MultiDomainEngine<L>::fault_sites() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->fault_sites();
  return total;
}

template <class L>
void MultiDomainEngine<L>::inject_storage_bitflip(std::uint64_t site,
                                                  unsigned bit) {
  const std::uint64_t total = fault_sites();
  if (total == 0) return;
  std::uint64_t s = site % total;
  for (auto& e : engines_) {
    const std::uint64_t n = e->fault_sites();
    if (s < n) {
      e->inject_storage_bitflip(s, bit);
      return;
    }
    s -= n;
  }
}

template <class L>
std::string MultiDomainEngine<L>::raw_state_tag() const {
  std::string tag = "MULTI";
  for (const auto& e : engines_) {
    const std::string sub = e->raw_state_tag();
    if (sub.empty()) return {};
    tag += "[" + sub + "]";
  }
  return tag;
}

template <class L>
void MultiDomainEngine<L>::serialize_raw_state(std::vector<real_t>& out) const {
  // Length-prefix each slab blob. The count fits a real_t exactly (state
  // sizes are far below 2^53 elements), so the snapshot stays one flat
  // real_t vector like the moment payload.
  std::vector<real_t> sub;
  for (const auto& e : engines_) {
    sub.clear();
    e->serialize_raw_state(sub);
    out.push_back(static_cast<real_t>(sub.size()));
    out.insert(out.end(), sub.begin(), sub.end());
  }
}

template <class L>
void MultiDomainEngine<L>::restore_raw_state(const std::vector<real_t>& in) {
  std::size_t pos = 0;
  for (auto& e : engines_) {
    if (pos >= in.size()) {
      throw ConfigError("MultiDomainEngine: raw snapshot truncated");
    }
    const auto n = static_cast<std::size_t>(in[pos]);
    ++pos;
    if (pos + n > in.size()) {
      throw ConfigError("MultiDomainEngine: raw snapshot slab overruns blob");
    }
    const auto* base = in.data() + pos;
    e->restore_raw_state(std::vector<real_t>(base, base + n));
    pos += n;
  }
  if (pos != in.size()) {
    throw ConfigError("MultiDomainEngine: raw snapshot has trailing data");
  }
}

template <class L>
void MultiDomainEngine<L>::set_time(int t) {
  this->t_ = t;
  for (auto& e : engines_) e->set_time(t);
}

template <class L>
void MultiDomainEngine<L>::initialize(const typename Engine<L>::InitFn& init) {
  // Each slab initializes its whole local domain, ghosts included, mapping
  // local to global coordinates.
  for (int d = 0; d < devices(); ++d) {
    const SlabInfo& s = slabs_[static_cast<std::size_t>(d)];
    const int g0 = s.x_begin - (s.has_left ? s.ghost_depth : 0);
    engines_[static_cast<std::size_t>(d)]->initialize(
        [&init, g0](int lx, int y, int z) { return init(g0 + lx, y, z); });
  }
}

template <class L>
Moments<L> MultiDomainEngine<L>::moments_at(int gx, int y, int z) const {
  const int d = owner_of(gx);
  const SlabInfo& s = slabs_[static_cast<std::size_t>(d)];
  return engines_[static_cast<std::size_t>(d)]->moments_at(s.local_x(gx), y, z);
}

template <class L>
void MultiDomainEngine<L>::impose(int gx, int y, int z, const Moments<L>& m) {
  const int d = owner_of(gx);
  const SlabInfo& s = slabs_[static_cast<std::size_t>(d)];
  engines_[static_cast<std::size_t>(d)]->impose(s.local_x(gx), y, z, m);
  // Mirror into neighbour ghost copies of this plane, if any. SlabInfo's
  // local_x extends naturally past the owned range, so the neighbour's
  // local coordinate of a plane inside its ghost band needs no special
  // casing.
  if (d > 0 && gx - s.x_begin < ghost_depth_) {
    const SlabInfo& left = slabs_[static_cast<std::size_t>(d - 1)];
    if (left.has_right) {
      engines_[static_cast<std::size_t>(d - 1)]->impose(left.local_x(gx), y, z,
                                                        m);
    }
  }
  if (d + 1 < devices() && s.x_end - 1 - gx < ghost_depth_) {
    const SlabInfo& right = slabs_[static_cast<std::size_t>(d + 1)];
    if (right.has_left) {
      engines_[static_cast<std::size_t>(d + 1)]->impose(right.local_x(gx), y, z,
                                                        m);
    }
  }
}

template <class L>
std::size_t MultiDomainEngine<L>::state_bytes() const {
  std::size_t total = 0;
  for (const auto& e : engines_) total += e->state_bytes();
  return total;
}

template <class L>
std::uint64_t MultiDomainEngine<L>::exchanged_values_per_step() const {
  const Box& b = this->geo_.box;
  const auto interfaces = static_cast<std::uint64_t>(devices() - 1);
  return interfaces * 2ull * static_cast<std::uint64_t>(ghost_depth_) *
         static_cast<std::uint64_t>(b.ny) * static_cast<std::uint64_t>(b.nz) *
         static_cast<std::uint64_t>(L::M);
}

template <class L>
gpusim::CommStats MultiDomainEngine<L>::comm_stats() const {
  gpusim::CommStats total;
  for (const auto& e : engines_) {
    if (const gpusim::Profiler* p = e->profiler()) {
      total += p->comm_stats();
    }
  }
  // Per-device steps would sum to devices() x the step count; report the
  // global step count instead.
  total.steps = 0;
  for (const auto& e : engines_) {
    if (const gpusim::Profiler* p = e->profiler()) {
      total.steps = std::max(total.steps, p->comm_stats().steps);
    }
  }
  return total;
}

template <class L>
void MultiDomainEngine<L>::exchange() {
  const Box& b = this->geo_.box;
  const int depth = ghost_depth_;
  for (int d = 0; d + 1 < devices(); ++d) {
    Engine<L>& left = *engines_[static_cast<std::size_t>(d)];
    Engine<L>& right = *engines_[static_cast<std::size_t>(d + 1)];
    const SlabInfo& ls = slabs_[static_cast<std::size_t>(d)];
    const SlabInfo& rs = slabs_[static_cast<std::size_t>(d + 1)];
    // Left's right ghost band <- right's first `depth` owned planes; right's
    // left ghost band <- left's last `depth` owned planes.
    const int l_last_owned = ls.local_x(ls.x_end - 1);
    const int r_first_owned = rs.local_x(rs.x_begin);
    for (int k = 0; k < depth; ++k) {
      for (int z = 0; z < b.nz; ++z) {
        for (int y = 0; y < b.ny; ++y) {
          left.impose(l_last_owned + 1 + k, y, z,
                      right.moments_at(r_first_owned + k, y, z));
          right.impose(r_first_owned - 1 - k, y, z,
                       left.moments_at(l_last_owned - k, y, z));
        }
      }
    }
  }
  exchanged_total_ += exchanged_values_per_step();
}

template <class L>
void MultiDomainEngine<L>::capture_interface_planes(int d, int par) {
  const Box& b = this->geo_.box;
  const int depth = ghost_depth_;
  const std::size_t plane = static_cast<std::size_t>(b.ny) *
                            static_cast<std::size_t>(b.nz);
  const SlabInfo& s = slabs_[static_cast<std::size_t>(d)];
  Engine<L>& e = *engines_[static_cast<std::size_t>(d)];
  std::vector<Moments<L>>& stage = stage_[par];
  auto capture_block = [&](std::size_t block, int gx0) {
    for (int k = 0; k < depth; ++k) {
      const int lx = s.local_x(gx0 + k);
      std::size_t at = (block * static_cast<std::size_t>(depth) +
                        static_cast<std::size_t>(k)) *
                       plane;
      for (int z = 0; z < b.nz; ++z) {
        for (int y = 0; y < b.ny; ++y, ++at) {
          stage[at] = e.moments_at(lx, y, z);
        }
      }
    }
  };
  // Block (interface * 2 + dir): dir 0 carries slab i's last owned planes
  // rightward, dir 1 slab i+1's first owned planes leftward.
  if (s.has_right) {
    capture_block(static_cast<std::size_t>(d) * 2, s.x_end - depth);
  }
  if (s.has_left) {
    capture_block(static_cast<std::size_t>(d - 1) * 2 + 1, s.x_begin);
  }
}

template <class L>
void MultiDomainEngine<L>::apply_staged_ghosts(int par) {
  const Box& b = this->geo_.box;
  const int depth = ghost_depth_;
  const std::size_t plane = static_cast<std::size_t>(b.ny) *
                            static_cast<std::size_t>(b.nz);
  const std::vector<Moments<L>>& stage = stage_[par];
  auto apply_block = [&](std::size_t block, Engine<L>& e, int lx0) {
    for (int k = 0; k < depth; ++k) {
      std::size_t at = (block * static_cast<std::size_t>(depth) +
                        static_cast<std::size_t>(k)) *
                       plane;
      for (int z = 0; z < b.nz; ++z) {
        for (int y = 0; y < b.ny; ++y, ++at) {
          e.impose(lx0 + k, y, z, stage[at]);
        }
      }
    }
  };
  for (int i = 0; i + 1 < devices(); ++i) {
    Engine<L>& left = *engines_[static_cast<std::size_t>(i)];
    Engine<L>& right = *engines_[static_cast<std::size_t>(i + 1)];
    const SlabInfo& ls = slabs_[static_cast<std::size_t>(i)];
    const SlabInfo& rs = slabs_[static_cast<std::size_t>(i + 1)];
    // dir 0 (left slab's planes) lands in the right slab's left ghost band,
    // whose local x runs [0, depth) in ascending global order; dir 1 lands
    // in the left slab's right ghost band, starting one past its last owned
    // plane.
    apply_block(static_cast<std::size_t>(i) * 2, right,
                rs.local_x(rs.x_begin) - depth);
    apply_block(static_cast<std::size_t>(i) * 2 + 1, left,
                ls.local_x(ls.x_end - 1) + 1);
  }
}

template <class L>
void MultiDomainEngine<L>::account_overlap(
    const std::vector<std::uint64_t>& frontier_bytes,
    const std::vector<std::uint64_t>& interior_bytes) {
  const int n = devices();
  const std::uint64_t ghost_bytes = ghost_bytes_per_direction();
  gpusim::Timeline tl;
  std::vector<int> dev_stream(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) {
    dev_stream[static_cast<std::size_t>(d)] =
        tl.add_stream("dev" + std::to_string(d));
  }
  // Per-device compute stream: frontier launch, then interior launch (the
  // stream orders them; no event needed).
  std::vector<gpusim::Event> frontier_ev(static_cast<std::size_t>(n));
  std::vector<gpusim::Event> interior_ev(static_cast<std::size_t>(n));
  // A zero-byte phase means the engine fell back to a single whole-step
  // launch (degenerate split, e.g. a slab thinner than the tile granule):
  // no second launch happened, so no launch overhead is charged for it.
  auto phase_s = [&](std::uint64_t bytes) {
    return bytes > 0 ? gpusim::kernel_duration_s(dev_spec_, bytes) : 0.0;
  };
  for (int d = 0; d < n; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    frontier_ev[sd] = tl.enqueue(dev_stream[sd], phase_s(frontier_bytes[sd]),
                                 {}, "frontier d" + std::to_string(d));
    interior_ev[sd] = tl.enqueue(dev_stream[sd], phase_s(interior_bytes[sd]),
                                 {}, "interior d" + std::to_string(d));
  }
  // Each interface gets one modeled link stream per direction (full-duplex
  // DMA engines); a transfer departs once its source's frontier completes.
  std::vector<gpusim::Event> from_left(static_cast<std::size_t>(n));
  std::vector<gpusim::Event> from_right(static_cast<std::size_t>(n));
  const double xfer_s = link_spec_.transfer_s(ghost_bytes);
  for (int i = 0; i + 1 < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    const int lr = tl.add_stream("link" + std::to_string(i) + ".lr");
    const int rl = tl.add_stream("link" + std::to_string(i) + ".rl");
    from_left[si + 1] = tl.enqueue(lr, xfer_s, {frontier_ev[si]},
                                   "ghost " + std::to_string(i) + "->" +
                                       std::to_string(i + 1));
    from_right[si] = tl.enqueue(rl, xfer_s, {frontier_ev[si + 1]},
                                "ghost " + std::to_string(i + 1) + "->" +
                                    std::to_string(i));
  }
  // Attribution: a device's next step can start only when its interior
  // launch AND every incoming ghost transfer have completed; communication
  // time past the interior completion is exposed, the rest is hidden.
  for (int d = 0; d < n; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    gpusim::Profiler* p = engines_[sd]->profiler();
    if (p == nullptr) continue;
    double comm = 0;
    double arrival = 0;
    if (from_left[sd].valid()) {
      comm += xfer_s;
      arrival = std::max(arrival, tl.complete_time(from_left[sd]));
    }
    if (from_right[sd].valid()) {
      comm += xfer_s;
      arrival = std::max(arrival, tl.complete_time(from_right[sd]));
    }
    const double interior_end = tl.complete_time(interior_ev[sd]);
    const double exposed =
        std::min(comm, std::max(0.0, arrival - interior_end));
    gpusim::CommStats cs;
    cs.compute_s = tl.complete_time(interior_ev[sd]);
    cs.comm_s = comm;
    cs.exposed_s = exposed;
    cs.hidden_s = comm - exposed;
    cs.steps = 1;
    p->comm_stats() += cs;
  }
  last_tl_ = std::move(tl);
}

template <class L>
void MultiDomainEngine<L>::step_lockstep() {
  const std::uint64_t ghost_bytes = ghost_bytes_per_direction();
  const double xfer_s = link_spec_.transfer_s(ghost_bytes);
  for (int d = 0; d < devices(); ++d) {
    const auto sd = static_cast<std::size_t>(d);
    Engine<L>& e = *engines_[sd];
    gpusim::Profiler* p = have_model_ ? e.profiler() : nullptr;
    gpusim::TrafficSnapshot before;
    if (p != nullptr) before = p->counter().snapshot();
    e.step();
    if (p == nullptr) continue;
    // Lockstep exposes all communication: the exchange starts only after
    // every slab has finished its full step, and the next step waits for it.
    const gpusim::TrafficSnapshot delta = p->counter().snapshot() - before;
    gpusim::CommStats cs;
    cs.compute_s = gpusim::kernel_duration_s(
        dev_spec_, delta.bytes_read + delta.bytes_written);
    if (!skip_exchange_) {
      const SlabInfo& s = slabs_[sd];
      cs.comm_s = ((s.has_left ? 1 : 0) + (s.has_right ? 1 : 0)) * xfer_s;
      cs.exposed_s = cs.comm_s;
    }
    cs.steps = 1;
    p->comm_stats() += cs;
  }
  if (!skip_exchange_) exchange();
}

template <class L>
void MultiDomainEngine<L>::step_overlapped() {
  const Box& b = this->geo_.box;
  const int depth = ghost_depth_;
  const int n = devices();
  const int par = static_cast<int>(this->t_ & 1);
  const std::size_t stage_n = static_cast<std::size_t>(n - 1) * 2 *
                              static_cast<std::size_t>(depth) *
                              static_cast<std::size_t>(b.ny) *
                              static_cast<std::size_t>(b.nz);
  stage_[par].resize(stage_n);

  std::vector<std::uint64_t> frontier_bytes(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> interior_bytes(static_cast<std::size_t>(n), 0);
  for (int d = 0; d < n; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    const SlabInfo& s = slabs_[sd];
    Engine<L>& e = *engines_[sd];
    // The frontier must finalize the ghost band (depth planes of open-face
    // junk the exchange overwrites) plus the owned planes the neighbours
    // need — 2 x depth planes per interface side.
    const FrontierSpec fs{s.has_left ? 2 * depth : 0,
                          s.has_right ? 2 * depth : 0};
    gpusim::Profiler* p = have_model_ ? e.profiler() : nullptr;
    gpusim::TrafficSnapshot t0, t1;
    if (p != nullptr) t0 = p->counter().snapshot();
    e.step_split(fs, [&] {
      if (p != nullptr) t1 = p->counter().snapshot();
    });
    if (p != nullptr) {
      const gpusim::TrafficSnapshot t2 = p->counter().snapshot();
      const gpusim::TrafficSnapshot df = t1 - t0;
      const gpusim::TrafficSnapshot di = t2 - t1;
      frontier_bytes[sd] = df.bytes_read + df.bytes_written;
      interior_bytes[sd] = di.bytes_read + di.bytes_written;
    }
    // Capture after the step: the frontier contract guarantees the
    // interface planes are final when on_frontier fires and that no later
    // launch touches them, so capturing here reads the same values while
    // the engine's phase bookkeeping (ping-pong side, AA parity, clock) is
    // consistent for moments_at.
    capture_interface_planes(d, par);
  }
  apply_staged_ghosts(par);
  exchanged_total_ += exchanged_values_per_step();
  if (have_model_) account_overlap(frontier_bytes, interior_bytes);
}

template <class L>
void MultiDomainEngine<L>::do_step() {
  if (mode_ == ExchangeMode::kOverlap && devices() > 1 && !skip_exchange_) {
    step_overlapped();
    return;
  }
  step_lockstep();
}

template class MultiDomainEngine<D2Q9>;
template class MultiDomainEngine<D3Q19>;
template class MultiDomainEngine<D3Q27>;
template class MultiDomainEngine<D3Q15>;

}  // namespace mlbm
