#include "analysis/static/contract.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace mlbm::analysis {

namespace {

std::vector<int> iota_comps(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

std::array<int, 3> neg(const std::array<int, 3>& c) {
  return {-c[0], -c[1], -c[2]};
}

}  // namespace

EngineContract st_contract(LatticeDesc lat, int elem_bytes, bool push,
                           bool batched_io) {
  EngineContract ec;
  ec.pattern = push ? "ST-push" : "ST";
  ec.elem_bytes = elem_bytes;
  ec.arrays = {{"f_src", lat.q}, {"f_dst", lat.q}};
  ec.ghost_depth_declared = 1;

  NodeKernelContract k;
  k.tag = push ? "st.push" : "st.pull";
  const std::string base =
      std::string(push ? "st_push_collide_stream_" : "st_stream_collide_") +
      lat.name;
  k.kernels = {base, base + "_frontier"};
  if (!push) {
    // The sparse path is pull-only; its tile launches obey the same contract.
    k.kernels.push_back("st_sparse_" + lat.name + "_fluid");
    k.kernels.push_back("st_sparse_" + lat.name + "_mixed");
    k.kernels.push_back("st_sparse_" + lat.name + "_fluid_frontier");
    k.kernels.push_back("st_sparse_" + lat.name + "_mixed_frontier");
  }
  if (push) {
    // Collide-then-stream: one coalesced span load of the node's own
    // populations, then Q scalar scatters to the downwind neighbours.
    AccessDesc rd;
    rd.array = 0;
    rd.comps = iota_comps(lat.q);
    rd.span = batched_io;
    k.accesses.push_back(rd);
    for (int i = 0; i < lat.q; ++i) {
      AccessDesc wr;
      wr.array = 1;
      wr.write = true;
      wr.off = lat.c[static_cast<std::size_t>(i)];
      wr.comps = {i};
      k.accesses.push_back(wr);
    }
  } else {
    // Stream-then-collide: Q scalar gathers from the upwind neighbours, then
    // one coalesced span store of the node's own populations.
    for (int i = 0; i < lat.q; ++i) {
      AccessDesc rd;
      rd.array = 0;
      rd.off = neg(lat.c[static_cast<std::size_t>(i)]);
      rd.comps = {i};
      k.accesses.push_back(rd);
    }
    AccessDesc wr;
    wr.array = 1;
    wr.write = true;
    wr.comps = iota_comps(lat.q);
    wr.span = batched_io;
    k.accesses.push_back(wr);
  }
  ec.node_kernels.push_back(std::move(k));
  ec.lattice = std::move(lat);
  return ec;
}

EngineContract aa_contract(LatticeDesc lat, int elem_bytes, bool batched_io) {
  EngineContract ec;
  ec.pattern = "ST-AA";
  ec.elem_bytes = elem_bytes;
  ec.steps_per_cycle = 2;
  ec.arrays = {{"f", lat.q}};
  ec.ghost_depth_declared = 2;

  // Even step (t % 2 == 0): pure node-local slot swap — every access lands
  // on the executing node's own cell, so in-place safety is immediate.
  NodeKernelContract even;
  even.tag = "aa.even";
  even.kernels = {"aa_even_" + lat.name, "aa_even_" + lat.name + "_frontier",
                  "aa_sparse_" + lat.name + "_even_fluid",
                  "aa_sparse_" + lat.name + "_even_mixed",
                  "aa_sparse_" + lat.name + "_even_fluid_frontier",
                  "aa_sparse_" + lat.name + "_even_mixed_frontier"};
  {
    AccessDesc rd;
    rd.array = 0;
    rd.comps = iota_comps(lat.q);
    rd.span = batched_io;
    even.accesses.push_back(rd);
    AccessDesc wr = rd;
    wr.write = true;
    even.accesses.push_back(wr);
  }
  ec.node_kernels.push_back(std::move(even));

  // Odd step (t % 2 == 1): the two half-streams. Node x gathers slot
  // opposite(i) of x - c_i and scatters slot i of x + c_i — the Bailey
  // construction whose in-place safety the analyzer re-proves: the gather
  // and scatter descriptors that share a component also share an offset, so
  // every lattice word has reader == writer.
  NodeKernelContract odd;
  odd.tag = "aa.odd";
  odd.kernels = {"aa_odd_" + lat.name, "aa_odd_" + lat.name + "_frontier",
                 "aa_sparse_" + lat.name + "_odd_fluid",
                 "aa_sparse_" + lat.name + "_odd_mixed",
                 "aa_sparse_" + lat.name + "_odd_fluid_frontier",
                 "aa_sparse_" + lat.name + "_odd_mixed_frontier"};
  for (int i = 0; i < lat.q; ++i) {
    AccessDesc rd;
    rd.array = 0;
    rd.off = neg(lat.c[static_cast<std::size_t>(i)]);
    rd.comps = {lat.opposite[static_cast<std::size_t>(i)]};
    odd.accesses.push_back(rd);
  }
  for (int i = 0; i < lat.q; ++i) {
    AccessDesc wr;
    wr.array = 0;
    wr.write = true;
    wr.off = lat.c[static_cast<std::size_t>(i)];
    wr.comps = {i};
    odd.accesses.push_back(wr);
  }
  ec.node_kernels.push_back(std::move(odd));
  ec.lattice = std::move(lat);
  return ec;
}

EngineContract ep_contract(LatticeDesc lat, int elem_bytes) {
  EngineContract ec;
  ec.pattern = "EP";
  ec.elem_bytes = elem_bytes;
  ec.steps_per_cycle = 2;
  ec.arrays = {{"f", lat.q}};
  ec.ghost_depth_declared = 2;

  // With the plus half-set H = { i : i < opposite(i) }, the even step reads
  // slot opposite(i) — of the node itself for i in H and the rest, of the
  // upwind neighbour for i not in H — and writes slot i of the downwind
  // neighbour (i in H) or the node itself (otherwise); the odd step swaps
  // the slot roles. In both parities the read and write descriptors that
  // share a slot also share an offset, so every lattice word has
  // reader == writer — the esoteric invariant the analyzer re-proves.
  const auto phase = [&](bool even) {
    NodeKernelContract k;
    const std::string par = even ? "even" : "odd";
    k.tag = "ep." + par;
    k.kernels = {"ep_" + par + "_" + lat.name,
                 "ep_" + par + "_" + lat.name + "_frontier",
                 "ep_sparse_" + lat.name + "_" + par + "_fluid",
                 "ep_sparse_" + lat.name + "_" + par + "_mixed",
                 "ep_sparse_" + lat.name + "_" + par + "_fluid_frontier",
                 "ep_sparse_" + lat.name + "_" + par + "_mixed_frontier"};
    for (int i = 0; i < lat.q; ++i) {
      const int j = lat.opposite[static_cast<std::size_t>(i)];
      AccessDesc rd;
      rd.array = 0;
      rd.comps = {even ? j : i};
      rd.off = i <= j ? std::array<int, 3>{0, 0, 0}
                      : neg(lat.c[static_cast<std::size_t>(i)]);
      k.accesses.push_back(rd);
    }
    for (int i = 0; i < lat.q; ++i) {
      const int j = lat.opposite[static_cast<std::size_t>(i)];
      AccessDesc wr;
      wr.array = 0;
      wr.write = true;
      wr.comps = {even ? i : j};
      wr.off = i < j ? lat.c[static_cast<std::size_t>(i)]
                     : std::array<int, 3>{0, 0, 0};
      k.accesses.push_back(wr);
    }
    return k;
  };
  ec.node_kernels.push_back(phase(true));
  ec.node_kernels.push_back(phase(false));
  ec.lattice = std::move(lat);
  return ec;
}

EngineContract mr_contract(LatticeDesc lat, int elem_bytes, bool projective,
                           bool single_buffer, int tile_x, int tile_y,
                           int tile_s, bool batched_io, int write_behind,
                           int ring_shift_bias, bool barrier_between_phases,
                           int cross_halo) {
  EngineContract ec;
  ec.pattern = projective ? "MR-P" : "MR-R";
  ec.elem_bytes = elem_bytes;
  ec.arrays = single_buffer
                  ? std::vector<ArrayDecl>{{"mom", lat.m}}
                  : std::vector<ArrayDecl>{{"mom_src", lat.m},
                                           {"mom_dst", lat.m}};
  ec.ghost_depth_declared = 1;

  RingKernelContract rk;
  rk.tag = "mr.sweep";
  const std::string base =
      std::string(projective ? "mr_p_" : "mr_r_") + lat.name;
  rk.kernels = {base, base + "_frontier"};
  rk.tile_x = tile_x;
  rk.tile_y = lat.dim == 2 ? 1 : tile_y;
  rk.tile_s = tile_s;
  rk.cross_halo = cross_halo;
  rk.ring_slots_extra = 2;
  rk.single_buffer = single_buffer;
  rk.layers_extra = 2;
  rk.shift_per_step = 2;
  rk.write_behind = write_behind;
  rk.ring_shift_bias = ring_shift_bias;
  rk.barrier_between_phases = barrier_between_phases;
  rk.min_sweep_extent_periodic = tile_s + 3;

  rk.src_load.array = 0;
  rk.src_load.comps = iota_comps(lat.m);
  rk.src_load.span = batched_io;
  rk.dst_store.array = single_buffer ? 0 : 1;
  rk.dst_store.write = true;
  rk.dst_store.comps = iota_comps(lat.m);
  rk.dst_store.span = batched_io;

  ec.ring_kernels.push_back(std::move(rk));
  ec.lattice = std::move(lat);
  return ec;
}

std::vector<std::string> applicable_mutations(const EngineContract& c) {
  std::vector<std::string> out;
  if (c.empty()) return out;
  out.emplace_back("shrunk-ghost-depth");
  // Span widening only applies to contracts that batch I/O somewhere; the
  // EP pattern (and scalar-I/O validation contracts) are span-free.
  bool has_span = !c.ring_kernels.empty();
  for (const auto& nk : c.node_kernels) {
    for (const auto& a : nk.accesses) has_span = has_span || a.span;
  }
  if (has_span) out.emplace_back("span-overrun");
  if (!c.ring_kernels.empty()) {
    const bool circ = c.ring_kernels.front().single_buffer;
    if (circ) {
      out.emplace_back("shifted-ring-window-up");
      out.emplace_back("shifted-ring-window-down");
      out.emplace_back("short-write-behind");
    }
    out.emplace_back("dropped-barrier-phase");
    out.emplace_back("shrunk-cross-halo");
    out.emplace_back("shrunk-shared-ring");
  }
  // Both in-place patterns expose an odd-parity gather whose offset sign is
  // load-bearing for the reader == writer invariant.
  if (c.pattern == "ST-AA" || c.pattern == "EP") {
    out.emplace_back("skewed-inplace-gather");
  }
  return out;
}

void apply_mutation(EngineContract& c, const std::string& name) {
  const auto names = applicable_mutations(c);
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    throw ConfigError("apply_mutation: '" + name +
                      "' not applicable to pattern " + c.pattern);
  }
  if (name == "shrunk-ghost-depth") {
    c.ghost_depth_declared -= 1;
    return;
  }
  if (name == "span-overrun") {
    // Extend the first span access one component past the array: the exact
    // shape of an off-by-one span count, which span_ok only catches at run
    // time on a large enough domain.
    for (auto& nk : c.node_kernels) {
      for (auto& a : nk.accesses) {
        if (a.span) {
          a.comps.push_back(static_cast<int>(a.comps.size()));
          return;
        }
      }
    }
    for (auto& rk : c.ring_kernels) {
      rk.src_load.comps.push_back(static_cast<int>(rk.src_load.comps.size()));
      return;
    }
    throw ConfigError("span-overrun: contract has no span access");
  }
  if (name == "skewed-inplace-gather") {
    // Flip the sign of one odd-step gather offset: the touched word gains a
    // second accessing thread, breaking the reader == writer invariant.
    NodeKernelContract& odd = c.node_kernels.at(1);
    for (auto& a : odd.accesses) {
      if (!a.write && (a.off[0] != 0 || a.off[1] != 0 || a.off[2] != 0)) {
        a.off = {-a.off[0], -a.off[1], -a.off[2]};
        return;
      }
    }
    throw ConfigError("skewed-inplace-gather: no offset gather found");
  }
  RingKernelContract& rk = c.ring_kernels.front();
  if (name == "shifted-ring-window-up") {
    rk.ring_shift_bias = 1;
  } else if (name == "shifted-ring-window-down") {
    rk.ring_shift_bias = -1;
  } else if (name == "short-write-behind") {
    rk.write_behind = 1;
  } else if (name == "dropped-barrier-phase") {
    rk.barrier_between_phases = false;
  } else if (name == "shrunk-cross-halo") {
    rk.cross_halo = 0;
  } else if (name == "shrunk-shared-ring") {
    rk.ring_slots_extra = 1;
  }
}

}  // namespace mlbm::analysis
