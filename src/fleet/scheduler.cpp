#include "fleet/scheduler.hpp"

#include <algorithm>
#include <string>

#include "resilience/snapshot.hpp"

namespace mlbm::fleet {

resilience::RunnerConfig default_job_runner_config() {
  resilience::RunnerConfig rc;
  // The window must fit inside a (possibly ladder-shrunk) quantum, and the
  // sentinel must run every step: the scheduler captures its migration
  // snapshot at each quantum boundary, so a bit flip that slipped through a
  // sparse sentinel cadence would be frozen into the boundary state and break
  // the bit-identity contract. Fleet jobs are small; per-step checks are
  // affordable.
  rc.checkpoint_interval = 8;
  rc.ring_capacity = 2;
  rc.sentinel.cadence = 1;
  rc.sentinel.sample_stride = 1;  // full scan: no node escapes detection
  rc.sleep_on_backoff = false;
  return rc;
}

FleetScheduler::FleetScheduler(DevicePool pool, FleetConfig config)
    : pool_(std::move(pool)), config_(std::move(config)) {
  if (pool_.size() <= 0) {
    throw ConfigError("FleetScheduler: pool must contain at least one device");
  }
  if (config_.quantum_steps < 1) {
    throw ConfigError("FleetScheduler: quantum_steps must be >= 1");
  }
  if (config_.min_quantum_steps < 1 ||
      config_.min_quantum_steps > config_.quantum_steps) {
    throw ConfigError(
        "FleetScheduler: min_quantum_steps must be in [1, quantum_steps]");
  }
  if (config_.retry_budget < 1) {
    throw ConfigError("FleetScheduler: retry_budget must be >= 1");
  }
  if (config_.deadline_factor <= 1.0) {
    throw ConfigError("FleetScheduler: deadline_factor must be > 1");
  }
  if (config_.max_ticks < 1) {
    throw ConfigError("FleetScheduler: max_ticks must be >= 1");
  }
}

int FleetScheduler::submit(JobSpec spec) {
  if (ran_) {
    throw ConfigError("FleetScheduler: submit after run()");
  }
  spec.id = static_cast<int>(jobs_.size());
  JobRt rt;
  rt.out.spec = spec;
  rt.remaining_steps = spec.steps;
  rt.quantum = config_.quantum_steps;
  jobs_.push_back(std::move(rt));
  return spec.id;
}

void FleetScheduler::record_ladder(const JobRt& rt, long tick,
                                   LadderAction action,
                                   const std::string& cause, int from,
                                   int to) {
  ladder_.push_back(
      {rt.out.spec.id, tick, action, cause, from, to, rt.quantum});
}

void FleetScheduler::release_device(JobRt& rt) {
  if (rt.out.device < 0) return;
  FleetDevice& dev = pool_.device(rt.out.device);
  dev.resident_bytes =
      dev.resident_bytes >= rt.bytes ? dev.resident_bytes - rt.bytes : 0;
  // Return the unexecuted part of the job's placement reservation.
  dev.reserved_s = std::max(
      0.0, dev.reserved_s -
               static_cast<double>(rt.remaining_steps) *
                   pool_.step_seconds(rt.out.device, rt.out.spec, rt.cells));
}

void FleetScheduler::park_job(JobRt& rt, FleetError::Kind kind,
                              const std::string& reason) {
  release_device(rt);
  rt.runner.reset();
  rt.injector.reset();
  rt.unplaced.reset();
  rt.out.status = JobStatus::kParked;
  rt.out.parked_kind = kind;
  rt.out.parked_reason = reason;
}

void FleetScheduler::sync_injector(JobRt& rt) {
  const FleetDevice& dev = pool_.device(rt.out.device);
  const double eff =
      std::max(config_.job_faults.launch_fail_rate, dev.launch_fail_rate);
  const bool any_fault = eff > 0 || config_.job_faults.bitflip_rate > 0 ||
                         config_.job_faults.halo_corrupt_rate > 0 ||
                         !config_.job_faults.scripted.empty();
  if (!any_fault && !rt.injector) return;
  if (rt.injector && rt.effective_launch_rate == eff) return;
  resilience::FaultConfig fc = config_.job_faults;
  fc.launch_fail_rate = eff;
  // Independent per-job, per-epoch streams; an epoch is a deterministic
  // rebuild point (a burst window opening or closing), so replays agree.
  fc.seed = config_.job_faults.seed +
            0x9e3779b97f4a7c15ULL *
                static_cast<std::uint64_t>(rt.out.spec.id + 1) +
            1000003ULL * static_cast<std::uint64_t>(rt.injector_epoch);
  ++rt.injector_epoch;
  auto fresh = std::make_unique<resilience::FaultInjector>(fc);
  rt.runner->set_fault_injector(fresh.get());
  rt.injector = std::move(fresh);  // old injector was uninstalled above
  rt.effective_launch_rate = eff;
}

void FleetScheduler::place_job(JobRt& rt, long tick) {
  const JobSpec& spec = rt.out.spec;
  if (!pool_.fits_anywhere(rt.bytes)) {
    park_job(rt, FleetError::Kind::kAdmission,
             spec.name() + ": state of " + std::to_string(rt.bytes) +
                 " bytes fits on no device of the pool");
    return;
  }
  bool alive_capacity = false;
  for (const FleetDevice& d : pool_.devices()) {
    if (d.alive && rt.bytes <= d.capacity_bytes()) {
      alive_capacity = true;
      break;
    }
  }
  if (!alive_capacity) {
    park_job(rt, FleetError::Kind::kNoDevice,
             spec.name() + ": no surviving device can hold the job");
    return;
  }
  const int to =
      pool_.place(spec, rt.cells, rt.bytes, rt.remaining_steps);
  if (to < 0) return;  // pool full this tick; stay pending

  std::unique_ptr<Engine<D2Q9>> eng;
  const bool is_restore = !rt.boundary.empty() && rt.done_steps > 0;
  if (rt.unplaced) {
    eng = std::move(rt.unplaced);
  } else {
    eng = make_job_engine(spec);
    if (!rt.boundary.empty()) {
      resilience::restore_state(*eng, rt.boundary);
    }
  }
  if (rt.boundary.empty()) {
    // The migration unit exists from the instant a job is placed, so even a
    // first-quantum failure has an exact state to move or roll back to.
    rt.boundary = resilience::capture_state(*eng, 0, /*with_moments=*/false);
  }
  rt.runner = std::make_unique<resilience::ResilientRunner<D2Q9>>(
      std::move(eng), config_.runner);
  if (rt.injector) {
    rt.runner->set_fault_injector(rt.injector.get());
  }
  FleetDevice& dev = pool_.device(to);
  dev.resident_bytes += rt.bytes;
  dev.reserved_s += static_cast<double>(rt.remaining_steps) *
                    pool_.step_seconds(to, spec, rt.cells);
  rt.out.device = to;
  rt.out.status = JobStatus::kRunning;
  if (is_restore) {
    // Re-placement after a device death that had no immediate target:
    // charge the checkpoint transfer now that a destination exists.
    const double factor = plan_ ? plan_->link_factor() : 1.0;
    const double dur =
        config_.link.transfer_s(static_cast<std::uint64_t>(rt.bytes)) * factor;
    rt.last_ev = timeline_.enqueue(
        device_streams_[static_cast<std::size_t>(to)], dur, {rt.last_ev},
        spec.name() + ":restore@t" + std::to_string(tick));
    dev.busy_s += dur;
    ++dev.jobs_migrated_in;
  }
}

bool FleetScheduler::migrate_job(JobRt& rt, long tick,
                                 const std::string& cause) {
  const JobSpec& spec = rt.out.spec;
  const int from = rt.out.device;
  const int to = pool_.place(spec, rt.cells, rt.bytes, rt.remaining_steps,
                             /*exclude=*/from);
  release_device(rt);
  if (from >= 0) {
    ++pool_.device(from).jobs_migrated_out;
  }
  if (to < 0) {
    // No destination right now: the boundary snapshot IS the job; drop the
    // dead/overloaded engine and queue for re-placement.
    rt.runner.reset();
    rt.out.device = -1;
    rt.out.status = JobStatus::kPending;
    bool alive_capacity = false;
    for (const FleetDevice& d : pool_.devices()) {
      if (d.alive && rt.bytes <= d.capacity_bytes()) {
        alive_capacity = true;
        break;
      }
    }
    if (!alive_capacity) {
      park_job(rt, FleetError::Kind::kNoDevice,
               spec.name() + ": " + cause +
                   " and no surviving device can hold the job");
    }
    return false;
  }

  auto eng = make_job_engine(spec);
  resilience::restore_state(*eng, rt.boundary);
  rt.runner = std::make_unique<resilience::ResilientRunner<D2Q9>>(
      std::move(eng), config_.runner);
  if (rt.injector) {
    rt.runner->set_fault_injector(rt.injector.get());
  }
  FleetDevice& dest = pool_.device(to);
  dest.resident_bytes += rt.bytes;
  dest.reserved_s += static_cast<double>(rt.remaining_steps) *
                     pool_.step_seconds(to, spec, rt.cells);
  ++dest.jobs_migrated_in;
  ++rt.out.migrations;
  rt.out.device = to;
  rt.out.status = JobStatus::kRunning;

  const double factor = plan_ ? plan_->link_factor() : 1.0;
  const double dur =
      config_.link.transfer_s(static_cast<std::uint64_t>(rt.bytes)) * factor;
  rt.last_ev = timeline_.enqueue(
      device_streams_[static_cast<std::size_t>(to)], dur, {rt.last_ev},
      spec.name() + ":migrate@t" + std::to_string(tick));
  dest.busy_s += dur;
  record_ladder(rt, tick, LadderAction::kMigrate, cause, from, to);
  return true;
}

void FleetScheduler::handle_trip(JobRt& rt, long tick,
                                 const std::string& cause) {
  ++rt.out.retries;
  ++rt.consecutive_trips;
  if (rt.out.retries > config_.retry_budget) {
    record_ladder(rt, tick, LadderAction::kPark, cause, rt.out.device, -1);
    park_job(rt, FleetError::Kind::kRetryBudget,
             rt.out.spec.name() + ": retry budget (" +
                 std::to_string(config_.retry_budget) + ") exhausted; last: " +
                 cause);
    return;
  }
  // Bounded exponential backoff, charged in modeled time ahead of the job's
  // next quantum.
  long bo = config_.backoff_base_ms;
  for (int i = 1; i < rt.consecutive_trips && bo < config_.backoff_max_ms;
       ++i) {
    bo *= 2;
  }
  rt.pending_backoff_ms += std::min(bo, static_cast<long>(config_.backoff_max_ms));

  if (rt.ladder_stage == 0) {
    rt.ladder_stage = 1;
    const int to = pool_.place(rt.out.spec, rt.cells, rt.bytes,
                               rt.remaining_steps, /*exclude=*/rt.out.device);
    if (to >= 0) {
      migrate_job(rt, tick, cause);
      return;
    }
    // No alternative device: fall through to quantum shrinking.
  }
  if (rt.ladder_stage == 1) {
    if (rt.quantum > config_.min_quantum_steps) {
      rt.quantum = std::max(config_.min_quantum_steps, rt.quantum / 2);
      record_ladder(rt, tick, LadderAction::kShrinkQuantum, cause,
                    rt.out.device, rt.out.device);
      return;
    }
    rt.ladder_stage = 2;
  }
  record_ladder(rt, tick, LadderAction::kPark, cause, rt.out.device, -1);
  park_job(rt, FleetError::Kind::kLadder,
           rt.out.spec.name() + ": degradation ladder exhausted; last: " +
               cause);
}

void FleetScheduler::advance_job(JobRt& rt, long tick) {
  const JobSpec& spec = rt.out.spec;
  const int dev_id = rt.out.device;
  const int steps_this = std::min(rt.quantum, rt.remaining_steps);
  sync_injector(rt);

  resilience::RunReport rep;
  try {
    rep = rt.runner->run(steps_this);
  } catch (const UnrecoverableError& e) {
    // The quantum is lost; the boundary snapshot restores the job exactly
    // (raw path, identical engine type) and the trip ladder decides where
    // and how it retries.
    resilience::restore_state(rt.runner->engine(), rt.boundary);
    handle_trip(rt, tick, std::string("unrecoverable: ") + e.what());
    return;
  } catch (const std::exception& e) {
    park_job(rt, FleetError::Kind::kLadder,
             spec.name() + ": non-transient failure: " + e.what());
    return;
  }

  rt.out.rollbacks += rep.rollbacks;
  rt.out.launch_failures += rep.launch_failures;
  rt.out.sentinel_trips += rep.sentinel_trips;
  rt.out.backoff_ms += static_cast<long>(rep.total_backoff_ms);

  long replay_steps = 0;
  for (const resilience::RecoveryEvent& e : rep.events) {
    replay_steps += std::max(0, e.step - e.restored_step);
  }
  FleetDevice& dev = pool_.device(dev_id);
  const double step0 = pool_.step_seconds(dev_id, spec, rt.cells);
  const double nominal_s = static_cast<double>(steps_this) * step0;
  // This quantum's share of the placement reservation converts to busy_s.
  dev.reserved_s = std::max(0.0, dev.reserved_s - nominal_s);
  const double exec_s =
      (static_cast<double>(steps_this) + static_cast<double>(replay_steps)) *
          step0 * dev.slowdown +
      static_cast<double>(rep.total_backoff_ms) / 1000.0;
  const double charged_s =
      exec_s + static_cast<double>(rt.pending_backoff_ms) / 1000.0;
  rt.out.backoff_ms += rt.pending_backoff_ms;
  rt.pending_backoff_ms = 0;
  rt.last_ev = timeline_.enqueue(
      device_streams_[static_cast<std::size_t>(dev_id)], charged_s,
      {rt.last_ev}, spec.name() + ":q@t" + std::to_string(tick));
  dev.busy_s += charged_s;

  rt.done_steps += steps_this;
  rt.remaining_steps -= steps_this;
  rt.boundary = resilience::capture_state(rt.runner->engine(), rt.done_steps,
                                          /*with_moments=*/false);

  // Watchdog compare is compute-only (slowdown and replay): backoff is a
  // bounded, separately accounted cost, and on small jobs a single modeled
  // backoff dwarfs the nominal quantum time — folding it in would turn every
  // recovered rollback into a spurious deadline trip.
  const double watch_s =
      (static_cast<double>(steps_this) + static_cast<double>(replay_steps)) *
      step0 * dev.slowdown;

  if (rt.remaining_steps == 0) {
    rt.out.fields = job_fields(rt.runner->engine());
    rt.out.status = JobStatus::kCompleted;
    rt.out.finish_s = timeline_.complete_time(rt.last_ev);
    ++dev.jobs_completed;
    release_device(rt);
    rt.runner.reset();
    rt.injector.reset();
    return;
  }
  if (watch_s > nominal_s * config_.deadline_factor) {
    handle_trip(rt, tick, "deadline");
  } else {
    rt.consecutive_trips = 0;
  }
}

FleetReport FleetScheduler::run() {
  if (ran_) {
    throw ConfigError("FleetScheduler: run() may only be called once");
  }
  ran_ = true;
  device_streams_.reserve(static_cast<std::size_t>(pool_.size()));
  for (const FleetDevice& d : pool_.devices()) {
    device_streams_.push_back(
        timeline_.add_stream(d.spec.name + "#" + std::to_string(d.id)));
  }

  // Build every job's engine up front: admission needs the exact footprint,
  // and an unbuildable spec parks as unservable instead of aborting the run.
  for (JobRt& rt : jobs_) {
    try {
      rt.unplaced = make_job_engine(rt.out.spec);
      rt.cells = rt.unplaced->geometry().box.cells();
      rt.bytes = rt.unplaced->state_bytes();
    } catch (const std::exception& e) {
      park_job(rt, FleetError::Kind::kAdmission,
               rt.out.spec.name() + ": engine construction failed: " +
                   e.what());
    }
  }

  for (long tick = 0; tick < config_.max_ticks; ++tick) {
    bool any_active = false;
    for (const JobRt& rt : jobs_) {
      if (rt.out.status == JobStatus::kPending ||
          rt.out.status == JobStatus::kRunning) {
        any_active = true;
        break;
      }
    }
    if (!any_active) break;

    if (plan_ != nullptr) {
      const std::vector<int> lost = plan_->begin_tick(tick, pool_);
      for (const int dead : lost) {
        for (JobRt& rt : jobs_) {
          if (rt.out.status == JobStatus::kRunning && rt.out.device == dead) {
            migrate_job(rt, tick, "device-loss");
          }
        }
      }
    }

    bool placed_any = false;
    for (JobRt& rt : jobs_) {
      if (rt.out.status != JobStatus::kPending) continue;
      place_job(rt, tick);
      placed_any = placed_any || rt.out.status == JobStatus::kRunning;
    }

    bool advanced_any = false;
    for (JobRt& rt : jobs_) {
      if (rt.out.status != JobStatus::kRunning) continue;
      advance_job(rt, tick);
      advanced_any = true;
    }

    if (!placed_any && !advanced_any) {
      // Nothing can run and nothing could be placed: no completion will ever
      // free capacity, so further ticks cannot change anything.
      break;
    }
  }

  for (JobRt& rt : jobs_) {
    if (rt.out.status == JobStatus::kPending ||
        rt.out.status == JobStatus::kRunning) {
      park_job(rt, FleetError::Kind::kDrain,
               rt.out.spec.name() + ": fleet drained (tick bound " +
                   std::to_string(config_.max_ticks) + ") before completion");
    }
  }

  FleetReport report;
  report.jobs.reserve(jobs_.size());
  for (JobRt& rt : jobs_) {
    report.jobs.push_back(std::move(rt.out));
  }
  report.ladder = std::move(ladder_);
  if (plan_ != nullptr) {
    report.fault_trace = plan_->trace_string();
  }
  report.makespan_s = timeline_.horizon();
  for (const FleetDevice& d : pool_.devices()) {
    DeviceUtilization u;
    u.id = d.id;
    u.name = d.spec.name;
    u.alive = d.alive;
    u.busy_s = d.busy_s;
    u.jobs_completed = d.jobs_completed;
    u.jobs_migrated_in = d.jobs_migrated_in;
    u.jobs_migrated_out = d.jobs_migrated_out;
    report.devices.push_back(std::move(u));
  }
  report.finalize();
  return report;
}

}  // namespace mlbm::fleet
