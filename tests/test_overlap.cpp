// Overlapped ghost exchange: the async multi-domain schedule must be a pure
// scheduling change. This file pins
//  * exchange invariance: overlap vs lockstep bit-identity (fields AND
//    per-slab traffic counters) across the engine x lattice x precision x
//    exec-mode matrix, including ragged slab widths and AA's depth-2 ghosts;
//  * the frontier/interior step split: step_split() == step() per engine;
//  * degenerate decompositions throwing typed mlbm::Error;
//  * the stream/event Timeline and the CommStats attribution it feeds
//    (lockstep exposes everything, overlap hides what the interior covers,
//    exposed + hidden == comm);
//  * perfmodel agreement: predict_overlap_slab within 15 points of the
//    profiler's exposed fraction;
//  * resilience: fault -> rollback -> replay stays bit-identical with the
//    overlapped exchange enabled;
//  * sanitizer cleanliness of the overlapped (split-launch) path.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "analysis/sanitizer/sanitizer.hpp"
#include "engines/factory.hpp"
#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "gpusim/timeline.hpp"
#include "multidev/multi_domain.hpp"
#include "perfmodel/overlap.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/runner.hpp"
#include "util/error.hpp"
#include "workloads/channel.hpp"

namespace mlbm {
namespace {

using analysis::Sanitizer;
using resilience::FaultConfig;
using resilience::FaultInjector;
using resilience::FaultKind;
using resilience::ResilientRunner;
using resilience::RunnerConfig;

enum class Kind { kST, kAA, kMRP, kMRR };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kST: return "ST";
    case Kind::kAA: return "AA";
    case Kind::kMRP: return "MR-P";
    case Kind::kMRR: return "MR-R";
  }
  return "?";
}

/// Every stored quantity of every node, in deterministic order — the
/// bit-identity comparand.
template <class L>
std::vector<real_t> dump_all(const Engine<L>& e) {
  std::vector<real_t> out;
  const Box& b = e.geometry().box;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const auto m = e.moments_at(x, y, z);
        out.push_back(m.rho);
        for (int c = 0; c < L::D; ++c) {
          out.push_back(m.u[static_cast<std::size_t>(c)]);
        }
        for (int p = 0; p < Moments<L>::NP; ++p) {
          out.push_back(m.pi[static_cast<std::size_t>(p)]);
        }
      }
    }
  }
  return out;
}

/// Channel decomposition with uniform slab engines of the given kind. AA
/// slabs take depth-2 ghosts (in-place odd step) and open interface faces;
/// MR uses tile_x = 2 so even thin slabs keep a genuine interior launch.
template <class L>
std::unique_ptr<MultiDomainEngine<L>> make_multi(const Channel<L>& ch,
                                                 int ndev, Kind kind,
                                                 StoragePrecision prec,
                                                 ExecMode exec,
                                                 ExchangeMode mode) {
  const real_t tau = ch.tau;
  const int depth = kind == Kind::kAA ? 2 : 1;
  const MrConfig cfg = L::D == 2 ? MrConfig{2, 1, 2} : MrConfig{2, 4, 1};
  auto m = std::make_unique<MultiDomainEngine<L>>(
      ch.geo, tau, ndev,
      [&](Geometry g, int) -> std::unique_ptr<Engine<L>> {
        switch (kind) {
          case Kind::kST:
            return make_st_engine<L>(prec, std::move(g), tau,
                                     CollisionScheme::kBGK, 64,
                                     StreamMode::kPull, exec);
          case Kind::kAA:
            return make_aa_engine<L>(prec, std::move(g), tau,
                                     CollisionScheme::kBGK, 64, exec,
                                     /*allow_open_faces=*/true);
          case Kind::kMRP:
            return make_mr_engine<L>(prec, std::move(g), tau,
                                     Regularization::kProjective, cfg, exec);
          case Kind::kMRR:
            return make_mr_engine<L>(prec, std::move(g), tau,
                                     Regularization::kRecursive, cfg, exec);
        }
        return nullptr;
      },
      depth);
  m->set_exchange_mode(mode);
  ch.attach(*m);
  return m;
}

template <class L>
void expect_overlap_identical(const Channel<L>& ch, int ndev, Kind kind,
                              StoragePrecision prec, ExecMode exec,
                              int steps) {
  SCOPED_TRACE(std::string(kind_name(kind)) + " " + L::name() + " " +
               to_string(prec) + " " + to_string(exec));
  auto lock = make_multi(ch, ndev, kind, prec, exec, ExchangeMode::kLockstep);
  auto over = make_multi(ch, ndev, kind, prec, exec, ExchangeMode::kOverlap);
  lock->run(steps);
  over->run(steps);
  EXPECT_EQ(dump_all<L>(*lock), dump_all<L>(*over));
  EXPECT_EQ(lock->exchanged_values_total(), over->exchanged_values_total());
  for (int d = 0; d < ndev; ++d) {
    const auto tl = lock->device_engine(d).profiler()->total_traffic();
    const auto to = over->device_engine(d).profiler()->total_traffic();
    EXPECT_EQ(tl.bytes_read, to.bytes_read) << "slab " << d;
    EXPECT_EQ(tl.bytes_written, to.bytes_written) << "slab " << d;
    EXPECT_EQ(tl.reads, to.reads) << "slab " << d;
    EXPECT_EQ(tl.writes, to.writes) << "slab " << d;
  }
}

// ---------------------------------------------------------------------------
// Exchange invariance: overlap == lockstep, bit for bit.
// ---------------------------------------------------------------------------

TEST(OverlapInvariance, EngineMatrix2D) {
  // nx = 17 over 3 slabs: ragged widths 6, 6, 5.
  const auto ch = Channel<D2Q9>::create(17, 10, 1, 0.8, 0.04);
  for (const Kind kind : {Kind::kST, Kind::kAA, Kind::kMRP, Kind::kMRR}) {
    for (const StoragePrecision prec :
         {StoragePrecision::kFP64, StoragePrecision::kFP32}) {
      for (const ExecMode exec : {ExecMode::kScalar, ExecMode::kLanes}) {
        expect_overlap_identical(ch, 3, kind, prec, exec, 6);
      }
    }
  }
}

TEST(OverlapInvariance, EngineMatrix3D) {
  const auto ch = Channel<D3Q19>::create(17, 6, 5, 0.8, 0.04);
  for (const Kind kind : {Kind::kST, Kind::kAA, Kind::kMRP, Kind::kMRR}) {
    for (const StoragePrecision prec :
         {StoragePrecision::kFP64, StoragePrecision::kFP32}) {
      for (const ExecMode exec : {ExecMode::kScalar, ExecMode::kLanes}) {
        expect_overlap_identical(ch, 3, kind, prec, exec, 4);
      }
    }
  }
}

TEST(OverlapInvariance, ModeSwitchableBetweenSteps) {
  const auto ch = Channel<D2Q9>::create(18, 8, 1, 0.8, 0.04);
  auto lock = make_multi(ch, 3, Kind::kMRP, StoragePrecision::kFP64,
                         ExecMode::kScalar, ExchangeMode::kLockstep);
  auto mixed = make_multi(ch, 3, Kind::kMRP, StoragePrecision::kFP64,
                          ExecMode::kScalar, ExchangeMode::kLockstep);
  lock->run(6);
  mixed->run(2);
  mixed->set_exchange_mode(ExchangeMode::kOverlap);
  mixed->run(2);
  mixed->set_exchange_mode(ExchangeMode::kLockstep);
  mixed->run(2);
  EXPECT_EQ(dump_all<D2Q9>(*lock), dump_all<D2Q9>(*mixed));
}

// ---------------------------------------------------------------------------
// The frontier/interior step split per engine.
// ---------------------------------------------------------------------------

template <class L, class Make>
void expect_split_matches_step(const Channel<L>& ch, const Make& make,
                               int steps, const char* what) {
  SCOPED_TRACE(what);
  auto plain = make();
  auto split = make();
  ch.attach(*plain);
  ch.attach(*split);
  int fired = 0;
  const FrontierSpec fs{2, 2};
  for (int s = 0; s < steps; ++s) {
    plain->step();
    split->step_split(fs, [&] { ++fired; });
  }
  EXPECT_EQ(fired, steps);  // exactly once per step
  EXPECT_EQ(dump_all<L>(*plain), dump_all<L>(*split));
}

TEST(StepSplit, MatchesPlainStepAcrossEngines) {
  const real_t tau = 0.8;
  const auto ch = Channel<D2Q9>::create(18, 10, 1, tau, 0.04);
  expect_split_matches_step(
      ch,
      [&] { return std::make_unique<StEngine<D2Q9>>(ch.geo, tau); },
      5, "ST pull");
  expect_split_matches_step(
      ch,
      [&] {
        return std::make_unique<StEngine<D2Q9>>(
            ch.geo, tau, CollisionScheme::kBGK, 64, StreamMode::kPush);
      },
      5, "ST push");
  // Odd step count exercises both AA parities on each side of the split.
  expect_split_matches_step(
      ch,
      [&] {
        return std::make_unique<ReferenceEngine<D2Q9>>(ch.geo, tau,
                                                       CollisionScheme::kBGK);
      },
      5, "reference");
  expect_split_matches_step(
      ch,
      [&] {
        return std::make_unique<MrEngine<D2Q9>>(
            ch.geo, tau, Regularization::kProjective, MrConfig{2, 1, 2});
      },
      5, "MR-P ping-pong");
  expect_split_matches_step(
      ch,
      [&] {
        return std::make_unique<MrEngine<D2Q9>>(
            ch.geo, tau, Regularization::kRecursive,
            MrConfig{8, 1, 2, MomentStorage::kCircularShift});
      },
      5, "MR-R circular (fallback)");
}

TEST(StepSplit, SupportFlagsReflectNativeSplits) {
  const real_t tau = 0.8;
  const Geometry geo = Channel<D2Q9>::create(16, 8, 1, tau, 0.04).geo;
  EXPECT_TRUE(StEngine<D2Q9>(geo, tau).supports_frontier_split());
  EXPECT_TRUE(ReferenceEngine<D2Q9>(geo, tau, CollisionScheme::kBGK)
                  .supports_frontier_split());
  EXPECT_TRUE(MrEngine<D2Q9>(geo, tau, Regularization::kProjective,
                             MrConfig{2, 1, 2})
                  .supports_frontier_split());
  // The circular-shift walk is one level-synced launch per step; splitting
  // it would break the slot-reuse analysis, so it declares the fallback.
  EXPECT_FALSE(MrEngine<D2Q9>(geo, tau, Regularization::kProjective,
                              MrConfig{8, 1, 2, MomentStorage::kCircularShift})
                   .supports_frontier_split());
}

TEST(StepSplit, DegenerateSpecsFallBackIdentically) {
  const real_t tau = 0.8;
  const auto ch = Channel<D2Q9>::create(6, 8, 1, tau, 0.04);
  // Frontier wider than the domain, and an empty frontier: both must take
  // the whole-step-as-frontier fallback and still match step().
  for (const FrontierSpec fs : {FrontierSpec{4, 4}, FrontierSpec{0, 0}}) {
    StEngine<D2Q9> plain(ch.geo, tau);
    StEngine<D2Q9> split(ch.geo, tau);
    ch.attach(plain);
    ch.attach(split);
    int fired = 0;
    for (int s = 0; s < 4; ++s) {
      plain.step();
      split.step_split(fs, [&] { ++fired; });
    }
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(dump_all<D2Q9>(plain), dump_all<D2Q9>(split));
  }
}

// ---------------------------------------------------------------------------
// Degenerate decompositions: typed errors, depth-aware slab arithmetic.
// ---------------------------------------------------------------------------

TEST(OverlapValidation, DegenerateDecompositionsThrowTypedErrors) {
  // Dispatchable via the mlbm::Error mixin...
  try {
    make_slabs(8, 9);
    FAIL() << "ndev > nx must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_FALSE(e.transient());
  }
  // ...and via the std base for legacy call sites.
  EXPECT_THROW(make_slabs(8, 0), ConfigError);
  EXPECT_THROW(make_slabs(8, -1), std::invalid_argument);
  EXPECT_THROW(make_slabs(8, 2, 0), ConfigError);   // ghost_depth < 1
  EXPECT_THROW(make_slabs(9, 4, 3), ConfigError);   // width 2 < depth 3
  EXPECT_NO_THROW(make_slabs(8, 4, 2));             // width == depth is fine
  EXPECT_NO_THROW(make_slabs(8, 8));                // width-1 slabs, depth 1

  const auto ch = Channel<D2Q9>::create(8, 6, 1, 0.8, 0.04);
  const auto factory = [](Geometry g,
                          int) -> std::unique_ptr<Engine<D2Q9>> {
    return std::make_unique<StEngine<D2Q9>>(std::move(g), 0.8);
  };
  EXPECT_THROW(MultiDomainEngine<D2Q9>(ch.geo, 0.8, 9, factory), ConfigError);
  EXPECT_THROW(MultiDomainEngine<D2Q9>(ch.geo, 0.8, 5, factory, 2),
               ConfigError);  // width 1 < depth 2
}

TEST(OverlapSlabs, DepthAwareExtentsAndGhostMapping) {
  const auto slabs = make_slabs(17, 3, 2);  // widths 6, 6, 5
  EXPECT_EQ(slabs[0].local_nx(), 6 + 2);
  EXPECT_EQ(slabs[1].local_nx(), 6 + 4);
  EXPECT_EQ(slabs[2].local_nx(), 5 + 2);
  EXPECT_EQ(slabs[0].local_x(0), 0);
  EXPECT_EQ(slabs[1].local_x(slabs[1].x_begin), 2);
  // local_x extends naturally into the ghost bands on either side.
  EXPECT_EQ(slabs[1].local_x(slabs[1].x_begin - 2), 0);
  EXPECT_EQ(slabs[1].local_x(slabs[1].x_end), 8);
  // Exchange volume scales with depth.
  const auto ch = Channel<D2Q9>::create(17, 6, 1, 0.8, 0.04);
  MultiDomainEngine<D2Q9> multi(
      ch.geo, 0.8, 3,
      [](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
        return make_aa_engine<D2Q9>(StoragePrecision::kFP64, std::move(g),
                                    0.8, CollisionScheme::kBGK, 64,
                                    default_exec_mode(),
                                    /*allow_open_faces=*/true);
      },
      2);
  EXPECT_EQ(multi.ghost_depth(), 2);
  // 2 interfaces x 2 directions x depth 2 x 6 face nodes x M=6.
  EXPECT_EQ(multi.exchanged_values_per_step(), 2ull * 2 * 2 * 6 * 6);
}

// ---------------------------------------------------------------------------
// Timeline + CommStats attribution.
// ---------------------------------------------------------------------------

TEST(Timeline, StreamOrderAndEventDependencies) {
  gpusim::Timeline tl;
  const int s0 = tl.add_stream("compute");
  const int s1 = tl.add_stream("link");
  const auto e0 = tl.enqueue(s0, 1.0, {});
  const auto e1 = tl.enqueue(s0, 2.0, {});       // stream order: starts at 1
  const auto e2 = tl.enqueue(s1, 0.5, {e1});     // waits on e1
  EXPECT_DOUBLE_EQ(tl.complete_time(e0), 1.0);
  EXPECT_DOUBLE_EQ(tl.complete_time(e1), 3.0);
  EXPECT_DOUBLE_EQ(tl.complete_time(e2), 3.5);
  EXPECT_DOUBLE_EQ(tl.stream_time(s0), 3.0);
  EXPECT_DOUBLE_EQ(tl.horizon(), 3.5);
  // Default events are already complete and legal as dependencies.
  EXPECT_DOUBLE_EQ(tl.complete_time(gpusim::Event{}), 0.0);
  const auto e3 = tl.enqueue(s1, 0.25, {gpusim::Event{}});
  EXPECT_DOUBLE_EQ(tl.complete_time(e3), 3.75);
  EXPECT_EQ(tl.ops().size(), 4u);
}

TEST(OverlapCommStats, LockstepExposesAllOverlapHidesSome) {
  const int steps = 5;
  const auto ch = Channel<D3Q19>::create(24, 8, 8, 0.8, 0.04);
  auto run_mode = [&](ExchangeMode mode) {
    auto m = make_multi(ch, 3, Kind::kMRP, StoragePrecision::kFP64,
                        ExecMode::kScalar, mode);
    m->set_timeline_model(gpusim::DeviceSpec::v100(),
                          gpusim::LinkSpec::pcie3());
    m->run(steps);
    return m;
  };
  const auto lock = run_mode(ExchangeMode::kLockstep);
  const auto over = run_mode(ExchangeMode::kOverlap);

  const gpusim::CommStats cl = lock->comm_stats();
  EXPECT_EQ(cl.steps, static_cast<std::uint64_t>(steps));
  EXPECT_GT(cl.comm_s, 0.0);
  EXPECT_DOUBLE_EQ(cl.exposed_s, cl.comm_s);  // lockstep exposes everything
  EXPECT_DOUBLE_EQ(cl.hidden_s, 0.0);
  EXPECT_DOUBLE_EQ(cl.exposed_fraction(), 1.0);

  const gpusim::CommStats co = over->comm_stats();
  EXPECT_EQ(co.steps, static_cast<std::uint64_t>(steps));
  EXPECT_DOUBLE_EQ(co.comm_s, cl.comm_s);  // same transfers, rescheduled
  EXPECT_NEAR(co.exposed_s + co.hidden_s, co.comm_s, 1e-15);
  EXPECT_GT(co.hidden_s, 0.0);
  EXPECT_LT(co.exposed_fraction(), 1.0);

  // The overlapped step leaves its stream/event schedule behind: one
  // frontier + one interior op per device, one transfer per direction per
  // interface. Lockstep builds no timeline.
  EXPECT_EQ(over->last_step_timeline().ops().size(),
            2u * 3 + 2u * 2);
  EXPECT_GT(over->last_step_timeline().horizon(), 0.0);
  EXPECT_TRUE(lock->last_step_timeline().ops().empty());

  // Per-device invariant: exposed + hidden == comm, edges have one link,
  // the middle slab two.
  for (int d = 0; d < 3; ++d) {
    const auto& cs = over->device_engine(d).profiler()->comm_stats();
    EXPECT_NEAR(cs.exposed_s + cs.hidden_s, cs.comm_s, 1e-15) << "slab " << d;
  }
  const double edge =
      over->device_engine(0).profiler()->comm_stats().comm_s;
  const double mid =
      over->device_engine(1).profiler()->comm_stats().comm_s;
  EXPECT_NEAR(mid, 2.0 * edge, 1e-12);
}

TEST(OverlapCommStats, WithoutTimelineModelStatsStayZero) {
  const auto ch = Channel<D2Q9>::create(16, 8, 1, 0.8, 0.04);
  auto m = make_multi(ch, 2, Kind::kMRP, StoragePrecision::kFP64,
                      ExecMode::kScalar, ExchangeMode::kOverlap);
  EXPECT_FALSE(m->has_timeline_model());
  m->run(3);
  const gpusim::CommStats cs = m->comm_stats();
  EXPECT_EQ(cs.steps, 0u);
  EXPECT_DOUBLE_EQ(cs.comm_s, 0.0);
  EXPECT_DOUBLE_EQ(cs.compute_s, 0.0);
}

// ---------------------------------------------------------------------------
// Perfmodel agreement.
// ---------------------------------------------------------------------------

TEST(OverlapModel, PredictionWithin15PointsOfProfiler) {
  const real_t tau = 0.8;
  // Per-cell kernel traffic from a small instrumented monolithic run (the
  // engines' access pattern is size-independent).
  double bytes_per_cell = 0;
  {
    Geometry geo(Box{12, 8, 6});
    geo.bc.set_axis(0, FaceBC::kPeriodic);
    geo.bc.set_axis(1, FaceBC::kPeriodic);
    geo.bc.set_axis(2, FaceBC::kPeriodic);
    MrEngine<D3Q19> probe(geo, tau, Regularization::kProjective,
                          MrConfig{2, 4, 1});
    probe.initialize(
        [](int, int, int) { return equilibrium_moments<D3Q19>(1.0, {}); });
    probe.step();
    const auto before = probe.profiler()->total_traffic();
    probe.run(2);
    const auto t = probe.profiler()->total_traffic() - before;
    bytes_per_cell = static_cast<double>(t.bytes_total()) /
                     (2.0 * static_cast<double>(geo.box.cells()));
  }

  const auto dev = gpusim::DeviceSpec::v100();
  const auto link = gpusim::LinkSpec::pcie3();
  const int ndev = 4, steps = 5;
  const auto ch = Channel<D3Q19>::create(32, 8, 8, tau, 0.04);
  auto multi = make_multi(ch, ndev, Kind::kMRP, StoragePrecision::kFP64,
                          ExecMode::kScalar, ExchangeMode::kOverlap);
  multi->set_timeline_model(dev, link);
  multi->run(steps);
  const gpusim::CommStats measured = multi->comm_stats();
  ASSERT_GT(measured.comm_s, 0.0);

  double pred_exposed = 0, pred_comm = 0;
  for (int d = 0; d < ndev; ++d) {
    const SlabInfo& s = multi->slab(d);
    const int sides = (s.has_left ? 1 : 0) + (s.has_right ? 1 : 0);
    const auto p = perf::predict_overlap_slab(
        dev, link, bytes_per_cell, s.x_end - s.x_begin, 8, 8, s.ghost_depth,
        sides, D3Q19::M, sizeof(real_t));
    pred_exposed += p.exposed_s;
    pred_comm += p.comm_s;
  }
  const double model_frac = pred_comm > 0 ? pred_exposed / pred_comm : 0.0;
  EXPECT_NEAR(measured.exposed_fraction(), model_frac, 0.15);

  // The ISSUE acceptance bar: at 4 slabs the overlap hides >= 60% of what
  // lockstep would expose.
  EXPECT_GE(1.0 - measured.exposed_fraction(), 0.60);
}

TEST(OverlapModel, PredictorAlgebraInvariants) {
  const auto dev = gpusim::DeviceSpec::v100();
  const auto link = gpusim::LinkSpec::nvlink2();
  const auto p =
      perf::predict_overlap(dev, link, 1 << 20, 8 << 20, 1 << 16, 2);
  EXPECT_NEAR(p.exposed_s + p.hidden_s, p.comm_s, 1e-18);
  EXPECT_DOUBLE_EQ(p.comm_s, 2.0 * p.transfer_s);
  EXPECT_GE(p.overlap_step_s, p.frontier_s + p.interior_s - 1e-18);
  // A wide interior hides a fast link entirely.
  EXPECT_DOUBLE_EQ(p.exposed_s, 0.0);
  // Shrinking the interior to nothing leaves only the bare launch overhead
  // to hide behind: a slow link's transfer is exposed past that point.
  const auto q = perf::predict_overlap(dev, gpusim::LinkSpec::pcie3(),
                                       1 << 20, 0, 1 << 20, 2);
  EXPECT_GT(q.transfer_s, q.interior_s);
  EXPECT_DOUBLE_EQ(q.exposed_s, q.transfer_s - q.interior_s);
  EXPECT_GT(q.exposed_s, 0.0);
}

// ---------------------------------------------------------------------------
// Resilience: fault -> rollback -> replay with the overlapped exchange.
// ---------------------------------------------------------------------------

TEST(OverlapResilience, HaloFaultRollbackReplayStaysBitIdentical) {
  const auto ch = Channel<D2Q9>::create(24, 10, 1, 0.8, 0.04);
  auto make = [&] {
    auto m = make_multi(ch, 2, Kind::kST, StoragePrecision::kFP64,
                        ExecMode::kScalar, ExchangeMode::kOverlap);
    m->set_timeline_model(gpusim::DeviceSpec::v100(),
                          gpusim::LinkSpec::nvlink2());
    return m;
  };
  RunnerConfig rc;
  rc.checkpoint_interval = 4;
  rc.sentinel.cadence = 2;
  rc.sentinel.max_rho = real_t(1.5);
  rc.sentinel.max_speed = real_t(0.5);

  ResilientRunner<D2Q9> clean(make(), rc);
  clean.run(24);

  ResilientRunner<D2Q9> faulted(make(), rc);
  FaultConfig fc;
  fc.seed = 11;
  fc.halo_corrupt_rate = 0.15;
  fc.step_end = 16;
  FaultInjector inj(fc);
  faulted.set_fault_injector(&inj);
  const auto rep = faulted.run(24);

  EXPECT_GE(rep.sentinel_trips, 1);
  ASSERT_FALSE(inj.trace().empty());
  EXPECT_EQ(inj.trace()[0].kind, FaultKind::kHaloCorruption);

  EXPECT_EQ(dump_all<D2Q9>(clean.engine()), dump_all<D2Q9>(faulted.engine()));
  const auto& mc =
      dynamic_cast<const MultiDomainEngine<D2Q9>&>(clean.engine());
  const auto& mf =
      dynamic_cast<const MultiDomainEngine<D2Q9>&>(faulted.engine());
  EXPECT_EQ(mc.exchanged_values_total(), mf.exchanged_values_total());
  for (int d = 0; d < 2; ++d) {
    const auto tc = mc.device_engine(d).profiler()->total_traffic();
    const auto tf = mf.device_engine(d).profiler()->total_traffic();
    EXPECT_EQ(tc.bytes_read, tf.bytes_read);
    EXPECT_EQ(tc.bytes_written, tf.bytes_written);
    // The CommStats attribution rides the checkpoint/rollback path too: a
    // replayed window re-counts instead of double-counting.
    const auto& cc = mc.device_engine(d).profiler()->comm_stats();
    const auto& cf = mf.device_engine(d).profiler()->comm_stats();
    EXPECT_EQ(cc.steps, cf.steps);
    EXPECT_DOUBLE_EQ(cc.comm_s, cf.comm_s);
    EXPECT_DOUBLE_EQ(cc.exposed_s, cf.exposed_s);
    EXPECT_DOUBLE_EQ(cc.hidden_s, cf.hidden_s);
  }
}

// ---------------------------------------------------------------------------
// Sanitizer: the overlapped (split-launch) path is hazard-free.
// ---------------------------------------------------------------------------

TEST(OverlapSanitizer, OverlappedMultiDomainRunsAreHazardFree) {
  const real_t tau = 0.8;
  {
    const auto ch = Channel<D2Q9>::create(20, 10, 1, tau, 0.04);
    MultiDomainEngine<D2Q9> multi(
        ch.geo, tau, 3,
        [&](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
          return std::make_unique<MrEngine<D2Q9>>(
              std::move(g), tau, Regularization::kProjective,
              MrConfig{2, 1, 2});
        });
    multi.set_exchange_mode(ExchangeMode::kOverlap);
    Sanitizer san;
    multi.set_sanitizer(&san);
    ch.attach(multi);
    multi.run(4);
    EXPECT_TRUE(san.report().clean())
        << "MR-P overlap:\n" << san.report().to_string();
  }
  {
    // Ragged 3D decomposition with ST slabs and AA's depth-2 variant.
    const auto ch = Channel<D3Q19>::create(17, 6, 5, tau, 0.04);
    MultiDomainEngine<D3Q19> multi(
        ch.geo, tau, 3,
        [&](Geometry g, int) -> std::unique_ptr<Engine<D3Q19>> {
          return std::make_unique<StEngine<D3Q19>>(std::move(g), tau);
        });
    multi.set_exchange_mode(ExchangeMode::kOverlap);
    Sanitizer san;
    multi.set_sanitizer(&san);
    ch.attach(multi);
    multi.run(4);
    EXPECT_TRUE(san.report().clean())
        << "ST overlap 3D:\n" << san.report().to_string();
  }
  {
    const auto ch = Channel<D2Q9>::create(18, 8, 1, tau, 0.04);
    MultiDomainEngine<D2Q9> multi(
        ch.geo, tau, 3,
        [&](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
          return make_aa_engine<D2Q9>(StoragePrecision::kFP64, std::move(g),
                                      tau, CollisionScheme::kBGK, 64,
                                      default_exec_mode(),
                                      /*allow_open_faces=*/true);
        },
        /*ghost_depth=*/2);
    multi.set_exchange_mode(ExchangeMode::kOverlap);
    Sanitizer san;
    multi.set_sanitizer(&san);
    ch.attach(multi);
    multi.run(4);
    EXPECT_TRUE(san.report().clean())
        << "AA depth-2 overlap:\n" << san.report().to_string();
  }
}

}  // namespace
}  // namespace mlbm
