// Device-side tile index shared by the sparse ST and AA kernels.
//
// The sparse engines map one simulated thread to one *tile* (the analogue of
// a thread block owning a tile on a real GPU): the thread loads the tile's
// 3^D neighbour-tile slots from the slot grid once into a register stash,
// then sweeps the tile's 64 locals with purely arithmetic neighbour
// addressing. All index structures live in counted GlobalArrays, so the
// indirection overhead — the tile-id list entry, the slot-grid stash and the
// mixed-tile occupancy mask — is part of the measured byte budget (about
// (3^D)*4/64 bytes per node; the perfmodel's sparse crossover term).
//
// Tile lists are sorted by tile x so a frontier/interior split step can
// launch contiguous list ranges: the left frontier is a prefix, the right
// frontier a suffix (see FrontierTilePartition).
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "geometry/geometry.hpp"
#include "gpusim/global_array.hpp"

namespace mlbm {

/// Tile-grid extents, copied by value into kernel bodies.
struct TileGridInfo {
  int tdx = 1, tdy = 1, tdz = 1;
  int ntx = 1, nty = 1, ntz = 1;
};

/// Counted device copies of the TileMap structures one sparse engine needs.
struct TileIndexDev {
  gpusim::GlobalArray<std::int32_t> slots;  ///< tile id -> slot (-1 none)
  gpusim::GlobalArray<std::int32_t> fluid;  ///< all-fluid tile ids, by tx
  gpusim::GlobalArray<std::int32_t> mixed;  ///< mixed tile ids, by tx
  gpusim::GlobalArray<std::uint64_t> mask;  ///< occupancy, parallel to mixed
  TileGridInfo grid;
  int n_fluid_tiles = 0;
  int n_mixed_tiles = 0;

  void build(const TileMap& tm, gpusim::TrafficCounter* counter) {
    grid = TileGridInfo{tm.tdx, tm.tdy, tm.tdz, tm.ntx, tm.nty, tm.ntz};
    slots.allocate(tm.slot.size(), counter);
    for (std::size_t i = 0; i < tm.slot.size(); ++i) {
      slots.raw(static_cast<index_t>(i)) = tm.slot[i];
    }
    // Sort both lists by tile x (stable: ties keep tile-id order) so split
    // steps launch contiguous ranges.
    const auto tx_of = [&](std::int32_t tile) { return tile % tm.ntx; };
    std::vector<std::int32_t> f = tm.fluid_tiles;
    std::stable_sort(f.begin(), f.end(), [&](std::int32_t a, std::int32_t b) {
      return tx_of(a) < tx_of(b);
    });
    std::vector<std::size_t> morder(tm.mixed_tiles.size());
    for (std::size_t i = 0; i < morder.size(); ++i) morder[i] = i;
    std::stable_sort(morder.begin(), morder.end(),
                     [&](std::size_t a, std::size_t b) {
                       return tx_of(tm.mixed_tiles[a]) <
                              tx_of(tm.mixed_tiles[b]);
                     });
    n_fluid_tiles = static_cast<int>(f.size());
    n_mixed_tiles = static_cast<int>(morder.size());
    fluid.allocate(f.size(), counter);
    for (std::size_t i = 0; i < f.size(); ++i) {
      fluid.raw(static_cast<index_t>(i)) = f[i];
    }
    mixed.allocate(morder.size(), counter);
    mask.allocate(morder.size(), counter);
    for (std::size_t i = 0; i < morder.size(); ++i) {
      mixed.raw(static_cast<index_t>(i)) = tm.mixed_tiles[morder[i]];
      mask.raw(static_cast<index_t>(i)) = tm.mixed_mask[morder[i]];
    }
  }

  [[nodiscard]] std::size_t bytes() const {
    return slots.size_bytes() + fluid.size_bytes() + mixed.size_bytes() +
           mask.size_bytes();
  }

  /// Registers the index arrays with the sanitizer and replays their host
  /// initialization (they were written at construction, before any sanitizer
  /// existed; without the replay initcheck would flag the first kernel read).
  /// Read-only data: no staleness window.
  void set_sanitizer(gpusim::SanitizerHook* san) {
    slots.set_sanitizer(san, "tile_slots", /*sliding_window=*/false);
    fluid.set_sanitizer(san, "tile_fluid", /*sliding_window=*/false);
    mixed.set_sanitizer(san, "tile_mixed", /*sliding_window=*/false);
    mask.set_sanitizer(san, "tile_mask", /*sliding_window=*/false);
    if (san == nullptr) return;
    const auto replay = [](auto& arr) {
      for (std::size_t i = 0; i < arr.size(); ++i) {
        const auto v = std::as_const(arr).raw(static_cast<index_t>(i));
        arr.raw(static_cast<index_t>(i)) = v;
      }
    };
    replay(slots);
    replay(fluid);
    replay(mixed);
    replay(mask);
  }
};

/// Contiguous tile-list ranges of a frontier/interior split: [0, left) and
/// [right, n) are frontier, [left, right) interior. degenerate() means the
/// regions overlap (slab thinner than a tile) — run the whole step frontier.
struct TileRange {
  int left = 0;
  int right = 0;
  int n = 0;
  [[nodiscard]] bool degenerate() const { return left > right; }
};

/// Partition of a tx-sorted tile list for frontier planes [0, fl) and
/// [nx - fr, nx): a tile with origin x0 = tx*tdx covering [x0, x0 + tdx) is
/// left-frontier iff x0 < fl and right-frontier iff x0 + tdx > nx - fr.
template <class ArrayT>
TileRange partition_tiles(const ArrayT& list, int count, int tdx, int ntx,
                          int nx, int fl, int fr) {
  TileRange r;
  r.n = count;
  r.left = 0;
  if (fl > 0) {
    while (r.left < count && (list.raw(r.left) % ntx) * tdx < fl) ++r.left;
  }
  r.right = count;
  if (fr > 0) {
    while (r.right > 0 &&
           (list.raw(r.right - 1) % ntx) * tdx + tdx > nx - fr) {
      --r.right;
    }
  }
  return r;
}

/// Loads the 3^D neighbour-tile slots of tile (tx, ty, tz) into `stash`
/// (indexed [(dz+1)*9 + (dy+1)*3 + (dx+1)]). Tile-grid coordinates wrap
/// toroidally — consistent with node-level periodic wrap for any box size,
/// and never consulted for links resolve_stream turns into bounces/drops.
/// Counted: 9 (2D) or 27 (3D) int32 loads per tile per launch.
inline void load_tile_stash(const gpusim::GlobalArray<std::int32_t>& slots,
                            const TileGridInfo& g, int tx, int ty, int tz,
                            bool is3d, std::int32_t (&stash)[27]) {
  const int dzlo = is3d ? -1 : 0;
  const int dzhi = is3d ? 1 : 0;
  for (int dz = dzlo; dz <= dzhi; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        int nx_ = tx + dx, ny_ = ty + dy, nz_ = tz + dz;
        nx_ = Box::wrap(nx_, g.ntx);
        ny_ = Box::wrap(ny_, g.nty);
        nz_ = Box::wrap(nz_, g.ntz);
        stash[(dz + 1) * 9 + (dy + 1) * 3 + (dx + 1)] =
            slots.load(((static_cast<index_t>(nz_) * g.nty + ny_) * g.ntx) +
                       nx_);
      }
    }
  }
}

/// Compressed element index of node (X, Y, Z) — already wrapped in-box —
/// resolved through the stash of tile (tx, ty, tz). Valid only for non-solid
/// destinations (their tiles are allocated, so the stash entry is >= 0).
inline index_t stash_elem(const std::int32_t (&stash)[27],
                          const TileGridInfo& g, int tx, int ty, int tz,
                          int X, int Y, int Z) {
  int dx = X / g.tdx - tx;
  int dy = Y / g.tdy - ty;
  int dz = Z / g.tdz - tz;
  if (dx > 1) dx -= g.ntx;
  if (dx < -1) dx += g.ntx;
  if (dy > 1) dy -= g.nty;
  if (dy < -1) dy += g.nty;
  if (dz > 1) dz -= g.ntz;
  if (dz < -1) dz += g.ntz;
  const std::int32_t slot = stash[(dz + 1) * 9 + (dy + 1) * 3 + (dx + 1)];
  const int local =
      ((Z % g.tdz) * g.tdy + (Y % g.tdy)) * g.tdx + (X % g.tdx);
  return static_cast<index_t>(slot) * TileMap::kSlots + local;
}

}  // namespace mlbm
