// Binary checkpointing of the moment state. Because every engine exposes its
// full state through the moment interface, checkpoints are portable across
// propagation patterns: a run saved from an ST engine restores into an MR
// engine and vice versa.
//
// Format v2 ("MLBMCP02") records the engine's declared storage precision and
// writes node values in that precision — an FP32 run's checkpoint is half
// the size and loses nothing beyond what device storage already rounded.
// Format v3 ("MLBMCP03") additionally records the geometry hash and — when
// the domain has solid nodes — the per-node flag field; load validates both
// against the target engine and raises CheckpointError::Kind::kGeometry on
// mismatch, so a restore onto the wrong obstacle layout fails loudly.
// v1/v2 files remain loadable (they predate solid geometries).
#pragma once

#include <string>

#include "engines/engine.hpp"

namespace mlbm {

template <class L>
void save_checkpoint(const Engine<L>& eng, const std::string& path);

/// Restores node states via impose(); the target engine must have matching
/// box extents. The engine's step counter is not part of the state.
///
/// The file is validated in full (magic, header, extents, precision tag,
/// exact payload size) before the first impose(): a malformed or truncated
/// file raises a `CheckpointError` with the malformation classified and
/// leaves the engine untouched.
template <class L>
void load_checkpoint(Engine<L>& eng, const std::string& path);

extern template void save_checkpoint<D2Q9>(const Engine<D2Q9>&,
                                           const std::string&);
extern template void save_checkpoint<D3Q19>(const Engine<D3Q19>&,
                                            const std::string&);
extern template void save_checkpoint<D3Q27>(const Engine<D3Q27>&,
                                            const std::string&);
extern template void save_checkpoint<D3Q15>(const Engine<D3Q15>&,
                                            const std::string&);
extern template void load_checkpoint<D2Q9>(Engine<D2Q9>&, const std::string&);
extern template void load_checkpoint<D3Q19>(Engine<D3Q19>&,
                                            const std::string&);
extern template void load_checkpoint<D3Q27>(Engine<D3Q27>&,
                                            const std::string&);
extern template void load_checkpoint<D3Q15>(Engine<D3Q15>&,
                                            const std::string&);

}  // namespace mlbm
