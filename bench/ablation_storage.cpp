// Ablation: MR global-storage policy (ping-pong vs Dethier-style circular
// shift). Both policies move identical global traffic per update — the
// performance argument of the paper is unchanged — but circular shifting
// halves the resident footprint, at the cost of the bounded-skew scheduling
// contract (DESIGN.md §3). Also cross-checks wall-clock of the functional
// engines and bitwise-equality of their physics.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "perfmodel/report.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace mlbm;

namespace {

template <class L>
void compare(int nx, int ny, int nz, int steps, CsvWriter& csv) {
  MrConfig pp = bench::default_mr_config(L::D);
  MrConfig cs = pp;
  cs.storage = MomentStorage::kCircularShift;

  Geometry geo = bench::periodic_geo(nx, ny, nz);
  MrEngine<L> a(geo, 0.8, Regularization::kProjective, pp);
  MrEngine<L> b(geo, 0.8, Regularization::kProjective, cs);

  const auto ta = bench::measure_traffic<L>(a, steps);
  const auto tb = bench::measure_traffic<L>(b, steps);

  // Physics must agree exactly after the measurement runs (same arithmetic).
  double max_diff = 0;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        max_diff = std::max(max_diff,
                            std::abs(a.moments_at(x, y, z).u[0] -
                                     b.moments_at(x, y, z).u[0]));
      }
    }
  }

  AsciiTable t({"policy", "state bytes/node", "read B/node", "write B/node",
                "max |du|"});
  const double cells = static_cast<double>(geo.box.cells());
  t.row({"ping-pong", AsciiTable::num(a.state_bytes() / cells, 1),
         AsciiTable::num(ta.read_bytes_per_node, 1),
         AsciiTable::num(ta.write_bytes_per_node, 1), "-"});
  t.row({"circular-shift", AsciiTable::num(b.state_bytes() / cells, 1),
         AsciiTable::num(tb.read_bytes_per_node, 1),
         AsciiTable::num(tb.write_bytes_per_node, 1),
         AsciiTable::num(max_diff, 12)});
  std::printf("\n-- %s (%dx%dx%d, %d steps) --\n", L::name(), nx, ny, nz,
              steps);
  t.print();

  csv.row({L::name(), "ping-pong", CsvWriter::num(a.state_bytes() / cells),
           CsvWriter::num(ta.read_bytes_per_node),
           CsvWriter::num(ta.write_bytes_per_node)});
  csv.row({L::name(), "circular-shift",
           CsvWriter::num(b.state_bytes() / cells),
           CsvWriter::num(tb.read_bytes_per_node),
           CsvWriter::num(tb.write_bytes_per_node)});
}

}  // namespace

int main() {
  perf::print_banner("Ablation", "MR storage policy: ping-pong vs circular shift");
  CsvWriter csv(perf::results_dir() + "/ablation_storage.csv",
                {"lattice", "policy", "state_bytes_per_node", "read_bpn",
                 "write_bpn"});
  compare<D2Q9>(64, 48, 1, 5, csv);
  compare<D3Q19>(16, 16, 12, 3, csv);
  std::printf(
      "\ncircular shift stores M doubles/node (+2 layers) instead of 2M,\n"
      "with identical traffic and bit-identical physics.\n");
  return 0;
}
