// Minimal command line parser for examples and benchmark harnesses.
//
// Supports `--key value` and `--key=value` forms plus boolean flags
// (`--flag`). Every key queried through has()/get*() is recorded as a valid
// option; after the caller has declared its full option set that way,
// reject_unknown() turns any leftover `--typo` into a typed ConfigError that
// lists the valid options.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace mlbm {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True when `--key` was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  /// Strict full-string parse: `--steps 12abc`, `--steps abc` and
  /// out-of-int-range values all raise a ConfigError naming the option
  /// (nothing is silently truncated the way std::stoi would).
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  /// As get_int, additionally requiring value >= min (typed error instead of
  /// a nonsense run from `--steps 0` or `--slabs -3`).
  [[nodiscard]] int get_int(const std::string& key, int fallback,
                            int min) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  /// As get_double with a lower bound: value must be strictly greater than
  /// `above` (e.g. rates and factors that must be positive).
  [[nodiscard]] double get_double(const std::string& key, double fallback,
                                  double above) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non `--`) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// All `--key`s seen, for usage validation.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Throws ConfigError if any parsed `--key` was never queried through
  /// has()/get*(): call it after the last option lookup, so the queried set
  /// IS the valid option set and the message can list it. `extra` names
  /// options that are valid but conditionally queried.
  void reject_unknown(const std::vector<std::string>& extra = {}) const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> queried_;
};

}  // namespace mlbm
