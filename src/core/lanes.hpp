// Lane-batched (SoA panel) forms of the per-node collision kernels.
//
// The scalar engine kernels process one lattice node at a time: gather the
// node's Q populations (or M moments) into registers, collide, scatter. The
// lane-batched execution path (ExecMode::kLanes) processes kLaneWidth
// consecutive nodes per panel instead, holding every register as a
// lane-major array `v[component][lane]` so the per-component inner loops run
// over the lane dimension and vectorize (`#pragma omp simd`) — the host
// analogue of a GPU warp executing the same kernel over 32 nodes in
// lockstep, and the SoA/SIMD structure Habich et al. and Wittmann et al.
// identify as the deciding factor for LBM throughput on wide cores.
//
// Bit-identity contract: per-node LBM arithmetic is independent across
// nodes, and every lane kernel below performs, per lane, *exactly* the
// operation sequence of its scalar counterpart (same expressions, same
// association, same ascending component order). Batching therefore changes
// only the interleaving of independent per-node computations, never any
// node's result — the Scalar-vs-Lanes tests pin this with bitwise field
// comparisons. Partial panels (grid size not a multiple of kLaneWidth) run
// with `n < W` active lanes; trailing lanes are never read or written.
#pragma once

#include "core/collision.hpp"
#include "core/lattice.hpp"
#include "core/moments.hpp"
#include "core/regularization.hpp"
#include "util/types.hpp"

// Vectorization hint for the lane loops. `omp simd` needs no OpenMP runtime
// (it is a pure compiler directive), but guarding on _OPENMP avoids
// -Wunknown-pragmas noise on compilers invoked without -fopenmp.
#if defined(_OPENMP)
#define MLBM_SIMD _Pragma("omp simd")
#else
#define MLBM_SIMD
#endif

// Inlining guarantee for the per-node gather/scatter helpers the engines
// factor out to share between the scalar and lane bodies. Sharing gives the
// helper two call sites, which flips GCC's inlining heuristic from "inline
// into the hot loop" to "outline and call per node" — a measured ~1.8x
// slowdown of the ST hot path. The attribute restores the seed behaviour.
#if defined(__GNUC__)
#define MLBM_ALWAYS_INLINE __attribute__((always_inline))
#else
#define MLBM_ALWAYS_INLINE
#endif

namespace mlbm {

/// Nodes per SoA panel. Eight doubles = one 64-byte cache line and a full
/// AVX-512 vector (two AVX2 vectors); wide enough to amortize the per-panel
/// setup, small enough that the lane-major registers of a D3Q27 panel
/// (~Q·W doubles) stay L1-resident.
inline constexpr int kLaneWidth = 8;

/// Lane-batched moment projection: per lane, the exact ascending-i sums of
/// compute_moments (rho first, then each u component as dot/rho, then each
/// Pi component).
template <class L, int W>
void compute_moments_lanes(const real_t (&f)[L::Q][W], int n,
                           real_t (&rho)[W], real_t (&u)[L::D][W],
                           real_t (&pi)[SymPairs<L::D>::N][W]) {
  const auto& t = detail::kMomentProjection<L>;
  MLBM_SIMD
  for (int ln = 0; ln < n; ++ln) {
    real_t acc = 0;
    for (int i = 0; i < L::Q; ++i) acc += f[i][ln];
    rho[ln] = acc;
  }
  for (int a = 0; a < L::D; ++a) {
    MLBM_SIMD
    for (int ln = 0; ln < n; ++ln) {
      real_t acc = 0;
      for (int i = 0; i < L::Q; ++i) acc += t.c[a][i] * f[i][ln];
      u[a][ln] = acc / rho[ln];
    }
  }
  for (int p = 0; p < SymPairs<L::D>::N; ++p) {
    MLBM_SIMD
    for (int ln = 0; ln < n; ++ln) {
      real_t acc = 0;
      for (int i = 0; i < L::Q; ++i) acc += t.h2[p][i] * f[i][ln];
      pi[p][ln] = acc;
    }
  }
}

/// Lane-batched BGK relaxation; per lane identical to collide_bgk (which
/// evaluates equilibrium<L> per direction with fresh cu/uu accumulators).
template <class L, int W>
void collide_bgk_lanes(real_t (&f)[L::Q][W], int n, real_t tau) {
  real_t rho[W];
  real_t u[L::D][W];
  real_t pi[SymPairs<L::D>::N][W];
  compute_moments_lanes<L, W>(f, n, rho, u, pi);
  const real_t omega = real_t(1) / tau;
  const real_t inv_cs2 = real_t(1) / L::cs2;
  for (int i = 0; i < L::Q; ++i) {
    const real_t wi = L::w[static_cast<std::size_t>(i)];
    MLBM_SIMD
    for (int ln = 0; ln < n; ++ln) {
      real_t cu{};
      real_t uu{};
      for (int a = 0; a < L::D; ++a) {
        cu += static_cast<real_t>(
                  L::c[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)]) *
              u[a][ln];
        uu += u[a][ln] * u[a][ln];
      }
      const real_t feq =
          wi * rho[ln] *
          (real_t(1) + inv_cs2 * cu +
           real_t(0.5) * inv_cs2 * inv_cs2 * cu * cu -
           real_t(0.5) * inv_cs2 * uu);
      f[i][ln] += omega * (feq - f[i][ln]);
    }
  }
}

/// Lane-batched Reconstructor<L, R>: one panel of per-node Hermite-moment
/// registers (lane-major), evaluated direction by direction with the same
/// sparse compile-time tables — the construction and evaluation of each lane
/// is operation-for-operation the scalar Reconstructor's.
template <class L, Regularization R, int W>
class ReconstructorLanes {
 public:
  static constexpr int NP = SymPairs<L::D>::N;
  using HS = HermiteSparsity<L>;

  ReconstructorLanes(int n, const real_t (&rho)[W], const real_t (&u)[L::D][W],
                     const real_t (&pineq)[NP][W])
      : n_(n) {
    for (int ln = 0; ln < n; ++ln) rho_[ln] = rho[ln];
    for (int a = 0; a < L::D; ++a) {
      MLBM_SIMD
      for (int ln = 0; ln < n; ++ln) {
        rho_u_[a][ln] = rho[ln] * u[a][ln];
      }
    }
    for (int p = 0; p < NP; ++p) {
      const int a = SymPairs<L::D>::idx[static_cast<std::size_t>(p)][0];
      const int b = SymPairs<L::D>::idx[static_cast<std::size_t>(p)][1];
      MLBM_SIMD
      for (int ln = 0; ln < n; ++ln) {
        a2_[p][ln] = rho[ln] * u[a][ln] * u[b][ln] + pineq[p][ln];
      }
    }
    if constexpr (R == Regularization::kRecursive) {
      using P = SymPairs<L::D>;
      using T3 = SymTriples<L::D>;
      using T4 = SymQuads<L::D>;
      for (int t = 0; t < HS::NU3; ++t) {
        const auto st =
            static_cast<std::size_t>(HS::map3[static_cast<std::size_t>(t)]);
        const int a = T3::idx[st][0];
        const int b = T3::idx[st][1];
        const int g = T3::idx[st][2];
        const int bg = P::index(b, g);
        const int ag = P::index(a, g);
        const int ab = P::index(a, b);
        MLBM_SIMD
        for (int ln = 0; ln < n; ++ln) {
          a3_[t][ln] = rho[ln] * u[a][ln] * u[b][ln] * u[g][ln] +
                       (u[a][ln] * pineq[bg][ln] + u[b][ln] * pineq[ag][ln] +
                        u[g][ln] * pineq[ab][ln]);
        }
      }
      for (int q = 0; q < HS::NU4; ++q) {
        const auto sq =
            static_cast<std::size_t>(HS::map4[static_cast<std::size_t>(q)]);
        const int a = T4::idx[sq][0];
        const int b = T4::idx[sq][1];
        const int g = T4::idx[sq][2];
        const int d = T4::idx[sq][3];
        const int gd = P::index(g, d);
        const int bd = P::index(b, d);
        const int bg = P::index(b, g);
        const int ad = P::index(a, d);
        const int ag = P::index(a, g);
        const int ab = P::index(a, b);
        MLBM_SIMD
        for (int ln = 0; ln < n; ++ln) {
          a4_[q][ln] = rho[ln] * u[a][ln] * u[b][ln] * u[g][ln] * u[d][ln] +
                       (u[a][ln] * u[b][ln] * pineq[gd][ln] +
                        u[a][ln] * u[g][ln] * pineq[bd][ln] +
                        u[a][ln] * u[d][ln] * pineq[bg][ln] +
                        u[b][ln] * u[g][ln] * pineq[ad][ln] +
                        u[b][ln] * u[d][ln] * pineq[ag][ln] +
                        u[g][ln] * u[d][ln] * pineq[ab][ln]);
        }
      }
    }
  }

  /// Reconstructs population `i` for every active lane into `out`.
  void eval(int i, real_t (&out)[W]) const {
    const auto& t = ReconstructTables<L>::get();
    const auto si = static_cast<std::size_t>(i);
    MLBM_SIMD
    for (int ln = 0; ln < n_; ++ln) {
      real_t acc = t.k0[si] * rho_[ln];
      for (int a = 0; a < L::D; ++a) {
        acc += t.k1[si][static_cast<std::size_t>(a)] * rho_u_[a][ln];
      }
      for (int p = 0; p < NP; ++p) {
        acc += t.k2[si][static_cast<std::size_t>(p)] * a2_[p][ln];
      }
      if constexpr (R == Regularization::kRecursive) {
        for (int s = 0; s < t.nnz3[si]; ++s) {
          acc += t.s3c[si][static_cast<std::size_t>(s)] *
                 a3_[t.s3i[si][static_cast<std::size_t>(s)]][ln];
        }
        for (int q = 0; q < t.nnz4[si]; ++q) {
          acc += t.s4c[si][static_cast<std::size_t>(q)] *
                 a4_[t.s4i[si][static_cast<std::size_t>(q)]][ln];
        }
      }
      out[ln] = acc;
    }
  }

 private:
  struct Empty {};
  template <int N>
  using HigherRegs =
      std::conditional_t<R == Regularization::kRecursive, real_t[N][W], Empty>;

  int n_;
  real_t rho_[W] = {};
  real_t rho_u_[L::D][W] = {};
  real_t a2_[NP][W] = {};
  [[no_unique_address]] HigherRegs<HS::NU3 == 0 ? 1 : HS::NU3> a3_{};
  [[no_unique_address]] HigherRegs<HS::NU4 == 0 ? 1 : HS::NU4> a4_{};
};

/// Lane-batched regularized relaxation; per lane identical to the
/// scheme-templated collide_regularized<L, R>.
template <class L, Regularization R, int W>
void collide_regularized_lanes(real_t (&f)[L::Q][W], int n, real_t tau) {
  static constexpr int NP = SymPairs<L::D>::N;
  real_t rho[W];
  real_t u[L::D][W];
  real_t pi[NP][W];
  compute_moments_lanes<L, W>(f, n, rho, u, pi);
  const real_t factor = real_t(1) - real_t(1) / tau;
  real_t pineq_star[NP][W];
  for (int p = 0; p < NP; ++p) {
    const int a = SymPairs<L::D>::idx[static_cast<std::size_t>(p)][0];
    const int b = SymPairs<L::D>::idx[static_cast<std::size_t>(p)][1];
    MLBM_SIMD
    for (int ln = 0; ln < n; ++ln) {
      pineq_star[p][ln] =
          factor * (pi[p][ln] - rho[ln] * u[a][ln] * u[b][ln]);
    }
  }
  const ReconstructorLanes<L, R, W> rec(n, rho, u, pineq_star);
  for (int i = 0; i < L::Q; ++i) {
    rec.eval(i, f[i]);
  }
}

/// Runtime-scheme lane collision: one branch per panel (kLaneWidth nodes),
/// then a fully scheme-templated kernel.
template <class L, int W>
void collide_lanes(CollisionScheme scheme, real_t (&f)[L::Q][W], int n,
                   real_t tau) {
  switch (scheme) {
    case CollisionScheme::kBGK:
      collide_bgk_lanes<L, W>(f, n, tau);
      break;
    case CollisionScheme::kProjective:
      collide_regularized_lanes<L, Regularization::kProjective, W>(f, n, tau);
      break;
    case CollisionScheme::kRecursive:
      collide_regularized_lanes<L, Regularization::kRecursive, W>(f, n, tau);
      break;
  }
}

}  // namespace mlbm
