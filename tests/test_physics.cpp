// Physics validation against analytic Navier-Stokes solutions.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "workloads/analytic.hpp"
#include "workloads/cavity.hpp"
#include "workloads/channel.hpp"
#include "workloads/shear_layer.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

// --------------------------------------------------------------- Poiseuille

template <class E>
double poiseuille_error(E& eng, const Channel<D2Q9>& ch, int steps) {
  ch.attach(eng);
  eng.run(steps);
  const Box& b = eng.geometry().box;
  double worst = 0;
  for (int y = 0; y < b.ny; ++y) {
    const auto m = eng.moments_at(b.nx / 2, y, 0);
    const real_t ref = ch.u_max * analytic::poiseuille(b.ny, y);
    worst = std::max(worst, std::abs(static_cast<double>(m.u[0] - ref)));
  }
  return worst / ch.u_max;
}

TEST(Poiseuille2D, StConvergesToParabola) {
  const auto ch = Channel<D2Q9>::create(48, 16, 1, 0.8, 0.05);
  StEngine<D2Q9> e(ch.geo, 0.8);
  EXPECT_LT(poiseuille_error(e, ch, 2500), 0.01);
}

TEST(Poiseuille2D, MrProjectiveConvergesToParabola) {
  const auto ch = Channel<D2Q9>::create(48, 16, 1, 0.8, 0.05);
  MrEngine<D2Q9> e(ch.geo, 0.8, Regularization::kProjective, {16, 1, 2});
  EXPECT_LT(poiseuille_error(e, ch, 2500), 0.01);
}

TEST(Poiseuille2D, MrRecursiveConvergesToParabola) {
  const auto ch = Channel<D2Q9>::create(48, 16, 1, 0.8, 0.05);
  MrEngine<D2Q9> e(ch.geo, 0.8, Regularization::kRecursive, {16, 1, 2});
  EXPECT_LT(poiseuille_error(e, ch, 2500), 0.01);
}

TEST(Poiseuille2D, ConvergesAtDifferentTau) {
  for (const real_t tau : {0.6, 1.1}) {
    const auto ch = Channel<D2Q9>::create(48, 16, 1, tau, 0.04);
    StEngine<D2Q9> e(ch.geo, tau);
    EXPECT_LT(poiseuille_error(e, ch, 3500), 0.015) << "tau=" << tau;
  }
}

// ------------------------------------------------------------------ Couette

template <class E>
void check_couette(E& eng, real_t u_wall, int steps) {
  eng.initialize(
      [](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
  eng.run(steps);
  const Box& b = eng.geometry().box;
  for (int y = 0; y < b.ny; ++y) {
    const auto m = eng.moments_at(b.nx / 2, y, 0);
    const real_t ref = u_wall * analytic::couette(b.ny, y);
    EXPECT_NEAR(m.u[0], ref, 0.02 * u_wall) << "y=" << y;
  }
}

Geometry couette_geo(int nx, int ny, real_t u_wall) {
  Geometry geo(Box{nx, ny, 1});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kWall);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  geo.bc.face[1][1].u_wall = {u_wall, 0, 0};  // top wall drives the flow
  return geo;
}

TEST(Couette2D, StLinearProfile) {
  StEngine<D2Q9> e(couette_geo(8, 16, 0.05), 0.8);
  check_couette(e, 0.05, 3000);
}

TEST(Couette2D, MrLinearProfile) {
  MrEngine<D2Q9> e(couette_geo(8, 16, 0.05), 0.8,
                   Regularization::kProjective, {8, 1, 2});
  check_couette(e, 0.05, 3000);
}

TEST(Couette2D, MrRecursiveCircShiftLinearProfile) {
  MrEngine<D2Q9> e(couette_geo(8, 16, 0.05), 0.8, Regularization::kRecursive,
                   {8, 1, 1, MomentStorage::kCircularShift});
  check_couette(e, 0.05, 3000);
}

// --------------------------------------------------------- Taylor-Green 2D

template <class E>
double measured_viscosity_tg(E& eng, const TaylorGreen<D2Q9>& tg, int steps) {
  tg.attach(eng);
  const real_t e0 = TaylorGreen<D2Q9>::kinetic_energy(eng);
  eng.run(steps);
  const real_t e1 = TaylorGreen<D2Q9>::kinetic_energy(eng);
  // E(t) = E0 exp(-4 nu k^2 t)  (energy decays twice as fast as velocity).
  const real_t k = 2 * 3.14159265358979323846 / tg.n;
  return -std::log(e1 / e0) / (4 * k * k * steps);
}

TEST(TaylorGreen2D, ViscosityMatchesTauSt) {
  const auto tg = TaylorGreen<D2Q9>::create(32, 0.02);
  StEngine<D2Q9> e(tg.geo, 0.8);
  const double nu = measured_viscosity_tg(e, tg, 200);
  EXPECT_NEAR(nu, e.viscosity(), 0.02 * e.viscosity());
}

TEST(TaylorGreen2D, ViscosityMatchesTauMrProjective) {
  const auto tg = TaylorGreen<D2Q9>::create(32, 0.02);
  MrEngine<D2Q9> e(tg.geo, 0.8, Regularization::kProjective, {8, 1, 4});
  const double nu = measured_viscosity_tg(e, tg, 200);
  EXPECT_NEAR(nu, e.viscosity(), 0.02 * e.viscosity());
}

TEST(TaylorGreen2D, ViscosityMatchesTauMrRecursive) {
  const auto tg = TaylorGreen<D2Q9>::create(32, 0.02);
  MrEngine<D2Q9> e(tg.geo, 0.9, Regularization::kRecursive, {8, 1, 2});
  const double nu = measured_viscosity_tg(e, tg, 200);
  EXPECT_NEAR(nu, e.viscosity(), 0.02 * e.viscosity());
}

TEST(TaylorGreen2D, PointwiseVelocityMatchesAnalytic) {
  const auto tg = TaylorGreen<D2Q9>::create(32, 0.02);
  StEngine<D2Q9> e(tg.geo, 0.8);
  tg.attach(e);
  const int steps = 100;
  e.run(steps);
  double worst = 0;
  for (int y = 0; y < 32; y += 3) {
    for (int x = 0; x < 32; x += 3) {
      const auto m = e.moments_at(x, y, 0);
      const auto ref = tg.velocity(x, y, e.viscosity(), steps);
      worst = std::max(worst, std::abs(static_cast<double>(m.u[0] - ref[0])));
      worst = std::max(worst, std::abs(static_cast<double>(m.u[1] - ref[1])));
    }
  }
  EXPECT_LT(worst, 0.02 * tg.u0);
}

// --------------------------------------------------------- Taylor-Green 3D

TEST(TaylorGreen3D, D3Q19DecayMatchesViscosity) {
  const auto tg = TaylorGreen<D3Q19>::create(24, 0.02, 6);
  MrEngine<D3Q19> e(tg.geo, 0.8, Regularization::kProjective, {8, 8, 1});
  tg.attach(e);
  const real_t e0 = TaylorGreen<D3Q19>::kinetic_energy(e);
  const int steps = 120;
  e.run(steps);
  const real_t e1 = TaylorGreen<D3Q19>::kinetic_energy(e);
  const real_t k = 2 * 3.14159265358979323846 / tg.n;
  const double nu = -std::log(e1 / e0) / (4 * k * k * steps);
  EXPECT_NEAR(nu, e.viscosity(), 0.03 * e.viscosity());
}

// ------------------------------------------------------------ 3D duct flow

TEST(Duct3D, MrProfileMatchesSeriesSolution) {
  const real_t tau = 0.8, umax = 0.04;
  const auto ch = Channel<D3Q19>::create(24, 12, 12, tau, umax);
  MrEngine<D3Q19> e(ch.geo, tau, Regularization::kProjective, {8, 6, 1});
  ch.attach(e);
  e.run(1200);
  double worst = 0;
  for (int z = 0; z < 12; ++z) {
    for (int y = 0; y < 12; ++y) {
      const auto m = e.moments_at(12, y, z);
      const real_t ref = umax * analytic::duct(12, 12, y, z);
      worst = std::max(worst, std::abs(static_cast<double>(m.u[0] - ref)));
    }
  }
  EXPECT_LT(worst / umax, 0.05);
}

// ----------------------------------------------------------- conservation

TEST(Conservation, CavityMassIsExactlyConservedByAllEngines) {
  const auto cav = LidDrivenCavity<D2Q9>::create(16, 0.08);

  StEngine<D2Q9> st(cav.geo, 0.7);
  cav.attach(st);
  const real_t m0_st = LidDrivenCavity<D2Q9>::total_mass(st);
  st.run(100);
  EXPECT_NEAR(LidDrivenCavity<D2Q9>::total_mass(st), m0_st, 1e-9);

  MrEngine<D2Q9> mr(cav.geo, 0.7, Regularization::kProjective, {8, 1, 2});
  cav.attach(mr);
  const real_t m0_mr = LidDrivenCavity<D2Q9>::total_mass(mr);
  mr.run(100);
  EXPECT_NEAR(LidDrivenCavity<D2Q9>::total_mass(mr), m0_mr, 1e-9);
}

TEST(Conservation, PeriodicMomentumConserved) {
  const auto tg = TaylorGreen<D2Q9>::create(24, 0.03);
  MrEngine<D2Q9> e(tg.geo, 0.8, Regularization::kRecursive, {8, 1, 2});
  tg.attach(e);
  auto momentum = [&] {
    real_t px = 0, py = 0;
    for (int y = 0; y < 24; ++y) {
      for (int x = 0; x < 24; ++x) {
        const auto m = e.moments_at(x, y, 0);
        px += m.rho * m.u[0];
        py += m.rho * m.u[1];
      }
    }
    return std::array<real_t, 2>{px, py};
  };
  const auto p0 = momentum();
  e.run(50);
  const auto p1 = momentum();
  EXPECT_NEAR(p1[0], p0[0], 1e-10);
  EXPECT_NEAR(p1[1], p0[1], 1e-10);
}

// ------------------------------------------------------------- cavity flow

TEST(Cavity2D, DevelopsPrimaryVortex) {
  const auto cav = LidDrivenCavity<D2Q9>::create(24, 0.08);
  MrEngine<D2Q9> e(cav.geo, 0.7, Regularization::kProjective, {8, 1, 2});
  cav.attach(e);
  e.run(2000);
  // Below the lid the flow follows it; at the bottom it recirculates.
  const auto near_lid = e.moments_at(12, 22, 0);
  const auto low = e.moments_at(12, 4, 0);
  EXPECT_GT(near_lid.u[0], 0.01);
  EXPECT_LT(low.u[0], 0.0);  // return flow
  // Everything stays bounded.
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 24; ++x) {
      const auto m = e.moments_at(x, y, 0);
      EXPECT_TRUE(std::isfinite(m.u[0]) && std::isfinite(m.u[1]));
      EXPECT_LT(std::abs(m.u[0]), 0.1);
    }
  }
}

// --------------------------------------------------- stability (motivation)

TEST(Stability, RegularizationOutlivesBgkOnDoubleShearLayer) {
  // Minion-Brown double shear layer at tau ~ 1/2: the classic discriminator.
  // BGK develops spurious vortices and blows up; the regularized schemes
  // survive — the stability property the paper's compression builds on.
  const real_t tau = 0.501, u0 = 0.08;
  const auto sl = DoubleShearLayer<D2Q9>::create(32, u0);

  StEngine<D2Q9> bgk(sl.geo, tau);
  sl.attach(bgk);
  bgk.run(800);
  EXPECT_FALSE(DoubleShearLayer<D2Q9>::healthy(bgk));

  MrEngine<D2Q9> mrp(sl.geo, tau, Regularization::kProjective, {16, 1, 4});
  sl.attach(mrp);
  mrp.run(800);
  EXPECT_TRUE(DoubleShearLayer<D2Q9>::healthy(mrp));

  MrEngine<D2Q9> mrr(sl.geo, tau, Regularization::kRecursive, {16, 1, 4});
  sl.attach(mrr);
  mrr.run(800);
  EXPECT_TRUE(DoubleShearLayer<D2Q9>::healthy(mrr));
}

TEST(Stability, ShearLayerSetupIsHealthyInitially) {
  const auto sl = DoubleShearLayer<D2Q9>::create(32, 0.06);
  StEngine<D2Q9> e(sl.geo, 0.8);
  sl.attach(e);
  EXPECT_TRUE(DoubleShearLayer<D2Q9>::healthy(e));
  // Comfortably resolved tau: everything survives and stays healthy.
  e.run(200);
  EXPECT_TRUE(DoubleShearLayer<D2Q9>::healthy(e));
}

TEST(Stability, RecursiveRegularizationSurvivesUnderresolvedVortex) {
  // tau close to 1/2 and a strong vortex: the regime regularization targets.
  const auto tg = TaylorGreen<D2Q9>::create(32, 0.08);
  MrEngine<D2Q9> e(tg.geo, 0.51, Regularization::kRecursive, {8, 1, 2});
  tg.attach(e);
  e.run(300);
  for (int y = 0; y < 32; y += 4) {
    for (int x = 0; x < 32; x += 4) {
      const auto m = e.moments_at(x, y, 0);
      ASSERT_TRUE(std::isfinite(m.rho));
      ASSERT_TRUE(std::isfinite(m.u[0]));
      EXPECT_LT(std::abs(m.u[0]), 0.5);
    }
  }
}

}  // namespace
}  // namespace mlbm
