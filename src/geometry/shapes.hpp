// Voxelizers: stamp solid shapes into a Geometry's flag field.
//
// Coordinates are node-centre lattice units (node (x,y,z) sits at the point
// (x, y, z)); a node becomes solid when its centre lies inside the shape.
// All voxelizers only ever *add* solids — they never clear flags — so they
// compose by union.
#pragma once

#include <cstdint>

#include "geometry/geometry.hpp"

namespace mlbm::shapes {

/// Circular cylinder along the z axis (a disc in 2D), centred at (cx, cy)
/// with radius r, spanning the full z extent. Returns nodes marked solid.
index_t add_cylinder(Geometry& geo, real_t cx, real_t cy, real_t r);

/// Solid sphere centred at (cx, cy, cz) with radius r.
index_t add_sphere(Geometry& geo, real_t cx, real_t cy, real_t cz, real_t r);

/// Solid axis-aligned block covering [x0, x1) x [y0, y1) x [z0, z1),
/// clipped to the box.
index_t add_block(Geometry& geo, int x0, int x1, int y0, int y1, int z0,
                  int z1);

/// Marks each currently-fluid node solid independently with probability
/// `fraction` (deterministic: a per-node hash of (seed, node index), so the
/// result is independent of traversal order). Returns nodes marked solid.
/// The porous-plug workload sweeps this to dial fluid fraction.
index_t add_random_solids(Geometry& geo, double fraction, std::uint64_t seed);

}  // namespace mlbm::shapes
