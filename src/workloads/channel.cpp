#include "workloads/channel.hpp"

#include "util/error.hpp"

#include <stdexcept>

namespace mlbm {

template <class L>
real_t Channel<L>::inlet_ux(int y, int z) const {
  return bc->inlet_velocity(y, z)[0];
}

template <class L>
Channel<L> Channel<L>::create(int nx, int ny, int nz, real_t tau, real_t u_max,
                              InletProfile profile) {
  if constexpr (L::D == 2) {
    if (nz != 1) throw ConfigError("2D channel requires nz == 1");
  } else {
    if (nz < 2) throw ConfigError("3D channel requires nz >= 2");
  }

  Box box{nx, ny, nz};
  Geometry geo(box);
  geo.bc.set_axis(0, FaceBC::kOpen);
  geo.bc.set_axis(1, FaceBC::kWall);
  geo.bc.set_axis(2, L::D == 3 ? FaceBC::kWall : FaceBC::kPeriodic);

  std::vector<std::array<real_t, 3>> inlet(
      static_cast<std::size_t>(ny) * static_cast<std::size_t>(nz),
      {0, 0, 0});
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      real_t shape = 1;
      if (profile == InletProfile::kLaminar) {
        shape = (L::D == 2) ? analytic::poiseuille(ny, y)
                            : analytic::duct(ny, nz, y, z);
      }
      inlet[static_cast<std::size_t>(y) +
            static_cast<std::size_t>(ny) * static_cast<std::size_t>(z)] = {
          u_max * shape, 0, 0};
      geo.set(0, y, z, NodeKind::kInlet);
      geo.set(nx - 1, y, z, NodeKind::kOutlet);
    }
  }
  // Tag wall-adjacent fluid nodes for diagnostics.
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      const bool wall = y == 0 || y == ny - 1 ||
                        (L::D == 3 && (z == 0 || z == nz - 1));
      if (!wall) continue;
      for (int x = 1; x < nx - 1; ++x) {
        geo.set(x, y, z, NodeKind::kWall);
      }
    }
  }

  Channel ch{std::move(geo), tau, u_max,
             std::make_shared<InletOutletBC<L>>(box, std::move(inlet))};
  return ch;
}

template <class L>
void Channel<L>::attach(Engine<L>& eng) const {
  const auto bc_ptr = bc;
  eng.initialize([this](int /*x*/, int y, int z) {
    std::array<real_t, L::D> u{};
    u[0] = inlet_ux(y, z);
    return equilibrium_moments<L>(real_t(1), u);
  });
  eng.set_post_step([bc_ptr](Engine<L>& e) { bc_ptr->apply(e); });
}

template struct Channel<D2Q9>;
template struct Channel<D3Q19>;
template struct Channel<D3Q27>;
template struct Channel<D3Q15>;

}  // namespace mlbm
