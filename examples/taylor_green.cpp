// Taylor-Green vortex decay study: validates the viscosity of every engine
// against the exact Navier-Stokes solution and writes the energy decay
// series to CSV for plotting.
//
//   ./examples/taylor_green [--n 48] [--tau 0.8] [--u0 0.03] [--steps 400]
//                           [--csv decay.csv]
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "engines/mr_engine.hpp"
#include "engines/st_engine.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "workloads/analytic.hpp"
#include "workloads/taylor_green.hpp"

int main(int argc, char** argv) {
  using namespace mlbm;
  const Cli cli(argc, argv);
  const int n = cli.get_int("n", 48);
  const real_t tau = cli.get_double("tau", 0.8);
  const real_t u0 = cli.get_double("u0", 0.03);
  const int steps = cli.get_int("steps", 400);
  const int sample_every = std::max(1, steps / 20);

  const auto tg = TaylorGreen<D2Q9>::create(n, u0);

  StEngine<D2Q9> st(tg.geo, tau);
  MrEngine<D2Q9> mrp(tg.geo, tau, Regularization::kProjective, {16, 1, 4});
  MrEngine<D2Q9> mrr(tg.geo, tau, Regularization::kRecursive, {16, 1, 4});
  std::vector<Engine<D2Q9>*> engines = {&st, &mrp, &mrr};

  const real_t nu = D2Q9::cs2 * (tau - real_t(0.5));
  std::printf("taylor_green: %dx%d, tau=%.3f (nu=%.4f), u0=%.3f\n\n", n, n,
              tau, nu, u0);

  std::unique_ptr<CsvWriter> csv;
  if (cli.has("csv")) {
    csv = std::make_unique<CsvWriter>(
        cli.get("csv", "decay.csv"),
        std::vector<std::string>{"pattern", "t", "ke", "ke_analytic"});
  }

  for (Engine<D2Q9>* e : engines) {
    tg.attach(*e);
    if (e->profiler() != nullptr) {
      e->profiler()->counter().set_enabled(false);
    }
    const real_t e0 = TaylorGreen<D2Q9>::kinetic_energy(*e);
    for (int t = 0; t < steps; t += sample_every) {
      e->run(sample_every);
      const real_t ke = TaylorGreen<D2Q9>::kinetic_energy(*e);
      const real_t decay = analytic::taylor_green_decay(n, nu, e->time());
      if (csv) {
        csv->row({e->pattern_name(), std::to_string(e->time()),
                  CsvWriter::num(ke), CsvWriter::num(e0 * decay * decay)});
      }
    }
    const real_t e1 = TaylorGreen<D2Q9>::kinetic_energy(*e);
    const real_t k = 2 * 3.14159265358979323846 / n;
    const double nu_meas = -std::log(e1 / e0) / (4 * k * k * e->time());
    std::printf("%-5s  nu measured %.5f  expected %.5f  error %+.2f%%\n",
                e->pattern_name(), nu_meas, nu,
                100 * (nu_meas - nu) / nu);
  }

  if (csv) std::printf("\nwrote %s\n", cli.get("csv", "decay.csv").c_str());
  return 0;
}
