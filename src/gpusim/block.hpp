// Thread-block execution context.
//
// Kernels for the simulator are written in *block-synchronous phase* style:
// instead of emulating SIMT threads with real barriers, a kernel body runs
// per block and expresses each region between __syncthreads() calls as a
// `for_each_thread` loop. This preserves GPU semantics exactly — every
// thread completes phase N before any thread starts phase N+1 — while
// executing efficiently on the host. `sync()` records the barrier for the
// profiler (the paper attributes part of the MR pattern's bandwidth loss to
// synchronization cost, so we count them).
//
// Shared memory is a per-block bump arena whose high-water mark feeds the
// occupancy calculator; it persists for the lifetime of the kernel body, as
// on a real GPU.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/dim3.hpp"

namespace mlbm::gpusim {

class BlockCtx {
 public:
  BlockCtx() = default;
  BlockCtx(Dim3 block_idx, Dim3 block_dim)
      : block_idx_(block_idx), block_dim_(block_dim) {}

  [[nodiscard]] const Dim3& block_idx() const { return block_idx_; }
  [[nodiscard]] const Dim3& block_dim() const { return block_dim_; }

  /// Allocates `n` elements of block-shared memory, zero-initialized.
  /// Allocations persist for the lifetime of the kernel body.
  template <typename T>
  std::span<T> alloc_shared(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    auto& chunk = shared_.emplace_back(bytes, std::byte{0});
    shared_bytes_ += bytes;
    return {reinterpret_cast<T*>(chunk.data()), n};
  }

  /// Executes `fn(tid)` for every thread id in the block (x fastest). The
  /// loop completing is the simulator's barrier.
  template <class Fn>
  void for_each_thread(Fn&& fn) {
    for (int z = 0; z < block_dim_.z; ++z) {
      for (int y = 0; y < block_dim_.y; ++y) {
        for (int x = 0; x < block_dim_.x; ++x) {
          fn(Dim3{x, y, z});
        }
      }
    }
  }

  /// Records a __syncthreads(); the barrier itself is implicit in
  /// `for_each_thread` phase boundaries.
  void sync() { ++sync_count_; }

  [[nodiscard]] std::size_t shared_bytes() const { return shared_bytes_; }
  [[nodiscard]] std::uint64_t sync_count() const { return sync_count_; }

 private:
  Dim3 block_idx_{};
  Dim3 block_dim_{};
  // Chunked so that spans handed to kernels stay valid across later
  // allocations (a std::vector<std::byte> arena would reallocate).
  std::vector<std::vector<std::byte>> shared_;
  std::size_t shared_bytes_ = 0;
  std::uint64_t sync_count_ = 0;
};

}  // namespace mlbm::gpusim
