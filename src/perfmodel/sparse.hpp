// Fluid-fraction-parameterized traffic model for the sparse (tile-compressed)
// geometry path, and the sparse-vs-dense crossover it predicts.
//
// A dense kernel over a domain with fluid fraction phi updates every node, so
// its cost *per fluid update* inflates to bytes_per_flup / phi. The sparse
// path updates only fluid nodes but pays a counted index overhead: each
// active tile loads its 3^D neighbour-tile slot stash (int32 each) before any
// value traffic. With random node-level solids essentially every tile is
// active and carries ~phi*tile fluid nodes, so the overhead amortizes over
// phi * tile_nodes updates:
//
//   bpf_sparse(phi) = bpf_dense + idx_bytes_per_tile / (phi * tile_nodes)
//   bpf_dense_domain(phi) = bpf_dense / phi
//
// Equating the two gives the crossover fluid fraction
//
//   phi* = 1 - idx_bytes_per_tile / (tile_nodes * bpf_dense)
//
// above which the dense path moves fewer bytes per fluid update (the index
// overhead outweighs the vanishing solid-node waste). bench/sparse_crossover
// measures both curves with the traffic counters and compares the measured
// crossover against phi*.
#pragma once

#include "perfmodel/pattern.hpp"

namespace mlbm::perf {

/// Predicted bytes per *fluid* lattice update at fluid fraction `phi`.
struct SparseTraffic {
  double phi = 1.0;
  double bpf_dense = 0;         ///< dense kernel on an all-fluid box
  double bpf_sparse = 0;        ///< sparse path, index overhead amortized
  double bpf_dense_domain = 0;  ///< dense kernel forced over the mixed domain
};

/// Index bytes charged per active tile: the 3^D neighbour-slot stash plus the
/// tile's own slot, int32 each.
double sparse_index_bytes_per_tile(int dim);

/// Evaluates the model at one fluid fraction. `tile_nodes` is the tile size
/// in nodes (64 for the engines' 4x4x4 / 8x8 tiles). Throws ConfigError for
/// phi outside (0, 1].
SparseTraffic sparse_traffic_model(Pattern p, const LatticeInfo& lat,
                                   double elem_bytes, double phi,
                                   int tile_nodes = 64);

/// The crossover fluid fraction phi*: below it the sparse path moves fewer
/// bytes per fluid update, above it the dense path does.
double sparse_dense_crossover(Pattern p, const LatticeInfo& lat,
                              double elem_bytes, int tile_nodes = 64);

}  // namespace mlbm::perf
