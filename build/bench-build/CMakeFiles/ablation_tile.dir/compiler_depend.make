# Empty compiler generated dependencies file for ablation_tile.
# This may be replaced when dependencies are built.
