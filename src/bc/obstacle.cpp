#include "bc/obstacle.hpp"

#include "core/regularization.hpp"

namespace mlbm {

template <class L>
ObstacleBC<L>::ObstacleBC(const Geometry& geo, std::array<real_t, 3> ref)
    : ref_(ref) {
  const Box& b = geo.box;
  if (!geo.has_solids()) return;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        if (geo.solid(x, y, z)) continue;
        for (int i = 1; i < L::Q; ++i) {
          const auto& c = L::c[static_cast<std::size_t>(i)];
          int d[3] = {x + c[0], y + c[1], z + c[2]};
          const int n[3] = {b.nx, b.ny, b.nz};
          bool domain_face = false;
          for (int a = 0; a < 3; ++a) {
            if (d[a] >= 0 && d[a] < n[a]) continue;
            if (geo.bc.periodic(a)) {
              d[a] = Box::wrap(d[a], n[a]);
            } else {
              domain_face = true;  // wall/open face, not an obstacle link
            }
          }
          if (domain_face || !geo.solid(d[0], d[1], d[2])) continue;
          links_.push_back(Link{x, y, z, static_cast<std::uint8_t>(i)});
        }
      }
    }
  }
}

template <class L>
ObstacleLoad ObstacleBC<L>::evaluate(const Engine<L>& eng) const {
  ObstacleLoad load;
  const real_t omega = real_t(1) / eng.tau();

  // Links are node-ordered; reuse the reconstruction inputs of the previous
  // link when it came from the same fluid node.
  int lx = -1, ly = -1, lz = -1;
  real_t rho = 0;
  real_t u[3] = {0, 0, 0};
  real_t pineq_post[Moments<L>::NP] = {};
  for (const Link& lk : links_) {
    if (lk.x != lx || lk.y != ly || lk.z != lz) {
      const Moments<L> m = eng.moments_at(lk.x, lk.y, lk.z);
      rho = m.rho;
      for (int a = 0; a < 3; ++a) u[a] = 0;
      for (int a = 0; a < L::D; ++a) u[a] = m.u[static_cast<std::size_t>(a)];
      for (int p = 0; p < Moments<L>::NP; ++p) {
        pineq_post[p] = (real_t(1) - omega) * m.pi_neq(p);
      }
      lx = lk.x;
      ly = lk.y;
      lz = lk.z;
    }
    const int i = lk.i;
    const real_t fi =
        reconstruct_projective<L>(i, rho, u, pineq_post);
    const auto& c = L::c[static_cast<std::size_t>(i)];
    const real_t dp[3] = {real_t(2) * fi * static_cast<real_t>(c[0]),
                          real_t(2) * fi * static_cast<real_t>(c[1]),
                          real_t(2) * fi * static_cast<real_t>(c[2])};
    // Wall sits at the half-way point of the link.
    const real_t r[3] = {
        static_cast<real_t>(lk.x) + real_t(0.5) * static_cast<real_t>(c[0]) -
            ref_[0],
        static_cast<real_t>(lk.y) + real_t(0.5) * static_cast<real_t>(c[1]) -
            ref_[1],
        static_cast<real_t>(lk.z) + real_t(0.5) * static_cast<real_t>(c[2]) -
            ref_[2]};
    for (int a = 0; a < 3; ++a) load.force[static_cast<std::size_t>(a)] += dp[a];
    load.torque[0] += r[1] * dp[2] - r[2] * dp[1];
    load.torque[1] += r[2] * dp[0] - r[0] * dp[2];
    load.torque[2] += r[0] * dp[1] - r[1] * dp[0];
  }
  return load;
}

template class ObstacleBC<D2Q9>;
template class ObstacleBC<D3Q19>;
template class ObstacleBC<D3Q27>;
template class ObstacleBC<D3Q15>;

}  // namespace mlbm
