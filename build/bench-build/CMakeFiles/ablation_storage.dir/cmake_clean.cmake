file(REMOVE_RECURSE
  "../bench/ablation_storage"
  "../bench/ablation_storage.pdb"
  "CMakeFiles/ablation_storage.dir/ablation_storage.cpp.o"
  "CMakeFiles/ablation_storage.dir/ablation_storage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
