// Propagation-pattern and lattice descriptors used by the performance model.
#pragma once

namespace mlbm::perf {

/// The three propagation patterns evaluated in the paper.
enum class Pattern {
  kST,   ///< standard distribution representation, BGK, pull
  kMRP,  ///< moment representation, projective regularization
  kMRR,  ///< moment representation, recursive regularization
};

inline const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::kST: return "ST";
    case Pattern::kMRP: return "MR-P";
    case Pattern::kMRR: return "MR-R";
  }
  return "?";
}

/// Runtime mirror of the compile-time lattice descriptor, so the performance
/// model does not need to be templated.
struct LatticeInfo {
  int dim = 0;
  int q = 0;
  int m = 0;
  const char* name = "";
};

template <class L>
LatticeInfo lattice_info() {
  return {L::D, L::Q, L::M, L::name()};
}

}  // namespace mlbm::perf
