// Operation-counting scalar and per-pattern FLOP measurement.
//
// The recursive regularization's extra arithmetic is what separates MR-R
// from MR-P in the paper's 3D results (Section 4.3). Rather than hand-count
// FLOPs, the performance model replays each pattern's per-node arithmetic
// with `Counted`, a double wrapper whose operators increment a counter. The
// core math (equilibrium, reconstructions) is templated on the scalar type,
// so the counted replay executes the very same expressions as the engines.
#pragma once

#include <cstdint>

#include "core/lattice.hpp"
#include "perfmodel/pattern.hpp"
#include "util/types.hpp"

namespace mlbm::perf {

struct Counted {
  double v = 0;
  static thread_local std::uint64_t ops;

  Counted() = default;
  Counted(double x) : v(x) {}  // NOLINT: implicit by design (mixed arithmetic)

  friend Counted operator+(Counted a, Counted b) { ++ops; return {a.v + b.v}; }
  friend Counted operator-(Counted a, Counted b) { ++ops; return {a.v - b.v}; }
  friend Counted operator*(Counted a, Counted b) { ++ops; return {a.v * b.v}; }
  friend Counted operator/(Counted a, Counted b) { ++ops; return {a.v / b.v}; }
  Counted operator-() const { return {-v}; }
  Counted& operator+=(Counted o) { ++ops; v += o.v; return *this; }
  Counted& operator-=(Counted o) { ++ops; v -= o.v; return *this; }
  Counted& operator*=(Counted o) { ++ops; v *= o.v; return *this; }
  Counted& operator/=(Counted o) { ++ops; v /= o.v; return *this; }

  static void reset() { ops = 0; }
};

/// FLOPs per fluid lattice update of one full timestep of the given pattern
/// (collision + streaming bookkeeping; loads/stores excluded). For the MR
/// patterns this includes both the reconstruct-and-stream phase and the
/// moment re-projection phase of Algorithm 2.
template <class L>
double flops_per_flup(Pattern p);

extern template double flops_per_flup<mlbm::D2Q9>(Pattern);
extern template double flops_per_flup<mlbm::D3Q19>(Pattern);
extern template double flops_per_flup<mlbm::D3Q27>(Pattern);
extern template double flops_per_flup<mlbm::D3Q15>(Pattern);

}  // namespace mlbm::perf
