// mlbm-sanitizer: hazard detection on gpusim kernels.
//
// Two layers of coverage:
//  * synthetic known-bad kernels — each hazard class (shared race, OOB,
//    uninit read, sync divergence, cross-block conflict, stale read) is
//    triggered in isolation and checked for exact class and coordinates,
//    next to a minimally-different clean variant;
//  * seeded engine mutations — each deliberate break of the MR kernel's
//    addressing/barrier discipline (off-by-one ring shift, shortened
//    write-behind, removed phase sync, shrunken cross halo) must be caught,
//    while the clean engine matrix (ST pull/push, AA, MR-P/MR-R x ping-pong/
//    circular x fp64/fp32, 2D/3D, MultiDomain) reports zero hazards.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "analysis/sanitizer/sanitizer.hpp"
#include "engines/aa_engine.hpp"
#include "engines/mr_engine.hpp"
#include "engines/st_engine.hpp"
#include "gpusim/global_array.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/profiler.hpp"
#include "multidev/multi_domain.hpp"
#include "util/error.hpp"
#include "workloads/cavity.hpp"
#include "workloads/channel.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

using analysis::Hazard;
using analysis::HazardKind;
using analysis::Sanitizer;
using analysis::SanitizerReport;
using gpusim::BlockCtx;
using gpusim::Dim3;
using gpusim::GlobalArray;
using gpusim::Profiler;

// ---------------------------------------------------------------------------
// Racecheck: shared-memory hazards in synthetic kernels.
// ---------------------------------------------------------------------------

TEST(SanitizerShared, WriteWriteSameEpochIsRace) {
  Sanitizer san;
  Profiler prof;
  prof.set_sanitizer_hook(&san);
  gpusim::launch(prof, "bad_ww", Dim3{1, 1, 1}, Dim3{2, 1, 1},
                 [&](BlockCtx& blk) {
                   auto sm = blk.alloc_shared<double>(4);
                   auto* s = blk.sanitizer();
                   sm[1] = 1.0;
                   s->shared_access(blk.linear_block(), &sm[1], /*tid=*/0,
                                    /*write=*/true, blk.epoch());
                   sm[1] = 2.0;
                   s->shared_access(blk.linear_block(), &sm[1], /*tid=*/1,
                                    /*write=*/true, blk.epoch());
                 });
  const SanitizerReport r = san.report();
  EXPECT_EQ(r.count(HazardKind::kSharedRace), 1u);
  const Hazard* h = r.first(HazardKind::kSharedRace);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->array, "shared");
  EXPECT_EQ(h->elem, 1);
  EXPECT_EQ(h->kernel, "bad_ww");
  EXPECT_EQ(h->tid_a, 1);  // surfacing access
  EXPECT_EQ(h->tid_b, 0);  // prior conflicting access
  EXPECT_TRUE(h->write_a);
  EXPECT_TRUE(h->write_b);
}

TEST(SanitizerShared, BarrierSeparatesWriteFromRead) {
  for (const bool use_sync : {true, false}) {
    Sanitizer san;
    Profiler prof;
    prof.set_sanitizer_hook(&san);
    gpusim::launch(prof, use_sync ? "good_sync" : "missing_barrier",
                   Dim3{1, 1, 1}, Dim3{2, 1, 1}, [&](BlockCtx& blk) {
                     auto sm = blk.alloc_shared<double>(2);
                     auto* s = blk.sanitizer();
                     sm[0] = 3.0;
                     s->shared_access(blk.linear_block(), &sm[0], 0, true,
                                      blk.epoch());
                     if (use_sync) blk.sync();
                     [[maybe_unused]] const double v = sm[0];
                     s->shared_access(blk.linear_block(), &sm[0], 1, false,
                                      blk.epoch());
                   });
    const SanitizerReport r = san.report();
    if (use_sync) {
      EXPECT_TRUE(r.clean()) << r.to_string();
    } else {
      EXPECT_EQ(r.count(HazardKind::kSharedRace), 1u);
      const Hazard* h = r.first(HazardKind::kSharedRace);
      ASSERT_NE(h, nullptr);
      EXPECT_TRUE(h->write_b);    // the prior write
      EXPECT_FALSE(h->write_a);   // raced by the read
      EXPECT_EQ(h->elem, 0);
    }
  }
}

TEST(SanitizerShared, ReadOfNeverWrittenWordIsUninit) {
  Sanitizer san;
  Profiler prof;
  prof.set_sanitizer_hook(&san);
  gpusim::launch(prof, "uninit_shared", Dim3{1, 1, 1}, Dim3{1, 1, 1},
                 [&](BlockCtx& blk) {
                   auto sm = blk.alloc_shared<double>(8);
                   auto* s = blk.sanitizer();
                   [[maybe_unused]] const double v = sm[5];
                   s->shared_access(blk.linear_block(), &sm[5], 0, false,
                                    blk.epoch());
                 });
  const SanitizerReport r = san.report();
  EXPECT_EQ(r.count(HazardKind::kUninitRead), 1u);
  const Hazard* h = r.first(HazardKind::kUninitRead);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->array, "shared");
  EXPECT_EQ(h->elem, 5);
}

// ---------------------------------------------------------------------------
// Barrier epochs (BlockCtx::sync contract).
// ---------------------------------------------------------------------------

TEST(SanitizerEpochs, SyncReturnsMonotoneEpochIds) {
  Profiler prof;
  gpusim::launch(prof, "epochs", Dim3{1, 1, 1}, Dim3{1, 1, 1},
                 [&](BlockCtx& blk) {
                   EXPECT_EQ(blk.epoch(), 0u);
                   const std::uint64_t e1 = blk.sync();
                   const std::uint64_t e2 = blk.sync();
                   EXPECT_EQ(e1, 1u);
                   EXPECT_EQ(e2, 2u);
                   EXPECT_EQ(blk.epoch(), 2u);
                 });
}

TEST(SanitizerEpochs, LevelBoundariesOpenEpochsWithoutCountingSyncs) {
  Profiler prof;
  std::vector<std::uint64_t> epochs;
  gpusim::launch_level_synced(
      prof, "epochs_lvl", Dim3{1, 1, 1}, Dim3{1, 1, 1}, 3,
      [](BlockCtx&) { return 0; },
      [&](BlockCtx& blk, int&, int /*level*/) {
        epochs.push_back(blk.epoch());
      });
  // Every level boundary opened a fresh epoch...
  EXPECT_EQ(epochs, (std::vector<std::uint64_t>{1, 2, 3}));
  // ...but the profiler's sync count stays a faithful instruction count.
  for (const auto& rec : prof.all_records()) {
    if (rec.name == "epochs_lvl") {
      EXPECT_EQ(rec.syncs, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Memcheck: OOB spans (both stride signs) and the BoundsError fallback.
// ---------------------------------------------------------------------------

TEST(SanitizerMemcheck, OobAccessesReportedAndSkipped) {
  Sanitizer san;
  gpusim::TrafficCounter c;
  GlobalArray<double> a(8, &c);
  a.set_sanitizer(&san, "a");
  for (int i = 0; i < 8; ++i) a.raw(i) = 1.0;

  EXPECT_EQ(a.load(99), 0.0);  // scalar OOB: reported, returns T{}
  double dst[4] = {9, 9, 9, 9};
  a.load_span_as<double>(6, 1, 4, dst);  // touches [6, 9] — high overflow
  for (const double v : dst) EXPECT_EQ(v, 0.0);
  a.store_span_as<double>(2, -3, 3, dst);  // touches {2,-1,-4} — underflow

  const SanitizerReport r = san.report();
  EXPECT_EQ(r.count(HazardKind::kOob), 3u);
  const Hazard* h = r.first(HazardKind::kOob);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->array, "a");
  EXPECT_EQ(h->elem, 99);  // base of the first offending access
  // The skipped accesses left the allocation untouched.
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.raw(static_cast<index_t>(i)), 1.0);
}

TEST(SanitizerMemcheck, BoundsErrorThrownWithoutSanitizer) {
  gpusim::TrafficCounter c;
  GlobalArray<double> a(8, &c);
  double dst[4] = {0, 0, 0, 0};
  // In-bounds negative stride is legal: touches {6, 3, 0}.
  EXPECT_NO_THROW(a.load_span_as<double>(6, -3, 3, dst));
  // Underflowing negative stride throws the typed error (release builds
  // included) instead of reading out of bounds: touches {2, -1, -4}.
  EXPECT_THROW(a.load_span_as<double>(2, -3, 3, dst), BoundsError);
  EXPECT_THROW(a.store_span_as<double>(6, 1, 4, dst), BoundsError);
  try {
    a.load_span_as<double>(2, -3, 3, dst);
    FAIL() << "expected BoundsError";
  } catch (const BoundsError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBounds);
    EXPECT_NE(std::string(e.what()).find("stride=-3"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Initcheck: read-before-first-write on global memory.
// ---------------------------------------------------------------------------

TEST(SanitizerInitcheck, GlobalReadBeforeWriteReportedOnce) {
  Sanitizer san;
  gpusim::TrafficCounter c;
  GlobalArray<double> a(4, &c);
  a.set_sanitizer(&san, "halo");
  (void)a.load(2);  // allocate()'s zero-fill is NOT initialization
  (void)a.load(2);  // reported once per element, not per read
  a.raw(2) = 0.5;   // host write initializes
  (void)a.load(2);
  const SanitizerReport r = san.report();
  EXPECT_EQ(r.count(HazardKind::kUninitRead), 1u);
  const Hazard* h = r.first(HazardKind::kUninitRead);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->array, "halo");
  EXPECT_EQ(h->elem, 2);
}

TEST(SanitizerInitcheck, HaloConsumedBeforeGhostExchangeIsCaught) {
  // The multi-device receive-buffer model: the owner writes the interior,
  // the ghost column is filled only by the exchange. Skipping the exchange
  // and running the stencil kernel trips initcheck on exactly the ghost
  // column — the "halo cell consumed before ghost exchange" failure mode.
  constexpr int nx = 6, ny = 4;  // ghost column at local x = 0
  for (const bool do_exchange : {true, false}) {
    Sanitizer san;
    Profiler prof;
    prof.set_sanitizer_hook(&san);
    GlobalArray<double> f(static_cast<std::size_t>(nx * ny), &prof.counter());
    f.set_sanitizer(&san, "f");
    for (int y = 0; y < ny; ++y) {
      for (int x = 1; x < nx; ++x) f.raw(y * nx + x) = 1.0;
    }
    if (do_exchange) {
      for (int y = 0; y < ny; ++y) f.raw(y * nx) = 2.0;
    }
    gpusim::launch(prof, "stencil", Dim3{1, 1, 1}, Dim3{1, 1, 1},
                   [&](BlockCtx&) {
                     double acc = 0;
                     for (int y = 0; y < ny; ++y) {
                       for (int x = 1; x < nx; ++x) {
                         acc += f.load(y * nx + x) + f.load(y * nx + x - 1);
                       }
                     }
                     (void)acc;
                   });
    const SanitizerReport r = san.report();
    if (do_exchange) {
      EXPECT_TRUE(r.clean()) << r.to_string();
    } else {
      EXPECT_EQ(r.count(HazardKind::kUninitRead),
                static_cast<std::uint64_t>(ny));
      const Hazard* h = r.first(HazardKind::kUninitRead);
      ASSERT_NE(h, nullptr);
      EXPECT_EQ(h->array, "f");
      EXPECT_EQ(h->elem % nx, 0);  // a ghost-column element
    }
  }
}

// ---------------------------------------------------------------------------
// Synccheck: per-launch barrier-count divergence across blocks.
// ---------------------------------------------------------------------------

TEST(SanitizerSynccheck, DivergentBarrierCountsReported) {
  Sanitizer san;
  Profiler prof;
  prof.set_sanitizer_hook(&san);
  gpusim::launch(prof, "divergent_sync", Dim3{2, 1, 1}, Dim3{1, 1, 1},
                 [&](BlockCtx& blk) {
                   blk.sync();
                   if (blk.block_idx().x == 1) blk.sync();
                 });
  const SanitizerReport r = san.report();
  EXPECT_EQ(r.count(HazardKind::kSyncDivergence), 1u);
  const Hazard* h = r.first(HazardKind::kSyncDivergence);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kernel, "divergent_sync");
}

TEST(SanitizerSynccheck, UniformBarrierCountsAreClean) {
  Sanitizer san;
  Profiler prof;
  prof.set_sanitizer_hook(&san);
  gpusim::launch(prof, "uniform_sync", Dim3{3, 1, 1}, Dim3{1, 1, 1},
                 [&](BlockCtx& blk) {
                   blk.sync();
                   blk.sync();
                 });
  EXPECT_TRUE(san.report().clean());
}

// ---------------------------------------------------------------------------
// Cross-block conflicts inside one level-synced (persistent) launch.
// ---------------------------------------------------------------------------

TEST(SanitizerCrossBlock, ReadOfPeerWriteInsideOneLaunchReported) {
  Sanitizer san;
  Profiler prof;
  prof.set_sanitizer_hook(&san);
  GlobalArray<double> g(16, &prof.counter());
  g.set_sanitizer(&san, "g");
  for (index_t i = 0; i < 16; ++i) g.raw(i) = 0.0;

  gpusim::launch_level_synced(
      prof, "window_violation", Dim3{2, 1, 1}, Dim3{1, 1, 1}, 2,
      [](BlockCtx&) { return 0; },
      [&](BlockCtx& blk, int&, int level) {
        const int b = blk.block_idx().x;
        if (level == 0 && b == 0) g.store(5, 1.0);
        if (level == 1 && b == 1) (void)g.load(5);
      });
  {
    const SanitizerReport r = san.report();
    EXPECT_EQ(r.count(HazardKind::kCrossBlockConflict), 1u);
    const Hazard* h = r.first(HazardKind::kCrossBlockConflict);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->array, "g");
    EXPECT_EQ(h->elem, 5);
    EXPECT_EQ(h->block_a, 1);  // the reading block
    EXPECT_EQ(h->block_b, 0);  // the writing block
    EXPECT_EQ(h->level_a, 1);
    EXPECT_EQ(h->level_b, 0);
  }

  // Consuming a peer's write in the NEXT launch is the legal pattern (that
  // is what the level barrier / circular shift guarantees on hardware): no
  // new hazard.
  const std::uint64_t before = san.report().total();
  gpusim::launch_level_synced(
      prof, "window_ok", Dim3{2, 1, 1}, Dim3{1, 1, 1}, 1,
      [](BlockCtx&) { return 0; },
      [&](BlockCtx& blk, int&, int) {
        if (blk.block_idx().x == 1) (void)g.load(5);
      });
  EXPECT_EQ(san.report().total(), before) << san.report().to_string();
}

// ---------------------------------------------------------------------------
// Staleness: the sliding-window freshness contract.
// ---------------------------------------------------------------------------

TEST(SanitizerStaleness, ReadOfUnrefreshedPlaneReported) {
  Sanitizer san;
  Profiler prof;
  prof.set_sanitizer_hook(&san);
  GlobalArray<double> g(4, &prof.counter());
  g.set_sanitizer(&san, "ring", /*sliding_window=*/true);

  const auto write_elems = [&](int n) {
    gpusim::launch(prof, "w", Dim3{1, 1, 1}, Dim3{1, 1, 1}, [&](BlockCtx&) {
      for (index_t i = 0; i < n; ++i) g.store(i, 1.0);
    });
  };
  const auto read_all = [&] {
    gpusim::launch(prof, "r", Dim3{1, 1, 1}, Dim3{1, 1, 1}, [&](BlockCtx&) {
      for (index_t i = 0; i < 4; ++i) (void)g.load(i);
    });
  };

  write_elems(4);  // launch 1: whole window fresh
  read_all();      // launch 2: reads one launch behind — legal
  write_elems(3);  // launch 3: "ring shift" skips element 3
  read_all();      // launch 4: element 3 is now two launches old
  const SanitizerReport r = san.report();
  EXPECT_EQ(r.count(HazardKind::kStaleRead), 1u);
  const Hazard* h = r.first(HazardKind::kStaleRead);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->array, "ring");
  EXPECT_EQ(h->elem, 3);
}

// ---------------------------------------------------------------------------
// Seeded MR kernel mutations: every deliberate break must be caught.
// ---------------------------------------------------------------------------

SanitizerReport run_mutated_tg(const MrEngine<D2Q9>::FaultMutation& m,
                               int steps = 4,
                               MomentStorage storage =
                                   MomentStorage::kCircularShift) {
  const auto tg = TaylorGreen<D2Q9>::create(16, 0.03);
  MrEngine<D2Q9> eng(tg.geo, 0.8, Regularization::kProjective,
                     MrConfig{8, 1, 2, storage});
  Sanitizer san(1024);
  eng.set_sanitizer(&san);
  eng.set_fault_mutation_for_test(m);
  tg.attach(eng);
  eng.run(steps);
  const SanitizerReport r = san.report();
  eng.set_sanitizer(nullptr);
  return r;
}

TEST(SanitizerMutation, CleanCircularShiftHasNoHazards) {
  EXPECT_TRUE(run_mutated_tg({}).clean());
}

TEST(SanitizerMutation, RingShiftOffByOneCaught) {
  for (const int bias : {1, -1}) {
    MrEngine<D2Q9>::FaultMutation m;
    m.ring_shift_bias = bias;
    const SanitizerReport r = run_mutated_tg(m);
    EXPECT_GT(r.count(HazardKind::kStaleRead), 0u)
        << "bias " << bias << ": " << r.to_string();
    const Hazard* h = r.first(HazardKind::kStaleRead);
    if (h != nullptr) {
      EXPECT_EQ(h->array, "mom0");
    }
  }
}

TEST(SanitizerMutation, ShortenedWriteBehindCaught) {
  MrEngine<D2Q9>::FaultMutation m;
  m.write_behind = 1;
  const SanitizerReport r = run_mutated_tg(m);
  EXPECT_GT(r.count(HazardKind::kStaleRead), 0u) << r.to_string();
}

TEST(SanitizerMutation, RemovedPhaseSyncCaught) {
  MrEngine<D2Q9>::FaultMutation m;
  m.skip_phase_sync = true;
  const SanitizerReport r = run_mutated_tg(m, /*steps=*/2);
  EXPECT_GT(r.count(HazardKind::kSharedRace), 0u) << r.to_string();
  const Hazard* h = r.first(HazardKind::kSharedRace);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->array, "shared");
}

TEST(SanitizerMutation, ShrunkenCrossHaloCaught) {
  MrEngine<D2Q9>::FaultMutation m;
  m.shrink_cross_halo = true;
  const SanitizerReport r = run_mutated_tg(m, /*steps=*/2);
  EXPECT_GT(r.count(HazardKind::kUninitRead), 0u) << r.to_string();
  const Hazard* h = r.first(HazardKind::kUninitRead);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->array, "shared");  // edge ring words never streamed into
}

// ---------------------------------------------------------------------------
// Clean engine matrix: zero hazards on every correct configuration.
// ---------------------------------------------------------------------------

template <class EngT, class Workload>
void expect_clean_run(EngT& eng, const Workload& w, int steps,
                      const char* what) {
  Sanitizer san;
  eng.set_sanitizer(&san);
  w.attach(eng);
  eng.run(steps);
  const SanitizerReport r = san.report();
  EXPECT_TRUE(r.clean()) << what << ":\n" << r.to_string();
  eng.set_sanitizer(nullptr);
}

TEST(SanitizerCleanMatrix, D2Q9TaylorGreenAllEngines) {
  const auto tg = TaylorGreen<D2Q9>::create(16, 0.03);
  const real_t tau = 0.8;
  {
    StEngine<D2Q9> e(tg.geo, tau);
    expect_clean_run(e, tg, 3, "ST pull fp64");
  }
  {
    StEngine<D2Q9> e(tg.geo, tau, CollisionScheme::kBGK, 64, StreamMode::kPush);
    expect_clean_run(e, tg, 3, "ST push fp64");
  }
  {
    StEngine<D2Q9, float> e(tg.geo, tau);
    expect_clean_run(e, tg, 3, "ST pull fp32");
  }
  {
    AaEngine<D2Q9> e(tg.geo, tau);
    expect_clean_run(e, tg, 4, "AA fp64");  // even number: both flavours
  }
  {
    AaEngine<D2Q9, float> e(tg.geo, tau);
    expect_clean_run(e, tg, 4, "AA fp32");
  }
  for (const auto storage :
       {MomentStorage::kPingPong, MomentStorage::kCircularShift}) {
    {
      MrEngine<D2Q9> e(tg.geo, tau, Regularization::kProjective,
                       MrConfig{8, 1, 2, storage});
      expect_clean_run(e, tg, 3,
                       storage == MomentStorage::kPingPong
                           ? "MR-P ping-pong fp64"
                           : "MR-P circular fp64");
    }
    {
      MrEngine<D2Q9, float> e(tg.geo, tau, Regularization::kRecursive,
                              MrConfig{8, 1, 2, storage});
      expect_clean_run(e, tg, 3,
                       storage == MomentStorage::kPingPong
                           ? "MR-R ping-pong fp32"
                           : "MR-R circular fp32");
    }
  }
}

TEST(SanitizerCleanMatrix, D3Q19TaylorGreen) {
  const auto tg = TaylorGreen<D3Q19>::create(8, 0.03, 8);
  const real_t tau = 0.8;
  {
    StEngine<D3Q19> e(tg.geo, tau);
    expect_clean_run(e, tg, 2, "ST pull 3D fp64");
  }
  {
    MrEngine<D3Q19> e(tg.geo, tau, Regularization::kProjective,
                      MrConfig{4, 4, 1, MomentStorage::kCircularShift});
    expect_clean_run(e, tg, 2, "MR-P circular 3D fp64");
  }
  {
    MrEngine<D3Q19, float> e(tg.geo, tau, Regularization::kRecursive,
                             MrConfig{4, 4, 1, MomentStorage::kPingPong});
    expect_clean_run(e, tg, 2, "MR-R ping-pong 3D fp32");
  }
}

TEST(SanitizerCleanMatrix, WallDomainCavity) {
  const auto cav = LidDrivenCavity<D2Q9>::create(16, 0.05);
  MrEngine<D2Q9> e(cav.geo, 0.8, Regularization::kRecursive,
                   MrConfig{8, 1, 2, MomentStorage::kCircularShift});
  expect_clean_run(e, cav, 3, "MR-R circular cavity");
}

TEST(SanitizerCleanMatrix, MultiDomainChannel) {
  const real_t tau = 0.8;
  const auto ch = Channel<D2Q9>::create(20, 10, 1, tau, 0.04);
  MultiDomainEngine<D2Q9> multi(
      ch.geo, tau, 2, [&](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
        return std::make_unique<StEngine<D2Q9>>(std::move(g), tau);
      });
  expect_clean_run(multi, ch, 3, "MultiDomain 2x ST channel");
}

// ---------------------------------------------------------------------------
// The skipped ghost exchange: the documented detection boundary.
// ---------------------------------------------------------------------------

TEST(SanitizerMultiDomain, SkippedExchangeIsMemoryCleanButPhysicallyWrong) {
  // The slab kernels recompute their ghost nodes every step (open-face
  // placeholder values), so a dropped exchange violates no memory contract
  // — compute-sanitizer on real hardware cannot see a lost MPI message on a
  // device-computed halo either. The detectable variant (a receive buffer
  // that is never filled) is covered by
  // SanitizerInitcheck.HaloConsumedBeforeGhostExchangeIsCaught. Here we pin
  // the boundary: the sanitized run stays clean while the physics diverges.
  const real_t tau = 0.8;
  const auto ch = Channel<D2Q9>::create(20, 10, 1, tau, 0.04);
  const auto factory = [&](Geometry g,
                           int) -> std::unique_ptr<Engine<D2Q9>> {
    return std::make_unique<StEngine<D2Q9>>(std::move(g), tau);
  };

  MultiDomainEngine<D2Q9> good(ch.geo, tau, 2, factory);
  ch.attach(good);

  MultiDomainEngine<D2Q9> bad(ch.geo, tau, 2, factory);
  Sanitizer san;
  bad.set_sanitizer(&san);
  bad.set_skip_exchange_for_test(true);
  ch.attach(bad);

  good.run(5);
  bad.run(5);
  EXPECT_TRUE(san.report().clean()) << san.report().to_string();
  bad.set_sanitizer(nullptr);

  // The interface column feels the dropped exchange within a few steps.
  real_t max_diff = 0;
  const int xi = bad.slab(0).x_end - 1;
  for (int y = 0; y < ch.geo.box.ny; ++y) {
    const auto mg = good.moments_at(xi, y, 0);
    const auto mb = bad.moments_at(xi, y, 0);
    max_diff = std::max(max_diff, std::abs(mg.u[0] - mb.u[0]));
  }
  EXPECT_GT(max_diff, real_t(1e-13));
}

}  // namespace
}  // namespace mlbm
