// mlbm-verify: the static kernel-access contract gate.
//
// Runs the full engine x lattice x precision matrix through the analyzer
// and the three-way traffic agreement (contract derivation == perfmodel ==
// measured counters, exact), plus the seeded-mutation kill matrix. Exit 0
// on a fully clean run, 2 on any failure or surviving mutant — the same
// convention the sanitizer gate uses, so CI treats both identically.
//
//   mlbm-verify                   full matrix (the CI gate)
//   mlbm-verify --steps 4         more measured steps per probe
//   mlbm-verify --mutate NAME     demonstration: seed NAME into every
//                                 applicable contract and show the gate
//                                 catching it (expected exit 2)
//   mlbm-verify --list-mutations  print the seeded mutation names
#include <cstdio>

#include "analysis/static/verify.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mlbm;
  Cli cli(argc, argv);
  analysis::VerifyOptions opt;
  opt.steps = cli.get_int("steps", 2, 2);
  opt.mutate = cli.get("mutate", "");
  const bool list = cli.get_bool("list-mutations", false);
  cli.reject_unknown();

  if (list) {
    for (const auto& name : analysis::all_mutation_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  const analysis::VerifyReport rep = analysis::run_verify_matrix(opt);
  std::fputs(to_string(rep).c_str(), stdout);
  if (!rep.ok()) {
    std::fputs("mlbm-verify: FAILED\n", stdout);
    return 2;
  }
  std::fputs("mlbm-verify: clean\n", stdout);
  return 0;
}
