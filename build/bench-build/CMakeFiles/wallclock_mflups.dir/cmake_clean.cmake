file(REMOVE_RECURSE
  "../bench/wallclock_mflups"
  "../bench/wallclock_mflups.pdb"
  "CMakeFiles/wallclock_mflups.dir/wallclock_mflups.cpp.o"
  "CMakeFiles/wallclock_mflups.dir/wallclock_mflups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wallclock_mflups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
