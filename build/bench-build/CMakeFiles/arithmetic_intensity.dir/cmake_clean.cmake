file(REMOVE_RECURSE
  "../bench/arithmetic_intensity"
  "../bench/arithmetic_intensity.pdb"
  "CMakeFiles/arithmetic_intensity.dir/arithmetic_intensity.cpp.o"
  "CMakeFiles/arithmetic_intensity.dir/arithmetic_intensity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arithmetic_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
