file(REMOVE_RECURSE
  "../examples/mlbm_proxy"
  "../examples/mlbm_proxy.pdb"
  "CMakeFiles/mlbm_proxy.dir/mlbm_proxy.cpp.o"
  "CMakeFiles/mlbm_proxy.dir/mlbm_proxy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlbm_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
