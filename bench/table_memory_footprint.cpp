// Section 4.1 memory comparison: simulation-state footprint of each pattern,
// verified on real engine allocations and extrapolated to the paper's
// 15-million-node example (ST ~2 GB / 4.2 GB vs MR ~1.3 GB / 2.23 GB,
// i.e. ~35% / ~47% savings). Also reports the circular-shift MR storage,
// which halves the MR footprint again.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "engines/aa_engine.hpp"
#include "engines/ep_engine.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/roofline.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

template <class L>
void verify_engine_allocations(AsciiTable& t) {
  // Engine allocations at a concrete small size must match the formulas
  // that the 15M extrapolation uses.
  const int nx = L::D == 2 ? 64 : 24, ny = L::D == 2 ? 48 : 20,
            nz = L::D == 2 ? 1 : 16;
  Geometry geo = bench::periodic_geo(nx, ny, nz);
  const double cells = static_cast<double>(nx) * ny * nz;

  StEngine<L> st(geo, 0.8);
  AaEngine<L> aa(geo, 0.8);
  EpEngine<L> ep(geo, 0.8);
  MrEngine<L> mr_pp(geo, 0.8, Regularization::kProjective,
                    bench::default_mr_config(L::D));
  MrConfig cs_cfg = bench::default_mr_config(L::D);
  cs_cfg.storage = MomentStorage::kCircularShift;
  MrEngine<L> mr_cs(geo, 0.8, Regularization::kProjective, cs_cfg);

  std::string extent = std::to_string(nx) + "x" + std::to_string(ny);
  if (L::D == 3) {
    extent += "x";
    extent += std::to_string(nz);
  }
  auto row = [&](const char* name, double bytes) {
    t.row({name, L::name(), extent,
           AsciiTable::num(bytes / 1024.0, 1),
           AsciiTable::num(bytes / cells, 1)});
  };
  row("ST (2 lattices)", static_cast<double>(st.state_bytes()));
  row("ST-AA (in place)", static_cast<double>(aa.state_bytes()));
  row("EP (in place)", static_cast<double>(ep.state_bytes()));
  row("MR ping-pong", static_cast<double>(mr_pp.state_bytes()));
  row("MR circular-shift", static_cast<double>(mr_cs.state_bytes()));
}

}  // namespace

int main() {
  perf::print_banner("Memory", "Simulation-state footprint (Section 4.1)");

  AsciiTable meas({"Storage", "Lattice", "Domain", "allocated KiB",
                   "bytes/node"});
  verify_engine_allocations<D2Q9>(meas);
  verify_engine_allocations<D3Q19>(meas);
  meas.print();

  std::printf("\nExtrapolation to the paper's 15M fluid nodes:\n");
  AsciiTable t({"Model", "Lattice", "GB (model)", "GB (paper)", "saving vs ST"});
  CsvWriter csv(perf::results_dir() + "/table_memory_footprint.csv",
                {"model", "lattice", "gb_model", "gb_paper", "saving_pct"});

  const long long n = 15'000'000;
  struct Row {
    Pattern p;
    const char* name;
    perf::LatticeInfo lat;
    double paper_gb;
    bool single_buffer;
  };
  const Row rows[] = {
      {Pattern::kST, "ST", perf::lattice_info<D2Q9>(), 2.0, false},
      {Pattern::kST, "ST", perf::lattice_info<D3Q19>(), 4.2, false},
      // ST-AA stores one lattice: half of ST, same traffic (related work's
      // answer to the footprint problem before the moment representation).
      {Pattern::kMRP, "MR (ping-pong)", perf::lattice_info<D2Q9>(), 1.3, false},
      {Pattern::kMRP, "MR (ping-pong)", perf::lattice_info<D3Q19>(), 2.23,
       false},
      {Pattern::kMRP, "MR (circ-shift)", perf::lattice_info<D2Q9>(), 0, true},
      {Pattern::kMRP, "MR (circ-shift)", perf::lattice_info<D3Q19>(), 0, true},
  };
  const double st2 = perf::state_bytes(Pattern::kST, perf::lattice_info<D2Q9>(), n);
  const double st3 =
      perf::state_bytes(Pattern::kST, perf::lattice_info<D3Q19>(), n);
  // Hand-inserted in-place rows (single lattice: Q doubles per node). AA
  // and EP share the formula — both store exactly one distribution lattice;
  // they differ in addressing, not footprint.
  for (const auto* name : {"ST-AA (1 lattice)", "EP (1 lattice)"}) {
    for (const auto* lat : {"D2Q9", "D3Q19"}) {
      const bool is2d = std::string(lat) == "D2Q9";
      const double gb = (is2d ? 9.0 : 19.0) * 8.0 * n / 1e9;
      const double st_ref = (is2d ? st2 : st3) / 1e9;
      t.row({name, lat, AsciiTable::num(gb, 2), "-",
             AsciiTable::num(100 * (1 - gb / st_ref), 0) + "%"});
      csv.row({std::string(name).substr(0, std::string(name).find(' ')), lat,
               CsvWriter::num(gb), CsvWriter::num(0),
               CsvWriter::num(100 * (1 - gb / st_ref))});
    }
  }
  for (const Row& r : rows) {
    const double gb = perf::state_bytes(r.p, r.lat, n, r.single_buffer) / 1e9;
    const double st_ref = (r.lat.dim == 2 ? st2 : st3) / 1e9;
    const double saving = 100 * (1 - gb / st_ref);
    t.row({r.name, r.lat.name, AsciiTable::num(gb, 2),
           r.paper_gb > 0 ? AsciiTable::num(r.paper_gb, 2) : "-",
           AsciiTable::num(saving, 0) + "%"});
    csv.row({r.name, r.lat.name, CsvWriter::num(gb),
             CsvWriter::num(r.paper_gb), CsvWriter::num(saving)});
  }
  t.print();
  std::printf("\npaper: reductions of ~35%% (2D) and ~47%% (3D) for MR.\n");
  return 0;
}
