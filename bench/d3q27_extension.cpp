// Future-work extension (Section 5): "further research should focus on
// lattices with a large number of components, such as the single-speed
// D3Q27, because their increased runtime is often cited as a reason for not
// using them." The moment representation stores the same M = 10 moments
// regardless of Q, so its advantage *grows* with Q: B/F drops from
// 2*27*8 = 432 to 160 bytes — a 63% traffic reduction vs 47% for D3Q19.
#include <cstdio>

#include "common.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/roofline.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

int main() {
  perf::print_banner("Extension", "D3Q27 moment representation (future work)");

  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();
  const auto lat = perf::lattice_info<D3Q27>();

  // Functional verification on the instrumented engines.
  Geometry geo = bench::periodic_geo(16, 16, 12);
  StEngine<D3Q27> st(geo, 0.8);
  MrEngine<D3Q27> mr(geo, 0.8, Regularization::kProjective, {8, 8, 1});
  const auto t_st = bench::measure_traffic<D3Q27>(st);
  const auto t_mr = bench::measure_traffic<D3Q27>(mr);

  AsciiTable meas({"pattern", "B/F nominal", "measured write B/node",
                   "measured read B/node"});
  meas.row({"ST", AsciiTable::num(perf::bytes_per_flup(Pattern::kST, lat), 0),
            AsciiTable::num(t_st.write_bytes_per_node, 1),
            AsciiTable::num(t_st.read_bytes_per_node, 1)});
  meas.row({"MR", AsciiTable::num(perf::bytes_per_flup(Pattern::kMRP, lat), 0),
            AsciiTable::num(t_mr.write_bytes_per_node, 1),
            AsciiTable::num(t_mr.read_bytes_per_node, 1)});
  meas.print();

  // Modeled performance across the whole single-speed 3D lattice family:
  // the MR advantage scales with Q while M stays fixed at 10.
  AsciiTable t({"Device", "Lattice", "Pattern", "roofline", "MFLUPS",
                "speedup vs ST"});
  CsvWriter csv(perf::results_dir() + "/d3q27_extension.csv",
                {"device", "lattice", "pattern", "roofline", "mflups",
                 "speedup"});
  auto sweep = [&](auto lattice_tag) {
    using LL = decltype(lattice_tag);
    const auto li = perf::lattice_info<LL>();
    for (const auto& dev : {v100, mi100}) {
      double st_mflups = 0;
      for (const Pattern p : {Pattern::kST, Pattern::kMRP, Pattern::kMRR}) {
        const auto kc = bench::characteristics<LL>(p);
        const auto e = perf::estimate_saturated(dev, p, li, kc);
        if (p == Pattern::kST) st_mflups = e.mflups;
        const double sp = e.mflups / st_mflups;
        t.row({dev.name, li.name, perf::to_string(p),
               AsciiTable::num(e.roofline_mflups, 0),
               AsciiTable::num(e.mflups, 0), AsciiTable::num(sp, 2) + "x"});
        csv.row({dev.name, li.name, perf::to_string(p),
                 CsvWriter::num(e.roofline_mflups), CsvWriter::num(e.mflups),
                 CsvWriter::num(sp)});
      }
    }
  };
  sweep(D3Q15{});
  sweep(D3Q19{});
  sweep(D3Q27{});
  t.print();

  std::printf(
      "\ntraffic ratio ST/MR: %.2f (D3Q15), %.2f (D3Q19), %.2f (D3Q27) —\n"
      "the moment representation's advantage grows with lattice size, as the\n"
      "paper's future-work section anticipates.\n",
      perf::bytes_per_flup(Pattern::kST, perf::lattice_info<D3Q15>()) /
          perf::bytes_per_flup(Pattern::kMRP, perf::lattice_info<D3Q15>()),
      perf::bytes_per_flup(Pattern::kST, perf::lattice_info<D3Q19>()) /
          perf::bytes_per_flup(Pattern::kMRP, perf::lattice_info<D3Q19>()),
      perf::bytes_per_flup(Pattern::kST, lat) /
          perf::bytes_per_flup(Pattern::kMRP, lat));
  return 0;
}
