# Empty compiler generated dependencies file for table1_devices.
# This may be replaced when dependencies are built.
