
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aa_engine.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_aa_engine.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_aa_engine.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_bc_workloads.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_bc_workloads.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_bc_workloads.cpp.o.d"
  "/root/repo/tests/test_engines_basic.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_engines_basic.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_engines_basic.cpp.o.d"
  "/root/repo/tests/test_equivalence.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_equivalence.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_equivalence.cpp.o.d"
  "/root/repo/tests/test_gpusim.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_gpusim.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_gpusim.cpp.o.d"
  "/root/repo/tests/test_hermite_moments.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_hermite_moments.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_hermite_moments.cpp.o.d"
  "/root/repo/tests/test_io_util.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_io_util.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_io_util.cpp.o.d"
  "/root/repo/tests/test_lattice.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_lattice.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_lattice.cpp.o.d"
  "/root/repo/tests/test_multidev.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_multidev.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_multidev.cpp.o.d"
  "/root/repo/tests/test_perfmodel.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_perfmodel.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_perfmodel.cpp.o.d"
  "/root/repo/tests/test_physics.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_physics.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_physics.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_regularization.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_regularization.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_regularization.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_traffic_invariance.cpp" "tests/CMakeFiles/mlbm_tests.dir/test_traffic_invariance.cpp.o" "gcc" "tests/CMakeFiles/mlbm_tests.dir/test_traffic_invariance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mlbm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
