#include "workloads/porous_plug.hpp"

#include <utility>
#include <vector>

#include "geometry/shapes.hpp"
#include "util/error.hpp"

namespace mlbm {

template <class L>
PorousPlug<L> PorousPlug<L>::create(int nx, int ny, int nz, real_t tau,
                                    real_t u_in, double solid_fraction,
                                    std::uint64_t seed, int margin) {
  if constexpr (L::D == 2) {
    if (nz != 1) throw ConfigError("2D porous plug requires nz == 1");
  } else {
    if (nz < 2) throw ConfigError("3D porous plug requires nz >= 2");
  }
  if (solid_fraction < 0 || solid_fraction >= 1) {
    throw ConfigError("porous plug: solid fraction must be in [0, 1)");
  }
  if (2 * margin + 2 >= nx) {
    throw ConfigError("porous plug: margins leave no porous interior");
  }

  Box box{nx, ny, nz};
  Geometry geo(box);
  geo.bc.set_axis(0, FaceBC::kOpen);
  geo.bc.set_axis(1, FaceBC::kWall);
  geo.bc.set_axis(2, L::D == 3 ? FaceBC::kWall : FaceBC::kPeriodic);

  std::vector<std::array<real_t, 3>> inlet(
      static_cast<std::size_t>(ny) * static_cast<std::size_t>(nz),
      {u_in, 0, 0});
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      geo.set(0, y, z, NodeKind::kInlet);
      geo.set(nx - 1, y, z, NodeKind::kOutlet);
    }
  }

  // Stamp the whole box, then clear the entry/exit margins: the voxelizer's
  // per-node hash keeps the interior pattern identical for a given seed
  // regardless of the margin width.
  shapes::add_random_solids(geo, solid_fraction, seed);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 1; x <= margin; ++x) {
        if (geo.solid(x, y, z)) geo.set(x, y, z, NodeKind::kFluid);
      }
      for (int x = nx - 1 - margin; x < nx - 1; ++x) {
        if (geo.solid(x, y, z)) geo.set(x, y, z, NodeKind::kFluid);
      }
    }
  }

  const auto interior =
      static_cast<double>(nx - 2 - 2 * margin) * ny * nz;
  double fluid = 0;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = margin + 1; x < nx - 1 - margin; ++x) {
        fluid += !geo.solid(x, y, z);
      }
    }
  }

  PorousPlug plug{std::move(geo), tau, u_in, fluid / interior,
                  std::make_shared<InletOutletBC<L>>(box, std::move(inlet))};
  return plug;
}

template <class L>
void PorousPlug<L>::attach(Engine<L>& eng) const {
  const auto bc_ptr = bc;
  const real_t u0 = u_in;
  eng.initialize([u0](int, int, int) {
    std::array<real_t, L::D> u{};
    u[0] = u0;
    return equilibrium_moments<L>(real_t(1), u);
  });
  eng.set_post_step([bc_ptr](Engine<L>& e) { bc_ptr->apply(e); });
}

template <class L>
real_t PorousPlug<L>::superficial_velocity(const Engine<L>& eng) const {
  const Box& b = geo.box;
  real_t sum = 0;
  long long n = 0;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 1; x < b.nx - 1; ++x) {
        sum += eng.moments_at(x, y, z).u[0];  // solids report zero
        ++n;
      }
    }
  }
  return sum / static_cast<real_t>(n);
}

template struct PorousPlug<D2Q9>;
template struct PorousPlug<D3Q19>;
template struct PorousPlug<D3Q27>;
template struct PorousPlug<D3Q15>;

}  // namespace mlbm
