file(REMOVE_RECURSE
  "../bench/ablation_tile"
  "../bench/ablation_tile.pdb"
  "CMakeFiles/ablation_tile.dir/ablation_tile.cpp.o"
  "CMakeFiles/ablation_tile.dir/ablation_tile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
