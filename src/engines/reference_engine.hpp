// Reference two-lattice engine (host, un-instrumented).
//
// Ground truth for every other engine: a straightforward push-style
// two-lattice update with pluggable collision (BGK, projective or recursive
// regularization). Stored distributions are *pre-collision* — the engine
// collides on read and scatters post-collision populations — which makes its
// stored moments directly comparable with the MR engines' stored moment
// fields (DESIGN.md §5, equivalence tests).
//
// Boundary handling:
//  * periodic faces wrap during the scatter;
//  * wall faces apply half-way bounceback, with the moving-wall momentum
//    correction  f2[opp(i)](x) = f*_i(x) - 2 w_i rho (c_i . u_wall)/cs2;
//  * open faces (inlet/outlet) drop leaving populations; the nodes on those
//    faces are rebuilt by the post-step boundary pass.
#pragma once

#include <vector>

#include "core/collision.hpp"
#include "engines/engine.hpp"

namespace mlbm {

template <class L>
class ReferenceEngine final : public Engine<L> {
 public:
  ReferenceEngine(Geometry geo, real_t tau, CollisionScheme scheme);

  [[nodiscard]] const char* pattern_name() const override;
  void initialize(const typename Engine<L>::InitFn& init) override;
  [[nodiscard]] Moments<L> moments_at(int x, int y, int z) const override;
  void impose(int x, int y, int z, const Moments<L>& m) override;
  [[nodiscard]] std::size_t state_bytes() const override;

  [[nodiscard]] CollisionScheme scheme() const { return scheme_; }

  /// Direct access to the stored (pre-collision) population of a node.
  [[nodiscard]] real_t f_at(int i, int x, int y, int z) const;

  /// Soft-error surface: both host population lattices, so CPU-side tests of
  /// the sentinel/rollback machinery need no gpusim engine.
  [[nodiscard]] std::uint64_t fault_sites() const override {
    return f_[0].size() + f_[1].size();
  }
  void inject_storage_bitflip(std::uint64_t site, unsigned bit) override;

  /// Raw snapshot surface: the current (pre-collision) host lattice; the
  /// other one is scratch for the next scatter.
  [[nodiscard]] std::string raw_state_tag() const override {
    const Box& b = this->geo_.box;
    return std::string(pattern_name()) + "|" + std::to_string(b.nx) + "x" +
           std::to_string(b.ny) + "x" + std::to_string(b.nz);
  }
  void serialize_raw_state(std::vector<real_t>& out) const override {
    const std::vector<real_t>& f = f_[cur_];
    out.insert(out.end(), f.begin(), f.end());
  }
  void restore_raw_state(const std::vector<real_t>& in) override {
    if (in.size() != f_[cur_].size()) {
      throw ConfigError(
          "ReferenceEngine: raw snapshot does not match lattice size");
    }
    f_[cur_] = in;
  }

  /// Push-style scatter partitions by source plane (see StEngine): plane x
  /// is final once sources x-1..x+1 have scattered.
  [[nodiscard]] bool supports_frontier_split() const override { return true; }

 protected:
  void do_step() override;
  void do_step_split(const FrontierSpec& fs,
                     const typename Engine<L>::FrontierDoneFn& on_frontier)
      override;

 private:
  [[nodiscard]] index_t soa(int i, index_t cell) const {
    return static_cast<index_t>(i) * this->geo_.box.cells() + cell;
  }
  /// Collide-and-scatter for source planes [rx0, rx1).
  void step_range(int rx0, int rx1);

  CollisionScheme scheme_;
  std::vector<real_t> f_[2];
  int cur_ = 0;
};

extern template class ReferenceEngine<D2Q9>;
extern template class ReferenceEngine<D3Q19>;
extern template class ReferenceEngine<D3Q27>;
extern template class ReferenceEngine<D3Q15>;

}  // namespace mlbm
