# Empty dependencies file for wallclock_mflups.
# This may be replaced when dependencies are built.
