// Table 2: bytes per fluid lattice update (B/F) for each propagation pattern
// and lattice — verified against the *instrumented engines*, not just
// recomputed from formulas. The measured write traffic matches the nominal
// 2x(dof) figure exactly; logical reads additionally show the MR halo
// overhead that real hardware serves from L2 (DESIGN.md §2).
#include "common.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/roofline.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

struct Row {
  const char* pattern;
  const char* lattice;
  double paper_bpf;
  double nominal_bpf;
  double measured_read;
  double measured_write;
  double halo_frac;
  double unique_read;  // per node, ideal-cache (DRAM) reads
};

template <class L>
Row measure_st() {
  Geometry geo = bench::periodic_geo(L::D == 2 ? 32 : 12, L::D == 2 ? 24 : 10,
                                     L::D == 2 ? 1 : 8);
  StEngine<L> eng(geo, 0.8);
  const auto t = bench::measure_traffic<L>(eng);
  StEngine<L> eng2(geo, 0.8);
  const double uniq = bench::measure_unique_read_bytes_per_node<L>(eng2);
  const auto lat = perf::lattice_info<L>();
  return {"ST",
          L::name(),
          perf::bytes_per_flup(Pattern::kST, lat),
          perf::bytes_per_flup(Pattern::kST, lat),
          t.read_bytes_per_node,
          t.write_bytes_per_node,
          t.halo_read_fraction,
          uniq};
}

template <class L>
Row measure_ep() {
  // EP streams in place over one lattice but still moves ST's 2Q elements
  // per update: the table's point is that the footprint halving is free in
  // traffic, which keeps MR's 2M the only B/F reduction.
  Geometry geo = bench::periodic_geo(L::D == 2 ? 32 : 12, L::D == 2 ? 24 : 10,
                                     L::D == 2 ? 1 : 8);
  EpEngine<L> eng(geo, 0.8);
  const auto t = bench::measure_traffic<L>(eng);
  EpEngine<L> eng2(geo, 0.8);
  const double uniq = bench::measure_unique_read_bytes_per_node<L>(eng2);
  const auto lat = perf::lattice_info<L>();
  return {"EP",
          L::name(),
          perf::ep_bytes_per_flup(lat),
          perf::ep_bytes_per_flup(lat),
          t.read_bytes_per_node,
          t.write_bytes_per_node,
          t.halo_read_fraction,
          uniq};
}

template <class L>
Row measure_mr(Pattern p) {
  const Regularization reg = p == Pattern::kMRR ? Regularization::kRecursive
                                                : Regularization::kProjective;
  const MrConfig cfg = bench::default_mr_config(L::D);
  Geometry geo = bench::periodic_geo(L::D == 2 ? 64 : 16, L::D == 2 ? 24 : 16,
                                     L::D == 2 ? 1 : 8);
  MrEngine<L> eng(geo, 0.8, reg, cfg);
  const auto t = bench::measure_traffic<L>(eng);
  MrEngine<L> eng2(geo, 0.8, reg, cfg);
  const double uniq = bench::measure_unique_read_bytes_per_node<L>(eng2);
  const auto lat = perf::lattice_info<L>();
  return {perf::to_string(p),
          L::name(),
          perf::bytes_per_flup(p, lat),
          perf::bytes_per_flup(p, lat),
          t.read_bytes_per_node,
          t.write_bytes_per_node,
          t.halo_read_fraction,
          uniq};
}

}  // namespace

int main() {
  perf::print_banner("Table 2", "Bytes per fluid lattice update (B/F)");

  const Row rows[] = {
      measure_st<D2Q9>(),        measure_st<D3Q19>(),
      measure_ep<D2Q9>(),        measure_ep<D3Q19>(),
      measure_mr<D2Q9>(Pattern::kMRP),  measure_mr<D3Q19>(Pattern::kMRP),
      measure_mr<D2Q9>(Pattern::kMRR),  measure_mr<D3Q19>(Pattern::kMRR),
  };

  AsciiTable t({"Pattern", "Lattice", "B/F paper", "B/F nominal",
                "measured write B/node", "measured read B/node",
                "halo overhead", "DRAM read B/node"});
  CsvWriter csv(perf::results_dir() + "/table2_bytes_per_flup.csv",
                {"pattern", "lattice", "paper_bpf", "nominal_bpf",
                 "measured_write", "measured_read", "halo_fraction",
                 "dram_unique_read"});
  for (const Row& r : rows) {
    t.row({r.pattern, r.lattice, AsciiTable::num(r.paper_bpf, 0),
           AsciiTable::num(r.nominal_bpf, 0),
           AsciiTable::num(r.measured_write, 1),
           AsciiTable::num(r.measured_read, 1),
           AsciiTable::num(100 * r.halo_frac, 1) + "%",
           AsciiTable::num(r.unique_read, 1)});
    csv.row({r.pattern, r.lattice, CsvWriter::num(r.paper_bpf),
             CsvWriter::num(r.nominal_bpf), CsvWriter::num(r.measured_write),
             CsvWriter::num(r.measured_read), CsvWriter::num(r.halo_frac),
             CsvWriter::num(r.unique_read)});
  }
  t.print();
  std::printf(
      "\nwrite traffic = DRAM read traffic = dof x 8 B exactly; the halo\n"
      "column is pure re-reads, which the unique-address (ideal cache) DRAM\n"
      "model confirms. Paper values: ST 144/304, MR 96/160 (D2Q9/D3Q19).\n");
  return 0;
}
