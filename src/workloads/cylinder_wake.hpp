// Cylinder-wake workload: flow past a circular cylinder in a channel, after
// the Schaefer-Turek 2D-1 benchmark (laminar, steady at Re = 20).
//
// Geometry follows the benchmark's proportions scaled to a lattice diameter
// D: channel height H = 4.1 D, length 22 D, cylinder centred 2 D downstream
// and 2 D off the bottom wall (the slight vertical asymmetry is part of the
// benchmark and produces a small nonzero lift). Parabolic velocity inlet
// with mean u_mean (peak 1.5 u_mean in 2D), finite-difference outlet,
// bounceback walls. The relaxation time follows from the prescribed Reynolds
// number: nu = u_mean D / Re, tau = 3 nu + 1/2.
//
// Drag and lift come from the momentum-exchange sum over the cylinder's
// fluid->solid links (bc/obstacle.hpp), normalized the 2D way:
//
//   Cd = 2 Fx / (rho u_mean^2 D),   Cl = 2 Fy / (rho u_mean^2 D)
//
// The 2D-1 reference values are Cd = 5.5795, Cl = 0.0106 (Schaefer &
// Turek 1996); a resolved half-way-bounceback staircase cylinder lands
// within a few percent of Cd.
#pragma once

#include <memory>

#include "bc/boundary.hpp"
#include "bc/obstacle.hpp"
#include "engines/engine.hpp"

namespace mlbm {

template <class L>
struct CylinderWake {
  Geometry geo;
  real_t tau;
  real_t u_mean;
  real_t diameter;  ///< in nodes
  std::shared_ptr<InletOutletBC<L>> bc;
  std::shared_ptr<ObstacleBC<L>> obstacle;

  /// Builds the channel + cylinder at lattice diameter `d` nodes and the
  /// prescribed Reynolds number. 2D only (the benchmark's 3D variant needs a
  /// spanwise extent this growth stage does not model).
  static CylinderWake create(int d, real_t u_mean, real_t re);

  /// Initializes the engine with the undisturbed inlet profile and registers
  /// the inlet/outlet pass.
  void attach(Engine<L>& eng) const;

  /// Momentum-exchange loads normalized to benchmark coefficients.
  [[nodiscard]] real_t drag_coefficient(const Engine<L>& eng) const;
  [[nodiscard]] real_t lift_coefficient(const Engine<L>& eng) const;
};

extern template struct CylinderWake<D2Q9>;

}  // namespace mlbm
