#include "workloads/taylor_green.hpp"

#include "util/error.hpp"

#include <cmath>
#include <stdexcept>

namespace mlbm {

namespace {
constexpr real_t kPi = 3.14159265358979323846;
}

template <class L>
TaylorGreen<L> TaylorGreen<L>::create(int n, real_t u0, int nz) {
  if constexpr (L::D == 2) {
    if (nz != 1) throw ConfigError("2D Taylor-Green requires nz==1");
  }
  Box box{n, n, L::D == 2 ? 1 : nz};
  Geometry geo(box);
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return {n, u0, std::move(geo)};
}

template <class L>
std::array<real_t, 2> TaylorGreen<L>::velocity(int x, int y, real_t nu,
                                               real_t t) const {
  const real_t k = real_t(2) * kPi / n;
  const real_t decay = std::exp(-real_t(2) * nu * k * k * t);
  return {-u0 * std::cos(k * x) * std::sin(k * y) * decay,
          u0 * std::sin(k * x) * std::cos(k * y) * decay};
}

template <class L>
void TaylorGreen<L>::attach(Engine<L>& eng) const {
  const real_t k = real_t(2) * kPi / n;
  const real_t u0v = u0;
  const real_t tau = eng.tau();
  const int nn = n;

  eng.initialize([k, u0v, tau, nn](int x, int y, int /*z*/) {
    const real_t cx = std::cos(k * x), sx = std::sin(k * x);
    const real_t cy = std::cos(k * y), sy = std::sin(k * y);

    Moments<L> m;
    // Pressure field of the analytic solution: p = -rho0 u0^2/4 (cos 2kx +
    // cos 2ky); rho = 1 + p / cs2.
    const real_t p = -u0v * u0v / 4 *
                     (std::cos(2 * k * x) + std::cos(2 * k * y));
    m.rho = 1 + p / L::cs2;
    m.u.fill(0);
    m.u[0] = -u0v * cx * sy;
    m.u[1] = u0v * sx * cy;

    // Strain rate of the initial field: S_xx = u0 k sx sy = -S_yy, S_xy = 0.
    const real_t sxx = u0v * k * sx * sy;
    real_t s[3][3] = {};
    s[0][0] = sxx;
    s[1][1] = -sxx;

    for (int pidx = 0; pidx < Moments<L>::NP; ++pidx) {
      const auto [a, b] = Moments<L>::pair(pidx);
      const real_t pineq = -2 * m.rho * L::cs2 * tau * s[a][b];
      m.pi[static_cast<std::size_t>(pidx)] =
          m.rho * m.u[static_cast<std::size_t>(a)] *
              m.u[static_cast<std::size_t>(b)] +
          pineq;
    }
    (void)nn;
    return m;
  });
}

template <class L>
real_t TaylorGreen<L>::kinetic_energy(const Engine<L>& eng) {
  const Box& b = eng.geometry().box;
  real_t e = 0;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const Moments<L> m = eng.moments_at(x, y, z);
        real_t uu = 0;
        for (int a = 0; a < L::D; ++a) {
          uu += m.u[static_cast<std::size_t>(a)] *
                m.u[static_cast<std::size_t>(a)];
        }
        e += real_t(0.5) * m.rho * uu;
      }
    }
  }
  return e;
}

template struct TaylorGreen<D2Q9>;
template struct TaylorGreen<D3Q19>;
template struct TaylorGreen<D3Q27>;
template struct TaylorGreen<D3Q15>;

}  // namespace mlbm
