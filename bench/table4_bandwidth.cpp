// Table 4 + Sections 4.2/4.3 bandwidth discussion: achieved DRAM bandwidth
// (GB/s and % of peak) per device, pattern and lattice, from the calibrated
// efficiency model driven by measured kernel characteristics.
//
// Note: the paper's Table 4 is internally inconsistent with its own MFLUPS
// numbers in places (e.g. MR D3Q19 on MI100: 664 GB/s and 3200 MFLUPS imply
// different B/F); we report the model's self-consistent values
// (bandwidth = MFLUPS x B/F) next to the paper's and flag the deviation.
#include <cstdio>

#include "common.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/roofline.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

struct PaperBw {
  double v100_d2q9, v100_d3q19, mi100_d2q9, mi100_d3q19;
};

}  // namespace

int main() {
  perf::print_banner("Table 4", "Achieved bandwidth (GB/s, % of peak)");

  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();
  const auto d2q9 = perf::lattice_info<D2Q9>();
  const auto d3q19 = perf::lattice_info<D3Q19>();

  const PaperBw paper_st = {790, 765, 665, 655};
  const PaperBw paper_mr = {664, 650, 614, 664};

  AsciiTable t({"Model", "Device", "Lattice", "model GB/s", "% peak",
                "paper GB/s", "dev %"});
  CsvWriter csv(perf::results_dir() + "/table4_bandwidth.csv",
                {"model", "device", "lattice", "model_gbs", "peak_fraction",
                 "paper_gbs", "deviation_pct"});

  auto add = [&](Pattern p, const gpusim::DeviceSpec& dev,
                 const perf::LatticeInfo& lat, double paper_gbs) {
    const auto kc = lat.dim == 2 ? bench::characteristics<D2Q9>(p)
                                 : bench::characteristics<D3Q19>(p);
    const auto e = perf::estimate_saturated(dev, p, lat, kc);
    const double frac = e.achieved_bw_gbs / dev.bandwidth_gbs;
    t.row({perf::to_string(p), dev.name, lat.name,
           AsciiTable::num(e.achieved_bw_gbs, 0),
           AsciiTable::num(100 * frac, 0) + "%",
           AsciiTable::num(paper_gbs, 0),
           AsciiTable::num(perf::deviation_pct(e.achieved_bw_gbs, paper_gbs),
                           1)});
    csv.row({perf::to_string(p), dev.name, lat.name,
             CsvWriter::num(e.achieved_bw_gbs), CsvWriter::num(frac),
             CsvWriter::num(paper_gbs),
             CsvWriter::num(perf::deviation_pct(e.achieved_bw_gbs,
                                                paper_gbs))});
  };

  add(Pattern::kST, v100, d2q9, paper_st.v100_d2q9);
  add(Pattern::kST, v100, d3q19, paper_st.v100_d3q19);
  add(Pattern::kST, mi100, d2q9, paper_st.mi100_d2q9);
  add(Pattern::kST, mi100, d3q19, paper_st.mi100_d3q19);
  add(Pattern::kMRP, v100, d2q9, paper_mr.v100_d2q9);
  add(Pattern::kMRP, v100, d3q19, paper_mr.v100_d3q19);
  add(Pattern::kMRP, mi100, d2q9, paper_mr.mi100_d2q9);
  add(Pattern::kMRP, mi100, d3q19, paper_mr.mi100_d3q19);
  t.print();

  std::printf(
      "\nmodel bandwidth = saturated MFLUPS x B/F (self-consistent);\n"
      "paper Table 4 values are profiler DRAM measurements, which deviate\n"
      "where L2 served part of the traffic. See EXPERIMENTS.md.\n");
  return 0;
}
