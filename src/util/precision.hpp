// Storage-precision policy for device-resident simulation state.
//
// The paper's performance argument is bandwidth: each pattern moves
// 2 x dof x sizeof(element) bytes per fluid lattice update. All *compute*
// in this repository stays `real_t` (FP64) — collision, regularization and
// moment math are bit-identical regardless of policy — but the smooth
// hydrodynamic fields the MR pattern stores ({rho, rho u, Pi}) tolerate
// FP32 *storage* well (cf. the stability-guided quantization line of work
// in PAPERS.md), halving both footprint and counted traffic. The policy
// selects the element type of the GlobalArrays an engine owns; conversion
// happens once per access, at the register boundary (see
// docs/algorithms.md, "Storage precision and the byte model").
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace mlbm {

enum class StoragePrecision {
  kFP64,  ///< store double (the paper's configuration; the default)
  kFP32,  ///< store float, compute in double at the register boundary
};

inline const char* to_string(StoragePrecision p) {
  return p == StoragePrecision::kFP32 ? "fp32" : "fp64";
}

/// Bytes per stored element under the policy — the `sizeof(StorageT)` that
/// enters every counted byte, footprint and bytes-per-FLUP figure.
inline constexpr std::size_t bytes_of(StoragePrecision p) {
  return p == StoragePrecision::kFP32 ? 4 : 8;
}

/// Compile-time storage type -> runtime policy tag.
template <typename S>
struct PrecisionOf;
template <>
struct PrecisionOf<double> {
  static constexpr StoragePrecision value = StoragePrecision::kFP64;
};
template <>
struct PrecisionOf<float> {
  static constexpr StoragePrecision value = StoragePrecision::kFP32;
};
template <typename S>
inline constexpr StoragePrecision precision_of_v = PrecisionOf<S>::value;

/// Parses a `--precision {fp64,fp32}` CLI value; nullopt on anything else.
inline std::optional<StoragePrecision> parse_precision(std::string_view s) {
  if (s == "fp64" || s == "double") return StoragePrecision::kFP64;
  if (s == "fp32" || s == "float" || s == "single")
    return StoragePrecision::kFP32;
  return std::nullopt;
}

}  // namespace mlbm
