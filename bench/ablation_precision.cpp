// Ablation: storage precision (FP64 vs FP32 storage, FP64 compute).
//
// The storage-precision policy stores device-resident state in FP32 while
// every collision/regularization stays FP64. Per pattern x precision this
// harness reports the three quantities the policy trades against each other:
//
//   footprint   state bytes per node (engine-reported and model),
//   traffic     measured read/write bytes per fluid lattice update — FP32
//               must be exactly half of FP64 for every pattern,
//   speed       predicted saturated MFLUPS on the paper's V100 (Eq. 15 with
//               the halved B/FLUP),
//
// plus the price: the maximum L2 velocity error of a Taylor-Green run
// against the FP64 host ReferenceEngine, which bounds what FP32 storage
// rounding does to the physics (compute-precision effects are excluded by
// construction — the fp64 row measures pure scheme/representation error).
//
// Results go to stdout and results/ablation_precision.json.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "engines/reference_engine.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/roofline.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mlbm;

namespace {

struct Row {
  std::string lattice;
  std::string pattern;
  std::string precision;
  double state_bpn = 0;        ///< engine-reported state bytes per node
  double model_state_bpn = 0;  ///< perf::state_bytes per node
  double read_bpf = 0;         ///< measured read bytes per FLUP
  double write_bpf = 0;        ///< measured write bytes per FLUP
  double model_bpf = 0;        ///< Table 2 bytes per FLUP at this width
  double pred_mflups = 0;      ///< predicted saturated MFLUPS (V100)
  double roofline_mflups = 0;  ///< Eq. 15 ideal at this width
  double max_l2_err = 0;       ///< max L2 velocity error vs FP64 reference
};

CollisionScheme reference_scheme(perf::Pattern p) {
  switch (p) {
    case perf::Pattern::kST: return CollisionScheme::kBGK;
    case perf::Pattern::kMRP: return CollisionScheme::kProjective;
    case perf::Pattern::kMRR: return CollisionScheme::kRecursive;
  }
  return CollisionScheme::kBGK;
}

/// Max-over-time L2 velocity error of a Taylor-Green run against the FP64
/// host reference with the matching collision scheme.
template <class L>
double taylor_green_error(perf::Pattern p, StoragePrecision prec, int n,
                          int nz, int steps) {
  const real_t tau = 0.8;
  const auto tg = TaylorGreen<L>::create(n, 0.03, nz);
  ReferenceEngine<L> ref(tg.geo, tau, reference_scheme(p));
  auto eng = bench::make_pattern_engine<L>(p, prec, tg.geo, tau,
                                           bench::default_mr_config(L::D));
  tg.attach(ref);
  tg.attach(*eng);

  const Box& b = tg.geo.box;
  double max_err = 0;
  for (int s = 0; s < steps; ++s) {
    ref.step();
    eng->step();
    double sum = 0;
    for (int z = 0; z < b.nz; ++z) {
      for (int y = 0; y < b.ny; ++y) {
        for (int x = 0; x < b.nx; ++x) {
          const Moments<L> a = eng->moments_at(x, y, z);
          const Moments<L> r = ref.moments_at(x, y, z);
          for (int d = 0; d < L::D; ++d) {
            const double du = a.u[static_cast<std::size_t>(d)] -
                              r.u[static_cast<std::size_t>(d)];
            sum += du * du;
          }
        }
      }
    }
    max_err = std::max(max_err,
                       std::sqrt(sum / static_cast<double>(b.cells())));
  }
  return max_err;
}

template <class L>
void run_lattice(std::vector<Row>& rows,
                 const std::vector<StoragePrecision>& precs, int traffic_n,
                 int tg_n, int tg_nz, int tg_steps) {
  const gpusim::DeviceSpec v100 = gpusim::DeviceSpec::v100();
  const perf::LatticeInfo lat = perf::lattice_info<L>();
  const MrConfig cfg = bench::default_mr_config(L::D);
  const Geometry geo = bench::periodic_geo(
      traffic_n, traffic_n, L::D == 3 ? traffic_n : 1);

  for (const perf::Pattern p :
       {perf::Pattern::kST, perf::Pattern::kMRP, perf::Pattern::kMRR}) {
    for (const StoragePrecision prec : precs) {
      Row r;
      r.lattice = L::name();
      r.pattern = perf::to_string(p);
      r.precision = to_string(prec);

      auto eng = bench::make_pattern_engine<L>(p, prec, geo, 0.8, cfg);
      const auto t = bench::measure_traffic<L>(*eng);
      const double cells = static_cast<double>(geo.box.cells());
      r.state_bpn = static_cast<double>(eng->state_bytes()) / cells;
      r.read_bpf = t.read_bytes_per_node;
      r.write_bpf = t.write_bytes_per_node;

      const double eb = perf::elem_bytes_of(prec);
      r.model_state_bpn = perf::state_bytes(p, lat, 1, false, eb);
      r.model_bpf = perf::bytes_per_flup(p, lat, eb);

      const perf::KernelCharacteristics kc =
          bench::characteristics<L>(p, prec);
      const perf::PerfEstimate est = perf::estimate_saturated(v100, p, lat, kc);
      r.pred_mflups = est.mflups;
      r.roofline_mflups = est.roofline_mflups;

      r.max_l2_err = taylor_green_error<L>(p, prec, tg_n, tg_nz, tg_steps);
      rows.push_back(r);
    }
  }
}

bool write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"benchmark\": \"ablation_precision\",\n"
       "  \"device\": \"V100\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    f << "    {\"lattice\": \"" << r.lattice << "\", \"pattern\": \""
      << r.pattern << "\", \"precision\": \"" << r.precision
      << "\", \"state_bytes_per_node\": " << r.state_bpn
      << ", \"model_state_bytes_per_node\": " << r.model_state_bpn
      << ", \"read_bytes_per_flup\": " << r.read_bpf
      << ", \"write_bytes_per_flup\": " << r.write_bpf
      << ", \"model_bytes_per_flup\": " << r.model_bpf
      << ", \"predicted_mflups\": " << r.pred_mflups
      << ", \"roofline_mflups\": " << r.roofline_mflups
      << ", \"max_tg_l2_velocity_error\": " << r.max_l2_err << "}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  cli.reject_unknown({"out", "precision", "tg-steps"});
  const std::string prec_arg = cli.get("precision", "both");
  const int tg_steps = cli.get_int("tg-steps", 30, 1);
  const std::string out =
      cli.get("out", perf::results_dir() + "/ablation_precision.json");

  std::vector<StoragePrecision> precs;
  if (prec_arg == "both") {
    precs = {StoragePrecision::kFP64, StoragePrecision::kFP32};
  } else if (const auto p = parse_precision(prec_arg)) {
    precs = {*p};
  } else {
    std::fprintf(stderr, "error: --precision must be both, fp64 or fp32\n");
    return 1;
  }

  perf::print_banner("Ablation",
                     "Storage precision: FP32 store / FP64 compute");

  std::vector<Row> rows;
  run_lattice<D2Q9>(rows, precs, 64, 32, 1, tg_steps);
  run_lattice<D3Q19>(rows, precs, 16, 16, 8, tg_steps);

  AsciiTable t({"Lattice", "Pattern", "Prec", "state B/node", "read B/FLUP",
                "write B/FLUP", "model B/FLUP", "pred MFLUPS", "max L2 err"});
  for (const Row& r : rows) {
    t.row({r.lattice, r.pattern, r.precision, AsciiTable::num(r.state_bpn, 1),
           AsciiTable::num(r.read_bpf, 1), AsciiTable::num(r.write_bpf, 1),
           AsciiTable::num(r.model_bpf, 1), AsciiTable::num(r.pred_mflups, 0),
           AsciiTable::num(r.max_l2_err, 10)});
  }
  t.print();

  std::printf(
      "\nFP32 storage halves footprint, bytes/FLUP and therefore doubles the\n"
      "bandwidth-bound MFLUPS prediction; compute stays FP64, so the extra\n"
      "Taylor-Green error over the fp64 rows is pure storage rounding.\n");

  if (!write_json(out, rows)) {
    std::fprintf(stderr, "\nerror: could not write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
