#include "workloads/shear_layer.hpp"

#include <cmath>

#include "resilience/sentinel.hpp"

namespace mlbm {

namespace {
constexpr real_t kPi = 3.14159265358979323846;
}

template <class L>
DoubleShearLayer<L> DoubleShearLayer<L>::create(int n, real_t u0, real_t width,
                                                real_t delta) {
  Box box{n, n, L::D == 2 ? 1 : 4};
  Geometry geo(box);
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return {n, u0, width, delta, std::move(geo)};
}

template <class L>
void DoubleShearLayer<L>::attach(Engine<L>& eng) const {
  const int nn = n;
  const real_t u = u0, k = width, d = delta;
  eng.initialize([nn, u, k, d](int x, int y, int /*z*/) {
    const real_t xt = (static_cast<real_t>(x) + real_t(0.5)) / nn;
    const real_t yt = (static_cast<real_t>(y) + real_t(0.5)) / nn;
    std::array<real_t, L::D> vel{};
    vel[0] = yt <= real_t(0.5)
                 ? u * std::tanh(k * (yt - real_t(0.25)))
                 : u * std::tanh(k * (real_t(0.75) - yt));
    vel[1] = d * u * std::sin(real_t(2) * kPi * (xt + real_t(0.25)));
    return equilibrium_moments<L>(real_t(1), vel);
  });
}

template <class L>
bool DoubleShearLayer<L>::healthy(const Engine<L>& eng) {
  // The shared sentinel's defaults reproduce the historical detector
  // (stride nx/16, |u| <= 0.8, rho finite and positive); pi is not checked
  // so stability-study thresholds stay exactly where they were.
  resilience::SentinelConfig cfg;
  cfg.check_pi = false;
  return resilience::StabilitySentinel<L>(cfg).check(eng).healthy;
}

template struct DoubleShearLayer<D2Q9>;
template struct DoubleShearLayer<D3Q19>;

}  // namespace mlbm
