// Derived-field analysis: gradients, vorticity, strain rate (FD vs moment
// route), dissipation, flux — plus the second-order grid-convergence study.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/fields.hpp"
#include "engines/mr_engine.hpp"
#include "engines/st_engine.hpp"
#include "workloads/analytic.hpp"
#include "workloads/channel.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Analysis, VorticityOfTaylorGreenMatchesAnalytic) {
  const int n = 32;
  const real_t u0 = 0.02;
  const auto tg = TaylorGreen<D2Q9>::create(n, u0);
  StEngine<D2Q9> e(tg.geo, 0.8);
  tg.attach(e);
  // omega_z = 2 u0 k cos(kx) cos(ky) at t = 0.
  const real_t k = 2 * kPi / n;
  for (int y = 2; y < n; y += 7) {
    for (int x = 3; x < n; x += 7) {
      const auto w = analysis::vorticity(e, x, y, 0);
      const real_t ref = 2 * u0 * k * std::cos(k * x) * std::cos(k * y);
      EXPECT_NEAR(w[2], ref, 0.01 * 2 * u0 * k);  // central FD ~ O(k^2)
      EXPECT_EQ(w[0], 0.0);
      EXPECT_EQ(w[1], 0.0);
    }
  }
}

TEST(Analysis, MomentStrainRateMatchesFdStrainRate) {
  // After a few steps of developed flow, the locally recovered strain rate
  // (from Pi^neq) must agree with the finite-difference one.
  const auto tg = TaylorGreen<D2Q9>::create(32, 0.02);
  MrEngine<D2Q9> e(tg.geo, 0.8, Regularization::kProjective, {8, 1, 2});
  tg.attach(e);
  e.run(30);
  for (int y = 1; y < 32; y += 9) {
    for (int x = 2; x < 32; x += 9) {
      const auto sm = analysis::strain_rate_moment(e, x, y, 0);
      const auto sf = analysis::strain_rate_fd(e, x, y, 0);
      for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
          const real_t fd =
              sf[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
          // Both routes carry their own O(dx^2)/O(Ma^2) truncation; they
          // agree to a few percent, not to round-off.
          EXPECT_NEAR(sm[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)],
                      fd, 0.03 * std::abs(fd) + 5e-6)
              << "at " << x << "," << y << " comp " << a << b;
        }
      }
    }
  }
}

TEST(Analysis, DissipationBalancesEnergyDecayOnTaylorGreen) {
  // dE/dt = -epsilon: compare the measured kinetic-energy drop over a short
  // window against the integrated dissipation rate.
  const auto tg = TaylorGreen<D2Q9>::create(32, 0.02);
  StEngine<D2Q9> e(tg.geo, 0.8);
  tg.attach(e);
  e.run(20);  // settle
  const real_t e0 = TaylorGreen<D2Q9>::kinetic_energy(e);
  const real_t eps0 = analysis::dissipation(e);
  const int dt = 10;
  e.run(dt);
  const real_t e1 = TaylorGreen<D2Q9>::kinetic_energy(e);
  const real_t eps1 = analysis::dissipation(e);
  // Energy decays over the window, so compare against the trapezoidal mean
  // dissipation rate.
  const real_t eps_mean = (eps0 + eps1) / 2;
  EXPECT_NEAR((e0 - e1) / dt, eps_mean, 0.05 * eps_mean);
}

TEST(Analysis, ChannelMassFluxIsUniformAlongX) {
  // In the developed steady state, the flux through every cross-section is
  // the same (mass conservation of the bulk update).
  const auto ch = Channel<D2Q9>::create(48, 16, 1, 0.8, 0.05);
  MrEngine<D2Q9> e(ch.geo, 0.8, Regularization::kProjective, {16, 1, 2});
  ch.attach(e);
  e.run(2500);
  const real_t f_mid = analysis::mass_flux_x(e, 24);
  for (int x = 4; x < 44; x += 8) {
    EXPECT_NEAR(analysis::mass_flux_x(e, x), f_mid, 0.01 * std::abs(f_mid));
  }
}

TEST(Analysis, CouetteShearIsUniform) {
  Geometry geo(Box{8, 16, 1});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kWall);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  geo.bc.face[1][1].u_wall = {0.04, 0, 0};
  StEngine<D2Q9> e(geo, 0.8);
  e.initialize([](int, int, int) { return equilibrium_moments<D2Q9>(1, {}); });
  e.run(2500);
  // S_xy = (du/dy)/2 = u_wall / (2 ny) everywhere in the bulk.
  const real_t expect = 0.04 / 16 / 2;
  for (int y = 3; y < 13; y += 3) {
    const auto s = analysis::strain_rate_moment(e, 4, y, 0);
    EXPECT_NEAR(s[0][1], expect, 0.05 * expect);
  }
}

// ------------------------------------------------------- convergence order

TEST(Convergence, TaylorGreenVelocityErrorIsSecondOrder) {
  // Diffusive scaling: fix nu and the physical decay time; the velocity
  // error of the LBM solution must drop ~4x when the resolution doubles.
  auto error_at = [](int n) {
    const real_t u0 = 0.04 / (n / 16.0);  // keep Ma ~ dx (diffusive scaling)
    const real_t tau = 0.6;
    const auto tg = TaylorGreen<D2Q9>::create(n, u0);
    StEngine<D2Q9> e(tg.geo, tau);
    tg.attach(e);
    const real_t nu = e.viscosity();
    // Run to the same physical time t* = 0.05 n^2 / nu... use decay to 90%:
    const real_t k = 2 * kPi / n;
    const int steps = static_cast<int>(0.1 / (2 * nu * k * k)) + 1;
    e.run(steps);
    double err = 0, scale = 0;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const auto m = e.moments_at(x, y, 0);
        const auto ref = tg.velocity(x, y, nu, e.time());
        err += std::pow(m.u[0] - ref[0], 2) + std::pow(m.u[1] - ref[1], 2);
        scale += ref[0] * ref[0] + ref[1] * ref[1];
      }
    }
    return std::sqrt(err / scale);
  };

  // Single refinement steps oscillate (error-term cancellation); fit the
  // order across two refinements, 16 -> 64.
  const double e16 = error_at(16);
  const double e64 = error_at(64);
  const double order = std::log2(e16 / e64) / 2;
  EXPECT_GT(order, 1.6) << "e16=" << e16 << " e64=" << e64;
  EXPECT_LT(order, 2.8);
}

}  // namespace
}  // namespace mlbm
