#include "resilience/runner.hpp"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "io/checkpoint.hpp"

namespace mlbm::resilience {

std::string RunReport::describe() const {
  std::ostringstream os;
  for (const RecoveryEvent& e : events) {
    os << "step=" << e.step << " action=" << to_string(e.action)
       << " attempt=" << e.attempt << " backoff_ms=" << e.backoff_ms
       << " resume=" << e.restored_step << " cause=" << e.cause << '\n';
  }
  return os.str();
}

template <class L>
ResilientRunner<L>::ResilientRunner(std::unique_ptr<Engine<L>> eng,
                                    RunnerConfig cfg)
    : eng_(std::move(eng)), cfg_(std::move(cfg)), sentinel_(cfg_.sentinel) {
  if (!eng_) {
    throw ConfigError("ResilientRunner: engine must not be null");
  }
  if (cfg_.checkpoint_interval <= 0) {
    throw ConfigError("ResilientRunner: checkpoint_interval must be >= 1");
  }
  if (cfg_.ring_capacity <= 0) {
    throw ConfigError("ResilientRunner: ring_capacity must be >= 1");
  }
  if (cfg_.max_retries_per_window <= 0) {
    throw ConfigError("ResilientRunner: max_retries_per_window must be >= 1");
  }
}

template <class L>
ResilientRunner<L>::~ResilientRunner() {
  if (injector_ != nullptr && eng_) injector_->uninstall(*eng_);
}

template <class L>
void ResilientRunner<L>::set_fault_injector(FaultInjector* inj) {
  if (injector_ != nullptr && eng_) injector_->uninstall(*eng_);
  injector_ = inj;
  if (injector_ != nullptr) injector_->install(*eng_);
}

template <class L>
int ResilientRunner<L>::backoff_ms(int attempt) const {
  long long ms = cfg_.backoff_base_ms;
  for (int i = 1; i < attempt && ms < cfg_.backoff_max_ms; ++i) ms *= 2;
  if (ms > cfg_.backoff_max_ms) ms = cfg_.backoff_max_ms;
  return static_cast<int>(ms);
}

template <class L>
int ResilientRunner<L>::recover(RunReport& rep, int failed_step, int& attempt,
                                const std::string& cause) {
  ++rep.rollbacks;
  if (rep.rollbacks > cfg_.max_total_rollbacks) {
    throw UnrecoverableError(
        "ResilientRunner: rollback budget exhausted (" +
        std::to_string(cfg_.max_total_rollbacks) + ") at step " +
        std::to_string(failed_step) + "; last cause: " + cause);
  }

  ++attempt;
  RecoveryAction action = RecoveryAction::kRollback;
  if (attempt > cfg_.max_retries_per_window) {
    if (ring_.size() > 1) {
      // The newest checkpoint's window keeps failing — distrust it (its
      // state may carry a fault the sentinel cannot see) and fall back.
      ring_.pop_back();
      ++rep.ring_fallbacks;
      action = RecoveryAction::kRingFallback;
      attempt = 1;
    } else if (fallback_ && !degraded_) {
      std::unique_ptr<Engine<L>> next = fallback_();
      if (!next) {
        throw UnrecoverableError(
            "ResilientRunner: fallback factory returned null at step " +
            std::to_string(failed_step));
      }
      if (injector_ != nullptr) injector_->uninstall(*eng_);
      eng_ = std::move(next);
      if (injector_ != nullptr) injector_->install(*eng_);
      degraded_ = true;
      rep.degraded = true;
      action = RecoveryAction::kDegrade;
      attempt = 1;
    } else {
      throw UnrecoverableError(
          "ResilientRunner: retries exhausted at step " +
          std::to_string(failed_step) + "; last cause: " + cause);
    }
  }

  const int bo = backoff_ms(attempt);
  rep.total_backoff_ms += static_cast<std::uint64_t>(bo);
  if (cfg_.sleep_on_backoff && bo > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(bo));
  }

  const StateSnapshot<L>& snap = ring_.back();
  restore_state(*eng_, snap);
  rep.events.push_back({failed_step, snap.step, attempt, bo, action, cause});
  return snap.step;
}

template <class L>
RunReport ResilientRunner<L>::run(int steps) {
  if (steps < 0) {
    throw ConfigError("ResilientRunner::run: steps must be >= 0");
  }
  RunReport rep;

  // The run's anchor: without a good step-0 snapshot there is nothing to
  // roll back to when the very first window fails.
  //
  // Snapshots need the (expensive) portable moment payload only when a
  // cross-engine restore is possible: a degrade into a fallback engine, or a
  // moment-only engine (whose raw tag is empty — capture_state then includes
  // the payload regardless).
  const bool with_moments = fallback_ != nullptr;
  ring_.clear();
  ring_.push_back(capture_state(*eng_, 0, with_moments));

  int step = 0;     // completed steps this run()
  int attempt = 0;  // failed tries of the current window
  while (step < steps) {
    bool healthy = true;
    std::string cause;
    try {
      if (injector_ != nullptr) injector_->begin_step(step);
      eng_->step();
      if (injector_ != nullptr) injector_->apply_state_faults(*eng_);
      ++step;

      const bool cp_due = step % cfg_.checkpoint_interval == 0;
      if (sentinel_.due(step) || cp_due) {
        const SentinelReport sr = sentinel_.check(*eng_);
        if (!sr.healthy) {
          ++rep.sentinel_trips;
          healthy = false;
          cause = "sentinel: " + sr.describe();
        }
      }
      if (healthy && cp_due) {
        ring_.push_back(capture_state(*eng_, step, with_moments));
        while (static_cast<int>(ring_.size()) > cfg_.ring_capacity) {
          ring_.erase(ring_.begin());
        }
        ++rep.checkpoints;
        attempt = 0;
        if (cfg_.disk_every > 0 && !cfg_.disk_path.empty() &&
            rep.checkpoints % cfg_.disk_every == 0) {
          save_checkpoint(*eng_, cfg_.disk_path);
        }
      }
    } catch (const Error& e) {
      if (!e.transient()) throw;
      ++rep.launch_failures;
      healthy = false;
      cause = error_message(e);
      // `step` was not advanced: the failure interrupted the step itself.
    }
    if (!healthy) step = recover(rep, step, attempt, cause);
  }

  rep.steps = steps;
  return rep;
}

template class ResilientRunner<D2Q9>;
template class ResilientRunner<D3Q19>;
template class ResilientRunner<D3Q27>;
template class ResilientRunner<D3Q15>;

}  // namespace mlbm::resilience
