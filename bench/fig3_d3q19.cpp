// Figure 3: D3Q19 performance (MFLUPS) vs problem size for ST, MR-P and MR-R
// against the roofline predictions, on V100 and MI100.
#include "fig_common.hpp"

int main() {
  // Paper text: V100 ST ~2600, MR-P ~3800, MR-R ~3000 (drop ~800);
  // MI100 ST ~2800, MR-P ~3200, MR-R ~2500 (drop ~700).
  mlbm::bench::run_figure<mlbm::D3Q19>(
      {"Figure 3", "D3Q19 MFLUPS vs problem size (NxNxN channel)", 3},
      "fig3_d3q19.csv", {2600, 3800, 3000}, {2800, 3200, 2500});
  return 0;
}
