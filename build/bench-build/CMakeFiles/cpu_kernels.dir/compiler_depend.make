# Empty compiler generated dependencies file for cpu_kernels.
# This may be replaced when dependencies are built.
