// Moment-space representation of the lattice Boltzmann state.
//
// The moment representation stores, per lattice node, the M = 1 + D + D(D+1)/2
// values {rho, u, Pi} where Pi is the (symmetric) second-order Hermite moment
// of the distribution (Eq. 3 of the paper). Symmetric tensors of ranks 2..4
// are stored component-wise with an explicit index ordering plus multiplicity
// tables so that full tensor contractions can be written as flat loops.
#pragma once

#include <array>

#include "core/hermite.hpp"
#include "core/lattice.hpp"
#include "util/types.hpp"

namespace mlbm {

/// Index ordering of the independent components of a symmetric rank-2 tensor.
/// 2D: xx, xy, yy. 3D: xx, xy, xz, yy, yz, zz.
template <int D>
struct SymPairs;

template <>
struct SymPairs<2> {
  static constexpr int N = 3;
  static constexpr std::array<std::array<int, 2>, 3> idx = {{{0, 0}, {0, 1}, {1, 1}}};
  /// Number of equivalent permutations of each component in a full contraction.
  static constexpr std::array<int, 3> mult = {1, 2, 1};
  static constexpr int index(int a, int b) {
    // (0,0)->0, (0,1)/(1,0)->1, (1,1)->2
    return a + b;
  }
};

template <>
struct SymPairs<3> {
  static constexpr int N = 6;
  static constexpr std::array<std::array<int, 2>, 6> idx = {
      {{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}}};
  static constexpr std::array<int, 6> mult = {1, 2, 2, 1, 2, 1};
  static constexpr int index(int a, int b) {
    constexpr int map[3][3] = {{0, 1, 2}, {1, 3, 4}, {2, 4, 5}};
    return map[a][b];
  }
};

/// Independent components of a symmetric rank-3 tensor, with multiplicities.
template <int D>
struct SymTriples;

template <>
struct SymTriples<2> {
  static constexpr int N = 4;
  static constexpr std::array<std::array<int, 3>, 4> idx = {
      {{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {1, 1, 1}}};
  static constexpr std::array<int, 4> mult = {1, 3, 3, 1};
};

template <>
struct SymTriples<3> {
  static constexpr int N = 10;
  static constexpr std::array<std::array<int, 3>, 10> idx = {{{0, 0, 0},
                                                              {0, 0, 1},
                                                              {0, 0, 2},
                                                              {0, 1, 1},
                                                              {0, 1, 2},
                                                              {0, 2, 2},
                                                              {1, 1, 1},
                                                              {1, 1, 2},
                                                              {1, 2, 2},
                                                              {2, 2, 2}}};
  static constexpr std::array<int, 10> mult = {1, 3, 3, 3, 6, 3, 1, 3, 3, 1};
};

/// Independent components of a symmetric rank-4 tensor, with multiplicities.
template <int D>
struct SymQuads;

template <>
struct SymQuads<2> {
  static constexpr int N = 5;
  static constexpr std::array<std::array<int, 4>, 5> idx = {
      {{0, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 1}, {0, 1, 1, 1}, {1, 1, 1, 1}}};
  static constexpr std::array<int, 5> mult = {1, 4, 6, 4, 1};
};

template <>
struct SymQuads<3> {
  static constexpr int N = 15;
  static constexpr std::array<std::array<int, 4>, 15> idx = {{
      {0, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 0, 2}, {0, 0, 1, 1}, {0, 0, 1, 2},
      {0, 0, 2, 2}, {0, 1, 1, 1}, {0, 1, 1, 2}, {0, 1, 2, 2}, {0, 2, 2, 2},
      {1, 1, 1, 1}, {1, 1, 1, 2}, {1, 1, 2, 2}, {1, 2, 2, 2}, {2, 2, 2, 2},
  }};
  static constexpr std::array<int, 15> mult = {1, 4, 4, 6, 12, 6, 4, 12,
                                               12, 4, 1, 4, 6, 4, 1};
};

/// Per-node moment state {rho, u, Pi}. `pi` holds the *full* second-order
/// Hermite moment (equilibrium + non-equilibrium parts); the non-equilibrium
/// part is recovered as Pi_ab - rho u_a u_b.
template <class L>
struct Moments {
  static constexpr int D = L::D;
  static constexpr int NP = SymPairs<D>::N;

  real_t rho = 1;
  std::array<real_t, D> u{};
  std::array<real_t, NP> pi{};

  [[nodiscard]] real_t pi_neq(int p) const {
    const auto [a, b] = pair(p);
    return pi[static_cast<std::size_t>(p)] - rho * u[static_cast<std::size_t>(a)] * u[static_cast<std::size_t>(b)];
  }

  static constexpr std::array<int, 2> pair(int p) {
    return {SymPairs<D>::idx[static_cast<std::size_t>(p)][0],
            SymPairs<D>::idx[static_cast<std::size_t>(p)][1]};
  }
};

/// Projects a distribution onto its first three Hermite moments
/// (Eqs. 1-3 of the paper).
template <class L>
Moments<L> compute_moments(const real_t (&f)[L::Q]) {
  Moments<L> m;
  m.rho = 0;
  m.u.fill(0);
  m.pi.fill(0);
  for (int i = 0; i < L::Q; ++i) {
    m.rho += f[i];
    for (int a = 0; a < L::D; ++a) {
      m.u[static_cast<std::size_t>(a)] += hermite::h1<L>(i, a) * f[i];
    }
    for (int p = 0; p < Moments<L>::NP; ++p) {
      const auto [a, b] = Moments<L>::pair(p);
      m.pi[static_cast<std::size_t>(p)] += hermite::h2<L>(i, a, b) * f[i];
    }
  }
  for (int a = 0; a < L::D; ++a) {
    m.u[static_cast<std::size_t>(a)] /= m.rho;
  }
  return m;
}

}  // namespace mlbm
