// Porous-plug workload: pressure-driven flow through a random solid matrix.
//
// A channel (velocity inlet at x = 0, outlet at x = nx-1, bounceback side
// walls) whose interior is filled with random solid nodes at a prescribed
// solid fraction (deterministic per seed, see shapes::add_random_solids). A
// clear margin of a few columns is kept at both ends so the inlet/outlet
// boundary conditions act on unobstructed flow. This is the sparse path's
// stress workload: sweeping the solid fraction dials the fluid fraction the
// tile-compressed engines see, and the superficial velocity it settles to
// gives a Darcy-style permeability estimate.
#pragma once

#include <cstdint>
#include <memory>

#include "bc/boundary.hpp"
#include "engines/engine.hpp"

namespace mlbm {

template <class L>
struct PorousPlug {
  Geometry geo;
  real_t tau;
  real_t u_in;
  double fluid_fraction = 1.0;  ///< over the porous interior
  std::shared_ptr<InletOutletBC<L>> bc;

  /// Builds the plugged channel. `solid_fraction` is the per-node solid
  /// probability inside the porous region; `margin` columns at each end stay
  /// clear. 2D when nz == 1.
  static PorousPlug create(int nx, int ny, int nz, real_t tau, real_t u_in,
                           double solid_fraction, std::uint64_t seed,
                           int margin = 4);

  /// Initializes the engine with a uniform inflow field and registers the
  /// inlet/outlet pass.
  void attach(Engine<L>& eng) const;

  /// Superficial (volume-averaged over ALL interior nodes, solid included)
  /// streamwise velocity — the Darcy flux the permeability estimate reads.
  [[nodiscard]] real_t superficial_velocity(const Engine<L>& eng) const;
};

extern template struct PorousPlug<D2Q9>;
extern template struct PorousPlug<D3Q19>;
extern template struct PorousPlug<D3Q27>;
extern template struct PorousPlug<D3Q15>;

}  // namespace mlbm
