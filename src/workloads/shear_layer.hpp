// Doubly periodic double shear layer (Minion & Brown 1997).
//
// Two thin tanh shear layers with a sinusoidal cross perturbation roll up
// into vortices; when the layer thickness is under-resolved, spurious
// secondary vortices and eventually blow-up appear. This is the standard
// workload for demonstrating the stability gain of regularized collision
// operators (cf. Coreixas et al., Latt et al.), i.e. the property the paper
// leverages to compress the LBM state.
#pragma once

#include "engines/engine.hpp"
#include "util/types.hpp"

namespace mlbm {

template <class L>
struct DoubleShearLayer {
  int n;            ///< nodes per axis (periodic square / cube-slab)
  real_t u0;        ///< shear velocity
  real_t width;     ///< dimensionless layer steepness (Minion-Brown k ~ 80)
  real_t delta;     ///< perturbation amplitude (fraction of u0)
  Geometry geo;

  static DoubleShearLayer create(int n, real_t u0, real_t width = 80,
                                 real_t delta = 0.05);

  void attach(Engine<L>& eng) const;

  /// True while every sampled node is finite and subsonic. Thin wrapper
  /// over resilience::StabilitySentinel (the shared divergence detector)
  /// with the historical sampling and bounds.
  static bool healthy(const Engine<L>& eng);
};

extern template struct DoubleShearLayer<D2Q9>;
extern template struct DoubleShearLayer<D3Q19>;

}  // namespace mlbm
