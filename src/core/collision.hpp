// Distribution-space collision operators.
//
// These are used by the reference engine (ground truth for physics and for
// the MR engines' equivalence tests) and by the ST engine's fused
// stream-collide kernel. The regularized variants are the distribution-space
// formulations of Sections 2.2 and 2.3; the MR engines perform the same
// operations in moment space and must agree to round-off.
#pragma once

#include <type_traits>

#include "core/equilibrium.hpp"
#include "core/lattice.hpp"
#include "core/moments.hpp"
#include "core/regularization.hpp"
#include "util/types.hpp"

namespace mlbm {

enum class CollisionScheme {
  kBGK,         ///< standard single-relaxation-time BGK (Eq. 6)
  kProjective,  ///< projective regularization (Eq. 9)
  kRecursive,   ///< recursive regularization (Eq. 14 applied in collision)
};

inline const char* to_string(CollisionScheme s) {
  switch (s) {
    case CollisionScheme::kBGK: return "bgk";
    case CollisionScheme::kProjective: return "projective";
    case CollisionScheme::kRecursive: return "recursive";
  }
  return "?";
}

/// In-place BGK relaxation: f <- f + (feq - f)/tau.
template <class L>
void collide_bgk(real_t (&f)[L::Q], real_t tau) {
  const Moments<L> m = compute_moments<L>(f);
  const real_t omega = real_t(1) / tau;
  for (int i = 0; i < L::Q; ++i) {
    f[i] += omega * (equilibrium<L>(i, m.rho, m.u.data()) - f[i]);
  }
}

/// In-place regularized relaxation in distribution space with the scheme
/// fixed at compile time — no per-node or per-population branch. The
/// non-equilibrium second moment is projected out of f (Eq. 8), relaxed
/// (Eq. 10), and the population rebuilt with the chosen reconstruction.
template <class L, Regularization R>
void collide_regularized(real_t (&f)[L::Q], real_t tau) {
  const Moments<L> m = compute_moments<L>(f);
  const real_t factor = real_t(1) - real_t(1) / tau;
  real_t pineq_star[Moments<L>::NP];
  for (int p = 0; p < Moments<L>::NP; ++p) {
    pineq_star[p] = factor * m.pi_neq(p);
  }
  const Reconstructor<L, R> rec(m.rho, m.u.data(), pineq_star);
  for (int i = 0; i < L::Q; ++i) {
    f[i] = rec(i);
  }
}

/// Runtime-scheme wrapper: dispatches once, then runs the templated kernel.
template <class L>
void collide_regularized(real_t (&f)[L::Q], real_t tau, Regularization scheme) {
  dispatch_regularization(scheme, [&](auto reg) {
    collide_regularized<L, decltype(reg)::value>(f, tau);
  });
}

/// Compile-time-scheme collision: the emitted body contains only the chosen
/// operator. Stream-collide kernels hoist their scheme dispatch to the
/// launch level (dispatch_collision below) and call this, so the BGK node
/// loop never carries the regularized reconstructors through register
/// allocation — inlining those arms into the loop costs GCC ~10% of the
/// gather-bound kernel's throughput even when the BGK branch is taken.
template <class L, CollisionScheme S>
void collide(real_t (&f)[L::Q], real_t tau) {
  if constexpr (S == CollisionScheme::kBGK) {
    collide_bgk<L>(f, tau);
  } else if constexpr (S == CollisionScheme::kProjective) {
    collide_regularized<L, Regularization::kProjective>(f, tau);
  } else {
    collide_regularized<L, Regularization::kRecursive>(f, tau);
  }
}

/// Maps a runtime CollisionScheme to a std::integral_constant and invokes fn
/// once with it — the scheme-hoisting counterpart of dispatch_regularization.
template <class Fn>
void dispatch_collision(CollisionScheme s, Fn&& fn) {
  switch (s) {
    case CollisionScheme::kBGK:
      fn(std::integral_constant<CollisionScheme, CollisionScheme::kBGK>{});
      return;
    case CollisionScheme::kProjective:
      fn(std::integral_constant<CollisionScheme,
                                CollisionScheme::kProjective>{});
      return;
    case CollisionScheme::kRecursive:
      fn(std::integral_constant<CollisionScheme,
                                CollisionScheme::kRecursive>{});
      return;
  }
}

/// Runtime-dispatched collision used by the reference engine.
template <class L>
void collide(CollisionScheme scheme, real_t (&f)[L::Q], real_t tau) {
  dispatch_collision(scheme, [&](auto sc) {
    collide<L, decltype(sc)::value>(f, tau);
  });
}

/// Moment-space collision (Eq. 10): relaxes the non-equilibrium part of Pi
/// toward zero while conserving rho and u. Higher-order moments of the
/// recursive scheme need no separate treatment here because their
/// non-equilibrium parts are linear in Pi^neq (see regularization.hpp).
template <class L>
void collide_moments(Moments<L>& m, real_t tau) {
  const real_t factor = real_t(1) - real_t(1) / tau;
  for (int p = 0; p < Moments<L>::NP; ++p) {
    const auto [a, b] = Moments<L>::pair(p);
    const real_t eq = m.rho * m.u[static_cast<std::size_t>(a)] * m.u[static_cast<std::size_t>(b)];
    m.pi[static_cast<std::size_t>(p)] = eq + factor * (m.pi[static_cast<std::size_t>(p)] - eq);
  }
}

}  // namespace mlbm
