// Ablation: MR tile geometry. The paper notes two tuning constraints:
//  (1) "optimal performance is achieved with two or more thread blocks per
//      SM, so the targeted tile size and shared memory usage per column must
//      be adjusted";
//  (2) "tiles that are more than one lattice point high [in 3D] consistently
//      underperform those that are a single lattice point high".
// This harness sweeps tile shapes, reporting measured halo overhead, shared
// memory, occupancy on both devices and the modelled MFLUPS.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/report.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

template <class L>
void sweep(const std::vector<MrConfig>& configs, CsvWriter& csv) {
  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();
  const auto lat = perf::lattice_info<L>();

  std::printf("\n-- %s --\n", L::name());
  AsciiTable t({"tile", "threads", "shared KiB", "halo", "V100 blk/SM",
                "V100 MFLUPS", "MI100 blk/SM", "MI100 MFLUPS"});
  for (const MrConfig& cfg : configs) {
    const auto kc = bench::mr_characteristics<L>(Pattern::kMRP, cfg);
    const auto ev = perf::estimate_saturated(v100, Pattern::kMRP, lat, kc);
    const auto em = perf::estimate_saturated(mi100, Pattern::kMRP, lat, kc);
    std::string tile = std::to_string(cfg.tile_x);
    if (L::D == 3) {
      tile += "x";
      tile += std::to_string(cfg.tile_y);
    }
    tile += "x";
    tile += std::to_string(cfg.tile_s);
    t.row({tile, std::to_string(kc.threads_per_block),
           AsciiTable::num(kc.shared_bytes_per_block / 1024.0, 1),
           AsciiTable::num(100 * kc.halo_read_fraction, 1) + "%",
           std::to_string(ev.blocks_per_sm), AsciiTable::num(ev.mflups, 0),
           std::to_string(em.blocks_per_sm), AsciiTable::num(em.mflups, 0)});
    csv.row({L::name(), tile, std::to_string(kc.threads_per_block),
             CsvWriter::num(static_cast<double>(kc.shared_bytes_per_block)),
             CsvWriter::num(kc.halo_read_fraction),
             CsvWriter::num(ev.mflups), CsvWriter::num(em.mflups)});
  }
  t.print();
}

}  // namespace

int main() {
  perf::print_banner("Ablation", "MR tile geometry sweep");
  CsvWriter csv(perf::results_dir() + "/ablation_tile.csv",
                {"lattice", "tile", "threads", "shared_bytes", "halo_fraction",
                 "v100_mflups", "mi100_mflups"});

  sweep<D2Q9>({{8, 1, 1}, {16, 1, 2}, {32, 1, 1}, {32, 1, 4}, {32, 1, 8},
               {64, 1, 4}, {128, 1, 2}},
              csv);
  // 3D: note the z_t > 1 rows (3D thread blocks) and the shared-memory blowup
  // that drops residency below two blocks per SM.
  sweep<D3Q19>({{4, 4, 1}, {8, 4, 1}, {8, 8, 1}, {16, 8, 1}, {8, 8, 2},
                {8, 8, 4}, {16, 16, 1}},
               csv);

  std::printf(
      "\nLarger cross-sections cut halo overhead but blow up shared memory\n"
      "until residency drops below two blocks/SM (the paper's constraint);\n"
      "z_t > 1 tiles pay more shared memory for no halo benefit, matching\n"
      "the paper's observation that single-layer tiles perform best in 3D.\n");
  return 0;
}
