// Sparse-vs-dense traffic crossover (geometry layer).
//
// Sweeps the fluid fraction phi from ~0.1 to 1.0 with random porous
// geometries and measures, with the instrumented engines' traffic counters,
// the bytes each pattern moves per *fluid* lattice update on the
// tile-compressed sparse path. Against it stands the dense alternative: a
// dense kernel over the same box updates every node, so its cost per fluid
// update is bpf_dense / phi. The two curves cross near phi* = 1 -
// idx_bytes/(tile * bpf) (perfmodel/sparse.hpp); this harness reports the
// measured crossover next to the model's prediction and exits nonzero when
//
//   * the sparse path's measured bytes/FLUP exceeds 1.15x the dense
//     bytes/FLUP at phi ~ 0.3 (the index overhead must stay amortized), or
//   * measured and predicted crossover disagree by more than 0.15 in phi, or
//   * total sparse bytes fail to scale with the fluid fraction (the point of
//     the sparse path: solid regions must not cost bandwidth).
//
// Results go to stdout and results/BENCH_sparse.json.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "engines/aa_engine.hpp"
#include "geometry/shapes.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/sparse.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

struct Point {
  double phi = 1;          ///< actual fluid fraction of the geometry
  double sparse_bpf = 0;   ///< measured bytes per fluid update, sparse path
  double dense_bpf = 0;    ///< dense bytes per fluid update = dense / phi
  double model_bpf = 0;    ///< perfmodel sparse prediction
  double total_bytes = 0;  ///< total sparse bytes per step (scaling gate)
};

struct Series {
  std::string lattice;
  std::string pattern;
  double dense_unit_bpf = 0;  ///< dense kernel on the all-fluid box
  std::vector<Point> points;
  double measured_crossover = 1;
  double predicted_crossover = 1;
};

enum class Eng { kST, kAA, kMRP };

const char* name_of(Eng e) {
  switch (e) {
    case Eng::kST: return "ST";
    case Eng::kAA: return "AA";
    case Eng::kMRP: return "MR-P";
  }
  return "?";
}

Pattern pattern_of(Eng e) {
  // AA moves ST's bytes (single lattice, two accesses per value); the
  // perfmodel has no separate AA pattern.
  return e == Eng::kMRP ? Pattern::kMRP : Pattern::kST;
}

template <class L>
std::unique_ptr<Engine<L>> make_engine(Eng e, Geometry geo) {
  switch (e) {
    case Eng::kST:
      return std::make_unique<StEngine<L>>(std::move(geo), 0.8);
    case Eng::kAA:
      return std::make_unique<AaEngine<L>>(std::move(geo), 0.8);
    case Eng::kMRP:
      return std::make_unique<MrEngine<L>>(std::move(geo), 0.8,
                                           Regularization::kProjective,
                                           bench::default_mr_config(L::D));
  }
  return nullptr;
}

/// Bytes per fluid update over `steps` steps (warm-up excluded; steps stays
/// even so AA measures full even/odd cycles).
template <class L>
std::pair<double, double> measure_bpf(Engine<L>& eng, long long fluid,
                                      int steps) {
  eng.initialize(
      [](int, int, int) { return equilibrium_moments<L>(1.0, {}); });
  eng.step();
  eng.step();
  const auto before = eng.profiler()->total_traffic();
  eng.run(steps);
  const auto t = eng.profiler()->total_traffic() - before;
  const double total =
      static_cast<double>(t.bytes_read + t.bytes_written) / steps;
  return {total / static_cast<double>(fluid), total};
}

template <class L>
Series sweep(Eng e, int n0, int n1, int n2, int steps) {
  Series s;
  s.lattice = L::name();
  s.pattern = name_of(e);
  const auto lat = perf::lattice_info<L>();
  const Pattern p = pattern_of(e);

  {
    Geometry geo = bench::periodic_geo(n0, n1, n2);
    auto eng = make_engine<L>(e, geo);
    s.dense_unit_bpf =
        measure_bpf<L>(*eng, geo.box.cells(), steps).first;
  }

  // Solid fractions dialing phi across ~0.1 .. 1.0; the last entry is the
  // forced-sparse all-fluid box (phi = 1) where dense must win.
  const double solid_fracs[] = {0.9, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05, 0.0};
  for (double sf : solid_fracs) {
    Geometry geo = bench::periodic_geo(n0, n1, n2);
    if (sf > 0) {
      shapes::add_random_solids(geo, sf, /*seed=*/1234);
    } else {
      geo.force_sparse_storage(true);
    }
    const long long fluid = geo.fluid_count();
    if (fluid == 0) continue;
    const double phi =
        static_cast<double>(fluid) / static_cast<double>(geo.box.cells());
    auto eng = make_engine<L>(e, geo);
    const auto [bpf, total] = measure_bpf<L>(*eng, fluid, steps);
    Point pt;
    pt.phi = phi;
    pt.sparse_bpf = bpf;
    pt.dense_bpf = s.dense_unit_bpf / phi;
    pt.model_bpf = perf::sparse_traffic_model(p, lat, 8.0, phi).bpf_sparse;
    pt.total_bytes = total;
    s.points.push_back(pt);
  }

  // Measured crossover: the phi where (dense_bpf - sparse_bpf) changes sign,
  // linearly interpolated; 1.0 if the sparse path wins everywhere.
  s.measured_crossover = 1.0;
  for (std::size_t i = 0; i + 1 < s.points.size(); ++i) {
    const double a = s.points[i].dense_bpf - s.points[i].sparse_bpf;
    const double b = s.points[i + 1].dense_bpf - s.points[i + 1].sparse_bpf;
    if (a > 0 && b <= 0) {
      const double t = a / (a - b);
      s.measured_crossover =
          s.points[i].phi + t * (s.points[i + 1].phi - s.points[i].phi);
      break;
    }
  }
  s.predicted_crossover = perf::sparse_dense_crossover(p, lat, 8.0);
  return s;
}

bool write_json(const std::string& path, const std::vector<Series>& all) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"bench\": \"sparse_crossover\",\n  \"series\": [\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Series& s = all[i];
    f << "    {\"lattice\": \"" << s.lattice << "\", \"pattern\": \""
      << s.pattern << "\", \"dense_bpf\": " << s.dense_unit_bpf
      << ", \"measured_crossover\": " << s.measured_crossover
      << ", \"predicted_crossover\": " << s.predicted_crossover
      << ", \"points\": [\n";
    for (std::size_t j = 0; j < s.points.size(); ++j) {
      const Point& p = s.points[j];
      f << "      {\"phi\": " << p.phi << ", \"sparse_bpf\": " << p.sparse_bpf
        << ", \"dense_bpf\": " << p.dense_bpf
        << ", \"model_bpf\": " << p.model_bpf
        << ", \"total_bytes_per_step\": " << p.total_bytes << "}"
        << (j + 1 < s.points.size() ? "," : "") << "\n";
    }
    f << "    ]}" << (i + 1 < all.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return f.good();
}

bool gate(const Series& s) {
  bool ok = true;
  const Point* p1 = nullptr;  // forced-sparse all-fluid point
  for (const Point& p : s.points) {
    if (p.phi >= 0.999) p1 = &p;
    // Amortization gate at phi >= 0.3: value traffic dominates, so sparse
    // bytes per fluid update stay within 1.15x of the dense kernel's.
    if (p.phi >= 0.3 && p.sparse_bpf > 1.15 * s.dense_unit_bpf) {
      std::fprintf(stderr,
                   "error: %s/%s sparse bytes/FLUP %.1f exceeds 1.15x dense "
                   "%.1f at phi=%.2f\n",
                   s.lattice.c_str(), s.pattern.c_str(), p.sparse_bpf,
                   s.dense_unit_bpf, p.phi);
      ok = false;
    }
  }
  if (std::abs(s.measured_crossover - s.predicted_crossover) > 0.15) {
    std::fprintf(stderr,
                 "error: %s/%s crossover measured %.3f vs predicted %.3f\n",
                 s.lattice.c_str(), s.pattern.c_str(), s.measured_crossover,
                 s.predicted_crossover);
    ok = false;
  }
  // Scaling gate: total sparse bytes track the fluid fraction (within 30%
  // of proportionality against the all-fluid forced-sparse run).
  if (p1 != nullptr) {
    for (const Point& p : s.points) {
      if (p.phi < 0.25 || &p == p1) continue;
      const double ratio = p.total_bytes / p1->total_bytes;
      if (ratio > 1.3 * p.phi || ratio < 0.7 * p.phi) {
        std::fprintf(stderr,
                     "error: %s/%s total bytes ratio %.3f at phi=%.2f does "
                     "not scale with fluid fraction\n",
                     s.lattice.c_str(), s.pattern.c_str(), ratio, p.phi);
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  cli.reject_unknown({"n2d", "n3d", "out", "smoke", "steps"});
  const bool smoke = cli.get_bool("smoke", false);
  const int steps = cli.get_int("steps", smoke ? 4 : 8, 1);
  const int n2d = cli.get_int("n2d", smoke ? 48 : 96, 1);
  const int n3d = cli.get_int("n3d", smoke ? 16 : 32, 1);
  const std::string out =
      cli.get("out", perf::results_dir() + "/BENCH_sparse.json");

  perf::print_banner("Geometry", "sparse vs dense traffic crossover");

  std::vector<Series> all;
  for (Eng e : {Eng::kST, Eng::kAA, Eng::kMRP}) {
    all.push_back(sweep<D2Q9>(e, n2d, n2d, 1, steps));
    all.push_back(sweep<D3Q19>(e, n3d, n3d, n3d, steps));
  }

  AsciiTable t({"lattice", "pattern", "dense B/FLUP", "sparse B/FLUP @0.3",
                "crossover meas", "crossover pred"});
  for (const Series& s : all) {
    double at03 = 0;
    for (const Point& p : s.points) {
      if (std::abs(p.phi - 0.3) < 0.1) at03 = p.sparse_bpf;
    }
    t.row({s.lattice, s.pattern, AsciiTable::num(s.dense_unit_bpf, 1),
           AsciiTable::num(at03, 1), AsciiTable::num(s.measured_crossover, 3),
           AsciiTable::num(s.predicted_crossover, 3)});
  }
  t.print();

  bool ok = true;
  for (const Series& s : all) ok = gate(s) && ok;

  if (!write_json(out, all)) {
    std::fprintf(stderr, "error: could not write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  if (!ok) return 1;
  std::printf(
      "\nsolid tiles cost no bandwidth: sparse bytes track the fluid count,\n"
      "and the dense path only wins within ~1%% of an all-fluid box.\n");
  return 0;
}
