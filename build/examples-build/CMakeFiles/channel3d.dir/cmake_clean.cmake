file(REMOVE_RECURSE
  "../examples/channel3d"
  "../examples/channel3d.pdb"
  "CMakeFiles/channel3d.dir/channel3d.cpp.o"
  "CMakeFiles/channel3d.dir/channel3d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
