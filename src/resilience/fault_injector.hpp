// Deterministic, seeded fault injection for the gpusim execution model.
//
// Long production runs on real GPUs see ECC-scale soft errors in DRAM and
// transient kernel-launch failures; because gpusim models global memory and
// kernel launches exactly, both fault classes can be *injected* here
// deterministically and the whole solver stack proven to survive them.
//
// Three fault classes, each driven by its own counter-indexed RNG stream
// derived from one seed:
//
//   bit flips        one bit of one storage element of the target engine
//                    (GlobalArray::flip_bit via Engine::inject_storage_
//                    bitflip), drawn per *executed* step — a retried window
//                    draws fresh faults, exactly like real soft errors,
//                    which is what lets recovery converge;
//   launch failures  TransientLaunchError thrown from the launch fault hook
//                    before any block runs (installed on every Profiler the
//                    engine owns), drawn per launch;
//   halo corruption  a MultiDomainEngine ghost plane poisoned between the
//                    exchange and the next step, drawn per executed step.
//
// Every decision is a pure function of (seed, stream, counter): same seed →
// same injected sites/steps → same recovery trace, independent of thread
// count. Scripted bit flips (exact step/site/bit, fired once) complement the
// rate-driven streams for tests that need a specific fault at a specific
// place.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "engines/engine.hpp"
#include "gpusim/profiler.hpp"
#include "multidev/multi_domain.hpp"
#include "util/error.hpp"

namespace mlbm::resilience {

/// A bit flip at an exact logical step (fires once, window-independent).
struct ScriptedBitflip {
  int step = 0;
  std::uint64_t site = 0;
  unsigned bit = 0;
};

struct FaultConfig {
  std::uint64_t seed = 1;
  double bitflip_rate = 0;       ///< P(one storage bit flip) per executed step
  double launch_fail_rate = 0;   ///< P(transient failure) per kernel launch
  double halo_corrupt_rate = 0;  ///< P(one ghost-plane poison) per step
  /// Faults fire only while the logical step is in [step_begin, step_end).
  int step_begin = 0;
  int step_end = std::numeric_limits<int>::max();
  /// Bit used by rate-driven flips: -1 draws a uniform bit (the realistic
  /// soft-error model); >= 0 pins every flip to this bit. Pinning to a high
  /// exponent bit (e.g. 62) restricts injection to the *detectable* regime —
  /// what the survival bench wants, since real ECC absorbs low-order flips
  /// and an undetectable 1-ulp flip is physically benign anyway.
  int bitflip_bit = -1;
  std::vector<ScriptedBitflip> scripted;
};

enum class FaultKind {
  kBitFlip,
  kScriptedBitFlip,
  kLaunchFailure,
  kHaloCorruption,
};

inline const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kScriptedBitFlip: return "scripted-bit-flip";
    case FaultKind::kLaunchFailure: return "launch-failure";
    case FaultKind::kHaloCorruption: return "halo-corruption";
  }
  return "unknown";
}

struct FaultEvent {
  FaultKind kind = FaultKind::kBitFlip;
  int step = 0;               ///< logical step the fault landed at
  std::uint64_t site = 0;     ///< storage site (bit flips) or interface
  unsigned bit = 0;           ///< flipped bit (bit flips)
  std::string detail;         ///< kernel name / interface side
};

inline bool operator==(const FaultEvent& a, const FaultEvent& b) {
  return a.kind == b.kind && a.step == b.step && a.site == b.site &&
         a.bit == b.bit && a.detail == b.detail;
}
inline bool operator!=(const FaultEvent& a, const FaultEvent& b) {
  return !(a == b);
}

class FaultInjector final : public gpusim::LaunchFaultHook {
 public:
  explicit FaultInjector(FaultConfig cfg)
      : cfg_(std::move(cfg)), scripted_done_(cfg_.scripted.size(), false) {}

  [[nodiscard]] const FaultConfig& config() const { return cfg_; }

  /// Called by the runner before each engine step; advances the
  /// execution-indexed streams and pins the logical step faults report.
  void begin_step(int logical_step) {
    current_step_ = logical_step;
    ++step_execs_;
  }

  /// Launch fault hook (installed via `install`): throws
  /// TransientLaunchError when the per-launch draw fires inside the window.
  void on_launch(const gpusim::KernelRecord& rec) override;

  /// Applies this step's state faults (scripted + rate-driven bit flips,
  /// halo corruption for MultiDomain engines). Call after eng.step().
  template <class L>
  void apply_state_faults(Engine<L>& eng) {
    for (std::size_t i = 0; i < cfg_.scripted.size(); ++i) {
      if (!scripted_done_[i] && cfg_.scripted[i].step == current_step_) {
        scripted_done_[i] = true;
        eng.inject_storage_bitflip(cfg_.scripted[i].site,
                                   cfg_.scripted[i].bit);
        trace_.push_back({FaultKind::kScriptedBitFlip, current_step_,
                          cfg_.scripted[i].site, cfg_.scripted[i].bit, ""});
      }
    }
    if (!active()) return;
    if (cfg_.bitflip_rate > 0 && eng.fault_sites() > 0 &&
        uniform(kStreamBitflip, step_execs_) < cfg_.bitflip_rate) {
      const std::uint64_t site =
          draw(kStreamBitflipSite, step_execs_) % eng.fault_sites();
      const auto bit =
          cfg_.bitflip_bit >= 0
              ? static_cast<unsigned>(cfg_.bitflip_bit)
              : static_cast<unsigned>(draw(kStreamBitflipBit, step_execs_) %
                                      64u);
      eng.inject_storage_bitflip(site, bit);
      trace_.push_back({FaultKind::kBitFlip, current_step_, site, bit, ""});
    }
    if (cfg_.halo_corrupt_rate > 0) {
      if (auto* md = dynamic_cast<MultiDomainEngine<L>*>(&eng);
          md != nullptr && md->devices() > 1 &&
          uniform(kStreamHalo, step_execs_) < cfg_.halo_corrupt_rate) {
        corrupt_halo(*md);
      }
    }
  }

  /// Installs the launch fault hook on every profiler the engine owns (one
  /// for monolithic gpusim engines, one per slab for MultiDomain).
  template <class L>
  void install(Engine<L>& eng) {
    set_hook(eng, this);
  }
  template <class L>
  void uninstall(Engine<L>& eng) {
    set_hook(eng, nullptr);
  }

  [[nodiscard]] const std::vector<FaultEvent>& trace() const {
    return trace_;
  }
  /// Canonical one-line-per-fault rendering; two runs with the same seed and
  /// workload must produce equal strings (seed-reproducibility contract).
  [[nodiscard]] std::string trace_string() const;

  /// Inverse of trace_string: parses the canonical rendering back into the
  /// event sequence (sites, counters, bits exact), so a recorded trace can
  /// be replayed/diffed structurally. Throws ConfigError on malformed lines.
  [[nodiscard]] static std::vector<FaultEvent> parse_trace(
      const std::string& trace);

 private:
  static constexpr std::uint64_t kStreamLaunch = 1;
  static constexpr std::uint64_t kStreamBitflip = 2;
  static constexpr std::uint64_t kStreamBitflipSite = 3;
  static constexpr std::uint64_t kStreamBitflipBit = 4;
  static constexpr std::uint64_t kStreamHalo = 5;
  static constexpr std::uint64_t kStreamHaloSite = 6;

  [[nodiscard]] bool active() const {
    return current_step_ >= cfg_.step_begin && current_step_ < cfg_.step_end;
  }
  /// Counter-based deterministic draw: pure in (seed, stream, n).
  [[nodiscard]] std::uint64_t draw(std::uint64_t stream, std::uint64_t n) const;
  [[nodiscard]] double uniform(std::uint64_t stream, std::uint64_t n) const {
    return static_cast<double>(draw(stream, n) >> 11) * 0x1.0p-53;
  }

  /// Poisons one ghost plane of one interface (deterministic choice) with a
  /// non-finite-free but wildly out-of-bounds density, modelling a corrupted
  /// halo transfer that the sentinel must catch on the following steps.
  template <class L>
  void corrupt_halo(MultiDomainEngine<L>& md) {
    const auto ifaces = static_cast<std::uint64_t>(md.devices() - 1);
    const std::uint64_t pick = draw(kStreamHaloSite, step_execs_);
    const int iface = static_cast<int>(pick % ifaces);
    const bool left_side = (pick >> 32) % 2 == 0;
    // left_side: the right ghost plane of slab `iface`; otherwise the left
    // ghost plane of slab `iface + 1`.
    const int d = left_side ? iface : iface + 1;
    Engine<L>& slab_eng = md.device_engine(d);
    const Box& lb = slab_eng.geometry().box;
    const int lx = left_side ? lb.nx - 1 : 0;
    Moments<L> bad;
    bad.rho = real_t(1e4);
    for (int z = 0; z < lb.nz; ++z) {
      for (int y = 0; y < lb.ny; ++y) {
        slab_eng.impose(lx, y, z, bad);
      }
    }
    trace_.push_back({FaultKind::kHaloCorruption, current_step_,
                      static_cast<std::uint64_t>(iface), 0,
                      left_side ? "right-ghost" : "left-ghost"});
  }

  template <class L>
  void set_hook(Engine<L>& eng, gpusim::LaunchFaultHook* hook) {
    if (auto* md = dynamic_cast<MultiDomainEngine<L>*>(&eng)) {
      for (int d = 0; d < md->devices(); ++d) {
        if (gpusim::Profiler* p = md->device_engine(d).profiler()) {
          p->set_launch_fault_hook(hook);
        }
      }
      return;
    }
    if (gpusim::Profiler* p = eng.profiler()) p->set_launch_fault_hook(hook);
  }

  FaultConfig cfg_;
  int current_step_ = 0;
  std::uint64_t step_execs_ = 0;   ///< executed steps (retries included)
  std::uint64_t launch_draws_ = 0; ///< launch-hook consults
  std::vector<bool> scripted_done_;
  std::vector<FaultEvent> trace_;
};

}  // namespace mlbm::resilience
