// Performance model: Table 2 byte counts, Table 3 rooflines, the efficiency
// and size models behind Figures 2-3, and the op-counting scalar.
#include <gtest/gtest.h>

#include <cmath>

#include "perfmodel/efficiency.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/opcount.hpp"
#include "perfmodel/pattern.hpp"
#include "perfmodel/roofline.hpp"

namespace mlbm::perf {
namespace {

const LatticeInfo kD2Q9 = lattice_info<mlbm::D2Q9>();
const LatticeInfo kD3Q19 = lattice_info<mlbm::D3Q19>();

TEST(Table2, BytesPerFlupMatchPaper) {
  EXPECT_DOUBLE_EQ(bytes_per_flup(Pattern::kST, kD2Q9), 144);
  EXPECT_DOUBLE_EQ(bytes_per_flup(Pattern::kMRP, kD2Q9), 96);
  EXPECT_DOUBLE_EQ(bytes_per_flup(Pattern::kMRR, kD2Q9), 96);
  EXPECT_DOUBLE_EQ(bytes_per_flup(Pattern::kST, kD3Q19), 304);
  EXPECT_DOUBLE_EQ(bytes_per_flup(Pattern::kMRP, kD3Q19), 160);
  EXPECT_DOUBLE_EQ(bytes_per_flup(Pattern::kMRR, kD3Q19), 160);
}

TEST(Table3, RooflineMflupsMatchPaper) {
  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();
  EXPECT_NEAR(roofline_mflups(v100, 144), 6250, 1);
  EXPECT_NEAR(roofline_mflups(v100, 96), 9375, 1);
  EXPECT_NEAR(roofline_mflups(v100, 304), 2960, 1);
  EXPECT_NEAR(roofline_mflups(v100, 160), 5625, 1);
  EXPECT_NEAR(roofline_mflups(mi100, 144), 8534, 1);
  EXPECT_NEAR(roofline_mflups(mi100, 96), 12800, 1);
  EXPECT_NEAR(roofline_mflups(mi100, 304), 4043, 1);
  EXPECT_NEAR(roofline_mflups(mi100, 160), 7680, 1);
}

TEST(MemoryFootprint, Matches15MNodeNumbersFromSection41) {
  const long long n = 15'000'000;
  // "about 2GB for D2Q9 ... 4.2GB for D3Q19" for ST.
  EXPECT_NEAR(state_bytes(Pattern::kST, kD2Q9, n) / 1e9, 2.16, 0.01);
  EXPECT_NEAR(state_bytes(Pattern::kST, kD3Q19, n) / 1e9, 4.56, 0.01);
  // "1.3GB and 2.23GB required by the MR models".
  EXPECT_NEAR(state_bytes(Pattern::kMRP, kD2Q9, n) / 1e9, 1.44, 0.01);
  EXPECT_NEAR(state_bytes(Pattern::kMRP, kD3Q19, n) / 1e9, 2.40, 0.01);
  // Reductions: "about a 35% and 47% respectively".
  const double red2d = 1 - state_bytes(Pattern::kMRP, kD2Q9, n) /
                               state_bytes(Pattern::kST, kD2Q9, n);
  const double red3d = 1 - state_bytes(Pattern::kMRP, kD3Q19, n) /
                               state_bytes(Pattern::kST, kD3Q19, n);
  EXPECT_NEAR(red2d, 0.33, 0.03);
  EXPECT_NEAR(red3d, 0.47, 0.01);
  // Circular-shift storage halves the MR footprint again.
  EXPECT_NEAR(state_bytes(Pattern::kMRP, kD3Q19, n, true) /
                  state_bytes(Pattern::kMRP, kD3Q19, n),
              0.5, 1e-12);
}

TEST(OpCount, CountedScalarCountsArithmetic) {
  Counted::reset();
  Counted a = 2.0, b = 3.0;
  Counted c = a * b + a;  // 2 ops
  c -= b;                 // 1 op
  c /= a;                 // 1 op
  EXPECT_EQ(Counted::ops, 4u);
  EXPECT_DOUBLE_EQ(c.v, (2.0 * 3.0 + 2.0 - 3.0) / 2.0);
}

TEST(OpCount, FlopOrderingAcrossPatterns) {
  for (const auto& lat : {kD2Q9, kD3Q19}) {
    const bool is2d = lat.dim == 2;
    const double st = is2d ? flops_per_flup<mlbm::D2Q9>(Pattern::kST)
                           : flops_per_flup<mlbm::D3Q19>(Pattern::kST);
    const double mrp = is2d ? flops_per_flup<mlbm::D2Q9>(Pattern::kMRP)
                            : flops_per_flup<mlbm::D3Q19>(Pattern::kMRP);
    const double mrr = is2d ? flops_per_flup<mlbm::D2Q9>(Pattern::kMRR)
                            : flops_per_flup<mlbm::D3Q19>(Pattern::kMRR);
    EXPECT_GT(st, 50);
    EXPECT_GT(mrp, st * 0.5);
    // "the computational complexity of recursive regularization is somewhat
    // higher" — and substantially so in 3D.
    EXPECT_GT(mrr, 1.5 * mrp) << lat.name;
  }
}

TEST(Efficiency, StUsesStreamEfficiency) {
  const auto v100 = gpusim::DeviceSpec::v100();
  KernelCharacteristics kc{};
  kc.threads_per_block = 256;
  const auto e = bandwidth_efficiency(v100, Pattern::kST, kD2Q9, kc);
  EXPECT_DOUBLE_EQ(e.bandwidth_fraction, v100.stream_efficiency);
}

TEST(Efficiency, MrPaysPipelinePenaltyAndLowResidencyPenalty) {
  const auto v100 = gpusim::DeviceSpec::v100();
  KernelCharacteristics kc{};
  kc.threads_per_block = 128;
  kc.shared_bytes_per_block = 30 * 1024;  // 3 blocks/SM on V100
  const auto good = bandwidth_efficiency(v100, Pattern::kMRP, kD3Q19, kc);
  EXPECT_NEAR(good.bandwidth_fraction,
              v100.stream_efficiency * v100.mr_pipeline_efficiency_3d, 1e-12);
  EXPECT_GE(good.blocks_per_sm, 2);

  kc.shared_bytes_per_block = 70 * 1024;  // only 1 block/SM
  const auto bad = bandwidth_efficiency(v100, Pattern::kMRP, kD3Q19, kc);
  EXPECT_EQ(bad.blocks_per_sm, 1);
  EXPECT_NEAR(bad.bandwidth_fraction,
              good.bandwidth_fraction * kLowResidencyPenalty, 1e-12);
}

KernelCharacteristics typical_kc(Pattern p, const LatticeInfo& lat) {
  KernelCharacteristics kc;
  if (p == Pattern::kST) {
    kc.threads_per_block = 256;
    kc.flops_per_flup = lat.dim == 2 ? flops_per_flup<mlbm::D2Q9>(p)
                                     : flops_per_flup<mlbm::D3Q19>(p);
  } else {
    kc.threads_per_block = lat.dim == 2 ? 34 * 4 : 10 * 10;
    kc.shared_bytes_per_block =
        lat.dim == 2 ? 32u * 6 * 9 * 8 : 8u * 8 * 3 * 19 * 8;
    kc.flops_per_flup = lat.dim == 2 ? flops_per_flup<mlbm::D2Q9>(p)
                                     : flops_per_flup<mlbm::D3Q19>(p);
    kc.halo_read_fraction = lat.dim == 2 ? 2.0 / 32 : 36.0 / 16 - 1;
  }
  return kc;
}

// The headline reproduction: saturated MFLUPS and speedups, compared with
// the paper's Section 4/5 numbers.
TEST(Headline, SpeedupsMatchPaperConclusions) {
  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();

  auto mflups = [&](const gpusim::DeviceSpec& dev, Pattern p,
                    const LatticeInfo& lat) {
    return estimate_saturated(dev, p, lat, typical_kc(p, lat)).mflups;
  };

  // Paper: MR-P vs ST speedups 1.32x / 1.38x (D2Q9) and 1.46x / 1.14x
  // (D3Q19) on V100 / MI100.
  EXPECT_NEAR(mflups(v100, Pattern::kMRP, kD2Q9) /
                  mflups(v100, Pattern::kST, kD2Q9),
              1.32, 0.12);
  EXPECT_NEAR(mflups(mi100, Pattern::kMRP, kD2Q9) /
                  mflups(mi100, Pattern::kST, kD2Q9),
              1.38, 0.12);
  EXPECT_NEAR(mflups(v100, Pattern::kMRP, kD3Q19) /
                  mflups(v100, Pattern::kST, kD3Q19),
              1.46, 0.12);
  EXPECT_NEAR(mflups(mi100, Pattern::kMRP, kD3Q19) /
                  mflups(mi100, Pattern::kST, kD3Q19),
              1.14, 0.12);
}

TEST(Headline, SaturatedMflupsInPaperRange) {
  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();
  auto mflups = [&](const gpusim::DeviceSpec& dev, Pattern p,
                    const LatticeInfo& lat) {
    return estimate_saturated(dev, p, lat, typical_kc(p, lat)).mflups;
  };
  EXPECT_NEAR(mflups(v100, Pattern::kST, kD2Q9), 5300, 400);
  EXPECT_NEAR(mflups(v100, Pattern::kMRP, kD2Q9), 7000, 500);
  EXPECT_NEAR(mflups(mi100, Pattern::kST, kD2Q9), 6200, 450);
  EXPECT_NEAR(mflups(mi100, Pattern::kMRP, kD2Q9), 8600, 600);
  EXPECT_NEAR(mflups(v100, Pattern::kST, kD3Q19), 2600, 200);
  EXPECT_NEAR(mflups(v100, Pattern::kMRP, kD3Q19), 3800, 300);
  EXPECT_NEAR(mflups(mi100, Pattern::kST, kD3Q19), 2800, 250);
  EXPECT_NEAR(mflups(mi100, Pattern::kMRP, kD3Q19), 3200, 300);
}

TEST(Headline, RecursivePenaltyAppearsIn3DNotIn2D) {
  const auto v100 = gpusim::DeviceSpec::v100();
  auto mflups = [&](Pattern p, const LatticeInfo& lat) {
    return estimate_saturated(v100, p, lat, typical_kc(p, lat)).mflups;
  };
  // 2D: "MR-R is only marginally slower than MR-P".
  const double drop2d = mflups(Pattern::kMRP, kD2Q9) -
                        mflups(Pattern::kMRR, kD2Q9);
  EXPECT_GE(drop2d, 0);
  EXPECT_LT(drop2d, 0.1 * mflups(Pattern::kMRP, kD2Q9));
  // 3D: "MFLUPS drop by about 800 for the V100".
  const double drop3d = mflups(Pattern::kMRP, kD3Q19) -
                        mflups(Pattern::kMRR, kD3Q19);
  EXPECT_NEAR(drop3d, 800, 400);
}

TEST(SizeModel, UtilizationSaturatesAtTwoBlocksPerSm) {
  const auto v100 = gpusim::DeviceSpec::v100();  // 80 SMs
  // Bandwidth saturates at ~2 resident blocks per SM; beyond that, greedy
  // block scheduling keeps DRAM busy (no wave quantization).
  EXPECT_DOUBLE_EQ(size_utilization(v100, 80, 4), 0.5);
  EXPECT_DOUBLE_EQ(size_utilization(v100, 2 * 80, 4), 1.0);
  EXPECT_DOUBLE_EQ(size_utilization(v100, 80 * 4 + 1, 4), 1.0);
  EXPECT_DOUBLE_EQ(size_utilization(v100, 1 << 20, 4), 1.0);
  EXPECT_DOUBLE_EQ(size_utilization(v100, 40, 4), 0.25);
  EXPECT_EQ(size_utilization(v100, 0, 4), 0.0);
}

TEST(SizeModel, MflupsRampsUpAndSaturates) {
  const auto v100 = gpusim::DeviceSpec::v100();
  const auto kc = typical_kc(Pattern::kST, kD2Q9);
  const auto sat = estimate_saturated(v100, Pattern::kST, kD2Q9, kc);

  auto at = [&](long long n) {
    return mflups_at_size(v100, Pattern::kST, kD2Q9, kc, n * n,
                          (n * n + 255) / 256);
  };
  EXPECT_LT(at(128), 0.5 * sat.mflups);           // launch-latency bound
  EXPECT_GT(at(4096), 0.95 * sat.mflups);         // saturated
  EXPECT_LE(at(4096), sat.mflups + 1);
  EXPECT_GT(at(4096), at(256));
}

TEST(SizeModel, SeriesMatchesPointEvaluations) {
  const auto v100 = gpusim::DeviceSpec::v100();
  const auto kc = typical_kc(Pattern::kMRP, kD2Q9);
  const std::vector<long long> cells = {1024, 65536, 1 << 22};
  const std::vector<long long> blocks = {32, 2048, 1 << 17};
  const auto series =
      size_series(v100, Pattern::kMRP, kD2Q9, kc, cells, blocks);
  ASSERT_EQ(series.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(series[i].mflups,
                     mflups_at_size(v100, Pattern::kMRP, kD2Q9, kc, cells[i],
                                    blocks[i]));
  }
  EXPECT_THROW(size_series(v100, Pattern::kMRP, kD2Q9, kc, cells, {1}),
               std::invalid_argument);
}

TEST(Estimate, AchievedBandwidthConsistentWithMflups) {
  const auto v100 = gpusim::DeviceSpec::v100();
  const auto kc = typical_kc(Pattern::kMRP, kD3Q19);
  const auto e = estimate_saturated(v100, Pattern::kMRP, kD3Q19, kc);
  EXPECT_NEAR(e.achieved_bw_gbs, e.mflups * 160 / 1e3, 1e-9);
  EXPECT_LT(e.achieved_bw_gbs, v100.bandwidth_gbs);
  EXPECT_GT(e.roofline_mflups, e.mflups);
}

}  // namespace
}  // namespace mlbm::perf
