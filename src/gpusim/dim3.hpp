// CUDA/HIP-style 3-component launch dimensions.
#pragma once

namespace mlbm::gpusim {

struct Dim3 {
  int x = 1;
  int y = 1;
  int z = 1;

  [[nodiscard]] long long count() const {
    return static_cast<long long>(x) * y * z;
  }
  [[nodiscard]] bool operator==(const Dim3&) const = default;
};

}  // namespace mlbm::gpusim
