file(REMOVE_RECURSE
  "../examples/stability_map"
  "../examples/stability_map.pdb"
  "CMakeFiles/stability_map.dir/stability_map.cpp.o"
  "CMakeFiles/stability_map.dir/stability_map.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
