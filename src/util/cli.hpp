// Minimal command line parser for examples and benchmark harnesses.
//
// Supports `--key value` and `--key=value` forms plus boolean flags
// (`--flag`). Every key queried through has()/get*() is recorded as a valid
// option; after the caller has declared its full option set that way,
// reject_unknown() turns any leftover `--typo` into a typed ConfigError that
// lists the valid options.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace mlbm {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True when `--key` was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non `--`) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// All `--key`s seen, for usage validation.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Throws ConfigError if any parsed `--key` was never queried through
  /// has()/get*(): call it after the last option lookup, so the queried set
  /// IS the valid option set and the message can list it. `extra` names
  /// options that are valid but conditionally queried.
  void reject_unknown(const std::vector<std::string>& extra = {}) const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> queried_;
};

}  // namespace mlbm
