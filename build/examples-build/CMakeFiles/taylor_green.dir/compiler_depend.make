# Empty compiler generated dependencies file for taylor_green.
# This may be replaced when dependencies are built.
