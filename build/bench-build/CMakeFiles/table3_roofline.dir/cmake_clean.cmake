file(REMOVE_RECURSE
  "../bench/table3_roofline"
  "../bench/table3_roofline.pdb"
  "CMakeFiles/table3_roofline.dir/table3_roofline.cpp.o"
  "CMakeFiles/table3_roofline.dir/table3_roofline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
