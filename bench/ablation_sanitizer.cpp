// Sanitizer overhead ablation: host MFLUPS with the mlbm-sanitizer off
// (the null-hook production path) and on (full shadow tracking).
//
// Two numbers matter:
//  * off-mode MFLUPS must sit on top of the BENCH_wallclock baseline — the
//    sanitizer hook plumbing compiles to one hoisted null-pointer test per
//    launch/loop, so an un-instrumented run must not pay for the feature
//    (<2% is the acceptance gate; compare against BENCH_wallclock.json);
//  * on-mode overhead is reported, not gated — shadow stamps on every
//    global element and shared word are expected to cost a few x, exactly
//    like compute-sanitizer on real hardware.
//
// The sanitized runs double as a correctness gate: a clean configuration
// reporting any hazard fails the benchmark with a nonzero exit.
//
//   ./bench/ablation_sanitizer [--n 192] [--steps 24] [--n3d 32]
//                              [--steps3d 6] [--out results/...json]
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/sanitizer/sanitizer.hpp"
#include "common.hpp"
#include "perfmodel/report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace mlbm;

namespace {

struct Result {
  std::string pattern;
  std::string lattice;
  int n;
  int steps;
  bool sanitize;
  double seconds;
  double mflups;
  std::uint64_t hazards;
};

template <class L>
void measure(std::vector<Result>& out, const char* pattern, Geometry geo,
             int steps, bool& hazard_seen, const auto& make) {
  const Box& b = geo.box;
  for (const bool sanitize : {false, true}) {
    auto eng = make();
    analysis::Sanitizer san;
    if (sanitize) eng->set_sanitizer(&san);
    eng->initialize(
        [](int, int, int) { return equilibrium_moments<L>(1.0, {}); });
    eng->profiler()->counter().set_enabled(false);
    eng->step();  // warm-up excluded
    Timer t;
    eng->run(steps);
    const double s = t.elapsed_s();
    const std::uint64_t hazards = sanitize ? san.report().total() : 0;
    if (hazards != 0) {
      std::fprintf(stderr, "HAZARDS on clean config %s:\n%s", pattern,
                   san.report().to_string().c_str());
      hazard_seen = true;
    }
    if (sanitize) eng->set_sanitizer(nullptr);
    const double nodes =
        static_cast<double>(b.cells()) * static_cast<double>(steps);
    out.push_back({pattern, L::name(), b.nx, steps, sanitize, s,
                   nodes / 1e6 / s, hazards});
  }
}

bool write_json(const std::string& path, const std::vector<Result>& rows) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"benchmark\": \"ablation_sanitizer\",\n  \"unit\": \"MFLUPS "
       "(host)\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Result& r = rows[i];
    f << "    {\"pattern\": \"" << r.pattern << "\", \"lattice\": \""
      << r.lattice << "\", \"n\": " << r.n << ", \"steps\": " << r.steps
      << ", \"sanitize\": " << (r.sanitize ? "true" : "false")
      << ", \"seconds\": " << r.seconds << ", \"mflups\": " << r.mflups
      << ", \"hazards\": " << r.hazards << "}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  cli.reject_unknown({"n", "n3d", "out", "steps", "steps3d"});
  const int n = cli.get_int("n", 192, 1);
  const int steps = cli.get_int("steps", 24, 1);
  const int n3d = cli.get_int("n3d", 32, 1);
  const int steps3d = cli.get_int("steps3d", 6, 1);
  const std::string out = cli.get("out", "results/ablation_sanitizer.json");
  const real_t tau = 0.8;

  perf::print_banner("Sanitizer ablation",
                     "Host MFLUPS with the mlbm-sanitizer off/on");

  bool hazard_seen = false;
  std::vector<Result> rows;
  {
    const Geometry geo = bench::periodic_geo(n, n, 1);
    const MrConfig cfg = bench::default_mr_config(2);
    const MrConfig circ{cfg.tile_x, cfg.tile_y, cfg.tile_s,
                        MomentStorage::kCircularShift};
    measure<D2Q9>(rows, "ST", geo, steps, hazard_seen,
                  [&] { return std::make_unique<StEngine<D2Q9>>(geo, tau); });
    measure<D2Q9>(rows, "MR-P", geo, steps, hazard_seen, [&] {
      return std::make_unique<MrEngine<D2Q9>>(
          geo, tau, Regularization::kProjective, circ);
    });
    measure<D2Q9>(rows, "MR-R", geo, steps, hazard_seen, [&] {
      return std::make_unique<MrEngine<D2Q9>>(
          geo, tau, Regularization::kRecursive, circ);
    });
  }
  {
    const Geometry geo = bench::periodic_geo(n3d, n3d, n3d);
    const MrConfig cfg = bench::default_mr_config(3);
    const MrConfig circ{cfg.tile_x, cfg.tile_y, cfg.tile_s,
                        MomentStorage::kCircularShift};
    measure<D3Q19>(rows, "ST", geo, steps3d, hazard_seen, [&] {
      return std::make_unique<StEngine<D3Q19>>(geo, tau);
    });
    measure<D3Q19>(rows, "MR-P", geo, steps3d, hazard_seen, [&] {
      return std::make_unique<MrEngine<D3Q19>>(
          geo, tau, Regularization::kProjective, circ);
    });
  }

  AsciiTable t({"Pattern", "Lattice", "N", "Sanitize", "Seconds", "MFLUPS"});
  for (const Result& r : rows) {
    t.row({r.pattern, r.lattice, std::to_string(r.n), r.sanitize ? "on" : "off",
           AsciiTable::num(r.seconds, 3), AsciiTable::num(r.mflups, 2)});
  }
  t.print();

  std::printf("\nsanitizer overhead (time on / time off):\n");
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    std::printf("  %-5s %-6s %.2fx\n", rows[i].pattern.c_str(),
                rows[i].lattice.c_str(),
                rows[i + 1].seconds / rows[i].seconds);
  }
  std::printf(
      "\noff-mode rows are the null-hook production path; compare them to\n"
      "BENCH_wallclock.json (counters-off rows) for the <2%% plumbing gate.\n");

  if (!write_json(out, rows)) {
    std::fprintf(stderr, "\nerror: could not write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return hazard_seen ? 2 : 0;
}
