// Thread-block execution context.
//
// Kernels for the simulator are written in *block-synchronous phase* style:
// instead of emulating SIMT threads with real barriers, a kernel body runs
// per block and expresses each region between __syncthreads() calls as a
// `for_each_thread` loop. This preserves GPU semantics exactly — every
// thread completes phase N before any thread starts phase N+1 — while
// executing efficiently on the host. `sync()` records the barrier for the
// profiler (the paper attributes part of the MR pattern's bandwidth loss to
// synchronization cost, so we count them).
//
// Shared memory is a per-block bump arena whose high-water mark feeds the
// occupancy calculator; it persists for the lifetime of the kernel body, as
// on a real GPU.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/dim3.hpp"
#include "gpusim/sanitizer_hook.hpp"

namespace mlbm::gpusim {

class BlockCtx {
 public:
  BlockCtx() = default;
  BlockCtx(Dim3 block_idx, Dim3 block_dim)
      : block_idx_(block_idx), block_dim_(block_dim) {}

  [[nodiscard]] const Dim3& block_idx() const { return block_idx_; }
  [[nodiscard]] const Dim3& block_dim() const { return block_dim_; }

  /// Allocates `n` elements of block-shared memory, zero-initialized.
  /// Allocations persist for the lifetime of the kernel body.
  template <typename T>
  std::span<T> alloc_shared(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    auto& chunk = shared_.emplace_back(bytes, std::byte{0});
    shared_bytes_ += bytes;
    if (san_ != nullptr) {
      san_->shared_register(linear_block_, chunk.data(), n, sizeof(T));
    }
    return {reinterpret_cast<T*>(chunk.data()), n};
  }

  /// Executes `fn(tid)` for every thread id in the block (x fastest). The
  /// loop completing is the simulator's barrier. Debug builds assert the
  /// loop is not re-entered from inside `fn`: a nested thread loop would
  /// silently break the phase model (and the happens-before relation the
  /// sanitizer derives from it).
  template <class Fn>
  void for_each_thread(Fn&& fn) {
    assert(!in_thread_loop_ &&
           "BlockCtx::for_each_thread re-entered mid-phase (nested thread "
           "loop breaks the block-synchronous phase model)");
#ifndef NDEBUG
    in_thread_loop_ = true;
#endif
    for (int z = 0; z < block_dim_.z; ++z) {
      for (int y = 0; y < block_dim_.y; ++y) {
        for (int x = 0; x < block_dim_.x; ++x) {
          fn(Dim3{x, y, z});
        }
      }
    }
#ifndef NDEBUG
    in_thread_loop_ = false;
#endif
  }

  /// Records a __syncthreads() and opens a new barrier epoch, returning its
  /// id. The barrier itself is implicit in `for_each_thread` phase
  /// boundaries; the epoch id is what makes it observable — accesses to the
  /// same shared word from different threads are only ordered when their
  /// epochs differ (racecheck's happens-before).
  std::uint64_t sync() {
    ++sync_count_;
    ++epoch_;
    if (san_ != nullptr) san_->block_sync(linear_block_, epoch_);
    return epoch_;
  }

  /// Opens a new barrier epoch without counting a __syncthreads(). Called by
  /// `launch_level_synced` at each level boundary: the worksharing barrier
  /// between levels orders every block's phases just like an intra-block
  /// sync, but is not an instruction the kernel issues (the profiler's sync
  /// count must stay a faithful instruction count).
  void begin_phase() { ++epoch_; }

  /// Current barrier epoch (0 until the first sync/level boundary).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Binds a sanitizer to this block. `linear_block` is the linearized grid
  /// index used for attribution in hazard reports.
  void attach_sanitizer(SanitizerHook* san, long long linear_block) {
    san_ = san;
    linear_block_ = linear_block;
  }
  [[nodiscard]] SanitizerHook* sanitizer() const { return san_; }
  [[nodiscard]] long long linear_block() const { return linear_block_; }

  [[nodiscard]] std::size_t shared_bytes() const { return shared_bytes_; }
  [[nodiscard]] std::uint64_t sync_count() const { return sync_count_; }

 private:
  Dim3 block_idx_{};
  Dim3 block_dim_{};
  // Chunked so that spans handed to kernels stay valid across later
  // allocations (a std::vector<std::byte> arena would reallocate).
  std::vector<std::vector<std::byte>> shared_;
  std::size_t shared_bytes_ = 0;
  std::uint64_t sync_count_ = 0;
  std::uint64_t epoch_ = 0;
  SanitizerHook* san_ = nullptr;
  long long linear_block_ = 0;
#ifndef NDEBUG
  bool in_thread_loop_ = false;
#endif
};

}  // namespace mlbm::gpusim
