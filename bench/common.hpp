// Shared helpers for the benchmark harnesses: measuring kernel
// characteristics from the instrumented engines and assembling the paper's
// problem-size sweeps.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engines/factory.hpp"
#include "engines/mr_engine.hpp"
#include "engines/st_engine.hpp"
#include "perfmodel/efficiency.hpp"
#include "perfmodel/opcount.hpp"
#include "perfmodel/pattern.hpp"
#include "perfmodel/roofline.hpp"
#include "util/precision.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm::bench {

/// Default MR tile geometry per dimension (chosen so V100 and MI100 both fit
/// at least two blocks per SM; see ablation_tile for the sweep).
inline MrConfig default_mr_config(int dim) {
  return dim == 2 ? MrConfig{32, 1, 4} : MrConfig{8, 8, 1};
}

inline Geometry periodic_geo(int nx, int ny, int nz) {
  Geometry geo(Box{nx, ny, nz});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return geo;
}

/// Channel-type variant for multi-device rows: bounceback walls on x (the
/// decomposition axis must not be periodic), periodic cross axes.
inline Geometry wallx_geo(int nx, int ny, int nz) {
  Geometry geo(Box{nx, ny, nz});
  geo.bc.set_axis(0, FaceBC::kWall);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return geo;
}

struct MeasuredTraffic {
  double read_bytes_per_node = 0;
  double write_bytes_per_node = 0;
  double halo_read_fraction = 0;  ///< extra logical reads over the nominal M
};

/// Runs a few instrumented steps on a small periodic domain and returns the
/// per-node traffic. The measurement is exact (the engines' access pattern
/// is size-independent).
template <class L, class E>
MeasuredTraffic measure_traffic(E& eng, int steps = 3) {
  eng.initialize(
      [](int, int, int) { return equilibrium_moments<L>(1.0, {}); });
  eng.step();  // exclude warm-up
  const auto before = eng.profiler()->total_traffic();
  eng.run(steps);
  const auto t = eng.profiler()->total_traffic() - before;
  const double nodes =
      static_cast<double>(eng.geometry().box.cells()) * steps;
  MeasuredTraffic m;
  m.read_bytes_per_node = static_cast<double>(t.bytes_read) / nodes;
  m.write_bytes_per_node = static_cast<double>(t.bytes_written) / nodes;
  const double nominal = m.write_bytes_per_node;  // writes have no halo
  m.halo_read_fraction =
      nominal > 0 ? m.read_bytes_per_node / nominal - 1.0 : 0.0;
  return m;
}

/// Distinct global elements read in one step, per node — the DRAM read
/// traffic under an ideal cache (what nvvp/rocprof attribute to DRAM).
template <class L, class E>
double measure_unique_read_bytes_per_node(E& eng) {
  eng.initialize(
      [](int, int, int) { return equilibrium_moments<L>(1.0, {}); });
  eng.set_unique_read_tracking(true);
  eng.step();
  eng.clear_unique_reads();
  eng.step();
  const double bytes = static_cast<double>(eng.unique_read_bytes());
  eng.set_unique_read_tracking(false);
  return bytes / static_cast<double>(eng.geometry().box.cells());
}

/// Kernel characteristics of the ST pattern (measured flops, standard 1D
/// blocks).
template <class L>
perf::KernelCharacteristics st_characteristics() {
  perf::KernelCharacteristics kc;
  kc.threads_per_block = 256;
  kc.shared_bytes_per_block = 0;
  kc.flops_per_flup = perf::flops_per_flup<L>(perf::Pattern::kST);
  return kc;
}

/// Kernel characteristics of an MR pattern: block geometry and shared bytes
/// from the engine, flops from the op counter, halo fraction measured on a
/// small instrumented run.
template <class L>
perf::KernelCharacteristics mr_characteristics(perf::Pattern p,
                                               const MrConfig& cfg) {
  const Regularization reg = p == perf::Pattern::kMRR
                                 ? Regularization::kRecursive
                                 : Regularization::kProjective;
  const int n0 = cfg.tile_x * 2;
  const int n1 = (L::D == 3) ? cfg.tile_y * 2 : cfg.tile_s * 4 + 4;
  const int n2 = (L::D == 3) ? cfg.tile_s * 4 + 4 : 1;
  Geometry geo = periodic_geo(n0, n1, n2);
  MrEngine<L> eng(geo, 0.8, reg, cfg);
  const MeasuredTraffic t = measure_traffic<L>(eng);

  perf::KernelCharacteristics kc;
  kc.threads_per_block = eng.threads_per_block();
  kc.shared_bytes_per_block = eng.shared_bytes_per_block();
  kc.flops_per_flup = perf::flops_per_flup<L>(p);
  kc.halo_read_fraction = t.halo_read_fraction;
  return kc;
}

template <class L>
perf::KernelCharacteristics characteristics(perf::Pattern p) {
  return p == perf::Pattern::kST
             ? st_characteristics<L>()
             : mr_characteristics<L>(p, default_mr_config(L::D));
}

/// Characteristics under a storage-precision policy: identical kernel shape
/// and flop count (compute stays FP64), storage element width scaled.
template <class L>
perf::KernelCharacteristics characteristics(perf::Pattern p,
                                            StoragePrecision prec) {
  perf::KernelCharacteristics kc = characteristics<L>(p);
  kc.storage_elem_bytes = perf::elem_bytes_of(prec);
  return kc;
}

/// Builds the engine for a perfmodel Pattern at a runtime storage precision
/// (ST defaults: BGK pull, 256 threads; MR: the dimension's default tiles).
template <class L>
std::unique_ptr<Engine<L>> make_pattern_engine(
    perf::Pattern p, StoragePrecision prec, Geometry geo, real_t tau,
    MrConfig cfg = {}, ExecMode exec = default_exec_mode()) {
  switch (p) {
    case perf::Pattern::kST:
      return make_st_engine<L>(prec, std::move(geo), tau,
                               CollisionScheme::kBGK, 256, StreamMode::kPull,
                               exec);
    case perf::Pattern::kMRP:
      return make_mr_engine<L>(prec, std::move(geo), tau,
                               Regularization::kProjective, cfg, exec);
    case perf::Pattern::kMRR:
      return make_mr_engine<L>(prec, std::move(geo), tau,
                               Regularization::kRecursive, cfg, exec);
  }
  return nullptr;
}

/// Thread blocks launched per timestep at a given domain shape.
inline long long blocks_for(perf::Pattern p, int dim, long long nx,
                            long long ny, long long nz,
                            const perf::KernelCharacteristics& kc) {
  const long long cells = nx * ny * nz;
  if (p == perf::Pattern::kST) {
    return (cells + kc.threads_per_block - 1) / kc.threads_per_block;
  }
  const MrConfig cfg = default_mr_config(dim);
  const long long c0 = (nx + cfg.tile_x - 1) / cfg.tile_x;
  const long long c1 =
      dim == 3 ? (ny + cfg.tile_y - 1) / cfg.tile_y : 1;
  return c0 * c1;
}

/// The paper's problem-size sweeps (Figures 2 and 3).
inline std::vector<long long> sweep_sizes_2d() {
  return {256, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192};
}
inline std::vector<long long> sweep_sizes_3d() {
  return {32, 48, 64, 96, 128, 160, 192, 256, 320, 384, 448};
}

}  // namespace mlbm::bench
