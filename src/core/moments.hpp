// Moment-space representation of the lattice Boltzmann state.
//
// The moment representation stores, per lattice node, the M = 1 + D + D(D+1)/2
// values {rho, u, Pi} where Pi is the (symmetric) second-order Hermite moment
// of the distribution (Eq. 3 of the paper). Symmetric tensors of ranks 2..4
// are stored component-wise with an explicit index ordering plus multiplicity
// tables so that full tensor contractions can be written as flat loops.
#pragma once

#include <array>

#include "core/hermite.hpp"
#include "core/lattice.hpp"
#include "util/types.hpp"

namespace mlbm {

/// Index ordering of the independent components of a symmetric rank-2 tensor.
/// 2D: xx, xy, yy. 3D: xx, xy, xz, yy, yz, zz.
template <int D>
struct SymPairs;

template <>
struct SymPairs<2> {
  static constexpr int N = 3;
  static constexpr std::array<std::array<int, 2>, 3> idx = {{{0, 0}, {0, 1}, {1, 1}}};
  /// Number of equivalent permutations of each component in a full contraction.
  static constexpr std::array<int, 3> mult = {1, 2, 1};
  static constexpr int index(int a, int b) {
    // (0,0)->0, (0,1)/(1,0)->1, (1,1)->2
    return a + b;
  }
};

template <>
struct SymPairs<3> {
  static constexpr int N = 6;
  static constexpr std::array<std::array<int, 2>, 6> idx = {
      {{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}}};
  static constexpr std::array<int, 6> mult = {1, 2, 2, 1, 2, 1};
  static constexpr int index(int a, int b) {
    constexpr int map[3][3] = {{0, 1, 2}, {1, 3, 4}, {2, 4, 5}};
    return map[a][b];
  }
};

/// Independent components of a symmetric rank-3 tensor, with multiplicities.
template <int D>
struct SymTriples;

template <>
struct SymTriples<2> {
  static constexpr int N = 4;
  static constexpr std::array<std::array<int, 3>, 4> idx = {
      {{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {1, 1, 1}}};
  static constexpr std::array<int, 4> mult = {1, 3, 3, 1};
};

template <>
struct SymTriples<3> {
  static constexpr int N = 10;
  static constexpr std::array<std::array<int, 3>, 10> idx = {{{0, 0, 0},
                                                              {0, 0, 1},
                                                              {0, 0, 2},
                                                              {0, 1, 1},
                                                              {0, 1, 2},
                                                              {0, 2, 2},
                                                              {1, 1, 1},
                                                              {1, 1, 2},
                                                              {1, 2, 2},
                                                              {2, 2, 2}}};
  static constexpr std::array<int, 10> mult = {1, 3, 3, 3, 6, 3, 1, 3, 3, 1};
};

/// Independent components of a symmetric rank-4 tensor, with multiplicities.
template <int D>
struct SymQuads;

template <>
struct SymQuads<2> {
  static constexpr int N = 5;
  static constexpr std::array<std::array<int, 4>, 5> idx = {
      {{0, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 1}, {0, 1, 1, 1}, {1, 1, 1, 1}}};
  static constexpr std::array<int, 5> mult = {1, 4, 6, 4, 1};
};

template <>
struct SymQuads<3> {
  static constexpr int N = 15;
  static constexpr std::array<std::array<int, 4>, 15> idx = {{
      {0, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 0, 2}, {0, 0, 1, 1}, {0, 0, 1, 2},
      {0, 0, 2, 2}, {0, 1, 1, 1}, {0, 1, 1, 2}, {0, 1, 2, 2}, {0, 2, 2, 2},
      {1, 1, 1, 1}, {1, 1, 1, 2}, {1, 1, 2, 2}, {1, 2, 2, 2}, {2, 2, 2, 2},
  }};
  static constexpr std::array<int, 15> mult = {1, 4, 4, 6, 12, 6, 4, 12,
                                               12, 4, 1, 4, 6, 4, 1};
};

/// Per-node moment state {rho, u, Pi}. `pi` holds the *full* second-order
/// Hermite moment (equilibrium + non-equilibrium parts); the non-equilibrium
/// part is recovered as Pi_ab - rho u_a u_b.
template <class L>
struct Moments {
  static constexpr int D = L::D;
  static constexpr int NP = SymPairs<D>::N;

  real_t rho = 1;
  std::array<real_t, D> u{};
  std::array<real_t, NP> pi{};

  [[nodiscard]] real_t pi_neq(int p) const {
    const auto [a, b] = pair(p);
    return pi[static_cast<std::size_t>(p)] - rho * u[static_cast<std::size_t>(a)] * u[static_cast<std::size_t>(b)];
  }

  static constexpr std::array<int, 2> pair(int p) {
    return {SymPairs<D>::idx[static_cast<std::size_t>(p)][0],
            SymPairs<D>::idx[static_cast<std::size_t>(p)][1]};
  }
};

namespace detail {

/// Projection coefficients of the first three Hermite moments, baked into
/// compile-time tables transposed per component so the projection is a
/// handful of contiguous dot products (the compiler unrolls/vectorizes
/// them). This sits on the hot write-back path of every engine.
template <class L>
struct MomentProjection {
  static constexpr int NP = SymPairs<L::D>::N;
  real_t c[L::D][L::Q];    ///< H^(1): c_ia
  real_t h2[NP][L::Q];     ///< H^(2): c_ia c_ib - cs2 d_ab

  static constexpr MomentProjection make() {
    MomentProjection t{};
    for (int i = 0; i < L::Q; ++i) {
      for (int a = 0; a < L::D; ++a) {
        t.c[a][i] = hermite::h1<L>(i, a);
      }
      for (int p = 0; p < NP; ++p) {
        const int a = SymPairs<L::D>::idx[static_cast<std::size_t>(p)][0];
        const int b = SymPairs<L::D>::idx[static_cast<std::size_t>(p)][1];
        t.h2[p][i] = hermite::h2<L>(i, a, b);
      }
    }
    return t;
  }
};

template <class L>
inline constexpr MomentProjection<L> kMomentProjection =
    MomentProjection<L>::make();

}  // namespace detail

/// Projects a distribution onto its first three Hermite moments
/// (Eqs. 1-3 of the paper). Each component is the ascending-i sum of
/// coefficient x f_i, exactly as the naive nested loop computes it — the
/// table form only removes the per-call coefficient recomputation.
template <class L>
Moments<L> compute_moments(const real_t (&f)[L::Q]) {
  const auto& t = detail::kMomentProjection<L>;
  Moments<L> m;
  real_t rho = 0;
  for (int i = 0; i < L::Q; ++i) rho += f[i];
  m.rho = rho;
  for (int a = 0; a < L::D; ++a) {
    real_t acc = 0;
    for (int i = 0; i < L::Q; ++i) {
      acc += t.c[a][i] * f[i];
    }
    m.u[static_cast<std::size_t>(a)] = acc / rho;
  }
  for (int p = 0; p < Moments<L>::NP; ++p) {
    real_t acc = 0;
    for (int i = 0; i < L::Q; ++i) {
      acc += t.h2[p][i] * f[i];
    }
    m.pi[static_cast<std::size_t>(p)] = acc;
  }
  return m;
}

}  // namespace mlbm
