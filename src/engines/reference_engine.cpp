#include "engines/reference_engine.hpp"

#include <cstring>

#include "core/regularization.hpp"
#include "engines/streaming.hpp"

namespace mlbm {

template <class L>
ReferenceEngine<L>::ReferenceEngine(Geometry geo, real_t tau,
                                    CollisionScheme scheme)
    : Engine<L>(std::move(geo), tau), scheme_(scheme) {
  const auto n = static_cast<std::size_t>(this->geo_.box.cells()) *
                 static_cast<std::size_t>(L::Q);
  f_[0].assign(n, real_t(0));
  f_[1].assign(n, real_t(0));
}

template <class L>
const char* ReferenceEngine<L>::pattern_name() const {
  switch (scheme_) {
    case CollisionScheme::kBGK: return "REF-BGK";
    case CollisionScheme::kProjective: return "REF-P";
    case CollisionScheme::kRecursive: return "REF-R";
  }
  return "REF";
}

template <class L>
void ReferenceEngine<L>::initialize(const typename Engine<L>::InitFn& init) {
  const Box& b = this->geo_.box;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        impose(x, y, z, init(x, y, z));
      }
    }
  }
}

template <class L>
Moments<L> ReferenceEngine<L>::moments_at(int x, int y, int z) const {
  if (this->geo_.has_solids() && this->geo_.solid(x, y, z)) {
    return solid_moments<L>();
  }
  const index_t cell = this->geo_.box.idx(x, y, z);
  real_t f[L::Q];
  for (int i = 0; i < L::Q; ++i) {
    f[i] = f_[cur_][static_cast<std::size_t>(soa(i, cell))];
  }
  return compute_moments<L>(f);
}

template <class L>
void ReferenceEngine<L>::impose(int x, int y, int z, const Moments<L>& m) {
  // The stored state is pre-collision; the projective reconstruction is the
  // unique population whose first three Hermite moments equal `m` exactly
  // and whose higher-order non-equilibrium content vanishes. All engines use
  // this convention so imposed states produce identical trajectories.
  if (this->geo_.has_solids() && this->geo_.solid(x, y, z)) return;
  const index_t cell = this->geo_.box.idx(x, y, z);
  real_t pineq[Moments<L>::NP];
  for (int p = 0; p < Moments<L>::NP; ++p) pineq[p] = m.pi_neq(p);
  for (int i = 0; i < L::Q; ++i) {
    f_[cur_][static_cast<std::size_t>(soa(i, cell))] =
        reconstruct_projective<L>(i, m.rho, m.u.data(), pineq);
  }
}

template <class L>
std::size_t ReferenceEngine<L>::state_bytes() const {
  return (f_[0].size() + f_[1].size()) * sizeof(real_t);
}

template <class L>
real_t ReferenceEngine<L>::f_at(int i, int x, int y, int z) const {
  return f_[cur_][static_cast<std::size_t>(soa(i, this->geo_.box.idx(x, y, z)))];
}

template <class L>
void ReferenceEngine<L>::inject_storage_bitflip(std::uint64_t site,
                                                unsigned bit) {
  const std::uint64_t n0 = f_[0].size();
  const std::uint64_t s = site % fault_sites();
  real_t& v = s < n0 ? f_[0][static_cast<std::size_t>(s)]
                     : f_[1][static_cast<std::size_t>(s - n0)];
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  u ^= std::uint64_t{1} << (bit % 64u);
  std::memcpy(&v, &u, sizeof(u));
}

template <class L>
void ReferenceEngine<L>::do_step() {
  step_range(0, this->geo_.box.nx);
  cur_ = 1 - cur_;
}

template <class L>
void ReferenceEngine<L>::do_step_split(
    const FrontierSpec& fs,
    const typename Engine<L>::FrontierDoneFn& on_frontier) {
  const Box& b = this->geo_.box;
  // Source-partitioned push (see StEngine::do_step_split): target planes
  // [0, left) are final once sources [0, left] have scattered, and no
  // interior source writes them.
  const int fl = fs.left > 0 ? fs.left + 1 : 0;
  const int fr = fs.right > 0 ? fs.right + 1 : 0;
  if (fs.empty() || fl + fr >= b.nx) {
    step_range(0, b.nx);
    if (on_frontier) on_frontier();
  } else {
    step_range(0, fl);
    step_range(b.nx - fr, b.nx);
    if (on_frontier) on_frontier();
    step_range(fl, b.nx - fr);
  }
  cur_ = 1 - cur_;
}

template <class L>
void ReferenceEngine<L>::step_range(int rx0, int rx1) {
  const Box& b = this->geo_.box;
  const Geometry& geo = this->geo_;
  const std::vector<real_t>& src = f_[cur_];
  std::vector<real_t>& dst = f_[1 - cur_];
  const real_t inv_cs2 = real_t(1) / L::cs2;

  const index_t cells = b.cells();

  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = rx0; x < rx1; ++x) {
        // Solid nodes have no populations to collide or scatter; their links
        // are handled from the fluid side (resolve_stream bounces).
        if (geo.has_solids() && geo.solid(x, y, z)) continue;
        const index_t cell = b.idx(x, y, z);
        // Strided gather of the node's Q populations (soa slot i is
        // i*cells + cell): one base pointer, Q constant-stride reads.
        real_t f[L::Q];
        const real_t* fp = src.data() + cell;
        for (int i = 0; i < L::Q; ++i, fp += cells) {
          f[i] = *fp;
        }
        // Collide on read: stored state is pre-collision.
        const real_t rho_pre = [&] {
          real_t r = 0;
          for (int i = 0; i < L::Q; ++i) r += f[i];
          return r;
        }();
        collide<L>(scheme_, f, this->tau_);

        for (int i = 0; i < L::Q; ++i) {
          const StreamTarget t = resolve_stream<L>(geo, x, y, z, i);
          switch (t.kind) {
            case StreamTarget::Kind::kInterior:
              dst[static_cast<std::size_t>(soa(i, b.idx(t.x, t.y, t.z)))] = f[i];
              break;
            case StreamTarget::Kind::kBounce:
              dst[static_cast<std::size_t>(soa(L::opposite(i), cell))] =
                  f[i] - real_t(2) * L::w[static_cast<std::size_t>(i)] * rho_pre *
                             t.cu_wall * inv_cs2;
              break;
            case StreamTarget::Kind::kDropped:
              break;
          }
        }
      }
    }
  }
}

template class ReferenceEngine<D2Q9>;
template class ReferenceEngine<D3Q19>;
template class ReferenceEngine<D3Q27>;
template class ReferenceEngine<D3Q15>;

}  // namespace mlbm
