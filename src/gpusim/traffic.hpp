// DRAM traffic counters: the simulator's substitute for nvvp / rocprof.
//
// Every GlobalArray access funnels through a TrafficCounter, so the counter
// is the hottest piece of instrumentation in the repository. Counts are kept
// in per-thread, cache-line-sized shards: a device load/store is a plain
// increment on a line no other thread touches, instead of an atomic RMW that
// all OpenMP threads ping-pong on. Shards are aggregated lazily at
// `snapshot()`, which only runs between kernel launches (outside parallel
// regions), where the fork/join already provides the needed happens-before.
//
// Shard fields are relaxed atomics accessed with load/store pairs — on every
// mainstream architecture these compile to the same plain moves as raw
// integers (no lock prefix), while keeping the counter free of data races
// even if a pathological thread oversubscription ever aliased two threads
// onto one shard (worst case: a lost update, never UB).
//
// Engines expose per-step deltas, from which bytes-per-fluid-lattice-update
// (Table 2) and achieved-bandwidth style figures are derived. Batched span
// accesses count their full byte size but a single transaction, mirroring a
// coalesced vector access; Table 2 and every CSV consumer use the byte
// counts, which are bit-identical between scalar and batched access paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mlbm::gpusim {

struct TrafficSnapshot {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  [[nodiscard]] std::uint64_t bytes_total() const {
    return bytes_read + bytes_written;
  }

  TrafficSnapshot operator-(const TrafficSnapshot& o) const {
    return {bytes_read - o.bytes_read, bytes_written - o.bytes_written,
            reads - o.reads, writes - o.writes};
  }
  TrafficSnapshot& operator+=(const TrafficSnapshot& o) {
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    reads += o.reads;
    writes += o.writes;
    return *this;
  }
};

class TrafficCounter {
 public:
  TrafficCounter() : shards_(shard_count()) {}
  explicit TrafficCounter(bool enabled)
      : shards_(shard_count()), enabled_(enabled) {}

  /// Counts `bytes` of read traffic in `transactions` device transactions
  /// (1 for a scalar load; a batched span is one wide transaction).
  void add_read(std::uint64_t bytes, std::uint64_t transactions = 1) {
    if (!enabled_) return;
    Shard& s = shards_[shard_index()];
    relaxed_add(s.bytes_read, bytes);
    relaxed_add(s.reads, transactions);
  }
  void add_write(std::uint64_t bytes, std::uint64_t transactions = 1) {
    if (!enabled_) return;
    Shard& s = shards_[shard_index()];
    relaxed_add(s.bytes_written, bytes);
    relaxed_add(s.writes, transactions);
  }

  /// Disable to speed up long physics-validation runs where traffic is not
  /// being measured.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Aggregates all shards. Call between launches (outside parallel
  /// regions): the join barrier makes every shard's pending counts visible.
  [[nodiscard]] TrafficSnapshot snapshot() const {
    TrafficSnapshot s;
    for (const Shard& sh : shards_) {
      s.bytes_read += sh.bytes_read.load(std::memory_order_relaxed);
      s.bytes_written += sh.bytes_written.load(std::memory_order_relaxed);
      s.reads += sh.reads.load(std::memory_order_relaxed);
      s.writes += sh.writes.load(std::memory_order_relaxed);
    }
    return s;
  }

  void reset() {
    for (Shard& sh : shards_) {
      sh.bytes_read.store(0, std::memory_order_relaxed);
      sh.bytes_written.store(0, std::memory_order_relaxed);
      sh.reads.store(0, std::memory_order_relaxed);
      sh.writes.store(0, std::memory_order_relaxed);
    }
  }

  /// Restores the counter to a previously taken snapshot (checkpoint
  /// rollback): all shards reset, the snapshot's totals land in shard 0, so
  /// a replayed window re-counts exactly what the aborted window counted.
  /// Call between launches, like snapshot().
  void restore(const TrafficSnapshot& s) {
    reset();
    Shard& sh = shards_[0];
    sh.bytes_read.store(s.bytes_read, std::memory_order_relaxed);
    sh.bytes_written.store(s.bytes_written, std::memory_order_relaxed);
    sh.reads.store(s.reads, std::memory_order_relaxed);
    sh.writes.store(s.writes, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> bytes_read{0};
    std::atomic<std::uint64_t> bytes_written{0};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
  };

  /// Uncontended increment: load/store instead of fetch_add, so the shard
  /// owner pays a plain add, not a locked RMW.
  static void relaxed_add(std::atomic<std::uint64_t>& a, std::uint64_t v) {
    a.store(a.load(std::memory_order_relaxed) + v,
            std::memory_order_relaxed);
  }

  static std::size_t shard_count() {
#ifdef _OPENMP
    const int n = omp_get_max_threads();
    return n > 0 ? static_cast<std::size_t>(n) : 1;
#else
    return 1;
#endif
  }
  [[nodiscard]] std::size_t shard_index() const {
#ifdef _OPENMP
    const auto i = static_cast<std::size_t>(omp_get_thread_num());
    return i < shards_.size() ? i : i % shards_.size();
#else
    return 0;
#endif
  }

  std::vector<Shard> shards_;
  bool enabled_ = true;
};

/// Shared always-disabled counter. A GlobalArray that was never attached to
/// a profiler (default construction, or allocate with a null counter) routes
/// its counted accesses here instead of dereferencing null: the access is
/// still legal, it just counts nothing. Engines always attach a real
/// counter; this is a guard rail for utility/test code.
inline TrafficCounter& null_counter() {
  static TrafficCounter c(/*enabled=*/false);
  return c;
}

}  // namespace mlbm::gpusim
