#include "gpusim/profiler.hpp"

// Profiler is header-only; this TU anchors it in the library.
