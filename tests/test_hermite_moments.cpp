// Hermite tensor identities and moment projection round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/equilibrium.hpp"
#include "core/hermite.hpp"
#include "core/lattice.hpp"
#include "core/moments.hpp"

namespace mlbm {
namespace {

template <class L>
class HermiteTest : public ::testing::Test {};

using Lattices = ::testing::Types<D2Q9, D3Q19, D3Q15, D3Q27>;
TYPED_TEST_SUITE(HermiteTest, Lattices);

TYPED_TEST(HermiteTest, H0IsOne) {
  using L = TypeParam;
  for (int i = 0; i < L::Q; ++i) {
    EXPECT_EQ(hermite::h0<L>(i), 1.0);
  }
}

TYPED_TEST(HermiteTest, H2IsTraceCorrected) {
  using L = TypeParam;
  // sum_i w_i H2_ab = 0 (orthogonality of H2 against H0).
  for (int a = 0; a < L::D; ++a) {
    for (int b = 0; b < L::D; ++b) {
      real_t s = 0;
      for (int i = 0; i < L::Q; ++i) {
        s += L::w[static_cast<std::size_t>(i)] * hermite::h2<L>(i, a, b);
      }
      EXPECT_NEAR(s, 0.0, 1e-15);
    }
  }
}

TYPED_TEST(HermiteTest, H2OrthogonalityAgainstItself) {
  using L = TypeParam;
  // sum_i w_i H2_ab H2_gd = cs4 (d_ag d_bd + d_ad d_bg): the identity that
  // makes the projective reconstruction lossless.
  const real_t cs4 = L::cs2 * L::cs2;
  for (int a = 0; a < L::D; ++a) {
    for (int b = 0; b < L::D; ++b) {
      for (int g = 0; g < L::D; ++g) {
        for (int d = 0; d < L::D; ++d) {
          real_t s = 0;
          for (int i = 0; i < L::Q; ++i) {
            s += L::w[static_cast<std::size_t>(i)] * hermite::h2<L>(i, a, b) *
                 hermite::h2<L>(i, g, d);
          }
          const real_t expect =
              cs4 * (hermite::delta(a, g) * hermite::delta(b, d) +
                     hermite::delta(a, d) * hermite::delta(b, g));
          EXPECT_NEAR(s, expect, 1e-14);
        }
      }
    }
  }
}

TYPED_TEST(HermiteTest, H3AxisComponentsVanishOnSingleSpeedLattices) {
  using L = TypeParam;
  // c^3 = c for c in {-1,0,1}, so H3_aaa = c(1 - 3 cs2) = 0 at cs2 = 1/3.
  for (int i = 0; i < L::Q; ++i) {
    for (int a = 0; a < L::D; ++a) {
      EXPECT_NEAR(hermite::h3<L>(i, a, a, a), 0.0, 1e-15);
    }
  }
}

TEST(HermiteSpecial, H3xyzVanishesOnD3Q19ButNotD3Q27) {
  real_t max19 = 0, max27 = 0;
  for (int i = 0; i < D3Q19::Q; ++i) {
    max19 = std::max(max19, std::abs(hermite::h3<D3Q19>(i, 0, 1, 2)));
  }
  for (int i = 0; i < D3Q27::Q; ++i) {
    max27 = std::max(max27, std::abs(hermite::h3<D3Q27>(i, 0, 1, 2)));
  }
  EXPECT_EQ(max19, 0.0);  // no corner velocities on D3Q19
  EXPECT_GT(max27, 0.5);  // corners make it representable on D3Q27
}

TYPED_TEST(HermiteTest, SymmetricIndexTablesCoverFullTensors) {
  using L = TypeParam;
  constexpr int D = L::D;
  // Multiplicities must sum to the full tensor sizes D^2, D^3, D^4.
  int s2 = 0, s3 = 0, s4 = 0;
  for (int p = 0; p < SymPairs<D>::N; ++p) s2 += SymPairs<D>::mult[static_cast<std::size_t>(p)];
  for (int t = 0; t < SymTriples<D>::N; ++t) s3 += SymTriples<D>::mult[static_cast<std::size_t>(t)];
  for (int q = 0; q < SymQuads<D>::N; ++q) s4 += SymQuads<D>::mult[static_cast<std::size_t>(q)];
  EXPECT_EQ(s2, D * D);
  EXPECT_EQ(s3, D * D * D);
  EXPECT_EQ(s4, D * D * D * D);
}

TYPED_TEST(HermiteTest, PairIndexIsSymmetricAndConsistent) {
  using L = TypeParam;
  using P = SymPairs<L::D>;
  for (int p = 0; p < P::N; ++p) {
    const int a = P::idx[static_cast<std::size_t>(p)][0];
    const int b = P::idx[static_cast<std::size_t>(p)][1];
    EXPECT_EQ(P::index(a, b), p);
    EXPECT_EQ(P::index(b, a), p);
  }
}

TYPED_TEST(HermiteTest, EquilibriumMomentsAreExact) {
  using L = TypeParam;
  real_t u[3] = {0.04, -0.02, 0.03};
  const real_t rho = 1.05;
  real_t f[L::Q];
  for (int i = 0; i < L::Q; ++i) {
    f[i] = equilibrium<L>(i, rho, u);
  }
  const Moments<L> m = compute_moments<L>(f);
  EXPECT_NEAR(m.rho, rho, 1e-14);
  for (int a = 0; a < L::D; ++a) {
    EXPECT_NEAR(m.u[static_cast<std::size_t>(a)], u[a], 1e-14);
  }
  // Pi moment of the 2nd-order equilibrium is exactly rho u u (4th-order
  // quadrature exactness).
  for (int p = 0; p < Moments<L>::NP; ++p) {
    const auto [a, b] = Moments<L>::pair(p);
    EXPECT_NEAR(m.pi[static_cast<std::size_t>(p)], rho * u[a] * u[b], 1e-14);
  }
}

TYPED_TEST(HermiteTest, EquilibriumSumsToRho) {
  using L = TypeParam;
  real_t u[3] = {-0.03, 0.05, 0.01};
  real_t sum = 0;
  for (int i = 0; i < L::Q; ++i) sum += equilibrium<L>(i, 1.2, u);
  EXPECT_NEAR(sum, 1.2, 1e-14);
}

TYPED_TEST(HermiteTest, ComputeMomentsOfRandomPopulations) {
  using L = TypeParam;
  std::mt19937 rng(42);
  std::uniform_real_distribution<real_t> dist(0.01, 0.1);
  for (int trial = 0; trial < 10; ++trial) {
    real_t f[L::Q];
    real_t rho = 0;
    for (int i = 0; i < L::Q; ++i) {
      f[i] = dist(rng);
      rho += f[i];
    }
    const Moments<L> m = compute_moments<L>(f);
    EXPECT_NEAR(m.rho, rho, 1e-14);
    // Direct second moment check against the definition.
    for (int p = 0; p < Moments<L>::NP; ++p) {
      const auto [a, b] = Moments<L>::pair(p);
      real_t pi = 0;
      for (int i = 0; i < L::Q; ++i) {
        pi += hermite::h2<L>(i, a, b) * f[i];
      }
      EXPECT_NEAR(m.pi[static_cast<std::size_t>(p)], pi, 1e-14);
    }
  }
}

}  // namespace
}  // namespace mlbm
