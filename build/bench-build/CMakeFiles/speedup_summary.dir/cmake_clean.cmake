file(REMOVE_RECURSE
  "../bench/speedup_summary"
  "../bench/speedup_summary.pdb"
  "CMakeFiles/speedup_summary.dir/speedup_summary.cpp.o"
  "CMakeFiles/speedup_summary.dir/speedup_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
