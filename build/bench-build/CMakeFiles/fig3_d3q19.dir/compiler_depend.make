# Empty compiler generated dependencies file for fig3_d3q19.
# This may be replaced when dependencies are built.
