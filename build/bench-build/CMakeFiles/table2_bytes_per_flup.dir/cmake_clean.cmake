file(REMOVE_RECURSE
  "../bench/table2_bytes_per_flup"
  "../bench/table2_bytes_per_flup.pdb"
  "CMakeFiles/table2_bytes_per_flup.dir/table2_bytes_per_flup.cpp.o"
  "CMakeFiles/table2_bytes_per_flup.dir/table2_bytes_per_flup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bytes_per_flup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
