// Per-kernel statistics collection: the simulator's nvvp / rocprof.
//
// Each engine owns a Profiler; all its GlobalArrays share the profiler's
// TrafficCounter. `launch` (see launch.hpp) records per-kernel aggregates:
// number of launches, thread/block geometry, shared memory per block,
// barrier counts and the DRAM traffic attributable to the kernel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gpusim/dim3.hpp"
#include "gpusim/traffic.hpp"

namespace mlbm::gpusim {

struct KernelRecord {
  std::string name;
  Dim3 grid{};
  Dim3 block{};
  std::size_t shared_bytes_per_block = 0;
  std::uint64_t launches = 0;
  std::uint64_t syncs = 0;  ///< total barriers across all blocks and launches
  TrafficSnapshot traffic;
};

class Profiler {
 public:
  TrafficCounter& counter() { return counter_; }
  const TrafficCounter& counter() const { return counter_; }

  /// Finds or creates the record for `name`. References are stable for the
  /// profiler's lifetime (node-based map), so engines cache the returned
  /// reference once and skip the string lookup on every subsequent launch.
  KernelRecord& record(const std::string& name) {
    KernelRecord& r = records_[name];
    if (r.name.empty()) r.name = name;
    return r;
  }

  [[nodiscard]] std::vector<KernelRecord> all_records() const {
    std::vector<KernelRecord> out;
    out.reserve(records_.size());
    for (const auto& [_, r] : records_) out.push_back(r);
    return out;
  }

  [[nodiscard]] TrafficSnapshot total_traffic() const {
    return counter_.snapshot();
  }

  void reset() {
    counter_.reset();
    records_.clear();  // invalidates references cached via record()
  }

 private:
  TrafficCounter counter_;
  std::map<std::string, KernelRecord> records_;
};

}  // namespace mlbm::gpusim
