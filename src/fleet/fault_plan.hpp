// Device-level fault plan: the fleet-scale extension of
// resilience/fault_injector.
//
// Where FaultInjector perturbs one engine's state and launches, the
// FleetFaultPlan perturbs the *pool*: whole-device loss, straggler slowdown
// windows (a device's modeled step time multiplied for a few ticks),
// transient launch-failure bursts (a window during which every launch on the
// device draws against a high failure rate, wired into the per-job
// FaultInjector by the scheduler), and link degradation (checkpoint
// migrations transfer slower).
//
// Determinism uses the same counter-keyed construction as FaultInjector:
// every draw is a pure function of (seed, stream, tick, device), so a replay
// with the same seed reproduces the identical fault sequence regardless of
// scheduler iteration order — the chaos bench's seed-reproducibility gate
// rests on this. Scripted faults fire unconditionally at their tick; rate
// faults are drawn per (tick, device). Rate-driven device losses spare the
// last alive device so a rate-only plan can never make the fleet undrainable
// (scripted losses are exempt: killing the whole pool deliberately is a
// scenario the tests exercise).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/device_pool.hpp"

namespace mlbm::fleet {

enum class FleetFaultKind {
  kDeviceLoss,
  kStragglerBegin,
  kStragglerEnd,
  kLaunchBurstBegin,
  kLaunchBurstEnd,
  kLinkDegradeBegin,
  kLinkDegradeEnd,
};

const char* to_string(FleetFaultKind k);

/// A fault pinned to an exact tick (deterministic test/bench scenarios).
struct ScriptedFleetFault {
  long tick = 0;
  FleetFaultKind kind = FleetFaultKind::kDeviceLoss;
  int device = 0;  ///< ignored for link faults
  /// Slowdown (straggler), failure probability (burst), or transfer-time
  /// multiplier (link); unused for device loss.
  double factor = 0;
  long duration_ticks = 1;  ///< window length; unused for device loss
};

struct FleetFaultConfig {
  std::uint64_t seed = 1;

  /// Per-(tick, device) probability of permanent device loss.
  double device_loss_rate = 0;
  /// Rate-driven losses stop once this many devices have died (scripted
  /// losses are not counted against it).
  int max_device_losses = 1;

  double straggler_rate = 0;
  double straggler_factor = 4.0;
  long straggler_ticks = 4;

  double launch_burst_rate = 0;
  double burst_fail_rate = 0.5;
  long burst_ticks = 2;

  /// Per-tick probability of a link-degradation window (pool-wide).
  double link_fault_rate = 0;
  double link_degrade_factor = 4.0;
  long link_fault_ticks = 4;

  /// Rate faults fire only in [tick_begin, tick_end); tick_end < 0 = open.
  long tick_begin = 0;
  long tick_end = -1;

  std::vector<ScriptedFleetFault> scripted;
};

struct FleetFaultEvent {
  long tick = 0;
  FleetFaultKind kind = FleetFaultKind::kDeviceLoss;
  int device = -1;  ///< -1 for pool-wide (link) events
  double factor = 0;
};

class FleetFaultPlan {
 public:
  explicit FleetFaultPlan(FleetFaultConfig config);

  [[nodiscard]] const FleetFaultConfig& config() const { return config_; }

  /// Advances the plan to `tick`: expires straggler/burst/link windows,
  /// draws and applies this tick's faults onto the pool, records the trace.
  /// Returns the ids of devices lost this tick (the scheduler migrates their
  /// jobs). Ticks must be fed in increasing order.
  std::vector<int> begin_tick(long tick, DevicePool& pool);

  /// Current checkpoint-transfer time multiplier (1 when the link is clean).
  [[nodiscard]] double link_factor() const { return link_factor_; }

  [[nodiscard]] const std::vector<FleetFaultEvent>& events() const {
    return events_;
  }

  /// Canonical one-line-per-event rendering; identical across same-seed
  /// replays (the reproducibility gate compares these).
  [[nodiscard]] std::string trace_string() const;

 private:
  [[nodiscard]] double uniform(std::uint64_t stream, std::uint64_t n) const;
  void record(long tick, FleetFaultKind kind, int device, double factor);

  FleetFaultConfig config_;
  int rate_losses_ = 0;
  double link_factor_ = 1.0;
  long link_until_tick_ = -1;
  std::vector<FleetFaultEvent> events_;
};

}  // namespace mlbm::fleet
