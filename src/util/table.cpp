#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "util/error.hpp"

namespace mlbm {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw ConfigError("AsciiTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  auto line = [&](char fill, char join) {
    std::string s = "+";
    for (auto w : widths) {
      s += std::string(w + 2, fill);
      s += join;
    }
    s.back() = '+';
    return s + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& r) {
    std::string s = "|";
    for (std::size_t c = 0; c < r.size(); ++c) {
      s += " " + r[c] + std::string(widths[c] - r[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out = line('-', '+');
  out += render_row(header_);
  out += line('=', '+');
  for (const auto& r : rows_) out += render_row(r);
  out += line('-', '+');
  return out;
}

void AsciiTable::print() const { std::cout << render(); }

std::string AsciiTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace mlbm
