// Regularized reconstruction of distributions from moments.
//
// This file implements the two regularization schemes of the paper:
//
//  * Projective regularization (Latt & Chopard 2006; Section 2.2): the
//    non-equilibrium part of the distribution is replaced by its projection
//    onto the second-order Hermite moment Pi^neq. The reconstructed
//    population (Eq. 11) is
//
//      f_i = w_i ( rho + H1.(rho u)/cs2 + H2:Pi / (2 cs4) ),   Pi = rho u u + Pi^neq
//
//  * Recursive regularization (Malaspinas 2015; Section 2.3): non-equilibrium
//    parts of the third- and fourth-order Hermite moments are reconstructed
//    recursively from {u, Pi^neq}:
//
//      a3^neq_abg  = u_a Pn_bg + u_b Pn_ag + u_g Pn_ab
//      a4^neq_abgd = u_a u_b Pn_gd + u_a u_g Pn_bd + u_a u_d Pn_bg
//                  + u_b u_g Pn_ad + u_b u_d Pn_ag + u_g u_d Pn_ab
//
//    and the expansion (Eq. 14) is extended with the standard Hermite
//    normalization 1/(n! cs^(2n)):
//
//      f_i = w_i ( rho + H1.(rho u)/cs2 + H2:a2/(2 cs4)
//                + H3:a3/(6 cs6) + H4:a4/(24 cs8) ),
//      a2 = rho u u + Pi^neq, a3 = rho uuu + a3^neq, a4 = rho uuuu + a4^neq.
//
// On standard lattices, Hermite tensors that are not representable by the
// velocity set vanish identically (e.g. H3_xxx = c_x^3 - 3 cs2 c_x = 0 for
// c_x in {-1,0,1} and H3_xyz = 0 on D3Q19), so the full symmetric sums below
// automatically restrict to the representable basis.
//
// Both reconstructions take the *post-collision* non-equilibrium moment: the
// BGK relaxation Pi^neq -> (1 - 1/tau) Pi^neq commutes with the recursions,
// so MR kernels collide in moment space first (Eq. 10) and reconstruct after.
#pragma once

#include "core/hermite.hpp"
#include "core/lattice.hpp"
#include "core/moments.hpp"
#include "util/types.hpp"

namespace mlbm {

/// Which regularization scheme an engine or kernel applies.
enum class Regularization {
  kProjective,  ///< MR-P: second-order Hermite basis only (Eq. 11).
  kRecursive,   ///< MR-R: recursive third/fourth-order reconstruction (Eq. 14).
};

inline const char* to_string(Regularization r) {
  return r == Regularization::kProjective ? "projective" : "recursive";
}

/// Projectively regularized population (Eq. 11).
/// `pineq` is the (post-collision) non-equilibrium second moment, indexed by
/// SymPairs<L::D>.
template <class L, class T = real_t>
T reconstruct_projective(int i, T rho, const T* u, const T* pineq) {
  using P = SymPairs<L::D>;
  const real_t inv_cs2 = real_t(1) / L::cs2;

  T first{};
  for (int a = 0; a < L::D; ++a) {
    first += hermite::h1<L>(i, a) * rho * u[a];
  }
  T second{};
  for (int p = 0; p < P::N; ++p) {
    const int a = P::idx[static_cast<std::size_t>(p)][0];
    const int b = P::idx[static_cast<std::size_t>(p)][1];
    const T pi_ab = rho * u[a] * u[b] + pineq[p];
    second += static_cast<real_t>(P::mult[static_cast<std::size_t>(p)]) *
              hermite::h2<L>(i, a, b) * pi_ab;
  }
  return L::w[static_cast<std::size_t>(i)] *
         (rho + inv_cs2 * first + real_t(0.5) * inv_cs2 * inv_cs2 * second);
}

/// Recursive non-equilibrium third-order moment a3^neq_abg from {u, Pi^neq}.
template <class L, class T = real_t>
T a3_neq(const T* u, const T* pineq, int a, int b, int g) {
  using P = SymPairs<L::D>;
  return u[a] * pineq[P::index(b, g)] + u[b] * pineq[P::index(a, g)] +
         u[g] * pineq[P::index(a, b)];
}

/// Recursive non-equilibrium fourth-order moment a4^neq_abgd from {u, Pi^neq}.
template <class L, class T = real_t>
T a4_neq(const T* u, const T* pineq, int a, int b, int g, int d) {
  using P = SymPairs<L::D>;
  return u[a] * u[b] * pineq[P::index(g, d)] +
         u[a] * u[g] * pineq[P::index(b, d)] +
         u[a] * u[d] * pineq[P::index(b, g)] +
         u[b] * u[g] * pineq[P::index(a, d)] +
         u[b] * u[d] * pineq[P::index(a, g)] +
         u[g] * u[d] * pineq[P::index(a, b)];
}

/// Recursively regularized population (Eq. 14).
template <class L, class T = real_t>
T reconstruct_recursive(int i, T rho, const T* u, const T* pineq) {
  using T3 = SymTriples<L::D>;
  using T4 = SymQuads<L::D>;
  const real_t inv_cs2 = real_t(1) / L::cs2;

  T f = reconstruct_projective<L, T>(i, rho, u, pineq);

  T third{};
  for (int t = 0; t < T3::N; ++t) {
    const int a = T3::idx[static_cast<std::size_t>(t)][0];
    const int b = T3::idx[static_cast<std::size_t>(t)][1];
    const int g = T3::idx[static_cast<std::size_t>(t)][2];
    const real_t h3 = hermite::h3<L>(i, a, b, g);
    if (h3 == real_t(0)) continue;  // unrepresentable on this lattice
    const T a3 = rho * u[a] * u[b] * u[g] + a3_neq<L, T>(u, pineq, a, b, g);
    third += static_cast<real_t>(T3::mult[static_cast<std::size_t>(t)]) * h3 * a3;
  }

  T fourth{};
  for (int q = 0; q < T4::N; ++q) {
    const int a = T4::idx[static_cast<std::size_t>(q)][0];
    const int b = T4::idx[static_cast<std::size_t>(q)][1];
    const int g = T4::idx[static_cast<std::size_t>(q)][2];
    const int d = T4::idx[static_cast<std::size_t>(q)][3];
    const real_t h4 = hermite::h4<L>(i, a, b, g, d);
    if (h4 == real_t(0)) continue;
    const T a4 =
        rho * u[a] * u[b] * u[g] * u[d] + a4_neq<L, T>(u, pineq, a, b, g, d);
    fourth += static_cast<real_t>(T4::mult[static_cast<std::size_t>(q)]) * h4 * a4;
  }

  const real_t inv_cs6 = inv_cs2 * inv_cs2 * inv_cs2;
  const real_t inv_cs8 = inv_cs6 * inv_cs2;
  f += L::w[static_cast<std::size_t>(i)] *
       (third * (inv_cs6 / real_t(6)) + fourth * (inv_cs8 / real_t(24)));
  return f;
}

/// Dispatches between the two reconstructions at runtime. Hot kernels use the
/// compile-time variants directly; this overload serves engines configured by
/// a runtime enum.
template <class L, class T = real_t>
T reconstruct(Regularization scheme, int i, T rho, const T* u,
              const T* pineq) {
  return scheme == Regularization::kProjective
             ? reconstruct_projective<L, T>(i, rho, u, pineq)
             : reconstruct_recursive<L, T>(i, rho, u, pineq);
}

/// Compile-time sparsity of the third/fourth-order Hermite tensors on a
/// lattice. On standard velocity sets most components vanish identically for
/// every direction (e.g. H3_aaa = c_a(c_a^2 - 3cs2) = 0 for c_a in {-1,0,1}
/// with cs2 = 1/3, and H3_xyz = 0 on D3Q19) — those components need neither
/// a Hermite-moment register nor a multiply in any reconstruction. `map3` /
/// `map4` list, in ascending component order, the components used by at
/// least one direction; the packed a3/a4 registers of the hot kernels hold
/// only these.
template <class L>
struct HermiteSparsity {
  static constexpr int NT3 = SymTriples<L::D>::N;
  static constexpr int NT4 = SymQuads<L::D>::N;

  static constexpr bool used3(int t) {
    for (int i = 0; i < L::Q; ++i) {
      if (hermite::h3<L>(i, SymTriples<L::D>::idx[static_cast<std::size_t>(t)][0],
                         SymTriples<L::D>::idx[static_cast<std::size_t>(t)][1],
                         SymTriples<L::D>::idx[static_cast<std::size_t>(t)][2]) !=
          real_t(0)) {
        return true;
      }
    }
    return false;
  }
  static constexpr bool used4(int q) {
    for (int i = 0; i < L::Q; ++i) {
      if (hermite::h4<L>(i, SymQuads<L::D>::idx[static_cast<std::size_t>(q)][0],
                         SymQuads<L::D>::idx[static_cast<std::size_t>(q)][1],
                         SymQuads<L::D>::idx[static_cast<std::size_t>(q)][2],
                         SymQuads<L::D>::idx[static_cast<std::size_t>(q)][3]) !=
          real_t(0)) {
        return true;
      }
    }
    return false;
  }

  static constexpr int count3() {
    int n = 0;
    for (int t = 0; t < NT3; ++t) n += used3(t) ? 1 : 0;
    return n;
  }
  static constexpr int count4() {
    int n = 0;
    for (int q = 0; q < NT4; ++q) n += used4(q) ? 1 : 0;
    return n;
  }

  /// Number of representable (anywhere-nonzero) components.
  static constexpr int NU3 = count3();
  static constexpr int NU4 = count4();

  /// Packed slot -> full symmetric-component index, ascending.
  static constexpr std::array<int, static_cast<std::size_t>(NU3)> make_map3() {
    std::array<int, static_cast<std::size_t>(NU3)> m{};
    int n = 0;
    for (int t = 0; t < NT3; ++t) {
      if (used3(t)) m[static_cast<std::size_t>(n++)] = t;
    }
    return m;
  }
  static constexpr std::array<int, static_cast<std::size_t>(NU4)> make_map4() {
    std::array<int, static_cast<std::size_t>(NU4)> m{};
    int n = 0;
    for (int q = 0; q < NT4; ++q) {
      if (used4(q)) m[static_cast<std::size_t>(n++)] = q;
    }
    return m;
  }
  static constexpr std::array<int, static_cast<std::size_t>(NU3)> map3 =
      make_map3();
  static constexpr std::array<int, static_cast<std::size_t>(NU4)> map4 =
      make_map4();
};

/// Compile-time coefficient tables for the regularized reconstructions:
/// all lattice constants (w_i, Hermite tensors, multiplicities, 1/(n! cs^2n))
/// folded into one coefficient per (direction, moment component). The
/// third/fourth-order tables are stored *sparse*: per direction, a packed
/// list of (coefficient, packed-register index) covering only the entries
/// whose Hermite coefficient is nonzero, so the per-direction dot products
/// of the recursive scheme never multiply by a compile-time zero.
template <class L>
struct ReconstructTables {
  static constexpr int NP = SymPairs<L::D>::N;
  static constexpr int NT3 = SymTriples<L::D>::N;
  static constexpr int NT4 = SymQuads<L::D>::N;
  using HS = HermiteSparsity<L>;
  static constexpr int NU3 = HS::NU3;
  static constexpr int NU4 = HS::NU4;

  std::array<real_t, L::Q> k0{};
  std::array<std::array<real_t, L::D>, L::Q> k1{};
  std::array<std::array<real_t, NP>, L::Q> k2{};
  /// Sparse third/fourth-order coefficients: for direction i, entries
  /// [0, nnz3[i]) of s3c/s3i are the nonzero H3 coefficients and the packed
  /// a3-register slot each multiplies (ascending component order, so the
  /// accumulation order matches the dense loop's nonzero terms exactly).
  std::array<int, L::Q> nnz3{};
  std::array<int, L::Q> nnz4{};
  std::array<std::array<real_t, static_cast<std::size_t>(NU3)>, L::Q> s3c{};
  std::array<std::array<int, static_cast<std::size_t>(NU3)>, L::Q> s3i{};
  std::array<std::array<real_t, static_cast<std::size_t>(NU4)>, L::Q> s4c{};
  std::array<std::array<int, static_cast<std::size_t>(NU4)>, L::Q> s4i{};

  static constexpr ReconstructTables make() {
    ReconstructTables t{};
    const real_t inv_cs2 = real_t(1) / L::cs2;
    const real_t inv_cs4 = inv_cs2 * inv_cs2;
    const real_t inv_cs6 = inv_cs4 * inv_cs2;
    const real_t inv_cs8 = inv_cs6 * inv_cs2;
    for (int i = 0; i < L::Q; ++i) {
      const real_t w = L::w[static_cast<std::size_t>(i)];
      const auto si = static_cast<std::size_t>(i);
      t.k0[si] = w;
      for (int a = 0; a < L::D; ++a) {
        t.k1[si][static_cast<std::size_t>(a)] = w * inv_cs2 * hermite::h1<L>(i, a);
      }
      for (int p = 0; p < NP; ++p) {
        const auto sp = static_cast<std::size_t>(p);
        t.k2[si][sp] = w * real_t(0.5) * inv_cs4 *
                       static_cast<real_t>(SymPairs<L::D>::mult[sp]) *
                       hermite::h2<L>(i, SymPairs<L::D>::idx[sp][0],
                                      SymPairs<L::D>::idx[sp][1]);
      }
      for (int u = 0; u < NU3; ++u) {
        const auto ss = static_cast<std::size_t>(HS::map3[static_cast<std::size_t>(u)]);
        const real_t h3 = hermite::h3<L>(i, SymTriples<L::D>::idx[ss][0],
                                         SymTriples<L::D>::idx[ss][1],
                                         SymTriples<L::D>::idx[ss][2]);
        if (h3 == real_t(0)) continue;
        const auto k = static_cast<std::size_t>(t.nnz3[si]++);
        t.s3c[si][k] = w * inv_cs6 / real_t(6) *
                       static_cast<real_t>(SymTriples<L::D>::mult[ss]) * h3;
        t.s3i[si][k] = u;
      }
      for (int u = 0; u < NU4; ++u) {
        const auto sq = static_cast<std::size_t>(HS::map4[static_cast<std::size_t>(u)]);
        const real_t h4 = hermite::h4<L>(i, SymQuads<L::D>::idx[sq][0],
                                         SymQuads<L::D>::idx[sq][1],
                                         SymQuads<L::D>::idx[sq][2],
                                         SymQuads<L::D>::idx[sq][3]);
        if (h4 == real_t(0)) continue;
        const auto k = static_cast<std::size_t>(t.nnz4[si]++);
        t.s4c[si][k] = w * inv_cs8 / real_t(24) *
                       static_cast<real_t>(SymQuads<L::D>::mult[sq]) * h4;
        t.s4i[si][k] = u;
      }
    }
    return t;
  }

  static const ReconstructTables& get() {
    static constexpr ReconstructTables t = make();
    return t;
  }
};

/// Per-node reconstruction kernel: builds the Hermite moments a2 (and the
/// packed representable a3/a4 for the recursive scheme) once per node, then
/// evaluates each population as a short sparse dot product against the
/// compile-time tables. The scheme is a template parameter: the projective
/// instantiation carries no third/fourth-order state or code at all, and the
/// recursive one has no per-direction branch — this is what the hot engine
/// loops use after hoisting the runtime-enum dispatch out of the per-node
/// and per-population loops.
template <class L, Regularization R>
class Reconstructor {
 public:
  static constexpr int NP = SymPairs<L::D>::N;
  using HS = HermiteSparsity<L>;

  Reconstructor(real_t rho, const real_t* u, const real_t* pineq)
      : rho_(rho) {
    for (int a = 0; a < L::D; ++a) {
      rho_u_[a] = rho * u[a];
    }
    for (int p = 0; p < NP; ++p) {
      const int a = SymPairs<L::D>::idx[static_cast<std::size_t>(p)][0];
      const int b = SymPairs<L::D>::idx[static_cast<std::size_t>(p)][1];
      a2_[p] = rho * u[a] * u[b] + pineq[p];
    }
    if constexpr (R == Regularization::kRecursive) {
      using T3 = SymTriples<L::D>;
      using T4 = SymQuads<L::D>;
      for (int t = 0; t < HS::NU3; ++t) {
        const auto st = static_cast<std::size_t>(HS::map3[static_cast<std::size_t>(t)]);
        const int a = T3::idx[st][0];
        const int b = T3::idx[st][1];
        const int g = T3::idx[st][2];
        a3_[t] = rho * u[a] * u[b] * u[g] + a3_neq<L>(u, pineq, a, b, g);
      }
      for (int q = 0; q < HS::NU4; ++q) {
        const auto sq = static_cast<std::size_t>(HS::map4[static_cast<std::size_t>(q)]);
        const int a = T4::idx[sq][0];
        const int b = T4::idx[sq][1];
        const int g = T4::idx[sq][2];
        const int d = T4::idx[sq][3];
        a4_[q] =
            rho * u[a] * u[b] * u[g] * u[d] + a4_neq<L>(u, pineq, a, b, g, d);
      }
    }
  }

  [[nodiscard]] real_t operator()(int i) const {
    const auto& t = ReconstructTables<L>::get();
    const auto si = static_cast<std::size_t>(i);
    real_t acc = t.k0[si] * rho_;
    for (int a = 0; a < L::D; ++a) {
      acc += t.k1[si][static_cast<std::size_t>(a)] * rho_u_[a];
    }
    for (int p = 0; p < NP; ++p) {
      acc += t.k2[si][static_cast<std::size_t>(p)] * a2_[p];
    }
    if constexpr (R == Regularization::kRecursive) {
      for (int s = 0; s < t.nnz3[si]; ++s) {
        acc += t.s3c[si][static_cast<std::size_t>(s)] *
               a3_[t.s3i[si][static_cast<std::size_t>(s)]];
      }
      for (int q = 0; q < t.nnz4[si]; ++q) {
        acc += t.s4c[si][static_cast<std::size_t>(q)] *
               a4_[t.s4i[si][static_cast<std::size_t>(q)]];
      }
    }
    return acc;
  }

 private:
  /// Empty-member trick: projective instantiations carry no a3/a4 storage.
  struct Empty {};
  template <int N>
  using HigherRegs =
      std::conditional_t<R == Regularization::kRecursive, real_t[N], Empty>;

  real_t rho_;
  real_t rho_u_[L::D] = {};
  real_t a2_[NP] = {};
  [[no_unique_address]] HigherRegs<HS::NU3 == 0 ? 1 : HS::NU3> a3_{};
  [[no_unique_address]] HigherRegs<HS::NU4 == 0 ? 1 : HS::NU4> a4_{};
};

/// Hoists a runtime Regularization value into a compile-time template
/// argument: calls `fn(std::integral_constant<Regularization, R>{})` for the
/// matching scheme. Engines use this once per kernel launch (or per node on
/// cold paths) so every per-population loop runs a scheme-templated kernel.
template <class Fn>
decltype(auto) dispatch_regularization(Regularization scheme, Fn&& fn) {
  return scheme == Regularization::kProjective
             ? fn(std::integral_constant<Regularization,
                                         Regularization::kProjective>{})
             : fn(std::integral_constant<Regularization,
                                         Regularization::kRecursive>{});
}

}  // namespace mlbm
