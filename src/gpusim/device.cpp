#include "gpusim/device.hpp"

namespace mlbm::gpusim {

DeviceSpec DeviceSpec::v100() {
  DeviceSpec d;
  d.name = "NVIDIA V100";
  d.compiler = "nvcc v11.0.221";
  d.frequency_mhz = 1455;
  d.cores = 5120;
  d.sm_count = 80;
  d.shared_mem_per_sm_bytes = 96 * 1024;
  d.shared_mem_per_block_bytes = 96 * 1024;
  d.l1_kb_per_sm = 96;
  d.l2_kb = 6144;
  d.memory_gb = 16;
  d.bandwidth_gbs = 900;
  d.max_threads_per_block = 1024;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 32;
  d.warp_size = 32;
  d.fp64_peak_gflops = 7800;
  // Calibration (DESIGN.md §2): V100 sustains ~87% of peak DRAM bandwidth on
  // the fused LBM streaming kernel; shared-memory pipelined kernels lose a
  // further 14% (2D) / 22% (3D) to synchronization, halo pressure and
  // block-shape restrictions.
  d.stream_efficiency = 0.87;
  d.mr_pipeline_efficiency_2d = 0.86;
  d.mr_pipeline_efficiency_3d = 0.78;
  d.flop_efficiency = 0.50;
  return d;
}

DeviceSpec DeviceSpec::mi100() {
  DeviceSpec d;
  d.name = "AMD MI100";
  d.compiler = "hipcc 4.2";
  d.frequency_mhz = 1502;
  d.cores = 7680;
  d.sm_count = 120;
  d.shared_mem_per_sm_bytes = 64 * 1024;
  d.shared_mem_per_block_bytes = 64 * 1024;
  d.l1_kb_per_sm = 16;
  d.l2_kb = 8192;
  d.memory_gb = 32;
  d.bandwidth_gbs = 1228.86;
  d.max_threads_per_block = 1024;
  d.max_threads_per_sm = 2560;  // 40 wavefronts x 64 lanes per CU
  d.max_blocks_per_sm = 40;
  d.warp_size = 64;
  d.fp64_peak_gflops = 11500;
  // Calibration (DESIGN.md §2): CDNA1 reaches a lower fraction of its higher
  // peak bandwidth on streaming kernels. LDS-pipelined kernels do very well
  // in 2D but pay a steep penalty for 3D thread blocks and two-axis halos
  // (the paper's MR-P D3Q19 results on this part are its weakest point).
  d.stream_efficiency = 0.71;
  d.mr_pipeline_efficiency_2d = 0.95;
  d.mr_pipeline_efficiency_3d = 0.59;
  d.flop_efficiency = 0.30;
  return d;
}

}  // namespace mlbm::gpusim
