// Roofline performance model (Section 4.1 of the paper).
//
// LBM propagation patterns are bandwidth bound, so the roofline reduces to
// Eq. 15:  MFLUPS_max = B_BW / (1e6 * B/F), with the bytes per fluid lattice
// update B/F of Table 2: 2 Q storage elements for the distribution
// representation (read Q + write Q) and 2 M for the moment representation
// (read M + write M; halo re-reads are served by L2, see DESIGN.md).
//
// The element width is a parameter (`elem_bytes`): the paper's tables use
// FP64 storage (8 bytes, the default), and the storage-precision policy
// halves both traffic and footprint with FP32 storage (4 bytes). Compute
// precision does not appear in the byte model at all — only what crosses
// DRAM counts.
#pragma once

#include "gpusim/device.hpp"
#include "perfmodel/pattern.hpp"
#include "util/precision.hpp"

namespace mlbm::perf {

/// Bytes of DRAM traffic per fluid lattice update (Table 2). `elem_bytes` is
/// the width of one stored value (8 = FP64 storage, 4 = FP32 storage).
double bytes_per_flup(Pattern p, const LatticeInfo& lat,
                      double elem_bytes = 8.0);

/// Bytes per fluid lattice update of the AA (in-place) pattern: identical to
/// ST's 2 Q elements — AA halves the *footprint*, not the traffic — so it is
/// kept out of the Pattern enum and modeled by this helper (used by the
/// static-analysis three-way traffic gate).
double aa_bytes_per_flup(const LatticeInfo& lat, double elem_bytes = 8.0);

/// Bytes per fluid lattice update of the Esoteric-Pull (in-place) pattern:
/// Q scalar gathers plus Q scalar scatters per step — the same 2 Q elements
/// as ST and AA (EP halves the *footprint*, not the traffic) — so EP too is
/// kept out of the Pattern enum and modeled by this helper (used by the
/// static-analysis three-way traffic gate, and pinned against the contract
/// derivation in test_perfmodel).
double ep_bytes_per_flup(const LatticeInfo& lat, double elem_bytes = 8.0);

/// Eq. 15: ideal MFLUPS at full peak bandwidth.
double roofline_mflups(const gpusim::DeviceSpec& dev, double bytes_per_flup);

/// Simulation-state footprint in bytes for `cells` fluid nodes (the paper's
/// 15M-node memory comparison). `single_buffer_mr` selects the
/// circular-shift storage policy for the MR patterns; `elem_bytes` the
/// storage element width.
double state_bytes(Pattern p, const LatticeInfo& lat, long long cells,
                   bool single_buffer_mr = false, double elem_bytes = 8.0);

/// Storage element width of a precision, as a double for the byte model.
inline double elem_bytes_of(StoragePrecision prec) {
  return static_cast<double>(bytes_of(prec));
}

}  // namespace mlbm::perf
