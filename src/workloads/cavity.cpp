#include "workloads/cavity.hpp"

namespace mlbm {

template <class L>
LidDrivenCavity<L> LidDrivenCavity<L>::create(int n, real_t u_lid) {
  Box box{n, n, L::D == 2 ? 1 : n};
  Geometry geo(box);
  geo.bc.set_axis(0, FaceBC::kWall);
  geo.bc.set_axis(1, FaceBC::kWall);
  geo.bc.set_axis(2, L::D == 3 ? FaceBC::kWall : FaceBC::kPeriodic);
  const int lid_axis = (L::D == 2) ? 1 : 2;
  geo.bc.face[static_cast<std::size_t>(lid_axis)][1].u_wall = {u_lid, 0, 0};
  return {std::move(geo), u_lid};
}

template <class L>
void LidDrivenCavity<L>::attach(Engine<L>& eng) const {
  eng.initialize([](int, int, int) {
    return equilibrium_moments<L>(real_t(1), {});
  });
}

template <class L>
real_t LidDrivenCavity<L>::total_mass(const Engine<L>& eng) {
  const Box& b = eng.geometry().box;
  real_t m = 0;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        m += eng.moments_at(x, y, z).rho;
      }
    }
  }
  return m;
}

template struct LidDrivenCavity<D2Q9>;
template struct LidDrivenCavity<D3Q19>;
template struct LidDrivenCavity<D3Q27>;
template struct LidDrivenCavity<D3Q15>;

}  // namespace mlbm
