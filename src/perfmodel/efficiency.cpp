#include "perfmodel/efficiency.hpp"

namespace mlbm::perf {

Efficiency bandwidth_efficiency(const gpusim::DeviceSpec& dev, Pattern p,
                                const LatticeInfo& lat,
                                const KernelCharacteristics& kc) {
  Efficiency e;
  const gpusim::Occupancy occ = gpusim::compute_occupancy(
      dev, kc.threads_per_block, kc.shared_bytes_per_block);
  e.blocks_per_sm = occ.blocks_per_sm;
  e.occupancy = occ.occupancy;

  double eta = dev.stream_efficiency;
  if (p != Pattern::kST) {
    eta *= (lat.dim == 2) ? dev.mr_pipeline_efficiency_2d
                          : dev.mr_pipeline_efficiency_3d;
    if (occ.blocks_per_sm < 2) {
      eta *= kLowResidencyPenalty;
    }
  }
  e.bandwidth_fraction = eta;
  return e;
}

}  // namespace mlbm::perf
