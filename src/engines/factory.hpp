// Runtime-precision engine construction.
//
// The storage-precision policy is a compile-time template parameter of the
// gpusim engines (StEngine<L, ST>, AaEngine<L, ST>, MrEngine<L, ST>), which
// keeps the FP64 path bit-identical and the byte accounting exact. CLI tools
// and benches, however, select the precision at runtime (--precision fp32);
// these helpers dispatch a StoragePrecision value to the right instantiation
// behind the type-erasing Engine<L> interface.
//
// All four explicit instantiations per engine x {double, float} are already
// compiled into the library (see the engine .cpp files), so these templates
// add no object code beyond the dispatch.
#pragma once

#include <memory>

#include "engines/aa_engine.hpp"
#include "engines/ep_engine.hpp"
#include "engines/mr_engine.hpp"
#include "engines/st_engine.hpp"
#include "util/precision.hpp"

namespace mlbm {

template <class L>
std::unique_ptr<Engine<L>> make_st_engine(
    StoragePrecision prec, Geometry geo, real_t tau,
    CollisionScheme scheme = CollisionScheme::kBGK, int threads_per_block = 256,
    StreamMode mode = StreamMode::kPull, ExecMode exec = default_exec_mode()) {
  if (prec == StoragePrecision::kFP32) {
    return std::make_unique<StEngine<L, float>>(std::move(geo), tau, scheme,
                                                threads_per_block, mode, exec);
  }
  return std::make_unique<StEngine<L, double>>(std::move(geo), tau, scheme,
                                               threads_per_block, mode, exec);
}

template <class L>
std::unique_ptr<Engine<L>> make_aa_engine(
    StoragePrecision prec, Geometry geo, real_t tau,
    CollisionScheme scheme = CollisionScheme::kBGK, int threads_per_block = 256,
    ExecMode exec = default_exec_mode(), bool allow_open_faces = false) {
  if (prec == StoragePrecision::kFP32) {
    return std::make_unique<AaEngine<L, float>>(
        std::move(geo), tau, scheme, threads_per_block, exec, allow_open_faces);
  }
  return std::make_unique<AaEngine<L, double>>(
      std::move(geo), tau, scheme, threads_per_block, exec, allow_open_faces);
}

template <class L>
std::unique_ptr<Engine<L>> make_ep_engine(
    StoragePrecision prec, Geometry geo, real_t tau,
    CollisionScheme scheme = CollisionScheme::kBGK, int threads_per_block = 256,
    ExecMode exec = default_exec_mode()) {
  if (prec == StoragePrecision::kFP32) {
    return std::make_unique<EpEngine<L, float>>(std::move(geo), tau, scheme,
                                                threads_per_block, exec);
  }
  return std::make_unique<EpEngine<L, double>>(std::move(geo), tau, scheme,
                                               threads_per_block, exec);
}

template <class L>
std::unique_ptr<Engine<L>> make_mr_engine(StoragePrecision prec, Geometry geo,
                                          real_t tau, Regularization scheme,
                                          MrConfig config = {},
                                          ExecMode exec = default_exec_mode()) {
  if (prec == StoragePrecision::kFP32) {
    return std::make_unique<MrEngine<L, float>>(std::move(geo), tau, scheme,
                                                config, exec);
  }
  return std::make_unique<MrEngine<L, double>>(std::move(geo), tau, scheme,
                                               config, exec);
}

}  // namespace mlbm
