file(REMOVE_RECURSE
  "../bench/d3q27_extension"
  "../bench/d3q27_extension.pdb"
  "CMakeFiles/d3q27_extension.dir/d3q27_extension.cpp.o"
  "CMakeFiles/d3q27_extension.dir/d3q27_extension.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d3q27_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
