#include "multidev/multi_domain.hpp"

#include <cmath>
#include <string>

#include "util/error.hpp"

namespace mlbm {

std::vector<SlabInfo> make_slabs(int nx, int ndev) {
  if (ndev < 1 || ndev > nx) {
    throw ConfigError("make_slabs: need 1 <= ndev <= nx, got ndev=" +
                      std::to_string(ndev) + " nx=" + std::to_string(nx));
  }
  std::vector<SlabInfo> slabs(static_cast<std::size_t>(ndev));
  const int base = nx / ndev;
  const int rem = nx % ndev;
  int x = 0;
  for (int d = 0; d < ndev; ++d) {
    SlabInfo& s = slabs[static_cast<std::size_t>(d)];
    s.x_begin = x;
    s.x_end = x + base + (d < rem ? 1 : 0);
    s.has_left = d > 0;
    s.has_right = d < ndev - 1;
    x = s.x_end;
  }
  return slabs;
}

Geometry slab_geometry(const Geometry& global, const SlabInfo& slab) {
  Box local = global.box;
  local.nx = slab.local_nx();
  Geometry geo(local);
  geo.bc = global.bc;
  // Interior interfaces drop outgoing populations; their planes are ghost
  // nodes rebuilt by the exchange after every step.
  if (slab.has_left) geo.bc.face[0][0].type = FaceBC::kOpen;
  if (slab.has_right) geo.bc.face[0][1].type = FaceBC::kOpen;

  // Copy node kinds for the owned range plus ghost planes (ghost kinds are
  // irrelevant to the update but keep diagnostics meaningful).
  const int g0 = slab.x_begin - (slab.has_left ? 1 : 0);
  for (int z = 0; z < local.nz; ++z) {
    for (int y = 0; y < local.ny; ++y) {
      for (int lx = 0; lx < local.nx; ++lx) {
        const int gx = g0 + lx;
        geo.set(lx, y, z, global.at(gx, y, z));
      }
    }
  }
  return geo;
}

template <class L>
MultiDomainEngine<L>::MultiDomainEngine(Geometry global, real_t tau, int ndev,
                                        const EngineFactory& factory)
    : Engine<L>(std::move(global), tau), slabs_(make_slabs(this->geo_.box.nx, ndev)) {
  // Degenerate decompositions must fail loudly here, not as UB on
  // engines_.front() (or worse, inside a slab engine) later: make_slabs
  // already enforces 1 <= ndev <= nx, this validates what it produced and
  // the cross extents the slabs share.
  const Box& gb = this->geo_.box;
  if (gb.nx < 1 || gb.ny < 1 || gb.nz < 1) {
    throw ConfigError("MultiDomainEngine: empty global box " +
                      std::to_string(gb.nx) + "x" + std::to_string(gb.ny) +
                      "x" + std::to_string(gb.nz));
  }
  if (slabs_.empty()) {
    throw ConfigError("MultiDomainEngine: decomposition produced no slabs");
  }
  for (const SlabInfo& s : slabs_) {
    if (s.x_end <= s.x_begin) {
      throw ConfigError("MultiDomainEngine: empty slab [" +
                        std::to_string(s.x_begin) + ", " +
                        std::to_string(s.x_end) + ")");
    }
  }
  if (ndev > 1 && this->geo_.bc.periodic(0)) {
    throw ConfigError(
        "MultiDomainEngine: a periodic decomposition axis is not supported; "
        "decompose channel-type (open/wall x) domains");
  }
  if (!factory) {
    throw ConfigError("MultiDomainEngine: engine factory must not be null");
  }
  engines_.reserve(slabs_.size());
  for (int d = 0; d < static_cast<int>(slabs_.size()); ++d) {
    engines_.push_back(
        factory(slab_geometry(this->geo_, slabs_[static_cast<std::size_t>(d)]), d));
    if (engines_.back() == nullptr) {
      throw ConfigError("MultiDomainEngine: factory returned null for slab " +
                        std::to_string(d));
    }
    if (std::abs(engines_.back()->tau() - tau) > real_t(1e-12)) {
      throw ConfigError(
          "MultiDomainEngine: slab engine tau differs from global tau");
    }
  }
}

template <class L>
int MultiDomainEngine<L>::owner_of(int gx) const {
  for (int d = 0; d < devices(); ++d) {
    const SlabInfo& s = slabs_[static_cast<std::size_t>(d)];
    if (gx >= s.x_begin && gx < s.x_end) return d;
  }
  throw OutOfRangeError("MultiDomainEngine: x=" + std::to_string(gx) +
                        " outside [0, " + std::to_string(this->geo_.box.nx) +
                        ")");
}

template <class L>
std::uint64_t MultiDomainEngine<L>::fault_sites() const {
  std::uint64_t total = 0;
  for (const auto& e : engines_) total += e->fault_sites();
  return total;
}

template <class L>
void MultiDomainEngine<L>::inject_storage_bitflip(std::uint64_t site,
                                                  unsigned bit) {
  const std::uint64_t total = fault_sites();
  if (total == 0) return;
  std::uint64_t s = site % total;
  for (auto& e : engines_) {
    const std::uint64_t n = e->fault_sites();
    if (s < n) {
      e->inject_storage_bitflip(s, bit);
      return;
    }
    s -= n;
  }
}

template <class L>
std::string MultiDomainEngine<L>::raw_state_tag() const {
  std::string tag = "MULTI";
  for (const auto& e : engines_) {
    const std::string sub = e->raw_state_tag();
    if (sub.empty()) return {};
    tag += "[" + sub + "]";
  }
  return tag;
}

template <class L>
void MultiDomainEngine<L>::serialize_raw_state(std::vector<real_t>& out) const {
  // Length-prefix each slab blob. The count fits a real_t exactly (state
  // sizes are far below 2^53 elements), so the snapshot stays one flat
  // real_t vector like the moment payload.
  std::vector<real_t> sub;
  for (const auto& e : engines_) {
    sub.clear();
    e->serialize_raw_state(sub);
    out.push_back(static_cast<real_t>(sub.size()));
    out.insert(out.end(), sub.begin(), sub.end());
  }
}

template <class L>
void MultiDomainEngine<L>::restore_raw_state(const std::vector<real_t>& in) {
  std::size_t pos = 0;
  for (auto& e : engines_) {
    if (pos >= in.size()) {
      throw ConfigError("MultiDomainEngine: raw snapshot truncated");
    }
    const auto n = static_cast<std::size_t>(in[pos]);
    ++pos;
    if (pos + n > in.size()) {
      throw ConfigError("MultiDomainEngine: raw snapshot slab overruns blob");
    }
    const auto* base = in.data() + pos;
    e->restore_raw_state(std::vector<real_t>(base, base + n));
    pos += n;
  }
  if (pos != in.size()) {
    throw ConfigError("MultiDomainEngine: raw snapshot has trailing data");
  }
}

template <class L>
void MultiDomainEngine<L>::set_time(int t) {
  this->t_ = t;
  for (auto& e : engines_) e->set_time(t);
}

template <class L>
void MultiDomainEngine<L>::initialize(const typename Engine<L>::InitFn& init) {
  // Each slab initializes its whole local domain, ghosts included, mapping
  // local to global coordinates.
  for (int d = 0; d < devices(); ++d) {
    const SlabInfo& s = slabs_[static_cast<std::size_t>(d)];
    const int g0 = s.x_begin - (s.has_left ? 1 : 0);
    engines_[static_cast<std::size_t>(d)]->initialize(
        [&init, g0](int lx, int y, int z) { return init(g0 + lx, y, z); });
  }
}

template <class L>
Moments<L> MultiDomainEngine<L>::moments_at(int gx, int y, int z) const {
  const int d = owner_of(gx);
  const SlabInfo& s = slabs_[static_cast<std::size_t>(d)];
  return engines_[static_cast<std::size_t>(d)]->moments_at(s.local_x(gx), y, z);
}

template <class L>
void MultiDomainEngine<L>::impose(int gx, int y, int z, const Moments<L>& m) {
  const int d = owner_of(gx);
  const SlabInfo& s = slabs_[static_cast<std::size_t>(d)];
  engines_[static_cast<std::size_t>(d)]->impose(s.local_x(gx), y, z, m);
  // Mirror into neighbour ghost copies of this plane, if any.
  if (d > 0) {
    const SlabInfo& left = slabs_[static_cast<std::size_t>(d - 1)];
    if (gx == s.x_begin && left.has_right) {
      engines_[static_cast<std::size_t>(d - 1)]->impose(left.local_nx() - 1, y,
                                                        z, m);
    }
  }
  if (d + 1 < devices()) {
    const SlabInfo& right = slabs_[static_cast<std::size_t>(d + 1)];
    if (gx == s.x_end - 1 && right.has_left) {
      engines_[static_cast<std::size_t>(d + 1)]->impose(0, y, z, m);
    }
  }
}

template <class L>
std::size_t MultiDomainEngine<L>::state_bytes() const {
  std::size_t total = 0;
  for (const auto& e : engines_) total += e->state_bytes();
  return total;
}

template <class L>
std::uint64_t MultiDomainEngine<L>::exchanged_values_per_step() const {
  const Box& b = this->geo_.box;
  const auto interfaces = static_cast<std::uint64_t>(devices() - 1);
  return interfaces * 2ull * static_cast<std::uint64_t>(b.ny) *
         static_cast<std::uint64_t>(b.nz) * static_cast<std::uint64_t>(L::M);
}

template <class L>
void MultiDomainEngine<L>::exchange() {
  const Box& b = this->geo_.box;
  for (int d = 0; d + 1 < devices(); ++d) {
    Engine<L>& left = *engines_[static_cast<std::size_t>(d)];
    Engine<L>& right = *engines_[static_cast<std::size_t>(d + 1)];
    const SlabInfo& ls = slabs_[static_cast<std::size_t>(d)];
    const SlabInfo& rs = slabs_[static_cast<std::size_t>(d + 1)];
    // Left's right ghost <- right's first owned plane; right's left ghost
    // <- left's last owned plane.
    const int l_last_owned = ls.local_x(ls.x_end - 1);
    const int r_first_owned = rs.local_x(rs.x_begin);
    for (int z = 0; z < b.nz; ++z) {
      for (int y = 0; y < b.ny; ++y) {
        left.impose(l_last_owned + 1, y, z, right.moments_at(r_first_owned, y, z));
        right.impose(r_first_owned - 1, y, z, left.moments_at(l_last_owned, y, z));
      }
    }
  }
  exchanged_total_ += exchanged_values_per_step();
}

template <class L>
void MultiDomainEngine<L>::do_step() {
  for (auto& e : engines_) {
    e->step();
  }
  if (!skip_exchange_) exchange();
}

template class MultiDomainEngine<D2Q9>;
template class MultiDomainEngine<D3Q19>;
template class MultiDomainEngine<D3Q27>;
template class MultiDomainEngine<D3Q15>;

}  // namespace mlbm
