#include "resilience/fault_injector.hpp"

#include <sstream>

namespace mlbm::resilience {

namespace {

// splitmix64 finalizer: the avalanche stage is what makes counter-indexed
// draws statistically independent.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t FaultInjector::draw(std::uint64_t stream,
                                  std::uint64_t n) const {
  return mix(mix(cfg_.seed ^ (stream * 0xd1342543de82ef95ULL)) ^ mix(n));
}

void FaultInjector::on_launch(const gpusim::KernelRecord& rec) {
  const std::uint64_t n = ++launch_draws_;
  if (cfg_.launch_fail_rate <= 0 || !active()) return;
  if (uniform(kStreamLaunch, n) < cfg_.launch_fail_rate) {
    trace_.push_back({FaultKind::kLaunchFailure, current_step_, 0, 0,
                      rec.name});
    throw TransientLaunchError("injected transient launch failure in kernel '" +
                               rec.name + "' at step " +
                               std::to_string(current_step_));
  }
}

std::string FaultInjector::trace_string() const {
  std::ostringstream os;
  for (const FaultEvent& e : trace_) {
    os << "step=" << e.step << " kind=" << to_string(e.kind);
    switch (e.kind) {
      case FaultKind::kBitFlip:
      case FaultKind::kScriptedBitFlip:
        os << " site=" << e.site << " bit=" << e.bit;
        break;
      case FaultKind::kLaunchFailure:
        os << " kernel=" << e.detail;
        break;
      case FaultKind::kHaloCorruption:
        os << " interface=" << e.site << " side=" << e.detail;
        break;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace mlbm::resilience
