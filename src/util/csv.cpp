#include "util/csv.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace mlbm {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), width_(header.size()) {
  if (!out_) {
    throw IoError("CsvWriter: cannot open " + path);
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    out_ << header[i] << (i + 1 < header.size() ? "," : "\n");
  }
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw ConfigError("CsvWriter: row width mismatch in " + path_);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << cells[i] << (i + 1 < cells.size() ? "," : "\n");
  }
  out_.flush();
}

std::string CsvWriter::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace mlbm
