// ASCII table printer. Benchmark harnesses use it to render each paper table
// and figure series in the terminal, alongside CSV output.
#pragma once

#include <string>
#include <vector>

namespace mlbm {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void row(std::vector<std::string> cells);

  /// Renders the table with box-drawing separators; every column is padded to
  /// its widest cell.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  static std::string num(double v, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mlbm
