file(REMOVE_RECURSE
  "../bench/table_memory_footprint"
  "../bench/table_memory_footprint.pdb"
  "CMakeFiles/table_memory_footprint.dir/table_memory_footprint.cpp.o"
  "CMakeFiles/table_memory_footprint.dir/table_memory_footprint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
