#include "fleet/fault_plan.hpp"

#include <sstream>

namespace mlbm::fleet {

namespace {

// splitmix64 finalizer, same construction as resilience::FaultInjector so the
// two layers share one well-tested determinism story.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kStreamDeviceLoss = 101;
constexpr std::uint64_t kStreamStraggler = 102;
constexpr std::uint64_t kStreamBurst = 103;
constexpr std::uint64_t kStreamLink = 104;

/// Counter key folding tick and device into one draw index; 4096 devices per
/// tick is far beyond any pool this simulator models.
std::uint64_t key(long tick, int device) {
  return static_cast<std::uint64_t>(tick) * 4096ULL +
         static_cast<std::uint64_t>(device + 1);
}

}  // namespace

const char* to_string(FleetFaultKind k) {
  switch (k) {
    case FleetFaultKind::kDeviceLoss: return "device-loss";
    case FleetFaultKind::kStragglerBegin: return "straggler-begin";
    case FleetFaultKind::kStragglerEnd: return "straggler-end";
    case FleetFaultKind::kLaunchBurstBegin: return "launch-burst-begin";
    case FleetFaultKind::kLaunchBurstEnd: return "launch-burst-end";
    case FleetFaultKind::kLinkDegradeBegin: return "link-degrade-begin";
    case FleetFaultKind::kLinkDegradeEnd: return "link-degrade-end";
  }
  return "unknown";
}

FleetFaultPlan::FleetFaultPlan(FleetFaultConfig config)
    : config_(std::move(config)) {}

double FleetFaultPlan::uniform(std::uint64_t stream, std::uint64_t n) const {
  const std::uint64_t v =
      mix(mix(config_.seed ^ (stream * 0xd1342543de82ef95ULL)) ^ mix(n));
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

void FleetFaultPlan::record(long tick, FleetFaultKind kind, int device,
                            double factor) {
  events_.push_back({tick, kind, device, factor});
}

std::vector<int> FleetFaultPlan::begin_tick(long tick, DevicePool& pool) {
  std::vector<int> lost;
  const auto kill = [&](int id) {
    FleetDevice& dev = pool.device(id);
    if (!dev.alive) return;
    dev.alive = false;
    record(tick, FleetFaultKind::kDeviceLoss, id, 0);
    lost.push_back(id);
  };
  const auto straggle = [&](int id, double factor, long ticks) {
    FleetDevice& dev = pool.device(id);
    if (!dev.alive) return;
    dev.slowdown = factor;
    dev.straggle_until_tick = tick + ticks;
    record(tick, FleetFaultKind::kStragglerBegin, id, factor);
  };
  const auto burst = [&](int id, double rate, long ticks) {
    FleetDevice& dev = pool.device(id);
    if (!dev.alive) return;
    dev.launch_fail_rate = rate;
    dev.burst_until_tick = tick + ticks;
    record(tick, FleetFaultKind::kLaunchBurstBegin, id, rate);
  };
  const auto degrade_link = [&](double factor, long ticks) {
    link_factor_ = factor;
    link_until_tick_ = tick + ticks;
    record(tick, FleetFaultKind::kLinkDegradeBegin, -1, factor);
  };

  // Expire windows first so a back-to-back fault re-opens cleanly.
  for (FleetDevice& dev : pool.devices()) {
    if (dev.straggle_until_tick >= 0 && tick >= dev.straggle_until_tick) {
      dev.slowdown = 1.0;
      dev.straggle_until_tick = -1;
      if (dev.alive) record(tick, FleetFaultKind::kStragglerEnd, dev.id, 1.0);
    }
    if (dev.burst_until_tick >= 0 && tick >= dev.burst_until_tick) {
      dev.launch_fail_rate = 0.0;
      dev.burst_until_tick = -1;
      if (dev.alive) {
        record(tick, FleetFaultKind::kLaunchBurstEnd, dev.id, 0.0);
      }
    }
  }
  if (link_until_tick_ >= 0 && tick >= link_until_tick_) {
    link_factor_ = 1.0;
    link_until_tick_ = -1;
    record(tick, FleetFaultKind::kLinkDegradeEnd, -1, 1.0);
  }

  // Scripted faults fire unconditionally at their tick.
  for (const ScriptedFleetFault& s : config_.scripted) {
    if (s.tick != tick) continue;
    switch (s.kind) {
      case FleetFaultKind::kDeviceLoss:
        kill(s.device);
        break;
      case FleetFaultKind::kStragglerBegin:
        straggle(s.device, s.factor, s.duration_ticks);
        break;
      case FleetFaultKind::kLaunchBurstBegin:
        burst(s.device, s.factor, s.duration_ticks);
        break;
      case FleetFaultKind::kLinkDegradeBegin:
        degrade_link(s.factor, s.duration_ticks);
        break;
      default:
        break;  // end events are window expiries, not scriptable
    }
  }

  const bool in_window =
      tick >= config_.tick_begin &&
      (config_.tick_end < 0 || tick < config_.tick_end);
  if (in_window) {
    for (const FleetDevice& dev : pool.devices()) {
      if (!dev.alive) continue;
      const std::uint64_t n = key(tick, dev.id);
      if (config_.device_loss_rate > 0 &&
          rate_losses_ < config_.max_device_losses &&
          pool.alive_count() > 1 &&
          uniform(kStreamDeviceLoss, n) < config_.device_loss_rate) {
        ++rate_losses_;
        kill(dev.id);
        continue;
      }
      if (config_.straggler_rate > 0 &&
          pool.device(dev.id).straggle_until_tick < 0 &&
          uniform(kStreamStraggler, n) < config_.straggler_rate) {
        straggle(dev.id, config_.straggler_factor, config_.straggler_ticks);
      }
      if (config_.launch_burst_rate > 0 &&
          pool.device(dev.id).burst_until_tick < 0 &&
          uniform(kStreamBurst, n) < config_.launch_burst_rate) {
        burst(dev.id, config_.burst_fail_rate, config_.burst_ticks);
      }
    }
    if (config_.link_fault_rate > 0 && link_until_tick_ < 0 &&
        uniform(kStreamLink, key(tick, -1)) < config_.link_fault_rate) {
      degrade_link(config_.link_degrade_factor, config_.link_fault_ticks);
    }
  }
  return lost;
}

std::string FleetFaultPlan::trace_string() const {
  std::ostringstream os;
  for (const FleetFaultEvent& e : events_) {
    os << "tick=" << e.tick << " kind=" << to_string(e.kind);
    if (e.device >= 0) os << " device=" << e.device;
    if (e.kind != FleetFaultKind::kDeviceLoss) os << " factor=" << e.factor;
    os << '\n';
  }
  return os.str();
}

}  // namespace mlbm::fleet
