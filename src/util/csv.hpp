// CSV series writer used by the benchmark harnesses to persist every table
// and figure of the paper as machine-readable data next to the ASCII output.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace mlbm {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends one row; the number of cells must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with enough digits for round-tripping.
  static std::string num(double v);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace mlbm
