// Storage-precision policy: FP32 storage with FP64 compute.
//
// The contract under test, layer by layer:
//  * GlobalArray converts at the register boundary and counts sizeof(T)
//    bytes per element — never the compute width; null-counter arrays are
//    safe to access and count nothing.
//  * Every engine moves exactly half the bytes under FP32 storage, with
//    identical transaction counts (same access pattern, narrower elements).
//  * The perf model's Table 2 figures scale with the element width.
//  * Checkpoints round-trip the declared storage precision.
//  * Physics: FP64 storage is bit-identical to the host reference; FP32
//    storage adds only bounded rounding noise.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "engines/factory.hpp"
#include "engines/reference_engine.hpp"
#include "gpusim/global_array.hpp"
#include "io/checkpoint.hpp"
#include "multidev/multi_domain.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/roofline.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

Geometry periodic_geo(int nx, int ny, int nz) {
  Geometry geo(Box{nx, ny, nz});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return geo;
}

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------- GlobalArray

TEST(GlobalArrayPrecision, NullCounterArrayIsSafeAndCountsNothing) {
  gpusim::GlobalArray<double> a(8, nullptr);  // routes to null_counter()
  a.store(0, 1.5);
  EXPECT_EQ(a.load(0), 1.5);
  double buf[4] = {};
  a.load_span(0, 2, 4, buf);
  a.store_span(0, 2, 4, buf);
  // The shared null counter stays disabled: nothing was recorded.
  EXPECT_EQ(gpusim::null_counter().snapshot().bytes_total(), 0u);
}

TEST(GlobalArrayPrecision, ConvertsAtTheRegisterBoundary) {
  gpusim::TrafficCounter c;
  gpusim::GlobalArray<float> a(4, &c);
  const double v = 0.1;  // not representable in binary32
  a.store_as(0, v);
  const double back = a.load_as<double>(0);
  EXPECT_EQ(back, static_cast<double>(static_cast<float>(v)));
  EXPECT_NE(back, v);
}

TEST(GlobalArrayPrecision, CountsStorageBytesNotComputeBytes) {
  gpusim::TrafficCounter c;
  gpusim::GlobalArray<float> a(16, &c);
  double buf[8] = {};
  a.load_span_as<double>(0, 2, 8, buf);
  a.store_span_as<double>(0, 2, 8, buf);
  (void)a.load_as<double>(3);
  const auto t = c.snapshot();
  EXPECT_EQ(t.bytes_read, 8 * sizeof(float) + sizeof(float));
  EXPECT_EQ(t.bytes_written, 8 * sizeof(float));
  EXPECT_EQ(t.reads, 2u);   // one span + one scalar
  EXPECT_EQ(t.writes, 1u);  // one span
}

TEST(GlobalArrayPrecision, NegativeStrideSpanStaysInBounds) {
  gpusim::TrafficCounter c;
  gpusim::GlobalArray<double> a(6, &c);
  for (index_t i = 0; i < 6; ++i) a.raw(i) = static_cast<double>(i);
  double buf[3] = {};
  a.load_span_as<double>(5, -2, 3, buf);  // elements 5, 3, 1
  EXPECT_EQ(buf[0], 5.0);
  EXPECT_EQ(buf[1], 3.0);
  EXPECT_EQ(buf[2], 1.0);
  const double out[3] = {9, 8, 7};
  a.store_span_as<double>(4, -2, 3, out);  // elements 4, 2, 0
  EXPECT_EQ(a.raw(4), 9.0);
  EXPECT_EQ(a.raw(2), 8.0);
  EXPECT_EQ(a.raw(0), 7.0);
}

// ------------------------------------------------- engine traffic halving

/// Runs `steps` instrumented steps and returns the traffic delta.
template <class L>
gpusim::TrafficSnapshot traffic_of(Engine<L>& eng, int steps) {
  eng.initialize(
      [](int, int, int) { return equilibrium_moments<L>(1.0, {}); });
  eng.step();
  const auto before = eng.profiler()->total_traffic();
  eng.run(steps);
  return eng.profiler()->total_traffic() - before;
}

/// FP32 must move exactly half the bytes of FP64 in the same number of
/// transactions — the pattern's access structure is precision-independent.
template <class L>
void expect_half_traffic(Engine<L>& e64, Engine<L>& e32, int steps) {
  ASSERT_EQ(e64.storage_precision(), StoragePrecision::kFP64);
  ASSERT_EQ(e32.storage_precision(), StoragePrecision::kFP32);
  const auto t64 = traffic_of<L>(e64, steps);
  const auto t32 = traffic_of<L>(e32, steps);
  EXPECT_EQ(t64.bytes_read, 2 * t32.bytes_read);
  EXPECT_EQ(t64.bytes_written, 2 * t32.bytes_written);
  EXPECT_EQ(t64.reads, t32.reads);
  EXPECT_EQ(t64.writes, t32.writes);
  EXPECT_EQ(e64.state_bytes(), 2 * e32.state_bytes());
}

TEST(Fp32Traffic, StHalvesBytesKeepsTransactions) {
  const Geometry geo = periodic_geo(12, 10, 1);
  StEngine<D2Q9, double> e64(geo, 0.8);
  StEngine<D2Q9, float> e32(geo, 0.8);
  expect_half_traffic<D2Q9>(e64, e32, 3);
}

TEST(Fp32Traffic, StPushHalvesBytesKeepsTransactions) {
  const Geometry geo = periodic_geo(10, 8, 1);
  StEngine<D2Q9, double> e64(geo, 0.8, CollisionScheme::kBGK, 64,
                             StreamMode::kPush);
  StEngine<D2Q9, float> e32(geo, 0.8, CollisionScheme::kBGK, 64,
                            StreamMode::kPush);
  expect_half_traffic<D2Q9>(e64, e32, 3);
}

TEST(Fp32Traffic, AaHalvesBytesKeepsTransactions) {
  const Geometry geo = periodic_geo(12, 10, 1);
  AaEngine<D2Q9, double> e64(geo, 0.8);
  AaEngine<D2Q9, float> e32(geo, 0.8);
  // Even number of steps so both parities of the AA cycle are covered.
  expect_half_traffic<D2Q9>(e64, e32, 4);
}

TEST(Fp32Traffic, MrHalvesBytesKeepsTransactions) {
  const Geometry geo = periodic_geo(16, 12, 1);
  const MrConfig cfg{8, 1, 2};
  MrEngine<D2Q9, double> e64(geo, 0.8, Regularization::kProjective, cfg);
  MrEngine<D2Q9, float> e32(geo, 0.8, Regularization::kProjective, cfg);
  expect_half_traffic<D2Q9>(e64, e32, 3);
}

TEST(Fp32Traffic, Mr3DHalvesBytesKeepsTransactions) {
  const Geometry geo = periodic_geo(8, 8, 6);
  const MrConfig cfg{4, 4, 1};
  MrEngine<D3Q19, double> e64(geo, 0.8, Regularization::kRecursive, cfg);
  MrEngine<D3Q19, float> e32(geo, 0.8, Regularization::kRecursive, cfg);
  expect_half_traffic<D3Q19>(e64, e32, 2);
}

// ---------------------------------------------------------- perf model

TEST(PrecisionPerfModel, BytesPerFlupScalesWithElementWidth) {
  const auto lat = perf::lattice_info<D3Q19>();
  for (const auto p :
       {perf::Pattern::kST, perf::Pattern::kMRP, perf::Pattern::kMRR}) {
    EXPECT_EQ(perf::bytes_per_flup(p, lat),
              perf::bytes_per_flup(p, lat, 8.0));
    EXPECT_EQ(perf::bytes_per_flup(p, lat, 8.0),
              2.0 * perf::bytes_per_flup(p, lat, 4.0));
    EXPECT_EQ(perf::state_bytes(p, lat, 1000, false, 8.0),
              2.0 * perf::state_bytes(p, lat, 1000, false, 4.0));
  }
  EXPECT_EQ(perf::elem_bytes_of(StoragePrecision::kFP64), 8.0);
  EXPECT_EQ(perf::elem_bytes_of(StoragePrecision::kFP32), 4.0);
}

TEST(PrecisionPerfModel, Fp32StorageDoublesBandwidthBoundMflups) {
  const auto dev = gpusim::DeviceSpec::v100();
  const auto lat = perf::lattice_info<D2Q9>();
  perf::KernelCharacteristics kc;
  kc.threads_per_block = 256;
  perf::KernelCharacteristics kc32 = kc;
  kc32.storage_elem_bytes = 4.0;
  const auto e64 = perf::estimate_saturated(dev, perf::Pattern::kST, lat, kc);
  const auto e32 = perf::estimate_saturated(dev, perf::Pattern::kST, lat, kc32);
  EXPECT_DOUBLE_EQ(e32.roofline_mflups, 2.0 * e64.roofline_mflups);
  EXPECT_DOUBLE_EQ(e32.bw_bound_mflups, 2.0 * e64.bw_bound_mflups);
}

// ---------------------------------------------------------- checkpoints

TEST(PrecisionCheckpoint, MrFp32RoundTripIsBitExact) {
  const auto tg = TaylorGreen<D2Q9>::create(12, 0.03);
  MrEngine<D2Q9, float> a(tg.geo, 0.8, Regularization::kProjective, {8, 1, 2});
  tg.attach(a);
  a.run(5);

  const std::string path = tmp_path("mlbm_ckpt_fp32_mr.bin");
  save_checkpoint(a, path);
  // The fp32 file is half the payload of the fp64 format. v3 layout: magic,
  // 7-int header, geometry hash, then the payload (all-fluid => no flags).
  const auto file_bytes = std::filesystem::file_size(path);
  const std::size_t nodes = 12 * 12;
  EXPECT_EQ(file_bytes, 8 + 7 * 4 + 8 + nodes * 6 * sizeof(float));

  MrEngine<D2Q9, float> b(tg.geo, 0.8, Regularization::kProjective, {8, 1, 2});
  load_checkpoint(b, path);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 12; ++x) {
      const auto ma = a.moments_at(x, y, 0);
      const auto mb = b.moments_at(x, y, 0);
      EXPECT_EQ(ma.rho, mb.rho);
      EXPECT_EQ(ma.u[0], mb.u[0]);
      EXPECT_EQ(ma.u[1], mb.u[1]);
      for (int p = 0; p < Moments<D2Q9>::NP; ++p) {
        EXPECT_EQ(ma.pi[static_cast<std::size_t>(p)],
                  mb.pi[static_cast<std::size_t>(p)]);
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(PrecisionCheckpoint, StFp32RoundTripsWithinStorageRounding) {
  const auto tg = TaylorGreen<D2Q9>::create(12, 0.03);
  StEngine<D2Q9, float> a(tg.geo, 0.8);
  tg.attach(a);
  a.run(5);

  const std::string path = tmp_path("mlbm_ckpt_fp32_st.bin");
  save_checkpoint(a, path);
  StEngine<D2Q9, float> b(tg.geo, 0.8);
  load_checkpoint(b, path);
  // ST stores populations, so the round trip goes moments -> reconstruct ->
  // fp32 populations; exactness holds only to storage rounding.
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 12; ++x) {
      const auto ma = a.moments_at(x, y, 0);
      const auto mb = b.moments_at(x, y, 0);
      EXPECT_NEAR(ma.rho, mb.rho, 1e-5);
      EXPECT_NEAR(ma.u[0], mb.u[0], 1e-5);
      EXPECT_NEAR(ma.u[1], mb.u[1], 1e-5);
    }
  }
  std::filesystem::remove(path);
}

TEST(PrecisionCheckpoint, Fp32FileRestoresIntoFp64Engine) {
  const auto tg = TaylorGreen<D2Q9>::create(12, 0.03);
  MrEngine<D2Q9, float> a(tg.geo, 0.8, Regularization::kProjective, {8, 1, 2});
  tg.attach(a);
  a.run(3);

  const std::string path = tmp_path("mlbm_ckpt_fp32_to_fp64.bin");
  save_checkpoint(a, path);
  MrEngine<D2Q9, double> b(tg.geo, 0.8, Regularization::kProjective,
                           {8, 1, 2});
  load_checkpoint(b, path);
  for (int y = 0; y < 12; ++y) {
    for (int x = 0; x < 12; ++x) {
      EXPECT_EQ(a.moments_at(x, y, 0).rho, b.moments_at(x, y, 0).rho);
      EXPECT_EQ(a.moments_at(x, y, 0).u[0], b.moments_at(x, y, 0).u[0]);
    }
  }
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- physics

/// Max L2 velocity error against the FP64 host reference over a short
/// Taylor-Green run.
template <class MakeEngine>
double tg_error_vs_reference(CollisionScheme ref_scheme,
                             const MakeEngine& make) {
  const auto tg = TaylorGreen<D2Q9>::create(16, 0.03);
  ReferenceEngine<D2Q9> ref(tg.geo, 0.8, ref_scheme);
  auto eng = make(tg.geo);
  tg.attach(ref);
  tg.attach(*eng);
  double max_err = 0;
  for (int s = 0; s < 10; ++s) {
    ref.step();
    eng->step();
    double sum = 0;
    for (int y = 0; y < 16; ++y) {
      for (int x = 0; x < 16; ++x) {
        const auto a = eng->moments_at(x, y, 0);
        const auto r = ref.moments_at(x, y, 0);
        sum += (a.u[0] - r.u[0]) * (a.u[0] - r.u[0]) +
               (a.u[1] - r.u[1]) * (a.u[1] - r.u[1]);
      }
    }
    max_err = std::max(max_err, std::sqrt(sum / 256.0));
  }
  return max_err;
}

TEST(Fp32Accuracy, TaylorGreenErrorIsBoundedAndFp64IsExact) {
  const auto make = [](StoragePrecision prec) {
    return [prec](const Geometry& geo) {
      return make_mr_engine<D2Q9>(prec, geo, 0.8, Regularization::kProjective,
                                  MrConfig{8, 1, 2});
    };
  };
  const double err64 = tg_error_vs_reference(
      CollisionScheme::kProjective, make(StoragePrecision::kFP64));
  const double err32 = tg_error_vs_reference(
      CollisionScheme::kProjective, make(StoragePrecision::kFP32));
  // FP64 storage: same arithmetic as the reference up to summation order —
  // machine-epsilon noise only.
  EXPECT_LT(err64, 1e-14);
  // FP32 storage: pure storage-rounding noise, far below the flow scale
  // (u0 = 0.03) but well above the fp64 floor.
  EXPECT_GT(err32, 1e3 * err64);
  EXPECT_LT(err32, 1e-5);
}

TEST(Fp32Accuracy, StTaylorGreenErrorIsBounded) {
  const double err32 = tg_error_vs_reference(
      CollisionScheme::kBGK, [](const Geometry& geo) {
        return make_st_engine<D2Q9>(StoragePrecision::kFP32, geo, 0.8);
      });
  EXPECT_GT(err32, 0.0);
  EXPECT_LT(err32, 1e-5);
}

// ------------------------------------------------------------ reporting

TEST(PrecisionReporting, EnginesDeclareTheirStorage) {
  const Geometry geo = periodic_geo(8, 6, 1);
  EXPECT_EQ(StEngine<D2Q9>(geo, 0.8).storage_precision(),
            StoragePrecision::kFP64);
  EXPECT_EQ((StEngine<D2Q9, float>(geo, 0.8).storage_precision()),
            StoragePrecision::kFP32);
  EXPECT_EQ((AaEngine<D2Q9, float>(geo, 0.8).storage_precision()),
            StoragePrecision::kFP32);
  EXPECT_EQ((MrEngine<D2Q9, float>(geo, 0.8, Regularization::kProjective,
                                   MrConfig{8, 1, 2})
                 .storage_precision()),
            StoragePrecision::kFP32);
  // The runtime factory dispatches to the matching instantiation.
  EXPECT_EQ(make_st_engine<D2Q9>(StoragePrecision::kFP32, geo, 0.8)
                ->storage_precision(),
            StoragePrecision::kFP32);
  EXPECT_EQ(make_aa_engine<D2Q9>(StoragePrecision::kFP64, geo, 0.8)
                ->storage_precision(),
            StoragePrecision::kFP64);
}

TEST(PrecisionReporting, MultiDomainReportsSlabPrecision) {
  Geometry geo(Box{16, 8, 1});
  geo.bc.set_axis(0, FaceBC::kWall);
  geo.bc.set_axis(1, FaceBC::kWall);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  MultiDomainEngine<D2Q9> multi(
      geo, 0.8, 2, [](Geometry g, int) {
        return make_st_engine<D2Q9>(StoragePrecision::kFP32, std::move(g),
                                    0.8);
      });
  EXPECT_EQ(multi.storage_precision(), StoragePrecision::kFP32);
  // state_bytes sums fp32 slabs: half of the fp64 decomposition.
  MultiDomainEngine<D2Q9> multi64(
      geo, 0.8, 2, [](Geometry g, int) {
        return make_st_engine<D2Q9>(StoragePrecision::kFP64, std::move(g),
                                    0.8);
      });
  EXPECT_EQ(multi64.state_bytes(), 2 * multi.state_bytes());
}

}  // namespace
}  // namespace mlbm
