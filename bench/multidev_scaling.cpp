// Multi-GPU scaling projection (context: the paper's group runs LBM across
// whole machines — refs [9], [11]).
//
// Combines the single-device performance model with the measured ghost-
// exchange volume of the slab decomposition into a strong-scaling estimate:
//
//   T(K) = max_slab(compute) + comm,   comm = exchange_bytes / link_BW
//
// and reports parallel efficiency for the MR-P and ST patterns on V100s
// joined by NVLink2 (~50 GB/s per direction) or PCIe3 (~12 GB/s effective).
// The moment exchange moves M values per face node; a distribution-
// representation code must move its boundary populations (Q values in the
// general case) — another place the compressed representation pays off.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "engines/mr_engine.hpp"
#include "multidev/multi_domain.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/report.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workloads/channel.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

struct Link {
  const char* name;
  double gbs;
};

double efficiency(const gpusim::DeviceSpec& dev, Pattern p,
                  const perf::LatticeInfo& lat,
                  const perf::KernelCharacteristics& kc, long long n, int k,
                  double link_gbs, double values_per_face_node) {
  const long long cells = n * n * n;
  const long long cells_k = (cells + k - 1) / k;
  const auto sat = perf::estimate_saturated(dev, p, lat, kc);
  // Per-device compute time per step (utilization of the slab's blocks).
  const long long blocks =
      bench::blocks_for(p, 3, n, n, n, kc) / std::max(1, k);
  const double util =
      perf::size_utilization(dev, std::max<long long>(blocks, 1),
                             sat.blocks_per_sm);
  const double t_compute =
      static_cast<double>(cells_k) / (sat.mflups * 1e6 * std::max(util, 1e-3));
  // Ghost exchange: two faces per interior slab, n*n face nodes each.
  const double bytes =
      (k > 1 ? 2.0 : 0.0) * n * n * values_per_face_node * sizeof(real_t);
  const double t_comm = bytes / (link_gbs * 1e9);
  const double t1 = static_cast<double>(cells) / (sat.mflups * 1e6);
  return t1 / (k * (t_compute + t_comm));
}

}  // namespace

int main() {
  perf::print_banner("Scaling", "Multi-device strong scaling (D3Q19, 256^3)");

  // Functional sanity: a decomposed run reproduces the monolithic one.
  {
    const real_t tau = 0.8;
    const auto ch = Channel<D3Q19>::create(16, 8, 6, tau, 0.04);
    MrEngine<D3Q19> mono(ch.geo, tau, Regularization::kProjective, {4, 4, 1});
    ch.attach(mono);
    MultiDomainEngine<D3Q19> multi(
        ch.geo, tau, 4, [&](Geometry g, int) -> std::unique_ptr<Engine<D3Q19>> {
          return std::make_unique<MrEngine<D3Q19>>(
              std::move(g), tau, Regularization::kProjective,
              MrConfig{4, 4, 1});
        });
    ch.attach(multi);
    mono.run(6);
    multi.run(6);
    double worst = 0;
    for (int z = 0; z < 6; ++z) {
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 16; ++x) {
          worst = std::max(worst, std::abs(static_cast<double>(
                                      mono.moments_at(x, y, z).u[0] -
                                      multi.moments_at(x, y, z).u[0])));
        }
      }
    }
    std::printf("functional check: |mono - 4-slab| = %.2e (exact to fp)\n",
                worst);
    std::printf("measured exchange: %llu values/step (= 2 ifaces x 2 dirs x "
                "48 face nodes x M=10)\n\n",
                static_cast<unsigned long long>(
                    multi.exchanged_values_per_step()));
  }

  const auto v100 = gpusim::DeviceSpec::v100();
  const auto lat = perf::lattice_info<D3Q19>();
  const long long n = 256;
  const Link links[] = {{"NVLink2", 50.0}, {"PCIe3", 12.0}};

  CsvWriter csv(perf::results_dir() + "/multidev_scaling.csv",
                {"pattern", "link", "devices", "efficiency"});
  for (const Link& link : links) {
    std::printf("-- %s (%.0f GB/s per direction) --\n", link.name, link.gbs);
    AsciiTable t({"devices", "MR-P eff. (M=10/face)", "ST eff. (Q=19/face)"});
    for (int k = 1; k <= 16; k *= 2) {
      const auto kc_mr = bench::characteristics<D3Q19>(Pattern::kMRP);
      const auto kc_st = bench::characteristics<D3Q19>(Pattern::kST);
      const double e_mr =
          efficiency(v100, Pattern::kMRP, lat, kc_mr, n, k, link.gbs, 10);
      const double e_st =
          efficiency(v100, Pattern::kST, lat, kc_st, n, k, link.gbs, 19);
      t.row({std::to_string(k), AsciiTable::num(100 * e_mr, 1) + "%",
             AsciiTable::num(100 * e_st, 1) + "%"});
      csv.row({"MR-P", link.name, std::to_string(k), CsvWriter::num(e_mr)});
      csv.row({"ST", link.name, std::to_string(k), CsvWriter::num(e_st)});
    }
    t.print();
  }
  std::printf(
      "\nthe moment exchange ships M=10 doubles per face node vs the\n"
      "distribution representation's Q=19, so MR loses less efficiency per\n"
      "interface — and its exchange is exact for regularized collisions.\n");
  return 0;
}
