#include "perfmodel/overlap.hpp"

namespace mlbm::perf {

OverlapPrediction predict_overlap(const gpusim::DeviceSpec& dev,
                                  const gpusim::LinkSpec& link,
                                  std::uint64_t frontier_bytes,
                                  std::uint64_t interior_bytes,
                                  std::uint64_t ghost_bytes_per_direction,
                                  int incoming_links) {
  OverlapPrediction p;
  p.frontier_s = gpusim::kernel_duration_s(dev, frontier_bytes);
  p.interior_s = gpusim::kernel_duration_s(dev, interior_bytes);
  p.transfer_s = link.transfer_s(ghost_bytes_per_direction);
  p.comm_s = incoming_links * p.transfer_s;
  // Symmetric-slab arrival: every neighbour finishes its frontier when this
  // device does, so ghosts land at frontier_s + transfer_s while the interior
  // runs until frontier_s + interior_s.
  p.exposed_s =
      std::min(p.comm_s, std::max(0.0, p.transfer_s - p.interior_s));
  p.hidden_s = p.comm_s - p.exposed_s;
  // Wall clock treats the per-direction link streams as concurrent (full
  // duplex), so one transfer duration gates the step, not the duration sum.
  p.overlap_step_s = p.frontier_s + std::max(p.interior_s, p.transfer_s);
  p.lockstep_step_s =
      gpusim::kernel_duration_s(dev, frontier_bytes + interior_bytes) +
      p.transfer_s;
  return p;
}

OverlapPrediction predict_overlap_slab(const gpusim::DeviceSpec& dev,
                                       const gpusim::LinkSpec& link,
                                       double bytes_per_cell, int width, int ny,
                                       int nz, int ghost_depth, int sides,
                                       int moments_m, int value_bytes) {
  const auto plane = static_cast<double>(ny) * static_cast<double>(nz);
  // The split runs 2 x ghost_depth planes per interface side in the frontier
  // launch (ghost band + the owned planes the neighbours need); everything
  // else — including nothing, for very thin slabs — is interior.
  const double frontier_planes =
      std::min<double>(width + sides * ghost_depth,
                       2.0 * sides * ghost_depth);
  const double total_planes =
      static_cast<double>(width) + sides * ghost_depth;
  const double interior_planes = total_planes - frontier_planes;
  const auto fb = static_cast<std::uint64_t>(frontier_planes * plane *
                                             bytes_per_cell);
  const auto ib = static_cast<std::uint64_t>(interior_planes * plane *
                                             bytes_per_cell);
  const auto gb = static_cast<std::uint64_t>(ghost_depth) *
                  static_cast<std::uint64_t>(ny) *
                  static_cast<std::uint64_t>(nz) *
                  static_cast<std::uint64_t>(moments_m) *
                  static_cast<std::uint64_t>(value_bytes);
  return predict_overlap(dev, link, fb, ib, gb, sides);
}

}  // namespace mlbm::perf
