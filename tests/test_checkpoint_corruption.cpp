// Corrupt-checkpoint matrix: load_checkpoint must classify every
// malformation as a typed CheckpointError — and leave the target engine
// bit-for-bit untouched, because validation completes before the first
// impose().
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engines/st_engine.hpp"
#include "io/checkpoint.hpp"
#include "util/error.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<char> slurp_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A small engine with a non-trivial, reproducible state.
std::unique_ptr<StEngine<D2Q9>> make_engine() {
  const auto tg = TaylorGreen<D2Q9>::create(8, 0.03);
  auto e = std::make_unique<StEngine<D2Q9>>(tg.geo, 0.8);
  tg.attach(*e);
  e->run(3);
  return e;
}

std::vector<double> dump_moments(const Engine<D2Q9>& e) {
  std::vector<double> out;
  const Box& b = e.geometry().box;
  for (int y = 0; y < b.ny; ++y) {
    for (int x = 0; x < b.nx; ++x) {
      const auto m = e.moments_at(x, y, 0);
      out.push_back(m.rho);
      out.push_back(m.u[0]);
      out.push_back(m.u[1]);
      out.push_back(m.pi[0]);
      out.push_back(m.pi[1]);
      out.push_back(m.pi[2]);
    }
  }
  return out;
}

/// Writes a corrupted variant of `bytes`, asserts that loading it throws a
/// CheckpointError of `kind`, and that the target engine state is unchanged.
void expect_rejected(const std::vector<char>& bytes,
                     CheckpointError::Kind kind, const std::string& tag) {
  SCOPED_TRACE(tag);
  const std::string path = tmp_path("mlbm_corrupt_" + tag + ".bin");
  spit_bytes(path, bytes);

  auto target = make_engine();
  const std::vector<double> before = dump_moments(*target);

  bool threw = false;
  try {
    load_checkpoint(*target, path);
  } catch (const CheckpointError& e) {
    threw = true;
    EXPECT_EQ(e.kind(), kind) << e.what();
    EXPECT_EQ(e.code(), ErrorCode::kCheckpoint);
    EXPECT_FALSE(e.transient());
  }
  EXPECT_TRUE(threw);
  // Validation failed => no impose() ran => engine untouched.
  EXPECT_EQ(before, dump_moments(*target));
  std::filesystem::remove(path);
}

class CheckpointCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = tmp_path("mlbm_corrupt_master.bin");
    save_checkpoint(*make_engine(), path_);
    good_ = slurp_bytes(path_);
    // v3 layout: 8-byte magic, 7 x int32 header, 8-byte geometry hash, then
    // the payload (the all-fluid master file carries no flag field).
    ASSERT_GT(good_.size(), 44u);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::vector<char> truncated(std::size_t n) const {
    return {good_.begin(), good_.begin() + static_cast<std::ptrdiff_t>(n)};
  }

  std::string path_;
  std::vector<char> good_;
};

TEST_F(CheckpointCorruption, MissingFileIsOpenError) {
  auto target = make_engine();
  try {
    load_checkpoint(*target, tmp_path("mlbm_no_such_file.bin"));
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kOpen);
  }
}

TEST_F(CheckpointCorruption, TruncationMatrix) {
  expect_rejected(truncated(0), CheckpointError::Kind::kTruncated, "empty");
  expect_rejected(truncated(5), CheckpointError::Kind::kTruncated,
                  "inside_magic");
  expect_rejected(truncated(8), CheckpointError::Kind::kTruncated,
                  "after_magic");
  expect_rejected(truncated(8 + 11), CheckpointError::Kind::kTruncated,
                  "inside_header");
  expect_rejected(truncated(8 + 24), CheckpointError::Kind::kTruncated,
                  "after_header");
  expect_rejected(truncated(good_.size() / 2),
                  CheckpointError::Kind::kTruncated, "inside_payload");
  expect_rejected(truncated(good_.size() - 1),
                  CheckpointError::Kind::kTruncated, "one_byte_short");
}

TEST_F(CheckpointCorruption, BadMagicIsRejected) {
  std::vector<char> bad = good_;
  bad[0] = 'X';
  expect_rejected(bad, CheckpointError::Kind::kBadMagic, "mangled_magic");

  std::vector<char> text(64, 'a');
  expect_rejected(text, CheckpointError::Kind::kBadMagic, "text_file");
}

TEST_F(CheckpointCorruption, WrongExtentsAreRejected) {
  // header ints start at byte 8: {D, Q, nx, ny, nz, precision}.
  std::vector<char> bad = good_;
  const std::int32_t wrong_nx = 9;
  std::memcpy(bad.data() + 8 + 2 * sizeof(std::int32_t), &wrong_nx,
              sizeof(wrong_nx));
  expect_rejected(bad, CheckpointError::Kind::kExtents, "wrong_nx");

  bad = good_;
  const std::int32_t wrong_d = 3;
  std::memcpy(bad.data() + 8, &wrong_d, sizeof(wrong_d));
  expect_rejected(bad, CheckpointError::Kind::kExtents, "wrong_dim");

  bad = good_;
  const std::int32_t zero_nz = 0;
  std::memcpy(bad.data() + 8 + 4 * sizeof(std::int32_t), &zero_nz,
              sizeof(zero_nz));
  expect_rejected(bad, CheckpointError::Kind::kExtents, "zero_extent");
}

TEST_F(CheckpointCorruption, OutOfRangePrecisionTagIsRejected) {
  std::vector<char> bad = good_;
  const std::int32_t tag = 7;
  std::memcpy(bad.data() + 8 + 5 * sizeof(std::int32_t), &tag, sizeof(tag));
  expect_rejected(bad, CheckpointError::Kind::kPrecision, "precision_7");
}

TEST_F(CheckpointCorruption, MangledGeometryHashIsRejected) {
  // The v3 geometry hash occupies bytes 36..44.
  std::vector<char> bad = good_;
  bad[36] = static_cast<char>(bad[36] ^ 0x5a);
  expect_rejected(bad, CheckpointError::Kind::kGeometry, "mangled_geo_hash");
}

TEST_F(CheckpointCorruption, DifferentTileMapGeometryIsRejected) {
  // Semantic (not byte-mangled) v3 hash mismatch: a file saved from a
  // sparse geometry must not restore into an engine whose flag field — and
  // therefore tile-compressed element order — differs, even with identical
  // extents. The load must fail typed BEFORE the first impose().
  const std::string path = tmp_path("mlbm_corrupt_tilemap.bin");
  Geometry src(Box{16, 8, 1});
  src.set_solid(3, 2);
  src.set_solid(4, 2);
  {
    StEngine<D2Q9> donor(src, 0.8);
    donor.initialize(
        [](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
    donor.run(2);
    save_checkpoint<D2Q9>(donor, path);
  }
  Geometry dst(Box{16, 8, 1});
  dst.set_solid(9, 5);  // same extents, same solid count shape class — but a
  dst.set_solid(10, 5);  // different flag field, so a different TileMap
  StEngine<D2Q9> target(dst, 0.8);
  target.initialize(
      [](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
  const std::vector<double> before = dump_moments(target);
  try {
    load_checkpoint<D2Q9>(target, path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kGeometry) << e.what();
    EXPECT_FALSE(e.transient());
  }
  EXPECT_EQ(before, dump_moments(target));
  std::filesystem::remove(path);
}

TEST_F(CheckpointCorruption, OutOfRangeFlagsTagIsRejected) {
  std::vector<char> bad = good_;
  const std::int32_t tag = 3;
  std::memcpy(bad.data() + 8 + 6 * sizeof(std::int32_t), &tag, sizeof(tag));
  expect_rejected(bad, CheckpointError::Kind::kGeometry, "flags_tag_3");
}

TEST_F(CheckpointCorruption, TrailingGarbageIsRejected) {
  std::vector<char> bad = good_;
  bad.push_back('\0');
  expect_rejected(bad, CheckpointError::Kind::kTrailing, "one_trailing_byte");

  bad = good_;
  for (int i = 0; i < 100; ++i) bad.push_back('g');
  expect_rejected(bad, CheckpointError::Kind::kTrailing, "trailing_block");
}

TEST_F(CheckpointCorruption, V1FilesRemainLoadable) {
  // Rewrite the good v3/fp64 file as v1: v1 magic, 5-int header, same
  // payload bytes (v1 is always fp64; the v3 payload starts after the 7-int
  // header and the geometry hash, at byte 44).
  const std::uint64_t magic_v1 = 0x4d4c424d43503031ULL;
  std::vector<char> v1(sizeof(magic_v1));
  std::memcpy(v1.data(), &magic_v1, sizeof(magic_v1));
  v1.insert(v1.end(), good_.begin() + 8, good_.begin() + 8 + 20);
  v1.insert(v1.end(), good_.begin() + 44, good_.end());

  const std::string path = tmp_path("mlbm_ckpt_v1.bin");
  spit_bytes(path, v1);

  auto source = make_engine();
  StEngine<D2Q9> target(source->geometry(), 0.8);
  target.initialize(
      [](int, int, int) { return equilibrium_moments<D2Q9>(1, {}); });
  load_checkpoint(target, path);
  // Checkpoints travel through the moment interface, which projects away
  // BGK's higher-order non-equilibrium content on impose — near, not
  // bit-equal.
  const auto src = dump_moments(*source);
  const auto dst = dump_moments(target);
  ASSERT_EQ(src.size(), dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_NEAR(src[i], dst[i], 1e-12) << "value " << i;
  }
  std::filesystem::remove(path);
}

// ---- Atomic save: tmp + flush + rename ----

TEST_F(CheckpointCorruption, SaveLeavesNoTmpFileBehind) {
  const std::string path = tmp_path("mlbm_ckpt_atomic.bin");
  save_checkpoint(*make_engine(), path);
  EXPECT_TRUE(std::filesystem::exists(path));
  // The staging file was renamed over the destination, not left as debris.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST_F(CheckpointCorruption, TornTmpFromACrashIsInvisibleToLoad) {
  // A writer that died mid-save leaves a torn `path.tmp`; the destination
  // either does not exist (first save) or still holds the previous complete
  // checkpoint. load_checkpoint never looks at the tmp.
  const std::string path = tmp_path("mlbm_ckpt_torn.bin");
  spit_bytes(path + ".tmp", truncated(good_.size() / 2));

  // First save never happened: the destination is absent.
  auto target = make_engine();
  EXPECT_THROW(load_checkpoint(*target, path), CheckpointError);

  // Previous save is intact: the torn tmp does not affect the load.
  spit_bytes(path, good_);
  EXPECT_NO_THROW(load_checkpoint(*target, path));

  // A new save replaces the destination atomically and reclaims the tmp name.
  save_checkpoint(*make_engine(), path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_NO_THROW(load_checkpoint(*target, path));

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

TEST_F(CheckpointCorruption, UnwritableStagingPathIsTypedAndNonDestructive) {
  // A directory squatting on `path.tmp` makes the staging file unopenable:
  // the save must throw a typed kOpen error and leave an existing
  // destination checkpoint untouched.
  const std::string path = tmp_path("mlbm_ckpt_blocked.bin");
  spit_bytes(path, good_);
  std::filesystem::create_directory(path + ".tmp");

  try {
    save_checkpoint(*make_engine(), path);
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kOpen);
  }
  EXPECT_EQ(slurp_bytes(path), good_);  // destination untouched

  std::filesystem::remove(path + ".tmp");
  std::filesystem::remove(path);
}

TEST_F(CheckpointCorruption, TypedErrorsStayCatchableAsRuntimeError) {
  auto target = make_engine();
  const std::string path = tmp_path("mlbm_corrupt_legacy.bin");
  spit_bytes(path, truncated(10));
  // The pre-existing API contract: callers catching std::runtime_error
  // (as the legacy tests do) must keep working.
  EXPECT_THROW(load_checkpoint(*target, path), std::runtime_error);
  EXPECT_THROW(load_checkpoint(*target, path), IoError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace mlbm
