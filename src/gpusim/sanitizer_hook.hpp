// Sanitizer instrumentation interface (compute-sanitizer analogue).
//
// Mirrors the LaunchFaultHook pattern: the simulator's hot paths carry one
// nullable pointer and test it before notifying, so an uninstrumented run
// pays a single predictable branch per instrumented call site and nothing
// else (no virtual dispatch unless a hook is installed).
//
// The hook observes four event families:
//
//  * launch lifecycle — `on_launch_begin` / `on_block_begin` /
//    `on_block_end` / `on_launch_end`, emitted by `launch` and
//    `launch_level_synced`. Block begin/end bracket one block's execution of
//    one level (level 0 for plain launches) and establish the per-OS-thread
//    attribution context for global-memory events.
//  * global memory — `global_register` (a GlobalArray binds itself, sized),
//    `global_access` (in-bounds device load/store, possibly strided),
//    `global_oob` (an access that failed bounds validation; the array skips
//    the touch, so the sanitizer must record it), and `global_host_write`
//    (host-side mutation through `raw()`: initialization, boundary imposes,
//    ghost exchange, checkpoint restore).
//  * shared memory — `shared_register` (a BlockCtx arena span) and
//    `shared_access` (one word, with the conceptual GPU thread id supplied
//    by the kernel and the block's current barrier epoch).
//  * barriers — `block_sync`, emitted by BlockCtx::sync().
//
// Concurrency contract: launch lifecycle calls other than
// `on_block_begin`/`on_block_end` are serialized by the launcher;
// everything else may arrive concurrently from OpenMP worker threads and
// implementations must synchronize internally.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/dim3.hpp"
#include "util/types.hpp"

namespace mlbm::gpusim {

struct KernelRecord;

class SanitizerHook {
 public:
  SanitizerHook() = default;
  SanitizerHook(const SanitizerHook&) = delete;
  SanitizerHook& operator=(const SanitizerHook&) = delete;
  virtual ~SanitizerHook() = default;

  // ---- launch lifecycle -------------------------------------------------
  /// A kernel launch starts. `levels` is 1 for plain launches.
  virtual void on_launch_begin(const KernelRecord& rec, Dim3 grid, Dim3 block,
                               int levels) = 0;
  /// Block `block` (linearized) starts executing `level` on the calling OS
  /// thread. Establishes attribution context for global accesses.
  virtual void on_block_begin(long long block, int level) = 0;
  /// The calling OS thread finished its current (block, level) slice.
  virtual void on_block_end() = 0;
  /// The launch completed; `per_block_syncs` holds each block's barrier
  /// count (synccheck input).
  virtual void on_launch_end(const std::vector<std::uint64_t>& per_block_syncs) = 0;

  // ---- launch groups ----------------------------------------------------
  /// Brackets a set of launches that together form ONE logical engine step
  /// (the frontier/interior split issues up to three launches per step).
  /// Grouped launches share one freshness window: sliding-window staleness
  /// treats the whole group as a single launch, matching the split-step
  /// contract that the sub-launches partition the step's work over disjoint
  /// write ranges. Defaulted no-ops so existing hooks are unaffected;
  /// serialized by the caller like the rest of the launch lifecycle.
  virtual void begin_launch_group() {}
  virtual void end_launch_group() {}

  // ---- global memory ----------------------------------------------------
  /// Binds array `arr` (identity key) of `n` elements. `sliding_window`
  /// opts the array into the staleness check: its kernels promise that
  /// every element a launch reads was refreshed no earlier than the array's
  /// previous launch (the sliding-window / ping-pong contract all engine
  /// state arrays satisfy).
  virtual void global_register(const void* arr, std::size_t n,
                               std::size_t elem_bytes, const char* name,
                               bool sliding_window) = 0;
  /// An in-bounds device access of `n` elements starting at `base` with
  /// element stride `stride` (scalar accesses pass n=1, stride=0).
  virtual void global_access(const void* arr, index_t base, index_t stride,
                             int n, bool write) = 0;
  /// An access that failed bounds validation (memcheck). The array skips
  /// the physical touch after reporting.
  virtual void global_oob(const void* arr, index_t base, index_t stride, int n,
                          std::size_t size, bool write) = 0;
  /// Host-side write of element `i` through raw(): marks initialization and
  /// freshness (ghost exchange, boundary impose, restore, init).
  virtual void global_host_write(const void* arr, index_t i) = 0;

  // ---- shared memory ----------------------------------------------------
  /// Block `block` allocated a shared span of `words` elements of
  /// `word_bytes` each at address `base`.
  virtual void shared_register(long long block, const void* base,
                               std::size_t words, std::size_t word_bytes) = 0;
  /// One shared-memory word access by conceptual thread `tid` of `block`
  /// in barrier epoch `epoch`.
  virtual void shared_access(long long block, const void* addr, int tid,
                             bool write, std::uint64_t epoch) = 0;

  // ---- barriers ---------------------------------------------------------
  /// Block `block` executed a __syncthreads(), entering `epoch`.
  virtual void block_sync(long long block, std::uint64_t epoch) = 0;
};

}  // namespace mlbm::gpusim
