// 3D rectangular-duct channel flow with the D3Q19 lattice — the workload of
// the paper's Figure 3 — comparing all three propagation patterns on the
// same flow and reporting their agreement, per-step traffic and footprint.
//
//   ./examples/channel3d [--nx 48] [--ny 16] [--nz 16] [--tau 0.8]
//                        [--umax 0.04] [--steps 800] [--vtk out.vtk]
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "engines/mr_engine.hpp"
#include "engines/st_engine.hpp"
#include "io/vtk_writer.hpp"
#include "util/cli.hpp"
#include "workloads/analytic.hpp"
#include "workloads/channel.hpp"

int main(int argc, char** argv) {
  using namespace mlbm;
  const Cli cli(argc, argv);
  cli.reject_unknown({"nx", "ny", "nz", "steps", "tau", "umax", "vtk"});
  const int nx = cli.get_int("nx", 48, 1);
  const int ny = cli.get_int("ny", 16, 1);
  const int nz = cli.get_int("nz", 16, 1);
  const real_t tau = cli.get_double("tau", 0.8);
  const real_t umax = cli.get_double("umax", 0.04);
  const int steps = cli.get_int("steps", 800, 1);

  const auto ch = Channel<D3Q19>::create(nx, ny, nz, tau, umax);

  StEngine<D3Q19> st(ch.geo, tau);
  MrEngine<D3Q19> mrp(ch.geo, tau, Regularization::kProjective, {8, 8, 1});
  MrEngine<D3Q19> mrr(ch.geo, tau, Regularization::kRecursive, {8, 8, 1});
  std::vector<Engine<D3Q19>*> engines = {&st, &mrp, &mrr};

  std::printf("channel3d: %dx%dx%d duct, tau=%.3f, u_max=%.3f, %d steps\n\n",
              nx, ny, nz, tau, umax, steps);

  for (Engine<D3Q19>* e : engines) {
    ch.attach(*e);
    e->run(steps);

    // Mid-channel centreline error vs the duct series solution.
    double err = 0;
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < ny; ++y) {
        const auto m = e->moments_at(nx / 2, y, z);
        const real_t ref = umax * analytic::duct(ny, nz, y, z);
        err = std::max(err, std::abs(static_cast<double>(m.u[0] - ref)));
      }
    }
    const auto traffic = e->profiler() != nullptr
                             ? e->profiler()->total_traffic().bytes_total()
                             : 0;
    std::printf("%-5s  max profile error %.2e (%.2f%% of u_max)  "
                "state %6.2f MiB  traffic %8.1f MiB\n",
                e->pattern_name(), err, 100 * err / umax,
                e->state_bytes() / 1048576.0, traffic / 1048576.0);
  }

  // The MR state is less than half the ST state (Table 2: 304 vs 160 B/F).
  std::printf("\nmemory: MR/ST state ratio = %.2f (paper: 160/304 = 0.53)\n",
              static_cast<double>(mrp.state_bytes()) / st.state_bytes());

  // Cross-pattern agreement on the final flow field.
  double diff = 0;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        diff = std::max(diff, std::abs(static_cast<double>(
                                  st.moments_at(x, y, z).u[0] -
                                  mrp.moments_at(x, y, z).u[0])));
      }
    }
  }
  std::printf("max |u_ST - u_MRP| = %.2e (different collision operators, "
              "same flow)\n", diff);

  if (cli.has("vtk")) {
    write_vtk(mrp, cli.get("vtk", "channel3d.vtk"));
    std::printf("wrote %s\n", cli.get("vtk", "channel3d.vtk").c_str());
  }
  return 0;
}
