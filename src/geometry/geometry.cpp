#include "geometry/geometry.hpp"

#include <cstring>

namespace mlbm {

namespace {

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

template <class T>
std::uint64_t fnv1a_pod(std::uint64_t h, const T& v) {
  return fnv1a(h, &v, sizeof(T));
}

}  // namespace

std::uint64_t Geometry::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a_pod(h, box.nx);
  h = fnv1a_pod(h, box.ny);
  h = fnv1a_pod(h, box.nz);
  for (int a = 0; a < 3; ++a) {
    for (int side = 0; side < 2; ++side) {
      const FaceSpec& f = bc.face[static_cast<std::size_t>(a)]
                                 [static_cast<std::size_t>(side)];
      h = fnv1a_pod(h, static_cast<std::uint8_t>(f.type));
      for (real_t u : f.u_wall) h = fnv1a_pod(h, u);
    }
  }
  h = fnv1a(h, kind.data(), kind.size() * sizeof(NodeKind));
  return h;
}

TileStats TileMap::stats() const {
  TileStats s;
  s.cells = cells;
  s.n_fluid = n_fluid;
  s.n_fluid_tiles = static_cast<int>(fluid_tiles.size());
  s.n_mixed_tiles = static_cast<int>(mixed_tiles.size());
  s.n_solid_tiles = ntiles() - s.n_fluid_tiles - s.n_mixed_tiles;
  s.n_slots = n_slots();
  return s;
}

TileMap TileMap::build(const Box& box, const std::vector<NodeKind>& kind) {
  TileMap m;
  const bool is3d = box.nz > 1;
  m.tdx = is3d ? 4 : 8;
  m.tdy = is3d ? 4 : 8;
  m.tdz = is3d ? 4 : 1;
  m.nx = box.nx;
  m.ny = box.ny;
  m.nz = box.nz;
  m.ntx = (box.nx + m.tdx - 1) / m.tdx;
  m.nty = (box.ny + m.tdy - 1) / m.tdy;
  m.ntz = (box.nz + m.tdz - 1) / m.tdz;
  m.cells = box.cells();

  const int ntiles = m.ntiles();
  m.cls.assign(static_cast<std::size_t>(ntiles), TileClass::kAllSolid);
  m.slot.assign(static_cast<std::size_t>(ntiles), -1);
  m.mixed_begin.push_back(0);

  for (int tz = 0; tz < m.ntz; ++tz) {
    for (int ty = 0; ty < m.nty; ++ty) {
      for (int tx = 0; tx < m.ntx; ++tx) {
        const int tile = m.tile_id(tx, ty, tz);
        const int x0 = tx * m.tdx, y0 = ty * m.tdy, z0 = tz * m.tdz;
        const bool full = x0 + m.tdx <= box.nx && y0 + m.tdy <= box.ny &&
                          z0 + m.tdz <= box.nz;
        std::uint64_t mask = 0;
        int n_in_box = 0, n_fluid = 0;
        for (int lz = 0; lz < m.tdz; ++lz) {
          for (int ly = 0; ly < m.tdy; ++ly) {
            for (int lx = 0; lx < m.tdx; ++lx) {
              const int x = x0 + lx, y = y0 + ly, z = z0 + lz;
              if (!box.inside(x, y, z)) continue;
              ++n_in_box;
              if (kind[static_cast<std::size_t>(box.idx(x, y, z))] !=
                  NodeKind::kSolid) {
                ++n_fluid;
                mask |= 1ull << ((lz * m.tdy + ly) * m.tdx + lx);
              }
            }
          }
        }
        m.n_fluid += n_fluid;
        if (n_fluid == 0) {
          m.cls[static_cast<std::size_t>(tile)] = TileClass::kAllSolid;
          continue;
        }
        const int slot = m.n_slots();
        m.slot[static_cast<std::size_t>(tile)] =
            static_cast<std::int32_t>(slot);
        m.slot_tile.push_back(static_cast<std::int32_t>(tile));
        if (full && n_fluid == kSlots) {
          m.cls[static_cast<std::size_t>(tile)] = TileClass::kAllFluid;
          m.fluid_tiles.push_back(static_cast<std::int32_t>(tile));
        } else {
          m.cls[static_cast<std::size_t>(tile)] = TileClass::kMixed;
          m.mixed_tiles.push_back(static_cast<std::int32_t>(tile));
          m.mixed_mask.push_back(mask);
          for (int local = 0; local < kSlots; ++local) {
            if (mask >> local & 1u) {
              m.mixed_local.push_back(static_cast<std::uint16_t>(local));
            }
          }
          m.mixed_begin.push_back(
              static_cast<std::int32_t>(m.mixed_local.size()));
        }
      }
    }
  }
  return m;
}

}  // namespace mlbm
