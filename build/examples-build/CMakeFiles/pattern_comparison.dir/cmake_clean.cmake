file(REMOVE_RECURSE
  "../examples/pattern_comparison"
  "../examples/pattern_comparison.pdb"
  "CMakeFiles/pattern_comparison.dir/pattern_comparison.cpp.o"
  "CMakeFiles/pattern_comparison.dir/pattern_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
