#include "analysis/fields.hpp"

#include <cmath>

namespace mlbm::analysis {

namespace {

/// Velocity component `comp` at a node, for stencil evaluation.
template <class L>
real_t u_at(const Engine<L>& eng, int x, int y, int z, int comp) {
  return eng.moments_at(x, y, z).u[static_cast<std::size_t>(comp)];
}

/// Derivative of u_comp along `axis` with periodic wrap or one-sided edges.
template <class L>
real_t d_u(const Engine<L>& eng, int x, int y, int z, int comp, int axis) {
  const Box& b = eng.geometry().box;
  const int n = b.extent(axis);
  if (n < 2) return 0;
  int c[3] = {x, y, z};
  const bool periodic = eng.geometry().bc.periodic(axis);

  auto at = [&](int v) {
    int p[3] = {c[0], c[1], c[2]};
    p[axis] = v;
    return u_at(eng, p[0], p[1], p[2], comp);
  };

  const int v = c[axis];
  if (periodic) {
    return real_t(0.5) * (at(Box::wrap(v + 1, n)) - at(Box::wrap(v - 1, n)));
  }
  if (v == 0) return at(1) - at(0);
  if (v == n - 1) return at(n - 1) - at(n - 2);
  return real_t(0.5) * (at(v + 1) - at(v - 1));
}

}  // namespace

template <class L>
std::array<std::array<real_t, 3>, 3> velocity_gradient(const Engine<L>& eng,
                                                       int x, int y, int z) {
  std::array<std::array<real_t, 3>, 3> du{};
  for (int a = 0; a < L::D; ++a) {
    for (int b = 0; b < L::D; ++b) {
      du[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          d_u(eng, x, y, z, a, b);
    }
  }
  return du;
}

template <class L>
std::array<real_t, 3> vorticity(const Engine<L>& eng, int x, int y, int z) {
  const auto du = velocity_gradient(eng, x, y, z);
  // omega = curl u; in 2D only omega_z = dv/dx - du/dy survives.
  std::array<real_t, 3> w{};
  if constexpr (L::D == 3) {
    w[0] = du[2][1] - du[1][2];
    w[1] = du[0][2] - du[2][0];
  }
  w[2] = du[1][0] - du[0][1];
  return w;
}

template <class L>
std::array<std::array<real_t, 3>, 3> strain_rate_fd(const Engine<L>& eng,
                                                    int x, int y, int z) {
  const auto du = velocity_gradient(eng, x, y, z);
  std::array<std::array<real_t, 3>, 3> s{};
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      s[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          real_t(0.5) *
          (du[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] +
           du[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)]);
    }
  }
  return s;
}

template <class L>
std::array<std::array<real_t, 3>, 3> strain_rate_moment(const Engine<L>& eng,
                                                        int x, int y, int z) {
  // Chapman-Enskog: Pi^neq = -2 rho cs2 tau S.
  const Moments<L> m = eng.moments_at(x, y, z);
  const real_t denom = -real_t(2) * m.rho * L::cs2 * eng.tau();
  std::array<std::array<real_t, 3>, 3> s{};
  for (int p = 0; p < Moments<L>::NP; ++p) {
    const auto [a, b] = Moments<L>::pair(p);
    const real_t v = m.pi_neq(p) / denom;
    s[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = v;
    s[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)] = v;
  }
  return s;
}

template <class L>
real_t enstrophy(const Engine<L>& eng) {
  const Box& b = eng.geometry().box;
  real_t total = 0;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const auto w = vorticity(eng, x, y, z);
        total += real_t(0.5) * (w[0] * w[0] + w[1] * w[1] + w[2] * w[2]);
      }
    }
  }
  return total;
}

template <class L>
real_t dissipation(const Engine<L>& eng) {
  const Box& b = eng.geometry().box;
  const real_t two_nu = 2 * eng.viscosity();
  real_t total = 0;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const auto s = strain_rate_moment(eng, x, y, z);
        real_t ss = 0;
        for (int a = 0; a < L::D; ++a) {
          for (int c = 0; c < L::D; ++c) {
            ss += s[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)] *
                  s[static_cast<std::size_t>(a)][static_cast<std::size_t>(c)];
          }
        }
        total += two_nu * ss;
      }
    }
  }
  return total;
}

template <class L>
real_t mass_flux_x(const Engine<L>& eng, int x) {
  const Box& b = eng.geometry().box;
  real_t flux = 0;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      const Moments<L> m = eng.moments_at(x, y, z);
      flux += m.rho * m.u[0];
    }
  }
  return flux;
}

#define MLBM_ANALYSIS_INST(L)                                               \
  template std::array<std::array<real_t, 3>, 3> velocity_gradient<L>(      \
      const Engine<L>&, int, int, int);                                    \
  template std::array<real_t, 3> vorticity<L>(const Engine<L>&, int, int,  \
                                              int);                        \
  template std::array<std::array<real_t, 3>, 3> strain_rate_fd<L>(         \
      const Engine<L>&, int, int, int);                                    \
  template std::array<std::array<real_t, 3>, 3> strain_rate_moment<L>(     \
      const Engine<L>&, int, int, int);                                    \
  template real_t enstrophy<L>(const Engine<L>&);                          \
  template real_t dissipation<L>(const Engine<L>&);                        \
  template real_t mass_flux_x<L>(const Engine<L>&, int);

MLBM_ANALYSIS_INST(mlbm::D2Q9)
MLBM_ANALYSIS_INST(mlbm::D3Q19)
MLBM_ANALYSIS_INST(mlbm::D3Q15)
MLBM_ANALYSIS_INST(mlbm::D3Q27)
#undef MLBM_ANALYSIS_INST

}  // namespace mlbm::analysis
