#include "io/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace mlbm {

namespace {
constexpr std::uint64_t kMagic = 0x4d4c424d43503031ULL;  // "MLBMCP01"
}

template <class L>
void save_checkpoint(const Engine<L>& eng, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);

  const Box& b = eng.geometry().box;
  const std::int32_t header[5] = {L::D, L::Q, b.nx, b.ny, b.nz};
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(header), sizeof(header));

  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const Moments<L> m = eng.moments_at(x, y, z);
        out.write(reinterpret_cast<const char*>(&m.rho), sizeof(real_t));
        out.write(reinterpret_cast<const char*>(m.u.data()),
                  sizeof(real_t) * L::D);
        out.write(reinterpret_cast<const char*>(m.pi.data()),
                  sizeof(real_t) * Moments<L>::NP);
      }
    }
  }
  if (!out) throw std::runtime_error("save_checkpoint: write failed: " + path);
}

template <class L>
void load_checkpoint(Engine<L>& eng, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);

  std::uint64_t magic = 0;
  std::int32_t header[5] = {};
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  const Box& b = eng.geometry().box;
  if (magic != kMagic || header[0] != L::D || header[2] != b.nx ||
      header[3] != b.ny || header[4] != b.nz) {
    throw std::runtime_error("load_checkpoint: incompatible checkpoint " +
                             path);
  }

  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        Moments<L> m;
        in.read(reinterpret_cast<char*>(&m.rho), sizeof(real_t));
        in.read(reinterpret_cast<char*>(m.u.data()), sizeof(real_t) * L::D);
        in.read(reinterpret_cast<char*>(m.pi.data()),
                sizeof(real_t) * Moments<L>::NP);
        eng.impose(x, y, z, m);
      }
    }
  }
  if (!in) throw std::runtime_error("load_checkpoint: truncated file " + path);
}

template void save_checkpoint<D2Q9>(const Engine<D2Q9>&, const std::string&);
template void save_checkpoint<D3Q19>(const Engine<D3Q19>&, const std::string&);
template void save_checkpoint<D3Q27>(const Engine<D3Q27>&, const std::string&);
template void save_checkpoint<D3Q15>(const Engine<D3Q15>&, const std::string&);
template void load_checkpoint<D2Q9>(Engine<D2Q9>&, const std::string&);
template void load_checkpoint<D3Q19>(Engine<D3Q19>&, const std::string&);
template void load_checkpoint<D3Q27>(Engine<D3Q27>&, const std::string&);
template void load_checkpoint<D3Q15>(Engine<D3Q15>&, const std::string&);

}  // namespace mlbm
