file(REMOVE_RECURSE
  "../bench/fig2_d2q9"
  "../bench/fig2_d2q9.pdb"
  "CMakeFiles/fig2_d2q9.dir/fig2_d2q9.cpp.o"
  "CMakeFiles/fig2_d2q9.dir/fig2_d2q9.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_d2q9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
