// Structured fleet telemetry: what happened to every job and every device.
//
// The report is the fleet's contract surface: the chaos bench gates on it
// (zero lost jobs, bit-identical fields, seed-reproducible recovery trace)
// and operators read its JSON. `describe()` is the canonical text rendering —
// two same-seed runs must produce equal strings, so it contains only modeled
// (deterministic) quantities, never wall-clock readings.
#pragma once

#include <string>
#include <vector>

#include "fleet/error.hpp"
#include "fleet/job.hpp"

namespace mlbm::fleet {

enum class LadderAction {
  kRetry,          ///< backoff + rollback retry on the same device
  kMigrate,        ///< checkpoint-restore onto another device
  kShrinkQuantum,  ///< halve the scheduling quantum
  kPark,           ///< give up: job parked with a FleetError kind
};

const char* to_string(LadderAction a);

/// One watchdog/degradation decision, in the order taken.
struct LadderEvent {
  int job = -1;
  long tick = 0;
  LadderAction action = LadderAction::kRetry;
  std::string cause;  ///< "deadline", "device-loss", "unrecoverable", ...
  int from_device = -1;
  int to_device = -1;  ///< migrate only
  int quantum = 0;     ///< quantum in force after the action
};

/// Terminal record of one job.
struct JobOutcome {
  JobSpec spec;
  JobStatus status = JobStatus::kPending;
  FleetError::Kind parked_kind = FleetError::Kind::kNone;
  std::string parked_reason;
  JobFields fields;  ///< valid when status == kCompleted

  int device = -1;  ///< device that ran the final quantum
  int retries = 0;
  int migrations = 0;
  int rollbacks = 0;
  int launch_failures = 0;
  int sentinel_trips = 0;
  long backoff_ms = 0;  ///< total modeled backoff charged to the job

  double submit_s = 0;   ///< modeled time the job was first placed
  double finish_s = -1;  ///< modeled completion time (-1 if parked)
  [[nodiscard]] double latency_s() const {
    return finish_s >= 0 ? finish_s - submit_s : -1;
  }
};

struct DeviceUtilization {
  int id = -1;
  std::string name;
  bool alive = true;
  double busy_s = 0;
  double utilization = 0;  ///< busy_s / makespan
  int jobs_completed = 0;
  int jobs_migrated_in = 0;
  int jobs_migrated_out = 0;
};

struct FleetReport {
  std::vector<JobOutcome> jobs;
  std::vector<LadderEvent> ladder;
  std::vector<DeviceUtilization> devices;
  std::string fault_trace;  ///< FleetFaultPlan::trace_string()

  double makespan_s = 0;  ///< gpusim::Timeline horizon
  double jobs_per_hour = 0;
  double latency_p50_s = 0;
  double latency_p95_s = 0;
  double latency_max_s = 0;

  int completed = 0;
  int parked = 0;
  int total_retries = 0;
  int total_migrations = 0;
  int total_rollbacks = 0;

  /// Fills the aggregate fields (counts, throughput, latency percentiles,
  /// per-device utilization shares) from jobs/devices/makespan_s.
  void finalize();

  /// Canonical deterministic rendering: summary line, one line per job, the
  /// ladder decisions, and the fleet fault trace. Equal across same-seed
  /// replays — the reproducibility gate string-compares it.
  [[nodiscard]] std::string describe() const;

  /// The full report as a JSON document (hashes as strings: uint64 does not
  /// survive a double round-trip).
  [[nodiscard]] std::string json() const;
};

}  // namespace mlbm::fleet
