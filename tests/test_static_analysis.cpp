// The static access-contract analyzer (analysis/static/): canonical engine
// contracts must analyze clean for all domain sizes, every seeded mutation
// must be killed, the contract-derived traffic must equal both perfmodel's
// closed form and the measured counters exactly, and the ghost depths the
// multi-domain decomposition exchanges must match what the contracts derive.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "analysis/static/analyzer.hpp"
#include "analysis/static/contract.hpp"
#include "analysis/static/traffic.hpp"
#include "analysis/static/verify.hpp"
#include "engines/factory.hpp"
#include "engines/mr_engine.hpp"
#include "multidev/multi_domain.hpp"
#include "perfmodel/roofline.hpp"
#include "workloads/channel.hpp"

namespace mlbm {
namespace {

constexpr real_t kTau = real_t(0.6);

Geometry box2d() { return Geometry(Box{40, 24, 1}); }
Geometry box3d() { return Geometry(Box{16, 12, 10}); }

// ---------------------------------------------------------------------------
// Canonical contracts: clean, and self-describing.
// ---------------------------------------------------------------------------

TEST(StaticAnalysis, CanonicalContractsAnalyzeClean) {
  const auto check = [](const Engine<D3Q19>& eng) {
    const auto rep = analysis::analyze(eng.access_contract());
    EXPECT_TRUE(rep.clean()) << eng.pattern_name() << ": "
                             << to_string(rep.findings.front());
  };
  check(*make_st_engine<D3Q19>(StoragePrecision::kFP64, box3d(), kTau));
  check(*make_st_engine<D3Q19>(StoragePrecision::kFP64, box3d(), kTau,
                               CollisionScheme::kBGK, 256, StreamMode::kPush));
  check(*make_aa_engine<D3Q19>(StoragePrecision::kFP64, box3d(), kTau));
  check(*make_mr_engine<D3Q19>(StoragePrecision::kFP64, box3d(), kTau,
                               Regularization::kProjective));
  MrConfig circ;
  circ.storage = MomentStorage::kCircularShift;
  check(*make_mr_engine<D3Q19>(StoragePrecision::kFP64, box3d(), kTau,
                               Regularization::kRecursive, circ));
}

TEST(StaticAnalysis, ReferenceEngineDeclaresNothing) {
  // Host engines launch no gpusim kernels; their contract is empty and the
  // analyzer accepts it without findings.
  analysis::EngineContract empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(analysis::analyze(empty).clean());
}

TEST(StaticAnalysis, ContractReflectsStreamModeAndPrecision) {
  const auto pull =
      make_st_engine<D2Q9>(StoragePrecision::kFP64, box2d(), kTau)
          ->access_contract();
  const auto push = make_st_engine<D2Q9>(StoragePrecision::kFP32, box2d(),
                                         kTau, CollisionScheme::kBGK, 256,
                                         StreamMode::kPush)
                        ->access_contract();
  EXPECT_EQ(pull.pattern, "ST");
  EXPECT_EQ(pull.elem_bytes, 8);
  EXPECT_EQ(push.pattern, "ST-push");
  EXPECT_EQ(push.elem_bytes, 4);
  // Pull: the span access is the write; push: it is the read.
  EXPECT_TRUE(pull.node_kernels.at(0).accesses.back().write);
  EXPECT_TRUE(pull.node_kernels.at(0).accesses.back().span);
  EXPECT_FALSE(push.node_kernels.at(0).accesses.front().write);
  EXPECT_TRUE(push.node_kernels.at(0).accesses.front().span);
}

// ---------------------------------------------------------------------------
// Ghost depth: contract derivation == what the decomposition exchanges.
// ---------------------------------------------------------------------------

TEST(StaticAnalysis, RequiredGhostDepthPerPattern) {
  const auto depth = [](const auto& eng) {
    return analysis::required_ghost_depth(eng->access_contract());
  };
  EXPECT_EQ(depth(make_st_engine<D2Q9>(StoragePrecision::kFP64, box2d(),
                                       kTau)),
            1);
  EXPECT_EQ(depth(make_st_engine<D2Q9>(StoragePrecision::kFP64, box2d(),
                                       kTau, CollisionScheme::kBGK, 256,
                                       StreamMode::kPush)),
            1);
  // AA's odd step reads x-1 and writes x+1: reach 1 + 1 = 2.
  EXPECT_EQ(depth(make_aa_engine<D2Q9>(StoragePrecision::kFP64, box2d(),
                                       kTau)),
            2);
  EXPECT_EQ(depth(make_mr_engine<D2Q9>(StoragePrecision::kFP64, box2d(),
                                       kTau, Regularization::kProjective)),
            1);
}

TEST(StaticAnalysis, MultiDomainExchangesTheDerivedDepth) {
  // The decomposition's ghost_depth is caller-chosen; the analyzer's derived
  // requirement must reproduce the depths the multi-domain callers use
  // (ST/MR exchange 1 plane, AA exchanges 2).
  const auto ch = Channel<D2Q9>::create(24, 6, 1, 0.8, 0.04);
  MultiDomainEngine<D2Q9> st_multi(
      ch.geo, 0.8, 2,
      [](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
        return make_st_engine<D2Q9>(StoragePrecision::kFP64, std::move(g),
                                    0.8);
      });
  EXPECT_EQ(analysis::required_ghost_depth(
                st_multi.device_engine(0).access_contract()),
            st_multi.ghost_depth());

  MultiDomainEngine<D2Q9> aa_multi(
      ch.geo, 0.8, 2,
      [](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
        return make_aa_engine<D2Q9>(StoragePrecision::kFP64, std::move(g),
                                    0.8, CollisionScheme::kBGK, 64,
                                    default_exec_mode(),
                                    /*allow_open_faces=*/true);
      },
      2);
  EXPECT_EQ(analysis::required_ghost_depth(
                aa_multi.device_engine(0).access_contract()),
            aa_multi.ghost_depth());
}

// ---------------------------------------------------------------------------
// Seeded mutations: each hazard class is caught by the matching check.
// ---------------------------------------------------------------------------

analysis::EngineContract circ_contract() {
  return analysis::mr_contract(analysis::make_lattice_desc<D3Q19>(), 8,
                               /*projective=*/true, /*single_buffer=*/true,
                               32, 8, 1);
}

TEST(StaticAnalysis, MutationFindingClasses) {
  const auto finding_of = [](analysis::EngineContract c,
                             const std::string& mutation) {
    analysis::apply_mutation(c, mutation);
    return analysis::analyze(c);
  };
  // Circular-shift ring discipline.
  EXPECT_TRUE(
      finding_of(circ_contract(), "shifted-ring-window-up").has("ring-stale"));
  EXPECT_TRUE(finding_of(circ_contract(), "shifted-ring-window-down")
                  .has("ring-clobber"));
  EXPECT_TRUE(finding_of(circ_contract(), "short-write-behind")
                  .has("ring-dead-read"));
  EXPECT_TRUE(finding_of(circ_contract(), "dropped-barrier-phase")
                  .has("ring-barrier"));
  EXPECT_TRUE(
      finding_of(circ_contract(), "shrunk-cross-halo").has("ring-halo"));
  EXPECT_TRUE(
      finding_of(circ_contract(), "shrunk-shared-ring").has("ring-capacity"));
  EXPECT_TRUE(
      finding_of(circ_contract(), "shrunk-ghost-depth").has("ghost-depth"));
  EXPECT_TRUE(
      finding_of(circ_contract(), "span-overrun").has("span-bounds"));
  // AA's in-place safety: flipping one gather offset breaks reader==writer.
  const auto aa = analysis::aa_contract(analysis::make_lattice_desc<D2Q9>(), 8);
  EXPECT_TRUE(finding_of(aa, "skewed-inplace-gather").has("node-race"));
  EXPECT_TRUE(finding_of(aa, "shrunk-ghost-depth").has("ghost-depth"));
  // Unknown / inapplicable names are typed errors, not silent no-ops.
  auto st = analysis::st_contract(analysis::make_lattice_desc<D2Q9>(), 8,
                                  /*push=*/false);
  EXPECT_THROW(analysis::apply_mutation(st, "dropped-barrier-phase"),
               ConfigError);
}

TEST(StaticAnalysis, LiveEngineMutationIsVisibleInItsContract) {
  // The MR engine's dynamic FaultMutation hook (used to validate the
  // sanitizer) flows into access_contract(), so the static analyzer flags
  // the same seeded bug the dynamic checks catch — without stepping.
  MrConfig circ;
  circ.storage = MomentStorage::kCircularShift;
  MrEngine<D3Q19, double> eng(box3d(), kTau, Regularization::kProjective,
                              circ);
  EXPECT_TRUE(analysis::analyze(eng.access_contract()).clean());
  MrEngine<D3Q19, double>::FaultMutation m;
  m.skip_phase_sync = true;
  eng.set_fault_mutation_for_test(m);
  EXPECT_TRUE(analysis::analyze(eng.access_contract()).has("ring-barrier"));
  m.skip_phase_sync = false;
  m.ring_shift_bias = 1;
  eng.set_fault_mutation_for_test(m);
  EXPECT_TRUE(analysis::analyze(eng.access_contract()).has("ring-stale"));
}

// ---------------------------------------------------------------------------
// Traffic: derived == perfmodel == measured.
// ---------------------------------------------------------------------------

TEST(StaticAnalysis, DerivedBytesPerFlupMatchesPerfmodel) {
  const auto lat = perf::lattice_info<D3Q19>();
  const auto st = analysis::st_contract(
      analysis::make_lattice_desc<D3Q19>(), 8, /*push=*/false);
  EXPECT_EQ(analysis::derived_bytes_per_flup(st),
            perf::bytes_per_flup(perf::Pattern::kST, lat, 8.0));
  const auto aa =
      analysis::aa_contract(analysis::make_lattice_desc<D3Q19>(), 4);
  EXPECT_EQ(analysis::derived_bytes_per_flup(aa),
            perf::aa_bytes_per_flup(lat, 4.0));
  const auto mr = analysis::mr_contract(
      analysis::make_lattice_desc<D3Q19>(), 8, /*projective=*/false,
      /*single_buffer=*/false, 32, 8, 1);
  EXPECT_EQ(analysis::derived_bytes_per_flup(mr),
            perf::bytes_per_flup(perf::Pattern::kMRR, lat, 8.0));
}

TEST(StaticAnalysis, DerivedStepTrafficMatchesMeasuredCounters) {
  // Spot probes (the full matrix is the mlbm-verify gate): one node-kernel
  // engine with a parity cycle and one ring engine with ragged tiles.
  const auto probe = [](Engine<D3Q19>& eng, int steps) {
    const auto c = eng.access_contract();
    const Box& b = eng.geometry().box;
    eng.initialize([](int, int, int) {
      return equilibrium_moments<D3Q19>(real_t(1), {});
    });
    eng.set_unique_read_tracking(true);
    for (int s = 0; s < steps; ++s) {
      eng.clear_unique_reads();
      const auto before = eng.profiler()->total_traffic();
      eng.step();
      const auto d = eng.profiler()->total_traffic() - before;
      const auto want = analysis::derive_step_traffic(c, b.nx, b.ny, b.nz, s);
      EXPECT_EQ(d.bytes_read, want.bytes_read) << "step " << s;
      EXPECT_EQ(d.bytes_written, want.bytes_written) << "step " << s;
      EXPECT_EQ(d.reads, want.reads) << "step " << s;
      EXPECT_EQ(d.writes, want.writes) << "step " << s;
      EXPECT_EQ(eng.unique_read_bytes(), want.unique_read_bytes)
          << "step " << s;
    }
  };
  auto aa = make_aa_engine<D3Q19>(StoragePrecision::kFP64, box3d(), kTau);
  probe(*aa, 2);
  MrConfig circ;
  circ.storage = MomentStorage::kCircularShift;
  auto mr = make_mr_engine<D3Q19>(StoragePrecision::kFP32, box3d(), kTau,
                                  Regularization::kProjective, circ);
  probe(*mr, 2);
}

// ---------------------------------------------------------------------------
// The full verify matrix: clean, and 100% mutation kill.
// ---------------------------------------------------------------------------

TEST(StaticAnalysis, VerifyMatrixCleanAndAllMutantsKilled) {
  const auto rep = analysis::run_verify_matrix();
  EXPECT_TRUE(rep.ok()) << to_string(rep);
  EXPECT_GT(rep.mutations.size(), 0u);
  EXPECT_EQ(rep.mutations_killed(), static_cast<int>(rep.mutations.size()));
}

TEST(StaticAnalysis, VerifyCatchesASeededMutation) {
  analysis::VerifyOptions opt;
  opt.mutate = "shifted-ring-window-up";
  const auto rep = analysis::run_verify_matrix(opt);
  EXPECT_FALSE(rep.ok());
}

}  // namespace
}  // namespace mlbm
