// mlbm_proxy — the configurable proxy application.
//
// The paper evaluates "CUDA and HIP proxy applications" that simulate
// channel flow with each propagation pattern; this driver is that artifact
// for the simulator: pick a lattice, pattern, workload, size and (optional)
// slab decomposition from the command line, run, and get a physics summary
// plus the traffic/footprint report of the run.
//
//   ./examples/mlbm_proxy --lattice d2q9 --pattern mr-p --workload channel
//                         --nx 96 --ny 32 --steps 2000 [--devices 2]
//                         [--tau 0.8] [--umax 0.05] [--vtk out.vtk]
//                         [--save state.ckpt] [--load state.ckpt]
//
// Patterns: st | st-push | aa | ep | mr-p | mr-r | ref
// Workloads: channel | cavity | taylor-green | shear-layer
// Lattices: d2q9 | d3q19 | d3q15 | d3q27
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "engines/aa_engine.hpp"
#include "engines/ep_engine.hpp"
#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "io/checkpoint.hpp"
#include "io/vtk_writer.hpp"
#include "multidev/multi_domain.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"
#include "workloads/cavity.hpp"
#include "workloads/channel.hpp"
#include "workloads/shear_layer.hpp"
#include "workloads/taylor_green.hpp"

namespace {

using namespace mlbm;

template <class L>
std::unique_ptr<Engine<L>> make_engine(const std::string& pattern,
                                       Geometry geo, real_t tau) {
  const MrConfig mr_cfg = L::D == 2 ? MrConfig{32, 1, 4} : MrConfig{8, 8, 1};
  if (pattern == "st") return std::make_unique<StEngine<L>>(std::move(geo), tau);
  if (pattern == "st-push") {
    return std::make_unique<StEngine<L>>(std::move(geo), tau,
                                         CollisionScheme::kBGK, 256,
                                         StreamMode::kPush);
  }
  if (pattern == "aa") return std::make_unique<AaEngine<L>>(std::move(geo), tau);
  if (pattern == "ep") return std::make_unique<EpEngine<L>>(std::move(geo), tau);
  if (pattern == "mr-p") {
    return std::make_unique<MrEngine<L>>(std::move(geo), tau,
                                         Regularization::kProjective, mr_cfg);
  }
  if (pattern == "mr-r") {
    return std::make_unique<MrEngine<L>>(std::move(geo), tau,
                                         Regularization::kRecursive, mr_cfg);
  }
  if (pattern == "ref") {
    return std::make_unique<ReferenceEngine<L>>(std::move(geo), tau,
                                                CollisionScheme::kBGK);
  }
  throw std::invalid_argument("unknown --pattern " + pattern);
}

template <class L>
int run(const Cli& cli) {
  const std::string pattern = cli.get("pattern", "mr-p");
  const std::string workload = cli.get("workload", "channel");
  const int nx = cli.get_int("nx", L::D == 2 ? 96 : 48, 1);
  const int ny = cli.get_int("ny", 32, 1);
  const int nz = cli.get_int("nz", L::D == 2 ? 1 : 16, 1);
  const real_t tau = cli.get_double("tau", 0.8);
  const real_t umax = cli.get_double("umax", 0.05);
  const int steps = cli.get_int("steps", 1000, 1);
  const int devices = cli.get_int("devices", 1, 1);

  // Build the workload geometry + attach hooks.
  Geometry geo(Box{1, 1, 1});
  std::function<void(Engine<L>&)> attach;
  if (workload == "channel") {
    auto ch = std::make_shared<Channel<L>>(
        Channel<L>::create(nx, ny, nz, tau, umax));
    geo = ch->geo;
    attach = [ch](Engine<L>& e) { ch->attach(e); };
  } else if (workload == "cavity") {
    auto cav = std::make_shared<LidDrivenCavity<L>>(
        LidDrivenCavity<L>::create(nx, umax));
    geo = cav->geo;
    attach = [cav](Engine<L>& e) { cav->attach(e); };
  } else if (workload == "taylor-green") {
    auto tg = std::make_shared<TaylorGreen<L>>(
        TaylorGreen<L>::create(nx, umax, L::D == 2 ? 1 : nz));
    geo = tg->geo;
    attach = [tg](Engine<L>& e) { tg->attach(e); };
  } else if (workload == "shear-layer") {
    if constexpr (L::D == 2 || L::Q == 19) {
      auto sl = std::make_shared<DoubleShearLayer<L>>(
          DoubleShearLayer<L>::create(nx, umax));
      geo = sl->geo;
      attach = [sl](Engine<L>& e) { sl->attach(e); };
    } else {
      throw std::invalid_argument("shear-layer supports d2q9/d3q19 only");
    }
  } else {
    throw std::invalid_argument("unknown --workload " + workload);
  }

  // Engine (optionally decomposed into slabs).
  std::unique_ptr<Engine<L>> eng;
  if (devices > 1) {
    // In-place engines scatter one plane past the node they execute on, so
    // their slabs need depth-2 ghosts (see SlabInfo::ghost_depth).
    const int ghost_depth = (pattern == "aa" || pattern == "ep") ? 2 : 1;
    eng = std::make_unique<MultiDomainEngine<L>>(
        geo, tau, devices,
        [&](Geometry g, int) {
          return make_engine<L>(pattern, std::move(g), tau);
        },
        ghost_depth);
  } else {
    eng = make_engine<L>(pattern, geo, tau);
  }
  attach(*eng);

  if (cli.has("load")) load_checkpoint(*eng, cli.get("load", ""));

  std::printf("mlbm_proxy: %s | %s | %s | %dx%dx%d | tau=%.3f | %d steps"
              "%s\n",
              L::name(), eng->pattern_name(), workload.c_str(), geo.box.nx,
              geo.box.ny, geo.box.nz, tau, steps,
              devices > 1 ? (" | " + std::to_string(devices) + " devices").c_str()
                          : "");

  Timer timer;
  eng->run(steps);
  const double elapsed = timer.elapsed_s();
  const double mlups =
      static_cast<double>(geo.box.cells()) * steps / elapsed / 1e6;

  // Physics summary: bulk statistics of the final state.
  real_t rho_min = 1e30, rho_max = -1e30, umax_seen = 0;
  for (int z = 0; z < geo.box.nz; ++z) {
    for (int y = 0; y < geo.box.ny; ++y) {
      for (int x = 0; x < geo.box.nx; ++x) {
        const auto m = eng->moments_at(x, y, z);
        rho_min = std::min(rho_min, m.rho);
        rho_max = std::max(rho_max, m.rho);
        for (int a = 0; a < L::D; ++a) {
          umax_seen = std::max(umax_seen,
                               std::abs(m.u[static_cast<std::size_t>(a)]));
        }
      }
    }
  }
  std::printf("host throughput: %.2f MLUPS (%.2fs)\n", mlups, elapsed);
  std::printf("state: rho in [%.6f, %.6f], max |u| = %.5f\n", rho_min,
              rho_max, umax_seen);
  std::printf("footprint: %.2f MiB simulation state\n",
              eng->state_bytes() / 1048576.0);
  if (eng->profiler() != nullptr) {
    const auto t = eng->profiler()->total_traffic();
    std::printf("simulated DRAM traffic: %.1f MiB (%.1f B per node-update)\n",
                t.bytes_total() / 1048576.0,
                static_cast<double>(t.bytes_total()) /
                    (static_cast<double>(geo.box.cells()) * eng->time()));
  }
  if (auto* multi = dynamic_cast<MultiDomainEngine<L>*>(eng.get())) {
    std::printf("ghost exchange: %llu values (%.2f MiB) over the run\n",
                static_cast<unsigned long long>(multi->exchanged_values_total()),
                multi->exchanged_values_total() * sizeof(real_t) / 1048576.0);
  }

  if (cli.has("save")) {
    save_checkpoint(*eng, cli.get("save", "state.ckpt"));
    std::printf("saved %s\n", cli.get("save", "state.ckpt").c_str());
  }
  if (cli.has("vtk")) {
    write_vtk(*eng, cli.get("vtk", "proxy.vtk"));
    std::printf("wrote %s\n", cli.get("vtk", "proxy.vtk").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const mlbm::Cli cli(argc, argv);
  cli.reject_unknown({"devices", "lattice", "load", "nx", "ny", "nz", "pattern", "save", "steps", "tau", "umax", "vtk", "workload"});
  const std::string lattice = cli.get("lattice", "d2q9");
  try {
    if (lattice == "d2q9") return run<mlbm::D2Q9>(cli);
    if (lattice == "d3q19") return run<mlbm::D3Q19>(cli);
    if (lattice == "d3q15") return run<mlbm::D3Q15>(cli);
    if (lattice == "d3q27") return run<mlbm::D3Q27>(cli);
    std::fprintf(stderr, "unknown --lattice %s\n", lattice.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mlbm_proxy: %s\n", e.what());
  }
  return 1;
}
