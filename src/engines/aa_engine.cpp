#include "engines/aa_engine.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/lanes.hpp"
#include "core/regularization.hpp"
#include "engines/streaming.hpp"
#include "gpusim/launch.hpp"

namespace mlbm {

template <class L, class ST>
AaEngine<L, ST>::AaEngine(Geometry geo, real_t tau, CollisionScheme scheme,
                          int threads_per_block, ExecMode exec,
                          bool allow_open_faces)
    : Engine<L>(std::move(geo), tau),
      scheme_(scheme),
      threads_per_block_(threads_per_block),
      exec_(exec) {
  if (!allow_open_faces) {
    for (int axis = 0; axis < 3; ++axis) {
      for (int side = 0; side < 2; ++side) {
        if (this->geo_.bc.face[static_cast<std::size_t>(axis)][static_cast<std::size_t>(side)].type ==
            FaceBC::kOpen) {
          // Open faces need a post-step state rebuild, but mid-cycle the AA
          // state is collided-not-yet-streamed; inlet/outlet handling would
          // have to live inside the kernels. Out of scope for this baseline.
          // Slab interfaces opt out: their open faces sit behind a
          // depth-2 ghost band the per-step moment exchange re-imposes.
          throw ConfigError(
              "AaEngine: open (inlet/outlet) faces are not supported; use "
              "periodic or wall boundaries");
        }
      }
    }
  }
  sparse_ = this->geo_.sparse();
  if (sparse_) {
    const TileMap& tm = this->geo_.tiles();
    tdev_.build(tm, &prof_.counter());
    elems_ = tm.elements();
  } else {
    elems_ = this->geo_.box.cells();
  }
  const auto n =
      static_cast<std::size_t>(elems_) * static_cast<std::size_t>(L::Q);
  f_.allocate(n, &prof_.counter());
}

template <class L, class ST>
void AaEngine<L, ST>::initialize(const typename Engine<L>::InitFn& init) {
  if (swapped_phase()) {
    throw std::logic_error("AaEngine: initialize() only at even timesteps");
  }
  const Box& b = this->geo_.box;
  const bool solids = this->geo_.has_solids();
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        if (solids && this->geo_.solid(x, y, z)) continue;
        impose(x, y, z, init(x, y, z));
      }
    }
  }
}

template <class L, class ST>
Moments<L> AaEngine<L, ST>::moments_at(int x, int y, int z) const {
  if (this->geo_.has_solids() && this->geo_.solid(x, y, z)) {
    return solid_moments<L>();
  }
  const index_t cell = element(x, y, z);
  real_t f[L::Q];
  if (!swapped_phase()) {
    for (int i = 0; i < L::Q; ++i) {
      f[i] = static_cast<real_t>(f_.raw(soa(i, cell)));
    }
    return compute_moments<L>(f);
  }
  // Swapped phase: slot opposite(i) holds the post-collision f*_i of the
  // previous (even) step; un-swap and un-relax. Note the reported state is
  // the pre-collision state of one step ago — the AA cycle only has a
  // spatially consistent snapshot after odd steps.
  for (int i = 0; i < L::Q; ++i) {
    f[i] = static_cast<real_t>(f_.raw(soa(L::opposite(i), cell)));
  }
  Moments<L> m = compute_moments<L>(f);
  const real_t factor = real_t(1) - real_t(1) / this->tau_;
  if (factor != real_t(0)) {
    for (int p = 0; p < Moments<L>::NP; ++p) {
      const auto [a, b] = Moments<L>::pair(p);
      const real_t eq = m.rho * m.u[static_cast<std::size_t>(a)] *
                        m.u[static_cast<std::size_t>(b)];
      m.pi[static_cast<std::size_t>(p)] =
          eq + (m.pi[static_cast<std::size_t>(p)] - eq) / factor;
    }
  }
  return m;
}

template <class L, class ST>
void AaEngine<L, ST>::impose(int x, int y, int z, const Moments<L>& m) {
  if (this->geo_.has_solids() && this->geo_.solid(x, y, z)) return;
  const index_t cell = element(x, y, z);
  real_t pineq[Moments<L>::NP];
  if (!swapped_phase()) {
    for (int p = 0; p < Moments<L>::NP; ++p) pineq[p] = m.pi_neq(p);
    for (int i = 0; i < L::Q; ++i) {
      f_.raw(soa(i, cell)) = static_cast<ST>(
          reconstruct_projective<L>(i, m.rho, m.u.data(), pineq));
    }
    return;
  }
  // Swapped phase: store the post-collision image into the swapped slots.
  const real_t factor = real_t(1) - real_t(1) / this->tau_;
  for (int p = 0; p < Moments<L>::NP; ++p) {
    pineq[p] = factor * m.pi_neq(p);
  }
  // One scheme branch per node, not per population.
  if (scheme_ == CollisionScheme::kRecursive) {
    for (int i = 0; i < L::Q; ++i) {
      f_.raw(soa(L::opposite(i), cell)) = static_cast<ST>(
          reconstruct_recursive<L>(i, m.rho, m.u.data(), pineq));
    }
  } else {
    for (int i = 0; i < L::Q; ++i) {
      f_.raw(soa(L::opposite(i), cell)) = static_cast<ST>(
          reconstruct_projective<L>(i, m.rho, m.u.data(), pineq));
    }
  }
}

template <class L, class ST>
std::size_t AaEngine<L, ST>::state_bytes() const {
  return f_.size_bytes() + (sparse_ ? tdev_.bytes() : 0);
}

template <class L, class ST>
void AaEngine<L, ST>::ensure_records() {
  if (krec_even_ == nullptr) {
    if (sparse_) {
      // Per-tile-class records (see StEngine::ensure_records): the even/odd
      // pointers name the all-fluid launches, the mixed pointers the masked
      // ones.
      const std::string base = std::string("aa_sparse_") + L::name();
      krec_even_ = &prof_.record(base + "_even_fluid");
      krec_odd_ = &prof_.record(base + "_odd_fluid");
      krec_even_frontier_ = &prof_.record(base + "_even_fluid_frontier");
      krec_odd_frontier_ = &prof_.record(base + "_odd_fluid_frontier");
      krec_even_mixed_ = &prof_.record(base + "_even_mixed");
      krec_odd_mixed_ = &prof_.record(base + "_odd_mixed");
      krec_even_mixed_frontier_ =
          &prof_.record(base + "_even_mixed_frontier");
      krec_odd_mixed_frontier_ = &prof_.record(base + "_odd_mixed_frontier");
      krec_even_->contract = krec_even_frontier_->contract =
          krec_even_mixed_->contract = krec_even_mixed_frontier_->contract =
              "aa.even";
      krec_odd_->contract = krec_odd_frontier_->contract =
          krec_odd_mixed_->contract = krec_odd_mixed_frontier_->contract =
              "aa.odd";
      return;
    }
    krec_even_ = &prof_.record(std::string("aa_even_") + L::name());
    krec_odd_ = &prof_.record(std::string("aa_odd_") + L::name());
    krec_even_frontier_ =
        &prof_.record(std::string("aa_even_") + L::name() + "_frontier");
    krec_odd_frontier_ =
        &prof_.record(std::string("aa_odd_") + L::name() + "_frontier");
    krec_even_->contract = krec_even_frontier_->contract = "aa.even";
    krec_odd_->contract = krec_odd_frontier_->contract = "aa.odd";
  }
}

template <class L, class ST>
void AaEngine<L, ST>::do_step() {
  ensure_records();
  if (sparse_) {
    step_sparse(0, 0, /*frontier_only=*/false, nullptr);
    return;
  }
  const int nx = this->geo_.box.nx;
  if (!swapped_phase()) {
    step_even(0, nx, *krec_even_);
  } else {
    step_odd(0, nx, *krec_odd_);
  }
}

template <class L, class ST>
void AaEngine<L, ST>::step_sparse(
    int fl, int fr, bool frontier_only,
    const typename Engine<L>::FrontierDoneFn& on_frontier) {
  const bool even = !swapped_phase();
  const auto run = [&](const gpusim::GlobalArray<std::int32_t>& list,
                       const gpusim::GlobalArray<std::uint64_t>* masks,
                       int begin, int count, gpusim::KernelRecord& rec) {
    if (even) {
      step_even_tiles(list, masks, begin, count, rec);
    } else {
      step_odd_tiles(list, masks, begin, count, rec);
    }
  };
  gpusim::KernelRecord& rfl = even ? *krec_even_ : *krec_odd_;
  gpusim::KernelRecord& rflf =
      even ? *krec_even_frontier_ : *krec_odd_frontier_;
  gpusim::KernelRecord& rmx = even ? *krec_even_mixed_ : *krec_odd_mixed_;
  gpusim::KernelRecord& rmxf =
      even ? *krec_even_mixed_frontier_ : *krec_odd_mixed_frontier_;
  // The fluid and mixed launches of one step share a freshness window.
  gpusim::LaunchGroup group(prof_);
  if (fl <= 0 && fr <= 0) {
    // Monolithic step (or degenerate split: everything is frontier).
    run(tdev_.fluid, nullptr, 0, tdev_.n_fluid_tiles, rfl);
    run(tdev_.mixed, &tdev_.mask, 0, tdev_.n_mixed_tiles, rmx);
    if (frontier_only && on_frontier) on_frontier();
    return;
  }
  const TileGridInfo& g = tdev_.grid;
  const int nx = this->geo_.box.nx;
  const TileRange rf = partition_tiles(tdev_.fluid, tdev_.n_fluid_tiles,
                                       g.tdx, g.ntx, nx, fl, fr);
  const TileRange rm = partition_tiles(tdev_.mixed, tdev_.n_mixed_tiles,
                                       g.tdx, g.ntx, nx, fl, fr);
  if (rf.degenerate() || rm.degenerate()) {
    run(tdev_.fluid, nullptr, 0, tdev_.n_fluid_tiles, rfl);
    run(tdev_.mixed, &tdev_.mask, 0, tdev_.n_mixed_tiles, rmx);
    if (on_frontier) on_frontier();
    return;
  }
  // Even is node-local; odd partitions by source node and every lattice word
  // has a unique reader == writer node, so in both flavours completing the
  // frontier tiles finalizes every frontier plane (the source extension is
  // already folded into fl/fr by the caller; tiles over-cover the planes).
  run(tdev_.fluid, nullptr, 0, rf.left, rflf);
  run(tdev_.fluid, nullptr, rf.right, rf.n - rf.right, rflf);
  run(tdev_.mixed, &tdev_.mask, 0, rm.left, rmxf);
  run(tdev_.mixed, &tdev_.mask, rm.right, rm.n - rm.right, rmxf);
  if (on_frontier) on_frontier();
  run(tdev_.fluid, nullptr, rf.left, rf.right - rf.left, rfl);
  run(tdev_.mixed, &tdev_.mask, rm.left, rm.right - rm.left, rmx);
}

template <class L, class ST>
void AaEngine<L, ST>::do_step_split(
    const FrontierSpec& fs,
    const typename Engine<L>::FrontierDoneFn& on_frontier) {
  const Box& b = this->geo_.box;
  ensure_records();
  const bool even = !swapped_phase();
  // The even step is node-local (ext 0); the odd step's in-place swap
  // touches planes x-1..x+1 from source x, so finalizing [0, left) needs
  // sources [0, left] (ext 1). Disjoint source ranges touch disjoint words
  // (unique reader == writer per word), so the launches commute.
  const int ext = even ? 0 : 1;
  const int fl = fs.left > 0 ? fs.left + ext : 0;
  const int fr = fs.right > 0 ? fs.right + ext : 0;
  if (sparse_) {
    // Same plane contract; the tile partition over-covers the planes.
    if (fs.empty() || fl + fr >= b.nx) {
      step_sparse(0, 0, /*frontier_only=*/true, on_frontier);
    } else {
      step_sparse(fl, fr, /*frontier_only=*/false, on_frontier);
    }
    return;
  }
  gpusim::KernelRecord& rec = even ? *krec_even_ : *krec_odd_;
  gpusim::KernelRecord& frec = even ? *krec_even_frontier_ : *krec_odd_frontier_;
  const auto run = [&](int x0, int x1, gpusim::KernelRecord& r) {
    if (even) {
      step_even(x0, x1, r);
    } else {
      step_odd(x0, x1, r);
    }
  };
  if (fs.empty() || fl + fr >= b.nx) {
    run(0, b.nx, rec);
    if (on_frontier) on_frontier();
  } else {
    gpusim::LaunchGroup group(prof_);
    if (fl > 0) run(0, fl, frec);
    if (fr > 0) run(b.nx - fr, b.nx, frec);
    if (on_frontier) on_frontier();
    run(fl, b.nx - fr, rec);
  }
}

template <class L, class ST>
void AaEngine<L, ST>::step_even(int rx0, int rx1, gpusim::KernelRecord& rec) {
  // Node-local: read plainly, collide, write swapped. No neighbour traffic.
  // Populations whose downwind link crosses a wall receive their moving-wall
  // bounceback correction here, at write time, where the node's density is
  // thread-local — the odd step's gather may then read wall slots without
  // touching any memory another thread rewrites in place.
  const Box& b = this->geo_.box;
  const Geometry& geo = this->geo_;
  const index_t cells = b.cells();
  const real_t tau = this->tau_;
  const real_t inv_cs2 = real_t(1) / L::cs2;
  const CollisionScheme scheme = scheme_;
  gpusim::GlobalArray<ST>& f = f_;
  const bool batched = batched_io_;

  // Plane-range remap (see st_engine.cpp): the full range degenerates to the
  // flat cell index, keeping the monolithic step bit-identical.
  const auto nxr = static_cast<index_t>(rx1 - rx0);
  const index_t rcells = nxr * b.ny * b.nz;

  const int tpb = threads_per_block_;
  const auto nblocks =
      static_cast<int>((rcells + tpb - 1) / static_cast<index_t>(tpb));

  if (exec_ != ExecMode::kLanes) {
    // Flat scalar body with the collision scheme dispatched once per launch
    // (see st_engine.cpp for the rationale; the shared lambdas the lane path
    // uses cost GCC a large fraction of the loop's throughput).
    dispatch_collision(scheme, [&](auto sc) {
    gpusim::launch(
        prof_, rec, gpusim::Dim3{nblocks, 1, 1},
        gpusim::Dim3{tpb, 1, 1}, [&, cells](gpusim::BlockCtx& blk) {
          blk.for_each_thread([&](const gpusim::Dim3& tid) {
            const index_t r =
                static_cast<index_t>(blk.block_idx().x) * tpb + tid.x;
            if (r >= rcells) return;
            const int x = rx0 + static_cast<int>(r % nxr);
            const int y = static_cast<int>((r / nxr) % b.ny);
            const int z =
                static_cast<int>(r / (nxr * static_cast<index_t>(b.ny)));
            const index_t cell = b.idx(x, y, z);

            // Both the read and the (slot-swapped) write touch all Q slots
            // of one cell, so each moves as one batched span transaction.
            // Loads widen to real_t registers; stores narrow back.
            real_t fl[L::Q];
            if (batched) {
              f.template load_span_as<real_t>(cell, cells, L::Q, fl);
            } else {
              for (int i = 0; i < L::Q; ++i) {
                fl[i] = f.template load_as<real_t>(soa(i, cell));
              }
            }
            real_t rho_pre = 0;
            for (int i = 0; i < L::Q; ++i) rho_pre += fl[i];
            collide<L, decltype(sc)::value>(fl, tau);
            real_t out[L::Q];
            for (int i = 0; i < L::Q; ++i) {
              real_t v = fl[i];
              const StreamTarget t = resolve_stream<L>(geo, x, y, z, i);
              if (t.kind == StreamTarget::Kind::kBounce &&
                  t.cu_wall != real_t(0)) {
                v -= real_t(2) * L::w[static_cast<std::size_t>(i)] * rho_pre *
                     t.cu_wall * inv_cs2;
              }
              out[static_cast<std::size_t>(L::opposite(i))] = v;
            }
            if (batched) {
              f.template store_span_as<real_t>(cell, cells, L::Q, out);
            } else {
              for (int i = 0; i < L::Q; ++i) {
                f.template store_as<real_t>(soa(i, cell),
                                            out[static_cast<std::size_t>(i)]);
              }
            }
          });
        });
    });
    return;
  }
  // Node-local step: both the read and the (slot-swapped) write touch all Q
  // slots of one cell, so each moves as one batched span transaction. Loads
  // widen to real_t registers; stores narrow back to the storage type. The
  // lane path issues the identical per-node access sequence as the scalar
  // body above, just panel-interleaved.
  const auto read_own = [&, cells](index_t cell,
                                   real_t (&fl)[L::Q]) MLBM_ALWAYS_INLINE {
    if (batched) {
      f.template load_span_as<real_t>(cell, cells, L::Q, fl);
    } else {
      for (int i = 0; i < L::Q; ++i) {
        fl[i] = f.template load_as<real_t>(soa(i, cell));
      }
    }
  };
  const auto write_swapped = [&, cells](index_t cell, int x, int y, int z,
                                        const real_t (&fl)[L::Q],
                                        real_t rho_pre) MLBM_ALWAYS_INLINE {
    real_t out[L::Q];
    for (int i = 0; i < L::Q; ++i) {
      real_t v = fl[i];
      const StreamTarget t = resolve_stream<L>(geo, x, y, z, i);
      if (t.kind == StreamTarget::Kind::kBounce && t.cu_wall != real_t(0)) {
        v -= real_t(2) * L::w[static_cast<std::size_t>(i)] * rho_pre *
             t.cu_wall * inv_cs2;
      }
      out[static_cast<std::size_t>(L::opposite(i))] = v;
    }
    if (batched) {
      f.template store_span_as<real_t>(cell, cells, L::Q, out);
    } else {
      for (int i = 0; i < L::Q; ++i) {
        f.template store_as<real_t>(soa(i, cell),
                                    out[static_cast<std::size_t>(i)]);
      }
    }
  };

  gpusim::launch(
      prof_, rec, gpusim::Dim3{nblocks, 1, 1},
      gpusim::Dim3{tpb, 1, 1}, [&](gpusim::BlockCtx& blk) {
        const index_t start = static_cast<index_t>(blk.block_idx().x) * tpb;
        const index_t end = std::min(start + tpb, rcells);
        for (index_t p0 = start; p0 < end; p0 += kLaneWidth) {
          const int n = static_cast<int>(
              std::min<index_t>(kLaneWidth, end - p0));
          real_t panel[L::Q][kLaneWidth];
          real_t rho_pre[kLaneWidth];
          index_t cellv[kLaneWidth];
          for (int ln = 0; ln < n; ++ln) {
            const index_t rr = p0 + ln;
            const int x = rx0 + static_cast<int>(rr % nxr);
            const int y = static_cast<int>((rr / nxr) % b.ny);
            const int z = static_cast<int>(
                rr / (nxr * static_cast<index_t>(b.ny)));
            cellv[ln] = b.idx(x, y, z);
            real_t fl[L::Q];
            read_own(cellv[ln], fl);
            real_t r = 0;
            for (int i = 0; i < L::Q; ++i) r += fl[i];
            rho_pre[ln] = r;
            for (int i = 0; i < L::Q; ++i) panel[i][ln] = fl[i];
          }
          collide_lanes<L, kLaneWidth>(scheme, panel, n, tau);
          for (int ln = 0; ln < n; ++ln) {
            const index_t rr = p0 + ln;
            const int x = rx0 + static_cast<int>(rr % nxr);
            const int y = static_cast<int>((rr / nxr) % b.ny);
            const int z = static_cast<int>(
                rr / (nxr * static_cast<index_t>(b.ny)));
            real_t fl[L::Q];
            for (int i = 0; i < L::Q; ++i) fl[i] = panel[i][ln];
            write_swapped(cellv[ln], x, y, z, fl, rho_pre[ln]);
          }
        }
      });
}

template <class L, class ST>
void AaEngine<L, ST>::step_odd(int rx0, int rx1, gpusim::KernelRecord& rec) {
  // Gather from the upwind neighbours' swapped slots (completing the
  // previous stream), collide, scatter into the downwind neighbours' plain
  // slots (pre-streaming the next step). Each slot has a unique
  // reader == writer thread, so the update is race-free in place — and
  // because word (j, m) is gathered AND scattered only by node m - c_j,
  // plane-range launches touch disjoint word sets (split is exact).
  const Box& b = this->geo_.box;
  const Geometry& geo = this->geo_;
  const real_t tau = this->tau_;
  const real_t inv_cs2 = real_t(1) / L::cs2;
  const CollisionScheme scheme = scheme_;
  gpusim::GlobalArray<ST>& f = f_;

  const auto nxr = static_cast<index_t>(rx1 - rx0);
  const index_t rcells = nxr * b.ny * b.nz;

  const int tpb = threads_per_block_;
  const auto nblocks =
      static_cast<int>((rcells + tpb - 1) / static_cast<index_t>(tpb));

  if (exec_ != ExecMode::kLanes) {
    // Flat scalar body, scheme dispatched once per launch (same rationale as
    // the even step).
    dispatch_collision(scheme, [&](auto sc) {
    gpusim::launch(
        prof_, rec, gpusim::Dim3{nblocks, 1, 1},
        gpusim::Dim3{tpb, 1, 1}, [&](gpusim::BlockCtx& blk) {
          blk.for_each_thread([&](const gpusim::Dim3& tid) {
            const index_t r =
                static_cast<index_t>(blk.block_idx().x) * tpb + tid.x;
            if (r >= rcells) return;
            const int x = rx0 + static_cast<int>(r % nxr);
            const int y = static_cast<int>((r / nxr) % b.ny);
            const int z =
                static_cast<int>(r / (nxr * static_cast<index_t>(b.ny)));
            const index_t cell = b.idx(x, y, z);

            // Gather f_i(x, t) = f*_i(x - c_i, t-1), stored swapped. Wall
            // links read this node's own swapped slot i, whose moving-wall
            // correction the even step already applied at write time.
            real_t fl[L::Q];
            for (int i = 0; i < L::Q; ++i) {
              const StreamTarget t =
                  resolve_stream<L>(geo, x, y, z, L::opposite(i));
              if (t.kind == StreamTarget::Kind::kInterior) {
                fl[i] = f.template load_as<real_t>(
                    soa(L::opposite(i), b.idx(t.x, t.y, t.z)));
              } else {
                fl[i] = f.template load_as<real_t>(soa(i, cell));
              }
            }
            real_t rho_now = 0;
            for (int i = 0; i < L::Q; ++i) rho_now += fl[i];
            collide<L, decltype(sc)::value>(fl, tau);
            // Scatter f*_i(x, t) into slot i of x + c_i.
            for (int i = 0; i < L::Q; ++i) {
              const StreamTarget t = resolve_stream<L>(geo, x, y, z, i);
              if (t.kind == StreamTarget::Kind::kInterior) {
                f.template store_as<real_t>(soa(i, b.idx(t.x, t.y, t.z)),
                                            fl[i]);
              } else {
                // Wall: bounce back into this node's own plain slot
                // opposite(i), where the next even step reads it directly.
                f.template store_as<real_t>(
                    soa(L::opposite(i), cell),
                    fl[i] - real_t(2) * L::w[static_cast<std::size_t>(i)] *
                                rho_now * t.cu_wall * inv_cs2);
              }
            }
          });
        });
    });
    return;
  }
  // Gathers and scatters touch Q different cells per node, so the odd step
  // stays on scalar load/store (no uniform stride to batch).
  //
  // Gather f_i(x, t) = f*_i(x - c_i, t-1), stored swapped. Wall links read
  // this node's own swapped slot i, whose moving-wall correction the even
  // step already applied at write time.
  const auto gather = [&](index_t cell, int x, int y, int z,
                          real_t (&fl)[L::Q]) MLBM_ALWAYS_INLINE {
    for (int i = 0; i < L::Q; ++i) {
      const StreamTarget t = resolve_stream<L>(geo, x, y, z, L::opposite(i));
      if (t.kind == StreamTarget::Kind::kInterior) {
        fl[i] = f.template load_as<real_t>(
            soa(L::opposite(i), b.idx(t.x, t.y, t.z)));
      } else {
        fl[i] = f.template load_as<real_t>(soa(i, cell));
      }
    }
  };
  // Scatter f*_i(x, t) into slot i of x + c_i.
  const auto scatter = [&](index_t cell, int x, int y, int z,
                           const real_t (&fl)[L::Q],
                           real_t rho_now) MLBM_ALWAYS_INLINE {
    for (int i = 0; i < L::Q; ++i) {
      const StreamTarget t = resolve_stream<L>(geo, x, y, z, i);
      if (t.kind == StreamTarget::Kind::kInterior) {
        f.template store_as<real_t>(soa(i, b.idx(t.x, t.y, t.z)), fl[i]);
      } else {
        // Wall: bounce back into this node's own plain slot opposite(i),
        // where the next even step reads it directly.
        f.template store_as<real_t>(
            soa(L::opposite(i), cell),
            fl[i] - real_t(2) * L::w[static_cast<std::size_t>(i)] * rho_now *
                        t.cu_wall * inv_cs2);
      }
    }
  };

  {
    // Panel reordering of the in-place update is exact: every lattice word
    // has a unique reader == writer node, so only each node's own
    // gather-before-scatter order matters, which the panel preserves.
    gpusim::launch(
        prof_, rec, gpusim::Dim3{nblocks, 1, 1},
        gpusim::Dim3{tpb, 1, 1}, [&](gpusim::BlockCtx& blk) {
          const index_t start = static_cast<index_t>(blk.block_idx().x) * tpb;
          const index_t end = std::min(start + tpb, rcells);
          for (index_t p0 = start; p0 < end; p0 += kLaneWidth) {
            const int n = static_cast<int>(
                std::min<index_t>(kLaneWidth, end - p0));
            real_t panel[L::Q][kLaneWidth];
            real_t rho_now[kLaneWidth];
            index_t cellv[kLaneWidth];
            for (int ln = 0; ln < n; ++ln) {
              const index_t rr = p0 + ln;
              const int x = rx0 + static_cast<int>(rr % nxr);
              const int y = static_cast<int>((rr / nxr) % b.ny);
              const int z = static_cast<int>(
                  rr / (nxr * static_cast<index_t>(b.ny)));
              cellv[ln] = b.idx(x, y, z);
              real_t fl[L::Q];
              gather(cellv[ln], x, y, z, fl);
              real_t r = 0;
              for (int i = 0; i < L::Q; ++i) r += fl[i];
              rho_now[ln] = r;
              for (int i = 0; i < L::Q; ++i) panel[i][ln] = fl[i];
            }
            collide_lanes<L, kLaneWidth>(scheme, panel, n, tau);
            for (int ln = 0; ln < n; ++ln) {
              const index_t rr = p0 + ln;
              const int x = rx0 + static_cast<int>(rr % nxr);
              const int y = static_cast<int>((rr / nxr) % b.ny);
              const int z = static_cast<int>(
                  rr / (nxr * static_cast<index_t>(b.ny)));
              real_t fl[L::Q];
              for (int i = 0; i < L::Q; ++i) fl[i] = panel[i][ln];
              scatter(cellv[ln], x, y, z, fl, rho_now[ln]);
            }
          }
        });
  }
}

template <class L, class ST>
void AaEngine<L, ST>::step_even_tiles(
    const gpusim::GlobalArray<std::int32_t>& list,
    const gpusim::GlobalArray<std::uint64_t>* masks, int begin, int count,
    gpusim::KernelRecord& rec) {
  if (count <= 0) return;
  const Geometry& geo = this->geo_;
  const TileGridInfo g = tdev_.grid;
  const index_t elems = elems_;
  const real_t tau = this->tau_;
  const real_t inv_cs2 = real_t(1) / L::cs2;
  const CollisionScheme scheme = scheme_;
  gpusim::GlobalArray<ST>& f = f_;
  const bool batched = batched_io_;
  const int tpb = threads_per_block_;
  const int nblocks = (count + tpb - 1) / tpb;

  // One thread per tile. The even step is node-local, so only the tile's own
  // slot is needed — one int32 load instead of the odd step's full stash.
  dispatch_collision(scheme, [&](auto sc) {
    gpusim::launch(
        prof_, rec, gpusim::Dim3{nblocks, 1, 1}, gpusim::Dim3{tpb, 1, 1},
        [&](gpusim::BlockCtx& blk) {
          blk.for_each_thread([&](const gpusim::Dim3& tid) {
            const index_t r =
                static_cast<index_t>(blk.block_idx().x) * tpb + tid.x;
            if (r >= static_cast<index_t>(count)) return;
            const std::int32_t tile = list.load(static_cast<index_t>(begin) + r);
            const std::uint64_t occ =
                masks != nullptr ? masks->load(static_cast<index_t>(begin) + r)
                                 : ~std::uint64_t{0};
            const int tx = tile % g.ntx;
            const int ty = (tile / g.ntx) % g.nty;
            const int tz = tile / (g.ntx * g.nty);
            const index_t own_base =
                static_cast<index_t>(tdev_.slots.load(tile)) * TileMap::kSlots;
            for (int local = 0; local < TileMap::kSlots; ++local) {
              if (!(occ >> local & 1ull)) continue;
              const int x = tx * g.tdx + local % g.tdx;
              const int y = ty * g.tdy + (local / g.tdx) % g.tdy;
              const int z = tz * g.tdz + local / (g.tdx * g.tdy);
              const index_t elem = own_base + local;
              real_t fl[L::Q];
              if (batched) {
                f.template load_span_as<real_t>(elem, elems, L::Q, fl);
              } else {
                for (int i = 0; i < L::Q; ++i) {
                  fl[i] = f.template load_as<real_t>(soa(i, elem));
                }
              }
              real_t rho_pre = 0;
              for (int i = 0; i < L::Q; ++i) rho_pre += fl[i];
              collide<L, decltype(sc)::value>(fl, tau);
              real_t out[L::Q];
              for (int i = 0; i < L::Q; ++i) {
                real_t v = fl[i];
                const StreamTarget t = resolve_stream<L>(geo, x, y, z, i);
                if (t.kind == StreamTarget::Kind::kBounce &&
                    t.cu_wall != real_t(0)) {
                  v -= real_t(2) * L::w[static_cast<std::size_t>(i)] *
                       rho_pre * t.cu_wall * inv_cs2;
                }
                out[static_cast<std::size_t>(L::opposite(i))] = v;
              }
              if (batched) {
                f.template store_span_as<real_t>(elem, elems, L::Q, out);
              } else {
                for (int i = 0; i < L::Q; ++i) {
                  f.template store_as<real_t>(soa(i, elem),
                                              out[static_cast<std::size_t>(i)]);
                }
              }
            }
          });
        });
  });
}

template <class L, class ST>
void AaEngine<L, ST>::step_odd_tiles(
    const gpusim::GlobalArray<std::int32_t>& list,
    const gpusim::GlobalArray<std::uint64_t>* masks, int begin, int count,
    gpusim::KernelRecord& rec) {
  if (count <= 0) return;
  const Geometry& geo = this->geo_;
  const TileGridInfo g = tdev_.grid;
  const bool is3d = geo.box.nz > 1;
  const real_t tau = this->tau_;
  const real_t inv_cs2 = real_t(1) / L::cs2;
  const CollisionScheme scheme = scheme_;
  gpusim::GlobalArray<ST>& f = f_;
  const int tpb = threads_per_block_;
  const int nblocks = (count + tpb - 1) / tpb;

  // One thread per tile; the in-place gather/scatter crosses tile borders,
  // so the full neighbour-slot stash is loaded. Wall and solid links read
  // and write this node's own slots exactly as the dense odd step does —
  // resolve_stream turns solid destinations into (zero-velocity) bounces.
  dispatch_collision(scheme, [&](auto sc) {
    gpusim::launch(
        prof_, rec, gpusim::Dim3{nblocks, 1, 1}, gpusim::Dim3{tpb, 1, 1},
        [&](gpusim::BlockCtx& blk) {
          blk.for_each_thread([&](const gpusim::Dim3& tid) {
            const index_t r =
                static_cast<index_t>(blk.block_idx().x) * tpb + tid.x;
            if (r >= static_cast<index_t>(count)) return;
            const std::int32_t tile = list.load(static_cast<index_t>(begin) + r);
            const std::uint64_t occ =
                masks != nullptr ? masks->load(static_cast<index_t>(begin) + r)
                                 : ~std::uint64_t{0};
            const int tx = tile % g.ntx;
            const int ty = (tile / g.ntx) % g.nty;
            const int tz = tile / (g.ntx * g.nty);
            std::int32_t stash[27];
            load_tile_stash(tdev_.slots, g, tx, ty, tz, is3d, stash);
            const index_t own_base =
                static_cast<index_t>(stash[13]) * TileMap::kSlots;
            for (int local = 0; local < TileMap::kSlots; ++local) {
              if (!(occ >> local & 1ull)) continue;
              const int x = tx * g.tdx + local % g.tdx;
              const int y = ty * g.tdy + (local / g.tdx) % g.tdy;
              const int z = tz * g.tdz + local / (g.tdx * g.tdy);
              const index_t elem = own_base + local;
              // Gather f_i(x, t) = f*_i(x - c_i, t-1), stored swapped; wall
              // links read this node's own swapped slot i.
              real_t fl[L::Q];
              for (int i = 0; i < L::Q; ++i) {
                const StreamTarget t =
                    resolve_stream<L>(geo, x, y, z, L::opposite(i));
                if (t.kind == StreamTarget::Kind::kInterior) {
                  const index_t ne =
                      stash_elem(stash, g, tx, ty, tz, t.x, t.y, t.z);
                  fl[i] = f.template load_as<real_t>(
                      soa(L::opposite(i), ne));
                } else {
                  fl[i] = f.template load_as<real_t>(soa(i, elem));
                }
              }
              real_t rho_now = 0;
              for (int i = 0; i < L::Q; ++i) rho_now += fl[i];
              collide<L, decltype(sc)::value>(fl, tau);
              // Scatter f*_i(x, t) into slot i of x + c_i; wall links bounce
              // back into this node's own plain slot opposite(i).
              for (int i = 0; i < L::Q; ++i) {
                const StreamTarget t = resolve_stream<L>(geo, x, y, z, i);
                if (t.kind == StreamTarget::Kind::kInterior) {
                  const index_t ne =
                      stash_elem(stash, g, tx, ty, tz, t.x, t.y, t.z);
                  f.template store_as<real_t>(soa(i, ne), fl[i]);
                } else {
                  f.template store_as<real_t>(
                      soa(L::opposite(i), elem),
                      fl[i] - real_t(2) * L::w[static_cast<std::size_t>(i)] *
                                  rho_now * t.cu_wall * inv_cs2);
                }
              }
            }
          });
        });
  });
}

template class AaEngine<D2Q9, double>;
template class AaEngine<D3Q19, double>;
template class AaEngine<D3Q27, double>;
template class AaEngine<D3Q15, double>;
template class AaEngine<D2Q9, float>;
template class AaEngine<D3Q19, float>;
template class AaEngine<D3Q27, float>;
template class AaEngine<D3Q15, float>;

}  // namespace mlbm
