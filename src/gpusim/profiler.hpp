// Per-kernel statistics collection: the simulator's nvvp / rocprof.
//
// Each engine owns a Profiler; all its GlobalArrays share the profiler's
// TrafficCounter. `launch` (see launch.hpp) records per-kernel aggregates:
// number of launches, thread/block geometry, shared memory per block,
// barrier counts and the DRAM traffic attributable to the kernel.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gpusim/dim3.hpp"
#include "gpusim/sanitizer_hook.hpp"
#include "gpusim/traffic.hpp"

namespace mlbm::gpusim {

struct KernelRecord {
  std::string name;
  Dim3 grid{};
  Dim3 block{};
  std::size_t shared_bytes_per_block = 0;
  std::uint64_t launches = 0;
  std::uint64_t syncs = 0;  ///< total barriers across all blocks and launches
  TrafficSnapshot traffic;
  /// Access-contract tag this kernel is registered under (see
  /// analysis/static/): every engine kernel names the NodeKernelContract /
  /// RingKernelContract it promises to obey, and mlbm-verify fails any
  /// registered record whose tag is missing from the engine's declared
  /// contract — so a new kernel cannot ship unanalyzed.
  std::string contract;
};

/// Consulted by `launch` at the entry of every kernel launch, before any
/// block runs or any counter moves. Throwing (TransientLaunchError) models a
/// failed launch return code: the kernel never executed, state and traffic
/// are untouched, the caller may retry. The resilience layer's FaultInjector
/// is the production implementation.
class LaunchFaultHook {
 public:
  virtual ~LaunchFaultHook() = default;
  virtual void on_launch(const KernelRecord& rec) = 0;
};

/// Modeled communication/compute timing attribution for one device's stream
/// timeline (see timeline.hpp). `exposed_s` is the part of `comm_s` the
/// compute stream actually waited on; `hidden_s` is the part that ran under
/// interior compute. Lockstep execution exposes everything
/// (exposed_s == comm_s); overlap hides what the interior phase covers.
/// Invariant: exposed_s + hidden_s == comm_s.
struct CommStats {
  double compute_s = 0;  ///< modeled kernel time on the compute stream
  double comm_s = 0;     ///< modeled ghost-exchange transfer time
  double exposed_s = 0;  ///< comm time the next step had to wait for
  double hidden_s = 0;   ///< comm time overlapped with interior compute
  std::uint64_t steps = 0;

  [[nodiscard]] double exposed_fraction() const {
    return comm_s > 0 ? exposed_s / comm_s : 0.0;
  }
  CommStats& operator+=(const CommStats& o) {
    compute_s += o.compute_s;
    comm_s += o.comm_s;
    exposed_s += o.exposed_s;
    hidden_s += o.hidden_s;
    steps += o.steps;
    return *this;
  }
};

/// Full profiler state — counter totals plus every kernel record and the
/// comm attribution — captured at a checkpoint and restored on rollback, so
/// a replayed window leaves the profiler bit-identical to a run that never
/// faulted.
struct ProfilerState {
  TrafficSnapshot counter;
  std::map<std::string, KernelRecord> records;
  CommStats comm;
};

class Profiler {
 public:
  TrafficCounter& counter() { return counter_; }
  const TrafficCounter& counter() const { return counter_; }

  /// Finds or creates the record for `name`. References are stable for the
  /// profiler's lifetime (node-based map), so engines cache the returned
  /// reference once and skip the string lookup on every subsequent launch.
  KernelRecord& record(const std::string& name) {
    KernelRecord& r = records_[name];
    if (r.name.empty()) r.name = name;
    return r;
  }

  [[nodiscard]] std::vector<KernelRecord> all_records() const {
    std::vector<KernelRecord> out;
    out.reserve(records_.size());
    for (const auto& [_, r] : records_) out.push_back(r);
    return out;
  }

  [[nodiscard]] TrafficSnapshot total_traffic() const {
    return counter_.snapshot();
  }

  void reset() {
    counter_.reset();
    records_.clear();  // invalidates references cached via record()
    comm_ = CommStats{};
  }

  /// Modeled communication attribution, accumulated by the multi-domain
  /// overlap scheduler (timeline.hpp). Untouched in single-domain runs.
  CommStats& comm_stats() { return comm_; }
  [[nodiscard]] const CommStats& comm_stats() const { return comm_; }

  /// Captures counter + per-kernel records for a checkpoint.
  [[nodiscard]] ProfilerState state() const {
    return {counter_.snapshot(), records_, comm_};
  }

  /// Restores a captured state WITHOUT invalidating references cached via
  /// record(): existing map nodes are overwritten in place (records created
  /// after the capture reset to zero), missing ones are re-inserted —
  /// std::map never moves surviving nodes on insert.
  void restore(const ProfilerState& s) {
    counter_.restore(s.counter);
    for (auto& [name, rec] : records_) {
      const auto it = s.records.find(name);
      if (it != s.records.end()) {
        rec = it->second;
      } else {
        rec = KernelRecord{};
        rec.name = name;
      }
    }
    for (const auto& [name, rec] : s.records) {
      records_.emplace(name, rec);  // no-op for names already present
    }
    comm_ = s.comm;
  }

  /// Installs (or clears, with nullptr) the launch fault hook consulted at
  /// the start of every launch through this profiler.
  void set_launch_fault_hook(LaunchFaultHook* hook) { fault_hook_ = hook; }
  [[nodiscard]] LaunchFaultHook* launch_fault_hook() const {
    return fault_hook_;
  }

  /// Installs (or clears, with nullptr) the sanitizer hook notified by every
  /// launch through this profiler (see sanitizer_hook.hpp). Engines install
  /// it here AND on their GlobalArrays; the launchers only consult this
  /// pointer, so an uninstrumented launch pays one branch.
  void set_sanitizer_hook(SanitizerHook* hook) { sanitizer_hook_ = hook; }
  [[nodiscard]] SanitizerHook* sanitizer_hook() const {
    return sanitizer_hook_;
  }

 private:
  TrafficCounter counter_;
  std::map<std::string, KernelRecord> records_;
  CommStats comm_;
  LaunchFaultHook* fault_hook_ = nullptr;
  SanitizerHook* sanitizer_hook_ = nullptr;
};

/// RAII bracket declaring that the launches issued within its scope form ONE
/// logical engine step (the frontier/interior split). Forwards to the
/// installed sanitizer hook's launch-group calls; a no-op when no hook is
/// installed, so split-step engines can use it unconditionally.
class LaunchGroup {
 public:
  explicit LaunchGroup(Profiler& prof) : hook_(prof.sanitizer_hook()) {
    if (hook_ != nullptr) hook_->begin_launch_group();
  }
  ~LaunchGroup() {
    if (hook_ != nullptr) hook_->end_launch_group();
  }
  LaunchGroup(const LaunchGroup&) = delete;
  LaunchGroup& operator=(const LaunchGroup&) = delete;

 private:
  SanitizerHook* hook_;
};

}  // namespace mlbm::gpusim
