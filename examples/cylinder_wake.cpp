// Flow past a circular cylinder (Schaefer-Turek 2D-1, laminar Re = 20):
// a momentum-exchange benchmark with a curved obstacle. Prints the drag and
// lift coefficients against the benchmark references and writes VTK output
// for visualization.
//
//   ./examples/cylinder_wake [--d 12] [--re 20] [--umean 0.05]
//                            [--steps 6000] [--pattern st|ep|mr-p|mr-r]
//                            [--precision fp64|fp32]
//                            [--vtk wake.vtk] [--sanitize]
//
// --sanitize runs the engine under the mlbm-sanitizer (docs/sanitizer.md)
// and exits nonzero if any hazard is reported.
#include <cmath>
#include <cstdio>

#include "analysis/sanitizer/sanitizer.hpp"
#include "engines/factory.hpp"
#include "io/vtk_writer.hpp"
#include "util/cli.hpp"
#include "workloads/cylinder_wake.hpp"

int main(int argc, char** argv) {
  using namespace mlbm;
  const Cli cli(argc, argv);
  cli.reject_unknown({"d", "pattern", "precision", "re", "sanitize", "steps",
                      "umean", "vtk"});
  const int d = cli.get_int("d", 12, 4);
  const real_t re = cli.get_double("re", 20);
  const real_t umean = cli.get_double("umean", 0.05);
  const int steps = cli.get_int("steps", 6000, 1);
  const auto prec = parse_precision(cli.get("precision", "fp64"));
  if (!prec) {
    std::fprintf(stderr, "error: --precision must be fp64 or fp32\n");
    return 1;
  }

  const auto wake = CylinderWake<D2Q9>::create(d, umean, re);
  std::printf(
      "cylinder_wake: %dx%d, D=%d nodes, Re=%.0f, u_mean=%.3f -> tau=%.4f, "
      "storage %s\n",
      wake.geo.box.nx, wake.geo.box.ny, d, re, umean, wake.tau,
      to_string(*prec));

  const std::string pattern = cli.get("pattern", "mr-p");
  std::unique_ptr<Engine<D2Q9>> eng_ptr;
  if (pattern == "mr-r" || pattern == "mr-p") {
    eng_ptr = make_mr_engine<D2Q9>(*prec, wake.geo, wake.tau,
                                   pattern == "mr-r"
                                       ? Regularization::kRecursive
                                       : Regularization::kProjective,
                                   MrConfig{16, 1, 4});
  } else if (pattern == "st") {
    eng_ptr = make_st_engine<D2Q9>(*prec, wake.geo, wake.tau);
  } else if (pattern == "ep") {
    eng_ptr = make_ep_engine<D2Q9>(*prec, wake.geo, wake.tau);
  } else {
    std::fprintf(stderr, "error: --pattern must be mr-r, mr-p, st or ep\n");
    return 1;
  }
  Engine<D2Q9>& eng = *eng_ptr;
  analysis::Sanitizer san;
  if (cli.has("sanitize")) eng.set_sanitizer(&san);
  wake.attach(eng);
  eng.profiler()->counter().set_enabled(false);

  // Converge in chunks and report the load history: the 2D-1 case is steady,
  // so Cd/Cl settling flat is the convergence diagnostic.
  const int chunks = 6;
  std::printf("\n%8s %10s %10s\n", "step", "Cd", "Cl");
  for (int c = 0; c < chunks; ++c) {
    eng.run(steps / chunks);
    std::printf("%8d %10.4f %10.4f\n", eng.time(),
                wake.drag_coefficient(eng), wake.lift_coefficient(eng));
  }
  const real_t cd = wake.drag_coefficient(eng);
  const real_t cl = wake.lift_coefficient(eng);
  std::printf("\nCd = %.4f (Schaefer-Turek 2D-1: 5.5795), "
              "Cl = %.4f (reference 0.0106)\n",
              cd, cl);

  if (cli.has("vtk")) {
    write_vtk(eng, cli.get("vtk", "wake.vtk"));
    std::printf("wrote %s\n", cli.get("vtk", "wake.vtk").c_str());
  }
  if (cli.has("sanitize")) {
    std::printf("%s", san.report().to_string().c_str());
    if (!san.report().clean()) {
      std::fprintf(stderr, "sanitizer: %llu hazard(s) reported\n",
                   static_cast<unsigned long long>(san.report().total()));
      return 2;
    }
  }
  return 0;
}
