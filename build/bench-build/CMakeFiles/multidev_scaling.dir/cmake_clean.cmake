file(REMOVE_RECURSE
  "../bench/multidev_scaling"
  "../bench/multidev_scaling.pdb"
  "CMakeFiles/multidev_scaling.dir/multidev_scaling.cpp.o"
  "CMakeFiles/multidev_scaling.dir/multidev_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidev_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
