// Sparse (tile-compressed) geometry path: correctness against the reference
// engine on obstacle geometries, bit-identity of the forced-sparse path on
// all-fluid boxes, traffic scaling with fluid fraction, and the split-step /
// checkpoint contracts on sparse state.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>

#include "analysis/sanitizer/sanitizer.hpp"
#include "engines/aa_engine.hpp"
#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "geometry/shapes.hpp"
#include "io/checkpoint.hpp"
#include "util/error.hpp"

namespace mlbm {
namespace {

constexpr real_t kTau = 0.8;

template <class L>
Geometry porous_geo(int n, double solid_fraction, std::uint64_t seed) {
  Box b;
  b.nx = n;
  b.ny = n;
  b.nz = L::D == 3 ? n : 1;
  Geometry geo(b);
  shapes::add_random_solids(geo, solid_fraction, seed);
  return geo;
}

template <class L>
typename Engine<L>::InitFn smooth_init() {
  return [](int x, int y, int z) {
    const real_t s = std::sin(real_t(0.4) * x) * std::cos(real_t(0.3) * y) +
                     real_t(0.1) * z;
    std::array<real_t, L::D> u{};
    u[0] = real_t(0.03) * std::sin(real_t(0.5) * y + real_t(0.2) * z);
    u[1] = real_t(0.02) * std::cos(real_t(0.4) * x);
    if constexpr (L::D == 3) u[2] = real_t(0.015) * std::sin(real_t(0.3) * x);
    return equilibrium_moments<L>(real_t(1) + real_t(0.02) * s, u);
  };
}

template <class L>
double max_moment_diff(const Engine<L>& a, const Engine<L>& b) {
  const Box& box = a.geometry().box;
  double worst = 0;
  for (int z = 0; z < box.nz; ++z) {
    for (int y = 0; y < box.ny; ++y) {
      for (int x = 0; x < box.nx; ++x) {
        const Moments<L> ma = a.moments_at(x, y, z);
        const Moments<L> mb = b.moments_at(x, y, z);
        worst = std::max(worst, std::abs(ma.rho - mb.rho));
        for (int c = 0; c < L::D; ++c) {
          worst = std::max(worst, std::abs(ma.u[static_cast<std::size_t>(c)] -
                                           mb.u[static_cast<std::size_t>(c)]));
        }
      }
    }
  }
  return worst;
}

/// Exact (bitwise) field equality through the moment interface.
template <class L>
void expect_identical_fields(const Engine<L>& a, const Engine<L>& b) {
  const Box& box = a.geometry().box;
  for (int z = 0; z < box.nz; ++z) {
    for (int y = 0; y < box.ny; ++y) {
      for (int x = 0; x < box.nx; ++x) {
        const Moments<L> ma = a.moments_at(x, y, z);
        const Moments<L> mb = b.moments_at(x, y, z);
        ASSERT_EQ(ma.rho, mb.rho) << "at " << x << "," << y << "," << z;
        for (int c = 0; c < L::D; ++c) {
          ASSERT_EQ(ma.u[static_cast<std::size_t>(c)],
                    mb.u[static_cast<std::size_t>(c)]);
        }
        for (int p = 0; p < Moments<L>::NP; ++p) {
          ASSERT_EQ(ma.pi[static_cast<std::size_t>(p)],
                    mb.pi[static_cast<std::size_t>(p)]);
        }
      }
    }
  }
}

// ------------------------------------------------------- ST vs reference

template <class L>
void st_matches_reference_porous() {
  const Geometry geo = porous_geo<L>(L::D == 3 ? 12 : 24, 0.25, 42);
  ASSERT_GT(geo.solid_count(), 0);
  StEngine<L> st(geo, kTau);
  ReferenceEngine<L> ref(geo, kTau, CollisionScheme::kBGK);
  st.initialize(smooth_init<L>());
  ref.initialize(smooth_init<L>());
  for (int s = 0; s < 8; ++s) {
    st.step();
    ref.step();
  }
  EXPECT_LT(max_moment_diff(st, ref), 1e-12);
}

TEST(SparseSt, MatchesReferencePorousD2Q9) {
  st_matches_reference_porous<D2Q9>();
}
TEST(SparseSt, MatchesReferencePorousD3Q19) {
  st_matches_reference_porous<D3Q19>();
}

// ------------------------------------------- forced sparse == dense fields

template <class L>
void st_forced_sparse_identical() {
  Box b;
  b.nx = 20;
  b.ny = 12;
  b.nz = L::D == 3 ? 6 : 1;
  Geometry dense(b);
  Geometry sparse = dense;
  sparse.force_sparse_storage(true);
  StEngine<L> ed(dense, kTau);
  StEngine<L> es(sparse, kTau);
  ed.initialize(smooth_init<L>());
  es.initialize(smooth_init<L>());
  for (int s = 0; s < 5; ++s) {
    ed.step();
    es.step();
  }
  expect_identical_fields(ed, es);
}

TEST(SparseSt, ForcedSparseBitIdenticalD2Q9) {
  st_forced_sparse_identical<D2Q9>();
}
TEST(SparseSt, ForcedSparseBitIdenticalD3Q19) {
  st_forced_sparse_identical<D3Q19>();
}

// ------------------------------------------------------- AA vs reference

template <class L>
void aa_matches_reference_porous() {
  const Geometry geo = porous_geo<L>(L::D == 3 ? 12 : 24, 0.25, 42);
  ASSERT_GT(geo.solid_count(), 0);
  AaEngine<L> aa(geo, kTau);
  ReferenceEngine<L> ref(geo, kTau, CollisionScheme::kBGK);
  aa.initialize(smooth_init<L>());
  ref.initialize(smooth_init<L>());
  for (int s = 0; s < 8; ++s) {
    aa.step();
    ref.step();
  }
  EXPECT_LT(max_moment_diff(aa, ref), 1e-12);
}

TEST(SparseAa, MatchesReferencePorousD2Q9) {
  aa_matches_reference_porous<D2Q9>();
}
TEST(SparseAa, MatchesReferencePorousD3Q19) {
  aa_matches_reference_porous<D3Q19>();
}

template <class L>
void aa_forced_sparse_identical() {
  Box b;
  b.nx = 20;
  b.ny = 12;
  b.nz = L::D == 3 ? 6 : 1;
  Geometry dense(b);
  Geometry sparse = dense;
  sparse.force_sparse_storage(true);
  AaEngine<L> ed(dense, kTau);
  AaEngine<L> es(sparse, kTau);
  ed.initialize(smooth_init<L>());
  es.initialize(smooth_init<L>());
  // Odd step count: exercise both kernel flavours and end mid-cycle, so the
  // swapped-phase moment translation is compared too.
  for (int s = 0; s < 5; ++s) {
    ed.step();
    es.step();
  }
  expect_identical_fields(ed, es);
}

TEST(SparseAa, ForcedSparseBitIdenticalD2Q9) {
  aa_forced_sparse_identical<D2Q9>();
}
TEST(SparseAa, ForcedSparseBitIdenticalD3Q19) {
  aa_forced_sparse_identical<D3Q19>();
}

// ------------------------------------------------------- MR vs reference

template <class L>
void mr_matches_reference_porous(Regularization reg, MomentStorage storage) {
  const Geometry geo = porous_geo<L>(L::D == 3 ? 12 : 24, 0.25, 42);
  ASSERT_GT(geo.solid_count(), 0);
  MrConfig cfg;
  cfg.storage = storage;
  MrEngine<L> mr(geo, kTau, reg, cfg);
  ReferenceEngine<L> ref(geo, kTau,
                         reg == Regularization::kProjective
                             ? CollisionScheme::kProjective
                             : CollisionScheme::kRecursive);
  mr.initialize(smooth_init<L>());
  ref.initialize(smooth_init<L>());
  for (int s = 0; s < 8; ++s) {
    mr.step();
    ref.step();
  }
  EXPECT_LT(max_moment_diff(mr, ref), 1e-12);
}

TEST(SparseMr, ProjectivePingPongPorousD2Q9) {
  mr_matches_reference_porous<D2Q9>(Regularization::kProjective,
                                    MomentStorage::kPingPong);
}
TEST(SparseMr, RecursiveCircularPorousD2Q9) {
  mr_matches_reference_porous<D2Q9>(Regularization::kRecursive,
                                    MomentStorage::kCircularShift);
}
TEST(SparseMr, ProjectivePingPongPorousD3Q19) {
  mr_matches_reference_porous<D3Q19>(Regularization::kProjective,
                                     MomentStorage::kPingPong);
}
TEST(SparseMr, RecursiveCircularPorousD3Q19) {
  mr_matches_reference_porous<D3Q19>(Regularization::kRecursive,
                                     MomentStorage::kCircularShift);
}

template <class L>
void mr_forced_sparse_identical(MomentStorage storage) {
  Box b;
  b.nx = 20;
  b.ny = 12;
  b.nz = L::D == 3 ? 6 : 1;
  Geometry dense(b);
  Geometry sparse = dense;
  sparse.force_sparse_storage(true);
  MrConfig cfg;
  cfg.storage = storage;
  MrEngine<L> ed(dense, kTau, Regularization::kProjective, cfg);
  MrEngine<L> es(sparse, kTau, Regularization::kProjective, cfg);
  ed.initialize(smooth_init<L>());
  es.initialize(smooth_init<L>());
  for (int s = 0; s < 5; ++s) {
    ed.step();
    es.step();
  }
  expect_identical_fields(ed, es);
}

TEST(SparseMr, ForcedSparseBitIdenticalPingPongD2Q9) {
  mr_forced_sparse_identical<D2Q9>(MomentStorage::kPingPong);
}
TEST(SparseMr, ForcedSparseBitIdenticalCircularD2Q9) {
  mr_forced_sparse_identical<D2Q9>(MomentStorage::kCircularShift);
}
TEST(SparseMr, ForcedSparseBitIdenticalPingPongD3Q19) {
  mr_forced_sparse_identical<D3Q19>(MomentStorage::kPingPong);
}

TEST(SparseSt, PushRejectsSparse) {
  Geometry geo = porous_geo<D2Q9>(16, 0.2, 7);
  EXPECT_THROW(StEngine<D2Q9>(geo, kTau, CollisionScheme::kBGK, 256,
                              StreamMode::kPush),
               ConfigError);
}

// ------------------------------------------------------- fp32 storage

TEST(SparseFp32, StForcedSparseBitIdenticalToDenseFp32) {
  Box b;
  b.nx = 20;
  b.ny = 12;
  b.nz = 1;
  Geometry dense(b);
  Geometry sparse = dense;
  sparse.force_sparse_storage(true);
  StEngine<D2Q9, float> ed(dense, kTau);
  StEngine<D2Q9, float> es(sparse, kTau);
  ASSERT_EQ(es.storage_precision(), StoragePrecision::kFP32);
  ed.initialize(smooth_init<D2Q9>());
  es.initialize(smooth_init<D2Q9>());
  for (int s = 0; s < 5; ++s) {
    ed.step();
    es.step();
  }
  expect_identical_fields(ed, es);
}

TEST(SparseFp32, StPorousTracksFp64Reference) {
  const Geometry geo = porous_geo<D2Q9>(24, 0.25, 42);
  StEngine<D2Q9, float> st32(geo, kTau);
  ReferenceEngine<D2Q9> ref(geo, kTau, CollisionScheme::kBGK);
  st32.initialize(smooth_init<D2Q9>());
  ref.initialize(smooth_init<D2Q9>());
  for (int s = 0; s < 8; ++s) {
    st32.step();
    ref.step();
  }
  // fp32 storage rounding accumulates but stays far below physical scales.
  EXPECT_LT(max_moment_diff(st32, ref), 1e-4);
}

TEST(SparseFp32, MrPorousTracksFp64Reference) {
  const Geometry geo = porous_geo<D2Q9>(24, 0.25, 42);
  MrEngine<D2Q9, float> mr32(geo, kTau, Regularization::kProjective);
  ReferenceEngine<D2Q9> ref(geo, kTau, CollisionScheme::kProjective);
  mr32.initialize(smooth_init<D2Q9>());
  ref.initialize(smooth_init<D2Q9>());
  for (int s = 0; s < 8; ++s) {
    mr32.step();
    ref.step();
  }
  EXPECT_LT(max_moment_diff(mr32, ref), 1e-4);
}

// --------------------------------------------------- traffic amortization

template <class L>
Geometry bench_box(int n) {
  Box b;
  b.nx = n;
  b.ny = n;
  b.nz = L::D == 3 ? n : 1;
  return Geometry(b);
}

// The acceptance gate at phi ~ 0.3: the sparse path's measured bytes per
// fluid update stay within 1.15x the dense kernel's per-node cost (the
// tile-index overhead must amortize over the tile's fluid nodes).
template <class L, template <class...> class Eng, class... Extra>
void sparse_traffic_amortizes() {
  const int n = L::D == 3 ? 16 : 48;
  Geometry dense_geo = bench_box<L>(n);
  Geometry porous = dense_geo;
  shapes::add_random_solids(porous, 0.7, 77);
  const auto phi = static_cast<double>(porous.fluid_count()) /
                   static_cast<double>(porous.box.cells());
  ASSERT_GT(phi, 0.2);
  ASSERT_LT(phi, 0.4);

  const auto bytes_per_update = [](Engine<L>& e, double updates) {
    e.initialize(
        [](int, int, int) { return equilibrium_moments<L>(1.0, {}); });
    e.step();
    e.step();
    const auto before = e.profiler()->total_traffic();
    const int steps = 4;
    e.run(steps);
    const auto t = e.profiler()->total_traffic() - before;
    return static_cast<double>(t.bytes_read + t.bytes_written) /
           (steps * updates);
  };

  Eng<L, Extra...> ed(dense_geo, kTau);
  Eng<L, Extra...> es(porous, kTau);
  const double dense_bpn =
      bytes_per_update(ed, static_cast<double>(dense_geo.box.cells()));
  const double sparse_bpf =
      bytes_per_update(es, static_cast<double>(porous.fluid_count()));
  EXPECT_LE(sparse_bpf, 1.15 * dense_bpn)
      << "phi=" << phi << " dense B/node=" << dense_bpn;
}

TEST(SparseTraffic, StAmortizesIndexOverheadD2Q9) {
  sparse_traffic_amortizes<D2Q9, StEngine>();
}
TEST(SparseTraffic, StAmortizesIndexOverheadD3Q19) {
  sparse_traffic_amortizes<D3Q19, StEngine>();
}
TEST(SparseTraffic, AaAmortizesIndexOverheadD2Q9) {
  sparse_traffic_amortizes<D2Q9, AaEngine>();
}

TEST(SparseTraffic, SolidTilesMoveNoBytes) {
  // Halving the fluid count must halve total traffic within the mixed-tile
  // slack: total bytes track the allocated slots, not the box.
  Geometry full = bench_box<D2Q9>(64);
  full.force_sparse_storage(true);
  Geometry half = bench_box<D2Q9>(64);
  shapes::add_block(half, 0, 64, 32, 64, 0, 1);  // top half solid
  StEngine<D2Q9> ef(full, kTau);
  StEngine<D2Q9> eh(half, kTau);
  const auto total = [](Engine<D2Q9>& e) {
    e.initialize(
        [](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
    e.step();
    const auto before = e.profiler()->total_traffic();
    e.step();
    const auto t = e.profiler()->total_traffic() - before;
    return static_cast<double>(t.bytes_read + t.bytes_written);
  };
  const double ratio = total(eh) / total(ef);
  EXPECT_NEAR(ratio, 0.5, 0.1);
}

// ------------------------------------------------------ split-step parity

template <class L, template <class...> class Eng>
void split_step_is_bit_identical_sparse() {
  const Geometry geo = porous_geo<L>(L::D == 3 ? 12 : 24, 0.25, 42);
  Eng<L> a(geo, kTau);
  Eng<L> b(geo, kTau);
  a.initialize(smooth_init<L>());
  b.initialize(smooth_init<L>());
  const FrontierSpec fs{2, 2};
  int called = 0;
  for (int s = 0; s < 6; ++s) {
    a.step();
    b.step_split(fs, [&] { ++called; });
  }
  EXPECT_EQ(called, 6);
  expect_identical_fields(a, b);
}

TEST(SparseSplitStep, StPorousBitIdenticalD2Q9) {
  split_step_is_bit_identical_sparse<D2Q9, StEngine>();
}
TEST(SparseSplitStep, StPorousBitIdenticalD3Q19) {
  split_step_is_bit_identical_sparse<D3Q19, StEngine>();
}
TEST(SparseSplitStep, MrPorousBitIdenticalD2Q9) {
  const Geometry geo = porous_geo<D2Q9>(24, 0.25, 42);
  MrEngine<D2Q9> a(geo, kTau, Regularization::kProjective);
  MrEngine<D2Q9> b(geo, kTau, Regularization::kProjective);
  a.initialize(smooth_init<D2Q9>());
  b.initialize(smooth_init<D2Q9>());
  for (int s = 0; s < 6; ++s) {
    a.step();
    b.step_split(FrontierSpec{2, 2}, [] {});
  }
  expect_identical_fields(a, b);
}

// -------------------------------------------------------- checkpoint v3

std::string tmp_ckpt(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SparseCheckpoint, SolidGeometryRoundTripsExactly) {
  // MR stores moments natively, so save -> load is bit-exact on sparse
  // state (ST round-trips through the population reconstruction and is
  // only exact to rounding; test_io_util covers that contract densely).
  const Geometry geo = porous_geo<D2Q9>(24, 0.25, 42);
  MrEngine<D2Q9> src(geo, kTau, Regularization::kProjective);
  src.initialize(smooth_init<D2Q9>());
  src.run(5);
  const std::string path = tmp_ckpt("mlbm_sparse_ckpt.bin");
  save_checkpoint(src, path);

  MrEngine<D2Q9> dst(geo, kTau, Regularization::kProjective);
  load_checkpoint(dst, path);
  expect_identical_fields(src, dst);
  std::filesystem::remove(path);
}

TEST(SparseCheckpoint, StSolidGeometryRoundTripsToRounding) {
  const Geometry geo = porous_geo<D2Q9>(24, 0.25, 42);
  StEngine<D2Q9> src(geo, kTau);
  src.initialize(smooth_init<D2Q9>());
  src.run(5);
  const std::string path = tmp_ckpt("mlbm_sparse_ckpt_st.bin");
  save_checkpoint(src, path);

  StEngine<D2Q9> dst(geo, kTau);
  load_checkpoint(dst, path);
  EXPECT_LT(max_moment_diff(src, dst), 1e-13);
  std::filesystem::remove(path);
}

TEST(SparseCheckpoint, CrossPatternRestoreOnSameGeometry) {
  const Geometry geo = porous_geo<D2Q9>(24, 0.25, 42);
  StEngine<D2Q9> src(geo, kTau);
  src.initialize(smooth_init<D2Q9>());
  src.run(4);
  const std::string path = tmp_ckpt("mlbm_sparse_ckpt_x.bin");
  save_checkpoint(src, path);

  MrEngine<D2Q9> dst(geo, kTau, Regularization::kProjective);
  load_checkpoint(dst, path);
  const Box& b = geo.box;
  for (int y = 0; y < b.ny; ++y) {
    for (int x = 0; x < b.nx; ++x) {
      const auto ms = src.moments_at(x, y, 0);
      const auto md = dst.moments_at(x, y, 0);
      ASSERT_NEAR(ms.rho, md.rho, 1e-14);
      ASSERT_NEAR(ms.u[0], md.u[0], 1e-14);
      ASSERT_NEAR(ms.u[1], md.u[1], 1e-14);
    }
  }
  std::filesystem::remove(path);
}

TEST(SparseCheckpoint, GeometryMismatchIsRejected) {
  const Geometry geo = porous_geo<D2Q9>(24, 0.25, 42);
  StEngine<D2Q9> src(geo, kTau);
  src.initialize(smooth_init<D2Q9>());
  src.run(2);
  const std::string path = tmp_ckpt("mlbm_sparse_ckpt_mismatch.bin");
  save_checkpoint(src, path);

  // Same extents, one flag flipped: the v3 geometry hash must reject it.
  Geometry other = porous_geo<D2Q9>(24, 0.25, 42);
  int fx = -1, fy = -1;
  for (int y = 0; y < 24 && fx < 0; ++y) {
    for (int x = 0; x < 24 && fx < 0; ++x) {
      if (!other.solid(x, y)) {
        fx = x;
        fy = y;
      }
    }
  }
  other.set_solid(fx, fy);
  StEngine<D2Q9> dst(other, kTau);
  try {
    load_checkpoint(dst, path);
    FAIL() << "geometry mismatch not rejected";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kGeometry);
  }
  std::filesystem::remove(path);
}

TEST(SparseCheckpoint, DenseFileRejectedBySolidEngine) {
  Box b;
  b.nx = 24;
  b.ny = 24;
  b.nz = 1;
  const Geometry dense(b);
  StEngine<D2Q9> src(dense, kTau);
  src.initialize(smooth_init<D2Q9>());
  src.run(2);
  const std::string path = tmp_ckpt("mlbm_dense_into_sparse.bin");
  save_checkpoint(src, path);

  const Geometry porous = porous_geo<D2Q9>(24, 0.25, 42);
  StEngine<D2Q9> dst(porous, kTau);
  try {
    load_checkpoint(dst, path);
    FAIL() << "dense checkpoint restored into solid geometry";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.kind(), CheckpointError::Kind::kGeometry);
  }
  std::filesystem::remove(path);
}

// ------------------------------------------------------- sanitizer clean

template <class L>
void sparse_run_is_sanitizer_clean(Engine<L>& eng) {
  using analysis::Sanitizer;
  using analysis::SanitizerReport;
  Sanitizer san(1024);
  eng.set_sanitizer(&san);
  eng.initialize(smooth_init<L>());
  eng.run(4);
  const SanitizerReport r = san.report();
  eng.set_sanitizer(nullptr);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(SparseSanitizer, StPorousCleanD2Q9) {
  StEngine<D2Q9> e(porous_geo<D2Q9>(24, 0.25, 42), kTau);
  sparse_run_is_sanitizer_clean(e);
}
TEST(SparseSanitizer, AaPorousCleanD2Q9) {
  AaEngine<D2Q9> e(porous_geo<D2Q9>(24, 0.25, 42), kTau);
  sparse_run_is_sanitizer_clean(e);
}
TEST(SparseSanitizer, MrPorousCleanD2Q9) {
  MrEngine<D2Q9> e(porous_geo<D2Q9>(24, 0.25, 42), kTau,
                   Regularization::kProjective);
  sparse_run_is_sanitizer_clean(e);
}
TEST(SparseSanitizer, MrPorousCleanCircularD3Q19) {
  MrConfig cfg;
  cfg.storage = MomentStorage::kCircularShift;
  MrEngine<D3Q19> e(porous_geo<D3Q19>(12, 0.25, 42), kTau,
                    Regularization::kRecursive, cfg);
  sparse_run_is_sanitizer_clean(e);
}

// ----------------------------------------------- degenerate tile domains

/// Runs each of the four engines (ST, AA, MR-P ping-pong, MR-R circular)
/// on `geo` against the reference engine for a few steps.
template <class L>
void degenerate_matches_reference(const Geometry& geo, int steps = 4) {
  // Each engine is pinned against a reference running the SAME collision
  // scheme (MR's regularized collisions are not BGK).
  const auto check = [&](Engine<L>& eng, CollisionScheme scheme,
                         const char* what) {
    ReferenceEngine<L> ref(geo, kTau, scheme);
    ref.initialize(smooth_init<L>());
    for (int s = 0; s < steps; ++s) ref.step();
    eng.initialize(smooth_init<L>());
    for (int s = 0; s < steps; ++s) eng.step();
    EXPECT_LT(max_moment_diff(eng, ref), 1e-12) << what;
  };
  StEngine<L> st(geo, kTau);
  check(st, CollisionScheme::kBGK, "ST");
  AaEngine<L> aa(geo, kTau);
  check(aa, CollisionScheme::kBGK, "AA");
  MrEngine<L> mrp(geo, kTau, Regularization::kProjective);
  check(mrp, CollisionScheme::kProjective, "MR-P");
  MrConfig circ;
  circ.storage = MomentStorage::kCircularShift;
  MrEngine<L> mrr(geo, kTau, Regularization::kRecursive, circ);
  check(mrr, CollisionScheme::kRecursive, "MR-R/circ");
}

TEST(SparseDegenerate, SingleTileDomain) {
  // An 8x8 box is exactly ONE tile; a single solid makes it a mixed tile,
  // so the whole domain runs through the masked launch with no all-fluid
  // list at all.
  Geometry geo(Box{8, 8, 1});
  geo.set_solid(3, 4);
  ASSERT_TRUE(geo.sparse());
  ASSERT_EQ(geo.tiles().n_slots(), 1);
  degenerate_matches_reference<D2Q9>(geo);
}

TEST(SparseDegenerate, ExtentNotMultipleOfTile2D) {
  // 13x9: both extents ragged against the 8x8 tile grid, every tile
  // box-clipped, all of them mixed.
  Geometry geo(Box{13, 9, 1});
  geo.set_solid(5, 5);
  ASSERT_TRUE(geo.sparse());
  degenerate_matches_reference<D2Q9>(geo);
}

TEST(SparseDegenerate, ExtentNotMultipleOfTile3D) {
  // 7x6x5 against 4x4x4 tiles: ragged on every axis, and the MR circular
  // sweep extent (nz = 5) sits right at its legal minimum of tile_s + 3.
  Geometry geo(Box{7, 6, 5});
  geo.set_solid(2, 3, 1);
  ASSERT_TRUE(geo.sparse());
  degenerate_matches_reference<D3Q19>(geo);
}

TEST(SparseDegenerate, AllSolidDomain) {
  // Every node solid: no tile gets an allocation slot, every launch covers
  // zero tiles. Engines must construct, step and report: zero state traffic,
  // solid (all-zero) moments everywhere, and zero-byte steps.
  Geometry geo(Box{16, 8, 1});
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 16; ++x) geo.set_solid(x, y);
  }
  ASSERT_EQ(geo.fluid_count(), 0);
  ASSERT_EQ(geo.tiles().n_slots(), 0);

  // No moment data may move: zero bytes written everywhere, and the only
  // reads allowed are the sparse MR column-map probes (one int32 per cross
  // position incl. the periodic halo) — the lookup that discovers a column
  // holds no fluid.
  const std::uint64_t colmap_probe =
      static_cast<std::uint64_t>(geo.box.nx + 2) * sizeof(std::int32_t);
  const auto check = [&](Engine<D2Q9>& eng, std::uint64_t read_budget,
                         const char* what) {
    eng.initialize(smooth_init<D2Q9>());
    eng.step();
    const auto before = eng.profiler()->total_traffic();
    eng.step();
    const auto t = eng.profiler()->total_traffic() - before;
    EXPECT_EQ(t.bytes_written, 0u) << what;
    EXPECT_LE(t.bytes_read, read_budget) << what;
    const auto m = eng.moments_at(7, 3, 0);
    EXPECT_EQ(m.rho, 0.0) << what;
  };
  StEngine<D2Q9> st(geo, kTau);
  check(st, 0, "ST");
  AaEngine<D2Q9> aa(geo, kTau);
  check(aa, 0, "AA");
  MrEngine<D2Q9> mrp(geo, kTau, Regularization::kProjective);
  check(mrp, colmap_probe, "MR-P");
  MrConfig circ;
  circ.storage = MomentStorage::kCircularShift;
  MrEngine<D2Q9> mrr(geo, kTau, Regularization::kRecursive, circ);
  check(mrr, colmap_probe, "MR-R/circ");
}

}  // namespace
}  // namespace mlbm
