#include "perfmodel/mflups_model.hpp"

#include "util/error.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "perfmodel/roofline.hpp"

namespace mlbm::perf {

PerfEstimate estimate_saturated(const gpusim::DeviceSpec& dev, Pattern p,
                                const LatticeInfo& lat,
                                const KernelCharacteristics& kc) {
  PerfEstimate e;
  const double bpf = bytes_per_flup(p, lat, kc.storage_elem_bytes);
  e.roofline_mflups = roofline_mflups(dev, bpf);

  const Efficiency eff = bandwidth_efficiency(dev, p, lat, kc);
  e.occupancy = eff.occupancy;
  e.blocks_per_sm = eff.blocks_per_sm;
  e.bw_bound_mflups = e.roofline_mflups * eff.bandwidth_fraction;

  e.comp_bound_mflups =
      kc.flops_per_flup > 0
          ? dev.fp64_peak_gflops * dev.flop_efficiency * 1e3 / kc.flops_per_flup
          : e.bw_bound_mflups * 10;  // effectively unbounded

  e.mflups = std::min(e.bw_bound_mflups, e.comp_bound_mflups);
  e.achieved_bw_gbs = e.mflups * bpf / 1e3;
  return e;
}

double size_utilization(const gpusim::DeviceSpec& dev, long long blocks,
                        int blocks_per_sm) {
  if (blocks <= 0) return 0;
  (void)blocks_per_sm;  // residency enters via the efficiency model instead
  // Bandwidth-bound kernels keep DRAM saturated as long as roughly two
  // blocks per SM are in flight (the paper's tuning observation). Blocks are
  // scheduled greedily as SMs drain, so there is no wave quantization — the
  // only losses are at small problem sizes that cannot fill the device.
  const double needed = 2.0 * dev.sm_count;
  return std::min(1.0, static_cast<double>(blocks) / needed);
}

double mflups_at_size(const gpusim::DeviceSpec& dev, Pattern p,
                      const LatticeInfo& lat, const KernelCharacteristics& kc,
                      long long cells, long long blocks) {
  const PerfEstimate sat = estimate_saturated(dev, p, lat, kc);
  const double util = size_utilization(dev, blocks, sat.blocks_per_sm);
  if (util <= 0) return 0;
  const double t_step = static_cast<double>(cells) / (sat.mflups * 1e6 * util) +
                        kLaunchOverheadSeconds;
  return static_cast<double>(cells) / t_step / 1e6;
}

std::vector<SeriesPoint> size_series(const gpusim::DeviceSpec& dev, Pattern p,
                                     const LatticeInfo& lat,
                                     const KernelCharacteristics& kc,
                                     const std::vector<long long>& cells,
                                     const std::vector<long long>& blocks) {
  if (cells.size() != blocks.size()) {
    throw ConfigError("size_series: cells/blocks size mismatch");
  }
  std::vector<SeriesPoint> out;
  out.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out.push_back(
        {cells[i], mflups_at_size(dev, p, lat, kc, cells[i], blocks[i])});
  }
  return out;
}

}  // namespace mlbm::perf
