file(REMOVE_RECURSE
  "../bench/fig3_d3q19"
  "../bench/fig3_d3q19.pdb"
  "CMakeFiles/fig3_d3q19.dir/fig3_d3q19.cpp.o"
  "CMakeFiles/fig3_d3q19.dir/fig3_d3q19.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_d3q19.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
