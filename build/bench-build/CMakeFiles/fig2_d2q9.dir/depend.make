# Empty dependencies file for fig2_d2q9.
# This may be replaced when dependencies are built.
