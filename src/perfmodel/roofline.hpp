// Roofline performance model (Section 4.1 of the paper).
//
// LBM propagation patterns are bandwidth bound, so the roofline reduces to
// Eq. 15:  MFLUPS_max = B_BW / (1e6 * B/F), with the bytes per fluid lattice
// update B/F of Table 2: 2 Q doubles for the distribution representation
// (read Q + write Q) and 2 M doubles for the moment representation
// (read M + write M; halo re-reads are served by L2, see DESIGN.md).
#pragma once

#include "gpusim/device.hpp"
#include "perfmodel/pattern.hpp"

namespace mlbm::perf {

/// Bytes of DRAM traffic per fluid lattice update (Table 2).
double bytes_per_flup(Pattern p, const LatticeInfo& lat);

/// Eq. 15: ideal MFLUPS at full peak bandwidth.
double roofline_mflups(const gpusim::DeviceSpec& dev, double bytes_per_flup);

/// Simulation-state footprint in bytes for `cells` fluid nodes (the paper's
/// 15M-node memory comparison). `single_buffer_mr` selects the
/// circular-shift storage policy for the MR patterns.
double state_bytes(Pattern p, const LatticeInfo& lat, long long cells,
                   bool single_buffer_mr = false);

}  // namespace mlbm::perf
