#include "workloads/cylinder_wake.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "geometry/shapes.hpp"
#include "util/error.hpp"
#include "workloads/analytic.hpp"

namespace mlbm {

template <class L>
CylinderWake<L> CylinderWake<L>::create(int d, real_t u_mean, real_t re) {
  static_assert(L::D == 2, "cylinder wake is a 2D benchmark");
  if (d < 4) throw ConfigError("cylinder wake: diameter must be >= 4 nodes");
  if (re <= 0) throw ConfigError("cylinder wake: Re must be positive");

  const int ny = static_cast<int>(std::lround(4.1 * d));
  const int nx = 22 * d;
  const real_t nu = u_mean * static_cast<real_t>(d) / re;
  const real_t tau = real_t(3) * nu + real_t(0.5);

  Box box{nx, ny, 1};
  Geometry geo(box);
  geo.bc.set_axis(0, FaceBC::kOpen);
  geo.bc.set_axis(1, FaceBC::kWall);
  geo.bc.set_axis(2, FaceBC::kPeriodic);

  // Centre 2D downstream, 2D up from the bottom wall (wall at y = -1/2).
  const real_t cx = real_t(2) * d;
  const real_t cy = real_t(2) * d - real_t(0.5);
  shapes::add_cylinder(geo, cx, cy, real_t(0.5) * d);

  // Parabolic inlet, peak 1.5 u_mean so the mean matches the benchmark's
  // u_mean = (2/3) u_max.
  std::vector<std::array<real_t, 3>> inlet(static_cast<std::size_t>(ny),
                                           {0, 0, 0});
  for (int y = 0; y < ny; ++y) {
    inlet[static_cast<std::size_t>(y)] = {
        real_t(1.5) * u_mean * analytic::poiseuille(ny, y), 0, 0};
    geo.set(0, y, 0, NodeKind::kInlet);
    geo.set(nx - 1, y, 0, NodeKind::kOutlet);
  }

  auto obstacle =
      std::make_shared<ObstacleBC<L>>(geo, std::array<real_t, 3>{cx, cy, 0});
  CylinderWake w{std::move(geo),
                 tau,
                 u_mean,
                 static_cast<real_t>(d),
                 std::make_shared<InletOutletBC<L>>(box, std::move(inlet)),
                 std::move(obstacle)};
  return w;
}

template <class L>
void CylinderWake<L>::attach(Engine<L>& eng) const {
  const auto bc_ptr = bc;
  eng.initialize([this](int /*x*/, int y, int /*z*/) {
    std::array<real_t, L::D> u{};
    u[0] = bc->inlet_velocity(y, 0)[0];
    return equilibrium_moments<L>(real_t(1), u);
  });
  eng.set_post_step([bc_ptr](Engine<L>& e) { bc_ptr->apply(e); });
}

template <class L>
real_t CylinderWake<L>::drag_coefficient(const Engine<L>& eng) const {
  const ObstacleLoad load = obstacle->evaluate(eng);
  return real_t(2) * load.force[0] / (u_mean * u_mean * diameter);
}

template <class L>
real_t CylinderWake<L>::lift_coefficient(const Engine<L>& eng) const {
  const ObstacleLoad load = obstacle->evaluate(eng);
  return real_t(2) * load.force[1] / (u_mean * u_mean * diameter);
}

template struct CylinderWake<D2Q9>;

}  // namespace mlbm
