// Factory dispatch matrix: every (pattern x storage precision x execution
// mode) combination the runtime-precision factories can produce must
// construct, advance, and survive a raw-state checkpoint round trip. This is
// the CLI surface's contract — what `--pattern X --precision Y` plus
// MLBM_EXEC can select must all be live code paths, not just the defaults
// the physics tests happen to exercise.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "engines/factory.hpp"
#include "resilience/snapshot.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

constexpr real_t kTau = 0.8;

template <class L>
Geometry periodic_geo() {
  Box b;
  b.nx = 12;
  b.ny = 10;
  b.nz = L::D == 3 ? 6 : 1;
  Geometry geo(b);
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return geo;
}

template <class L>
typename Engine<L>::InitFn smooth_init() {
  return [](int x, int y, int z) {
    std::array<real_t, L::D> u{};
    u[0] = real_t(0.02) * std::sin(real_t(0.5) * y + real_t(0.2) * z);
    u[1] = real_t(0.015) * std::cos(real_t(0.4) * x);
    return equilibrium_moments<L>(
        real_t(1) + real_t(0.01) * std::sin(real_t(0.4) * x), u);
  };
}

template <class L>
std::unique_ptr<Engine<L>> build(const std::string& pattern,
                                 StoragePrecision prec, ExecMode exec) {
  Geometry geo = periodic_geo<L>();
  if (pattern == "st") {
    return make_st_engine<L>(prec, std::move(geo), kTau, CollisionScheme::kBGK,
                             256, StreamMode::kPull, exec);
  }
  if (pattern == "aa") {
    return make_aa_engine<L>(prec, std::move(geo), kTau, CollisionScheme::kBGK,
                             256, exec);
  }
  if (pattern == "ep") {
    return make_ep_engine<L>(prec, std::move(geo), kTau, CollisionScheme::kBGK,
                             256, exec);
  }
  return make_mr_engine<L>(prec, std::move(geo), kTau,
                           Regularization::kProjective, {}, exec);
}

/// Construct, step once, checkpoint, diverge, restore, replay: the replayed
/// window must reproduce the recorded trajectory exactly (raw-path restore).
template <class L>
void construct_step_roundtrip(const std::string& pattern,
                              StoragePrecision prec, ExecMode exec) {
  SCOPED_TRACE(pattern + " " + to_string(prec) + " " + to_string(exec) + " " +
               L::name());
  auto eng = build<L>(pattern, prec, exec);
  ASSERT_NE(eng, nullptr);
  eng->initialize(smooth_init<L>());
  eng->step();
  EXPECT_EQ(eng->time(), 1);

  const auto snap = resilience::capture_state<L>(*eng, 1);
  // The distribution engines all serialize raw device state; MR restores
  // through its native moment payload instead (see snapshot.hpp).
  const bool raw = !snap.raw_tag.empty();
  if (pattern != "mr") {
    ASSERT_TRUE(raw) << pattern << " lost raw-state serialization";
  }
  eng->run(2);
  std::vector<Moments<L>> want;
  const Box& b = eng->geometry().box;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) want.push_back(eng->moments_at(x, y, z));
    }
  }

  resilience::restore_state<L>(*eng, snap);
  EXPECT_EQ(eng->time(), 1);
  eng->run(2);
  std::size_t k = 0;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const auto got = eng->moments_at(x, y, z);
        if (raw) {
          // Raw restore is exact: the replay is bit-identical.
          ASSERT_EQ(got.rho, want[k].rho) << "at " << x << "," << y << ","
                                          << z;
          for (int c = 0; c < L::D; ++c) {
            ASSERT_EQ(got.u[static_cast<std::size_t>(c)],
                      want[k].u[static_cast<std::size_t>(c)]);
          }
        } else {
          const double tol = prec == StoragePrecision::kFP32 ? 1e-5 : 1e-12;
          ASSERT_NEAR(got.rho, want[k].rho, tol)
              << "at " << x << "," << y << "," << z;
          for (int c = 0; c < L::D; ++c) {
            ASSERT_NEAR(got.u[static_cast<std::size_t>(c)],
                        want[k].u[static_cast<std::size_t>(c)], tol);
          }
        }
        ++k;
      }
    }
  }
}

template <class L>
void full_matrix() {
  for (const char* pattern : {"st", "aa", "ep", "mr"}) {
    for (const StoragePrecision prec :
         {StoragePrecision::kFP64, StoragePrecision::kFP32}) {
      for (const ExecMode exec : {ExecMode::kScalar, ExecMode::kLanes}) {
        construct_step_roundtrip<L>(pattern, prec, exec);
      }
    }
  }
}

TEST(FactoryMatrix, AllPatternPrecisionExecCombinationsD2Q9) {
  full_matrix<D2Q9>();
}

TEST(FactoryMatrix, AllPatternPrecisionExecCombinationsD3Q19) {
  full_matrix<D3Q19>();
}

TEST(FactoryMatrix, PatternNamesFollowTheFactories) {
  EXPECT_STREQ(build<D2Q9>("st", StoragePrecision::kFP64, ExecMode::kScalar)
                   ->pattern_name(),
               "ST");
  EXPECT_STREQ(build<D2Q9>("aa", StoragePrecision::kFP32, ExecMode::kScalar)
                   ->pattern_name(),
               "ST-AA");
  EXPECT_STREQ(build<D2Q9>("ep", StoragePrecision::kFP32, ExecMode::kLanes)
                   ->pattern_name(),
               "EP");
}

}  // namespace
}  // namespace mlbm
