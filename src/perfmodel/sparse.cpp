#include "perfmodel/sparse.hpp"

#include <cmath>

#include "perfmodel/roofline.hpp"
#include "util/error.hpp"

namespace mlbm::perf {

double sparse_index_bytes_per_tile(int dim) {
  const double stash = std::pow(3.0, dim);
  return (stash + 1.0) * 4.0;
}

SparseTraffic sparse_traffic_model(Pattern p, const LatticeInfo& lat,
                                   double elem_bytes, double phi,
                                   int tile_nodes) {
  if (!(phi > 0.0) || phi > 1.0) {
    throw ConfigError("sparse_traffic_model: fluid fraction must be in (0,1]");
  }
  if (tile_nodes < 1) {
    throw ConfigError("sparse_traffic_model: tile_nodes must be positive");
  }
  SparseTraffic t;
  t.phi = phi;
  t.bpf_dense = bytes_per_flup(p, lat, elem_bytes);
  t.bpf_sparse = t.bpf_dense + sparse_index_bytes_per_tile(lat.dim) /
                                   (phi * static_cast<double>(tile_nodes));
  t.bpf_dense_domain = t.bpf_dense / phi;
  return t;
}

double sparse_dense_crossover(Pattern p, const LatticeInfo& lat,
                              double elem_bytes, int tile_nodes) {
  const double bpf = bytes_per_flup(p, lat, elem_bytes);
  return 1.0 - sparse_index_bytes_per_tile(lat.dim) /
                   (static_cast<double>(tile_nodes) * bpf);
}

}  // namespace mlbm::perf
