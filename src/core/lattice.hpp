// Lattice descriptors: discrete velocity sets, quadrature weights, opposite
// directions and moment-space sizes for the D2Q9, D3Q19 and D3Q27 lattices.
//
// All descriptors expose the same compile-time interface so that collision
// operators, engines and kernels can be written once and instantiated per
// lattice:
//
//   L::D     spatial dimension (2 or 3)
//   L::Q     number of discrete velocities
//   L::M     number of stored moments = 1 + D + D(D+1)/2  (rho, rho*u, Pi)
//   L::c     velocity set, always 3 components (z = 0 in 2D)
//   L::w     quadrature weights
//   L::cs2   lattice speed of sound squared (1/3 for all single-speed sets)
//   L::opposite(i)  index of -c_i
//
// Velocities are ordered rest-first; the exact ordering is part of the public
// contract (tests pin it down) because streaming kernels index into it.
#pragma once

#include <array>

#include "util/types.hpp"

namespace mlbm {

namespace detail {

/// Finds the direction index whose velocity is the negation of `c[i]`.
/// Used at compile time to build opposite-direction tables.
template <std::size_t Q>
constexpr std::array<int, Q> make_opposites(
    const std::array<std::array<int, 3>, Q>& c) {
  std::array<int, Q> opp{};
  for (std::size_t i = 0; i < Q; ++i) {
    opp[i] = -1;
    for (std::size_t j = 0; j < Q; ++j) {
      if (c[j][0] == -c[i][0] && c[j][1] == -c[i][1] && c[j][2] == -c[i][2]) {
        opp[i] = static_cast<int>(j);
        break;
      }
    }
  }
  return opp;
}

}  // namespace detail

/// Two-dimensional, nine-velocity lattice (the paper's 2D workhorse).
struct D2Q9 {
  static constexpr int D = 2;
  static constexpr int Q = 9;
  /// Moment-space degrees of freedom: rho (1) + rho*u (2) + Pi (3).
  static constexpr int M = 6;
  static constexpr real_t cs2 = real_t(1) / real_t(3);

  static constexpr std::array<std::array<int, 3>, 9> c = {{
      {0, 0, 0},
      {1, 0, 0},
      {0, 1, 0},
      {-1, 0, 0},
      {0, -1, 0},
      {1, 1, 0},
      {-1, 1, 0},
      {-1, -1, 0},
      {1, -1, 0},
  }};

  static constexpr std::array<real_t, 9> w = {
      real_t(4) / 9,  real_t(1) / 9,  real_t(1) / 9,
      real_t(1) / 9,  real_t(1) / 9,  real_t(1) / 36,
      real_t(1) / 36, real_t(1) / 36, real_t(1) / 36,
  };

  static constexpr std::array<int, 9> opp = detail::make_opposites<9>(c);
  static constexpr int opposite(int i) { return opp[static_cast<std::size_t>(i)]; }
  static constexpr const char* name() { return "D2Q9"; }
};

/// Three-dimensional, nineteen-velocity lattice (the paper's 3D workhorse).
struct D3Q19 {
  static constexpr int D = 3;
  static constexpr int Q = 19;
  /// rho (1) + rho*u (3) + Pi (6).
  static constexpr int M = 10;
  static constexpr real_t cs2 = real_t(1) / real_t(3);

  static constexpr std::array<std::array<int, 3>, 19> c = {{
      {0, 0, 0},
      // 6 axis-aligned velocities.
      {1, 0, 0},
      {-1, 0, 0},
      {0, 1, 0},
      {0, -1, 0},
      {0, 0, 1},
      {0, 0, -1},
      // 12 edge velocities.
      {1, 1, 0},
      {-1, -1, 0},
      {1, -1, 0},
      {-1, 1, 0},
      {1, 0, 1},
      {-1, 0, -1},
      {1, 0, -1},
      {-1, 0, 1},
      {0, 1, 1},
      {0, -1, -1},
      {0, 1, -1},
      {0, -1, 1},
  }};

  static constexpr std::array<real_t, 19> w = {
      real_t(1) / 3,
      real_t(1) / 18, real_t(1) / 18, real_t(1) / 18,
      real_t(1) / 18, real_t(1) / 18, real_t(1) / 18,
      real_t(1) / 36, real_t(1) / 36, real_t(1) / 36, real_t(1) / 36,
      real_t(1) / 36, real_t(1) / 36, real_t(1) / 36, real_t(1) / 36,
      real_t(1) / 36, real_t(1) / 36, real_t(1) / 36, real_t(1) / 36,
  };

  static constexpr std::array<int, 19> opp = detail::make_opposites<19>(c);
  static constexpr int opposite(int i) { return opp[static_cast<std::size_t>(i)]; }
  static constexpr const char* name() { return "D3Q19"; }
};

/// Three-dimensional, fifteen-velocity lattice: rest + 6 axis + 8 corner
/// velocities. The smallest common 3D set; included to exercise the
/// lattice-generic code paths from below (Q < 19) as D3Q27 does from above.
struct D3Q15 {
  static constexpr int D = 3;
  static constexpr int Q = 15;
  static constexpr int M = 10;
  static constexpr real_t cs2 = real_t(1) / real_t(3);

  static constexpr std::array<std::array<int, 3>, 15> c = {{
      {0, 0, 0},
      // 6 axis-aligned velocities.
      {1, 0, 0},
      {-1, 0, 0},
      {0, 1, 0},
      {0, -1, 0},
      {0, 0, 1},
      {0, 0, -1},
      // 8 corner velocities.
      {1, 1, 1},
      {-1, -1, -1},
      {1, 1, -1},
      {-1, -1, 1},
      {1, -1, 1},
      {-1, 1, -1},
      {-1, 1, 1},
      {1, -1, -1},
  }};

  static constexpr std::array<real_t, 15> w = {
      real_t(2) / 9,
      real_t(1) / 9,  real_t(1) / 9,  real_t(1) / 9,
      real_t(1) / 9,  real_t(1) / 9,  real_t(1) / 9,
      real_t(1) / 72, real_t(1) / 72, real_t(1) / 72, real_t(1) / 72,
      real_t(1) / 72, real_t(1) / 72, real_t(1) / 72, real_t(1) / 72,
  };

  static constexpr std::array<int, 15> opp = detail::make_opposites<15>(c);
  static constexpr int opposite(int i) { return opp[static_cast<std::size_t>(i)]; }
  static constexpr const char* name() { return "D3Q15"; }
};

/// Three-dimensional, twenty-seven-velocity lattice. Not evaluated in the
/// paper but called out in its future-work section; included here as the
/// extension experiment (`bench/d3q27_extension`).
struct D3Q27 {
  static constexpr int D = 3;
  static constexpr int Q = 27;
  static constexpr int M = 10;
  static constexpr real_t cs2 = real_t(1) / real_t(3);

  static constexpr std::array<std::array<int, 3>, 27> c = {{
      {0, 0, 0},
      // 6 axis-aligned velocities.
      {1, 0, 0},
      {-1, 0, 0},
      {0, 1, 0},
      {0, -1, 0},
      {0, 0, 1},
      {0, 0, -1},
      // 12 edge velocities.
      {1, 1, 0},
      {-1, -1, 0},
      {1, -1, 0},
      {-1, 1, 0},
      {1, 0, 1},
      {-1, 0, -1},
      {1, 0, -1},
      {-1, 0, 1},
      {0, 1, 1},
      {0, -1, -1},
      {0, 1, -1},
      {0, -1, 1},
      // 8 corner velocities.
      {1, 1, 1},
      {-1, -1, -1},
      {1, 1, -1},
      {-1, -1, 1},
      {1, -1, 1},
      {-1, 1, -1},
      {-1, 1, 1},
      {1, -1, -1},
  }};

  static constexpr std::array<real_t, 27> w = {
      real_t(8) / 27,
      real_t(2) / 27,  real_t(2) / 27,  real_t(2) / 27,
      real_t(2) / 27,  real_t(2) / 27,  real_t(2) / 27,
      real_t(1) / 54,  real_t(1) / 54,  real_t(1) / 54,  real_t(1) / 54,
      real_t(1) / 54,  real_t(1) / 54,  real_t(1) / 54,  real_t(1) / 54,
      real_t(1) / 54,  real_t(1) / 54,  real_t(1) / 54,  real_t(1) / 54,
      real_t(1) / 216, real_t(1) / 216, real_t(1) / 216, real_t(1) / 216,
      real_t(1) / 216, real_t(1) / 216, real_t(1) / 216, real_t(1) / 216,
  };

  static constexpr std::array<int, 27> opp = detail::make_opposites<27>(c);
  static constexpr int opposite(int i) { return opp[static_cast<std::size_t>(i)]; }
  static constexpr const char* name() { return "D3Q27"; }
};

}  // namespace mlbm
