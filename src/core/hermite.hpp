// Discrete Hermite polynomial tensors on a lattice velocity set.
//
// The moment representation of the paper is built on the Hermite expansion of
// the distribution function (Section 2 of the paper):
//
//   H^(0)          = 1
//   H^(1)_a    (i) = c_ia
//   H^(2)_ab   (i) = c_ia c_ib - cs2 d_ab
//   H^(3)_abg  (i) = c_ia c_ib c_ig - cs2 (c_ia d_bg + c_ib d_ag + c_ig d_ab)
//   H^(4)_abgd (i) = c_ia c_ib c_ig c_id
//                    - cs2 (c_ia c_ib d_gd + c_ia c_ig d_bd + c_ia c_id d_bg
//                         + c_ib c_ig d_ad + c_ib c_id d_ag + c_ig c_id d_ab)
//                    + cs2^2 (d_ab d_gd + d_ag d_bd + d_ad d_bg)
//
// where d_ab is the Kronecker delta. All functions are constexpr and take the
// lattice descriptor as a template parameter so kernels can bake the values
// into compile-time tables.
#pragma once

#include "core/lattice.hpp"
#include "util/types.hpp"

namespace mlbm::hermite {

constexpr real_t delta(int a, int b) { return a == b ? real_t(1) : real_t(0); }

template <class L>
constexpr real_t h0(int /*i*/) {
  return real_t(1);
}

template <class L>
constexpr real_t h1(int i, int a) {
  return static_cast<real_t>(L::c[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)]);
}

template <class L>
constexpr real_t h2(int i, int a, int b) {
  return h1<L>(i, a) * h1<L>(i, b) - L::cs2 * delta(a, b);
}

template <class L>
constexpr real_t h3(int i, int a, int b, int g) {
  const real_t ca = h1<L>(i, a), cb = h1<L>(i, b), cg = h1<L>(i, g);
  return ca * cb * cg -
         L::cs2 * (ca * delta(b, g) + cb * delta(a, g) + cg * delta(a, b));
}

template <class L>
constexpr real_t h4(int i, int a, int b, int g, int d) {
  const real_t ca = h1<L>(i, a), cb = h1<L>(i, b), cg = h1<L>(i, g),
               cd = h1<L>(i, d);
  return ca * cb * cg * cd -
         L::cs2 * (ca * cb * delta(g, d) + ca * cg * delta(b, d) +
                   ca * cd * delta(b, g) + cb * cg * delta(a, d) +
                   cb * cd * delta(a, g) + cg * cd * delta(a, b)) +
         L::cs2 * L::cs2 *
             (delta(a, b) * delta(g, d) + delta(a, g) * delta(b, d) +
              delta(a, d) * delta(b, g));
}

}  // namespace mlbm::hermite
