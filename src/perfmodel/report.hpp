// Reporting helpers shared by all benchmark harnesses: a results directory,
// banners, and paper-vs-reproduction comparison rows.
#pragma once

#include <string>

namespace mlbm::perf {

/// Creates (if needed) and returns the directory where benchmark harnesses
/// drop their CSV outputs. Defaults to "results" under the current working
/// directory; override with the MLBM_RESULTS_DIR environment variable.
std::string results_dir();

/// Prints a uniform experiment banner to stdout.
void print_banner(const std::string& experiment_id, const std::string& title);

/// Relative deviation in percent (guarded against zero reference).
double deviation_pct(double ours, double paper);

}  // namespace mlbm::perf
