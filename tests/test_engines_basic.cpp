// Engine interface contracts: state round trips, footprints, invariant
// preservation of trivial states.
#include <gtest/gtest.h>

#include <cmath>

#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

Geometry periodic_geo(int nx, int ny, int nz) {
  Geometry geo(Box{nx, ny, nz});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return geo;
}

template <class L>
Moments<L> wavy_state(int x, int y, int z) {
  Moments<L> m;
  m.rho = 1.0 + 0.01 * std::sin(0.3 * x + 0.5 * y + 0.7 * z);
  m.u.fill(0);
  m.u[0] = 0.02 * std::cos(0.4 * x);
  m.u[1] = -0.01 * std::sin(0.2 * y);
  for (int p = 0; p < Moments<L>::NP; ++p) {
    const auto [a, b] = Moments<L>::pair(p);
    m.pi[static_cast<std::size_t>(p)] =
        m.rho * m.u[static_cast<std::size_t>(a)] *
            m.u[static_cast<std::size_t>(b)] +
        1e-4 * std::sin(0.1 * (x + y + z) + p);
  }
  return m;
}

template <class L, class E>
void check_roundtrip(E& eng) {
  const Box& b = eng.geometry().box;
  eng.initialize([](int x, int y, int z) { return wavy_state<L>(x, y, z); });
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const Moments<L> want = wavy_state<L>(x, y, z);
        const Moments<L> got = eng.moments_at(x, y, z);
        EXPECT_NEAR(got.rho, want.rho, 1e-13);
        for (int a = 0; a < L::D; ++a) {
          EXPECT_NEAR(got.u[static_cast<std::size_t>(a)],
                      want.u[static_cast<std::size_t>(a)], 1e-13);
        }
        for (int p = 0; p < Moments<L>::NP; ++p) {
          EXPECT_NEAR(got.pi[static_cast<std::size_t>(p)],
                      want.pi[static_cast<std::size_t>(p)], 1e-13);
        }
      }
    }
  }
}

TEST(StateRoundTrip, Reference2D) {
  ReferenceEngine<D2Q9> e(periodic_geo(6, 5, 1), 0.8,
                          CollisionScheme::kProjective);
  check_roundtrip<D2Q9>(e);
}

TEST(StateRoundTrip, St2D) {
  StEngine<D2Q9> e(periodic_geo(6, 5, 1), 0.8);
  check_roundtrip<D2Q9>(e);
}

TEST(StateRoundTrip, StProjective3D) {
  StEngine<D3Q19> e(periodic_geo(4, 5, 6), 0.7, CollisionScheme::kProjective);
  check_roundtrip<D3Q19>(e);
}

TEST(StateRoundTrip, MrPingPong3D) {
  MrEngine<D3Q19> e(periodic_geo(6, 5, 7), 0.8, Regularization::kProjective);
  check_roundtrip<D3Q19>(e);
}

TEST(StateRoundTrip, MrCircularShift2D) {
  MrEngine<D2Q9> e(periodic_geo(6, 8, 1), 0.8, Regularization::kProjective,
                   {4, 1, 1, MomentStorage::kCircularShift});
  check_roundtrip<D2Q9>(e);
}

TEST(StateBytes, MatchesStorageScheme) {
  const int nx = 10, ny = 8, nz = 6;
  const auto cells = static_cast<std::size_t>(nx) * ny * nz;

  StEngine<D3Q19> st(periodic_geo(nx, ny, nz), 0.8);
  EXPECT_EQ(st.state_bytes(), 2 * 19 * sizeof(real_t) * cells);

  MrEngine<D3Q19> mr_pp(periodic_geo(nx, ny, nz), 0.8,
                        Regularization::kProjective);
  EXPECT_EQ(mr_pp.state_bytes(), 2 * 10 * sizeof(real_t) * cells);

  MrEngine<D3Q19> mr_cs(periodic_geo(nx, ny, nz), 0.8,
                        Regularization::kProjective,
                        {8, 8, 1, MomentStorage::kCircularShift});
  EXPECT_EQ(mr_cs.state_bytes(),
            10 * sizeof(real_t) * static_cast<std::size_t>(nx) * ny * (nz + 2));
}

TEST(EngineContract, PatternNames) {
  const auto geo = periodic_geo(6, 6, 1);
  EXPECT_STREQ(StEngine<D2Q9>(geo, 0.8).pattern_name(), "ST");
  EXPECT_STREQ(
      MrEngine<D2Q9>(geo, 0.8, Regularization::kProjective).pattern_name(),
      "MR-P");
  EXPECT_STREQ(
      MrEngine<D2Q9>(geo, 0.8, Regularization::kRecursive).pattern_name(),
      "MR-R");
  EXPECT_STREQ(
      ReferenceEngine<D2Q9>(geo, 0.8, CollisionScheme::kBGK).pattern_name(),
      "REF-BGK");
}

TEST(EngineContract, RejectsUnstableTau) {
  const auto geo = periodic_geo(4, 4, 1);
  EXPECT_THROW(StEngine<D2Q9>(geo, 0.5), std::invalid_argument);
  EXPECT_THROW(StEngine<D2Q9>(geo, 0.2), std::invalid_argument);
  EXPECT_THROW(MrEngine<D2Q9>(geo, 0.45, Regularization::kProjective),
               std::invalid_argument);
}

TEST(EngineContract, ViscosityFormula) {
  StEngine<D2Q9> e(periodic_geo(4, 4, 1), 0.8);
  EXPECT_NEAR(e.viscosity(), (0.8 - 0.5) / 3.0, 1e-15);
}

TEST(EngineContract, MrRejectsBadTiles) {
  const auto geo = periodic_geo(8, 8, 1);
  EXPECT_THROW(MrEngine<D2Q9>(geo, 0.8, Regularization::kProjective,
                              {0, 1, 1}),
               std::invalid_argument);
  EXPECT_THROW(MrEngine<D2Q9>(geo, 0.8, Regularization::kProjective,
                              {4, 1, 0}),
               std::invalid_argument);
}

TEST(EngineContract, MrBlockGeometryReporting) {
  const auto geo = periodic_geo(64, 64, 1);
  MrEngine<D2Q9> e(geo, 0.8, Regularization::kProjective, {32, 1, 4});
  EXPECT_EQ(e.threads_per_block(), (32 + 2) * 4);
  EXPECT_EQ(e.shared_bytes_per_block(), 32u * (4 + 2) * 9 * sizeof(real_t));

  Geometry g3 = periodic_geo(32, 32, 32);
  MrEngine<D3Q19> e3(g3, 0.8, Regularization::kProjective, {8, 8, 1});
  EXPECT_EQ(e3.threads_per_block(), 10 * 10 * 1);
  EXPECT_EQ(e3.shared_bytes_per_block(), 8u * 8 * 3 * 19 * sizeof(real_t));
}

// Fixed-point preservation: a uniform equilibrium state must be exactly
// stationary under every engine (periodic domain).
template <class L, class E>
void check_uniform_fixed_point(E& eng, real_t ux) {
  std::array<real_t, L::D> u{};
  u[0] = ux;
  eng.initialize(
      [&](int, int, int) { return equilibrium_moments<L>(1.0, u); });
  eng.run(5);
  const Box& b = eng.geometry().box;
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const Moments<L> m = eng.moments_at(x, y, z);
        EXPECT_NEAR(m.rho, 1.0, 1e-13);
        EXPECT_NEAR(m.u[0], ux, 1e-13);
      }
    }
  }
}

TEST(UniformFlow, StationaryUnderSt) {
  StEngine<D2Q9> e(periodic_geo(8, 8, 1), 0.6);
  check_uniform_fixed_point<D2Q9>(e, 0.05);
}

TEST(UniformFlow, StationaryUnderMrProjective) {
  MrEngine<D2Q9> e(periodic_geo(8, 12, 1), 0.6, Regularization::kProjective,
                   {4, 1, 2});
  check_uniform_fixed_point<D2Q9>(e, 0.05);
}

TEST(UniformFlow, StationaryUnderMrRecursive3D) {
  MrEngine<D3Q19> e(periodic_geo(6, 6, 8), 0.9, Regularization::kRecursive,
                    {3, 3, 1});
  check_uniform_fixed_point<D3Q19>(e, 0.04);
}

TEST(UniformFlow, StationaryUnderMrCircularShift) {
  MrEngine<D2Q9> e(periodic_geo(8, 10, 1), 0.7, Regularization::kProjective,
                   {4, 1, 1, MomentStorage::kCircularShift});
  check_uniform_fixed_point<D2Q9>(e, -0.03);
}

TEST(MrValidation, PeriodicSweepRequiresMinimumExtent) {
  // ny = 4 with tile_s = 2 violates the S >= tile_s + 3 requirement.
  auto geo = periodic_geo(8, 4, 1);
  MrEngine<D2Q9> e(geo, 0.8, Regularization::kProjective, {4, 1, 2});
  e.initialize([](int, int, int) { return equilibrium_moments<D2Q9>(1.0, {}); });
  EXPECT_THROW(e.step(), std::invalid_argument);
}

}  // namespace
}  // namespace mlbm
