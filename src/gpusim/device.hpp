// Device models for the two GPUs evaluated in the paper (Table 1).
//
// The simulator does not execute SASS/GCN code; the DeviceSpec captures the
// architectural quantities that enter the paper's performance analysis:
// memory bandwidth (roofline, Eq. 15), shared memory capacity and block
// limits (occupancy of the MR kernels), and FP64 throughput (compute bound of
// the recursive scheme). The two efficiency constants are the calibrated part
// of the model and are documented in DESIGN.md.
#pragma once

#include <string>

namespace mlbm::gpusim {

struct DeviceSpec {
  std::string name;
  std::string compiler;

  double frequency_mhz = 0;
  int cores = 0;      ///< CUDA cores / HIP stream processors
  int sm_count = 0;   ///< SMs (NVIDIA) or CUs (AMD)

  int shared_mem_per_sm_bytes = 0;
  int shared_mem_per_block_bytes = 0;
  int l1_kb_per_sm = 0;
  int l2_kb = 0;

  double memory_gb = 0;
  double bandwidth_gbs = 0;  ///< peak DRAM bandwidth

  int max_threads_per_block = 0;
  int max_threads_per_sm = 0;
  int max_blocks_per_sm = 0;
  int warp_size = 0;

  double fp64_peak_gflops = 0;

  /// Fraction of peak DRAM bandwidth achievable by a simple, fully coalesced
  /// streaming kernel on this device (STREAM-like). Calibrated; see DESIGN.md.
  double stream_efficiency = 0;

  /// Additional multiplicative efficiency of kernels that pipeline global
  /// loads through shared memory with block-wide synchronization (the MR
  /// pattern). Captures shared-memory latency, __syncthreads cost, halo
  /// pressure on L2 and the thread-block shape restrictions the paper
  /// discusses. 3D columns have two halo'd axes and 3D thread blocks, hence
  /// a separate (lower) value. Calibrated.
  double mr_pipeline_efficiency_2d = 0;
  double mr_pipeline_efficiency_3d = 0;

  /// Fraction of FP64 peak sustainable by the MR-R reconstruction's
  /// instruction mix (FMA density, transcendental-free). Calibrated.
  double flop_efficiency = 0;

  /// NVIDIA V100 (Volta), SXM2 16 GB — Table 1, left column.
  static DeviceSpec v100();
  /// AMD MI100 (CDNA1) 32 GB — Table 1, right column.
  static DeviceSpec mi100();
};

}  // namespace mlbm::gpusim
