// The static access-contract analyzer: proves race-freedom and addressing
// discipline for ALL domain extents from the declarations in contract.hpp.
//
// What "static" buys over PR 4's dynamic sanitizer: racecheck observes one
// execution of one domain; the checks here quantify over every domain shape
// the kernels accept, because the contracts are affine in the node
// coordinate — overlap between two per-node accesses is a small integer
// (Diophantine) condition on their offsets and component sets, independent
// of the extents, and the MR circular-shift discipline reduces to modular
// arithmetic on (S + 2) that a bounded sweep over sweep extents decides
// exhaustively (every hazard class manifests within one ring period).
//
// Checks, per contract:
//
//  node kernels (one thread per node, no intra-kernel barrier):
//   * node-race      — a write descriptor and any other descriptor share a
//                      component at different offsets: two distinct threads
//                      touch one lattice word, at least one writing. This is
//                      exactly the condition under which the AA odd kernel's
//                      in-place safety proof (reader == writer per word)
//                      breaks.
//   * span-bounds    — span descriptors must walk a contiguous component
//                      range inside the array (negative-stride spans must
//                      not underflow component 0): the static form of
//                      GlobalArray::span_ok, proven for all extents.
//
//  ring kernels (the MR column sweep):
//   * ring-halo      — phase A's declared cross halo must cover the lattice
//                      cross reach (the PR 6 open-face bug class: a source
//                      position nobody streams from leaves ring words
//                      unwritten).
//   * ring-dead-read — the write-back must trail the sweep front by at least
//                      1 + sweep reach layers, or phase B re-projects a
//                      layer before its last streamed contribution arrives
//                      (the PR 4 dead-read bug class).
//   * ring-capacity  — the shared ring must hold tile_s + 2 * sweep-reach
//                      slots, or a level's top destination layer recycles
//                      the slot of a layer phase B has not consumed.
//   * ring-barrier   — phase B must run in a barrier epoch after phase A.
//   * ring-clobber / ring-stale — the circular-shift schedule, simulated
//                      symbolically over a sweep of extents: a write may
//                      never land on a physical layer still holding an
//                      unread source (clobber), and every logical layer of
//                      step t+1 must be found, freshly written, exactly
//                      where phys_layer(s, t+1) says (stale).
//
//  whole contract:
//   * ghost-depth    — the declared multi-domain exchange depth must cover
//                      read reach + write reach along x of every kernel in
//                      the cycle (ST pull 1+0, push 0+1, AA odd 1+1 = 2,
//                      MR cross reach 1).
#pragma once

#include <string>
#include <vector>

#include "analysis/static/contract.hpp"

namespace mlbm::analysis {

struct Finding {
  std::string check;   ///< check id, e.g. "ring-clobber"
  std::string kernel;  ///< contract tag of the offending kernel ("" = global)
  std::string detail;  ///< human-readable witness
};

struct AnalysisReport {
  std::vector<Finding> findings;
  std::vector<std::string> checks_run;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  /// True if any finding carries the given check id.
  [[nodiscard]] bool has(const std::string& check) const {
    for (const auto& f : findings) {
      if (f.check == check) return true;
    }
    return false;
  }
};

/// Runs every applicable check. A clean report on the canonical contracts
/// and >= 1 finding on every seeded mutation is mlbm-verify's gate.
AnalysisReport analyze(const EngineContract& c);

/// Ghost depth the multi-domain decomposition must exchange for this
/// contract: max over cycle kernels of (x read reach + x write reach).
int required_ghost_depth(const EngineContract& c);

/// One-line rendering ("check kernel: detail") for CLI / test output.
std::string to_string(const Finding& f);

}  // namespace mlbm::analysis
