// Monotonic wall-clock timer for benchmark harnesses.
#pragma once

#include <chrono>

namespace mlbm {

/// Simple RAII-free stopwatch. `elapsed_s()` may be called repeatedly; the
/// timer keeps running. `reset()` restarts the epoch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mlbm
