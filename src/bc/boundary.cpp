#include "bc/boundary.hpp"

#include "util/error.hpp"

#include <stdexcept>

namespace mlbm {

namespace {

/// du[a][b] = d u_a / d x_b -> Pi^neq = -2 rho cs2 tau S.
template <class L>
Moments<L> fd_state(real_t rho, const std::array<real_t, 3>& u,
                    const real_t (&du)[3][3], real_t tau) {
  Moments<L> m;
  m.rho = rho;
  for (int a = 0; a < L::D; ++a) {
    m.u[static_cast<std::size_t>(a)] = u[static_cast<std::size_t>(a)];
  }
  for (int p = 0; p < Moments<L>::NP; ++p) {
    const auto [a, b] = Moments<L>::pair(p);
    const real_t s_ab = real_t(0.5) * (du[a][b] + du[b][a]);
    const real_t pineq = -real_t(2) * rho * L::cs2 * tau * s_ab;
    m.pi[static_cast<std::size_t>(p)] =
        rho * m.u[static_cast<std::size_t>(a)] *
            m.u[static_cast<std::size_t>(b)] +
        pineq;
  }
  return m;
}

}  // namespace

template <class L>
InletOutletBC<L>::InletOutletBC(Box box,
                                std::vector<std::array<real_t, 3>> inlet_u,
                                real_t outlet_rho)
    : box_(box), inlet_u_(std::move(inlet_u)), outlet_rho_(outlet_rho) {
  if (inlet_u_.size() != static_cast<std::size_t>(box_.ny) *
                             static_cast<std::size_t>(box_.nz)) {
    throw ConfigError("InletOutletBC: inlet profile size mismatch");
  }
  if (box_.nx < 4) {
    throw ConfigError(
        "InletOutletBC: nx must be >= 4 for one-sided differences");
  }
}

template <class L>
void InletOutletBC<L>::apply(Engine<L>& eng) const {
  const Box& b = eng.geometry().box;
  const real_t tau = eng.tau();

  // Tangential derivative of a plane of velocities, central where possible.
  auto tang = [](const auto& get_u, int coord, int extent, int comp) -> real_t {
    if (extent < 2) return 0;
    if (coord == 0) return get_u(1)[comp] - get_u(0)[comp];
    if (coord == extent - 1) {
      return get_u(extent - 1)[comp] - get_u(extent - 2)[comp];
    }
    return real_t(0.5) * (get_u(coord + 1)[comp] - get_u(coord - 1)[comp]);
  };

  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      // ---- inlet plane (x = 0): velocity prescribed.
      if (eng.geometry().at(0, y, z) == NodeKind::kInlet) {
        const std::array<real_t, 3>& u0 = inlet_velocity(y, z);
        const Moments<L> m1 = eng.moments_at(1, y, z);
        const Moments<L> m2 = eng.moments_at(2, y, z);

        real_t du[3][3] = {};
        for (int a = 0; a < L::D; ++a) {
          const auto sa = static_cast<std::size_t>(a);
          // Second-order one-sided normal derivative into the flow.
          du[a][0] = real_t(0.5) * (-real_t(3) * u0[sa] + real_t(4) * m1.u[sa] -
                                    m2.u[sa]);
          // Tangential derivatives of the prescribed profile.
          du[a][1] = tang([&](int yy) { return inlet_velocity(yy, z); }, y,
                          b.ny, a);
          if (L::D == 3) {
            du[a][2] = tang([&](int zz) { return inlet_velocity(y, zz); }, z,
                            b.nz, a);
          }
        }
        eng.impose(0, y, z, fd_state<L>(m1.rho, u0, du, tau));
      }

      // ---- outlet plane (x = nx-1): density prescribed, zero-gradient u.
      if (eng.geometry().at(b.nx - 1, y, z) == NodeKind::kOutlet) {
        const Moments<L> m1 = eng.moments_at(b.nx - 2, y, z);
        const Moments<L> m2 = eng.moments_at(b.nx - 3, y, z);
        std::array<real_t, 3> u0 = {0, 0, 0};
        for (int a = 0; a < L::D; ++a) {
          u0[static_cast<std::size_t>(a)] = m1.u[static_cast<std::size_t>(a)];
        }

        auto plane_u = [&](int yy, int zz) {
          const Moments<L> m = eng.moments_at(b.nx - 2, yy, zz);
          std::array<real_t, 3> u = {0, 0, 0};
          for (int a = 0; a < L::D; ++a) {
            u[static_cast<std::size_t>(a)] = m.u[static_cast<std::size_t>(a)];
          }
          return u;
        };

        real_t du[3][3] = {};
        for (int a = 0; a < L::D; ++a) {
          const auto sa = static_cast<std::size_t>(a);
          // One-sided backward difference; with u(nx-1) extrapolated from
          // u(nx-2) the leading term reduces to the interior difference.
          du[a][0] = m1.u[sa] - m2.u[sa];
          du[a][1] = tang([&](int yy) { return plane_u(yy, z); }, y, b.ny, a);
          if (L::D == 3) {
            du[a][2] = tang([&](int zz) { return plane_u(y, zz); }, z, b.nz, a);
          }
        }
        eng.impose(b.nx - 1, y, z, fd_state<L>(outlet_rho_, u0, du, tau));
      }
    }
  }
}

template class InletOutletBC<D2Q9>;
template class InletOutletBC<D3Q19>;
template class InletOutletBC<D3Q27>;
template class InletOutletBC<D3Q15>;

}  // namespace mlbm
