# Empty compiler generated dependencies file for mlbm_proxy.
# This may be replaced when dependencies are built.
