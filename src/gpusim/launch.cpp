#include "gpusim/launch.hpp"

// The launchers are header-only templates (block dispatch must inline into
// the engines' kernel bodies — no std::function on the per-block path); this
// TU anchors the header in the library.
