// Bandwidth-efficiency model: how much of the roofline each pattern attains.
//
// The paper measures that neither pattern reaches its roofline: the fused ST
// kernel sustains the device's streaming efficiency, while the MR pattern
// additionally pays for shared-memory pipelining, block-wide synchronization,
// halo pressure and thread-block shape restrictions (Section 4.2/4.3). The
// model composes:
//
//   eta(ST) = stream_efficiency
//   eta(MR) = stream_efficiency * mr_pipeline_efficiency_{2d|3d} * occ_factor
//
// where occ_factor applies the paper's observation that "optimal performance
// is achieved with two or more thread blocks per SM": launches whose shared
// memory footprint allows fewer than two resident blocks are penalized.
#pragma once

#include <cstddef>

#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"
#include "perfmodel/pattern.hpp"

namespace mlbm::perf {

/// Measured characteristics of a kernel configuration, obtained from the
/// instrumented engines (traffic counters, occupancy inputs) and the
/// op-counting scalar (flops).
struct KernelCharacteristics {
  double flops_per_flup = 0;
  int threads_per_block = 0;
  std::size_t shared_bytes_per_block = 0;
  /// Extra logical global reads per nominal read caused by column halos
  /// (measured). Served by L2 on real hardware; folded into the pipeline
  /// efficiency calibration, reported for the analysis tables.
  double halo_read_fraction = 0;
  /// Width of one stored global value (8 = FP64 storage, 4 = FP32 storage);
  /// scales the B/FLUP the roofline divides the bandwidth by. Compute stays
  /// FP64 either way, so flops_per_flup is unaffected.
  double storage_elem_bytes = 8.0;
};

struct Efficiency {
  double bandwidth_fraction = 0;  ///< of peak DRAM bandwidth
  int blocks_per_sm = 0;
  double occupancy = 0;
};

/// Penalty applied when fewer than two blocks fit per SM.
inline constexpr double kLowResidencyPenalty = 0.85;

Efficiency bandwidth_efficiency(const gpusim::DeviceSpec& dev, Pattern p,
                                const LatticeInfo& lat,
                                const KernelCharacteristics& kc);

}  // namespace mlbm::perf
