// Quickstart: simulate a 2D channel with the moment-representation engine
// (MR-P) and print the developed velocity profile against the analytic
// Poiseuille solution.
//
//   ./examples/quickstart [--nx 96] [--ny 32] [--tau 0.8] [--umax 0.05]
//                         [--steps 4000] [--vtk out.vtk]
#include <cstdio>

#include "engines/mr_engine.hpp"
#include "io/vtk_writer.hpp"
#include "util/cli.hpp"
#include "workloads/analytic.hpp"
#include "workloads/channel.hpp"

int main(int argc, char** argv) {
  using namespace mlbm;
  const Cli cli(argc, argv);
  cli.reject_unknown({"nx", "ny", "steps", "tau", "umax", "vtk"});
  const int nx = cli.get_int("nx", 96, 1);
  const int ny = cli.get_int("ny", 32, 1);
  const real_t tau = cli.get_double("tau", 0.8);
  const real_t umax = cli.get_double("umax", 0.05);
  const int steps = cli.get_int("steps", 4000, 1);

  // 1. Describe the workload: a channel with FD inlet/outlet and walls.
  const auto channel = Channel<D2Q9>::create(nx, ny, 1, tau, umax);

  // 2. Pick an engine: here the paper's MR-P pattern (projective
  //    regularization, moment representation in global memory).
  MrEngine<D2Q9> engine(channel.geo, tau, Regularization::kProjective);
  channel.attach(engine);

  // 3. Run.
  std::printf("quickstart: %s on %dx%d channel, tau=%.3f, u_max=%.3f\n",
              engine.pattern_name(), nx, ny, tau, umax);
  engine.run(steps);

  // 4. Inspect: mid-channel profile vs analytic Poiseuille.
  std::printf("\n%4s %12s %12s %10s\n", "y", "u_x(sim)", "u_x(analytic)",
              "error");
  real_t max_err = 0;
  for (int y = 0; y < ny; ++y) {
    const auto m = engine.moments_at(nx / 2, y, 0);
    const real_t ref = umax * analytic::poiseuille(ny, y);
    const real_t err = std::abs(m.u[0] - ref);
    max_err = std::max(max_err, err);
    if (y % std::max(1, ny / 16) == 0) {
      std::printf("%4d %12.6f %12.6f %10.2e\n", y, m.u[0], ref, err);
    }
  }
  std::printf("\nmax |u - u_analytic| = %.3e (%.2f%% of u_max)\n", max_err,
              100.0 * max_err / umax);

  if (cli.has("vtk")) {
    const std::string path = cli.get("vtk", "quickstart.vtk");
    write_vtk(engine, path);
    std::printf("wrote %s\n", path.c_str());
  }
  return max_err < static_cast<real_t>(0.05) * umax ? 0 : 1;
}
