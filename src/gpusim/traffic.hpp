// DRAM traffic counters: the simulator's substitute for nvvp / rocprof.
//
// Every GlobalArray access funnels through a TrafficCounter. Counters are
// cheap relaxed atomics so kernels may run blocks on multiple host threads.
// Engines expose per-step deltas, from which bytes-per-fluid-lattice-update
// (Table 2) and achieved-bandwidth style figures are derived.
#pragma once

#include <atomic>
#include <cstdint>

namespace mlbm::gpusim {

struct TrafficSnapshot {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  [[nodiscard]] std::uint64_t bytes_total() const {
    return bytes_read + bytes_written;
  }

  TrafficSnapshot operator-(const TrafficSnapshot& o) const {
    return {bytes_read - o.bytes_read, bytes_written - o.bytes_written,
            reads - o.reads, writes - o.writes};
  }
  TrafficSnapshot& operator+=(const TrafficSnapshot& o) {
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    reads += o.reads;
    writes += o.writes;
    return *this;
  }
};

class TrafficCounter {
 public:
  void add_read(std::uint64_t bytes) {
    if (!enabled_) return;
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    reads_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_write(std::uint64_t bytes) {
    if (!enabled_) return;
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    writes_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Disable to speed up long physics-validation runs where traffic is not
  /// being measured.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] TrafficSnapshot snapshot() const {
    return {bytes_read_.load(std::memory_order_relaxed),
            bytes_written_.load(std::memory_order_relaxed),
            reads_.load(std::memory_order_relaxed),
            writes_.load(std::memory_order_relaxed)};
  }

  void reset() {
    bytes_read_ = 0;
    bytes_written_ = 0;
    reads_ = 0;
    writes_ = 0;
  }

 private:
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> writes_{0};
  bool enabled_ = true;
};

}  // namespace mlbm::gpusim
