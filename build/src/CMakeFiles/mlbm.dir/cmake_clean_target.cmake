file(REMOVE_RECURSE
  "libmlbm.a"
)
