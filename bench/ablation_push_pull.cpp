// Ablation: push vs pull ordering of the ST pattern (Section 3.1).
//
// "Introduced by [Wellein et al.], the pull configuration is considered the
// fastest GPU implementation of the standard distribution representation."
// Both orderings move the same bytes (verified on the instrumented
// engines); the difference is *which* side of the transfer is irregular:
// pull gathers (misaligned loads, stores coalesced), push scatters
// (misaligned stores, loads coalesced). Misaligned stores cost more than
// misaligned loads on both architectures — modelled here as a store-side
// bandwidth penalty on the push kernel.
//
// Results go to stdout, results/ablation_push_pull.csv and
// results/ablation_push_pull.json (the machine-readable artifact the smoke
// test gates on).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/report.hpp"
#include "perfmodel/roofline.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

namespace {

/// Write-side efficiency of scatter (push) relative to gather (pull):
/// misaligned stores serialize partial cache-line updates. Calibrated to
/// the ~10-20% pull advantage reported by Wellein et al. and successors.
constexpr double kPushStorePenalty = 0.88;

struct Row {
  std::string lattice;
  std::string config;
  std::string irregular_side;
  double bytes_per_node = 0;  ///< measured read+write bytes per node-update
  double v100_mflups = 0;
  double mi100_mflups = 0;
};

template <class L>
void compare(std::vector<Row>& rows) {
  Geometry geo = bench::periodic_geo(L::D == 2 ? 32 : 12,
                                     L::D == 2 ? 24 : 10, L::D == 2 ? 1 : 8);
  StEngine<L> pull(geo, 0.8, CollisionScheme::kBGK, 256, StreamMode::kPull);
  StEngine<L> push(geo, 0.8, CollisionScheme::kBGK, 256, StreamMode::kPush);
  const auto t_pull = bench::measure_traffic<L>(pull);
  const auto t_push = bench::measure_traffic<L>(push);

  const auto lat = perf::lattice_info<L>();
  const auto kc = bench::st_characteristics<L>();

  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();
  const double pull_v =
      perf::estimate_saturated(v100, Pattern::kST, lat, kc).mflups;
  const double pull_m =
      perf::estimate_saturated(mi100, Pattern::kST, lat, kc).mflups;

  rows.push_back({L::name(), "pull", "loads (gather)",
                  t_pull.read_bytes_per_node + t_pull.write_bytes_per_node,
                  pull_v, pull_m});
  rows.push_back({L::name(), "push", "stores (scatter)",
                  t_push.read_bytes_per_node + t_push.write_bytes_per_node,
                  pull_v * kPushStorePenalty, pull_m * kPushStorePenalty});
}

bool write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"bench\": \"ablation_push_pull\",\n"
    << "  \"push_store_penalty\": " << kPushStorePenalty << ",\n"
    << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    f << "    {\"lattice\": \"" << r.lattice << "\", \"config\": \""
      << r.config << "\", \"irregular_side\": \"" << r.irregular_side
      << "\", \"bytes_per_node\": " << r.bytes_per_node
      << ", \"v100_mflups\": " << r.v100_mflups
      << ", \"mi100_mflups\": " << r.mi100_mflups << "}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  cli.reject_unknown({"out"});
  const std::string out =
      cli.get("out", perf::results_dir() + "/ablation_push_pull.json");

  perf::print_banner("Ablation", "ST push vs pull configuration");

  std::vector<Row> rows;
  compare<D2Q9>(rows);
  compare<D3Q19>(rows);

  AsciiTable t({"lattice", "config", "irregular side", "B/node measured",
                "V100 MFLUPS", "MI100 MFLUPS"});
  CsvWriter csv(perf::results_dir() + "/ablation_push_pull.csv",
                {"lattice", "config", "v100_mflups", "mi100_mflups"});
  for (const Row& r : rows) {
    t.row({r.lattice, r.config, r.irregular_side,
           AsciiTable::num(r.bytes_per_node, 0),
           AsciiTable::num(r.v100_mflups, 0),
           AsciiTable::num(r.mi100_mflups, 0)});
    csv.row({r.lattice, r.config, CsvWriter::num(r.v100_mflups),
             CsvWriter::num(r.mi100_mflups)});
  }
  t.print();

  std::printf(
      "\nboth configurations move identical bytes; pull wins by keeping the\n"
      "store stream coalesced, which is why the paper benchmarks ST as pull.\n");

  // Gate: push and pull must move the same bytes (pairwise within 0.1%) and
  // the pull prediction must beat push on both devices.
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const Row& pull = rows[i];
    const Row& push = rows[i + 1];
    if (std::abs(pull.bytes_per_node - push.bytes_per_node) >
        1e-3 * pull.bytes_per_node) {
      std::fprintf(stderr, "error: %s push/pull bytes diverge\n",
                   pull.lattice.c_str());
      return 1;
    }
    if (pull.v100_mflups <= push.v100_mflups ||
        pull.mi100_mflups <= push.mi100_mflups) {
      std::fprintf(stderr, "error: %s pull does not win\n",
                   pull.lattice.c_str());
      return 1;
    }
  }

  if (!write_json(out, rows)) {
    std::fprintf(stderr, "\nerror: could not write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
