#include "fleet/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace mlbm::fleet {

const char* to_string(LadderAction a) {
  switch (a) {
    case LadderAction::kRetry: return "retry";
    case LadderAction::kMigrate: return "migrate";
    case LadderAction::kShrinkQuantum: return "shrink-quantum";
    case LadderAction::kPark: return "park";
  }
  return "unknown";
}

void FleetReport::finalize() {
  completed = parked = 0;
  total_retries = total_migrations = total_rollbacks = 0;
  std::vector<double> latencies;
  for (const JobOutcome& j : jobs) {
    if (j.status == JobStatus::kCompleted) {
      ++completed;
      latencies.push_back(j.latency_s());
    } else if (j.status == JobStatus::kParked) {
      ++parked;
    }
    total_retries += j.retries;
    total_migrations += j.migrations;
    total_rollbacks += j.rollbacks;
  }
  jobs_per_hour =
      makespan_s > 0 ? static_cast<double>(completed) / makespan_s * 3600 : 0;
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    if (latencies.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(idx, latencies.size() - 1)];
  };
  latency_p50_s = pct(0.50);
  latency_p95_s = pct(0.95);
  latency_max_s = latencies.empty() ? 0 : latencies.back();
  for (DeviceUtilization& d : devices) {
    d.utilization = makespan_s > 0 ? d.busy_s / makespan_s : 0;
  }
}

std::string FleetReport::describe() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "fleet: jobs=" << jobs.size() << " completed=" << completed
     << " parked=" << parked << " retries=" << total_retries
     << " migrations=" << total_migrations
     << " rollbacks=" << total_rollbacks << " makespan_s=" << makespan_s
     << " jobs_per_hour=" << jobs_per_hour << '\n';
  for (const JobOutcome& j : jobs) {
    os << j.spec.name() << ": " << to_string(j.status);
    if (j.status == JobStatus::kParked) {
      os << " kind=" << FleetError::to_string(j.parked_kind);
    }
    os << " device=" << j.device << " retries=" << j.retries
       << " migrations=" << j.migrations << " rollbacks=" << j.rollbacks
       << " launch_failures=" << j.launch_failures
       << " sentinel_trips=" << j.sentinel_trips
       << " backoff_ms=" << j.backoff_ms;
    if (j.status == JobStatus::kCompleted) {
      os << " hash=" << j.fields.moment_hash << " finish_s=" << j.finish_s;
    }
    os << '\n';
  }
  for (const LadderEvent& e : ladder) {
    os << "ladder: job=" << e.job << " tick=" << e.tick
       << " action=" << to_string(e.action) << " cause=" << e.cause
       << " from=" << e.from_device << " to=" << e.to_device
       << " quantum=" << e.quantum << '\n';
  }
  if (!fault_trace.empty()) {
    os << "fault-trace:\n" << fault_trace;
  }
  return os.str();
}

namespace {

void json_kv(std::ostringstream& os, const char* k, double v, bool comma = true) {
  os << '"' << k << "\":" << v;
  if (comma) os << ',';
}

void json_kv(std::ostringstream& os, const char* k, long long v,
             bool comma = true) {
  os << '"' << k << "\":" << v;
  if (comma) os << ',';
}

void json_kv(std::ostringstream& os, const char* k, const std::string& v,
             bool comma = true) {
  os << '"' << k << "\":\"" << v << '"';
  if (comma) os << ',';
}

}  // namespace

std::string FleetReport::json() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\n";
  json_kv(os, "jobs_total", static_cast<long long>(jobs.size()));
  os << "\n";
  json_kv(os, "completed", static_cast<long long>(completed));
  json_kv(os, "parked", static_cast<long long>(parked));
  json_kv(os, "total_retries", static_cast<long long>(total_retries));
  json_kv(os, "total_migrations", static_cast<long long>(total_migrations));
  json_kv(os, "total_rollbacks", static_cast<long long>(total_rollbacks));
  os << "\n";
  json_kv(os, "makespan_s", makespan_s);
  json_kv(os, "jobs_per_hour", jobs_per_hour);
  json_kv(os, "latency_p50_s", latency_p50_s);
  json_kv(os, "latency_p95_s", latency_p95_s);
  json_kv(os, "latency_max_s", latency_max_s);
  os << "\n\"jobs\": [\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobOutcome& j = jobs[i];
    os << "  {";
    json_kv(os, "id", static_cast<long long>(j.spec.id));
    json_kv(os, "name", j.spec.name());
    json_kv(os, "status", std::string(to_string(j.status)));
    json_kv(os, "parked_kind",
            std::string(FleetError::to_string(j.parked_kind)));
    json_kv(os, "device", static_cast<long long>(j.device));
    json_kv(os, "retries", static_cast<long long>(j.retries));
    json_kv(os, "migrations", static_cast<long long>(j.migrations));
    json_kv(os, "rollbacks", static_cast<long long>(j.rollbacks));
    json_kv(os, "launch_failures", static_cast<long long>(j.launch_failures));
    json_kv(os, "sentinel_trips", static_cast<long long>(j.sentinel_trips));
    json_kv(os, "backoff_ms", static_cast<long long>(j.backoff_ms));
    json_kv(os, "moment_hash", std::to_string(j.fields.moment_hash));
    json_kv(os, "mass", j.fields.mass);
    json_kv(os, "kinetic_energy", j.fields.kinetic_energy);
    json_kv(os, "submit_s", j.submit_s);
    json_kv(os, "finish_s", j.finish_s, false);
    os << "}" << (i + 1 < jobs.size() ? "," : "") << "\n";
  }
  os << "],\n\"devices\": [\n";
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const DeviceUtilization& d = devices[i];
    os << "  {";
    json_kv(os, "id", static_cast<long long>(d.id));
    json_kv(os, "name", d.name);
    json_kv(os, "alive", std::string(d.alive ? "true" : "false"));
    json_kv(os, "busy_s", d.busy_s);
    json_kv(os, "utilization", d.utilization);
    json_kv(os, "jobs_completed", static_cast<long long>(d.jobs_completed));
    json_kv(os, "jobs_migrated_in",
            static_cast<long long>(d.jobs_migrated_in));
    json_kv(os, "jobs_migrated_out",
            static_cast<long long>(d.jobs_migrated_out), false);
    os << "}" << (i + 1 < devices.size() ? "," : "") << "\n";
  }
  os << "],\n\"ladder\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const LadderEvent& e = ladder[i];
    os << "  {";
    json_kv(os, "job", static_cast<long long>(e.job));
    json_kv(os, "tick", static_cast<long long>(e.tick));
    json_kv(os, "action", std::string(to_string(e.action)));
    json_kv(os, "cause", e.cause);
    json_kv(os, "from_device", static_cast<long long>(e.from_device));
    json_kv(os, "to_device", static_cast<long long>(e.to_device));
    json_kv(os, "quantum", static_cast<long long>(e.quantum), false);
    os << "}" << (i + 1 < ladder.size() ? "," : "") << "\n";
  }
  os << "]\n}\n";
  return os.str();
}

}  // namespace mlbm::fleet
