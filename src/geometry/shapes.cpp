#include "geometry/shapes.hpp"

#include <algorithm>

namespace mlbm::shapes {

namespace {

/// splitmix64: the per-node hash behind add_random_solids.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

index_t add_cylinder(Geometry& geo, real_t cx, real_t cy, real_t r) {
  const real_t r2 = r * r;
  index_t n = 0;
  for (int z = 0; z < geo.box.nz; ++z) {
    for (int y = 0; y < geo.box.ny; ++y) {
      for (int x = 0; x < geo.box.nx; ++x) {
        const real_t dx = static_cast<real_t>(x) - cx;
        const real_t dy = static_cast<real_t>(y) - cy;
        if (dx * dx + dy * dy <= r2 && !geo.solid(x, y, z)) {
          geo.set_solid(x, y, z);
          ++n;
        }
      }
    }
  }
  return n;
}

index_t add_sphere(Geometry& geo, real_t cx, real_t cy, real_t cz, real_t r) {
  const real_t r2 = r * r;
  index_t n = 0;
  for (int z = 0; z < geo.box.nz; ++z) {
    for (int y = 0; y < geo.box.ny; ++y) {
      for (int x = 0; x < geo.box.nx; ++x) {
        const real_t dx = static_cast<real_t>(x) - cx;
        const real_t dy = static_cast<real_t>(y) - cy;
        const real_t dz = static_cast<real_t>(z) - cz;
        if (dx * dx + dy * dy + dz * dz <= r2 && !geo.solid(x, y, z)) {
          geo.set_solid(x, y, z);
          ++n;
        }
      }
    }
  }
  return n;
}

index_t add_block(Geometry& geo, int x0, int x1, int y0, int y1, int z0,
                  int z1) {
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  z0 = std::max(z0, 0);
  x1 = std::min(x1, geo.box.nx);
  y1 = std::min(y1, geo.box.ny);
  z1 = std::min(z1, geo.box.nz);
  index_t n = 0;
  for (int z = z0; z < z1; ++z) {
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        if (!geo.solid(x, y, z)) {
          geo.set_solid(x, y, z);
          ++n;
        }
      }
    }
  }
  return n;
}

index_t add_random_solids(Geometry& geo, double fraction, std::uint64_t seed) {
  if (fraction <= 0) return 0;
  // hash -> [0, 1): top 53 bits as a double.
  index_t n = 0;
  for (int z = 0; z < geo.box.nz; ++z) {
    for (int y = 0; y < geo.box.ny; ++y) {
      for (int x = 0; x < geo.box.nx; ++x) {
        if (geo.at(x, y, z) != NodeKind::kFluid) continue;
        const std::uint64_t h = splitmix64(
            seed ^ splitmix64(static_cast<std::uint64_t>(geo.box.idx(x, y, z))));
        const double u =
            static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
        if (u < fraction) {
          geo.set_solid(x, y, z);
          ++n;
        }
      }
    }
  }
  return n;
}

}  // namespace mlbm::shapes
