#include "util/timer.hpp"

// Timer is header-only; this translation unit only anchors the header in the
// library so missing-include errors surface at library build time.
