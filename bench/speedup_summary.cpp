// Section 5 headline numbers: saturated MFLUPS per device/pattern/lattice
// and the MR-P vs ST speedups (paper: 1.32x / 1.38x for D2Q9 and
// 1.46x / 1.14x for D3Q19 on V100 / MI100).
#include <cstdio>

#include "common.hpp"
#include "perfmodel/mflups_model.hpp"
#include "perfmodel/report.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace mlbm;
using perf::Pattern;

int main() {
  perf::print_banner("Speedups", "Saturated MFLUPS and MR-P/ST speedups");

  const auto v100 = gpusim::DeviceSpec::v100();
  const auto mi100 = gpusim::DeviceSpec::mi100();

  struct Cell {
    double st, ep, mrp, mrr;
  };
  auto compute = [&](const gpusim::DeviceSpec& dev, auto lattice_tag) -> Cell {
    using L = decltype(lattice_tag);
    const auto lat = perf::lattice_info<L>();
    Cell c{};
    c.st = perf::estimate_saturated(dev, Pattern::kST, lat,
                                    bench::characteristics<L>(Pattern::kST))
               .mflups;
    // EP keeps ST's kernel shape and flop count and moves ST's 2Q elements
    // (ep_bytes_per_flup == bytes_per_flup(kST), pinned in the verify
    // matrix), so the saturated model evaluates it through the ST pattern.
    // It appears as its own column because EP is the strongest streaming
    // baseline: same speed as ST at HALF the footprint, so MR-P/EP is the
    // honest remaining speedup claim.
    c.ep = c.st;
    c.mrp = perf::estimate_saturated(dev, Pattern::kMRP, lat,
                                     bench::characteristics<L>(Pattern::kMRP))
                .mflups;
    c.mrr = perf::estimate_saturated(dev, Pattern::kMRR, lat,
                                     bench::characteristics<L>(Pattern::kMRR))
                .mflups;
    return c;
  };

  const Cell v2 = compute(v100, D2Q9{});
  const Cell v3 = compute(v100, D3Q19{});
  const Cell m2 = compute(mi100, D2Q9{});
  const Cell m3 = compute(mi100, D3Q19{});

  AsciiTable t({"Device", "Lattice", "ST", "EP", "MR-P", "MR-R", "MR-P/ST",
                "MR-P/EP", "paper speedup"});
  CsvWriter csv(perf::results_dir() + "/speedup_summary.csv",
                {"device", "lattice", "st_mflups", "ep_mflups", "mrp_mflups",
                 "mrr_mflups", "speedup", "speedup_vs_ep", "paper_speedup"});

  struct Row {
    const char* dev;
    const char* lat;
    Cell c;
    double paper;
  };
  const Row rows[] = {{"V100", "D2Q9", v2, 1.32},
                      {"MI100", "D2Q9", m2, 1.38},
                      {"V100", "D3Q19", v3, 1.46},
                      {"MI100", "D3Q19", m3, 1.14}};
  for (const Row& r : rows) {
    const double sp = r.c.mrp / r.c.st;
    const double sp_ep = r.c.mrp / r.c.ep;
    t.row({r.dev, r.lat, AsciiTable::num(r.c.st, 0),
           AsciiTable::num(r.c.ep, 0), AsciiTable::num(r.c.mrp, 0),
           AsciiTable::num(r.c.mrr, 0), AsciiTable::num(sp, 2) + "x",
           AsciiTable::num(sp_ep, 2) + "x",
           AsciiTable::num(r.paper, 2) + "x"});
    csv.row({r.dev, r.lat, CsvWriter::num(r.c.st), CsvWriter::num(r.c.ep),
             CsvWriter::num(r.c.mrp), CsvWriter::num(r.c.mrr),
             CsvWriter::num(sp), CsvWriter::num(sp_ep),
             CsvWriter::num(r.paper)});
  }
  t.print();

  std::printf("\nMR-R penalty vs MR-P: V100 D3Q19 %.0f MFLUPS (paper ~800), "
              "MI100 D3Q19 %.0f (paper ~700)\n",
              v3.mrp - v3.mrr, m3.mrp - m3.mrr);
  return 0;
}
