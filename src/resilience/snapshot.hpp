// In-memory state snapshots: the rollback unit of the resilience layer.
//
// A snapshot captures everything a replayed window must reproduce
// bit-identically:
//   * the engine's raw device state (when it supports lossless
//     serialization — see Engine::raw_state_tag) plus the step count it was
//     captured at, since buffer parity and circular-shift addressing follow
//     the clock,
//   * the full moment state {rho, u, Pi} of every node — the portable
//     representation every engine produces and accepts (same contract as the
//     on-disk checkpoint format), kept alongside the raw blob so a snapshot
//     still restores into a *different* engine type (the degraded-precision
//     retry path relies on exactly this),
//   * the profiler state (traffic counter totals + per-kernel records) of
//     every gpusim profiler the engine owns (one for a monolithic engine,
//     one per slab for MultiDomainEngine),
//   * MultiDomainEngine's exchange-volume counter.
//
// Restore prefers the raw path when the target's layout tag matches the
// capture source — that path is exact, so re-running the aborted window
// produces moments AND traffic counters bit-identical to a run that never
// faulted (the determinism contract the rollback tests pin). The moment path
// is the cross-engine fallback; it projects away higher-order
// non-equilibrium content on distribution engines (~1 ulp on BGK), which is
// fine for a degrade restore but would break the bit-identity contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engines/engine.hpp"
#include "gpusim/profiler.hpp"

namespace mlbm::resilience {

template <class L>
struct StateSnapshot {
  int step = 0;  ///< runner step the snapshot was taken at
  int time = 0;  ///< engine time() at capture (parity / layer addressing)
  /// cells() * (1 + D + NP) moment values, x-fastest node order.
  std::vector<real_t> values;
  /// Source engine's raw layout tag; empty when the source is moment-only.
  std::string raw_tag;
  /// Exact raw state (only when raw_tag is non-empty).
  std::vector<real_t> raw;
  /// Profiler states in engine order (empty for host engines).
  std::vector<gpusim::ProfilerState> profilers;
  /// MultiDomainEngine::exchanged_values_total() (0 otherwise).
  std::uint64_t exchanged_total = 0;

  [[nodiscard]] bool empty() const { return values.empty() && raw.empty(); }
};

/// Captures raw state (when supported) + profiler/exchange counters of `eng`
/// at `step`. `with_moments` additionally captures the portable moment
/// payload; the runner skips it when no cross-engine restore can ever happen
/// (no fallback factory), since the full moment read is the expensive part
/// of a capture. Moment-only engines always get the moment payload.
template <class L>
StateSnapshot<L> capture_state(const Engine<L>& eng, int step,
                               bool with_moments = true);

/// Restores a snapshot into `eng` (box extents must match). The engine is
/// first re-timed to the capture step; then the raw state is written back
/// when the engine's layout tag matches the capture source (exact), or the
/// moments are imposed on every node otherwise (portable fallback).
/// Profiler and exchange counters are restored when the engine has them (an
/// engine with a different profiler topology than the capture source — e.g.
/// restoring into a rebuilt fallback engine — gets the states applied
/// positionally as far as they go).
template <class L>
void restore_state(Engine<L>& eng, const StateSnapshot<L>& snap);

extern template struct StateSnapshot<D2Q9>;
extern template struct StateSnapshot<D3Q19>;
extern template struct StateSnapshot<D3Q27>;
extern template struct StateSnapshot<D3Q15>;
extern template StateSnapshot<D2Q9> capture_state<D2Q9>(const Engine<D2Q9>&,
                                                        int, bool);
extern template StateSnapshot<D3Q19> capture_state<D3Q19>(
    const Engine<D3Q19>&, int, bool);
extern template StateSnapshot<D3Q27> capture_state<D3Q27>(
    const Engine<D3Q27>&, int, bool);
extern template StateSnapshot<D3Q15> capture_state<D3Q15>(
    const Engine<D3Q15>&, int, bool);
extern template void restore_state<D2Q9>(Engine<D2Q9>&,
                                         const StateSnapshot<D2Q9>&);
extern template void restore_state<D3Q19>(Engine<D3Q19>&,
                                          const StateSnapshot<D3Q19>&);
extern template void restore_state<D3Q27>(Engine<D3Q27>&,
                                          const StateSnapshot<D3Q27>&);
extern template void restore_state<D3Q15>(Engine<D3Q15>&,
                                          const StateSnapshot<D3Q15>&);

}  // namespace mlbm::resilience
