
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/fields.cpp" "src/CMakeFiles/mlbm.dir/analysis/fields.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/analysis/fields.cpp.o.d"
  "/root/repo/src/bc/boundary.cpp" "src/CMakeFiles/mlbm.dir/bc/boundary.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/bc/boundary.cpp.o.d"
  "/root/repo/src/core/lattice_instances.cpp" "src/CMakeFiles/mlbm.dir/core/lattice_instances.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/core/lattice_instances.cpp.o.d"
  "/root/repo/src/engines/aa_engine.cpp" "src/CMakeFiles/mlbm.dir/engines/aa_engine.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/engines/aa_engine.cpp.o.d"
  "/root/repo/src/engines/mr_engine.cpp" "src/CMakeFiles/mlbm.dir/engines/mr_engine.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/engines/mr_engine.cpp.o.d"
  "/root/repo/src/engines/reference_engine.cpp" "src/CMakeFiles/mlbm.dir/engines/reference_engine.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/engines/reference_engine.cpp.o.d"
  "/root/repo/src/engines/st_engine.cpp" "src/CMakeFiles/mlbm.dir/engines/st_engine.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/engines/st_engine.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/CMakeFiles/mlbm.dir/gpusim/device.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/gpusim/device.cpp.o.d"
  "/root/repo/src/gpusim/launch.cpp" "src/CMakeFiles/mlbm.dir/gpusim/launch.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/gpusim/launch.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/CMakeFiles/mlbm.dir/gpusim/occupancy.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/gpusim/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/profiler.cpp" "src/CMakeFiles/mlbm.dir/gpusim/profiler.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/gpusim/profiler.cpp.o.d"
  "/root/repo/src/io/checkpoint.cpp" "src/CMakeFiles/mlbm.dir/io/checkpoint.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/io/checkpoint.cpp.o.d"
  "/root/repo/src/io/vtk_writer.cpp" "src/CMakeFiles/mlbm.dir/io/vtk_writer.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/io/vtk_writer.cpp.o.d"
  "/root/repo/src/multidev/multi_domain.cpp" "src/CMakeFiles/mlbm.dir/multidev/multi_domain.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/multidev/multi_domain.cpp.o.d"
  "/root/repo/src/perfmodel/efficiency.cpp" "src/CMakeFiles/mlbm.dir/perfmodel/efficiency.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/perfmodel/efficiency.cpp.o.d"
  "/root/repo/src/perfmodel/mflups_model.cpp" "src/CMakeFiles/mlbm.dir/perfmodel/mflups_model.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/perfmodel/mflups_model.cpp.o.d"
  "/root/repo/src/perfmodel/opcount.cpp" "src/CMakeFiles/mlbm.dir/perfmodel/opcount.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/perfmodel/opcount.cpp.o.d"
  "/root/repo/src/perfmodel/report.cpp" "src/CMakeFiles/mlbm.dir/perfmodel/report.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/perfmodel/report.cpp.o.d"
  "/root/repo/src/perfmodel/roofline.cpp" "src/CMakeFiles/mlbm.dir/perfmodel/roofline.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/perfmodel/roofline.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/mlbm.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/mlbm.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/mlbm.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/mlbm.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/util/timer.cpp.o.d"
  "/root/repo/src/workloads/analytic.cpp" "src/CMakeFiles/mlbm.dir/workloads/analytic.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/workloads/analytic.cpp.o.d"
  "/root/repo/src/workloads/cavity.cpp" "src/CMakeFiles/mlbm.dir/workloads/cavity.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/workloads/cavity.cpp.o.d"
  "/root/repo/src/workloads/channel.cpp" "src/CMakeFiles/mlbm.dir/workloads/channel.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/workloads/channel.cpp.o.d"
  "/root/repo/src/workloads/shear_layer.cpp" "src/CMakeFiles/mlbm.dir/workloads/shear_layer.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/workloads/shear_layer.cpp.o.d"
  "/root/repo/src/workloads/taylor_green.cpp" "src/CMakeFiles/mlbm.dir/workloads/taylor_green.cpp.o" "gcc" "src/CMakeFiles/mlbm.dir/workloads/taylor_green.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
