// Kernel launch facilities.
//
// Two launch shapes cover every kernel in this repository:
//
//  * `launch` — independent blocks, executed in parallel over host threads.
//    Used by the ST stream-collide kernel (Algorithm 1) and the boundary
//    condition kernels, whose blocks never communicate.
//
//  * `launch_level_synced` — blocks with per-block persistent state that
//    advance through a sequence of *levels* (the MR sliding window's tiles,
//    Algorithm 2), with a barrier between levels. On a real GPU all columns
//    run concurrently inside one kernel launch and the circular array shift
//    bounds the inter-column skew; the level barrier is the simulator's
//    scheduler that enforces the same bounded-skew contract (DESIGN.md §3).
//    All levels execute inside ONE persistent parallel region — mirroring
//    the single persistent kernel launch on hardware — with an OpenMP
//    barrier between levels instead of a fork/join per level.
//
// Both launchers dispatch the block body as a template parameter (no
// std::function anywhere on the per-block path), and both exist in two
// overloads: a by-name form that looks the KernelRecord up in the profiler,
// and a by-record form taking a cached `KernelRecord&` so steady-state
// stepping does no string hashing (records have stable addresses; see
// profiler.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/block.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/profiler.hpp"

namespace mlbm::gpusim {

namespace detail {

inline Dim3 unflatten(long long b, const Dim3& grid) {
  Dim3 idx;
  idx.x = static_cast<int>(b % grid.x);
  idx.y = static_cast<int>((b / grid.x) % grid.y);
  idx.z = static_cast<int>(b / (static_cast<long long>(grid.x) * grid.y));
  return idx;
}

/// Runs `fn(b)` for b in [0, nblocks) across the host threads. `fn` is a
/// template parameter: the inner loop is a direct (inlinable) call.
template <class Fn>
void parallel_for_blocks(long long nblocks, Fn&& fn) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (long long b = 0; b < nblocks; ++b) {
    fn(b);
  }
#else
  for (long long b = 0; b < nblocks; ++b) {
    fn(b);
  }
#endif
}

}  // namespace detail

/// Launches `body(BlockCtx&)` once per block. Blocks are independent and may
/// execute concurrently; aggregates traffic and barrier counts into `rec`.
template <class Body>
void launch(Profiler& prof, KernelRecord& rec, Dim3 grid, Dim3 block,
            Body&& body) {
  // Fault-injection point: a hook may throw TransientLaunchError here, i.e.
  // before any block runs or any counter moves — the failed launch left the
  // device untouched and the caller may retry.
  if (LaunchFaultHook* hook = prof.launch_fault_hook()) hook->on_launch(rec);
  SanitizerHook* san = prof.sanitizer_hook();
  if (san != nullptr) san->on_launch_begin(rec, grid, block, /*levels=*/1);
  const TrafficSnapshot before = prof.counter().snapshot();
  const long long nblocks = grid.count();

  std::vector<std::uint64_t> syncs(static_cast<std::size_t>(nblocks), 0);
  std::vector<std::size_t> shared(static_cast<std::size_t>(nblocks), 0);

  detail::parallel_for_blocks(nblocks, [&](long long b) {
    BlockCtx ctx(detail::unflatten(b, grid), block);
    if (san != nullptr) {
      ctx.attach_sanitizer(san, b);
      san->on_block_begin(b, /*level=*/0);
    }
    body(ctx);
    if (san != nullptr) san->on_block_end();
    syncs[static_cast<std::size_t>(b)] = ctx.sync_count();
    shared[static_cast<std::size_t>(b)] = ctx.shared_bytes();
  });

  rec.grid = grid;
  rec.block = block;
  rec.launches += 1;
  for (long long b = 0; b < nblocks; ++b) {
    rec.syncs += syncs[static_cast<std::size_t>(b)];
    if (shared[static_cast<std::size_t>(b)] > rec.shared_bytes_per_block) {
      rec.shared_bytes_per_block = shared[static_cast<std::size_t>(b)];
    }
  }
  rec.traffic += prof.counter().snapshot() - before;
  if (san != nullptr) san->on_launch_end(syncs);
}

/// By-name convenience form: looks up (creating if needed) the kernel record.
/// Steady-state callers should cache `prof.record(name)` and use the
/// by-record overload instead.
template <class Body>
void launch(Profiler& prof, const std::string& name, Dim3 grid, Dim3 block,
            Body&& body) {
  launch(prof, prof.record(name), grid, block, std::forward<Body>(body));
}

/// Launches blocks that carry persistent per-block state through `levels`
/// barrier-separated steps.
///
/// `make_state(BlockCtx&) -> State` runs once per block (allocating shared
/// memory, initializing registers); `level_fn(BlockCtx&, State&, int level)`
/// runs for every block at every level, with a global barrier between
/// levels. The whole level sequence runs inside a single persistent parallel
/// region: one fork at entry, one join at exit, and a barrier (the implicit
/// one at the end of each worksharing loop) between levels — the same
/// execution shape as one persistent GPU kernel.
template <class MakeState, class LevelFn>
void launch_level_synced(Profiler& prof, KernelRecord& rec, Dim3 grid,
                         Dim3 block, int levels, MakeState&& make_state,
                         LevelFn&& level_fn) {
  using State = decltype(make_state(std::declval<BlockCtx&>()));
  // Same fault-injection point as `launch`: throws happen before any
  // per-block state exists.
  if (LaunchFaultHook* hook = prof.launch_fault_hook()) hook->on_launch(rec);
  SanitizerHook* san = prof.sanitizer_hook();
  if (san != nullptr) san->on_launch_begin(rec, grid, block, levels);
  const TrafficSnapshot before = prof.counter().snapshot();
  const long long nblocks = grid.count();

  std::vector<BlockCtx> ctxs;
  ctxs.reserve(static_cast<std::size_t>(nblocks));
  std::vector<State> states;
  states.reserve(static_cast<std::size_t>(nblocks));
  for (long long b = 0; b < nblocks; ++b) {
    ctxs.emplace_back(detail::unflatten(b, grid), block);
    // Attach before make_state so shared allocations register their spans.
    if (san != nullptr) ctxs.back().attach_sanitizer(san, b);
    states.push_back(make_state(ctxs.back()));
  }

  // Each level boundary is a barrier epoch for every block (the worksharing
  // barrier orders phases exactly like an intra-block sync), and each
  // (block, level) slice sets the sanitizer's attribution context.
  auto run_block_level = [&](long long b, int level) {
    BlockCtx& ctx = ctxs[static_cast<std::size_t>(b)];
    ctx.begin_phase();
    if (san != nullptr) san->on_block_begin(b, level);
    level_fn(ctx, states[static_cast<std::size_t>(b)], level);
    if (san != nullptr) san->on_block_end();
  };

#ifdef _OPENMP
#pragma omp parallel default(shared)
  {
    for (int level = 0; level < levels; ++level) {
#pragma omp for schedule(static)
      for (long long b = 0; b < nblocks; ++b) {
        run_block_level(b, level);
      }
      // The worksharing loop's implicit barrier is the level barrier: every
      // block finishes the level before any block starts the next.
    }
  }
#else
  for (int level = 0; level < levels; ++level) {
    for (long long b = 0; b < nblocks; ++b) {
      run_block_level(b, level);
    }
  }
#endif

  rec.grid = grid;
  rec.block = block;
  rec.launches += 1;
  std::vector<std::uint64_t> syncs(static_cast<std::size_t>(nblocks), 0);
  for (long long b = 0; b < nblocks; ++b) {
    BlockCtx& ctx = ctxs[static_cast<std::size_t>(b)];
    syncs[static_cast<std::size_t>(b)] = ctx.sync_count();
    rec.syncs += ctx.sync_count();
    if (ctx.shared_bytes() > rec.shared_bytes_per_block) {
      rec.shared_bytes_per_block = ctx.shared_bytes();
    }
  }
  rec.traffic += prof.counter().snapshot() - before;
  if (san != nullptr) san->on_launch_end(syncs);
}

/// By-name convenience form of `launch_level_synced` (see `launch`).
template <class MakeState, class LevelFn>
void launch_level_synced(Profiler& prof, const std::string& name, Dim3 grid,
                         Dim3 block, int levels, MakeState&& make_state,
                         LevelFn&& level_fn) {
  launch_level_synced(prof, prof.record(name), grid, block, levels,
                      std::forward<MakeState>(make_state),
                      std::forward<LevelFn>(level_fn));
}

}  // namespace mlbm::gpusim
