file(REMOVE_RECURSE
  "../bench/table4_bandwidth"
  "../bench/table4_bandwidth.pdb"
  "CMakeFiles/table4_bandwidth.dir/table4_bandwidth.cpp.o"
  "CMakeFiles/table4_bandwidth.dir/table4_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
