#include "analysis/sanitizer/sanitizer.hpp"

#include <algorithm>
#include <cassert>
#include <shared_mutex>
#include <sstream>

#include "gpusim/profiler.hpp"

namespace mlbm::analysis {

namespace {

// Packed shadow stamp: [63:40] per-array touch counter, [39:20] owner field
// (0 = none, 1 = host, b+2 = block b), [19:0] level+1. Touch-tagging means
// shadows never need clearing between launches: a stamp from an earlier
// launch simply decodes to an older touch value.
constexpr std::uint64_t kOwnerNone = 0;
constexpr std::uint64_t kOwnerHost = 1;
constexpr std::uint64_t kOwnerMax = (1ull << 20) - 1;
constexpr std::uint32_t kTouchMask = 0xFFFFFFu;

inline std::uint64_t owner_of_block(long long b) {
  const auto clamped = static_cast<std::uint64_t>(b < 0 ? 0 : b);
  return std::min<std::uint64_t>(clamped + 2, kOwnerMax);
}
inline long long block_of_owner(std::uint64_t owner) {
  return owner >= 2 ? static_cast<long long>(owner - 2) : -1;
}
inline std::uint64_t pack(std::uint32_t touch, std::uint64_t owner,
                          int level) {
  return (static_cast<std::uint64_t>(touch & kTouchMask) << 40) |
         ((owner & kOwnerMax) << 20) |
         (static_cast<std::uint64_t>(level + 1) & 0xFFFFFu);
}
inline std::uint32_t stamp_touch(std::uint64_t s) {
  return static_cast<std::uint32_t>(s >> 40) & kTouchMask;
}
inline std::uint64_t stamp_owner(std::uint64_t s) { return (s >> 20) & kOwnerMax; }
inline int stamp_level(std::uint64_t s) {
  return static_cast<int>(s & 0xFFFFFu) - 1;
}

// Per-OS-thread attribution context: which (sanitizer, block, level) the
// thread is currently executing. Set by the launchers around each block's
// level slice; global accesses issued outside any slice (host-side counted
// access, which engines do not do) fall back to host attribution.
struct TlsCtx {
  const void* owner = nullptr;
  long long block = -1;
  int level = -1;
};
thread_local TlsCtx tls_ctx;

// Element flag bits (one byte per element).
constexpr std::uint8_t kInit = 1u;            ///< written at least once
constexpr std::uint8_t kUninitReported = 2u;  ///< initcheck fired here
constexpr std::uint8_t kStaleReported = 4u;   ///< staleness fired here

std::shared_mutex& arrays_mu() {
  static std::shared_mutex mu;
  return mu;
}

}  // namespace

const char* to_string(HazardKind k) {
  switch (k) {
    case HazardKind::kSharedRace: return "shared-race";
    case HazardKind::kOob: return "out-of-bounds";
    case HazardKind::kUninitRead: return "uninit-read";
    case HazardKind::kSyncDivergence: return "sync-divergence";
    case HazardKind::kCrossBlockConflict: return "cross-block-conflict";
    case HazardKind::kStaleRead: return "stale-read";
  }
  return "unknown";
}

std::string Hazard::to_string() const {
  std::ostringstream os;
  os << analysis::to_string(kind) << " in kernel '" << kernel << "' array '"
     << array << "' elem " << elem;
  if (block_a >= 0) os << " block " << block_a;
  if (level_a >= 0) os << " level " << level_a;
  if (tid_a >= 0) os << " tid " << tid_a;
  if (block_b >= 0 || tid_b >= 0) {
    os << " vs";
    if (block_b >= 0) os << " block " << block_b;
    if (level_b >= 0) os << " level " << level_b;
    if (tid_b >= 0) os << " tid " << tid_b;
  }
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

const Hazard* SanitizerReport::first(HazardKind k) const {
  for (const Hazard& h : hazards) {
    if (h.kind == k) return &h;
  }
  return nullptr;
}

std::string SanitizerReport::to_string() const {
  std::ostringstream os;
  if (clean()) {
    os << "sanitizer: 0 hazards\n";
    return os.str();
  }
  os << "sanitizer: " << total() << " hazard(s)";
  for (int k = 0; k < kHazardKinds; ++k) {
    if (counts[static_cast<std::size_t>(k)] != 0) {
      os << "  [" << analysis::to_string(static_cast<HazardKind>(k)) << ": "
         << counts[static_cast<std::size_t>(k)] << "]";
    }
  }
  os << "\n";
  for (const Hazard& h : hazards) os << "  " << h.to_string() << "\n";
  if (total() > hazards.size()) {
    os << "  ... (" << total() - hazards.size() << " more not recorded)\n";
  }
  return os.str();
}

// ---- shadow structures ----------------------------------------------------

struct Sanitizer::ArrayShadow {
  std::string name;
  std::size_t n = 0;
  std::size_t elem_bytes = 0;
  bool sliding_window = false;
  std::unique_ptr<std::atomic<std::uint64_t>[]> wstamp;
  std::unique_ptr<std::atomic<std::uint64_t>[]> rstamp;
  std::unique_ptr<std::atomic<std::uint8_t>[]> flags;
  std::atomic<std::uint64_t> last_seen_launch{0};
  std::atomic<std::uint32_t> touch{0};
  std::mutex touch_mu;

  void resize(std::size_t count) {
    n = count;
    wstamp = std::make_unique<std::atomic<std::uint64_t>[]>(count);
    rstamp = std::make_unique<std::atomic<std::uint64_t>[]>(count);
    flags = std::make_unique<std::atomic<std::uint8_t>[]>(count);
    for (std::size_t i = 0; i < count; ++i) {
      wstamp[i].store(0, std::memory_order_relaxed);
      rstamp[i].store(0, std::memory_order_relaxed);
      flags[i].store(0, std::memory_order_relaxed);
    }
  }
};

struct Sanitizer::BlockShared {
  struct Word {
    std::uint64_t epoch_p1 = 0;  ///< 0: never accessed
    int tid = -1;
    bool write = false;
    bool init = false;
    bool uninit_reported = false;
  };
  struct Span {
    const std::byte* base = nullptr;
    std::size_t words = 0;
    std::size_t word_bytes = 1;
    std::size_t word_offset = 0;  ///< word index of this span's first word
    std::vector<Word> shadow;
  };
  std::vector<Span> spans;
  std::size_t total_words = 0;
};

// ---- lifecycle ------------------------------------------------------------

Sanitizer::Sanitizer(std::size_t max_recorded) : max_recorded_(max_recorded) {}
Sanitizer::~Sanitizer() = default;

SanitizerReport Sanitizer::report() const {
  SanitizerReport r;
  std::lock_guard<std::mutex> lk(mu_);
  r.hazards = hazards_;
  for (int k = 0; k < kHazardKinds; ++k) {
    r.counts[static_cast<std::size_t>(k)] =
        counts_[static_cast<std::size_t>(k)].load(std::memory_order_relaxed);
  }
  return r;
}

void Sanitizer::reset() {
  std::unique_lock<std::shared_mutex> alk(arrays_mu());
  std::lock_guard<std::mutex> lk(mu_);
  hazards_.clear();
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& [_, a] : arrays_) {
    a->resize(a->n);
    a->last_seen_launch.store(0, std::memory_order_relaxed);
    a->touch.store(0, std::memory_order_relaxed);
  }
  block_shared_.clear();
  launch_seq_.store(0, std::memory_order_relaxed);
}

void Sanitizer::record(Hazard h) {
  counts_[static_cast<std::size_t>(static_cast<int>(h.kind))].fetch_add(
      1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  if (hazards_.size() < max_recorded_) {
    h.kernel = cur_kernel_;
    hazards_.push_back(std::move(h));
  }
}

void Sanitizer::on_launch_begin(const gpusim::KernelRecord& rec,
                                gpusim::Dim3 grid, gpusim::Dim3 /*block*/,
                                int /*levels*/) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cur_kernel_ = rec.name;
  }
  // Inside a launch group only the first launch advances the sequence: the
  // group's launches share one per-array touch window (split-step contract).
  if (group_depth_.load(std::memory_order_relaxed) == 0 ||
      group_launches_.fetch_add(1, std::memory_order_relaxed) == 0) {
    launch_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  // Fresh shared-memory registry per launch: BlockCtx arenas are
  // launch-local on the simulator exactly as on hardware.
  block_shared_.clear();
  block_shared_.resize(static_cast<std::size_t>(grid.count()));
}

void Sanitizer::on_block_begin(long long block, int level) {
  tls_ctx.owner = this;
  tls_ctx.block = block;
  tls_ctx.level = level;
}

void Sanitizer::on_block_end() { tls_ctx.owner = nullptr; }

void Sanitizer::on_launch_end(
    const std::vector<std::uint64_t>& per_block_syncs) {
  if (per_block_syncs.empty()) return;
  const auto [mn, mx] =
      std::minmax_element(per_block_syncs.begin(), per_block_syncs.end());
  if (*mn == *mx) return;
  Hazard h;
  h.kind = HazardKind::kSyncDivergence;
  h.array = "barriers";
  h.block_a = mx - per_block_syncs.begin();
  h.block_b = mn - per_block_syncs.begin();
  h.detail = "blocks retired diverging barrier counts (max " +
             std::to_string(*mx) + " at block " + std::to_string(h.block_a) +
             ", min " + std::to_string(*mn) + " at block " +
             std::to_string(h.block_b) + ")";
  record(std::move(h));
}

void Sanitizer::begin_launch_group() {
  group_depth_.fetch_add(1, std::memory_order_relaxed);
  group_launches_.store(0, std::memory_order_relaxed);
}

void Sanitizer::end_launch_group() {
  group_depth_.fetch_sub(1, std::memory_order_relaxed);
}

// ---- global memory --------------------------------------------------------

Sanitizer::ArrayShadow* Sanitizer::find_array(const void* arr) {
  std::shared_lock<std::shared_mutex> lk(arrays_mu());
  const auto it = arrays_.find(arr);
  return it == arrays_.end() ? nullptr : it->second.get();
}

void Sanitizer::global_register(const void* arr, std::size_t n,
                                std::size_t elem_bytes, const char* name,
                                bool sliding_window) {
  std::unique_lock<std::shared_mutex> lk(arrays_mu());
  auto& slot = arrays_[arr];
  if (slot == nullptr) slot = std::make_unique<ArrayShadow>();
  slot->name = (name != nullptr && *name != '\0') ? name : "unnamed";
  slot->elem_bytes = elem_bytes;
  slot->sliding_window = sliding_window;
  slot->resize(n);
  slot->last_seen_launch.store(0, std::memory_order_relaxed);
  slot->touch.store(0, std::memory_order_relaxed);
}

std::uint32_t Sanitizer::touch_of(ArrayShadow& a) {
  const std::uint64_t seq = launch_seq_.load(std::memory_order_relaxed);
  if (a.last_seen_launch.load(std::memory_order_acquire) != seq) {
    std::lock_guard<std::mutex> lk(a.touch_mu);
    if (a.last_seen_launch.load(std::memory_order_relaxed) != seq) {
      a.touch.fetch_add(1, std::memory_order_relaxed);
      a.last_seen_launch.store(seq, std::memory_order_release);
    }
  }
  return a.touch.load(std::memory_order_relaxed) & kTouchMask;
}

void Sanitizer::element_read(ArrayShadow& a, index_t i, long long block,
                             int level, std::uint32_t touch) {
  const auto idx = static_cast<std::size_t>(i);
  const std::uint8_t fl = a.flags[idx].load(std::memory_order_relaxed);
  if ((fl & kInit) == 0u) {
    // initcheck: read of an element nothing (device or host) ever wrote.
    // Reported once per element.
    if ((a.flags[idx].fetch_or(kUninitReported, std::memory_order_relaxed) &
         kUninitReported) == 0u) {
      Hazard h;
      h.kind = HazardKind::kUninitRead;
      h.array = a.name;
      h.elem = i;
      h.block_a = block;
      h.level_a = level;
      h.detail = "device read of element never written";
      record(std::move(h));
    }
  } else {
    const std::uint64_t w = a.wstamp[idx].load(std::memory_order_relaxed);
    const std::uint64_t owner = stamp_owner(w);
    if (stamp_touch(w) == touch && owner >= 2 &&
        block_of_owner(owner) != block) {
      // Within one launch: a block consumed what another block produced.
      Hazard h;
      h.kind = HazardKind::kCrossBlockConflict;
      h.array = a.name;
      h.elem = i;
      h.block_a = block;
      h.level_a = level;
      h.block_b = block_of_owner(owner);
      h.level_b = stamp_level(w);
      h.write_b = true;
      h.detail = (h.level_b == level)
                     ? "read races a same-level write by another block"
                     : "read of an element another block wrote earlier in "
                       "this launch (window invariant violated)";
      record(std::move(h));
    } else if (a.sliding_window && stamp_touch(w) + 1 < touch) {
      // Sliding-window staleness: the element was not refreshed since the
      // array's previous launch — a broken ring shift / write-behind
      // distance leaves exactly such un-refreshed planes behind. Reported
      // once per element.
      if ((a.flags[idx].fetch_or(kStaleReported, std::memory_order_relaxed) &
           kStaleReported) == 0u) {
        Hazard h;
        h.kind = HazardKind::kStaleRead;
        h.array = a.name;
        h.elem = i;
        h.block_a = block;
        h.level_a = level;
        h.block_b = block_of_owner(owner);
        h.level_b = stamp_level(w);
        h.write_b = true;
        h.detail = "read of element last written " +
                   std::to_string(touch - stamp_touch(w)) +
                   " launches ago (sliding-window freshness broken)";
        record(std::move(h));
      }
    }
  }
  a.rstamp[idx].store(pack(touch, owner_of_block(block), level),
                      std::memory_order_relaxed);
}

void Sanitizer::element_write(ArrayShadow& a, index_t i, long long block,
                              int level, std::uint32_t touch) {
  const auto idx = static_cast<std::size_t>(i);
  const std::uint64_t mine = pack(touch, owner_of_block(block), level);
  const std::uint64_t prev =
      a.wstamp[idx].exchange(mine, std::memory_order_relaxed);
  if (prev != 0 && stamp_touch(prev) == touch) {
    const std::uint64_t owner = stamp_owner(prev);
    if (owner >= 2 && block_of_owner(owner) != block &&
        stamp_level(prev) == level) {
      Hazard h;
      h.kind = HazardKind::kCrossBlockConflict;
      h.array = a.name;
      h.elem = i;
      h.block_a = block;
      h.level_a = level;
      h.block_b = block_of_owner(owner);
      h.level_b = stamp_level(prev);
      h.write_a = true;
      h.write_b = true;
      h.detail = "two blocks wrote the same element in the same level";
      record(std::move(h));
    }
  }
  const std::uint64_t r = a.rstamp[idx].load(std::memory_order_relaxed);
  if (r != 0 && stamp_touch(r) == touch) {
    const std::uint64_t rowner = stamp_owner(r);
    if (rowner >= 2 && block_of_owner(rowner) != block &&
        stamp_level(r) == level) {
      Hazard h;
      h.kind = HazardKind::kCrossBlockConflict;
      h.array = a.name;
      h.elem = i;
      h.block_a = block;
      h.level_a = level;
      h.block_b = block_of_owner(rowner);
      h.level_b = stamp_level(r);
      h.write_a = true;
      h.detail = "write races a same-level read by another block";
      record(std::move(h));
    }
  }
  if ((a.flags[idx].load(std::memory_order_relaxed) & kInit) == 0u) {
    a.flags[idx].fetch_or(kInit, std::memory_order_relaxed);
  }
}

void Sanitizer::global_access(const void* arr, index_t base, index_t stride,
                              int n, bool write) {
  ArrayShadow* a = find_array(arr);
  if (a == nullptr) return;
  long long block = -1;
  int level = -1;
  if (tls_ctx.owner == this) {
    block = tls_ctx.block;
    level = tls_ctx.level;
  }
  const std::uint32_t touch = touch_of(*a);
  index_t i = base;
  for (int k = 0; k < n; ++k, i += stride) {
    if (write) {
      element_write(*a, i, block, level, touch);
    } else {
      element_read(*a, i, block, level, touch);
    }
  }
}

void Sanitizer::global_oob(const void* arr, index_t base, index_t stride,
                           int n, std::size_t size, bool write) {
  ArrayShadow* a = find_array(arr);
  Hazard h;
  h.kind = HazardKind::kOob;
  h.array = a != nullptr ? a->name : "unknown";
  h.elem = base;
  if (tls_ctx.owner == this) {
    h.block_a = tls_ctx.block;
    h.level_a = tls_ctx.level;
  }
  h.write_a = write;
  h.detail = std::string(write ? "store" : "load") + " span base=" +
             std::to_string(base) + " stride=" + std::to_string(stride) +
             " n=" + std::to_string(n) + " outside [0, " +
             std::to_string(size) + "); access skipped";
  record(std::move(h));
}

void Sanitizer::global_host_write(const void* arr, index_t i) {
  ArrayShadow* a = find_array(arr);
  if (a == nullptr) return;
  const auto idx = static_cast<std::size_t>(i);
  if (idx >= a->n) return;
  // Host writes (initialization, boundary imposes, ghost exchange, restore)
  // initialize the element and count as fresh for the *next* launch: the
  // stamp carries the array's current touch value, which satisfies the
  // staleness window at touch+1.
  a->wstamp[idx].store(
      pack(a->touch.load(std::memory_order_relaxed) & kTouchMask, kOwnerHost,
           -1),
      std::memory_order_relaxed);
  if ((a->flags[idx].load(std::memory_order_relaxed) & kInit) == 0u) {
    a->flags[idx].fetch_or(kInit, std::memory_order_relaxed);
  }
}

// ---- shared memory --------------------------------------------------------

void Sanitizer::shared_register(long long block, const void* base,
                                std::size_t words, std::size_t word_bytes) {
  const auto b = static_cast<std::size_t>(block);
  if (b >= block_shared_.size()) return;
  if (block_shared_[b] == nullptr) {
    block_shared_[b] = std::make_unique<BlockShared>();
  }
  BlockShared& bs = *block_shared_[b];
  BlockShared::Span span;
  span.base = static_cast<const std::byte*>(base);
  span.words = words;
  span.word_bytes = word_bytes == 0 ? 1 : word_bytes;
  span.word_offset = bs.total_words;
  span.shadow.assign(words, BlockShared::Word{});
  bs.total_words += words;
  bs.spans.push_back(std::move(span));
}

void Sanitizer::shared_access(long long block, const void* addr, int tid,
                              bool write, std::uint64_t epoch) {
  const auto b = static_cast<std::size_t>(block);
  if (b >= block_shared_.size() || block_shared_[b] == nullptr) return;
  BlockShared& bs = *block_shared_[b];
  const auto* p = static_cast<const std::byte*>(addr);
  for (BlockShared::Span& span : bs.spans) {
    if (p < span.base || p >= span.base + span.words * span.word_bytes) {
      continue;
    }
    const auto word = static_cast<std::size_t>(p - span.base) / span.word_bytes;
    BlockShared::Word& w = span.shadow[word];
    const std::uint64_t ep1 = epoch + 1;
    if (w.epoch_p1 == ep1 && w.tid != tid && (write || w.write)) {
      // racecheck: same word, same barrier epoch, different threads, at
      // least one write — unordered on real hardware.
      Hazard h;
      h.kind = HazardKind::kSharedRace;
      h.array = "shared";
      h.elem = static_cast<long long>(span.word_offset + word);
      h.block_a = block;
      h.tid_a = tid;
      h.tid_b = w.tid;
      h.epoch = epoch;
      h.write_a = write;
      h.write_b = w.write;
      if (tls_ctx.owner == this) h.level_a = tls_ctx.level;
      h.detail = "two threads touched the same shared word in one barrier "
                 "epoch (missing __syncthreads between them)";
      record(std::move(h));
    }
    if (!write && !w.init && !w.uninit_reported) {
      // initcheck for shared memory: on hardware the arena starts
      // uninitialized, so a read before the block's first write of the word
      // consumes garbage (the simulator zero-fills, which hides it).
      w.uninit_reported = true;
      Hazard h;
      h.kind = HazardKind::kUninitRead;
      h.array = "shared";
      h.elem = static_cast<long long>(span.word_offset + word);
      h.block_a = block;
      h.tid_a = tid;
      h.epoch = epoch;
      if (tls_ctx.owner == this) h.level_a = tls_ctx.level;
      h.detail = "read of a shared word never written by this block";
      record(std::move(h));
    }
    if (w.epoch_p1 == ep1 && w.tid == tid) {
      w.write = w.write || write;
    } else {
      w.epoch_p1 = ep1;
      w.tid = tid;
      w.write = write;
    }
    if (write) w.init = true;
    return;
  }
}

void Sanitizer::block_sync(long long /*block*/, std::uint64_t /*epoch*/) {
  // Barrier counts reach synccheck through on_launch_end; per-sync state is
  // already captured in the epoch ids kernels pass to shared_access.
}

}  // namespace mlbm::analysis
