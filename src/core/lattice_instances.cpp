#include "core/collision.hpp"
#include "core/equilibrium.hpp"
#include "core/hermite.hpp"
#include "core/lattice.hpp"
#include "core/moments.hpp"
#include "core/regularization.hpp"

// The core headers are templates over lattice descriptors; this TU anchors
// them in the library and provides compile-time sanity checks on the
// descriptor tables.

namespace mlbm {

static_assert(D2Q9::opp[1] == 3 && D2Q9::opp[5] == 7,
              "D2Q9 opposite table broken");
static_assert(D3Q19::opp[1] == 2 && D3Q19::opp[7] == 8,
              "D3Q19 opposite table broken");
static_assert(D3Q27::opp[19] == 20, "D3Q27 opposite table broken");

namespace {
constexpr bool weights_sum_to_one(const auto& w) {
  real_t s = 0;
  for (auto v : w) s += v;
  const real_t err = s - real_t(1);
  return err < real_t(1e-14) && err > real_t(-1e-14);
}
static_assert(weights_sum_to_one(D2Q9::w), "D2Q9 weights must sum to 1");
static_assert(weights_sum_to_one(D3Q19::w), "D3Q19 weights must sum to 1");
static_assert(weights_sum_to_one(D3Q27::w), "D3Q27 weights must sum to 1");
static_assert(weights_sum_to_one(D3Q15::w), "D3Q15 weights must sum to 1");
static_assert(D3Q15::opp[7] == 8 && D3Q15::opp[1] == 2,
              "D3Q15 opposite table broken");
}  // namespace

// Explicit instantiations of the hot-path templates for all three lattices.
template Moments<D2Q9> compute_moments<D2Q9>(const real_t (&)[D2Q9::Q]);
template Moments<D3Q19> compute_moments<D3Q19>(const real_t (&)[D3Q19::Q]);
template Moments<D3Q27> compute_moments<D3Q27>(const real_t (&)[D3Q27::Q]);
template Moments<D3Q15> compute_moments<D3Q15>(const real_t (&)[D3Q15::Q]);

template void collide<D2Q9>(CollisionScheme, real_t (&)[D2Q9::Q], real_t);
template void collide<D3Q19>(CollisionScheme, real_t (&)[D3Q19::Q], real_t);
template void collide<D3Q27>(CollisionScheme, real_t (&)[D3Q27::Q], real_t);
template void collide<D3Q15>(CollisionScheme, real_t (&)[D3Q15::Q], real_t);

}  // namespace mlbm
