// Minimal command line parser for examples and benchmark harnesses.
//
// Supports `--key value` and `--key=value` forms plus boolean flags
// (`--flag`). Unknown keys are collected so callers can reject typos.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mlbm {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True when `--key` was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& key, int fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non `--`) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// All `--key`s seen, for usage validation.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace mlbm
