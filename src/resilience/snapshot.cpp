#include "resilience/snapshot.hpp"

#include "multidev/multi_domain.hpp"
#include "util/error.hpp"

namespace mlbm::resilience {

namespace {

template <class L>
constexpr int node_values() {
  return 1 + L::D + Moments<L>::NP;
}

/// Applies `fn` to every profiler the engine owns, in a stable order: the
/// engine's own (monolithic gpusim engines) or one per slab (MultiDomain).
/// Host engines have none.
template <class L, class Fn>
void for_each_profiler(Engine<L>& eng, Fn&& fn) {
  if (auto* md = dynamic_cast<MultiDomainEngine<L>*>(&eng)) {
    for (int d = 0; d < md->devices(); ++d) {
      if (gpusim::Profiler* p = md->device_engine(d).profiler()) fn(*p);
    }
    return;
  }
  if (gpusim::Profiler* p = eng.profiler()) fn(*p);
}

template <class L, class Fn>
void for_each_profiler(const Engine<L>& eng, Fn&& fn) {
  if (const auto* md = dynamic_cast<const MultiDomainEngine<L>*>(&eng)) {
    for (int d = 0; d < md->devices(); ++d) {
      if (const gpusim::Profiler* p = md->device_engine(d).profiler()) fn(*p);
    }
    return;
  }
  if (const gpusim::Profiler* p = eng.profiler()) fn(*p);
}

}  // namespace

template <class L>
StateSnapshot<L> capture_state(const Engine<L>& eng, int step,
                               bool with_moments) {
  constexpr int NV = node_values<L>();
  const Box& b = eng.geometry().box;

  StateSnapshot<L> snap;
  snap.step = step;
  snap.time = eng.time();
  snap.raw_tag = eng.raw_state_tag();
  if (!snap.raw_tag.empty()) eng.serialize_raw_state(snap.raw);

  // The portable moment payload is the expensive part of a capture (a full
  // moments_at sweep); callers that can only ever restore into the same
  // engine (raw tag match guaranteed) may skip it. A moment-only engine
  // always needs it — it is the only state representation available.
  if (with_moments || snap.raw_tag.empty()) {
    snap.values.resize(static_cast<std::size_t>(b.cells()) *
                       static_cast<std::size_t>(NV));
    real_t* v = snap.values.data();
    for (int z = 0; z < b.nz; ++z) {
      for (int y = 0; y < b.ny; ++y) {
        for (int x = 0; x < b.nx; ++x, v += NV) {
          const Moments<L> m = eng.moments_at(x, y, z);
          v[0] = m.rho;
          for (int a = 0; a < L::D; ++a) {
            v[1 + a] = m.u[static_cast<std::size_t>(a)];
          }
          for (int p = 0; p < Moments<L>::NP; ++p) {
            v[1 + L::D + p] = m.pi[static_cast<std::size_t>(p)];
          }
        }
      }
    }
  }

  for_each_profiler(eng, [&snap](const gpusim::Profiler& p) {
    snap.profilers.push_back(p.state());
  });
  if (const auto* md = dynamic_cast<const MultiDomainEngine<L>*>(&eng)) {
    snap.exchanged_total = md->exchanged_values_total();
  }
  return snap;
}

template <class L>
void restore_state(Engine<L>& eng, const StateSnapshot<L>& snap) {
  constexpr int NV = node_values<L>();
  const Box& b = eng.geometry().box;

  // Re-time FIRST: buffer parity (AA) and circular-shift layer addressing
  // follow the clock, so both restore paths must write under the capture
  // step's addressing — and the raw tag itself is parity-dependent.
  eng.set_time(snap.time);

  if (!snap.raw_tag.empty() && eng.raw_state_tag() == snap.raw_tag) {
    // Same layout as the capture source: exact restore.
    eng.restore_raw_state(snap.raw);
  } else {
    // Different engine (degrade path) or moment-only source: portable
    // moment restore.
    if (snap.values.empty()) {
      throw ConfigError(
          "restore_state: snapshot carries no moment payload for an engine "
          "with a different raw layout (captured with with_moments=false)");
    }
    if (snap.values.size() != static_cast<std::size_t>(b.cells()) *
                                  static_cast<std::size_t>(NV)) {
      throw ConfigError("restore_state: snapshot does not match engine box");
    }
    const real_t* v = snap.values.data();
    Moments<L> m;
    for (int z = 0; z < b.nz; ++z) {
      for (int y = 0; y < b.ny; ++y) {
        for (int x = 0; x < b.nx; ++x, v += NV) {
          m.rho = v[0];
          for (int a = 0; a < L::D; ++a) {
            m.u[static_cast<std::size_t>(a)] = v[1 + a];
          }
          for (int p = 0; p < Moments<L>::NP; ++p) {
            m.pi[static_cast<std::size_t>(p)] = v[1 + L::D + p];
          }
          eng.impose(x, y, z, m);
        }
      }
    }
  }

  std::size_t i = 0;
  for_each_profiler(eng, [&snap, &i](gpusim::Profiler& p) {
    if (i < snap.profilers.size()) p.restore(snap.profilers[i]);
    ++i;
  });
  if (auto* md = dynamic_cast<MultiDomainEngine<L>*>(&eng)) {
    md->set_exchanged_total(snap.exchanged_total);
  }
}

template struct StateSnapshot<D2Q9>;
template struct StateSnapshot<D3Q19>;
template struct StateSnapshot<D3Q27>;
template struct StateSnapshot<D3Q15>;
template StateSnapshot<D2Q9> capture_state<D2Q9>(const Engine<D2Q9>&, int,
                                                 bool);
template StateSnapshot<D3Q19> capture_state<D3Q19>(const Engine<D3Q19>&, int,
                                                   bool);
template StateSnapshot<D3Q27> capture_state<D3Q27>(const Engine<D3Q27>&, int,
                                                   bool);
template StateSnapshot<D3Q15> capture_state<D3Q15>(const Engine<D3Q15>&, int,
                                                   bool);
template void restore_state<D2Q9>(Engine<D2Q9>&, const StateSnapshot<D2Q9>&);
template void restore_state<D3Q19>(Engine<D3Q19>&,
                                   const StateSnapshot<D3Q19>&);
template void restore_state<D3Q27>(Engine<D3Q27>&,
                                   const StateSnapshot<D3Q27>&);
template void restore_state<D3Q15>(Engine<D3Q15>&,
                                   const StateSnapshot<D3Q15>&);

}  // namespace mlbm::resilience
