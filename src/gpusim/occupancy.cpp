#include "gpusim/occupancy.hpp"

#include <algorithm>

namespace mlbm::gpusim {

Occupancy compute_occupancy(const DeviceSpec& dev, int threads_per_block,
                            std::size_t shared_bytes_per_block) {
  Occupancy occ;
  if (threads_per_block <= 0 || threads_per_block > dev.max_threads_per_block ||
      shared_bytes_per_block >
          static_cast<std::size_t>(dev.shared_mem_per_block_bytes)) {
    occ.valid = false;
    return occ;
  }

  occ.limit_by_threads = dev.max_threads_per_sm / threads_per_block;
  occ.limit_by_shared =
      shared_bytes_per_block == 0
          ? dev.max_blocks_per_sm
          : static_cast<int>(
                static_cast<std::size_t>(dev.shared_mem_per_sm_bytes) /
                shared_bytes_per_block);
  occ.limit_by_blocks = dev.max_blocks_per_sm;

  occ.blocks_per_sm = std::min(
      {occ.limit_by_threads, occ.limit_by_shared, occ.limit_by_blocks});
  occ.valid = occ.blocks_per_sm >= 1;
  occ.occupancy =
      occ.valid ? static_cast<double>(occ.blocks_per_sm) * threads_per_block /
                      dev.max_threads_per_sm
                : 0.0;
  return occ;
}

Occupancy compute_occupancy(const DeviceSpec& dev, const Dim3& block,
                            std::size_t shared_bytes_per_block) {
  return compute_occupancy(dev, static_cast<int>(block.count()),
                           shared_bytes_per_block);
}

}  // namespace mlbm::gpusim
