// Figure 2: D2Q9 performance (MFLUPS) vs problem size for ST, MR-P and MR-R
// against the roofline predictions, on V100 and MI100.
#include "fig_common.hpp"

int main() {
  // Saturated values the paper's text reports: V100 ST ~5300, MR-P ~7000,
  // MR-R marginally slower; MI100 ST ~6200, MR-P ~8600, MR-R ~identical.
  mlbm::bench::run_figure<mlbm::D2Q9>(
      {"Figure 2", "D2Q9 MFLUPS vs problem size (NxN channel)", 2},
      "fig2_d2q9.csv", {5300, 7000, 6900}, {6200, 8600, 8600});
  return 0;
}
