// Honest wall-clock microbenchmarks of the functional engines on this host
// (google-benchmark). These measure the simulator's own throughput in
// MLUPS — not the GPU numbers of the paper, which come from the performance
// model — and are useful for tracking regressions in the engine code.
#include <benchmark/benchmark.h>

#include "engines/aa_engine.hpp"
#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "workloads/taylor_green.hpp"

namespace {

using namespace mlbm;

Geometry periodic_geo(int nx, int ny, int nz) {
  Geometry geo(Box{nx, ny, nz});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return geo;
}

template <class L, class E>
void run_engine_bench(benchmark::State& state, E& eng) {
  eng.initialize(
      [](int, int, int) { return equilibrium_moments<L>(1.0, {}); });
  if (eng.profiler() != nullptr) {
    eng.profiler()->counter().set_enabled(false);
  }
  for (auto _ : state) {
    eng.step();
  }
  state.SetItemsProcessed(state.iterations() * eng.geometry().box.cells());
  state.counters["MLUPS"] = benchmark::Counter(
      static_cast<double>(state.iterations() * eng.geometry().box.cells()) /
          1e6,
      benchmark::Counter::kIsRate);
}

void BM_Ref_D2Q9(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ReferenceEngine<D2Q9> e(periodic_geo(n, n, 1), 0.8, CollisionScheme::kBGK);
  run_engine_bench<D2Q9>(state, e);
}
BENCHMARK(BM_Ref_D2Q9)->Arg(64)->Arg(128);

void BM_St_D2Q9(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StEngine<D2Q9> e(periodic_geo(n, n, 1), 0.8);
  run_engine_bench<D2Q9>(state, e);
}
BENCHMARK(BM_St_D2Q9)->Arg(64)->Arg(128);

void BM_MrP_D2Q9(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MrEngine<D2Q9> e(periodic_geo(n, n, 1), 0.8, Regularization::kProjective,
                   {32, 1, 4});
  run_engine_bench<D2Q9>(state, e);
}
BENCHMARK(BM_MrP_D2Q9)->Arg(64)->Arg(128);

void BM_MrR_D2Q9(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MrEngine<D2Q9> e(periodic_geo(n, n, 1), 0.8, Regularization::kRecursive,
                   {32, 1, 4});
  run_engine_bench<D2Q9>(state, e);
}
BENCHMARK(BM_MrR_D2Q9)->Arg(64);

void BM_St_D3Q19(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StEngine<D3Q19> e(periodic_geo(n, n, n), 0.8);
  run_engine_bench<D3Q19>(state, e);
}
BENCHMARK(BM_St_D3Q19)->Arg(16)->Arg(32);

void BM_MrP_D3Q19(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MrEngine<D3Q19> e(periodic_geo(n, n, n), 0.8, Regularization::kProjective,
                    {8, 8, 1});
  run_engine_bench<D3Q19>(state, e);
}
BENCHMARK(BM_MrP_D3Q19)->Arg(16)->Arg(32);

void BM_MrR_D3Q19(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MrEngine<D3Q19> e(periodic_geo(n, n, n), 0.8, Regularization::kRecursive,
                    {8, 8, 1});
  run_engine_bench<D3Q19>(state, e);
}
BENCHMARK(BM_MrR_D3Q19)->Arg(16);

void BM_Aa_D2Q9(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  AaEngine<D2Q9> e(periodic_geo(n, n, 1), 0.8);
  run_engine_bench<D2Q9>(state, e);
}
BENCHMARK(BM_Aa_D2Q9)->Arg(64)->Arg(128);

void BM_StPush_D2Q9(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StEngine<D2Q9> e(periodic_geo(n, n, 1), 0.8, CollisionScheme::kBGK, 256,
                   StreamMode::kPush);
  run_engine_bench<D2Q9>(state, e);
}
BENCHMARK(BM_StPush_D2Q9)->Arg(64);

void BM_MrP_D2Q9_CircularShift(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MrEngine<D2Q9> e(periodic_geo(n, n, 1), 0.8, Regularization::kProjective,
                   {32, 1, 4, MomentStorage::kCircularShift});
  run_engine_bench<D2Q9>(state, e);
}
BENCHMARK(BM_MrP_D2Q9_CircularShift)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
