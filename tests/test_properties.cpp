// Property-style parameterized sweeps: invariants that must hold for every
// engine x lattice x configuration combination.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>

#include "engines/mr_engine.hpp"
#include "engines/reference_engine.hpp"
#include "engines/st_engine.hpp"
#include "io/checkpoint.hpp"
#include "workloads/taylor_green.hpp"

namespace mlbm {
namespace {

// Engine factory keyed by a descriptive string so parameterized tests can
// sweep heterogeneous engine types.
enum class EngineKind {
  kRef,
  kStPull,
  kStPush,
  kMrProjective,
  kMrRecursive,
  kMrProjectiveCirc,
};

const char* kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::kRef: return "ref";
    case EngineKind::kStPull: return "st_pull";
    case EngineKind::kStPush: return "st_push";
    case EngineKind::kMrProjective: return "mr_p";
    case EngineKind::kMrRecursive: return "mr_r";
    case EngineKind::kMrProjectiveCirc: return "mr_p_circ";
  }
  return "?";
}

template <class L>
std::unique_ptr<Engine<L>> make_engine(EngineKind k, Geometry geo,
                                       real_t tau) {
  const MrConfig cfg{4, 4, 2};
  MrConfig circ = cfg;
  circ.storage = MomentStorage::kCircularShift;
  switch (k) {
    case EngineKind::kRef:
      return std::make_unique<ReferenceEngine<L>>(std::move(geo), tau,
                                                  CollisionScheme::kBGK);
    case EngineKind::kStPull:
      return std::make_unique<StEngine<L>>(std::move(geo), tau);
    case EngineKind::kStPush:
      return std::make_unique<StEngine<L>>(std::move(geo), tau,
                                           CollisionScheme::kBGK, 64,
                                           StreamMode::kPush);
    case EngineKind::kMrProjective:
      return std::make_unique<MrEngine<L>>(std::move(geo), tau,
                                           Regularization::kProjective, cfg);
    case EngineKind::kMrRecursive:
      return std::make_unique<MrEngine<L>>(std::move(geo), tau,
                                           Regularization::kRecursive, cfg);
    case EngineKind::kMrProjectiveCirc:
      return std::make_unique<MrEngine<L>>(std::move(geo), tau,
                                           Regularization::kProjective, circ);
  }
  return nullptr;
}

Geometry periodic_geo(int nx, int ny, int nz) {
  Geometry geo(Box{nx, ny, nz});
  geo.bc.set_axis(0, FaceBC::kPeriodic);
  geo.bc.set_axis(1, FaceBC::kPeriodic);
  geo.bc.set_axis(2, FaceBC::kPeriodic);
  return geo;
}

template <class L>
typename Engine<L>::InitFn wavy_init() {
  return [](int x, int y, int z) {
    std::array<real_t, L::D> u{};
    u[0] = 0.02 * std::sin(0.7 * y + 0.3 * z);
    u[1] = 0.02 * std::sin(0.5 * x);
    return equilibrium_moments<L>(
        real_t(1) + real_t(0.01) * std::cos(0.4 * (x + y + z)), u);
  };
}

const EngineKind kAllKinds[] = {
    EngineKind::kRef,          EngineKind::kStPull,
    EngineKind::kStPush,       EngineKind::kMrProjective,
    EngineKind::kMrRecursive,  EngineKind::kMrProjectiveCirc,
};

// ------------------------------------------------------------- conservation

class ConservationProperty : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ConservationProperty, MassAndMomentumOnPeriodicDomain2D) {
  auto eng = make_engine<D2Q9>(GetParam(), periodic_geo(12, 10, 1), 0.8);
  eng->initialize(wavy_init<D2Q9>());

  auto totals = [&] {
    std::array<real_t, 3> t{};
    for (int y = 0; y < 10; ++y) {
      for (int x = 0; x < 12; ++x) {
        const auto m = eng->moments_at(x, y, 0);
        t[0] += m.rho;
        t[1] += m.rho * m.u[0];
        t[2] += m.rho * m.u[1];
      }
    }
    return t;
  };
  const auto before = totals();
  eng->run(15);
  const auto after = totals();
  EXPECT_NEAR(after[0], before[0], 1e-11);
  EXPECT_NEAR(after[1], before[1], 1e-11);
  EXPECT_NEAR(after[2], before[2], 1e-11);
}

TEST_P(ConservationProperty, MassAndMomentumOnPeriodicDomain3D) {
  auto eng = make_engine<D3Q19>(GetParam(), periodic_geo(8, 6, 7), 0.7);
  eng->initialize(wavy_init<D3Q19>());
  real_t mass0 = 0, mass1 = 0;
  for (int z = 0; z < 7; ++z) {
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 8; ++x) mass0 += eng->moments_at(x, y, z).rho;
    }
  }
  eng->run(8);
  for (int z = 0; z < 7; ++z) {
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 8; ++x) mass1 += eng->moments_at(x, y, z).rho;
    }
  }
  EXPECT_NEAR(mass1, mass0, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ConservationProperty,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto& pinfo) {
                           return std::string(kind_name(pinfo.param));
                         });

// -------------------------------------------------------------- checkpoints

class CheckpointProperty : public ::testing::TestWithParam<EngineKind> {};

TEST_P(CheckpointProperty, SaveLoadRoundTripsThroughEveryEngine) {
  const auto geo = periodic_geo(10, 8, 1);
  auto a = make_engine<D2Q9>(GetParam(), geo, 0.8);
  a->initialize(wavy_init<D2Q9>());
  a->run(6);

  const std::string path =
      (std::filesystem::temp_directory_path() /
       (std::string("mlbm_prop_") + kind_name(GetParam()) + ".ckpt"))
          .string();
  save_checkpoint(*a, path);

  // Restore into a *reference* engine regardless of source kind.
  auto b = make_engine<D2Q9>(EngineKind::kRef, geo, 0.8);
  b->initialize(wavy_init<D2Q9>());
  load_checkpoint(*b, path);
  for (int y = 0; y < 8; y += 2) {
    for (int x = 0; x < 10; x += 3) {
      const auto ma = a->moments_at(x, y, 0);
      const auto mb = b->moments_at(x, y, 0);
      EXPECT_NEAR(ma.rho, mb.rho, 1e-13);
      EXPECT_NEAR(ma.u[0], mb.u[0], 1e-13);
      EXPECT_NEAR(ma.pi[2], mb.pi[2], 1e-13);
    }
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, CheckpointProperty,
                         ::testing::ValuesIn(kAllKinds),
                         [](const auto& pinfo) {
                           return std::string(kind_name(pinfo.param));
                         });

// -------------------------------------------------- viscosity across tau

class ViscosityProperty : public ::testing::TestWithParam<double> {};

TEST_P(ViscosityProperty, TaylorGreenDecayTracksTau) {
  const real_t tau = GetParam();
  const auto tg = TaylorGreen<D2Q9>::create(24, 0.02);
  MrEngine<D2Q9> e(tg.geo, tau, Regularization::kProjective, {8, 1, 2});
  tg.attach(e);
  const real_t e0 = TaylorGreen<D2Q9>::kinetic_energy(e);
  const int steps = 120;
  e.run(steps);
  const real_t e1 = TaylorGreen<D2Q9>::kinetic_energy(e);
  const real_t k = 2 * 3.14159265358979323846 / 24;
  const double nu = -std::log(e1 / e0) / (4 * k * k * steps);
  EXPECT_NEAR(nu, e.viscosity(), 0.04 * e.viscosity()) << "tau=" << tau;
}

// Capped at tau = 1.5: beyond that the truncation error of the discrete
// decay (O(nu^2 k^2) per step) exceeds the 4% acceptance band — a known
// accuracy limit of BGK-type LBM at large relaxation times, not a bug.
INSTANTIATE_TEST_SUITE_P(TauSweep, ViscosityProperty,
                         ::testing::Values(0.55, 0.65, 0.8, 1.0, 1.25, 1.5));

// ----------------------------------------- MR tile geometry exhaustiveness

struct TileCase {
  int tx, ty, ts;
  MomentStorage storage;
};

class TileProperty : public ::testing::TestWithParam<TileCase> {};

TEST_P(TileProperty, AnyTileShapeReproducesTheReferenceTrajectory3D) {
  const auto& tc = GetParam();
  const real_t tau = 0.8;
  const auto geo = periodic_geo(7, 6, 9);  // deliberately ragged extents

  ReferenceEngine<D3Q19> ref(geo, tau, CollisionScheme::kProjective);
  MrEngine<D3Q19> mr(geo, tau, Regularization::kProjective,
                     {tc.tx, tc.ty, tc.ts, tc.storage});
  ref.initialize(wavy_init<D3Q19>());
  mr.initialize(wavy_init<D3Q19>());
  for (int s = 0; s < 6; ++s) {
    ref.step();
    mr.step();
  }
  double worst = 0;
  for (int z = 0; z < 9; ++z) {
    for (int y = 0; y < 6; ++y) {
      for (int x = 0; x < 7; ++x) {
        worst = std::max(worst, std::abs(static_cast<double>(
                                    ref.moments_at(x, y, z).u[0] -
                                    mr.moments_at(x, y, z).u[0])));
      }
    }
  }
  EXPECT_LT(worst, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TileProperty,
    ::testing::Values(TileCase{1, 1, 1, MomentStorage::kPingPong},
                      TileCase{7, 6, 1, MomentStorage::kPingPong},
                      TileCase{3, 2, 2, MomentStorage::kPingPong},
                      TileCase{5, 5, 3, MomentStorage::kPingPong},
                      TileCase{2, 3, 1, MomentStorage::kCircularShift},
                      TileCase{4, 2, 4, MomentStorage::kCircularShift},
                      TileCase{16, 16, 2, MomentStorage::kPingPong}),
    [](const auto& pinfo) {
      const auto& tc = pinfo.param;
      return std::to_string(tc.tx) + "x" + std::to_string(tc.ty) + "x" +
             std::to_string(tc.ts) +
             (tc.storage == MomentStorage::kCircularShift ? "_circ" : "_pp");
    });

// -------------------------------------------------------- galilean shift

TEST(GalileanProperty, AdvectedVortexMatchesStationaryOne) {
  // Superimposing a uniform velocity U on a periodic flow must advect it
  // without distortion (to compressibility-error order): compare the decay
  // of kinetic energy in the co-moving and stationary frames.
  const int n = 24;
  const real_t u0 = 0.01, U = 0.04;
  const auto tg = TaylorGreen<D2Q9>::create(n, u0);

  MrEngine<D2Q9> still(tg.geo, 0.8, Regularization::kRecursive, {8, 1, 2});
  tg.attach(still);

  MrEngine<D2Q9> moving(tg.geo, 0.8, Regularization::kRecursive, {8, 1, 2});
  const real_t k = 2 * 3.14159265358979323846 / n;
  moving.initialize([&](int x, int y, int /*z*/) {
    std::array<real_t, 2> u = {
        static_cast<real_t>(-u0 * std::cos(k * x) * std::sin(k * y) + U),
        static_cast<real_t>(u0 * std::sin(k * x) * std::cos(k * y))};
    return equilibrium_moments<D2Q9>(1.0, u);
  });

  const int steps = 60;
  still.run(steps);
  moving.run(steps);

  // Fluctuation kinetic energy about the mean flow.
  auto fluct_ke = [&](Engine<D2Q9>& e, real_t mean_ux) {
    real_t s = 0;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const auto m = e.moments_at(x, y, 0);
        const real_t du = m.u[0] - mean_ux;
        s += du * du + m.u[1] * m.u[1];
      }
    }
    return s;
  };
  const real_t ke_still = fluct_ke(still, 0);
  const real_t ke_moving = fluct_ke(moving, U);
  EXPECT_NEAR(ke_moving / ke_still, 1.0, 0.05);
}

}  // namespace
}  // namespace mlbm
