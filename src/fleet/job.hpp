// Fleet jobs: one independent parameter-sweep simulation each.
//
// A JobSpec is everything needed to (re)build a job's engine from scratch —
// workload, propagation pattern, storage precision, resolution, physics
// parameters. Rebuildability is the point: checkpoint-based migration
// re-creates the engine on a surviving device through the same factories and
// restores the raw-state snapshot, so a migrated job's trajectory is
// bit-identical to one that never moved.
//
// Jobs are D2Q9: the fleet serves *many small* simulations (the ROADMAP's
// throughput-of-simulations framing), and the three sweep workloads —
// Taylor-Green, lid-driven cavity, cylinder wake — are the repository's 2D
// validation set. The scheduler itself never inspects the lattice, so a 3D
// job type is a JobSpec extension, not a redesign.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "engines/engine.hpp"
#include "perfmodel/pattern.hpp"
#include "util/precision.hpp"

namespace mlbm::fleet {

enum class Workload { kTaylorGreen, kCavity, kCylinder };

inline const char* to_string(Workload w) {
  switch (w) {
    case Workload::kTaylorGreen: return "taylor-green";
    case Workload::kCavity: return "cavity";
    case Workload::kCylinder: return "cylinder";
  }
  return "unknown";
}

struct JobSpec {
  int id = -1;  ///< assigned by FleetScheduler::submit
  Workload workload = Workload::kTaylorGreen;
  perf::Pattern pattern = perf::Pattern::kST;
  StoragePrecision precision = StoragePrecision::kFP64;
  /// Nodes per axis (Taylor-Green / cavity) or cylinder diameter in nodes.
  int n = 24;
  int steps = 64;
  /// u0 (Taylor-Green), u_lid (cavity), u_mean (cylinder inlet).
  double amplitude = 0.03;
  double tau = 0.8;  ///< Taylor-Green / cavity; the cylinder derives its own
  double re = 20;    ///< cylinder Reynolds number

  [[nodiscard]] std::string name() const;
};

/// Builds the job's engine through the runtime-precision factories and
/// attaches its workload (initialization + post-step boundary pass). The
/// returned engine is self-contained: the workload object does not outlive
/// the call (boundary passes capture their state by value / shared_ptr).
std::unique_ptr<Engine<D2Q9>> make_job_engine(const JobSpec& spec);

/// The physics outputs of a finished job — the fields the chaos bench pins
/// bit-identical between a faulted and an undisturbed run.
struct JobFields {
  /// FNV-1a over the raw bytes of every node's {rho, u, Pi} in x-fastest
  /// order: any single-bit difference anywhere in the final state changes it.
  std::uint64_t moment_hash = 0;
  double mass = 0;            ///< sum of rho
  double kinetic_energy = 0;  ///< 0.5 sum rho |u|^2

  friend bool operator==(const JobFields& a, const JobFields& b) {
    return a.moment_hash == b.moment_hash && a.mass == b.mass &&
           a.kinetic_energy == b.kinetic_energy;
  }
  friend bool operator!=(const JobFields& a, const JobFields& b) {
    return !(a == b);
  }
};

[[nodiscard]] JobFields job_fields(const Engine<D2Q9>& eng);

enum class JobStatus { kPending, kRunning, kCompleted, kParked };

inline const char* to_string(JobStatus s) {
  switch (s) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kRunning: return "running";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kParked: return "parked";
  }
  return "unknown";
}

}  // namespace mlbm::fleet
