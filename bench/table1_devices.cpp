// Table 1: summary of the main features of the NVIDIA V100 and AMD MI100.
// Printed from the DeviceSpec presets that drive the entire performance
// model, so every other table/figure harness shares these numbers.
#include <string>

#include "gpusim/device.hpp"
#include "perfmodel/report.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using mlbm::gpusim::DeviceSpec;
  const DeviceSpec v100 = DeviceSpec::v100();
  const DeviceSpec mi100 = DeviceSpec::mi100();

  mlbm::perf::print_banner("Table 1", "GPU architecture summary");

  mlbm::AsciiTable t({"GPU Arch.", v100.name, mi100.name});
  auto num = [](double v, int prec = 0) {
    return mlbm::AsciiTable::num(v, prec);
  };
  t.row({"Frequency (MHz)", num(v100.frequency_mhz), num(mi100.frequency_mhz)});
  t.row({"CUDA/HIP cores", num(v100.cores), num(mi100.cores)});
  t.row({"SM/CU counts", num(v100.sm_count), num(mi100.sm_count)});
  t.row({"Shared mem / SM (KB)", num(v100.shared_mem_per_sm_bytes / 1024.0),
         num(mi100.shared_mem_per_sm_bytes / 1024.0)});
  t.row({"L1 / SM (KB)", num(v100.l1_kb_per_sm), num(mi100.l1_kb_per_sm)});
  t.row({"L2 unified (KB)", num(v100.l2_kb), num(mi100.l2_kb)});
  t.row({"Memory (GB, HBM2)", num(v100.memory_gb), num(mi100.memory_gb)});
  t.row({"Bandwidth (GB/s)", num(v100.bandwidth_gbs, 2),
         num(mi100.bandwidth_gbs, 2)});
  t.row({"Compiler", v100.compiler, mi100.compiler});
  t.row({"FP64 peak (GFLOP/s, model)", num(v100.fp64_peak_gflops),
         num(mi100.fp64_peak_gflops)});
  t.row({"stream eff. (calibrated)", num(v100.stream_efficiency, 2),
         num(mi100.stream_efficiency, 2)});
  t.row({"MR pipeline eff. 2D/3D (calibrated)",
         num(v100.mr_pipeline_efficiency_2d, 2) + "/" +
             num(v100.mr_pipeline_efficiency_3d, 2),
         num(mi100.mr_pipeline_efficiency_2d, 2) + "/" +
             num(mi100.mr_pipeline_efficiency_3d, 2)});
  t.print();

  mlbm::CsvWriter csv(mlbm::perf::results_dir() + "/table1_devices.csv",
                      {"feature", "v100", "mi100"});
  csv.row({"frequency_mhz", mlbm::CsvWriter::num(v100.frequency_mhz),
           mlbm::CsvWriter::num(mi100.frequency_mhz)});
  csv.row({"cores", mlbm::CsvWriter::num(v100.cores),
           mlbm::CsvWriter::num(mi100.cores)});
  csv.row({"sm_count", mlbm::CsvWriter::num(v100.sm_count),
           mlbm::CsvWriter::num(mi100.sm_count)});
  csv.row({"bandwidth_gbs", mlbm::CsvWriter::num(v100.bandwidth_gbs),
           mlbm::CsvWriter::num(mi100.bandwidth_gbs)});
  csv.row({"memory_gb", mlbm::CsvWriter::num(v100.memory_gb),
           mlbm::CsvWriter::num(mi100.memory_gb)});
  return 0;
}
