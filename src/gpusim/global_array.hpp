// Instrumented device-global memory.
//
// GlobalArray<T> models a GPU global-memory allocation. Kernel code must use
// `load`/`store` (scalar) or `load_span`/`store_span` (batched), which are
// counted by the attached TrafficCounter exactly as a profiler reports DRAM
// traffic for a cache-unfriendly working set (LBM's state does not fit in L2
// at the paper's problem sizes, so every kernel access is a DRAM access —
// the basis of Table 2's byte counts).
//
// The span forms move `n` elements with a fixed element stride in one
// bounds check and one counter update of n*sizeof(T) bytes; byte counts are
// bit-identical to n scalar accesses while the transaction count collapses
// to 1 (a coalesced vector transaction). Engines use them for the per-node
// moment/population vectors, which dominate the hot path.
//
// Storage precision: T is the *storage* type of the allocation; engines
// compute in `real_t` regardless. The `_as` access forms convert between
// the two exactly at the load/store boundary — the model of a kernel that
// widens an FP32 global value into an FP64 register on load and narrows it
// on store. Counting always uses sizeof(T): an FP32-stored lattice moves
// (and occupies) exactly half the bytes of an FP64 one, which is the whole
// point of the storage-precision policy (docs/algorithms.md §7).
//
// Host-side (uncounted) access goes through `raw`/`host_data`, mirroring
// cudaMemcpy-style initialization that the paper would not count either.
//
// A default-constructed (or null-counter-allocated) array routes counted
// accesses to the shared disabled `null_counter()` instead of dereferencing
// null; debug builds additionally assert the invariant.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/sanitizer_hook.hpp"
#include "gpusim/traffic.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace mlbm::gpusim {

template <typename T>
class GlobalArray {
 public:
  GlobalArray() : counter_(&null_counter()) {}

  GlobalArray(std::size_t n, TrafficCounter* counter)
      : data_(n), counter_(counter != nullptr ? counter : &null_counter()) {}

  void allocate(std::size_t n, TrafficCounter* counter) {
    data_.assign(n, T{});
    counter_ = counter != nullptr ? counter : &null_counter();
    read_touched_.clear();
    unique_reads_.store(0, std::memory_order_relaxed);
    if (san_ != nullptr) {
      san_->global_register(this, data_.size(), sizeof(T), san_name_,
                            san_sliding_window_);
    }
  }

  /// Binds (or clears, with nullptr) a sanitizer to this allocation. `name`
  /// labels hazard reports; `sliding_window` opts into the staleness check
  /// (see sanitizer_hook.hpp). The zero-fill of allocate() deliberately does
  /// NOT count as initialization — like cudaMalloc'd memory, elements are
  /// uninitialized until a kernel or the host writes them.
  void set_sanitizer(SanitizerHook* san, const char* name = "",
                     bool sliding_window = false) {
    san_ = san;
    san_name_ = name;
    san_sliding_window_ = sliding_window;
    if (san_ != nullptr) {
      san_->global_register(this, data_.size(), sizeof(T), san_name_,
                            san_sliding_window_);
    }
  }
  [[nodiscard]] SanitizerHook* sanitizer() const { return san_; }

  /// Device load: counted. The sanitized path lives in a noinline helper so
  /// the un-instrumented hot path stays exactly one predicted branch bigger
  /// than before the sanitizer existed (no code-bloat inlining regressions).
  [[nodiscard]] T load(index_t i) const {
    assert(counter_ != nullptr);
    if (san_ != nullptr) [[unlikely]] {
      if (!scalar_san(i, /*write=*/false)) {
        return T{};  // reported and skipped: the sanitized run continues
      }
    }
    assert(i >= 0 && static_cast<std::size_t>(i) < data_.size());
    counter_->add_read(sizeof(T));
    touch_read(static_cast<std::size_t>(i));
    return data_[static_cast<std::size_t>(i)];
  }

  /// Device store: counted.
  void store(index_t i, T v) {
    assert(counter_ != nullptr);
    if (san_ != nullptr) [[unlikely]] {
      if (!scalar_san(i, /*write=*/true)) return;
    }
    assert(i >= 0 && static_cast<std::size_t>(i) < data_.size());
    counter_->add_write(sizeof(T));
    data_[static_cast<std::size_t>(i)] = v;
  }

  /// Device load converted to the compute type `U` at the register boundary.
  /// Counted as sizeof(T) bytes — the storage element is what crosses DRAM.
  template <typename U>
  [[nodiscard]] U load_as(index_t i) const {
    return static_cast<U>(load(i));
  }

  /// Device store of a compute-type value, narrowed to T at the boundary.
  template <typename U>
  void store_as(index_t i, U v) {
    store(i, static_cast<T>(v));
  }

  /// Batched device load of `n` elements at base, base + stride, ... into a
  /// compute-type buffer: one bounds check, one counter update of
  /// n*sizeof(T) bytes in a single transaction. Byte-identical to n scalar
  /// `load`s; with U == T the conversion is the identity.
  template <typename U>
  void load_span_as(index_t base, index_t stride, int n, U* dst) const {
    if (!span_ok(base, stride, n, /*write=*/false)) {
      for (int k = 0; k < n; ++k) dst[k] = U{};  // reported and skipped
      return;
    }
    counter_->add_read(static_cast<std::uint64_t>(n) * sizeof(T), 1);
    const T* p = data_.data() + base;
    for (int k = 0; k < n; ++k, p += stride) dst[k] = static_cast<U>(*p);
    if (!read_touched_.empty()) {
      for (int k = 0; k < n; ++k) {
        touch_read(static_cast<std::size_t>(base +
                                            static_cast<index_t>(k) * stride));
      }
    }
  }

  /// Batched device store from a compute-type buffer; counterpart of
  /// `load_span_as`.
  template <typename U>
  void store_span_as(index_t base, index_t stride, int n, const U* src) {
    if (!span_ok(base, stride, n, /*write=*/true)) return;
    counter_->add_write(static_cast<std::uint64_t>(n) * sizeof(T), 1);
    T* p = data_.data() + base;
    for (int k = 0; k < n; ++k, p += stride) *p = static_cast<T>(src[k]);
  }

  /// Storage-typed batched load/store (the pre-policy interface).
  void load_span(index_t base, index_t stride, int n, T* dst) const {
    load_span_as<T>(base, stride, n, dst);
  }
  void store_span(index_t base, index_t stride, int n, const T* src) {
    store_span_as<T>(base, stride, n, src);
  }

  /// Host access: NOT counted (initialization, result inspection). The
  /// mutable form conservatively marks the element host-written for the
  /// sanitizer's initcheck/staleness shadows — it is the cudaMemcpy path
  /// (initialization, boundary imposes, ghost exchange, restores).
  [[nodiscard]] T& raw(index_t i) {
    assert(i >= 0 && static_cast<std::size_t>(i) < data_.size());
    if (san_ != nullptr) san_->global_host_write(this, i);
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const T& raw(index_t i) const {
    assert(i >= 0 && static_cast<std::size_t>(i) < data_.size());
    return data_[static_cast<std::size_t>(i)];
  }

  /// Flips one bit of the stored element at `i` — the model of an ECC-scale
  /// soft error landing in this allocation while it sits in DRAM. Uncounted
  /// (a cosmic ray is not a kernel access); `bit` is taken modulo the
  /// element width, so any 64-bit draw addresses a valid bit of any T.
  void flip_bit(std::size_t i, unsigned bit) {
    assert(i < data_.size());
    auto* bytes = reinterpret_cast<unsigned char*>(&data_[i]);
    const unsigned b = bit % (sizeof(T) * 8u);
    bytes[b / 8u] ^= static_cast<unsigned char>(1u << (b % 8u));
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t size_bytes() const {
    return data_.size() * sizeof(T);
  }
  [[nodiscard]] bool allocated() const { return !data_.empty(); }

  void swap(GlobalArray& other) {
    // Shadow state is keyed by array identity; swapping the payload under a
    // sanitizer would silently mismatch shadows and data.
    assert(san_ == nullptr && other.san_ == nullptr);
    data_.swap(other.data_);
    std::swap(counter_, other.counter_);
    read_touched_.swap(other.read_touched_);
    const auto mine = unique_reads_.load(std::memory_order_relaxed);
    unique_reads_.store(other.unique_reads_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    other.unique_reads_.store(mine, std::memory_order_relaxed);
  }

  /// Unique-address read tracking: models an ideal cache in front of DRAM.
  /// While enabled, `unique_read_count` reports how many *distinct* elements
  /// were loaded since the last clear — the traffic a profiler attributes to
  /// DRAM when re-reads (e.g. the MR column halos) hit in L2. The count is
  /// maintained on first touch, so querying it is O(1), not a full-array
  /// scan.
  void set_unique_read_tracking(bool on) {
    if (on) {
      read_touched_.assign(data_.size(), 0);
    } else {
      read_touched_.clear();
    }
    unique_reads_.store(0, std::memory_order_relaxed);
  }
  void clear_unique_reads() {
    if (!read_touched_.empty()) {
      read_touched_.assign(read_touched_.size(), 0);
    }
    unique_reads_.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t unique_read_count() const {
    return unique_reads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t unique_read_bytes() const {
    return unique_read_count() * sizeof(T);
  }

 private:
  /// Span bounds validation, valid for either stride sign: both endpoints of
  /// the arithmetic progression must lie inside the allocation (a negative
  /// stride walks downward from base, so `base + (n-1)*stride` is the *low*
  /// end there — checking only the last element against size() would miss
  /// the underflow). Runs in release builds too. On violation:
  ///  * sanitizer attached — report a memcheck hazard, return false (the
  ///    caller skips the physical access and the run continues);
  ///  * traffic counter attached (a real kernel access) — throw a typed
  ///    BoundsError instead of invoking UB;
  ///  * bare array (no counter, no sanitizer) — debug assert, release skip.
  /// In-bounds spans additionally notify the sanitizer.
  /// The fast path is the three comparisons only; everything else (sanitizer
  /// notification, hazard reporting, the throwing diagnostic) sits in the
  /// noinline slow helper so callers keep inlining the span copy loops.
  bool span_ok(index_t base, index_t stride, int n, bool write) const {
    assert(counter_ != nullptr);
    const index_t last = base + static_cast<index_t>(n - 1) * stride;
    const index_t lo = base < last ? base : last;
    const index_t hi = base < last ? last : base;
    if (n > 0 && lo >= 0 && static_cast<std::size_t>(hi) < data_.size() &&
        san_ == nullptr) [[likely]] {
      return true;
    }
    return span_slow(base, stride, n, write, lo, hi);
  }

  [[gnu::noinline]] bool span_slow(index_t base, index_t stride, int n,
                                   bool write, index_t lo,
                                   index_t hi) const {
    const bool in_bounds =
        n > 0 && lo >= 0 && static_cast<std::size_t>(hi) < data_.size();
    if (san_ != nullptr) {
      if (in_bounds) {
        san_->global_access(this, base, stride, n, write);
        return true;
      }
      san_->global_oob(this, base, stride, n, data_.size(), write);
      return false;
    }
    if (in_bounds) return true;
    if (counter_ != &null_counter()) {
      throw BoundsError(
          "GlobalArray" + (*san_name_ != '\0'
                               ? " '" + std::string(san_name_) + "'"
                               : std::string()) +
          ": span out of bounds: base=" + std::to_string(base) +
          " stride=" + std::to_string(stride) + " n=" + std::to_string(n) +
          " touches [" + std::to_string(lo) + ", " + std::to_string(hi) +
          "] outside [0, " + std::to_string(data_.size()) + ")");
    }
    assert(false && "GlobalArray: span out of bounds");
    return false;
  }

  /// Scalar-access sanitizer path (load/store with a hook attached): bounds
  /// check + shadow notification. Returns false when the access was
  /// out-of-bounds (reported; the caller skips it).
  [[gnu::noinline]] bool scalar_san(index_t i, bool write) const {
    if (i < 0 || static_cast<std::size_t>(i) >= data_.size()) {
      san_->global_oob(this, i, 0, 1, data_.size(), write);
      return false;
    }
    san_->global_access(this, i, 0, 1, write);
    return true;
  }

  /// First-touch accounting for the ideal-cache model. Only the first toucher
  /// of an element pays the atomic increment; steady-state re-reads see the
  /// byte already set.
  void touch_read(std::size_t i) const {
    if (read_touched_.empty()) return;
    std::atomic_ref<std::uint8_t> flag(read_touched_[i]);
    if (flag.load(std::memory_order_relaxed) == 0 &&
        flag.exchange(1, std::memory_order_relaxed) == 0) {
      unique_reads_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::vector<T> data_;
  TrafficCounter* counter_ = nullptr;
  SanitizerHook* san_ = nullptr;
  const char* san_name_ = "";
  bool san_sliding_window_ = false;
  mutable std::vector<std::uint8_t> read_touched_;
  mutable std::atomic<std::uint64_t> unique_reads_{0};
};

}  // namespace mlbm::gpusim
