# Empty dependencies file for multidev_scaling.
# This may be replaced when dependencies are built.
