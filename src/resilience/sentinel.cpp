#include "resilience/sentinel.hpp"

#include <algorithm>
#include <cmath>

namespace mlbm::resilience {

std::string SentinelReport::describe() const {
  if (healthy) return "healthy";
  const char* r = "unknown";
  switch (reason) {
    case Reason::kNone: r = "none"; break;
    case Reason::kNonFinite: r = "non-finite moment"; break;
    case Reason::kDensityBound: r = "density out of bounds"; break;
    case Reason::kVelocityBound: r = "velocity out of bounds"; break;
  }
  return std::string(r) + " at (" + std::to_string(x) + ", " +
         std::to_string(y) + ", " + std::to_string(z) +
         "), value=" + std::to_string(static_cast<double>(value));
}

template <class L>
SentinelReport StabilitySentinel<L>::check(const Engine<L>& eng) const {
  const Box& b = eng.geometry().box;
  const int stride =
      cfg_.sample_stride > 0 ? cfg_.sample_stride : std::max(1, b.nx / 16);

  SentinelReport rep;
  auto fail = [&rep](SentinelReport::Reason why, int x, int y, int z,
                     real_t v) {
    rep.healthy = false;
    rep.reason = why;
    rep.x = x;
    rep.y = y;
    rep.z = z;
    rep.value = v;
  };

  const Geometry& geo = eng.geometry();
  const bool any_solid = geo.has_solids();
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; y += stride) {
      for (int x = 0; x < b.nx; x += stride) {
        // Solid nodes carry no state and report the canonical blanked
        // moments (rho = 0, inside no density band): they are not part of
        // the stability question.
        if (any_solid && geo.solid(x, y, z)) continue;
        const Moments<L> m = eng.moments_at(x, y, z);
        if (!std::isfinite(m.rho)) {
          fail(SentinelReport::Reason::kNonFinite, x, y, z, m.rho);
          return rep;
        }
        if (m.rho <= cfg_.min_rho || m.rho >= cfg_.max_rho) {
          fail(SentinelReport::Reason::kDensityBound, x, y, z, m.rho);
          return rep;
        }
        for (int a = 0; a < L::D; ++a) {
          const real_t ua = m.u[static_cast<std::size_t>(a)];
          if (!std::isfinite(ua)) {
            fail(SentinelReport::Reason::kNonFinite, x, y, z, ua);
            return rep;
          }
          if (std::abs(ua) > cfg_.max_speed) {
            fail(SentinelReport::Reason::kVelocityBound, x, y, z, ua);
            return rep;
          }
        }
        if (cfg_.check_pi) {
          for (int p = 0; p < Moments<L>::NP; ++p) {
            const real_t pp = m.pi[static_cast<std::size_t>(p)];
            if (!std::isfinite(pp)) {
              fail(SentinelReport::Reason::kNonFinite, x, y, z, pp);
              return rep;
            }
          }
        }
      }
    }
  }
  return rep;
}

template class StabilitySentinel<D2Q9>;
template class StabilitySentinel<D3Q19>;
template class StabilitySentinel<D3Q27>;
template class StabilitySentinel<D3Q15>;

}  // namespace mlbm::resilience
