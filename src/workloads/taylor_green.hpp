// Taylor-Green vortex: the library's periodic validation workload.
//
// The 2D Taylor-Green vortex is an exact solution of the incompressible
// Navier-Stokes equations; its kinetic energy decays as exp(-4 nu k^2 t).
// In 3D the same field, uniform along z, remains exact and exercises the
// D3Q19/D3Q27 engines (including the MR engines' periodic sweep handling).
#pragma once

#include "engines/engine.hpp"
#include "util/types.hpp"

namespace mlbm {

template <class L>
struct TaylorGreen {
  int n;        ///< nodes per (periodic) axis
  real_t u0;    ///< initial velocity amplitude
  Geometry geo;

  static TaylorGreen create(int n, real_t u0, int nz = 1);

  /// Initializes velocity, the consistent pressure field and the
  /// non-equilibrium moments from the analytic strain rate (so the decay is
  /// clean from step 0).
  void attach(Engine<L>& eng) const;

  /// Analytic velocity at a node and time (in lattice units).
  [[nodiscard]] std::array<real_t, 2> velocity(int x, int y, real_t nu,
                                               real_t t) const;

  /// Total kinetic energy of the engine's current state.
  static real_t kinetic_energy(const Engine<L>& eng);
};

extern template struct TaylorGreen<D2Q9>;
extern template struct TaylorGreen<D3Q19>;
extern template struct TaylorGreen<D3Q27>;
extern template struct TaylorGreen<D3Q15>;

}  // namespace mlbm
