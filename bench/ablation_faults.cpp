// Ablation: fault injection and recovery (resilience subsystem).
//
// Three questions about wrapping an engine in the ResilientRunner:
//
//   overhead      what does checkpoint/sentinel protection cost when nothing
//                 ever faults? (Target: < 2% wall clock vs the bare engine.)
//   survival      do runs under injected storage bit flips, transient launch
//                 failures and halo corruption still *complete* Taylor-Green
//                 (or the channel flow), and is the final physical error
//                 within the no-fault bound? Recovery from *detected* faults
//                 is bit-exact (rollback + deterministic replay); undetected
//                 low-mantissa flips perturb at round-off, far below the
//                 scheme error, so the bound holds either way.
//   determinism   does the same fault seed reproduce the same fault trace,
//                 the same recovery sequence and the same final state?
//
// Results go to stdout and results/ablation_faults.json. Exit status is
// non-zero when a fault run fails to complete or breaks its error bound /
// reproducibility contract (the overhead row is reported but not gated —
// tiny smoke grids are timing-noise dominated).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engines/mr_engine.hpp"
#include "engines/st_engine.hpp"
#include "multidev/multi_domain.hpp"
#include "perfmodel/report.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/channel.hpp"
#include "workloads/taylor_green.hpp"

using namespace mlbm;
using resilience::FaultConfig;
using resilience::FaultInjector;
using resilience::ResilientRunner;
using resilience::RunnerConfig;

namespace {

using EngineFactory = std::function<std::unique_ptr<Engine<D2Q9>>()>;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct OverheadRow {
  std::string pattern;
  int steps = 0;
  double bare_ms = 0;
  double runner_ms = 0;
  [[nodiscard]] double overhead_pct() const {
    return bare_ms > 0 ? (runner_ms - bare_ms) / bare_ms * 100.0 : 0;
  }
};

struct FaultRow {
  std::string workload;
  std::string pattern;
  double bitflip_rate = 0;
  double launch_fail_rate = 0;
  double halo_corrupt_rate = 0;
  int steps = 0;
  bool completed = false;
  int rollbacks = 0;
  int launch_failures = 0;
  int sentinel_trips = 0;
  int faults_injected = 0;
  double no_fault_err = 0;  ///< final L2 velocity error, unfaulted run
  double final_err = 0;     ///< final L2 velocity error, faulted run
  double max_dev = 0;       ///< max abs moment deviation vs unfaulted run
  bool within_bound = false;
  bool reproducible = false;
};

std::vector<double> dump_moments(const Engine<D2Q9>& e) {
  std::vector<double> out;
  const Box& b = e.geometry().box;
  for (int y = 0; y < b.ny; ++y) {
    for (int x = 0; x < b.nx; ++x) {
      const auto m = e.moments_at(x, y, 0);
      out.push_back(m.rho);
      out.push_back(m.u[0]);
      out.push_back(m.u[1]);
      out.push_back(m.pi[0]);
      out.push_back(m.pi[1]);
      out.push_back(m.pi[2]);
    }
  }
  return out;
}

double max_abs_dev(const std::vector<double>& a, const std::vector<double>& b) {
  double dev = 0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    dev = std::max(dev, std::abs(a[i] - b[i]));
  }
  return dev;
}

/// L2 velocity error of a Taylor-Green run against the analytic decay.
double tg_error(const Engine<D2Q9>& eng, const TaylorGreen<D2Q9>& tg,
                int steps) {
  const Box& b = eng.geometry().box;
  const real_t nu = eng.viscosity();
  double sum = 0;
  for (int y = 0; y < b.ny; ++y) {
    for (int x = 0; x < b.nx; ++x) {
      const auto ua = tg.velocity(x, y, nu, static_cast<real_t>(steps));
      const auto m = eng.moments_at(x, y, 0);
      const double du = m.u[0] - ua[0];
      const double dv = m.u[1] - ua[1];
      sum += du * du + dv * dv;
    }
  }
  return std::sqrt(sum / static_cast<double>(b.cells()));
}

/// Survival sentinel: tight enough around the Taylor-Green / channel state
/// (rho ~ 1, |u| <= a few percent) that exponent-scale corruption trips it.
resilience::SentinelConfig tight_sentinel(int cadence) {
  resilience::SentinelConfig s;
  s.cadence = cadence;
  s.min_rho = real_t(0.5);
  s.max_rho = real_t(2.0);
  s.max_speed = real_t(0.3);
  return s;
}

/// Median-of-reps wall clock of `fn`.
double median_ms(int reps, const std::function<double()>& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) times.push_back(fn());
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

OverheadRow measure_overhead(const std::string& pattern,
                             const EngineFactory& make, int steps, int reps) {
  OverheadRow row;
  row.pattern = pattern;
  row.steps = steps;
  row.bare_ms = median_ms(reps, [&make, steps]() {
    auto eng = make();
    const double t0 = now_ms();
    eng->run(steps);
    return now_ms() - t0;
  });
  row.runner_ms = median_ms(reps, [&make, steps]() {
    RunnerConfig rc;
    rc.checkpoint_interval = 128;
    rc.sentinel.cadence = 64;
    ResilientRunner<D2Q9> runner(make(), rc);
    const double t0 = now_ms();
    runner.run(steps);
    return now_ms() - t0;
  });
  return row;
}

/// Runs `make`'s engine for `steps` under the given fault rates (twice, same
/// seed, to pin reproducibility) and compares against the unfaulted run.
/// `tg` is null for non-Taylor-Green workloads (skips the analytic error).
FaultRow run_faulted(const std::string& workload, const std::string& pattern,
                     const EngineFactory& make, const TaylorGreen<D2Q9>* tg,
                     int steps, FaultConfig fc) {
  FaultRow row;
  row.workload = workload;
  row.pattern = pattern;
  row.bitflip_rate = fc.bitflip_rate;
  row.launch_fail_rate = fc.launch_fail_rate;
  row.halo_corrupt_rate = fc.halo_corrupt_rate;
  row.steps = steps;

  auto clean = make();
  clean->run(steps);
  const auto clean_dump = dump_moments(*clean);
  if (tg != nullptr) row.no_fault_err = tg_error(*clean, *tg, steps);

  RunnerConfig rc;
  rc.checkpoint_interval = 8;
  // With every injected flip detectable, a window only completes when no
  // fault lands in it: give the retry loop enough budget that survival is
  // essentially certain at the configured rates.
  rc.max_retries_per_window = 12;
  rc.sentinel = tight_sentinel(4);

  auto one_run = [&](std::string& trace, std::string& recovery,
                     std::vector<double>& dump, FaultRow& out) -> bool {
    FaultInjector inj(fc);
    ResilientRunner<D2Q9> runner(make(), rc);
    runner.set_fault_injector(&inj);
    try {
      const auto rep = runner.run(steps);
      out.rollbacks = rep.rollbacks;
      out.launch_failures = rep.launch_failures;
      out.sentinel_trips = rep.sentinel_trips;
      out.faults_injected = static_cast<int>(inj.trace().size());
      trace = inj.trace_string();
      recovery = rep.describe();
      dump = dump_moments(runner.engine());
      if (tg != nullptr) out.final_err = tg_error(runner.engine(), *tg, steps);
      return rep.steps == steps;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  [%s/%s] run did not complete: %s\n",
                   workload.c_str(), pattern.c_str(), e.what());
      return false;
    }
  };

  std::string trace_a, trace_b, rec_a, rec_b;
  std::vector<double> dump_a, dump_b;
  FaultRow scratch = row;
  row.completed = one_run(trace_a, rec_a, dump_a, row);
  const bool completed_b = one_run(trace_b, rec_b, dump_b, scratch);

  if (row.completed) {
    row.max_dev = max_abs_dev(clean_dump, dump_a);
    // The no-fault bound: detected faults recover bit-exactly; undetected
    // low-bit flips may perturb at round-off, orders below the scheme error.
    row.within_bound =
        tg == nullptr
            ? row.max_dev == 0
            : row.final_err <= row.no_fault_err * 1.01 + 1e-10;
    row.reproducible = completed_b && trace_a == trace_b && rec_a == rec_b &&
                       dump_a == dump_b;
  }
  return row;
}

bool write_json(const std::string& path, const std::vector<OverheadRow>& ov,
                const std::vector<FaultRow>& faults) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"benchmark\": \"ablation_faults\",\n  \"overhead\": [\n";
  for (std::size_t i = 0; i < ov.size(); ++i) {
    const OverheadRow& r = ov[i];
    f << "    {\"pattern\": \"" << r.pattern << "\", \"steps\": " << r.steps
      << ", \"bare_ms\": " << r.bare_ms << ", \"runner_ms\": " << r.runner_ms
      << ", \"overhead_pct\": " << r.overhead_pct() << "}"
      << (i + 1 < ov.size() ? "," : "") << "\n";
  }
  f << "  ],\n  \"fault_runs\": [\n";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const FaultRow& r = faults[i];
    f << "    {\"workload\": \"" << r.workload << "\", \"pattern\": \""
      << r.pattern << "\", \"bitflip_rate\": " << r.bitflip_rate
      << ", \"launch_fail_rate\": " << r.launch_fail_rate
      << ", \"halo_corrupt_rate\": " << r.halo_corrupt_rate
      << ", \"steps\": " << r.steps
      << ", \"completed\": " << (r.completed ? "true" : "false")
      << ", \"faults_injected\": " << r.faults_injected
      << ", \"rollbacks\": " << r.rollbacks
      << ", \"launch_failures\": " << r.launch_failures
      << ", \"sentinel_trips\": " << r.sentinel_trips
      << ", \"no_fault_error\": " << r.no_fault_err
      << ", \"final_error\": " << r.final_err
      << ", \"max_deviation_vs_clean\": " << r.max_dev
      << ", \"within_no_fault_bound\": " << (r.within_bound ? "true" : "false")
      << ", \"seed_reproducible\": " << (r.reproducible ? "true" : "false")
      << "}" << (i + 1 < faults.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
  return f.good();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  cli.reject_unknown({"n", "out", "ov-n", "ov-steps", "reps", "steps"});
  const int n = cli.get_int("n", 32, 1);            // fault-run grid
  const int steps = cli.get_int("steps", 96, 1);    // fault-run steps
  const int ov_n = cli.get_int("ov-n", 48, 1);      // overhead grid
  const int ov_steps = cli.get_int("ov-steps", 384, 1);
  const int reps = cli.get_int("reps", 3, 1);
  const std::string out =
      cli.get("out", perf::results_dir() + "/ablation_faults.json");

  perf::print_banner("Ablation",
                     "Fault injection: runner overhead, survival, determinism");

  const real_t tau = 0.8;
  const auto tg_ov = TaylorGreen<D2Q9>::create(ov_n, 0.03);
  const auto tg = TaylorGreen<D2Q9>::create(n, 0.03);

  const EngineFactory st_ov = [&tg_ov, tau]() -> std::unique_ptr<Engine<D2Q9>> {
    auto e = std::make_unique<StEngine<D2Q9>>(tg_ov.geo, tau);
    tg_ov.attach(*e);
    return e;
  };
  const EngineFactory mrp_ov = [&tg_ov,
                                tau]() -> std::unique_ptr<Engine<D2Q9>> {
    auto e = std::make_unique<MrEngine<D2Q9>>(tg_ov.geo, tau,
                                              Regularization::kProjective);
    tg_ov.attach(*e);
    return e;
  };
  const EngineFactory st_tg = [&tg, tau]() -> std::unique_ptr<Engine<D2Q9>> {
    auto e = std::make_unique<StEngine<D2Q9>>(tg.geo, tau);
    tg.attach(*e);
    return e;
  };
  const EngineFactory mrp_tg = [&tg, tau]() -> std::unique_ptr<Engine<D2Q9>> {
    auto e = std::make_unique<MrEngine<D2Q9>>(tg.geo, tau,
                                              Regularization::kProjective);
    tg.attach(*e);
    return e;
  };
  const auto ch = Channel<D2Q9>::create(2 * n, std::max(n / 2, 6), 1, tau,
                                        0.04);
  const EngineFactory multi_ch = [&ch, tau]() -> std::unique_ptr<Engine<D2Q9>> {
    auto m = std::make_unique<MultiDomainEngine<D2Q9>>(
        ch.geo, tau, 2, [tau](Geometry g, int) -> std::unique_ptr<Engine<D2Q9>> {
          return std::make_unique<StEngine<D2Q9>>(std::move(g), tau);
        });
    ch.attach(*m);
    return m;
  };

  std::vector<OverheadRow> overhead;
  overhead.push_back(measure_overhead("ST", st_ov, ov_steps, reps));
  overhead.push_back(measure_overhead("MR-P", mrp_ov, ov_steps, reps));

  std::vector<FaultRow> faults;
  {
    FaultConfig fc;
    fc.seed = 5;
    fc.bitflip_rate = 0.15;
    fc.bitflip_bit = 62;      // detectable (exponent-scale) fault regime
    fc.step_end = steps / 2;  // fault-free tail: recovery must stick
    faults.push_back(run_faulted("taylor-green", "ST", st_tg, &tg, steps, fc));
  }
  {
    FaultConfig fc;
    fc.seed = 7;
    fc.launch_fail_rate = 0.05;
    faults.push_back(run_faulted("taylor-green", "ST", st_tg, &tg, steps, fc));
  }
  {
    FaultConfig fc;
    fc.seed = 9;
    fc.bitflip_rate = 0.15;
    fc.bitflip_bit = 62;
    fc.step_end = steps / 2;
    faults.push_back(
        run_faulted("taylor-green", "MR-P", mrp_tg, &tg, steps, fc));
  }
  {
    FaultConfig fc;
    fc.seed = 11;
    fc.halo_corrupt_rate = 0.1;
    fc.step_end = steps / 2;
    faults.push_back(
        run_faulted("channel", "MULTIx2-ST", multi_ch, nullptr, steps, fc));
  }

  AsciiTable ot({"Pattern", "steps", "bare ms", "runner ms", "overhead %"});
  for (const OverheadRow& r : overhead) {
    ot.row({r.pattern, std::to_string(r.steps), AsciiTable::num(r.bare_ms, 1),
            AsciiTable::num(r.runner_ms, 1),
            AsciiTable::num(r.overhead_pct(), 2)});
  }
  ot.print();
  std::printf("\n");

  AsciiTable ft({"Workload", "Pattern", "flip", "launch", "halo", "done",
                 "faults", "rollbk", "err/no-fault err", "dev", "repro"});
  bool ok = true;
  for (const FaultRow& r : faults) {
    ft.row({r.workload, r.pattern, AsciiTable::num(r.bitflip_rate, 2),
            AsciiTable::num(r.launch_fail_rate, 2),
            AsciiTable::num(r.halo_corrupt_rate, 2), r.completed ? "y" : "N",
            std::to_string(r.faults_injected), std::to_string(r.rollbacks),
            AsciiTable::num(r.final_err, 8) + "/" +
                AsciiTable::num(r.no_fault_err, 8),
            AsciiTable::num(r.max_dev, 3), r.reproducible ? "y" : "N"});
    ok = ok && r.completed && r.within_bound && r.reproducible;
  }
  ft.print();

  std::printf(
      "\nZero-fault protection costs the checkpoint captures (every %d steps)\n"
      "plus strided sentinel scans; fault runs complete via rollback/retry,\n"
      "recover detected faults bit-exactly, and reproduce the same fault\n"
      "trace, recovery sequence and final state from the same seed.\n",
      128);

  if (!write_json(out, overhead, faults)) {
    std::fprintf(stderr, "\nerror: could not write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  if (!ok) {
    std::fprintf(stderr,
                 "error: a fault run failed completion, bound or "
                 "reproducibility (see table)\n");
    return 1;
  }
  return 0;
}
