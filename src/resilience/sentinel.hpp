// Stability sentinel: the shared divergence detector.
//
// Regularized collision exists because high-Reynolds runs sit close to the
// stability edge; when a run crosses it (under-resolution, FP32 storage
// rounding, or an injected soft error) the first symptom is a non-finite or
// out-of-bounds moment. The sentinel samples the moment interface — which
// every engine, including MultiDomainEngine, exposes exactly — on a strided
// grid, so a check costs a small, cadence-amortized fraction of a timestep
// (docs/resilience.md quantifies the trade-off).
//
// This is the promotion of the ad-hoc detector that used to live inside the
// shear-layer workload; the stability studies and the ResilientRunner now
// share one code path.
#pragma once

#include <string>

#include "engines/engine.hpp"
#include "util/types.hpp"

namespace mlbm::resilience {

struct SentinelConfig {
  /// Steps between checks when driven by a runner; 0 disables cadence-driven
  /// checks (explicit check() calls still work).
  int cadence = 16;
  /// Sample stride along x and y; 0 = auto (max(1, nx/16), the historical
  /// shear-layer sampling). z is always scanned fully (domains are shallow
  /// along z in this repository's workloads).
  int sample_stride = 0;
  /// Lattice-velocity magnitude bound per component. The default matches the
  /// historical detector: anything at Ma ~ sqrt(3)*0.8 is long past blow-up.
  real_t max_speed = real_t(0.8);
  /// Density bounds (rho must be finite and inside (min_rho, max_rho)).
  real_t min_rho = real_t(0);
  real_t max_rho = real_t(1e6);
  /// Also require every stored second moment to be finite — catches MR-state
  /// corruption whose rho/u still look plausible.
  bool check_pi = true;
};

struct SentinelReport {
  enum class Reason { kNone, kNonFinite, kDensityBound, kVelocityBound };

  bool healthy = true;
  Reason reason = Reason::kNone;
  int x = -1, y = -1, z = -1;  ///< first offending node (sample order)
  real_t value = real_t(0);    ///< the offending quantity

  [[nodiscard]] std::string describe() const;
};

template <class L>
class StabilitySentinel {
 public:
  StabilitySentinel() = default;
  explicit StabilitySentinel(SentinelConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const SentinelConfig& config() const { return cfg_; }

  /// True when a cadence-driven check is due at `step` (post-step count).
  [[nodiscard]] bool due(int step) const {
    return cfg_.cadence > 0 && step % cfg_.cadence == 0;
  }

  /// Samples the engine's moment state; stops at the first violation.
  [[nodiscard]] SentinelReport check(const Engine<L>& eng) const;

 private:
  SentinelConfig cfg_;
};

extern template class StabilitySentinel<D2Q9>;
extern template class StabilitySentinel<D3Q19>;
extern template class StabilitySentinel<D3Q27>;
extern template class StabilitySentinel<D3Q15>;

}  // namespace mlbm::resilience
