// Lattice descriptor invariants: weights, symmetry, opposites, and the
// quadrature identities the regularized moment machinery relies on.
#include <gtest/gtest.h>

#include "core/hermite.hpp"
#include "core/lattice.hpp"

namespace mlbm {
namespace {

template <class L>
class LatticeTest : public ::testing::Test {};

using Lattices = ::testing::Types<D2Q9, D3Q19, D3Q15, D3Q27>;
TYPED_TEST_SUITE(LatticeTest, Lattices);

TYPED_TEST(LatticeTest, WeightsArePositiveAndSumToOne) {
  using L = TypeParam;
  real_t sum = 0;
  for (int i = 0; i < L::Q; ++i) {
    EXPECT_GT(L::w[static_cast<std::size_t>(i)], 0);
    sum += L::w[static_cast<std::size_t>(i)];
  }
  EXPECT_NEAR(sum, 1.0, 1e-15);
}

TYPED_TEST(LatticeTest, RestVelocityFirst) {
  using L = TypeParam;
  EXPECT_EQ(L::c[0][0], 0);
  EXPECT_EQ(L::c[0][1], 0);
  EXPECT_EQ(L::c[0][2], 0);
}

TYPED_TEST(LatticeTest, OppositesAreInvolutiveAndNegate) {
  using L = TypeParam;
  for (int i = 0; i < L::Q; ++i) {
    const int o = L::opposite(i);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, L::Q);
    EXPECT_EQ(L::opposite(o), i);
    for (int a = 0; a < 3; ++a) {
      EXPECT_EQ(L::c[static_cast<std::size_t>(o)][static_cast<std::size_t>(a)],
                -L::c[static_cast<std::size_t>(i)][static_cast<std::size_t>(a)]);
    }
  }
}

TYPED_TEST(LatticeTest, VelocitiesAreDistinct) {
  using L = TypeParam;
  for (int i = 0; i < L::Q; ++i) {
    for (int j = i + 1; j < L::Q; ++j) {
      const bool same = L::c[static_cast<std::size_t>(i)][0] == L::c[static_cast<std::size_t>(j)][0] &&
                        L::c[static_cast<std::size_t>(i)][1] == L::c[static_cast<std::size_t>(j)][1] &&
                        L::c[static_cast<std::size_t>(i)][2] == L::c[static_cast<std::size_t>(j)][2];
      EXPECT_FALSE(same) << "duplicate velocity " << i << "," << j;
    }
  }
}

TYPED_TEST(LatticeTest, ZComponentZeroIn2D) {
  using L = TypeParam;
  if (L::D == 3) GTEST_SKIP();
  for (int i = 0; i < L::Q; ++i) {
    EXPECT_EQ(L::c[static_cast<std::size_t>(i)][2], 0);
  }
}

// Quadrature identities: sum_i w_i c_ia c_ib = cs2 d_ab and the fourth-order
// Gaussian moments, which make the H2 projection exact.
TYPED_TEST(LatticeTest, SecondOrderQuadrature) {
  using L = TypeParam;
  for (int a = 0; a < L::D; ++a) {
    for (int b = 0; b < L::D; ++b) {
      real_t s = 0;
      for (int i = 0; i < L::Q; ++i) {
        s += L::w[static_cast<std::size_t>(i)] * hermite::h1<L>(i, a) *
             hermite::h1<L>(i, b);
      }
      EXPECT_NEAR(s, a == b ? L::cs2 : 0.0, 1e-14) << "a=" << a << " b=" << b;
    }
  }
}

TYPED_TEST(LatticeTest, FourthOrderQuadrature) {
  using L = TypeParam;
  for (int a = 0; a < L::D; ++a) {
    for (int b = 0; b < L::D; ++b) {
      for (int g = 0; g < L::D; ++g) {
        for (int d = 0; d < L::D; ++d) {
          real_t s = 0;
          for (int i = 0; i < L::Q; ++i) {
            s += L::w[static_cast<std::size_t>(i)] * hermite::h1<L>(i, a) *
                 hermite::h1<L>(i, b) * hermite::h1<L>(i, g) *
                 hermite::h1<L>(i, d);
          }
          const real_t expect =
              L::cs2 * L::cs2 *
              (hermite::delta(a, b) * hermite::delta(g, d) +
               hermite::delta(a, g) * hermite::delta(b, d) +
               hermite::delta(a, d) * hermite::delta(b, g));
          EXPECT_NEAR(s, expect, 1e-14)
              << "abgd=" << a << b << g << d;
        }
      }
    }
  }
}

TYPED_TEST(LatticeTest, OddMomentsVanish) {
  using L = TypeParam;
  for (int a = 0; a < L::D; ++a) {
    real_t s1 = 0;
    for (int i = 0; i < L::Q; ++i) {
      s1 += L::w[static_cast<std::size_t>(i)] * hermite::h1<L>(i, a);
    }
    EXPECT_NEAR(s1, 0.0, 1e-15);
    for (int b = 0; b < L::D; ++b) {
      for (int g = 0; g < L::D; ++g) {
        real_t s3 = 0;
        for (int i = 0; i < L::Q; ++i) {
          s3 += L::w[static_cast<std::size_t>(i)] * hermite::h1<L>(i, a) *
                hermite::h1<L>(i, b) * hermite::h1<L>(i, g);
        }
        EXPECT_NEAR(s3, 0.0, 1e-15);
      }
    }
  }
}

}  // namespace
}  // namespace mlbm
