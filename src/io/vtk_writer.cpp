#include "io/vtk_writer.hpp"

#include <fstream>

#include "util/error.hpp"

namespace mlbm {

template <class L>
void write_vtk(const Engine<L>& eng, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("write_vtk: cannot open " + path);

  const Box& b = eng.geometry().box;
  out << "# vtk DataFile Version 3.0\n"
      << "mlbm " << eng.pattern_name() << " t=" << eng.time() << "\n"
      << "ASCII\nDATASET STRUCTURED_POINTS\n"
      << "DIMENSIONS " << b.nx << " " << b.ny << " " << b.nz << "\n"
      << "ORIGIN 0 0 0\nSPACING 1 1 1\n"
      << "POINT_DATA " << b.cells() << "\n";

  out << "SCALARS density double 1\nLOOKUP_TABLE default\n";
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        out << eng.moments_at(x, y, z).rho << "\n";
      }
    }
  }

  out << "VECTORS velocity double\n";
  for (int z = 0; z < b.nz; ++z) {
    for (int y = 0; y < b.ny; ++y) {
      for (int x = 0; x < b.nx; ++x) {
        const Moments<L> m = eng.moments_at(x, y, z);
        real_t uz = 0;
        if constexpr (L::D == 3) uz = m.u[2];
        out << m.u[0] << " " << m.u[1] << " " << uz << "\n";
      }
    }
  }

  // Obstacle geometries additionally carry the flag field so ParaView can
  // threshold the solid region away. Solid nodes hold no state: their
  // density/velocity rows above are already blanked to zero (the engines
  // report solid_moments() for them).
  const Geometry& geo = eng.geometry();
  if (geo.has_solids()) {
    out << "SCALARS node_kind int 1\nLOOKUP_TABLE default\n";
    for (int z = 0; z < b.nz; ++z) {
      for (int y = 0; y < b.ny; ++y) {
        for (int x = 0; x < b.nx; ++x) {
          out << static_cast<int>(geo.at(x, y, z)) << "\n";
        }
      }
    }
  }
  if (!out) throw IoError("write_vtk: write failed for " + path);
}

template void write_vtk<D2Q9>(const Engine<D2Q9>&, const std::string&);
template void write_vtk<D3Q19>(const Engine<D3Q19>&, const std::string&);
template void write_vtk<D3Q27>(const Engine<D3Q27>&, const std::string&);
template void write_vtk<D3Q15>(const Engine<D3Q15>&, const std::string&);

}  // namespace mlbm
