#include "gpusim/launch.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mlbm::gpusim::detail {

void parallel_for_blocks(long long nblocks,
                         const std::function<void(long long)>& fn) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
  for (long long b = 0; b < nblocks; ++b) {
    fn(b);
  }
#else
  for (long long b = 0; b < nblocks; ++b) {
    fn(b);
  }
#endif
}

}  // namespace mlbm::gpusim::detail
